(* imsc — the iterative-modulo-scheduling research driver.

   Subcommands:
     machine    dump a machine model (and the figure 1 reservation grids)
     list       list the built-in loops
     show       print a loop's operations and dependence graph
     mii        ResMII / RecMII / MII with the per-resource profile
     schedule   modulo schedule a loop and print the kernel
     codegen    emit rotating-register or MVE code
     simulate   run the pipelined loop on the cycle-accurate checker
     suite      summary statistics over the 1327-loop suite

   Loops are named: a Livermore kernel ("lfk07"), a synthetic seed
   ("syn:1234"), or a file in the textual loop format ("path/to/loop"). *)

open Cmdliner
open Ims_machine
open Ims_ir
open Ims_workloads
open Ims_obs

(* --- shared options ------------------------------------------------------- *)

let machine_of = function
  | "cydra5" -> Machine.cydra5 ()
  | "figure1" -> Machine.figure1 ()
  | "vliw" -> Machine.simple_vliw ()
  | "ss4" -> Machine.superscalar4 ()
  | m when Sys.file_exists m -> Machine_parse.parse_file m
  | m ->
      failwith
        (Printf.sprintf
           "unknown machine %S (cydra5|figure1|vliw|ss4, or a description file)"
           m)

let machine_arg =
  let doc = "Machine model: cydra5, figure1, vliw, ss4, or a description file." in
  Arg.(value & opt string "cydra5" & info [ "m"; "machine" ] ~docv:"MODEL" ~doc)

let loop_arg =
  let doc =
    "The loop: a Livermore kernel name (lfk01..lfk24), syn:SEED for a \
     synthetic loop, or a file in the textual loop format."
  in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"LOOP" ~doc)

let budget_arg =
  let doc = "BudgetRatio: scheduling steps allowed per operation." in
  Arg.(value & opt float 2.0 & info [ "b"; "budget-ratio" ] ~docv:"R" ~doc)

let max_delta_ii_arg =
  let doc =
    "Give up the II search this far above the MII (0 tries only the MII \
     itself); exhaustion degrades to the acyclic list schedule."
  in
  Arg.(value & opt int 1000 & info [ "max-delta-ii" ] ~docv:"D" ~doc)

let closure_jobs_arg =
  let doc =
    "Domains for the MinDist transitive closure on large graphs (1 = \
     serial; results are value-identical either way)."
  in
  Arg.(value & opt int 1 & info [ "closure-jobs" ] ~docv:"N" ~doc)

let closure_threshold_arg =
  let doc =
    "Node count at which the closure switches to the blocked parallel \
     kernel (only with --closure-jobs > 1)."
  in
  Arg.(value & opt int 64 & info [ "closure-threshold" ] ~docv:"M" ~doc)

let resolve_loop machine name =
  if List.mem name Lfk.names then Lfk.build machine name
  else if List.mem name Kernels.names then Kernels.build machine name
  else if String.length name > 4 && String.sub name 0 4 = "syn:" then
    let seed = int_of_string (String.sub name 4 (String.length name - 4)) in
    Synthetic.generate machine (Random.State.make [| seed |])
  else if Sys.file_exists name then Loop_parse.parse_file machine name
  else
    failwith
      (Printf.sprintf
         "unknown loop %S: not a kernel name, syn:SEED, or readable file" name)

(* Leveled loggers for stderr diagnostics; the Colon style renders the
   historical "imsc: ..." / "imsc batch: ..." prefixes, so scripts that
   grep the messages keep working.  (The "merged counters:" line below
   is data, not a diagnostic, and stays un-prefixed at line start.) *)
let log = Log.create ~human:stderr ~timer:Unix.gettimeofday ~tag:"imsc" ()

let batch_log =
  Log.create ~human:stderr ~timer:Unix.gettimeofday ~tag:"imsc batch" ()

(* Exit protocol: 0 ok, 1 failed, 2 completed but degraded (a fallback
   list schedule was substituted for a modulo schedule) — so CI can gate
   on "no silent degradation" separately from hard failure. *)
let wrap_code f =
  try f () with
  | Failure msg | Invalid_argument msg ->
      Log.error log "%s" msg;
      1
  | Loop_parse.Parse_error (line, msg) ->
      Log.error log "parse error at line %d: %s" line msg;
      1
  | Machine.Unknown_opcode op ->
      Log.error log "opcode %S is not in this machine" op;
      1
  | Machine_parse.Parse_error (line, msg) ->
      Log.error log "machine description, line %d: %s" line msg;
      1
  | Loop_bin.Corrupt { offset; reason } ->
      Log.error log "corrupt loop record at byte %d: %s" offset reason;
      1

let wrap f =
  wrap_code (fun () ->
      f ();
      0)

(* --- machine --------------------------------------------------------------- *)

let cmd_machine =
  let run model =
    wrap (fun () ->
        let machine = machine_of model in
        Format.printf "%a@." Machine.pp machine;
        if model = "figure1" then begin
          let table name =
            (List.hd (Machine.opcode machine name).Opcode.alternatives)
              .Opcode.table
          in
          Reservation.pp_grid ~resources:machine.Machine.resources
            Format.std_formatter
            [ ("pipelined add", table "add"); ("pipelined multiply", table "mul") ]
        end)
  in
  Cmd.v (Cmd.info "machine" ~doc:"Dump a machine model")
    Term.(const run $ machine_arg)

(* --- list ------------------------------------------------------------------- *)

let cmd_list =
  let run () =
    List.iter print_endline Lfk.names;
    List.iter print_endline Kernels.names;
    print_endline "syn:SEED   (synthetic loop from a seed)";
    0
  in
  Cmd.v (Cmd.info "list" ~doc:"List built-in loops") Term.(const run $ const ())

(* --- show ------------------------------------------------------------------- *)

let cmd_show =
  let run model name =
    wrap (fun () ->
        let machine = machine_of model in
        Format.printf "%a@." Ddg.pp (resolve_loop machine name))
  in
  Cmd.v (Cmd.info "show" ~doc:"Print a loop and its dependence graph")
    Term.(const run $ machine_arg $ loop_arg)

(* --- export ----------------------------------------------------------------- *)

let cmd_export =
  let run model name =
    wrap (fun () ->
        let machine = machine_of model in
        print_string (Loop_dump.dump (resolve_loop machine name)))
  in
  Cmd.v
    (Cmd.info "export"
       ~doc:"Emit a loop in the textual format (re-parseable by 'schedule')")
    Term.(const run $ machine_arg $ loop_arg)

(* --- report ----------------------------------------------------------------- *)

let cmd_report =
  let run model name =
    wrap (fun () ->
        let machine = machine_of model in
        let ddg = resolve_loop machine name in
        Format.printf "=== loop ===@.%a@." Ddg.pp ddg;
        let m = Ims_mii.Mii.compute ddg in
        Format.printf "=== bounds ===@.%a@." Ims_mii.Mii.pp m;
        let r = Ims_mii.Rational.of_ddg ddg in
        Format.printf
          "rational: res %.2f rec %.2f mii %.2f (recommended unroll %d)@."
          r.Ims_mii.Rational.res r.Ims_mii.Rational.rec_
          r.Ims_mii.Rational.mii
          (Ims_mii.Rational.recommended_unroll ddg);
        Format.printf "loop kind: %s@."
          (match Ims_pipeline.Exit_schema.classify ddg with
          | Ims_pipeline.Exit_schema.Do_loop -> "DO"
          | Ims_pipeline.Exit_schema.While_loop -> "WHILE"
          | Ims_pipeline.Exit_schema.Early_exit -> "early exit");
        let out = Ims_core.Ims.modulo_schedule ddg in
        match out.Ims_core.Ims.schedule with
        | None -> failwith "no schedule found"
        | Some s ->
            Format.printf "@.=== schedule (IMS) ===@.%a@." Ims_core.Schedule.pp s;
            Format.printf "%a@." Ims_core.Schedule.pp_gantt s;
            (match Ims_core.Schedule.verify s with
            | Ok () -> Format.printf "verifier: legal@."
            | Error es -> List.iter (Format.printf "VERIFY: %s@.") es);
            (match Ims_pipeline.Interp.check s with
            | Ok () -> Format.printf "interpreter: pipelined = sequential@."
            | Error e -> Format.printf "INTERP: %s@." e);
            Format.printf "@.=== registers ===@.";
            List.iter
              (fun (cls, (a : Ims_pipeline.Rotreg.t)) ->
                Format.printf "%-10s %3d rotating registers@."
                  (Ims_pipeline.Regclass.name cls)
                  a.Ims_pipeline.Rotreg.file_size)
              (Ims_pipeline.Rotreg.allocate_by_class s);
            let mve = Ims_pipeline.Mve.expand s in
            let ra = Ims_pipeline.Regalloc.allocate s in
            Format.printf
              "MVE schema: kernel unrolled x%d, %d kernel registers (density \
               bound %d)@."
              mve.Ims_pipeline.Mve.unroll
              ra.Ims_pipeline.Regalloc.registers_used
              ra.Ims_pipeline.Regalloc.density_lower_bound;
            Format.printf
              "code size: rotating %d ops, MVE %d ops@."
              (Ims_pipeline.Codegen.code_size Ims_pipeline.Codegen.Rotating s)
              (Ims_pipeline.Codegen.code_size Ims_pipeline.Codegen.Mve s);
            let t = Ims_pipeline.Tradeoff.analyze s in
            Format.printf "@.=== when to pipeline ===@.%a@."
              Ims_pipeline.Tradeoff.pp t;
            Format.printf "speedup at trip 1000: %.1fx@."
              (Ims_pipeline.Tradeoff.speedup t ~trip:1000);
            match Ims_pipeline.Simulator.run ~trip:50 s with
            | Ok sim ->
                Format.printf
                  "simulated 50 iterations: %d cycles; peak %d in flight@."
                  sim.Ims_pipeline.Simulator.completion
                  sim.Ims_pipeline.Simulator.peak_in_flight
            | Error es -> List.iter (Format.printf "SIM: %s@.") es)
  in
  Cmd.v
    (Cmd.info "report" ~doc:"Everything about one loop: bounds, schedule, registers, code, timing")
    Term.(const run $ machine_arg $ loop_arg)

(* --- dot -------------------------------------------------------------------- *)

let cmd_dot =
  let run model name =
    wrap (fun () ->
        let machine = machine_of model in
        Format.printf "%a" Ddg.pp_dot (resolve_loop machine name))
  in
  Cmd.v
    (Cmd.info "dot" ~doc:"Emit the dependence graph in Graphviz format")
    Term.(const run $ machine_arg $ loop_arg)

(* --- mii -------------------------------------------------------------------- *)

let cmd_mii =
  let run model name =
    wrap (fun () ->
        let machine = machine_of model in
        let ddg = resolve_loop machine name in
        let m = Ims_mii.Mii.compute ddg in
        Format.printf "%a@.@.Per-resource usage:@." Ims_mii.Mii.pp m;
        List.iter
          (fun (rname, uses, copies, bound) ->
            if uses > 0 then
              Format.printf "  %-10s %3d uses / %d copies -> %d@." rname uses
                copies bound)
          (Ims_mii.Resmii.usage_profile ddg);
        Format.printf "@.RecMII by circuit enumeration: %d@."
          (Ims_mii.Recmii.by_circuits ~limit:100000 ddg))
  in
  Cmd.v (Cmd.info "mii" ~doc:"Compute the minimum initiation interval")
    Term.(const run $ machine_arg $ loop_arg)

(* --- schedule ---------------------------------------------------------------- *)

let scheduler_arg =
  let doc = "Scheduler: ims (the paper), slack (Huff) or sms (swing)." in
  Arg.(value & opt string "ims" & info [ "scheduler" ] ~docv:"ALGO" ~doc)

let unroll_arg =
  let doc =
    "Unroll the body K times before scheduling; 0 picks the factor from      the rational MII (section 1, step 7)."
  in
  Arg.(value & opt int 1 & info [ "u"; "unroll" ] ~docv:"K" ~doc)

let interleave_arg =
  let doc = "Interleave re-associable reductions across F accumulators." in
  Arg.(value & opt int 1 & info [ "interleave" ] ~docv:"F" ~doc)

let compact_arg =
  let doc = "Run lifetime compaction on the finished schedule." in
  Arg.(value & flag & info [ "compact" ] ~doc)

let gantt_arg =
  let doc = "Also print the kernel as a resource/slot grid." in
  Arg.(value & flag & info [ "gantt" ] ~doc)

let speculate_arg =
  let doc =
    "Execute side-effect-free predicated operations speculatively \
     (drop their control dependences, section 1 step 5)."
  in
  Arg.(value & flag & info [ "speculate" ] ~doc)

let preprocess ddg ~unroll ~interleave ~speculate =
  let ddg = if speculate then Ims_ir.Optimize.speculate ddg else ddg in
  let ddg =
    if interleave > 1 then Ims_ir.Optimize.interleave ddg ~factor:interleave
    else ddg
  in
  let factor =
    if unroll = 0 then Ims_mii.Rational.recommended_unroll ddg else unroll
  in
  if factor > 1 then begin
    Printf.printf "unrolling x%d before scheduling
" factor;
    Ims_ir.Unroll.by ddg factor
  end
  else ddg

let schedule_with ~scheduler ~budget_ratio ?(max_delta_ii = 1000)
    ?(trace = Trace.null) ddg =
  match scheduler with
  | "ims" ->
      Ims_core.Ims.modulo_schedule ~budget_ratio ~max_delta_ii ~trace ddg
  | "slack" -> Ims_core.Slack.modulo_schedule ~budget_ratio ~max_delta_ii ddg
  | "sms" -> Ims_core.Sms.modulo_schedule ~max_delta_ii:(min 64 max_delta_ii) ddg
  | other ->
      failwith (Printf.sprintf "unknown scheduler %S (ims|slack|sms)" other)

(* --- observability -------------------------------------------------------- *)

let trace_file_arg =
  let doc =
    "Write the structured event trace (scheduler decisions and phase \
     spans) to $(docv)."
  in
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)

let trace_format_arg =
  let doc =
    "Trace format: jsonl (one event per line) or chrome (trace_event \
     JSON for chrome://tracing / Perfetto)."
  in
  Arg.(value & opt string "jsonl" & info [ "trace-format" ] ~docv:"FMT" ~doc)

let metrics_file_arg =
  let doc =
    "Write the metrics registry (table 4 counters, phase timings, \
     schedule statistics) as JSON to $(docv)."
  in
  Arg.(value & opt (some string) None & info [ "metrics" ] ~docv:"FILE" ~doc)

let explain_arg =
  let doc =
    "Print a per-operation narrative of the scheduling run: each \
     place/force decision with its Estart window, and every eviction."
  in
  Arg.(value & flag & info [ "explain" ] ~doc)

let profile_file_arg =
  let doc =
    "Write the aggregated run profile (per-phase wall time, counter \
     totals and per-job maxima, latency percentiles) as JSON to $(docv); \
     render it with 'imsc perf show'."
  in
  Arg.(value & opt (some string) None & info [ "profile" ] ~docv:"FILE" ~doc)

let write_file file contents =
  match open_out file with
  | exception Sys_error msg -> failwith msg
  | oc ->
      output_string oc contents;
      close_out oc

let write_trace_file tr ~file ~format =
  let events = Trace.events tr in
  match format with
  | "jsonl" -> write_file file (Export.jsonl_string events)
  | "chrome" -> write_file file (Export.chrome_string events)
  | other ->
      failwith (Printf.sprintf "unknown trace format %S (jsonl|chrome)" other)

(* The downstream stages run (quietly) under their own spans so a trace
   covers the whole doc/ARCHITECTURE.md pipeline, not just the
   scheduler; any stage a given loop does not support is skipped. *)
let observe_back_end tr metrics s =
  let attempt name f =
    Trace.with_span tr name (fun () ->
        match f () with exception Invalid_argument _ -> () | () -> ())
  in
  attempt "simulate" (fun () ->
      match Ims_pipeline.Simulator.run ~trip:50 s with
      | Ok sim ->
          Metrics.set_int
            (Metrics.gauge metrics "sim.cycles")
            sim.Ims_pipeline.Simulator.completion;
          Metrics.set_int
            (Metrics.gauge metrics "sim.peak_in_flight")
            sim.Ims_pipeline.Simulator.peak_in_flight
      | Error es ->
          Metrics.incr
            ~by:(List.length es)
            (Metrics.counter metrics "sim.errors"));
  attempt "interp" (fun () ->
      match Ims_pipeline.Interp.check ~metrics s with
      | Ok () -> ()
      | Error _ -> Metrics.incr (Metrics.counter metrics "interp.divergences"));
  attempt "mve" (fun () ->
      let mve = Ims_pipeline.Mve.expand s in
      Metrics.set_int
        (Metrics.gauge metrics "mve.unroll")
        mve.Ims_pipeline.Mve.unroll);
  attempt "rotreg" (fun () ->
      let alloc = Ims_pipeline.Rotreg.allocate s in
      Metrics.set_int
        (Metrics.gauge metrics "rotreg.file_size")
        alloc.Ims_pipeline.Rotreg.file_size);
  attempt "codegen" (fun () ->
      Metrics.set_int
        (Metrics.gauge metrics "codegen.rotating_ops")
        (Ims_pipeline.Codegen.code_size Ims_pipeline.Codegen.Rotating s))

let cmd_schedule =
  let run model name budget max_delta_ii closure_jobs closure_threshold
      scheduler unroll interleave speculate compact gantt trace_file
      trace_format metrics_file explain profile_file =
    wrap_code (fun () ->
        Ims_mii.Mindist.set_parallel ~jobs:closure_jobs
          ~threshold:closure_threshold;
        let observing =
          trace_file <> None || metrics_file <> None || explain
        in
        let tr =
          if observing then Trace.create ()
          else if profile_file <> None then
            (* Timing-only: no event buffer, but --profile still gets
               the per-phase wall-time attribution. *)
            Trace.timer_only ~timer:Unix.gettimeofday ()
          else Trace.null
        in
        let t_start = Unix.gettimeofday () in
        let metrics = Metrics.create () in
        let machine = machine_of model in
        let ddg =
          Trace.with_span tr "build" (fun () -> resolve_loop machine name)
        in
        let ddg =
          Trace.with_span tr "preprocess" (fun () ->
              preprocess ddg ~unroll ~interleave ~speculate)
        in
        let out =
          Trace.with_span tr "schedule" (fun () ->
              schedule_with ~scheduler ~budget_ratio:budget ~max_delta_ii
                ~trace:tr ddg)
        in
        let m = out.Ims_core.Ims.mii in
        Format.printf "MII %d (res %d, rec %d); achieved II %d in %d attempt(s)@."
          m.Ims_mii.Mii.mii m.Ims_mii.Mii.resmii m.Ims_mii.Mii.recmii
          out.Ims_core.Ims.ii out.Ims_core.Ims.attempts;
        (* Compact before judging, so the checker stack covers the
           schedule actually printed. *)
        let out =
          match out.Ims_core.Ims.schedule with
          | Some s when compact ->
              let s =
                Trace.with_span tr "compact" (fun () ->
                    let r = Ims_pipeline.Compact.improve s in
                    Format.printf
                      "compaction: %d moves, total lifetime %d -> %d@."
                      r.Ims_pipeline.Compact.moves
                      r.Ims_pipeline.Compact.lifetime_before
                      r.Ims_pipeline.Compact.lifetime_after;
                    r.Ims_pipeline.Compact.schedule)
              in
              { out with Ims_core.Ims.schedule = Some s }
          | _ -> out
        in
        let h = Ims_check.Fallback.harden ~trace:tr ~metrics ddg out in
        let s = h.Ims_check.Fallback.schedule in
        (match h.Ims_check.Fallback.degraded with
        | None -> ()
        | Some reason ->
            Format.printf "DEGRADED: %s@."
              (Ims_check.Fallback.describe reason);
            Format.printf
              "fallback: acyclic list schedule, II %d, no pipelining@."
              s.Ims_core.Schedule.ii);
        Format.printf "%a@." Ims_core.Schedule.pp s;
        if gantt then Format.printf "%a@." Ims_core.Schedule.pp_gantt s;
        Format.printf "checkers: %s@."
          (Ims_check.Check.summary h.Ims_check.Fallback.verdict);
        Format.printf
          "scheduling steps: %d at the final II (%d total; %.2f per op)@."
          out.Ims_core.Ims.steps_final out.Ims_core.Ims.steps_total
          (float_of_int out.Ims_core.Ims.steps_final
          /. float_of_int (Ddg.n_total ddg));
        (if observing then begin
              observe_back_end tr metrics s;
              Metrics.set_int (Metrics.gauge metrics "schedule.ii")
                s.Ims_core.Schedule.ii;
              Metrics.set_int (Metrics.gauge metrics "schedule.mii")
                m.Ims_mii.Mii.mii;
              Metrics.set_int (Metrics.gauge metrics "schedule.attempts")
                out.Ims_core.Ims.attempts;
              Metrics.set_int (Metrics.gauge metrics "schedule.length")
                (Ims_core.Schedule.length s);
              Metrics.set_int (Metrics.gauge metrics "schedule.steps_final")
                out.Ims_core.Ims.steps_final;
              Metrics.set_int (Metrics.gauge metrics "schedule.steps_total")
                out.Ims_core.Ims.steps_total;
              Metrics.set_int (Metrics.gauge metrics "loop.n_real")
                (Ddg.n_real ddg);
              Ims_mii.Counters.record metrics out.Ims_core.Ims.counters;
              (match trace_file with
              | Some file -> write_trace_file tr ~file ~format:trace_format
              | None -> ());
              (match metrics_file with
              | Some file ->
                  (* Span wall times go in last: they are the one
                     non-deterministic part of the registry. *)
                  Trace.record_span_times tr metrics;
                  write_file file (Json.to_string (Metrics.to_json metrics) ^ "\n")
              | None -> ());
              if explain then begin
                let op_name i =
                  let o = Ddg.op ddg i in
                  if i = Ddg.start then "START"
                  else if i = Ddg.stop ddg then "STOP"
                  else Printf.sprintf "op %d (%s)" i o.Op.opcode
                in
                Format.printf "@.=== schedule narrative ===@.";
                Explain.pp ~op_name Format.std_formatter (Trace.events tr)
              end
        end);
        (match profile_file with
        | Some file ->
            (* A one-loop run is a degenerate batch: one job, its spans
               and counters, its wall clock in the latency series. *)
            let p = Profile.create () in
            Profile.add_job p ~spans:(Trace.span_times tr)
              ~counters:(Ims_mii.Counters.to_assoc out.Ims_core.Ims.counters)
              ~seconds:(Unix.gettimeofday () -. t_start) ();
            Profile.add_sample p "ii"
              (float_of_int s.Ims_core.Schedule.ii);
            write_file file (Json.to_string (Profile.to_json p) ^ "\n")
        | None -> ());
        match h.Ims_check.Fallback.degraded with None -> 0 | Some _ -> 2)
  in
  Cmd.v (Cmd.info "schedule" ~doc:"Iteratively modulo schedule a loop")
    Term.(
      const run $ machine_arg $ loop_arg $ budget_arg $ max_delta_ii_arg
      $ closure_jobs_arg $ closure_threshold_arg
      $ scheduler_arg $ unroll_arg $ interleave_arg $ speculate_arg
      $ compact_arg $ gantt_arg $ trace_file_arg $ trace_format_arg
      $ metrics_file_arg $ explain_arg $ profile_file_arg)

(* --- codegen ------------------------------------------------------------------ *)

let cmd_codegen =
  let style_arg =
    let doc = "Code schema: rotating or mve." in
    Arg.(value & opt string "rotating" & info [ "s"; "style" ] ~docv:"STYLE" ~doc)
  in
  let run model name style =
    wrap (fun () ->
        let machine = machine_of model in
        let ddg = resolve_loop machine name in
        match (Ims_core.Ims.modulo_schedule ddg).Ims_core.Ims.schedule with
        | None -> failwith "no schedule found"
        | Some s ->
            let style =
              match style with
              | "rotating" -> Ims_pipeline.Codegen.Rotating
              | "mve" -> Ims_pipeline.Codegen.Mve
              | other -> failwith (Printf.sprintf "unknown style %S" other)
            in
            print_string (Ims_pipeline.Codegen.emit style s);
            Printf.printf "; code size: %d operations (loop body: %d)\n"
              (Ims_pipeline.Codegen.code_size style s)
              (Ddg.n_real ddg))
  in
  Cmd.v (Cmd.info "codegen" ~doc:"Emit pipelined code for a loop")
    Term.(const run $ machine_arg $ loop_arg $ style_arg)

(* --- simulate ------------------------------------------------------------------ *)

let cmd_simulate =
  let trip_arg =
    let doc = "Number of iterations to simulate." in
    Arg.(value & opt int 50 & info [ "t"; "trip" ] ~docv:"N" ~doc)
  in
  let run model name trip =
    wrap (fun () ->
        let machine = machine_of model in
        let ddg = resolve_loop machine name in
        match (Ims_core.Ims.modulo_schedule ddg).Ims_core.Ims.schedule with
        | None -> failwith "no schedule found"
        | Some s -> (
            match Ims_pipeline.Simulator.run ~trip s with
            | Error es ->
                List.iter (Printf.printf "FAIL: %s\n") es;
                failwith "simulation detected violations"
            | Ok r ->
                Printf.printf
                  "%d iterations: %d cycles (formula SL+(n-1)*II = %d)\n" trip
                  r.Ims_pipeline.Simulator.completion r.Ims_pipeline.Simulator.formula;
                Printf.printf "issues: %d, peak iterations in flight: %d\n"
                  r.Ims_pipeline.Simulator.issues r.Ims_pipeline.Simulator.peak_in_flight;
                Printf.printf "steady-state utilization:\n";
                List.iter
                  (fun (rname, u) ->
                    if u > 0.0 then Printf.printf "  %-10s %5.1f%%\n" rname (100.0 *. u))
                  r.Ims_pipeline.Simulator.utilization))
  in
  Cmd.v (Cmd.info "simulate" ~doc:"Run a pipelined loop on the checker")
    Term.(const run $ machine_arg $ loop_arg $ trip_arg)

(* --- batch ---------------------------------------------------------------------- *)

(* Schedule every loop dump in the given files/directories across
   domains (Ims_exec).  One JSONL line per loop, in input order — byte
   identical at any --jobs; casualties (parse errors, budget
   exhaustion, timeouts, cancelled deadlines) are contained per loop
   and summarised on stderr, and the exit code reports them.

   Resilience: --deadline arms a cooperative per-loop preemption token
   (escalated by --escalate on each retry), --retries re-runs transient
   and resource casualties, --journal/--resume give crash-safe restart
   with a final report byte-identical to an uninterrupted run,
   --quarantine dumps the loops that stayed casualties after every
   retry, and --max-failures fail-fasts the whole run through the
   run-level cancellation token.  The --inject-* flags are test hooks
   that fake a hung or flaky loop by name. *)

let read_file_bytes path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let has_substring s sub =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  n = 0 || go 0

(* Expand loop-dump arguments for batch and request: a directory
   contributes its files in sorted basename order, so the corpus order
   (and hence the report order) is deterministic. *)
let expand_loop_inputs ~tag paths =
  let inputs =
    List.concat_map
      (fun path ->
        if Sys.file_exists path && Sys.is_directory path then
          Sys.readdir path |> Array.to_list |> List.sort compare
          |> List.filter_map (fun f ->
                 let full = Filename.concat path f in
                 if Sys.is_directory full then None else Some (f, full))
        else if Sys.file_exists path then [ (Filename.basename path, path) ]
        else
          failwith
            (Printf.sprintf "%s: no such file or directory %S" tag path))
      paths
  in
  if inputs = [] then failwith (tag ^ ": no loop dumps found");
  inputs

(* One schedulable loop, wherever it came from: a textual dump file or
   a record of a binary corpus.  [load] defers the parse/decode to the
   worker that schedules it; [origin] names the culprit for quarantine
   and casualty messages. *)
type batch_input = {
  in_name : string;
  origin : string;
  load : unit -> Ddg.t;
}

(* "I/N" (1-based I): this process schedules the residue class
   [g mod N = I - 1] of the global input indices. *)
let parse_shard_spec tag = function
  | None -> None
  | Some s -> (
      let bad () =
        failwith
          (Printf.sprintf
             "%s: --shard expects I/N with 1 <= I <= N, got %S" tag s)
      in
      match String.index_opt s '/' with
      | None -> bad ()
      | Some cut -> (
          let a = String.sub s 0 cut in
          let b = String.sub s (cut + 1) (String.length s - cut - 1) in
          match (int_of_string_opt a, int_of_string_opt b) with
          | Some i, Some n when n >= 1 && i >= 1 && i <= n -> Some (i, n)
          | _ -> bad ()))

let cmd_batch =
  let paths_arg =
    let doc =
      "Loop dumps (the textual format of 'imsc export') or directories \
       of them.  Mutually exclusive with --corpus."
    in
    Arg.(value & pos_all string [] & info [] ~docv:"PATH" ~doc)
  in
  let corpus_arg =
    let doc =
      "Schedule the loops of a binary corpus file (the 'imsc corpus \
       gen' format) instead of textual dumps; records are streamed and \
       only this process's shard is held in memory."
    in
    Arg.(value & opt (some string) None & info [ "corpus" ] ~docv:"FILE" ~doc)
  in
  let shard_arg =
    let doc =
      "Schedule only the residue class I/N of the global input indices \
       (1-based I: shard 2/4 takes indices 1, 5, 9, ...).  The shard \
       spec is part of the journal manifest, so a resume refuses a \
       journal written for a different shard."
    in
    Arg.(value & opt (some string) None & info [ "shard" ] ~docv:"I/N" ~doc)
  in
  let journal_sync_arg =
    let doc =
      "Fsync the journal every $(docv) appends instead of every append \
       (default 1).  Completed writes survive SIGKILL regardless; this \
       only trades power-loss durability for throughput on huge runs."
    in
    Arg.(value & opt int 1 & info [ "journal-sync" ] ~docv:"N" ~doc)
  in
  let jobs_arg =
    let doc =
      "Worker domains (default: the runtime's recommended domain count)."
    in
    Arg.(
      value
      & opt int (Ims_exec.Exec.default_jobs ())
      & info [ "j"; "jobs" ] ~docv:"N" ~doc)
  in
  let timeout_arg =
    let doc =
      "Soft per-loop wall-clock limit in seconds: an overrunning loop \
       still completes (domains cannot be preempted) but is reported as \
       timed_out instead of ok."
    in
    Arg.(value & opt (some float) None & info [ "timeout" ] ~docv:"S" ~doc)
  in
  let deadline_arg =
    let doc =
      "Preemptive per-loop wall-clock limit in seconds: the scheduler \
       polls a cancellation token and aborts the loop mid-search as \
       cancelled.  Bounds wall clock (to polling granularity), unlike \
       the soft --timeout."
    in
    Arg.(value & opt (some float) None & info [ "deadline" ] ~docv:"S" ~doc)
  in
  let retries_arg =
    let doc =
      "Attempts per loop (default 1 = no retry).  Transient failures \
       back off exponentially; cancelled/timed-out attempts escalate \
       the deadline by --escalate."
    in
    Arg.(value & opt int 1 & info [ "retries" ] ~docv:"N" ~doc)
  in
  let backoff_arg =
    let doc = "Initial retry backoff in seconds (doubles per attempt)." in
    Arg.(value & opt float 0.05 & info [ "backoff" ] ~docv:"S" ~doc)
  in
  let escalate_arg =
    let doc = "Deadline multiplier per cancelled/timed-out attempt." in
    Arg.(value & opt float 2.0 & info [ "escalate" ] ~docv:"F" ~doc)
  in
  let report_arg =
    let doc = "Write the per-loop JSONL report to $(docv) (default stdout)." in
    Arg.(value & opt (some string) None & info [ "report" ] ~docv:"FILE" ~doc)
  in
  let journal_arg =
    let doc =
      "Append every completed loop to a crash-safe journal at $(docv) \
       (fsync'd JSONL; survives SIGKILL with at most one torn line)."
    in
    Arg.(value & opt (some string) None & info [ "journal" ] ~docv:"FILE" ~doc)
  in
  let resume_arg =
    let doc =
      "Resume from the journal at $(docv): loops already journaled are \
       not re-run, their stored report lines are replayed verbatim, and \
       new completions append to the same journal.  Refuses a journal \
       whose manifest hash does not match this run's machine, flags, \
       and corpus."
    in
    Arg.(value & opt (some string) None & info [ "resume" ] ~docv:"FILE" ~doc)
  in
  let quarantine_arg =
    let doc =
      "Write the paths of loops that stayed casualties after every \
       retry (poison inputs) to $(docv), one per line."
    in
    Arg.(
      value & opt (some string) None & info [ "quarantine" ] ~docv:"FILE" ~doc)
  in
  let max_failures_arg =
    let doc =
      "Fail fast: after more than $(docv) casualties, cancel every \
       outstanding loop through the run-level token and exit."
    in
    Arg.(value & opt (some int) None & info [ "max-failures" ] ~docv:"N" ~doc)
  in
  let inject_spin_arg =
    let doc =
      "Test hook: make the loop named NAME busy-wait S seconds \
       (polling its cancellation token) before scheduling."
    in
    Arg.(
      value
      & opt (some string) None
      & info [ "inject-spin" ] ~docv:"NAME:S" ~doc)
  in
  let inject_flaky_arg =
    let doc =
      "Test hook: make the loop named NAME fail with a transient error \
       on its first K attempts."
    in
    Arg.(
      value
      & opt (some string) None
      & info [ "inject-flaky" ] ~docv:"NAME:K" ~doc)
  in
  let status_file_arg =
    let doc =
      "Heartbeat: atomically rewrite $(docv) with a JSON run-status \
       snapshot (jobs done/failed/retried, throughput, ETA) every \
       --status-interval seconds; the final write carries \
       \"running\":false.  A reader never sees a torn file."
    in
    Arg.(
      value & opt (some string) None & info [ "status-file" ] ~docv:"FILE" ~doc)
  in
  let status_interval_arg =
    let doc = "Seconds between status heartbeats." in
    Arg.(value & opt float 1.0 & info [ "status-interval" ] ~docv:"S" ~doc)
  in
  let run model paths corpus shard_spec jobs budget max_delta_ii timeout
      deadline retries backoff escalate report journal journal_sync resume
      quarantine max_failures inject_spin inject_flaky profile_file
      status_file status_interval =
    wrap_code (fun () ->
        let machine = machine_of model in
        let parse_inject flag = function
          | None -> None
          | Some s -> (
              match String.rindex_opt s ':' with
              | None ->
                  failwith
                    (Printf.sprintf "batch: --%s expects NAME:VALUE" flag)
              | Some i -> (
                  let name = String.sub s 0 i in
                  let v = String.sub s (i + 1) (String.length s - i - 1) in
                  match float_of_string_opt v with
                  | Some f -> Some (name, f)
                  | None ->
                      failwith
                        (Printf.sprintf "batch: --%s: bad value %S" flag v)))
        in
        let inject_spin = parse_inject "inject-spin" inject_spin in
        let inject_flaky = parse_inject "inject-flaky" inject_flaky in
        let shard = parse_shard_spec "batch" shard_spec in
        let shard_str =
          match shard with
          | None -> "1/1"
          | Some (i, nsh) -> Printf.sprintf "%d/%d" i nsh
        in
        let in_shard g =
          match shard with None -> true | Some (i, nsh) -> g mod nsh = i - 1
        in
        (* Inputs carry their global corpus index; this process keeps
           (and schedules, journals, reports) only its residue class.
           The corpus hash covers the *whole* corpus either way, so
           every shard of one run shares the corpus ingredient and
           differs only in the shard ingredient. *)
        let inputs, corpus_hash =
          match corpus with
          | Some cpath ->
              if paths <> [] then
                failwith
                  "batch: --corpus and PATH arguments are mutually \
                   exclusive";
              let acc = ref [] in
              let _total =
                Loop_bin.iter cpath (fun r ->
                    if in_shard r.Loop_bin.index then
                      acc :=
                        ( r.Loop_bin.index,
                          {
                            in_name = r.Loop_bin.name;
                            origin =
                              Printf.sprintf "%s#%d" cpath
                                r.Loop_bin.index;
                            load =
                              (fun () ->
                                snd (Loop_bin.decode_record machine r));
                          } )
                        :: !acc)
              in
              (List.rev !acc, Digest.to_hex (Digest.file cpath))
          | None ->
              let files = expand_loop_inputs ~tag:"batch" paths in
              let all =
                List.mapi
                  (fun g (name, path) ->
                    ( g,
                      {
                        in_name = name;
                        origin = path;
                        load =
                          (fun () -> Loop_parse.parse_file machine path);
                      } ))
                  files
              in
              ( List.filter (fun (g, _) -> in_shard g) all,
                Ims_exec.Journal.manifest_hash
                  (List.concat_map
                     (fun (name, path) -> [ name; read_file_bytes path ])
                     files) )
        in
        let n = List.length inputs in
        (* The manifest pins everything a journaled result depends on,
           one named ingredient at a time, so a refused resume can say
           *which* of machine / flags / corpus / shard diverged. *)
        let manifest_parts =
          [
            ( "machine",
              Ims_exec.Journal.manifest_hash
                [ Format.asprintf "%a" Machine.pp machine ] );
            ( "flags",
              Ims_exec.Journal.manifest_hash
                [
                  string_of_float budget;
                  string_of_int max_delta_ii;
                  (match timeout with
                  | None -> "-"
                  | Some t -> string_of_float t);
                  (match deadline with
                  | None -> "-"
                  | Some d -> string_of_float d);
                  string_of_int retries;
                  string_of_float escalate;
                ] );
            ("corpus", corpus_hash);
            ("shard", shard_str);
          ]
        in
        let manifest_hash = Ims_exec.Journal.hash_of_parts manifest_parts in
        let current_manifest =
          {
            Ims_exec.Journal.version = Ims_exec.Journal.format_version;
            tool = "imsc-batch";
            hash = manifest_hash;
            jobs = n;
            parts = manifest_parts;
          }
        in
        if resume <> None && journal <> None then
          failwith
            "batch: --journal and --resume are mutually exclusive (resume \
             appends to the resumed journal)";
        let completed : (int, Json.t) Hashtbl.t = Hashtbl.create 97 in
        let my_indices : (int, unit) Hashtbl.t = Hashtbl.create 97 in
        List.iter (fun (g, _) -> Hashtbl.replace my_indices g ()) inputs;
        (match resume with
        | None -> ()
        | Some path -> (
            match Ims_exec.Journal.read ~path with
            | Error msg ->
                failwith (Printf.sprintf "batch: cannot resume: %s" msg)
            | Ok r ->
                if r.Ims_exec.Journal.manifest.Ims_exec.Journal.tool
                   <> "imsc-batch"
                then
                  failwith
                    (Printf.sprintf
                       "batch: %s is a %S journal, not an imsc-batch one" path
                       r.Ims_exec.Journal.manifest.Ims_exec.Journal.tool);
                if
                  r.Ims_exec.Journal.manifest.Ims_exec.Journal.hash
                  <> manifest_hash
                then
                  failwith
                    (Printf.sprintf
                       "batch: %s: journal %s was written with a \
                        different configuration — refusing to reuse its \
                        results"
                       (Ims_exec.Journal.explain_mismatch
                          ~journal:r.Ims_exec.Journal.manifest
                          ~current:current_manifest)
                       path);
                if r.Ims_exec.Journal.torn then
                  Log.warn batch_log "ignoring torn final record in %s" path;
                List.iter
                  (fun (i, line) ->
                    if Hashtbl.mem my_indices i then
                      Hashtbl.replace completed i line)
                  r.Ims_exec.Journal.entries;
                Log.info batch_log
                  "resuming — %d of %d job(s) already journaled"
                  (Hashtbl.length completed) n));
        let writer =
          match (resume, journal) with
          | Some path, _ ->
              Some (Ims_exec.Journal.reopen ~sync_every:journal_sync ~path ())
          | None, Some path ->
              Some
                (Ims_exec.Journal.create ~sync_every:journal_sync ~path
                   current_manifest)
          | None, None -> None
        in
        let pending =
          List.filter (fun (g, _) -> not (Hashtbl.mem completed g)) inputs
        in
        let schedule_one (shard : Ims_exec.Shard.t) (_, input) =
          (* A parse/decode error propagates and becomes this loop's
             Failed outcome (with file/offset via the registered
             printers); a scheduling casualty degrades to the list
             schedule; a fired deadline escapes as Cancel.Cancelled and
             becomes the Cancelled outcome. *)
          (match inject_flaky with
          | Some (fname, k)
            when fname = input.in_name
                 && float_of_int shard.Ims_exec.Shard.attempt <= k ->
              failwith
                (Printf.sprintf "transient injected fault (attempt %d)"
                   shard.Ims_exec.Shard.attempt)
          | _ -> ());
          (match inject_spin with
          | Some (sname, secs) when sname = input.in_name ->
              let stop = Unix.gettimeofday () +. secs in
              while Unix.gettimeofday () < stop do
                Cancel.poll shard.Ims_exec.Shard.cancel
              done
          | _ -> ());
          let ddg = input.load () in
          let h =
            Ims_check.Fallback.modulo_schedule_or_fallback
              ~budget_ratio:budget ~max_delta_ii
              ~counters:shard.Ims_exec.Shard.counters
              ~trace:shard.Ims_exec.Shard.trace
              ~cancel:shard.Ims_exec.Shard.cancel ddg
          in
          ( h,
            Ims_core.Schedule.length h.Ims_check.Fallback.schedule,
            Ddg.n_real ddg )
        in
        (* Rendering is pure per (input, outcome), so the line journaled
           at completion time and the line in the final report are the
           same bytes.  The field definitions live in Ims_serve.Render —
           shared with the serve daemon, which is what makes a served
           (or cached) record byte-identical to a batch one.  Quarantined
           loops (any final non-ok outcome) additionally carry the
           acyclic fallback schedule when the loop at least parses — the
           run still ships a correct, checked schedule for a loop whose
           pipelining was cancelled. *)
        let render input outcome =
          let extra =
            Ims_serve.Render.casualty_extra ~reparse:input.load outcome
          in
          Ims_exec.Report.line ~name:input.in_name ~extra
            ~fields:Ims_serve.Render.done_fields outcome
        in
        let retry =
          Ims_exec.Retry.create ~max_attempts:(max 1 retries) ~backoff
            ~escalation:escalate
            ~transient:(fun msg -> has_substring msg "transient")
            ()
        in
        let run_cancel =
          match max_failures with
          | Some _ -> Some (Cancel.create ~timer:Unix.gettimeofday ())
          | None -> None
        in
        let pending_arr = Array.of_list pending in
        let failures = ref 0 in
        let on_result =
          match (writer, max_failures) with
          | None, None -> None
          | _ ->
              Some
                (fun i outcome ->
                  let idx, input = pending_arr.(i) in
                  (match writer with
                  | Some w ->
                      Ims_exec.Journal.append w ~index:idx
                        (render input outcome)
                  | None -> ());
                  match (run_cancel, max_failures) with
                  | Some tok, Some limit
                    when not (Ims_exec.Outcome.is_done outcome) ->
                      incr failures;
                      if !failures > limit && not (Cancel.cancelled tok) then begin
                        Log.warn batch_log
                          "%d casualties — cancelling outstanding jobs"
                          !failures;
                        Cancel.cancel tok
                      end
                  | _ -> ())
        in
        let profile = Option.map (fun _ -> Profile.create ()) profile_file in
        let t_start = Unix.gettimeofday () in
        (* Live status: the heartbeat file on request, the TTY progress
           line whenever stderr is a terminal.  Both read the same
           snapshots; the file is published by atomic rename so a
           monitor never parses a torn write. *)
        let tty = Unix.isatty Unix.stderr in
        let status_writer =
          if status_file <> None || tty then
            Some
              (Status.writer ~interval:status_interval ?file:status_file
                 ?tty:(if tty then Some stderr else None)
                 ~timer:Unix.gettimeofday ())
          else None
        in
        (* The final "running":false snapshot must land on every exit
           path — normal completion, --max-failures fail-fast, deadline
           cancellation, or an exception escaping mid-run (say, a
           journal write error) — so a monitor can always tell
           "finished" from "died between heartbeats".  Idempotent: the
           success path publishes the full stats and the protective
           finally becomes a no-op. *)
        let last_counts = ref (Status.zero ~total:(List.length pending)) in
        let finished = ref false in
        let finish_status counts =
          Option.iter
            (fun w ->
              if not !finished then begin
                finished := true;
                Status.finish w
                  {
                    Status.phase = "batch";
                    counts;
                    elapsed = Unix.gettimeofday () -. t_start;
                  }
              end)
            status_writer
        in
        let progress =
          Option.map
            (fun w counts ->
              last_counts := counts;
              Status.heartbeat w
                {
                  Status.phase = "batch";
                  counts;
                  elapsed = Unix.gettimeofday () -. t_start;
                })
            status_writer
        in
        Fun.protect ~finally:(fun () -> finish_status !last_counts)
        @@ fun () ->
        let outcomes, merged, stats =
          Ims_exec.Exec.run ~jobs ?timeout ?deadline ~retry
            ?cancel:run_cancel ?on_result ?profile ?progress ~sleep:Unix.sleepf
            ~timer:Unix.gettimeofday ~f:schedule_one pending
        in
        finish_status
          {
            Status.total = stats.Ims_exec.Exec.jobs;
            ok = stats.Ims_exec.Exec.ok;
            failed = stats.Ims_exec.Exec.failed;
            timed_out = stats.Ims_exec.Exec.timed_out;
            cancelled = stats.Ims_exec.Exec.cancelled;
            retried = stats.Ims_exec.Exec.retried;
          };
        (match (profile_file, profile) with
        | Some file, Some p ->
            (* The achieved IIs make a deterministic series (outcomes
               are in input order), so the profile answers "how were
               the IIs distributed" alongside the wall-clock view. *)
            List.iter
              (function
                | Ims_exec.Outcome.Done ((h : Ims_check.Fallback.t), _, _) ->
                    Profile.add_sample p "ii"
                      (float_of_int
                         h.Ims_check.Fallback.schedule.Ims_core.Schedule.ii)
                | _ -> ())
              outcomes;
            write_file file (Json.to_string (Profile.to_json p) ^ "\n")
        | _ -> ());
        (match writer with
        | Some w -> Ims_exec.Journal.close w
        | None -> ());
        let fresh : (int, Json.t) Hashtbl.t = Hashtbl.create 97 in
        List.iter2
          (fun (idx, input) outcome ->
            Hashtbl.replace fresh idx (render input outcome))
          pending outcomes;
        let lines =
          List.map
            (fun (g, _) ->
              match Hashtbl.find_opt fresh g with
              | Some line -> line
              | None -> Hashtbl.find completed g)
            inputs
        in
        (match report with
        | Some file -> Ims_exec.Report.write_jsonl file lines
        | None -> print_string (Ims_exec.Report.jsonl_string lines));
        (* Casualty accounting reads the report lines, not the outcome
           list, so loops journaled as casualties by an interrupted run
           still count after a resume. *)
        let field key = function
          | Json.Obj kvs -> List.assoc_opt key kvs
          | _ -> None
        in
        let status_of line =
          match field "status" line with
          | Some (Json.String s) -> s
          | _ -> "ok"
        in
        let describe_line line =
          match field "error" line with
          | Some (Json.String e) -> Printf.sprintf "%s: %s" (status_of line) e
          | _ -> (
              match field "elapsed_s" line with
              | Some (Json.Float e) ->
                  Printf.sprintf "%s after %.3fs" (status_of line) e
              | _ -> status_of line)
        in
        let casualty_lines =
          List.filter
            (fun ((_, _), line) -> status_of line <> "ok")
            (List.combine inputs lines)
        in
        let casualty_lines =
          List.map (fun ((_, input), line) -> (input, line)) casualty_lines
        in
        let degraded =
          List.length
            (List.filter
               (fun line ->
                 match field "degraded" line with
                 | Some (Json.Bool true) -> true
                 | _ -> false)
               lines)
        in
        Log.info batch_log "%s" (Ims_exec.Exec.summary stats);
        (* Deliberately NOT routed through the logger: scripts match
           this data line anchored at start of line (^merged counters). *)
        Format.eprintf "merged counters: %a@." Ims_mii.Counters.pp
          merged.Ims_exec.Shard.counters;
        List.iter
          (fun (input, line) ->
            Printf.eprintf "  %s: %s\n" input.in_name (describe_line line))
          casualty_lines;
        (match quarantine with
        | None -> ()
        | Some file ->
            let oc = open_out file in
            List.iter
              (fun (input, _) -> output_string oc (input.origin ^ "\n"))
              casualty_lines;
            close_out oc;
            if casualty_lines <> [] then
              Log.info batch_log "%d poison input(s) quarantined to %s"
                (List.length casualty_lines) file);
        if casualty_lines <> [] then begin
          Log.error batch_log "completed with casualties (see report)";
          1
        end
        else if degraded > 0 then begin
          Log.warn batch_log "%d loop(s) degraded to the acyclic list schedule"
            degraded;
          2
        end
        else 0)
  in
  Cmd.v
    (Cmd.info "batch"
       ~doc:
         "Schedule every loop in the given dumps in parallel and emit a \
          per-loop JSONL report")
    Term.(
      const run $ machine_arg $ paths_arg $ corpus_arg $ shard_arg $ jobs_arg
      $ budget_arg $ max_delta_ii_arg $ timeout_arg $ deadline_arg
      $ retries_arg $ backoff_arg $ escalate_arg $ report_arg $ journal_arg
      $ journal_sync_arg $ resume_arg $ quarantine_arg $ max_failures_arg
      $ inject_spin_arg $ inject_flaky_arg $ profile_file_arg
      $ status_file_arg $ status_interval_arg)

(* --- corpus --------------------------------------------------------------------- *)

let corpus_log =
  Log.create ~human:stderr ~timer:Unix.gettimeofday ~tag:"imsc corpus" ()

let cmd_corpus =
  let out_arg =
    let doc = "Corpus file to write." in
    Arg.(
      required & opt (some string) None & info [ "o"; "out" ] ~docv:"FILE" ~doc)
  in
  let count_arg =
    let doc = "Number of loops in the (global) corpus." in
    Arg.(value & opt int 1000 & info [ "n"; "count" ] ~docv:"N" ~doc)
  in
  let seed_arg =
    let doc =
      "Generator seed.  Loop $(i)i$(b,) of a corpus is a pure function \
       of (seed, i), so any prefix or shard regenerates byte-identically."
    in
    Arg.(value & opt int 1994 & info [ "seed" ] ~docv:"SEED" ~doc)
  in
  let shard_arg =
    let doc =
      "Generate only the residue class I/N of the corpus (1-based I).  \
       The written records are byte-identical to the same residue class \
       of the full corpus."
    in
    Arg.(value & opt (some string) None & info [ "shard" ] ~docv:"I/N" ~doc)
  in
  let cmd_gen =
    let run model out count seed shard_spec =
      wrap (fun () ->
          let machine = machine_of model in
          let shard = parse_shard_spec "corpus gen" shard_spec in
          let t0 = Unix.gettimeofday () in
          let last = ref t0 in
          let written =
            Corpus.generate ?shard
              ~progress:(fun ~index ~written ->
                let now = Unix.gettimeofday () in
                if now -. !last >= 5.0 then begin
                  last := now;
                  Log.info corpus_log
                    "%d record(s) written (at global index %d, %.0f \
                     loops/s)"
                    written index
                    (float_of_int written /. (now -. t0))
                end)
              machine ~seed ~count ~path:out
          in
          let dt = Unix.gettimeofday () -. t0 in
          Log.info corpus_log
            "wrote %d loop(s) to %s in %.1fs (%.0f loops/s, %d bytes)"
            written out dt
            (float_of_int written /. Float.max dt 1e-9)
            (match (Unix.stat out).Unix.st_size with
            | s -> s
            | exception Unix.Unix_error _ -> 0))
    in
    Cmd.v
      (Cmd.info "gen"
         ~doc:
           "Stream a seeded synthetic corpus to a binary loop file \
            (never holds more than one loop in memory)")
      Term.(
        const run $ machine_arg $ out_arg $ count_arg $ seed_arg $ shard_arg)
  in
  let cmd_info =
    let file_arg =
      let doc = "Corpus file to inspect." in
      Arg.(required & pos 0 (some string) None & info [] ~docv:"FILE" ~doc)
    in
    let run file =
      wrap (fun () ->
          (* Streaming walk: every frame and CRC is validated, so this
             doubles as an integrity check — a torn or bit-flipped
             record fails with its byte offset. *)
          let first = ref None and last = ref None in
          let records =
            Loop_bin.iter file (fun r ->
                if !first = None then first := Some r.Loop_bin.name;
                last := Some r.Loop_bin.name)
          in
          let bytes =
            match (Unix.stat file).Unix.st_size with
            | s -> s
            | exception Unix.Unix_error _ -> 0
          in
          Printf.printf
            "%s: format v%d, %d record(s), %d bytes%s\n" file
            Loop_bin.format_version records bytes
            (match (!first, !last) with
            | Some a, Some b -> Printf.sprintf " (%s .. %s)" a b
            | _ -> ""))
    in
    Cmd.v
      (Cmd.info "info"
         ~doc:
           "Validate a binary corpus (header, framing, per-record CRC) \
            and print its record count")
      Term.(const run $ file_arg)
  in
  Cmd.group
    (Cmd.info "corpus"
       ~doc:"Generate and inspect binary loop corpora for fleet-scale runs")
    [ cmd_gen; cmd_info ]

(* --- fleet ---------------------------------------------------------------- *)

let fleet_log =
  Log.create ~human:stderr ~timer:Unix.gettimeofday ~tag:"imsc fleet" ()

let cmd_fleet =
  let corpus_arg =
    let doc = "Binary corpus to schedule (the 'imsc corpus gen' format)." in
    Arg.(
      required
      & opt (some string) None
      & info [ "corpus" ] ~docv:"FILE" ~doc)
  in
  let workers_arg =
    let doc =
      "Worker processes.  The corpus is split into $(docv) residue-class \
       shards; the merged report is byte-identical for any worker count."
    in
    Arg.(value & opt int 2 & info [ "w"; "workers" ] ~docv:"N" ~doc)
  in
  let dir_arg =
    let doc =
      "Run directory for per-shard journals, reports, status files and \
       logs (created if missing)."
    in
    Arg.(
      required & opt (some string) None & info [ "dir" ] ~docv:"DIR" ~doc)
  in
  let jobs_arg =
    let doc = "Worker domains per shard process (default 1)." in
    Arg.(value & opt int 1 & info [ "j"; "jobs" ] ~docv:"N" ~doc)
  in
  let timeout_arg =
    let doc = "Soft per-loop wall-clock limit in seconds (per worker)." in
    Arg.(value & opt (some float) None & info [ "timeout" ] ~docv:"S" ~doc)
  in
  let deadline_arg =
    let doc = "Preemptive per-loop deadline in seconds (per worker)." in
    Arg.(value & opt (some float) None & info [ "deadline" ] ~docv:"S" ~doc)
  in
  let retries_arg =
    let doc = "Attempts per loop inside each worker (default 1)." in
    Arg.(value & opt int 1 & info [ "retries" ] ~docv:"N" ~doc)
  in
  let journal_sync_arg =
    let doc =
      "Fsync each shard journal every $(docv) appends (default 1)."
    in
    Arg.(value & opt int 1 & info [ "journal-sync" ] ~docv:"N" ~doc)
  in
  let max_failures_arg =
    let doc =
      "Run-level fail-fast: terminate every worker once more than \
       $(docv) casualties have accumulated across the whole fleet."
    in
    Arg.(value & opt (some int) None & info [ "max-failures" ] ~docv:"N" ~doc)
  in
  let max_restarts_arg =
    let doc =
      "Per-shard circuit breaker: give up after $(docv) consecutive \
       crashes of one worker."
    in
    Arg.(value & opt int 10 & info [ "max-restarts" ] ~docv:"N" ~doc)
  in
  let report_arg =
    let doc = "Write the merged JSONL report to $(docv) (default stdout)." in
    Arg.(value & opt (some string) None & info [ "report" ] ~docv:"FILE" ~doc)
  in
  let resume_arg =
    let doc =
      "Resume a previous fleet run from the journals in --dir: shards \
       whose journal survived pick up where they died instead of \
       starting over."
    in
    Arg.(value & flag & info [ "resume" ] ~doc)
  in
  let status_file_arg =
    let doc =
      "Atomically rewrite $(docv) with the merged fleet status (summed \
       shard counters plus per-shard pid/state/restarts) every \
       --status-interval seconds; the final write carries \
       \"running\":false."
    in
    Arg.(
      value & opt (some string) None & info [ "status-file" ] ~docv:"FILE" ~doc)
  in
  let status_interval_arg =
    let doc = "Seconds between merged status heartbeats." in
    Arg.(value & opt float 1.0 & info [ "status-interval" ] ~docv:"S" ~doc)
  in
  let run model corpus workers dir jobs budget max_delta_ii timeout deadline
      retries journal_sync max_failures max_restarts report resume
      status_file status_interval =
    wrap_code (fun () ->
        ignore (machine_of model);
        if workers < 1 then failwith "fleet: --workers must be at least 1";
        if not (Sys.file_exists corpus) then
          failwith (Printf.sprintf "fleet: no such corpus: %s" corpus);
        (match Sys.is_directory dir with
        | true -> ()
        | false -> failwith (Printf.sprintf "fleet: %s is not a directory" dir)
        | exception Sys_error _ -> Unix.mkdir dir 0o755);
        let specs =
          List.init workers (fun k ->
              let i = k + 1 in
              let file ext = Filename.concat dir (Printf.sprintf "shard-%d.%s" i ext) in
              let journal = file "journal"
              and report = file "report.jsonl"
              and status_file = file "status.json"
              and log_file = file "log" in
              let common =
                [
                  Sys.executable_name;
                  "batch";
                  "--machine";
                  model;
                  "--corpus";
                  corpus;
                  "--shard";
                  Printf.sprintf "%d/%d" i workers;
                  "--jobs";
                  string_of_int jobs;
                  "--budget-ratio";
                  string_of_float budget;
                  "--max-delta-ii";
                  string_of_int max_delta_ii;
                  "--retries";
                  string_of_int retries;
                  "--journal-sync";
                  string_of_int journal_sync;
                  "--report";
                  report;
                  "--status-file";
                  status_file;
                  "--status-interval";
                  string_of_float status_interval;
                ]
                @ (match timeout with
                  | None -> []
                  | Some t -> [ "--timeout"; string_of_float t ])
                @
                match deadline with
                | None -> []
                | Some d -> [ "--deadline"; string_of_float d ]
              in
              {
                Ims_fleet.Fleet.shard = i;
                fresh_argv = Array.of_list (common @ [ "--journal"; journal ]);
                resume_argv = Array.of_list (common @ [ "--resume"; journal ]);
                journal;
                report;
                status_file;
                log_file;
              })
        in
        (* A fresh run must not inherit a previous run's artifacts: a
           stale status file would pollute the aggregated counters and a
           stale log would interleave two runs' diagnostics.  (Journals
           and reports are truncated/replaced by the workers anyway.) *)
        if not resume then
          List.iter
            (fun (s : Ims_fleet.Fleet.spec) ->
              List.iter
                (fun p -> if Sys.file_exists p then Sys.remove p)
                [ s.journal; s.report; s.status_file; s.log_file ])
            specs;
        Log.info fleet_log
          "%d worker(s) x %d domain(s) over %s (run dir %s)" workers jobs
          corpus dir;
        let outcome =
          Ims_fleet.Fleet.run ?max_failures
            ~backoff:(fun () ->
              Ims_serve.Supervisor.Backoff.create ~max_restarts ())
            ~resume ~log:fleet_log ~status_file ~status_interval
            ~tty:(if Unix.isatty Unix.stderr then Some stderr else None)
            ~prog:Sys.executable_name ~specs ()
        in
        match outcome.Ims_fleet.Fleet.reason with
        | Ims_fleet.Fleet.Breaker shard ->
            Log.error fleet_log
              "shard %d crash-looped; see %s" shard
              (Filename.concat dir (Printf.sprintf "shard-%d.log" shard));
            1
        | Ims_fleet.Fleet.Fail_fast n ->
            Log.error fleet_log
              "aborted after %d casualties across the fleet" n;
            1
        | Ims_fleet.Fleet.Interrupted ->
            Log.warn fleet_log "interrupted before completion";
            1
        | Ims_fleet.Fleet.Completed -> (
            let reports =
              List.map (fun (s : Ims_fleet.Fleet.spec) -> s.report) specs
            in
            let merge emit =
              Ims_fleet.Fleet.merge_reports ~reports ~emit
            in
            let result =
              match report with
              | Some file ->
                  let tmp = file ^ ".tmp" in
                  let oc = open_out_bin tmp in
                  let r =
                    Fun.protect
                      ~finally:(fun () -> close_out_noerr oc)
                      (fun () ->
                        merge (fun line -> output_string oc (line ^ "\n")))
                  in
                  (match r with
                  | Ok _ -> Sys.rename tmp file
                  | Error _ -> if Sys.file_exists tmp then Sys.remove tmp);
                  r
              | None -> merge (fun line -> print_string (line ^ "\n"))
            in
            match result with
            | Error e -> failwith (Printf.sprintf "fleet: merge: %s" e)
            | Ok stats ->
                Log.info fleet_log
                  "merged %d line(s) from %d shard(s), %d restart(s) \
                   survived"
                  stats.Ims_fleet.Fleet.lines workers
                  outcome.Ims_fleet.Fleet.restarts;
                if stats.Ims_fleet.Fleet.merge_casualties > 0 then begin
                  Log.error fleet_log "completed with %d casualt%s (see report)"
                    stats.Ims_fleet.Fleet.merge_casualties
                    (if stats.Ims_fleet.Fleet.merge_casualties = 1 then "y"
                     else "ies");
                  1
                end
                else if stats.Ims_fleet.Fleet.merge_degraded > 0 then begin
                  Log.warn fleet_log
                    "%d loop(s) degraded to the acyclic list schedule"
                    stats.Ims_fleet.Fleet.merge_degraded;
                  2
                end
                else 0))
  in
  Cmd.v
    (Cmd.info "fleet"
       ~doc:
         "Run a sharded batch as supervised worker processes: restart \
          crashed workers from their journals and merge the shard \
          reports byte-identically to a single-process run")
    Term.(
      const run $ machine_arg $ corpus_arg $ workers_arg $ dir_arg $ jobs_arg
      $ budget_arg $ max_delta_ii_arg $ timeout_arg $ deadline_arg
      $ retries_arg $ journal_sync_arg $ max_failures_arg $ max_restarts_arg
      $ report_arg $ resume_arg $ status_file_arg $ status_interval_arg)

(* --- serve / request -------------------------------------------------------- *)

let serve_log =
  Log.create ~human:stderr ~timer:Unix.gettimeofday ~tag:"imsc serve" ()

let request_log =
  Log.create ~human:stderr ~timer:Unix.gettimeofday ~tag:"imsc request" ()

let cmd_serve =
  let socket_arg =
    let doc =
      "Unix-domain socket path to listen on (keep it short — sun_path is \
       ~100 bytes)."
    in
    Arg.(
      required & opt (some string) None & info [ "socket" ] ~docv:"PATH" ~doc)
  in
  let jobs_arg =
    let doc = "Scheduling worker domains." in
    Arg.(
      value
      & opt int (Ims_exec.Exec.default_jobs ())
      & info [ "j"; "jobs" ] ~docv:"N" ~doc)
  in
  let queue_arg =
    let doc =
      "Admission high-water mark: a schedule request arriving with this \
       many jobs already queued is answered with a structured overloaded \
       response (backpressure) instead of queueing unboundedly."
    in
    Arg.(value & opt int 64 & info [ "queue" ] ~docv:"N" ~doc)
  in
  let cache_file_arg =
    let doc =
      "Persist the schedule cache to $(docv) (fsync'd append-only JSONL \
       with a version header): a restarted daemon replays it and starts \
       warm, surviving even SIGKILL with at most one torn entry."
    in
    Arg.(value & opt (some string) None & info [ "cache" ] ~docv:"FILE" ~doc)
  in
  let cache_entries_arg =
    let doc = "In-memory cache capacity in entries (eviction past it)." in
    Arg.(value & opt int 4096 & info [ "cache-entries" ] ~docv:"N" ~doc)
  in
  let cache_policy_arg =
    let doc =
      "Cache eviction policy: fifo (insertion age) or lru (a hit \
       refreshes the entry)."
    in
    Arg.(value & opt string "fifo" & info [ "cache-policy" ] ~docv:"POLICY" ~doc)
  in
  let cache_max_bytes_arg =
    let doc =
      "Byte cap on the resident cache and its on-disk log: eviction \
       keeps the live set under it, and compaction (rewrite live \
       entries, fsync, rename) keeps the append-only file under it."
    in
    Arg.(
      value
      & opt (some int) None
      & info [ "cache-max-bytes" ] ~docv:"BYTES" ~doc)
  in
  let conn_timeout_arg =
    let doc =
      "Per-connection I/O deadline in seconds: a client that holds a \
       request frame incomplete this long (slow-loris) or will not \
       accept a response is disconnected."
    in
    Arg.(
      value & opt (some float) None & info [ "conn-timeout" ] ~docv:"S" ~doc)
  in
  let max_conns_arg =
    let doc =
      "Admission cap on simultaneous connections; excess connections \
       get a structured overloaded reply and are closed (0 = \
       unlimited)."
    in
    Arg.(value & opt int 0 & info [ "max-connections" ] ~docv:"N" ~doc)
  in
  let supervise_arg =
    let doc =
      "Run the daemon under a supervisor: restart it on crash with \
       capped exponential backoff, re-attaching the persistent cache \
       warm; a crash loop opens a circuit breaker instead of spinning."
    in
    Arg.(value & flag & info [ "supervise" ] ~doc)
  in
  let max_restarts_arg =
    let doc =
      "Circuit breaker: give up after this many consecutive fast \
       crashes (a daemon that stays up resets the streak)."
    in
    Arg.(value & opt int 10 & info [ "max-restarts" ] ~docv:"N" ~doc)
  in
  let backoff_arg =
    let doc =
      "First restart delay in seconds (doubles per consecutive crash)."
    in
    Arg.(value & opt float 0.25 & info [ "backoff" ] ~docv:"S" ~doc)
  in
  let backoff_cap_arg =
    let doc = "Upper bound on the restart delay in seconds." in
    Arg.(value & opt float 8.0 & info [ "backoff-cap" ] ~docv:"S" ~doc)
  in
  let pidfile_arg =
    let doc =
      "Atomically rewrite $(docv) with the serving process's pid — \
       under --supervise, the current daemon generation's pid at every \
       restart."
    in
    Arg.(value & opt (some string) None & info [ "pidfile" ] ~docv:"FILE" ~doc)
  in
  let chaos_arg =
    let doc =
      "Test hook: seeded socket-level fault injection on response \
       writes, e.g. seed=42,torn=0.15,garbage=0.1,sever=0.05 — frames \
       are torn, corrupted, or withheld and the connection severed, \
       exercising the client's reconnect-and-replay path."
    in
    Arg.(value & opt (some string) None & info [ "chaos" ] ~docv:"SPEC" ~doc)
  in
  let deadline_arg =
    let doc =
      "Default preemptive per-request deadline in seconds, used when a \
       request does not carry its own."
    in
    Arg.(value & opt (some float) None & info [ "deadline" ] ~docv:"S" ~doc)
  in
  let status_file_arg =
    let doc =
      "Heartbeat: atomically rewrite $(docv) with a JSON status snapshot \
       (requests served, queue state) every --status-interval seconds; \
       the shutdown write carries \"running\":false."
    in
    Arg.(
      value & opt (some string) None & info [ "status-file" ] ~docv:"FILE" ~doc)
  in
  let status_interval_arg =
    let doc = "Seconds between status heartbeats." in
    Arg.(value & opt float 1.0 & info [ "status-interval" ] ~docv:"S" ~doc)
  in
  let metrics_arg =
    let doc =
      "Write the daemon's metrics registry (cache hits/misses/evictions, \
       queue depth, request counts) as JSON to $(docv) on shutdown."
    in
    Arg.(value & opt (some string) None & info [ "metrics" ] ~docv:"FILE" ~doc)
  in
  let inject_spin_arg =
    let doc =
      "Test hook: make requests named NAME busy-wait S seconds (polling \
       their cancellation token) before scheduling."
    in
    Arg.(
      value
      & opt (some string) None
      & info [ "inject-spin" ] ~docv:"NAME:S" ~doc)
  in
  let run socket jobs queue cache_file cache_entries cache_policy
      cache_max_bytes conn_timeout max_conns supervise max_restarts backoff
      backoff_cap pidfile chaos deadline status_file status_interval metrics
      inject_spin =
    wrap_code (fun () ->
        let inject_spin =
          match inject_spin with
          | None -> None
          | Some s -> (
              match String.rindex_opt s ':' with
              | None -> failwith "serve: --inject-spin expects NAME:S"
              | Some i -> (
                  let name = String.sub s 0 i in
                  let v = String.sub s (i + 1) (String.length s - i - 1) in
                  match float_of_string_opt v with
                  | Some f -> Some (name, f)
                  | None ->
                      failwith
                        (Printf.sprintf "serve: --inject-spin: bad value %S" v)))
        in
        let cache_policy =
          match Ims_serve.Cache.policy_of_string cache_policy with
          | Ok p -> p
          | Error e -> failwith ("serve: --cache-policy: " ^ e)
        in
        let chaos =
          match chaos with
          | None -> None
          | Some spec -> (
              match Ims_serve.Chaos.of_spec spec with
              | Ok c -> Some c
              | Error e -> failwith ("serve: --chaos: " ^ e))
        in
        let config restarts =
          {
            Ims_serve.Server.socket;
            workers = max 1 jobs;
            queue = max 1 queue;
            cache_entries = max 1 cache_entries;
            cache_max_bytes;
            cache_policy;
            cache_file;
            deadline;
            conn_timeout;
            max_conns;
            restarts;
            status_file;
            status_interval;
            metrics_file = metrics;
            inject_spin;
            chaos;
          }
        in
        let serve restarts =
          match Ims_serve.Server.run (config restarts) ~machine_of ~log:serve_log with
          | Ok () -> 0
          | Error msg ->
              Log.error serve_log "%s" msg;
              1
        in
        if supervise then begin
          let backoff =
            Ims_serve.Supervisor.Backoff.create ~base:backoff ~cap:backoff_cap
              ~max_restarts ()
          in
          match
            Ims_serve.Supervisor.run ~backoff ?pidfile ~log:serve_log
              ~child:(fun ~restarts -> serve restarts)
              ()
          with
          | Ok () -> 0
          | Error msg ->
              Log.error serve_log "supervisor: %s" msg;
              1
        end
        else begin
          (match pidfile with
          | Some path ->
              Ims_obs.Status.write_atomic ~path
                (string_of_int (Unix.getpid ()) ^ "\n")
          | None -> ());
          serve 0
        end)
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the scheduling daemon: loop-scheduling requests over a \
          Unix-domain socket, answered through a content-addressed, \
          disk-persistent schedule cache")
    Term.(
      const run $ socket_arg $ jobs_arg $ queue_arg $ cache_file_arg
      $ cache_entries_arg $ cache_policy_arg $ cache_max_bytes_arg
      $ conn_timeout_arg $ max_conns_arg $ supervise_arg $ max_restarts_arg
      $ backoff_arg $ backoff_cap_arg $ pidfile_arg $ chaos_arg
      $ deadline_arg $ status_file_arg $ status_interval_arg $ metrics_arg
      $ inject_spin_arg)

let cmd_request =
  let paths_arg =
    let doc =
      "Loop dumps or directories of them (may be empty with --stats or \
       --shutdown)."
    in
    Arg.(value & pos_all string [] & info [] ~docv:"PATH" ~doc)
  in
  let socket_arg =
    let doc = "The daemon's Unix-domain socket." in
    Arg.(
      required & opt (some string) None & info [ "socket" ] ~docv:"PATH" ~doc)
  in
  let deadline_arg =
    let doc = "Preemptive per-request deadline in seconds." in
    Arg.(value & opt (some float) None & info [ "deadline" ] ~docv:"S" ~doc)
  in
  let report_arg =
    let doc = "Write the per-loop JSONL report to $(docv) (default stdout)." in
    Arg.(value & opt (some string) None & info [ "report" ] ~docv:"FILE" ~doc)
  in
  let stats_arg =
    let doc =
      "Fetch the daemon's metrics registry and print it (one JSON line) \
       after the reports."
    in
    Arg.(value & flag & info [ "stats" ] ~doc)
  in
  let shutdown_arg =
    let doc =
      "Ask the daemon to shut down gracefully (after any scheduling \
       requests in this invocation)."
    in
    Arg.(value & flag & info [ "shutdown" ] ~doc)
  in
  let wait_arg =
    let doc =
      "Per-attempt connection deadline in seconds — absorbs the \
       launch-daemon-then-request startup race and bounds each \
       reconnection during replay."
    in
    Arg.(
      value & opt float 5.0
      & info [ "connect-timeout"; "connect-wait" ] ~docv:"S" ~doc)
  in
  let timeout_arg =
    let doc =
      "Overall exchange timeout in seconds, reconnections and replays \
       included — on expiry the command fails with a structured error, \
       never hangs."
    in
    Arg.(value & opt float 600.0 & info [ "timeout"; "io-timeout" ] ~docv:"S" ~doc)
  in
  let retries_arg =
    let doc =
      "Connection attempts before giving up: when the daemon crashes, \
       restarts, or a response frame arrives torn, the client reconnects \
       with jittered exponential backoff and replays exactly the \
       unanswered requests (idempotent: content-hash keys, cached Done \
       results, deterministic recompute)."
    in
    Arg.(value & opt int 8 & info [ "retries" ] ~docv:"N" ~doc)
  in
  let inject_dribble_arg =
    let doc =
      "Test hook (slow-loris probe): instead of scheduling, drip an \
       incomplete request frame one byte every $(docv) seconds and \
       succeed iff the daemon severs the connection — verifies \
       --conn-timeout defends the accept loop."
    in
    Arg.(
      value & opt (some float) None & info [ "inject-dribble" ] ~docv:"S" ~doc)
  in
  let run model paths socket budget max_delta_ii deadline report stats shutdown
      wait timeout retries inject_dribble =
    wrap_code (fun () ->
        match inject_dribble with
        | Some delay -> (
            match
              Ims_serve.Client.dribble_probe ~delay ~deadline:timeout ~socket ()
            with
            | Ok () ->
                Log.info request_log
                  "dribble probe: daemon severed the slow connection";
                0
            | Error msg -> failwith ("request: dribble probe: " ^ msg))
        | None ->
        if paths = [] && not stats && not shutdown then
          failwith
            "request: nothing to do (no loop dumps, no --stats, no --shutdown)";
        let inputs =
          if paths = [] then []
          else expand_loop_inputs ~tag:"request" paths
        in
        let n = List.length inputs in
        let stats_id = n + 1 and bye_id = n + 2 in
        let requests =
          List.mapi
            (fun i (name, path) ->
              Ims_serve.Protocol.Schedule
                {
                  id = i + 1;
                  name;
                  machine = model;
                  budget_ratio = budget;
                  max_delta_ii;
                  deadline;
                  dump = read_file_bytes path;
                })
            inputs
          @ (if stats then [ Ims_serve.Protocol.Stats { id = stats_id } ]
             else [])
          @
          if shutdown then [ Ims_serve.Protocol.Shutdown { id = bye_id } ]
          else []
        in
        let retry = Ims_serve.Client.retry ~attempts:(max 1 retries) () in
        let responses =
          match
            Ims_serve.Client.exchange ~connect_timeout:wait ~timeout ~retry
              ~socket requests
          with
          | Ok rs -> rs
          | Error msg -> failwith ("request: " ^ msg)
        in
        let by_id = Hashtbl.create 97 in
            List.iter
              (fun r ->
                Hashtbl.replace by_id (Ims_serve.Protocol.response_id r) r)
              responses;
            let cached = ref 0 and casualties = ref 0 and degraded = ref 0 in
            let buf = Buffer.create 4096 in
            List.iteri
              (fun i (name, _) ->
                let emit line =
                  Buffer.add_string buf line;
                  Buffer.add_char buf '\n'
                in
                match Hashtbl.find_opt by_id (i + 1) with
                | Some (Ims_serve.Protocol.Report { cached = c; record; _ })
                  ->
                    if c then incr cached;
                    (match Json.of_string record with
                    | Ok (Json.Obj kvs) ->
                        (match List.assoc_opt "status" kvs with
                        | Some (Json.String "ok") | None -> ()
                        | Some _ -> incr casualties);
                        (match List.assoc_opt "degraded" kvs with
                        | Some (Json.Bool true) -> incr degraded
                        | _ -> ())
                    | _ -> ());
                    emit record
                | Some (Ims_serve.Protocol.Overloaded { depth; capacity; _ })
                  ->
                    incr casualties;
                    Log.warn request_log "%s: overloaded (queue %d/%d)" name
                      depth capacity;
                    emit
                      (Json.to_string
                         (Json.Obj
                            [
                              ("name", Json.String name);
                              ("status", Json.String "overloaded");
                            ]))
                | Some (Ims_serve.Protocol.Error { message; _ }) ->
                    incr casualties;
                    Log.error request_log "%s: %s" name message;
                    emit
                      (Json.to_string
                         (Json.Obj
                            [
                              ("name", Json.String name);
                              ("status", Json.String "error");
                              ("error", Json.String message);
                            ]))
                | Some _ | None ->
                    incr casualties;
                    Log.error request_log "%s: no response" name;
                    emit
                      (Json.to_string
                         (Json.Obj
                            [
                              ("name", Json.String name);
                              ("status", Json.String "error");
                              ("error", Json.String "no response");
                            ])))
              inputs;
            (match report with
            | Some file -> write_file file (Buffer.contents buf)
            | None -> print_string (Buffer.contents buf));
            (if stats then
               match Hashtbl.find_opt by_id stats_id with
               | Some (Ims_serve.Protocol.Stats_reply { metrics; _ }) ->
                   print_string (Json.to_string metrics ^ "\n")
               | _ -> Log.warn request_log "no stats reply");
            if shutdown && Hashtbl.mem by_id bye_id then
              Log.info request_log "daemon acknowledged shutdown";
            if n > 0 then
              Log.info request_log "%d of %d loop(s) served from cache"
                !cached n;
            if !casualties > 0 then 1 else if !degraded > 0 then 2 else 0)
  in
  Cmd.v
    (Cmd.info "request"
       ~doc:
         "Schedule loop dumps through a running 'imsc serve' daemon and \
          emit the same per-loop JSONL report as 'imsc batch'")
    Term.(
      const run $ machine_arg $ paths_arg $ socket_arg $ budget_arg
      $ max_delta_ii_arg $ deadline_arg $ report_arg $ stats_arg
      $ shutdown_arg $ wait_arg $ timeout_arg $ retries_arg
      $ inject_dribble_arg)

(* --- cache ---------------------------------------------------------------------- *)

let cmd_cache =
  let file_arg =
    let doc = "The daemon's persistent schedule-cache file." in
    Arg.(required & pos 0 (some string) None & info [] ~docv:"FILE" ~doc)
  in
  let open_offline file =
    (* Entry bounds are a serving-time policy; offline tooling loads the
       whole file so stats/compaction see every live entry. *)
    match Ims_serve.Cache.open_ ~capacity:max_int ~path:file () with
    | Ok c -> c
    | Error msg -> failwith ("cache: " ^ msg)
  in
  let file_size file =
    match Unix.stat file with
    | { Unix.st_size; _ } -> st_size
    | exception Unix.Unix_error (e, _, _) ->
        failwith
          (Printf.sprintf "cache: %s: %s" file (Unix.error_message e))
  in
  let cmd_stats =
    let run file =
      wrap (fun () ->
          let c = open_offline file in
          Fun.protect ~finally:(fun () -> Ims_serve.Cache.close c)
          @@ fun () ->
          let s = Ims_serve.Cache.stats c in
          print_string
            (Json.to_string
               (Json.Obj
                  [
                    ("file", Json.String file);
                    ("entries", Json.Int s.entries);
                    ("loaded", Json.Int s.loaded);
                    ("live_bytes", Json.Int s.bytes);
                    ("log_bytes", Json.Int s.log_bytes);
                    ("torn_tail_truncated", Json.Bool s.torn);
                  ])
            ^ "\n"))
    in
    Cmd.v
      (Cmd.info "stats"
         ~doc:
           "Print a cache file's live/on-disk sizes and entry counts as \
            one JSON line")
      Term.(const run $ file_arg)
  in
  let cmd_compact =
    let run file =
      wrap (fun () ->
          let before = file_size file in
          let c = open_offline file in
          Fun.protect ~finally:(fun () -> Ims_serve.Cache.close c)
          @@ fun () ->
          (* open_ may already have auto-compacted a badly bloated log;
             forcing again is then a no-op.  Either way, report the
             observed shrink. *)
          let rewritten = Ims_serve.Cache.compact c in
          let s = Ims_serve.Cache.stats c in
          let after = s.log_bytes in
          Log.info log
            "%s: %d -> %d bytes (%d live entr%s)%s" file before after s.entries
            (if s.entries = 1 then "y" else "ies")
            (if rewritten || after < before then "" else "; nothing to reclaim"))
    in
    Cmd.v
      (Cmd.info "compact"
         ~doc:
           "Rewrite a cache file down to its live entries (temp file, \
            fsync, atomic rename) — reclaims space left by eviction")
      Term.(const run $ file_arg)
  in
  Cmd.group
    (Cmd.info "cache"
       ~doc:
         "Inspect and compact the serve daemon's persistent schedule \
          cache offline")
    [ cmd_stats; cmd_compact ]

(* --- suite ---------------------------------------------------------------------- *)

let cmd_suite =
  let count_arg =
    let doc = "Number of loops (default the paper's 1327)." in
    Arg.(value & opt int Suite.default_count & info [ "n"; "count" ] ~docv:"N" ~doc)
  in
  let run model count budget scheduler =
    wrap (fun () ->
        let machine = machine_of model in
        let cases = Suite.cases ~machine ~count () in
        let optimal = ref 0 and scheduled = ref 0 in
        List.iter
          (fun c ->
            let out = schedule_with ~scheduler ~budget_ratio:budget c.Suite.ddg in
            match out.Ims_core.Ims.schedule with
            | Some _ ->
                incr scheduled;
                if out.Ims_core.Ims.ii = out.Ims_core.Ims.mii.Ims_mii.Mii.mii then
                  incr optimal
            | None -> ())
          cases;
        Printf.printf "%d loops: %d scheduled, %d (%.1f%%) at II = MII\n"
          (List.length cases) !scheduled !optimal
          (100.0 *. float_of_int !optimal /. float_of_int (List.length cases)))
  in
  Cmd.v
    (Cmd.info "suite" ~doc:"Schedule the whole suite and report optimality")
    Term.(const run $ machine_arg $ count_arg $ budget_arg $ scheduler_arg)

(* --- perf ------------------------------------------------------------------- *)

(* Observability readers: render a --profile dump as tables, or
   tabulate the BENCH_*.json snapshots as a cross-PR perf trajectory.
   Pure JSON walking — these commands never run a scheduler. *)
let cmd_perf =
  let read_json file =
    let contents =
      match open_in_bin file with
      | exception Sys_error msg -> failwith msg
      | ic ->
          Fun.protect
            ~finally:(fun () -> close_in ic)
            (fun () -> really_input_string ic (in_channel_length ic))
    in
    match Json.of_string contents with
    | Ok j -> j
    | Error msg -> failwith (Printf.sprintf "perf: cannot parse %s: %s" file msg)
  in
  let get k = function Json.Obj kvs -> List.assoc_opt k kvs | _ -> None in
  let num = function
    | Some (Json.Int i) -> Some (float_of_int i)
    | Some (Json.Float f) -> Some f
    | _ -> None
  in
  let str = function Some (Json.String s) -> Some s | _ -> None in
  let jlist = function Some (Json.List l) -> l | _ -> [] in
  let fnum ?(def = nan) o = Option.value ~default:def (num o) in
  let fmt_f spec v = if Float.is_nan v then "-" else Printf.sprintf spec v in
  let cmd_show =
    let file_arg =
      let doc = "A --profile dump from 'imsc schedule/batch' or the bench." in
      Arg.(required & pos 0 (some string) None & info [] ~docv:"PROFILE" ~doc)
    in
    let run file =
      wrap (fun () ->
          let j = read_json file in
          Printf.printf "%s: %s job(s)\n" file
            (fmt_f "%.0f" (fnum (get "jobs" j)));
          let table title headers rows =
            if rows <> [] then begin
              Printf.printf "\n%s\n" title;
              print_string (Ims_stats.Text_table.render ~headers rows)
            end
          in
          table "phases (wall-time attribution)"
            [ "phase"; "spans"; "seconds" ]
            (List.map
               (fun ph ->
                 [
                   Option.value ~default:"?" (str (get "name" ph));
                   fmt_f "%.0f" (fnum (get "count" ph));
                   fmt_f "%.3f" (fnum (get "seconds" ph));
                 ])
               (jlist (get "phases" j)));
          table "counters (suite totals and per-job ceilings)"
            [ "counter"; "total"; "per-job max" ]
            (List.map
               (fun c ->
                 [
                   Option.value ~default:"?" (str (get "name" c));
                   fmt_f "%.0f" (fnum (get "total" c));
                   fmt_f "%.0f" (fnum (get "max" c));
                 ])
               (jlist (get "counters" j)));
          table "series (nearest-rank percentiles)"
            [ "series"; "n"; "mean"; "min"; "p50"; "p90"; "p99"; "max" ]
            (List.map
               (fun s ->
                 Option.value ~default:"?" (str (get "name" s))
                 :: fmt_f "%.0f" (fnum (get "count" s))
                 :: List.map
                      (fun k -> fmt_f "%.4g" (fnum (get k s)))
                      [ "mean"; "min"; "p50"; "p90"; "p99"; "max" ])
               (jlist (get "series" j))))
    in
    Cmd.v
      (Cmd.info "show" ~doc:"Render an aggregated run profile as tables")
      Term.(const run $ file_arg)
  in
  (* Trajectory order is the numeric PR index embedded in the filename:
     BENCH_10 belongs after BENCH_4, which both a lexicographic glob
     and a plain sort get wrong.  Sort by the last run of digits in the
     basename; unnumbered snapshots go last, by name. *)
  let snapshot_order files =
    let index file =
      let b = Filename.basename file in
      let is_digit c = c >= '0' && c <= '9' in
      let rec last_digit i =
        if i < 0 then None
        else if is_digit b.[i] then Some i
        else last_digit (i - 1)
      in
      match last_digit (String.length b - 1) with
      | None -> None
      | Some e ->
          let rec start i =
            if i >= 0 && is_digit b.[i] then start (i - 1) else i + 1
          in
          int_of_string_opt (String.sub b (start e) (e - start e + 1))
    in
    List.stable_sort
      (fun a b ->
        match (index a, index b) with
        | Some i, Some j -> if i = j then compare a b else compare i j
        | Some _, None -> -1
        | None, Some _ -> 1
        | None, None -> compare a b)
      files
  in
  let cmd_report =
    let files_arg =
      let doc =
        "Bench snapshots (e.g. BENCH_*.json); tabulated in numeric PR-index \
         order (BENCH_10 after BENCH_4), regardless of argument order."
      in
      Arg.(non_empty & pos_all string [] & info [] ~docv:"BENCH.json" ~doc)
    in
    let run files =
      wrap (fun () ->
          let files = snapshot_order files in
          let counters_of j =
            Option.value ~default:(Json.Obj []) (get "counters" j)
          in
          let row file =
            let j = read_json file in
            let cobj = counters_of j in
            let hist = jlist (get "ii_histogram" j) in
            let loops, ii_sum =
              List.fold_left
                (fun (l, s) e ->
                  let n = fnum ~def:0.0 (get "loops" e) in
                  (l +. n, s +. (n *. fnum ~def:0.0 (get "ii" e))))
                (0.0, 0.0) hist
            in
            let measure_s =
              List.fold_left
                (fun acc ph ->
                  match str (get "name" ph) with
                  | Some "measure (table 3)" -> fnum (get "seconds" ph)
                  | _ -> acc)
                nan
                (jlist (get "phases" j))
            in
            let commit =
              match Option.map (fun m -> str (get "commit" m)) (get "meta" j) with
              | Some (Some c) ->
                  if String.length c > 9 then String.sub c 0 9 else c
              | _ -> "-"
            in
            (* Fleet-scale throughput (PR 10+): loops scheduled per
               second by the multi-process fleet phase; "-" on
               snapshots that predate it or skipped the phase. *)
            let fleet_lps =
              match get "fleet" j with
              | Some f -> fnum (get "loops_per_s" f)
              | None -> nan
            in
            [
              Filename.basename file;
              fmt_f "%.0f" (fnum (get "suite_count" j));
              fmt_f "%.3f" (if loops > 0.0 then ii_sum /. loops else nan);
              fmt_f "%.0f" (fnum (get "mindist" cobj));
              fmt_f "%.0f" (fnum (get "findslot" cobj));
              fmt_f "%.0f" (fnum (get "sched" cobj));
              fmt_f "%.0f" (fnum (get "sched_final" cobj));
              fmt_f "%.2f" measure_s;
              fmt_f "%.0f" fleet_lps;
              commit;
            ]
          in
          print_string
            (Ims_stats.Text_table.render
               ~headers:
                 [
                   "snapshot"; "loops"; "mean II"; "mindist"; "findslot";
                   "sched"; "sched_final"; "measure s"; "fleet l/s"; "commit";
                 ]
               (List.map row files));
          (* The trajectory exists to go down.  Any per-counter regression
             between adjacent snapshots gets called out under the table;
             the hard gate stays in the bench's --baseline compare, so
             this is a flag, not a failure. *)
          let snaps =
            List.map (fun f -> (Filename.basename f, counters_of (read_json f)))
              files
          in
          let rec flag = function
            | (prev_name, prev) :: ((next_name, next) :: _ as rest) ->
                (match next with
                | Json.Obj kvs ->
                    List.iter
                      (fun (k, v) ->
                        match (num (Some v), num (get k prev)) with
                        | Some after, Some before when after > before ->
                            Printf.printf
                              "counter regression: %s %s -> %s: %.0f -> %.0f \
                               (+%.1f%%)\n"
                              k prev_name next_name before after
                              (100.0 *. (after -. before) /. Float.max 1.0 before)
                        | _ -> ())
                      kvs
                | _ -> ());
                flag rest
            | _ -> ()
          in
          flag snaps)
    in
    Cmd.v
      (Cmd.info "report"
         ~doc:"Tabulate bench snapshots as a cross-PR perf trajectory")
      Term.(const run $ files_arg)
  in
  Cmd.group
    (Cmd.info "perf"
       ~doc:"Run-level observability: profiles and the bench trajectory")
    [ cmd_show; cmd_report ]

(* --- check ------------------------------------------------------------------ *)

(* The defense-in-depth commands: run the unified checker stack on one
   loop, or turn the validators on themselves with seeded fault
   injection (mutation testing of the checkers). *)
let cmd_check =
  let cmd_check_loop =
    let run model name budget max_delta_ii =
      wrap_code (fun () ->
          let machine = machine_of model in
          let ddg = resolve_loop machine name in
          let h =
            Ims_check.Fallback.modulo_schedule_or_fallback
              ~budget_ratio:budget ~max_delta_ii ddg
          in
          let s = h.Ims_check.Fallback.schedule in
          Format.printf "II %d, SL %d%s@." s.Ims_core.Schedule.ii
            (Ims_core.Schedule.length s)
            (match h.Ims_check.Fallback.degraded with
            | None -> ""
            | Some r ->
                Printf.sprintf " (DEGRADED: %s)" (Ims_check.Fallback.describe r));
          let failures = h.Ims_check.Fallback.verdict.Ims_check.Check.failures in
          List.iter
            (fun c ->
              match
                List.find_opt
                  (fun (f : Ims_check.Check.failure) ->
                    f.Ims_check.Check.checker = c)
                  failures
              with
              | None ->
                  Format.printf "  %-10s ok@." (Ims_check.Check.checker_name c)
              | Some f ->
                  List.iter
                    (Format.printf "  %-10s FAIL %s@."
                       (Ims_check.Check.checker_name c))
                    f.Ims_check.Check.diagnostics)
            Ims_check.Check.all_checkers;
          match h.Ims_check.Fallback.degraded with
          | None -> 0
          | Some _ -> 2)
    in
    Cmd.v
      (Cmd.info "loop"
         ~doc:"Schedule one loop and run the full checker stack on it")
      Term.(
        const run $ machine_arg $ loop_arg $ budget_arg $ max_delta_ii_arg)
  in
  let cmd_check_mutate =
    let seed_arg =
      let doc = "Seed of the deterministic mutant streams." in
      Arg.(value & opt int 42 & info [ "seed" ] ~docv:"N" ~doc)
    in
    let per_loop_arg =
      let doc = "Mutants generated per class per loop." in
      Arg.(value & opt int 5 & info [ "per-loop" ] ~docv:"N" ~doc)
    in
    let loops_arg =
      let doc =
        "Loops to mutate (kernel names, syn:SEED, or files); default the \
         27 Livermore kernels."
      in
      Arg.(value & pos_all string [] & info [] ~docv:"LOOP" ~doc)
    in
    let run model seed per_loop budget loops =
      wrap_code (fun () ->
          let machine = machine_of model in
          let loops = if loops = [] then Lfk.names else loops in
          let results =
            List.concat
              (List.mapi
                 (fun salt name ->
                   Ims_check.Mutate.sweep ~seed ~salt ~per_class:per_loop
                     ~budget_ratio:budget
                     (resolve_loop machine name))
                 loops)
          in
          let pct k m =
            if m = 0 then "-"
            else Printf.sprintf "%.0f%%" (100.0 *. float_of_int k /. float_of_int m)
          in
          let rows =
            List.map
              (fun (st : Ims_check.Mutate.class_stats) ->
                [
                  Ims_check.Mutate.class_name st.Ims_check.Mutate.cls;
                  string_of_int st.Ims_check.Mutate.mutants;
                  string_of_int st.Ims_check.Mutate.killed;
                  string_of_int st.Ims_check.Mutate.expected_hits;
                  pct st.Ims_check.Mutate.killed st.Ims_check.Mutate.mutants;
                  (if Ims_check.Mutate.must_kill st.Ims_check.Mutate.cls then
                     "yes"
                   else "no");
                ])
              (Ims_check.Mutate.aggregate results)
          in
          Printf.printf "%d loops, %d mutants (seed %d, %d per class per loop)\n"
            (List.length loops) (List.length results) seed per_loop;
          print_string
            (Ims_stats.Text_table.render
               ~headers:
                 [
                   "class"; "mutants"; "killed"; "by designated"; "kill rate";
                   "must-kill";
                 ]
               rows);
          match Ims_check.Mutate.escapees results with
          | [] ->
              print_endline
                "all must-kill mutants caught by their designated checkers";
              0
          | es ->
              List.iter
                (fun (r : Ims_check.Mutate.result_) ->
                  Printf.printf "ESCAPED %s: %s\n"
                    (Ims_check.Mutate.class_name r.Ims_check.Mutate.cls)
                    r.Ims_check.Mutate.description)
                es;
              Printf.printf "%d must-kill mutant(s) escaped the checker stack\n"
                (List.length es);
              1)
    in
    Cmd.v
      (Cmd.info "mutate"
         ~doc:
           "Inject seeded faults at every pipeline layer and report the \
            per-class checker kill rate")
      Term.(
        const run $ machine_arg $ seed_arg $ per_loop_arg $ budget_arg
        $ loops_arg)
  in
  Cmd.group
    (Cmd.info "check"
       ~doc:"The verification stack: checker verdicts and fault injection")
    [ cmd_check_loop; cmd_check_mutate ]

let () =
  let info =
    Cmd.info "imsc" ~version:"1.0"
      ~doc:"Iterative modulo scheduling (Rau, MICRO-27 1994) research driver"
  in
  exit
    (Cmd.eval'
       (Cmd.group info
          [
            cmd_machine; cmd_list; cmd_show; cmd_export; cmd_report; cmd_dot;
            cmd_mii; cmd_schedule; cmd_codegen; cmd_simulate; cmd_suite;
            cmd_batch; cmd_corpus; cmd_fleet; cmd_serve; cmd_request;
            cmd_cache; cmd_check; cmd_perf;
          ]))
