(* First-order recurrences and what they cost: Livermore kernel 5
   (tri-diagonal elimination),

       x[i] = z[i] * (y[i] - x[i-1])

   The x value feeds back through an fsub and an fmul, so RecMII = 9 on
   the Cydra 5 no matter how many functional units are free.  This
   example contrasts it with the vectorizable kernel 12 on the same
   machine, demonstrates that MVE kicks in for long lifetimes, and shows
   the MVE-schema code with its prologue and epilogue.

   Run with: dune exec examples/recurrence.exe *)

open Ims_machine
open Ims_mii
open Ims_core
open Ims_workloads

let show machine name =
  let ddg = Lfk.build machine name in
  let out = Ims.modulo_schedule ddg in
  let m = out.Ims.mii in
  match out.Ims.schedule with
  | None -> Format.printf "%s: scheduling failed@." name
  | Some s ->
      let stages = Schedule.stage_count s in
      Format.printf
        "%s: %d ops, ResMII %d, RecMII %d -> II %d, SL %d, %d stages in flight@."
        name (Ims_ir.Ddg.n_real ddg) m.Mii.resmii m.Mii.recmii out.Ims.ii
        (Schedule.length s) stages;
      (match Ims_pipeline.Simulator.run ~trip:50 s with
      | Ok r ->
          Format.printf "  50 iterations: %d cycles (%.2f cycles/iter)@."
            r.Ims_pipeline.Simulator.completion
            (float_of_int r.Ims_pipeline.Simulator.completion /. 50.0)
      | Error es -> List.iter (Format.printf "  sim error: %s@.") es)

let () =
  let machine = Machine.cydra5 () in
  Format.printf "Recurrence-bound vs vectorizable loops@.@.";
  show machine "lfk05";
  show machine "lfk12";
  Format.printf
    "@.The recurrence loop converges to RecMII cycles/iteration; the@.";
  Format.printf
    "vectorizable loop to its resource bound — pipelining hides the 20-@.";
  Format.printf "cycle load latency in both.@.@.";
  (* The MVE code for the vectorizable loop: long load lifetimes force
     kernel unrolling on a machine without rotating registers. *)
  let ddg = Lfk.build machine "lfk12" in
  match (Ims.modulo_schedule ddg).Ims.schedule with
  | None -> ()
  | Some s ->
      let mve = Ims_pipeline.Mve.expand s in
      Format.printf
        "lfk12 without rotating registers: kernel unrolled x%d (code: %d ops vs %d)@."
        mve.Ims_pipeline.Mve.unroll
        (Ims_pipeline.Codegen.code_size Ims_pipeline.Codegen.Mve s)
        (Ims_pipeline.Codegen.code_size Ims_pipeline.Codegen.Rotating s);
      Format.printf "@.%s@." (Ims_pipeline.Codegen.emit Ims_pipeline.Codegen.Mve s)
