(* The same loops on two machines: the Cydra 5 of the paper's table 2
   (deep latencies, one adder, complex reservation tables) and a generic
   4-issue superscalar (short latencies, simple tables).

   Modulo scheduling adapts automatically — only the machine description
   changes — and the comparison shows where each machine's bottleneck
   sits: recurrences shrink with latency, resource bounds move with unit
   counts.  Both schedules are verified and simulated.

   Run with: dune exec examples/machine_compare.exe *)

open Ims_machine
open Ims_ir
open Ims_mii
open Ims_core
open Ims_workloads

let () =
  let cydra = Machine.cydra5 () in
  let ss4 = Machine.superscalar4 () in
  let rows =
    List.filter_map
      (fun name ->
        let dc = Lfk.build cydra name in
        let ds = Ddg.map_machine dc ss4 in
        let run ddg =
          let out = Ims.modulo_schedule ddg in
          match out.Ims.schedule with
          | Some s ->
              assert (Schedule.verify s = Ok ());
              Some (out.Ims.mii, out.Ims.ii, Schedule.length s)
          | None -> None
        in
        match (run dc, run ds) with
        | Some (mc, iic, slc), Some (ms, iis, sls) ->
            let bound (m : Mii.t) =
              if m.Mii.recmii > m.Mii.resmii then "rec" else "res"
            in
            Some
              [
                name;
                string_of_int iic; string_of_int slc; bound mc;
                string_of_int iis; string_of_int sls; bound ms;
                Printf.sprintf "%.1fx" (float_of_int iic /. float_of_int iis);
              ]
        | _ -> None)
      Lfk.names
  in
  print_string
    (Ims_stats.Text_table.render
       ~headers:
         [ "loop"; "II(cy)"; "SL(cy)"; "bound"; "II(ss4)"; "SL(ss4)"; "bound"; "II ratio" ]
       rows);
  print_newline ();
  print_endline
    "Recurrence-bound loops (lfk05/06/11/17/19/20/24) speed up with the";
  print_endline
    "short superscalar latencies; resource-bound ones track unit counts.";
  print_endline
    "The scheduler itself is untouched: only the reservation tables and";
  print_endline "latencies changed."
