(* A tour of all 27 Livermore loops: MII decomposition, achieved II,
   schedule length, kernel stages, rotating-register demand, and the
   speedup of the modulo schedule over the unpipelined (acyclic list)
   schedule at a trip count of 100.

   Run with: dune exec examples/lfk_tour.exe *)

open Ims_machine
open Ims_mii
open Ims_core
open Ims_workloads

let () =
  let machine = Machine.cydra5 () in
  let trip = 100 in
  let rows =
    List.map
      (fun (name, ddg) ->
        let out = Ims.modulo_schedule ddg in
        match out.Ims.schedule with
        | None -> [ name; "-"; "-"; "-"; "-"; "-"; "-"; "-"; "-" ]
        | Some s ->
            let m = out.Ims.mii in
            let sl = Schedule.length s in
            let acyclic = List_sched.schedule_length ddg in
            (* Unpipelined: iterations back to back; pipelined: the
               section 4.3 formula. *)
            let serial = acyclic * trip in
            let pipelined = sl + ((trip - 1) * out.Ims.ii) in
            let rr = (Ims_pipeline.Rotreg.allocate s).Ims_pipeline.Rotreg.file_size in
            [
              name;
              string_of_int (Ims_ir.Ddg.n_real ddg);
              string_of_int m.Mii.resmii;
              string_of_int m.Mii.recmii;
              string_of_int out.Ims.ii;
              string_of_int sl;
              string_of_int (Schedule.stage_count s);
              string_of_int rr;
              Printf.sprintf "%.1fx" (float_of_int serial /. float_of_int pipelined);
            ])
      (Lfk.all machine)
  in
  print_string
    (Ims_stats.Text_table.render
       ~headers:[ "loop"; "ops"; "ResMII"; "RecMII"; "II"; "SL"; "stages"; "RRs"; "speedup" ]
       rows);
  print_newline ();
  print_endline
    "speedup = unpipelined execution (acyclic schedule x 100 iterations)";
  print_endline "          over the software-pipelined SL + 99*II."
