(* IF-conversion and predicated modulo scheduling: the first-minimum
   search (Livermore kernel 24),

       if (x[k] < xm) xm = x[k]

   The conditional is IF-converted — not an early exit — so the loop
   remains a modulo-scheduling candidate; the predicate network
   (fcmp -> pred_set/pred_reset -> guarded copies) becomes an ordinary
   recurrence through the guard.  The example builds the same loop twice:
   once via the structured IF-conversion substrate and once from the
   textual loop format, and checks both agree.

   Run with: dune exec examples/predicated_min.exe *)

open Ims_machine
open Ims_ir
open Ims_core

let via_if_conversion machine =
  let b = Builder.create machine in
  let ax = Builder.vreg b "ax" and x = Builder.vreg b "x" in
  let xm = Builder.vreg b "xm" and c = Builder.vreg b "c" in
  ignore (Builder.add b ~tag:"ax+=8" ~opcode:"aadd" ~dsts:[ ax ] ~srcs:[ (ax, 3) ] ());
  ignore (Builder.add b ~tag:"x=[ax]" ~opcode:"load" ~dsts:[ x ] ~srcs:[ (ax, 0) ] ());
  ignore
    (Builder.add b ~tag:"x < xm?" ~opcode:"fcmp" ~dsts:[ c ]
       ~srcs:[ (x, 0); (xm, 1) ] ());
  If_conversion.(
    convert b
      (If
         {
           cond = ("c", 0);
           then_ = Block [ stmt "copy" ~dsts:[ "xm" ] ~srcs:[ ("x", 0) ] ~tag:"xm = x" ];
           else_ = Block [ stmt "copy" ~dsts:[ "xm" ] ~srcs:[ ("xm", 1) ] ~tag:"xm = xm'" ];
         }));
  Builder.finish b

let via_text machine =
  Ims_workloads.Loop_parse.parse machine
    {|
ax = aadd ax[3]
x  = load ax
c  = fcmp x xm[1]
pt = pred_set c
pf = pred_reset c
xm = copy x when pt
xm = copy xm[1] when pf
|}

let report name out =
  let m = out.Ims.mii in
  Format.printf "%-16s ResMII %d, RecMII %d -> II %d@." name
    m.Ims_mii.Mii.resmii m.Ims_mii.Mii.recmii out.Ims.ii

let () =
  let machine = Machine.cydra5 () in
  Format.printf "Predicated minimum search (LFK 24 flavour)@.@.";
  let a = Ims.modulo_schedule (via_if_conversion machine) in
  let b = Ims.modulo_schedule (via_text machine) in
  report "if-conversion" a;
  report "textual loop" b;
  assert (a.Ims.ii = b.Ims.ii);
  match a.Ims.schedule with
  | None -> ()
  | Some s ->
      Format.printf "@.%a@." Schedule.pp s;
      Format.printf
        "The recurrence runs through the guard: fcmp(4) + pred_set(4) +@.";
      Format.printf "copy(4) = RecMII %d.  A conditional under IF-conversion@."
        a.Ims.mii.Ims_mii.Mii.recmii;
      Format.printf "costs exactly its predicate network, nothing more.@."
