(* A resource- versus recurrence-bound study on the dot product
   (Livermore kernel 3):

       q = q + z[k] * x[k]

   The reduction carries a flow dependence through the fadd, so RecMII =
   4 on the Cydra 5; resources would allow II = 2.  The example shows how
   the bound flips when the reduction is interleaved (back-substituted)
   across 2 and 4 accumulators, the standard trick the paper alludes to
   in its pre-pass list ("back-substitution ... to further reduce
   critical path lengths").

   Run with: dune exec examples/dot_product.exe *)

open Ims_machine
open Ims_ir
open Ims_mii
open Ims_core

(* The reduction with the accumulator carried [stride] iterations:
   stride 1 is the plain loop; stride k is the k-way interleaving, whose
   recurrence constraint is latency/k. *)
let dot ~stride machine =
  let b = Builder.create machine in
  let az = Builder.vreg b "az" and ax = Builder.vreg b "ax" in
  let z = Builder.vreg b "z" and x = Builder.vreg b "x" in
  let p = Builder.vreg b "p" and q = Builder.vreg b "q" in
  ignore (Builder.add b ~tag:"az+=8" ~opcode:"aadd" ~dsts:[ az ] ~srcs:[ (az, 3) ] ());
  ignore (Builder.add b ~tag:"ax+=8" ~opcode:"aadd" ~dsts:[ ax ] ~srcs:[ (ax, 3) ] ());
  ignore (Builder.add b ~tag:"z=[az]" ~opcode:"load" ~dsts:[ z ] ~srcs:[ (az, 0) ] ());
  ignore (Builder.add b ~tag:"x=[ax]" ~opcode:"load" ~dsts:[ x ] ~srcs:[ (ax, 0) ] ());
  ignore (Builder.add b ~tag:"p=z*x" ~opcode:"fmul" ~dsts:[ p ] ~srcs:[ (z, 0); (x, 0) ] ());
  ignore
    (Builder.add b
       ~tag:(Printf.sprintf "q += p (carried %d)" stride)
       ~opcode:"fadd" ~dsts:[ q ]
       ~srcs:[ (q, stride); (p, 0) ]
       ());
  Builder.finish b

let () =
  let machine = Machine.cydra5 () in
  Format.printf
    "Dot product on the Cydra 5: reduction interleaving moves the bound@.@.";
  Format.printf "%-12s %6s %6s %6s %6s %6s  %s@." "variant" "ResMII" "RecMII"
    "MII" "II" "SL" "bound";
  List.iter
    (fun stride ->
      let ddg = dot ~stride machine in
      let out = Ims.modulo_schedule ddg in
      let m = out.Ims.mii in
      let sl =
        match out.Ims.schedule with
        | Some s -> Schedule.length s
        | None -> -1
      in
      Format.printf "%-12s %6d %6d %6d %6d %6d  %s@."
        (if stride = 1 then "plain" else Printf.sprintf "%d-way" stride)
        m.Mii.resmii m.Mii.recmii m.Mii.mii out.Ims.ii sl
        (if m.Mii.recmii > m.Mii.resmii then "recurrence" else "resource"))
    [ 1; 2; 4 ];
  (* Show the kernel and the rotating-register file of the plain loop. *)
  let out = Ims.modulo_schedule (dot ~stride:1 machine) in
  match out.Ims.schedule with
  | None -> ()
  | Some s ->
      Format.printf "@.%a@." Schedule.pp s;
      let alloc = Ims_pipeline.Rotreg.allocate s in
      Format.printf "%a" Ims_pipeline.Rotreg.pp alloc;
      Format.printf "@.Rotating-register code:@.%s@."
        (Ims_pipeline.Codegen.emit Ims_pipeline.Codegen.Rotating s)
