(* Three modulo schedulers, one loop.

   The same dependence graph goes through:
   - iterative modulo scheduling (the paper): earliest-fit with
     displacement under a budget;
   - Huff's lifetime-sensitive scheduling: bidirectional windows from
     MinDist bounds, producers sink late;
   - swing modulo scheduling (the GCC/LLVM lineage): one placement per
     operation, ordering does all the work.

   All three hit the same II here; they differ in where operations sit
   inside the window and hence in register pressure.  The kernel grids
   make the difference visible.

   Run with: dune exec examples/schedulers.exe *)

open Ims_core
open Ims_workloads

let () =
  let machine = Ims_machine.Machine.cydra5 () in
  let ddg = Kernels.build machine "cmac" in
  Format.printf
    "complex multiply-accumulate (19 ops) on the Cydra 5:@.@.";
  let report name out =
    match out.Ims.schedule with
    | None -> Format.printf "%-22s failed to schedule@." name
    | Some s ->
        assert (Schedule.verify s = Ok ());
        let rr = (Ims_pipeline.Rotreg.allocate s).Ims_pipeline.Rotreg.file_size in
        let lt = Ims_pipeline.Compact.total_lifetime s in
        Format.printf
          "%-22s II %2d, SL %3d, %2d stages, %3d rotating regs, %4d lifetime cycles@."
          name out.Ims.ii (Schedule.length s) (Schedule.stage_count s) rr lt;
        (match Ims_pipeline.Interp.check s with
        | Ok () -> ()
        | Error e -> Format.printf "   SEMANTIC DIVERGENCE: %s@." e)
  in
  let ims = Ims.modulo_schedule ddg in
  report "iterative (paper)" ims;
  report "lifetime (Huff)" (Slack.modulo_schedule ddg);
  report "swing (SMS)" (Sms.modulo_schedule ddg);
  (match ims.Ims.schedule with
  | Some s ->
      let c = Ims_pipeline.Compact.improve s in
      Format.printf
        "%-22s II %2d, SL %3d, %2d stages, %3d rotating regs, %4d lifetime cycles@."
        "iterative + compaction"
        s.Schedule.ii
        (Schedule.length c.Ims_pipeline.Compact.schedule)
        (Schedule.stage_count c.Ims_pipeline.Compact.schedule)
        (Ims_pipeline.Rotreg.allocate c.Ims_pipeline.Compact.schedule).Ims_pipeline.Rotreg.file_size
        c.Ims_pipeline.Compact.lifetime_after
  | None -> ());
  Format.printf "@.IMS kernel:@.";
  (match ims.Ims.schedule with
  | Some s -> Format.printf "%a@." Schedule.pp_gantt s
  | None -> ());
  match (Sms.modulo_schedule ddg).Ims.schedule with
  | Some s ->
      Format.printf "SMS kernel (same II, different placements):@.";
      Format.printf "%a@." Schedule.pp_gantt s
  | None -> ()
