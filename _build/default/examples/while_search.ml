(* Beyond DO-loops: WHILE-loops and loops with early exits.

   The paper's conclusion claims modulo scheduling covers "DO-loops,
   WHILE-loops and loops with early exits" given the right code schemas
   (Rau, Schlansker & Tirumalai 1992).  This example pipelines a search
   loop that leaves from the middle of its body:

       for i:  x = a[i]
               if (x < key) goto found       # early exit
               out[i] = x

   Three things must happen beyond plain modulo scheduling:
   1. stores of iterations younger than an unresolved exit are
      speculation hazards — a control dependence pins them back;
   2. the exit needs its own epilogue, draining the older iterations
      that are still in flight when it fires;
   3. the abandoned younger iterations cost nothing: they only touched
      registers.

   Run with: dune exec examples/while_search.exe *)

open Ims_ir
open Ims_core
open Ims_pipeline
open Ims_workloads

let search machine =
  let k = Kernel_dsl.create machine in
  let ax = Kernel_dsl.addr k "ax" in
  let x, _ = Kernel_dsl.load k ax "x = a[i]" in
  let key = Kernel_dsl.reg k "key" in
  let c = Kernel_dsl.binop k "fcmp" (x, 0) (key, 0) "x < key" in
  let exit_op =
    Builder.add (Kernel_dsl.builder k) ~tag:"exit if found" ~opcode:"branch"
      ~dsts:[] ~srcs:[ (c, 0) ] ()
  in
  let aout = Kernel_dsl.addr k "aout" in
  ignore (Kernel_dsl.store k aout (x, 0) "out[i] = x");
  Kernel_dsl.loop_control k;
  (Kernel_dsl.finish k, exit_op)

let () =
  let machine = Ims_machine.Machine.cydra5 () in
  let ddg, exit_op = search machine in
  Format.printf "loop kind: %s@."
    (match Exit_schema.classify ddg with
    | Exit_schema.Do_loop -> "DO"
    | Exit_schema.While_loop -> "WHILE"
    | Exit_schema.Early_exit -> "early exit");
  let schedule d =
    match (Ims.modulo_schedule d).Ims.schedule with
    | Some s -> s
    | None -> failwith "scheduling failed"
  in
  let naive = schedule ddg in
  Format.printf
    "@.naively scheduled: II=%d — but %d store(s) issue speculatively@."
    naive.Schedule.ii
    (List.length (Exit_schema.speculation_hazards naive ~exit_op));
  let guarded = Exit_schema.guard_stores ddg ~exit_op in
  let s = schedule guarded in
  Format.printf
    "with the store guard: II=%d, hazards: %d@.@."
    s.Schedule.ii
    (List.length (Exit_schema.speculation_hazards s ~exit_op));
  Format.printf "%a@." Schedule.pp s;
  let p = Exit_schema.plan s ~exit_op in
  Format.printf
    "the exit resolves in stage %d; %d operations drain the older@."
    p.Exit_schema.exit_stage p.Exit_schema.code_ops;
  Format.printf "iterations still in flight:@.@.";
  print_string (Exit_schema.emit s ~exit_op);
  Format.printf
    "@.code size: kernel %d + fall-through epilogue + this exit epilogue@."
    (Ims_ir.Ddg.n_real ddg);
  Format.printf
    "(%d extra ops) — the price of leaving a software pipeline early.@."
    p.Exit_schema.code_ops
