examples/while_search.ml: Builder Exit_schema Format Ims Ims_core Ims_ir Ims_machine Ims_pipeline Ims_workloads Kernel_dsl List Schedule
