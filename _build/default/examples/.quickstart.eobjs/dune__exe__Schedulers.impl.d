examples/schedulers.ml: Format Ims Ims_core Ims_machine Ims_pipeline Ims_workloads Kernels Schedule Slack Sms
