examples/while_search.mli:
