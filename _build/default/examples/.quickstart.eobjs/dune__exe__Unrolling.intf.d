examples/unrolling.mli:
