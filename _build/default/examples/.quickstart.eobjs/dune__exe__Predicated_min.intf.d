examples/predicated_min.mli:
