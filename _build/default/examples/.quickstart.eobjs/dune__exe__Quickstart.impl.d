examples/quickstart.ml: Builder Ddg Format Ims_core Ims_ir Ims_machine Ims_mii Ims_pipeline List Machine
