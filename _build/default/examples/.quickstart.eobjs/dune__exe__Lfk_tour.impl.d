examples/lfk_tour.ml: Ims Ims_core Ims_ir Ims_machine Ims_mii Ims_pipeline Ims_stats Ims_workloads Lfk List List_sched Machine Mii Printf Schedule
