examples/machine_compare.mli:
