examples/quickstart.mli:
