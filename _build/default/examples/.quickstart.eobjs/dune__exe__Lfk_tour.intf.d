examples/lfk_tour.mli:
