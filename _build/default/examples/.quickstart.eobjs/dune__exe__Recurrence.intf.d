examples/recurrence.mli:
