examples/schedulers.mli:
