examples/dot_product.ml: Builder Format Ims Ims_core Ims_ir Ims_machine Ims_mii Ims_pipeline List Machine Mii Printf Schedule
