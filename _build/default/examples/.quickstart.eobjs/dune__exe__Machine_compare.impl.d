examples/machine_compare.ml: Ddg Ims Ims_core Ims_ir Ims_machine Ims_mii Ims_stats Ims_workloads Lfk List Machine Mii Printf Schedule
