examples/predicated_min.ml: Builder Format If_conversion Ims Ims_core Ims_ir Ims_machine Ims_mii Ims_workloads Machine Schedule
