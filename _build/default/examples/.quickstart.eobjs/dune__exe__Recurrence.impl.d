examples/recurrence.ml: Format Ims Ims_core Ims_ir Ims_machine Ims_mii Ims_pipeline Ims_workloads Lfk List Machine Mii Schedule
