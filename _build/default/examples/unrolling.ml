(* Fractional MII and pre-scheduling unrolling (paper section 1, step 7).

   The ICCG sweep (LFK 2) issues three loads per iteration against two
   memory ports: its rational resource bound is 1.5 cycles per memory
   pair... concretely, a rational MII the integer II must round up,
   wasting machine bandwidth.  Unrolling the body k times first lets the
   integer II of the unrolled loop approach k times the rational bound.

   The example also shows the complementary transformation for
   recurrence-bound loops: interleaving a reduction across several
   accumulators (back-substitution) divides RecMII instead.

   Run with: dune exec examples/unrolling.exe *)

open Ims_machine
open Ims_ir
open Ims_mii
open Ims_core
open Ims_workloads

let () =
  let machine = Machine.cydra5 () in
  let ddg = Lfk.build machine "lfk02" in
  let r = Rational.of_ddg ddg in
  Format.printf
    "LFK 2: rational ResMII %.2f, rational RecMII %.2f -> rational MII %.2f@."
    r.Rational.res r.Rational.rec_ r.Rational.mii;
  Format.printf "recommended unroll factor: %d@.@."
    (Rational.recommended_unroll ddg);
  Format.printf "%-8s %6s %6s %12s %10s@." "unroll" "MII" "II" "II/orig-iter"
    "waste";
  List.iter
    (fun k ->
      let u = Unroll.by ddg k in
      let out = Ims.modulo_schedule u in
      let per_iter = float_of_int out.Ims.ii /. float_of_int k in
      Format.printf "%-8d %6d %6d %12.2f %9.1f%%@." k
        out.Ims.mii.Mii.mii out.Ims.ii per_iter
        (100.0 *. ((per_iter /. r.Rational.mii) -. 1.0)))
    [ 1; 2; 3; 4 ];
  Format.printf
    "@.Unrolling by the recommended factor removes the rounding waste;@.";
  Format.printf
    "going further only grows the code (and can even lose: the bigger@.";
  Format.printf "graph is harder to pack).@.@.";
  (* The recurrence-bound counterpart: interleaved reduction. *)
  let dot = Lfk.build machine "lfk03" in
  Format.printf
    "LFK 3 (inner product), recurrence-bound at RecMII %d:@."
    (Mii.compute dot).Mii.recmii;
  Format.printf "%-12s %6s %6s@." "accumulators" "RecMII" "II";
  List.iter
    (fun f ->
      let d = Optimize.interleave dot ~factor:f in
      let out = Ims.modulo_schedule d in
      Format.printf "%-12d %6d %6d@." f out.Ims.mii.Mii.recmii out.Ims.ii)
    [ 1; 2; 4 ];
  Format.printf
    "@.(each factor costs one extra cross-accumulator add after the loop)@."
