(* Quickstart: build a loop, compute its MII, modulo schedule it, verify
   the schedule, and print the kernel.

   The loop is the paper's running flavour of example — a vector scale:

       for i:  y[i] = a * x[i]

   Run with: dune exec examples/quickstart.exe *)

open Ims_machine
open Ims_ir

let () =
  (* 1. Pick a machine model: the Cydra 5 of the paper's table 2. *)
  let machine = Machine.cydra5 () in

  (* 2. Describe the loop body.  Sources are (register, distance) pairs:
     distance 1 reads the value produced one iteration earlier, which is
     how the address streams advance. *)
  let b = Builder.create machine in
  let ax = Builder.vreg b "ax" and ay = Builder.vreg b "ay" in
  let x = Builder.vreg b "x" and y = Builder.vreg b "y" in
  let a = Builder.vreg b "a" in  (* loop invariant: never defined inside *)
  ignore (Builder.add b ~tag:"ax += 8" ~opcode:"aadd" ~dsts:[ ax ] ~srcs:[ (ax, 1) ] ());
  ignore (Builder.add b ~tag:"ay += 8" ~opcode:"aadd" ~dsts:[ ay ] ~srcs:[ (ay, 1) ] ());
  ignore (Builder.add b ~tag:"x = [ax]" ~opcode:"load" ~dsts:[ x ] ~srcs:[ (ax, 0) ] ());
  ignore (Builder.add b ~tag:"y = a*x" ~opcode:"fmul" ~dsts:[ y ] ~srcs:[ (a, 0); (x, 0) ] ());
  ignore (Builder.add b ~tag:"[ay] = y" ~opcode:"store" ~dsts:[] ~srcs:[ (ay, 0); (y, 0) ] ());
  let ddg = Builder.finish b in
  Format.printf "%a@." Ddg.pp ddg;

  (* 3. The lower bound: MII = max(ResMII, RecMII). *)
  let mii = Ims_mii.Mii.compute ddg in
  Format.printf "Lower bound: %a@.@." Ims_mii.Mii.pp mii;

  (* 4. Iterative modulo scheduling (figure 2 of the paper). *)
  let out = Ims_core.Ims.modulo_schedule ddg in
  let schedule =
    match out.Ims_core.Ims.schedule with
    | Some s -> s
    | None -> failwith "scheduling failed"
  in
  Format.printf "%a@." Ims_core.Schedule.pp schedule;

  (* 5. Independent verification and simulation. *)
  (match Ims_core.Schedule.verify schedule with
  | Ok () -> Format.printf "verifier: schedule is legal@."
  | Error es -> List.iter (Format.printf "verifier: %s@.") es);
  match Ims_pipeline.Simulator.run ~trip:100 schedule with
  | Ok r ->
      Format.printf
        "simulator: 100 iterations in %d cycles (SL + 99*II = %d)@."
        r.Ims_pipeline.Simulator.completion r.Ims_pipeline.Simulator.formula
  | Error es -> List.iter (Format.printf "simulator: %s@.") es
