open Ims_core

type t = {
  schedule : Schedule.t;
  domain : int list;
  base : (int * int) list;
  blocks : (int * int * int) list;
  file_size : int;
}

let cdiv a b = if a >= 0 then (a + b - 1) / b else -(-a / b)

(* The value of variant [v] written in iteration [j] occupies physical
   cell [(base_v - j) mod size] during
   [def_time(v) + II*j, last_use_time(v) + II*j].

   Physical-cell safety is a circular spacing problem (the "vacating
   distance" of Rau et al. 1992): variant [w] rewrites v's cell
   [Delta(v->w)] iterations after v filled it, where [Delta] is the
   upward distance from [base_v] to [base_w] around the file.  The value
   must be dead by then:

     def_time(w) + II * Delta(v->w)  >  last_use_time(v)

   so [Delta(v->w) >= D(v,w) := floor((last_use(v) - def(w)) / II) + 1]
   when [last_use(v) >= def(w)], and at least 1 always.  [allocate]
   places variants on the circle greedily in definition order, enforcing
   every ordered pair; disjoint architectural blocks alone would NOT be
   sufficient (the semantic replay [Interp.run_rotating] catches such
   allocations clobbering live values). *)
let vacating_distance ~ii (v : Lifetime.range) (w : Lifetime.range) =
  let d = v.last_use_time - w.def_time in
  max 1 (if d < 0 then 1 else cdiv d ii + 1)

let ranges_of ?keep schedule =
  let keep = Option.value ~default:(fun _ -> true) keep in
  List.filter
    (fun (r : Lifetime.range) -> keep r.Lifetime.reg)
    (Lifetime.analyze schedule)

let allocate ?keep schedule =
  let ii = schedule.Schedule.ii in
  let ranges =
    ranges_of ?keep schedule
    |> List.sort (fun (a : Lifetime.range) b ->
           compare (a.def_time, a.reg) (b.def_time, b.reg))
  in
  (* Greedy linear placement: each variant goes at the smallest base
     satisfying the vacating distance from every already-placed one;
     the wraparound constraints then fix the file size. *)
  let placed = ref [] in  (* (range, base), reverse order *)
  List.iter
    (fun (r : Lifetime.range) ->
      let base =
        List.fold_left
          (fun acc ((p : Lifetime.range), pbase) ->
            max acc (pbase + vacating_distance ~ii p r))
          0 !placed
      in
      placed := (r, base) :: !placed)
    ranges;
  let placed = List.rev !placed in
  (* size >= base_v - base_w + D(v,w) for every pair with base_w <=
     base_v (w's writes reach v's cell around the wrap), including
     v = w (the variant's own next write: its lifetime in iterations). *)
  let file_size =
    List.fold_left
      (fun acc ((v : Lifetime.range), vbase) ->
        List.fold_left
          (fun acc ((w : Lifetime.range), wbase) ->
            if wbase <= vbase then
              max acc (vbase - wbase + vacating_distance ~ii v w)
            else acc)
          acc placed)
      1 placed
  in
  let blocks =
    List.map
      (fun ((r : Lifetime.range), base) ->
        (r.reg, base, vacating_distance ~ii r r))
      placed
    |> List.sort compare
  in
  {
    schedule;
    domain = List.map (fun (r : Lifetime.range) -> r.Lifetime.reg) ranges;
    base =
      List.map (fun ((r : Lifetime.range), base) -> (r.reg, base)) placed
      |> List.sort compare;
    blocks;
    file_size;
  }

let base_of t reg = List.assoc_opt reg t.base

let reference t ~reg ~distance =
  match base_of t reg with
  | Some base -> Printf.sprintf "RR[%d]" (base + distance)
  | None -> Printf.sprintf "v%d" reg

let verify t =
  let errors = ref [] in
  let report fmt = Format.kasprintf (fun s -> errors := s :: !errors) fmt in
  let ii = t.schedule.Schedule.ii in
  let ranges =
    List.filter
      (fun (r : Lifetime.range) -> List.mem r.Lifetime.reg t.domain)
      (Lifetime.analyze t.schedule)
  in
  let base_of_range (r : Lifetime.range) =
    match base_of t r.reg with
    | Some b -> Some b
    | None ->
        report "register v%d has no rotating base" r.reg;
        None
  in
  (* Every ordered pair (v, w): w's writes must not reach v's physical
     cell while the value lives. *)
  List.iter
    (fun (v : Lifetime.range) ->
      match base_of_range v with
      | None -> ()
      | Some vb ->
          List.iter
            (fun (w : Lifetime.range) ->
              match base_of_range w with
              | None -> ()
              | Some wb ->
                  let delta =
                    if v.reg = w.reg then t.file_size
                    else
                      ((wb - vb) mod t.file_size + t.file_size)
                      mod t.file_size
                  in
                  if w.def_time + (ii * delta) <= v.last_use_time then
                    report
                      "v%d's cell is rewritten by v%d after %d iterations, \
                       %d cycles before its last read"
                      v.reg w.reg delta
                      (v.last_use_time - (w.def_time + (ii * delta))))
            ranges)
    ranges;
  match !errors with [] -> Ok () | es -> Error (List.rev es)

let pp ppf t =
  Format.fprintf ppf "Rotating file: %d registers@." t.file_size;
  List.iter
    (fun (reg, base, omega) ->
      Format.fprintf ppf "  v%d -> RR[%d..] (vacated after %d iterations)@."
        reg base omega)
    t.blocks

let allocate_by_class schedule =
  let ddg = schedule.Ims_core.Schedule.ddg in
  List.filter_map
    (fun cls ->
      let alloc =
        allocate ~keep:(fun reg -> Regclass.of_reg ddg reg = cls) schedule
      in
      if alloc.blocks = [] then None else Some (cls, alloc))
    Regclass.all
