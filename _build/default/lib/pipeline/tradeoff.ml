open Ims_core

type t = { ii : int; sl : int; acyclic_sl : int; break_even : int }

let pipelined_cycles t ~trip = t.sl + ((trip - 1) * t.ii)
let unpipelined_cycles t ~trip = t.acyclic_sl * trip

let analyze sched =
  let ii = sched.Schedule.ii in
  let sl = Schedule.length sched in
  let acyclic_sl = List_sched.schedule_length sched.Schedule.ddg in
  (* sl + (n-1)*ii <= acyclic_sl * n  <=>  n >= (sl - ii) / (acyclic_sl - ii) *)
  let break_even =
    if acyclic_sl <= ii then max_int
    else max 1 (((sl - ii) + (acyclic_sl - ii) - 1) / (acyclic_sl - ii))
  in
  { ii; sl; acyclic_sl; break_even }

let speedup t ~trip =
  float_of_int (unpipelined_cycles t ~trip)
  /. float_of_int (pipelined_cycles t ~trip)

let pp ppf t =
  Format.fprintf ppf "II=%d SL=%d acyclic=%d break-even trip=%s" t.ii t.sl
    t.acyclic_sl
    (if t.break_even = max_int then "never" else string_of_int t.break_even)
