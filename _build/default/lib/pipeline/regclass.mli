(** Register classes.

    The Cydra 5 did not have one monolithic register file: data values
    lived in the (rotating) context registers, addresses in the address
    unit's registers, and predicates in the iteration control registers
    (ICRs) — three independently-sized rotating files (Rau et al. 1989).
    Allocation and pressure accounting therefore split by class. *)

open Ims_ir

type t = Data | Address | Predicate

val of_reg : Ddg.t -> int -> t
(** Classified by the defining opcode: address add/subtract results are
    [Address], predicate set/reset results are [Predicate], everything
    else [Data].  Registers never defined in the loop (live-ins) are
    classified by their first use: address of a memory operation →
    [Address], guard position → [Predicate], else [Data]. *)

val name : t -> string
val all : t list
