(** Live ranges of loop variants under a modulo schedule.

    The lifetime of a register starts when its defining operation issues
    and ends at the issue of its last reader; a reader at distance [d]
    reads [d * II] cycles into later iterations, so loop-carried values
    live across kernel copies.  Lifetimes longer than the II force either
    modulo variable expansion ({!Mve}) or rotating registers
    ({!Rotreg}). *)

open Ims_core

type range = {
  reg : int;
  def_op : int;  (** First defining operation (program order). *)
  def_time : int;  (** Earliest definition issue time. *)
  last_use_time : int;
      (** Latest reader issue time, with [d*II] added for distance-[d]
          readers; at least [def_time]. *)
  length : int;  (** [last_use_time - def_time]. *)
  copies : int;
      (** Simultaneously live instances: [max 1 (ceil (length / II))] —
          the per-register kernel-unroll requirement. *)
}

val analyze : Schedule.t -> range list
(** One range per register defined in the loop, ascending by register.
    Registers that are defined but never read get a zero-length range. *)

val max_copies : Schedule.t -> int
(** The largest [copies] over all ranges; 1 for a loop needing no
    expansion. *)

val pp : Format.formatter -> range -> unit
