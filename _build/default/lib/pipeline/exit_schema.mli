(** Code schemas for WHILE-loops and loops with early exits
    (Rau, Schlansker & Tirumalai, MICRO-25 1992; Rau 1994 section 1 and
    conclusion).

    A DO-loop's trip count is known at entry, so the pipeline drains
    through a single epilogue.  A WHILE-loop decides each iteration
    whether to continue — the decision is a loop-carried recurrence —
    and a loop with {e early exits} can leave from the middle of the
    body.  Modulo scheduling still applies, but the generated code
    needs, per exit branch, its own epilogue: when the exit resolves in
    kernel stage [s], the iterations already in flight behind it are
    older and must complete, while everything issued for younger
    iterations was speculative and is abandoned.

    Abandonment is only legal if nothing irreversible has happened:
    a store belonging to iteration [j] must not issue until every exit
    of iterations before [j] has resolved.  {!speculation_hazards}
    reports the stores that violate this for a given schedule;
    {!guard_stores} adds the control dependences that make the
    scheduler respect it. *)

open Ims_ir
open Ims_core

type kind =
  | Do_loop  (** One branch, trip count from the counter only. *)
  | While_loop  (** One branch whose condition is data-dependent. *)
  | Early_exit  (** More than one branch. *)

val classify : Ddg.t -> kind
val branches : Ddg.t -> int list
(** The branch operations, ascending. *)

val guard_stores : Ddg.t -> exit_op:int -> Ddg.t
(** Adds a distance-1 control dependence from the exit branch to every
    store, forbidding speculative stores of younger iterations. *)

val speculation_hazards : Schedule.t -> exit_op:int -> int list
(** Stores that could retire for iteration [j] before the exit of
    iteration [j-1] has resolved: [time(store) < time(exit) + latency -
    II].  Empty for schedules built after {!guard_stores}. *)

type plan = {
  exit_op : int;
  exit_stage : int;
  resolve_time : int;  (** Cycle (within the exit's iteration) at which
                           the exit direction is known. *)
  epilogue : (int * int) list;
      (** [(op, age)]: operations still owed when the exit fires —
          [age] iterations older than the exiting one, issuing after
          the exit resolves.  Sorted by issue time. *)
  code_ops : int;  (** Extra operations this exit's epilogue costs. *)
}

val plan : Schedule.t -> exit_op:int -> plan
val emit : Schedule.t -> exit_op:int -> string
(** The exit epilogue as a cycle-by-cycle listing. *)
