(** Modulo variable expansion (Lam 1988; Rau 1994, section 1).

    Without rotating registers, a loop variant whose lifetime exceeds the
    II would be overwritten by the next iteration's definition before its
    last reader fires.  The kernel is therefore unrolled
    [kmin = max over variants of ceil(lifetime / II)] times and each copy
    writes its own renamed instance; a reader at distance [d] in copy [k]
    reads the instance written by copy [(k - d) mod kmin]. *)

open Ims_core

type t = {
  schedule : Schedule.t;
  unroll : int;  (** kmin; 1 when no expansion is needed. *)
  ranges : Lifetime.range list;
}

val expand : Schedule.t -> t

val rename : t -> reg:int -> copy:int -> distance:int -> string
(** The expanded name, e.g. [rename mve ~reg:3 ~copy:2 ~distance:1] is
    ["v3.1"]: instance of [v3] written by kernel copy [(2 - 1) mod kmin].
    Registers with a single simultaneously-live instance (including
    live-ins) keep their plain name ["v3"]. *)

val code_growth : t -> int
(** Kernel operations after expansion: [unroll * n_real]. *)
