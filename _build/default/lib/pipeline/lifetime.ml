open Ims_ir
open Ims_core

type range = {
  reg : int;
  def_op : int;
  def_time : int;
  last_use_time : int;
  length : int;
  copies : int;
}

let cdiv a b = (a + b - 1) / b

let analyze sched =
  let ddg = sched.Schedule.ddg in
  let ii = sched.Schedule.ii in
  let defs = Hashtbl.create 31 in  (* reg -> (op, time) list *)
  let uses = Hashtbl.create 31 in  (* reg -> issue-relative read time list *)
  List.iter
    (fun i ->
      let o = Ddg.op ddg i in
      let t = Schedule.time sched i in
      List.iter
        (fun v ->
          let old = Option.value ~default:[] (Hashtbl.find_opt defs v) in
          Hashtbl.replace defs v ((i, t) :: old))
        o.Op.dsts;
      let record (operand : Op.operand) =
        let read_time = t + (ii * operand.distance) in
        let old =
          Option.value ~default:[] (Hashtbl.find_opt uses operand.reg)
        in
        Hashtbl.replace uses operand.reg (read_time :: old)
      in
      List.iter record o.Op.srcs;
      Option.iter record o.Op.pred)
    (Ddg.real_ids ddg);
  Hashtbl.fold
    (fun reg def_list acc ->
      let def_op, def_time =
        List.fold_left
          (fun (bo, bt) (o, t) -> if t < bt then (o, t) else (bo, bt))
          (List.hd def_list) (List.tl def_list)
      in
      let last_use_time =
        List.fold_left max def_time
          (Option.value ~default:[] (Hashtbl.find_opt uses reg))
      in
      let length = last_use_time - def_time in
      {
        reg;
        def_op;
        def_time;
        last_use_time;
        length;
        copies = max 1 (cdiv length ii);
      }
      :: acc)
    defs []
  |> List.sort (fun a b -> compare a.reg b.reg)

let max_copies sched =
  List.fold_left (fun acc r -> max acc r.copies) 1 (analyze sched)

let pp ppf r =
  Format.fprintf ppf "v%d: def@%d (op %d) last-use@%d len=%d copies=%d" r.reg
    r.def_time r.def_op r.last_use_time r.length r.copies
