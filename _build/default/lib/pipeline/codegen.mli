(** Code emission for modulo-scheduled loops (Rau et al. 1992, "Code
    generation schemas for modulo scheduled loops").

    Two schemas are supported:

    - [Rotating]: hardware with rotating registers and predicated
      execution runs the kernel alone — prologue and epilogue are
      realised by the stage predicates ramping up and down, and there is
      no code expansion.  EVR references become rotating-register
      references via {!Rotreg}.
    - [Mve]: without rotating registers the kernel is unrolled by the
      modulo-variable-expansion factor with renamed instances
      ({!Mve.rename}), and explicit prologue and epilogue code is
      emitted. *)

open Ims_core

type style = Rotating | Mve

val emit : style -> Schedule.t -> string
(** A complete textual listing: header (II, SL, stages, register usage),
    prologue (if any), kernel rows cycle by cycle, epilogue (if any). *)

val code_size : style -> Schedule.t -> int
(** Operations emitted: [n] for [Rotating]; prologue + unrolled kernel +
    epilogue for [Mve] — the code-expansion comparison of the paper's
    section 4.3 (118% of the loop body is the break-even point quoted in
    the conclusion). *)
