(** Lifetime compaction of a finished modulo schedule.

    A post-pass in the spirit of Huff's lifetime sensitivity that can
    only improve: keeping the II fixed, each operation is tentatively
    re-placed anywhere inside the window its scheduled neighbours allow
    ([E, L] from direct dependences), and the move is kept only when it
    reduces the total register lifetime (the sum over live ranges that
    drives both rotating-register demand and the MVE unroll factor).
    Iterates to a fixed point.

    The schedule stays legal by construction — moves go through the MRT
    and respect every dependence — and the result is re-checkable with
    {!Ims_core.Schedule.verify}. *)

open Ims_core

type report = {
  schedule : Schedule.t;
  moves : int;  (** Re-placements that were kept. *)
  lifetime_before : int;  (** Sum of live-range lengths, in cycles. *)
  lifetime_after : int;
}

val total_lifetime : Schedule.t -> int
(** The objective: sum of {!Lifetime.range} lengths. *)

val improve : ?max_rounds:int -> Schedule.t -> report
(** [max_rounds] bounds the fixed-point iteration (default 8). *)
