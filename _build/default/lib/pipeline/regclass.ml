open Ims_ir

type t = Data | Address | Predicate

let all = [ Data; Address; Predicate ]

let name = function
  | Data -> "data"
  | Address -> "address"
  | Predicate -> "predicate"

let of_defining_opcode = function
  | "aadd" | "asub" -> Some Address
  | "pred_set" | "pred_reset" -> Some Predicate
  | _ -> Some Data

let of_reg ddg reg =
  let defining =
    List.find_map
      (fun i ->
        let o = Ddg.op ddg i in
        if List.mem reg o.Op.dsts then of_defining_opcode o.Op.opcode else None)
      (Ddg.real_ids ddg)
  in
  match defining with
  | Some cls -> cls
  | None ->
      (* Live-in: classify by first use. *)
      let use =
        List.find_map
          (fun i ->
            let o = Ddg.op ddg i in
            if Option.fold ~none:false ~some:(fun (p : Op.operand) -> p.reg = reg) o.Op.pred
            then Some Predicate
            else
              match (o.Op.opcode, o.Op.srcs) with
              | ("load" | "store"), first :: _ when first.Op.reg = reg ->
                  Some Address
              | _, srcs when List.exists (fun (s : Op.operand) -> s.reg = reg) srcs ->
                  Some Data
              | _ -> None)
          (Ddg.real_ids ddg)
      in
      Option.value ~default:Data use
