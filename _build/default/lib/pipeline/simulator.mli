(** A cycle-accurate execution check of a modulo-scheduled loop.

    The simulator replays [trip] overlapped iterations of the schedule on
    the machine model and independently verifies, from first principles
    (not from the dependence graph):

    - {b value timing}: every operand read observes a value whose
      producing operation — in the right iteration — has completed;
    - {b resource occupancy}: at no absolute cycle does any resource's
      demand, re-derived from the chosen reservation tables, exceed its
      multiplicity.

    Because the checks are value-based they also catch dependence edges
    the front end failed to generate, not just scheduler bugs.

    It also measures the total execution time, which must equal
    [SL + (trip - 1) * II] — the formula behind the paper's
    execution-time metric (section 4.3). *)

open Ims_core

type report = {
  trip : int;
  completion : int;  (** Cycle after the last write-back. *)
  formula : int;  (** [SL + (trip-1) * II]. *)
  issues : int;  (** Operation instances issued. *)
  peak_in_flight : int;  (** Max concurrently executing iterations. *)
  utilization : (string * float) list;
      (** Steady-state busy fraction per resource. *)
}

val run : ?trip:int -> Schedule.t -> (report, string list) result
(** [trip] defaults to [2 * stages + 3] so the kernel reaches steady
    state.  Returns the error list if any check fails. *)
