open Ims_ir
open Ims_core

type style = Rotating | Mve

let render_op ddg i ~dst ~src =
  let o = Ddg.op ddg i in
  let dsts = String.concat "," (List.map dst o.Op.dsts) in
  let srcs =
    String.concat ","
      (List.map (fun (s : Op.operand) -> src s.reg s.distance) o.Op.srcs)
  in
  let guard =
    match o.Op.pred with
    | Some p -> Printf.sprintf " when %s" (src p.reg p.distance)
    | None -> ""
  in
  match (dsts, srcs) with
  | "", "" -> o.Op.opcode ^ guard
  | "", s -> Printf.sprintf "%s %s%s" o.Op.opcode s guard
  | d, "" -> Printf.sprintf "%s %s%s" o.Op.opcode d guard
  | d, s -> Printf.sprintf "%s %s <- %s%s" o.Op.opcode d s guard

let emit_rotating sched =
  let buf = Buffer.create 1024 in
  let ddg = sched.Schedule.ddg in
  let ii = sched.Schedule.ii in
  let stages = Schedule.stage_count sched in
  let alloc = Rotreg.allocate sched in
  let dst v =
    match Rotreg.base_of alloc v with
    | Some base -> Printf.sprintf "RR[%d]" base
    | None -> Printf.sprintf "v%d" v
  in
  let src v d = Rotreg.reference alloc ~reg:v ~distance:d in
  Buffer.add_string buf
    (Printf.sprintf
       "; rotating-register schema: II=%d SL=%d stages=%d rotating-regs=%d\n"
       ii (Schedule.length sched) stages alloc.Rotreg.file_size);
  Buffer.add_string buf
    "; prologue/epilogue are implicit: stage predicates p[0..stages-1]\n";
  Buffer.add_string buf "kernel:\n";
  Array.iteri
    (fun slot ops ->
      Buffer.add_string buf (Printf.sprintf "  c%-3d:" slot);
      List.iter
        (fun (i, stage) ->
          Buffer.add_string buf
            (Printf.sprintf "  [%s | p[%d]]" (render_op ddg i ~dst ~src) stage))
        ops;
      Buffer.add_char buf '\n')
    (Schedule.kernel_rows sched);
  Buffer.add_string buf "  brtop kernel  ; rotate register file\n";
  Buffer.contents buf

let emit_mve sched =
  let buf = Buffer.create 1024 in
  let ddg = sched.Schedule.ddg in
  let ii = sched.Schedule.ii in
  let stages = Schedule.stage_count sched in
  let mve = Mve.expand sched in
  let unroll = mve.Mve.unroll in
  let naming ~iteration =
    let copy = ((iteration mod unroll) + unroll) mod unroll in
    let dst v = Mve.rename mve ~reg:v ~copy ~distance:0 in
    let src v d = Mve.rename mve ~reg:v ~copy ~distance:d in
    (dst, src)
  in
  Buffer.add_string buf
    (Printf.sprintf "; MVE schema: II=%d SL=%d stages=%d kernel-unroll=%d\n" ii
       (Schedule.length sched) stages unroll);
  (* Prologue: cycles before the first iteration of the steady state.
     Iteration i's copy of an operation scheduled at t issues at t+i*II;
     the kernel starts at cycle (stages-1)*II. *)
  let prologue_cycles = (stages - 1) * ii in
  if prologue_cycles > 0 then begin
    Buffer.add_string buf "prologue:\n";
    for c = 0 to prologue_cycles - 1 do
      let line = Buffer.create 64 in
      List.iter
        (fun i ->
          let t = Schedule.time sched i in
          let iter = (c - t) / ii in
          if (c - t) mod ii = 0 && c >= t && iter <= stages - 2 then begin
            let dst, src = naming ~iteration:iter in
            Buffer.add_string line
              (Printf.sprintf "  [%s | i%d]" (render_op ddg i ~dst ~src) iter)
          end)
        (Ddg.real_ids ddg);
      if Buffer.length line > 0 then
        Buffer.add_string buf (Printf.sprintf "  c%-3d:%s\n" c (Buffer.contents line))
    done
  end;
  Buffer.add_string buf
    (Printf.sprintf "kernel:  ; unrolled x%d, %d cycles per copy\n" unroll ii);
  for copy = 0 to unroll - 1 do
    Array.iteri
      (fun slot ops ->
        Buffer.add_string buf (Printf.sprintf "  k%d.c%-3d:" copy slot);
        List.iter
          (fun (i, stage) ->
            let dst, src = naming ~iteration:copy in
            ignore stage;
            Buffer.add_string buf
              (Printf.sprintf "  [%s]" (render_op ddg i ~dst ~src)))
          ops;
        Buffer.add_char buf '\n')
      (Schedule.kernel_rows sched)
  done;
  Buffer.add_string buf "  branch kernel\n";
  (* Epilogue: drain of the last stages-1 iterations. *)
  if prologue_cycles > 0 then begin
    Buffer.add_string buf "epilogue:\n";
    let sl = Schedule.length sched in
    for c = ii to sl - 1 do
      let line = Buffer.create 64 in
      List.iter
        (fun i ->
          let t = Schedule.time sched i in
          (* Iterations that issued before kernel exit but still have
             this operation pending. *)
          if t >= c && (t - c) mod ii = 0 && (t - c) / ii <= stages - 1 && t > c - 1
          then begin
            let iter = -((t - c) / ii) in
            let dst, src = naming ~iteration:iter in
            Buffer.add_string line
              (Printf.sprintf "  [%s | i%d]" (render_op ddg i ~dst ~src) iter)
          end)
        (Ddg.real_ids ddg);
      if Buffer.length line > 0 then
        Buffer.add_string buf
          (Printf.sprintf "  c%-3d:%s\n" (c - ii) (Buffer.contents line))
    done
  end;
  Buffer.contents buf

let emit style sched =
  match style with Rotating -> emit_rotating sched | Mve -> emit_mve sched

let code_size style sched =
  let ddg = sched.Schedule.ddg in
  let n = Ddg.n_real ddg in
  match style with
  | Rotating -> n
  | Mve ->
      let stages = Schedule.stage_count sched in
      let unroll = (Mve.expand sched).Mve.unroll in
      (* Each operation appears once per kernel copy, once per prologue
         stage below its own, and symmetrically in the epilogue. *)
      let prologue_ops =
        List.fold_left
          (fun acc i ->
            let stage = Schedule.time sched i / sched.Schedule.ii in
            acc + max 0 (stages - 1 - stage))
          0 (Ddg.real_ids ddg)
      in
      let epilogue_ops =
        List.fold_left
          (fun acc i ->
            let stage = Schedule.time sched i / sched.Schedule.ii in
            acc + stage)
          0 (Ddg.real_ids ddg)
      in
      (unroll * n) + prologue_ops + epilogue_ops
