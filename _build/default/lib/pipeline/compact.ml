open Ims_machine
open Ims_ir
open Ims_core

type report = {
  schedule : Schedule.t;
  moves : int;
  lifetime_before : int;
  lifetime_after : int;
}

let total_lifetime sched =
  List.fold_left
    (fun acc (r : Lifetime.range) -> acc + r.length)
    0 (Lifetime.analyze sched)

(* The window a single operation may move in while everything else stays
   put: every direct dependence with a (fixed) neighbour must keep its
   slack non-negative.  STOP is a neighbour too, so the schedule length
   cannot grow. *)
let window sched op =
  let ddg = sched.Schedule.ddg in
  let ii = sched.Schedule.ii in
  let e =
    List.fold_left
      (fun acc (d : Dep.t) ->
        if d.src = op then acc
        else max acc (Schedule.time sched d.src + d.delay - (ii * d.distance)))
      0
      ddg.Ddg.preds.(op)
  in
  let l =
    List.fold_left
      (fun acc (d : Dep.t) ->
        if d.dst = op then acc
        else min acc (Schedule.time sched d.dst - d.delay + (ii * d.distance)))
      max_int
      ddg.Ddg.succs.(op)
  in
  (e, l)

let rebuild sched entries =
  Schedule.make sched.Schedule.ddg ~ii:sched.Schedule.ii
    ~entries:(Array.copy entries)

let improve ?(max_rounds = 8) sched =
  let ddg = sched.Schedule.ddg in
  let ii = sched.Schedule.ii in
  let machine = ddg.Ddg.machine in
  let entries =
    Array.init (Ddg.n_total ddg) (fun i ->
        { Schedule.time = Schedule.time sched i; alt = Schedule.alt sched i })
  in
  let mrt = Mrt.create machine ~ii in
  let table_of i k =
    let opcode = Machine.opcode machine (Ddg.op ddg i).Op.opcode in
    (List.nth opcode.Opcode.alternatives k).Opcode.table
  in
  List.iter
    (fun i -> Mrt.reserve mrt ~op:i (table_of i entries.(i).Schedule.alt)
        ~time:entries.(i).Schedule.time)
    (Ddg.real_ids ddg);
  let lifetime_before = total_lifetime sched in
  let moves = ref 0 in
  let improved_in_round = ref true in
  let rounds = ref 0 in
  let current_total = ref lifetime_before in
  while !improved_in_round && !rounds < max_rounds do
    improved_in_round := false;
    incr rounds;
    List.iter
      (fun op ->
        let here = rebuild sched entries in
        let e, l = window here op in
        (* Keep the candidate set bounded on slack-rich operations. *)
        let l = min l (e + (4 * ii)) in
        if l > e then begin
          let t0 = entries.(op).Schedule.time in
          let k0 = entries.(op).Schedule.alt in
          Mrt.release mrt ~op (table_of op k0) ~time:t0;
          let best = ref (t0, k0, !current_total) in
          let alternatives =
            (Machine.opcode machine (Ddg.op ddg op).Op.opcode).Opcode.alternatives
          in
          for t = e to l do
            List.iteri
              (fun k (alt : Opcode.alternative) ->
                if (t <> t0 || k <> k0) && Mrt.fits mrt alt.Opcode.table ~time:t
                then begin
                  entries.(op) <- { Schedule.time = t; alt = k };
                  let candidate = total_lifetime (rebuild sched entries) in
                  let _, _, best_total = !best in
                  if candidate < best_total then best := (t, k, candidate)
                end)
              alternatives
          done;
          let t, k, total = !best in
          entries.(op) <- { Schedule.time = t; alt = k };
          Mrt.reserve mrt ~op (table_of op k) ~time:t;
          if t <> t0 || k <> k0 then begin
            incr moves;
            improved_in_round := true;
            current_total := total
          end
        end)
      (Ddg.real_ids ddg)
  done;
  let schedule = rebuild sched entries in
  { schedule; moves = !moves; lifetime_before; lifetime_after = !current_total }
