open Ims_machine
open Ims_ir
open Ims_core

type kind = Do_loop | While_loop | Early_exit

let branches ddg =
  List.filter
    (fun i -> (Ddg.op ddg i).Op.opcode = "branch")
    (Ddg.real_ids ddg)

(* Does any transitive producer of [root] touch data (memory or FP),
   rather than just the integer counter chain? *)
let data_dependent ddg root =
  let seen = Array.make (Ddg.n_total ddg) false in
  let rec walk i =
    if not seen.(i) then begin
      seen.(i) <- true;
      List.iter
        (fun (d : Dep.t) ->
          if not (Ddg.is_pseudo ddg d.src) then walk d.src)
        ddg.Ddg.preds.(i)
    end
  in
  walk root;
  List.exists
    (fun i ->
      seen.(i) && i <> root
      &&
      match (Ddg.op ddg i).Op.opcode with
      | "load" | "fadd" | "fsub" | "fmul" | "fdiv" | "fcmp" | "sqrt" -> true
      | _ -> false)
    (Ddg.real_ids ddg)

let classify ddg =
  match branches ddg with
  | [] | [ _ ] ->
      let data =
        match branches ddg with [ b ] -> data_dependent ddg b | _ -> false
      in
      if data then While_loop else Do_loop
  | _ -> Early_exit

let guard_stores ddg ~exit_op =
  let stop = Ddg.stop ddg in
  let lat = Ddg.latency ddg exit_op in
  let extra =
    List.filter_map
      (fun i ->
        if (Ddg.op ddg i).Op.opcode = "store" then
          Some
            (Dep.make ddg.Ddg.model Dep.Control ~src:exit_op ~dst:i ~distance:1
               ~pred_latency:lat ~succ_latency:1)
        else None)
      (Ddg.real_ids ddg)
  in
  let existing =
    Array.to_list ddg.Ddg.succs
    |> List.concat
    |> List.filter (fun (d : Dep.t) ->
           not (d.src = Ddg.start || d.dst = stop || d.src = stop))
  in
  let ops = List.map (Ddg.op ddg) (Ddg.real_ids ddg) in
  Ddg.make ddg.Ddg.machine ~model:ddg.Ddg.model ops (existing @ extra)

let speculation_hazards sched ~exit_op =
  let ddg = sched.Schedule.ddg in
  let ii = sched.Schedule.ii in
  let resolve =
    Schedule.time sched exit_op
    + Machine.latency ddg.Ddg.machine (Ddg.op ddg exit_op).Op.opcode
  in
  List.filter
    (fun i ->
      (Ddg.op ddg i).Op.opcode = "store"
      && Schedule.time sched i < resolve - ii)
    (Ddg.real_ids ddg)

type plan = {
  exit_op : int;
  exit_stage : int;
  resolve_time : int;
  epilogue : (int * int) list;
  code_ops : int;
}

let plan sched ~exit_op =
  let ddg = sched.Schedule.ddg in
  let ii = sched.Schedule.ii in
  let stages = Schedule.stage_count sched in
  let t_exit = Schedule.time sched exit_op in
  let resolve_time =
    t_exit + Machine.latency ddg.Ddg.machine (Ddg.op ddg exit_op).Op.opcode
  in
  (* When the exit of iteration i fires, iteration i-age (age >= 0) has
     already issued everything up to cycle t_exit + age*II of its own
     schedule; the rest is the epilogue.  Younger iterations (age < 0)
     are squashed. *)
  let epilogue =
    List.concat_map
      (fun age ->
        List.filter_map
          (fun op ->
            (* The exiting iteration (age 0) only owes operations that
               precede the exit in program order but were scheduled after
               it; older iterations owe everything still outstanding. *)
            if age = 0 && op >= exit_op then None
            else begin
              let t = Schedule.time sched op in
              if t > t_exit + (age * ii) then Some (t - (age * ii), op, age)
              else None
            end)
          (Ddg.real_ids ddg))
      (List.init stages Fun.id)
    |> List.sort compare
    |> List.map (fun (_, op, age) -> (op, age))
  in
  {
    exit_op;
    exit_stage = t_exit / ii;
    resolve_time;
    epilogue;
    code_ops = List.length epilogue;
  }

let emit sched ~exit_op =
  let ddg = sched.Schedule.ddg in
  let ii = sched.Schedule.ii in
  let p = plan sched ~exit_op in
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    (Printf.sprintf
       "; exit epilogue for op %d (stage %d, resolves at cycle %d)\n; %d \
        operations drain the older in-flight iterations\n"
       p.exit_op p.exit_stage p.resolve_time p.code_ops);
  List.iter
    (fun (op, age) ->
      let o = Ddg.op ddg op in
      Buffer.add_string buf
        (Printf.sprintf "  c%-4d [%s%s | i-%d]\n"
           (Schedule.time sched op - (age * ii))
           o.Op.opcode
           (if o.Op.tag = "" then "" else " ; " ^ o.Op.tag)
           age))
    p.epilogue;
  Buffer.contents buf
