lib/pipeline/simulator.ml: Array Ddg Format Hashtbl Ims_core Ims_ir Ims_machine List Machine Op Option Reservation Resource Schedule
