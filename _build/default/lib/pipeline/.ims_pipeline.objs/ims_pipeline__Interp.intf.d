lib/pipeline/interp.mli: Ddg Ims_core Ims_ir Schedule
