lib/pipeline/mve.mli: Ims_core Lifetime Schedule
