lib/pipeline/tradeoff.ml: Format Ims_core List_sched Schedule
