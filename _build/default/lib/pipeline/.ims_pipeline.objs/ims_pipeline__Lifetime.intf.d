lib/pipeline/lifetime.mli: Format Ims_core Schedule
