lib/pipeline/interp.ml: Array Ddg Float Fun Hashtbl Ims_core Ims_ir Ims_machine List Mve Op Option Printf Rotreg Schedule
