lib/pipeline/regclass.ml: Ddg Ims_ir List Op Option
