lib/pipeline/exit_schema.mli: Ddg Ims_core Ims_ir Schedule
