lib/pipeline/pressure.mli: Ddg Ims Ims_core Ims_ir Result Rotreg Schedule
