lib/pipeline/rotreg.mli: Format Ims_core Regclass Schedule
