lib/pipeline/compact.ml: Array Ddg Dep Ims_core Ims_ir Ims_machine Lifetime List Machine Mrt Op Opcode Schedule
