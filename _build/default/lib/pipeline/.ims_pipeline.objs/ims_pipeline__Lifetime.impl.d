lib/pipeline/lifetime.ml: Ddg Format Hashtbl Ims_core Ims_ir List Op Option Schedule
