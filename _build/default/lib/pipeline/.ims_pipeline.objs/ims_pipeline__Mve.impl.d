lib/pipeline/mve.ml: Ddg Ims_core Ims_ir Lifetime List Printf Schedule
