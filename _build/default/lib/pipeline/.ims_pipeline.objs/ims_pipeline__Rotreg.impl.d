lib/pipeline/rotreg.ml: Format Ims_core Lifetime List Option Printf Regclass Schedule
