lib/pipeline/compact.mli: Ims_core Schedule
