lib/pipeline/regalloc.mli: Format Ims_core Schedule
