lib/pipeline/simulator.mli: Ims_core Schedule
