lib/pipeline/pressure.ml: Compact Ddg Ims Ims_core Ims_ir Ims_mii List Option Printf Recmii Rotreg Schedule
