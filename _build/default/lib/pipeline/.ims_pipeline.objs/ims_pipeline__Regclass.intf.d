lib/pipeline/regclass.mli: Ddg Ims_ir
