lib/pipeline/exit_schema.ml: Array Buffer Ddg Dep Fun Ims_core Ims_ir Ims_machine List Machine Op Printf Schedule
