lib/pipeline/regalloc.ml: Format Ims_core Lifetime List Mve Schedule
