lib/pipeline/tradeoff.mli: Format Ims_core Schedule
