lib/pipeline/codegen.mli: Ims_core Schedule
