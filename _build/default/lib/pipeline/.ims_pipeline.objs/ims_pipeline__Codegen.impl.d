lib/pipeline/codegen.ml: Array Buffer Ddg Ims_core Ims_ir List Mve Op Printf Rotreg Schedule String
