(** Register allocation for the MVE code schema (paper section 1: after
    modulo variable expansion, "traditional register allocation ... is
    performed for the kernel").

    The unrolled kernel repeats with period [K = unroll * II]; instance
    [c] of a loop variant lives in a cyclic interval of that period
    (same shape in every repetition), so kernel allocation is colouring
    of circular arcs.  The allocator cuts the circle at the cycle
    crossed by the fewest arcs, pins the crossing arcs to their own
    registers, and linear-scans the rest — a classic approximation that
    stays within a couple of registers of the density lower bound on
    these kernels.

    Live-in registers (loop invariants) are not allocated here; they
    stay in ordinary global registers, exactly as the prologue/epilogue
    code around the kernel expects. *)

open Ims_core

type interval = {
  reg : int;  (** Virtual register. *)
  copy : int;  (** MVE instance. *)
  start : int;  (** Start cycle within the period, [0..period-1]. *)
  length : int;  (** Cycles live; at most the period. *)
}

type t = {
  schedule : Schedule.t;
  period : int;  (** [unroll * II]. *)
  intervals : interval list;
  assignment : ((int * int) * int) list;  (** ((reg, copy), physical). *)
  registers_used : int;
  density_lower_bound : int;
      (** Max number of simultaneously live intervals — no allocation
          can use fewer registers. *)
}

val allocate : Schedule.t -> t

val physical : t -> reg:int -> copy:int -> int option
(** [None] for live-ins. *)

val verify : t -> (unit, string list) result
(** No two overlapping intervals share a physical register, every
    interval is assigned, and the register count is as claimed. *)

val pp : Format.formatter -> t -> unit
