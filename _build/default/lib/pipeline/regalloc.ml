open Ims_core

type interval = { reg : int; copy : int; start : int; length : int }

type t = {
  schedule : Schedule.t;
  period : int;
  intervals : interval list;
  assignment : ((int * int) * int) list;
  registers_used : int;
  density_lower_bound : int;
}

(* Cyclic occupancy: an interval [start, start+length) taken modulo the
   period.  A zero-length interval still holds its start cycle (the
   value exists at least instantaneously). *)
let covers period itv cycle =
  let off = ((cycle - itv.start) mod period + period) mod period in
  off <= itv.length && (itv.length > 0 || off = 0)

let overlap period a b =
  (* Sampling every cycle is O(period) and period is small (<= a few
     hundred); robust against all wraparound cases. *)
  let rec go c =
    c < period && ((covers period a c && covers period b c) || go (c + 1))
  in
  go 0

let intervals_of sched =
  let mve = Mve.expand sched in
  let unroll = mve.Mve.unroll in
  let ii = sched.Schedule.ii in
  let period = unroll * ii in
  let intervals =
    List.concat_map
      (fun (r : Lifetime.range) ->
        List.init unroll (fun copy ->
            {
              reg = r.reg;
              copy;
              start = (r.def_time + (copy * ii)) mod period;
              length = min r.length period;
            }))
      mve.Mve.ranges
  in
  (period, intervals)

let allocate sched =
  let period, intervals = intervals_of sched in
  let density cycle =
    List.length (List.filter (fun itv -> covers period itv cycle) intervals)
  in
  let densities = List.init (max 1 period) density in
  let density_lower_bound = List.fold_left max 0 densities in
  (* Cut the circle where the fewest arcs cross. *)
  let cut, _ =
    List.fold_left
      (fun (best, best_d) (c, d) -> if d < best_d then (c, d) else (best, best_d))
      (0, max_int)
      (List.mapi (fun c d -> (c, d)) densities)
  in
  let unwrapped_start itv =
    ((itv.start - cut) mod period + period) mod period
  in
  let order =
    List.sort
      (fun a b -> compare (unwrapped_start a, a.reg, a.copy)
          (unwrapped_start b, b.reg, b.copy))
      intervals
  in
  (* Greedy: give each interval the smallest physical register not
     conflicting with an already-assigned overlapping interval. *)
  let assignment = ref [] in
  let conflicts itv phys =
    List.exists
      (fun ((r, c), p) ->
        p = phys
        && overlap period itv
             (List.find (fun i -> i.reg = r && i.copy = c) intervals))
      !assignment
  in
  List.iter
    (fun itv ->
      let rec first_free phys =
        if conflicts itv phys then first_free (phys + 1) else phys
      in
      let phys = first_free 0 in
      assignment := ((itv.reg, itv.copy), phys) :: !assignment)
    order;
  let registers_used =
    1 + List.fold_left (fun acc (_, p) -> max acc p) (-1) !assignment
  in
  {
    schedule = sched;
    period;
    intervals;
    assignment = List.rev !assignment;
    registers_used = (if intervals = [] then 0 else registers_used);
    density_lower_bound;
  }

let physical t ~reg ~copy = List.assoc_opt (reg, copy) t.assignment

let verify t =
  let errors = ref [] in
  let report fmt = Format.kasprintf (fun s -> errors := s :: !errors) fmt in
  List.iter
    (fun itv ->
      if physical t ~reg:itv.reg ~copy:itv.copy = None then
        report "interval v%d.%d unassigned" itv.reg itv.copy)
    t.intervals;
  let rec pairs = function
    | [] -> ()
    | a :: rest ->
        List.iter
          (fun b ->
            match
              (physical t ~reg:a.reg ~copy:a.copy, physical t ~reg:b.reg ~copy:b.copy)
            with
            | Some pa, Some pb when pa = pb && overlap t.period a b ->
                report "v%d.%d and v%d.%d overlap in r%d" a.reg a.copy b.reg
                  b.copy pa
            | _ -> ())
          rest;
        pairs rest
  in
  pairs t.intervals;
  if t.registers_used < t.density_lower_bound then
    report "claimed %d registers below the density bound %d" t.registers_used
      t.density_lower_bound;
  match !errors with [] -> Ok () | es -> Error (List.rev es)

let pp ppf t =
  Format.fprintf ppf
    "MVE kernel allocation: period %d, %d intervals, %d registers (density \
     bound %d)@."
    t.period
    (List.length t.intervals)
    t.registers_used t.density_lower_bound;
  List.iter
    (fun ((reg, copy), phys) ->
      Format.fprintf ppf "  v%d.%d -> r%d@." reg copy phys)
    t.assignment
