open Ims_ir
open Ims_core

type t = {
  schedule : Schedule.t;
  unroll : int;
  ranges : Lifetime.range list;
}

let expand schedule =
  let ranges = Lifetime.analyze schedule in
  let unroll =
    List.fold_left (fun acc (r : Lifetime.range) -> max acc r.copies) 1 ranges
  in
  { schedule; unroll; ranges }

let needs_expansion t reg =
  List.exists
    (fun (r : Lifetime.range) -> r.reg = reg && (r.copies > 1 || t.unroll > 1))
    t.ranges

let rename t ~reg ~copy ~distance =
  if needs_expansion t reg then
    let instance = ((copy - distance) mod t.unroll + t.unroll) mod t.unroll in
    Printf.sprintf "v%d.%d" reg instance
  else Printf.sprintf "v%d" reg

let code_growth t = t.unroll * Ddg.n_real t.schedule.Schedule.ddg
