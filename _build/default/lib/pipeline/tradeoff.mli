(** When is software pipelining worth it?

    The paper's execution-time model (section 4.3) is
    [T(n) = EntryFreq*SL + (LoopFreq - EntryFreq)*II] per visit:
    a pipelined loop pays the prologue+epilogue ramp [SL] once per entry
    and [II] per iteration after that, while the unpipelined loop pays
    its acyclic schedule length every iteration.  For very small trip
    counts the ramp dominates and the unpipelined loop wins; the
    break-even trip count tells the compiler (or a runtime loop-count
    guard) which copy to run. *)

open Ims_core

type t = {
  ii : int;
  sl : int;  (** Pipelined schedule length (ramp cost). *)
  acyclic_sl : int;  (** Unpipelined cost per iteration. *)
  break_even : int;
      (** Smallest trip count from which the pipelined loop is no slower;
          [max_int] if the loop never profits (II >= acyclic SL). *)
}

val analyze : Schedule.t -> t
(** Compares the schedule against the acyclic list schedule of the same
    graph. *)

val pipelined_cycles : t -> trip:int -> int
val unpipelined_cycles : t -> trip:int -> int

val speedup : t -> trip:int -> float
(** [unpipelined / pipelined] at the given trip count. *)

val pp : Format.formatter -> t -> unit
