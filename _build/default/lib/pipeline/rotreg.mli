(** Rotating register allocation (Rau et al. 1992; Rau 1994, section 1).

    A rotating register file renames its registers by one position at
    every iteration boundary, giving hardware support for EVRs: if the
    value of EVR [v] produced this iteration lives in rotating register
    [RR base_v], the value produced [d] iterations ago is in
    [RR (base_v + d)].  Allocation assigns each loop variant a block of
    [copies] consecutive rotating registers (one per simultaneously live
    instance) such that no two variants' blocks overlap. *)

open Ims_core

type t = {
  schedule : Schedule.t;
  domain : int list;  (** The registers this file is responsible for. *)
  base : (int * int) list;  (** (register, base), ascending by reg. *)
  blocks : (int * int * int) list;
      (** (register, base, vacating distance in iterations). *)
  file_size : int;  (** Rotating registers consumed. *)
}

val allocate : ?keep:(int -> bool) -> Schedule.t -> t
(** Greedy circular placement enforcing every pairwise vacating
    distance: variant [w]'s writes reach variant [v]'s physical cell
    only after [v]'s value is dead.  (Disjoint architectural blocks
    alone are NOT sufficient — the semantic replay
    [Interp.run_rotating] exposes such allocations as value clobbers.)
    [keep] restricts the file to a subset of registers (used by
    {!allocate_by_class}); default everything. *)

val base_of : t -> int -> int option
(** Block base for a register; [None] for live-ins (registers the loop
    never defines). *)

val reference : t -> reg:int -> distance:int -> string
(** The assembly-level name: [RR[base+distance]] for allocated registers,
    [v<reg>] for live-ins. *)

val verify : t -> (unit, string list) result
(** Re-checks, per ordered variant pair, that the rewrite of each
    physical cell arrives only after the occupying value's last read. *)

val allocate_by_class : Schedule.t -> (Regclass.t * t) list
(** Separate rotating files per register class (the Cydra 5's data /
    address / ICR split); each class's file is allocated independently
    and omits classes with no loop variants. *)

val pp : Format.formatter -> t -> unit
