open Ims_machine
open Ims_ir
open Ims_core

type report = {
  trip : int;
  completion : int;
  formula : int;
  issues : int;
  peak_in_flight : int;
  utilization : (string * float) list;
}

let run ?trip sched =
  let ddg = sched.Schedule.ddg in
  let machine = ddg.Ddg.machine in
  let ii = sched.Schedule.ii in
  let stages = Schedule.stage_count sched in
  let trip = Option.value ~default:((2 * stages) + 3) trip in
  let errors = ref [] in
  let report_err fmt =
    Format.kasprintf (fun s -> errors := s :: !errors) fmt
  in
  (* Write-back times of every (register, iteration) instance. *)
  let ready : (int * int, int) Hashtbl.t = Hashtbl.create 256 in
  let defined_in_loop = Hashtbl.create 32 in
  List.iter
    (fun i ->
      List.iter
        (fun v -> Hashtbl.replace defined_in_loop v ())
        (Ddg.op ddg i).Op.dsts)
    (Ddg.real_ids ddg);
  for iter = 0 to trip - 1 do
    List.iter
      (fun i ->
        let o = Ddg.op ddg i in
        let t = Schedule.time sched i + (iter * ii) in
        let latency = Machine.latency machine o.Op.opcode in
        List.iter
          (fun v -> Hashtbl.replace ready (v, iter) (t + latency))
          o.Op.dsts)
      (Ddg.real_ids ddg)
  done;
  (* Value-timing check. *)
  for iter = 0 to trip - 1 do
    List.iter
      (fun i ->
        let o = Ddg.op ddg i in
        let t = Schedule.time sched i + (iter * ii) in
        let check (operand : Op.operand) =
          let src_iter = iter - operand.distance in
          if src_iter >= 0 && Hashtbl.mem defined_in_loop operand.reg then
            match Hashtbl.find_opt ready (operand.reg, src_iter) with
            | Some avail when avail > t ->
                report_err
                  "op %d iter %d reads v%d[%d] at cycle %d but it is ready \
                   only at %d"
                  i iter operand.reg operand.distance t avail
            | Some _ -> ()
            | None ->
                report_err "op %d iter %d reads undefined v%d instance" i iter
                  operand.reg
        in
        List.iter check o.Op.srcs;
        Option.iter check o.Op.pred)
      (Ddg.real_ids ddg)
  done;
  (* Resource occupancy, re-derived from the chosen reservation tables. *)
  let occupancy : (int * int, int) Hashtbl.t = Hashtbl.create 1024 in
  let issues = ref 0 in
  for iter = 0 to trip - 1 do
    List.iter
      (fun i ->
        incr issues;
        let t = Schedule.time sched i + (iter * ii) in
        let table = Schedule.reservation sched i in
        List.iter
          (fun (u : Reservation.usage) ->
            let key = (t + u.at, u.resource) in
            let n = 1 + Option.value ~default:0 (Hashtbl.find_opt occupancy key) in
            Hashtbl.replace occupancy key n;
            let cap = machine.Machine.resources.(u.resource).Resource.count in
            if n = cap + 1 then
              report_err "resource %s oversubscribed at cycle %d"
                machine.Machine.resources.(u.resource).Resource.name (t + u.at))
          table.Reservation.usages)
      (Ddg.real_ids ddg)
  done;
  (* Completion time. *)
  let completion = ref 0 in
  Hashtbl.iter (fun _ t -> if t > !completion then completion := t) ready;
  let formula = Schedule.length sched + ((trip - 1) * ii) in
  if !completion > formula then
    report_err "completion %d exceeds SL + (n-1)*II = %d" !completion formula;
  (* Peak overlapped iterations: an iteration is in flight from its first
     issue to its last write-back. *)
  let first_issue =
    List.fold_left (fun acc i -> min acc (Schedule.time sched i)) max_int
      (Ddg.real_ids ddg)
  in
  let last_wb =
    List.fold_left
      (fun acc i ->
        let o = Ddg.op ddg i in
        max acc (Schedule.time sched i + Machine.latency machine o.Op.opcode))
      0 (Ddg.real_ids ddg)
  in
  let span = last_wb - first_issue in
  let peak_in_flight = min trip ((span / ii) + 1) in
  (* Steady-state utilization over one kernel window in the middle. *)
  let utilization =
    if trip < 2 * stages then []
    else begin
      let window_start = (stages + 1) * ii in
      Array.to_list machine.Machine.resources
      |> List.map (fun (r : Resource.t) ->
             let busy = ref 0 in
             for c = window_start to window_start + ii - 1 do
               busy :=
                 !busy
                 + Option.value ~default:0
                     (Hashtbl.find_opt occupancy (c, r.id))
             done;
             (r.name, float_of_int !busy /. float_of_int (ii * r.count)))
    end
  in
  match !errors with
  | [] ->
      Ok
        {
          trip;
          completion = !completion;
          formula;
          issues = !issues;
          peak_in_flight;
          utilization;
        }
  | es -> Error (List.rev es)
