lib/core/priority.ml: Array Ddg Dep Ims_graph Ims_ir Ims_mii List Topo
