lib/core/schedule.ml: Array Ddg Dep Format Ims_ir Ims_machine List Machine Mrt Op Opcode Printf String
