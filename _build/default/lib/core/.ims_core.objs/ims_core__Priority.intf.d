lib/core/priority.mli: Ddg Ims_ir Ims_mii
