lib/core/slack.ml: Array Counters Ddg Dep Ims Ims_ir Ims_machine Ims_mii List Machine Mii Mindist Mrt Op Opcode Option Schedule
