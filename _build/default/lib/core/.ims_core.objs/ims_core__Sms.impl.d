lib/core/sms.ml: Array Counters Ddg Dep Hashtbl Ims Ims_graph Ims_ir Ims_machine Ims_mii List Machine Mii Mindist Mrt Op Opcode Printf Schedule Sys
