lib/core/ims.mli: Counters Ddg Ims_ir Ims_mii Mii Schedule
