lib/core/slack.mli: Counters Ddg Ims Ims_ir Ims_mii
