lib/core/list_sched.mli: Ddg Ims_ir Schedule
