lib/core/schedule.mli: Ddg Format Ims_ir Ims_machine
