lib/core/list_sched.ml: Array Ddg Dep Ims_ir Ims_machine List Machine Mrt Op Opcode Priority Reservation Schedule Set
