lib/core/sms.mli: Counters Ddg Ims Ims_ir Ims_mii
