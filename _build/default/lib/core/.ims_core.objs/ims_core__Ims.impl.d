lib/core/ims.ml: Array Counters Ddg Dep Ims_ir Ims_machine Ims_mii List Machine Mii Mrt Op Opcode Priority Schedule
