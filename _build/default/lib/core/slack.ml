open Ims_machine
open Ims_ir
open Ims_mii

(* One candidate II of the lifetime-sensitive scheduler.  The MinDist
   matrix gives transitive bounds: a scheduled operation [i] at time
   [t_i] forces  E(op) >= t_i + MinDist[i][op]  and
   L(op) <= t_i - MinDist[op][i].  With nothing but START placed these
   reduce to Huff's static Estart/Lstart. *)

type state = {
  ddg : Ddg.t;
  ii : int;
  md : Mindist.t;
  slack_priority : int array;  (* smaller = more urgent *)
  sink_late : bool array;
  mrt : Mrt.t;
  time : int array;  (* -1 = unscheduled *)
  prev_time : int array;
  never_scheduled : bool array;
  alt : int array;
  alternatives : Opcode.alternative array array;
  mutable unscheduled : int list;
  mutable scheduled : int list;
  counters : Counters.t option;
}

let neg_inf = Mindist.neg_inf

let early_bound st op =
  List.fold_left
    (fun acc i ->
      (match st.counters with
      | Some c -> c.Counters.estart_inner <- c.Counters.estart_inner + 1
      | None -> ());
      let d = Mindist.get st.md i op in
      if d = neg_inf then acc else max acc (st.time.(i) + d))
    0 st.scheduled

let late_bound st op ~default =
  List.fold_left
    (fun acc i ->
      let d = Mindist.get st.md op i in
      if d = neg_inf then acc else min acc (st.time.(i) - d))
    default st.scheduled

let unschedule st op =
  if st.time.(op) >= 0 then begin
    Mrt.release st.mrt ~op
      st.alternatives.(op).(st.alt.(op)).Opcode.table
      ~time:st.time.(op);
    st.time.(op) <- -1;
    st.unscheduled <- op :: st.unscheduled;
    st.scheduled <- List.filter (fun v -> v <> op) st.scheduled
  end

let commit st op ~t ~k =
  Mrt.reserve st.mrt ~op st.alternatives.(op).(k).Opcode.table ~time:t;
  st.time.(op) <- t;
  st.prev_time.(op) <- t;
  st.alt.(op) <- k;
  st.never_scheduled.(op) <- false;
  st.unscheduled <- List.filter (fun v -> v <> op) st.unscheduled;
  st.scheduled <- op :: st.scheduled;
  List.iter
    (fun (d : Dep.t) ->
      if
        d.dst <> op
        && st.time.(d.dst) >= 0
        && st.time.(d.dst) < t + d.delay - (st.ii * d.distance)
      then unschedule st d.dst)
    st.ddg.Ddg.succs.(op)

let force_commit st op ~t =
  let tables =
    Array.to_list st.alternatives.(op)
    |> List.map (fun (a : Opcode.alternative) -> a.Opcode.table)
  in
  List.iter (unschedule st) (Mrt.conflicting_ops st.mrt tables ~time:t);
  let rec first_fit k =
    if k >= Array.length st.alternatives.(op) then
      invalid_arg "Slack.force_commit: no alternative fits"
    else if Mrt.fits st.mrt st.alternatives.(op).(k).Opcode.table ~time:t then k
    else first_fit (k + 1)
  in
  commit st op ~t ~k:(first_fit 0)

(* Conflict-free slot nearest the preferred end of [lo, hi]. *)
let find_slot st op ~lo ~hi ~late =
  let alternatives = st.alternatives.(op) in
  let fits_at t =
    let rec go k =
      if k >= Array.length alternatives then None
      else if Mrt.fits st.mrt alternatives.(k).Opcode.table ~time:t then Some k
      else go (k + 1)
    in
    go 0
  in
  let order =
    if late then List.init (hi - lo + 1) (fun i -> hi - i)
    else List.init (hi - lo + 1) (fun i -> lo + i)
  in
  List.fold_left
    (fun acc t ->
      match acc with
      | Some _ -> acc
      | None ->
          (match st.counters with
          | Some c -> c.Counters.findslot_inner <- c.Counters.findslot_inner + 1
          | None -> ());
          Option.map (fun k -> (t, k)) (fits_at t))
    None order

let iterative_schedule ?counters ddg ~ii ~budget =
  let n = Ddg.n_total ddg in
  let machine = ddg.Ddg.machine in
  let md = Mindist.full ?counters ddg ~ii in
  let stop = Ddg.stop ddg in
  let critical_path = max 0 (Mindist.get md Ddg.start stop) in
  let slack_priority =
    Array.init n (fun op ->
        let e = Mindist.get md Ddg.start op in
        let l = Mindist.get md op stop in
        if e = neg_inf || l = neg_inf then max_int / 2
        else critical_path - e - l)
  in
  (* Producers sink late (their output lifetime starts later); consumers
     rise early (their input lifetimes close sooner).  An operation with
     more consumers than inputs is a net producer. *)
  let sink_late =
    Array.init n (fun op ->
        let real l =
          List.filter
            (fun (d : Dep.t) ->
              not (Ddg.is_pseudo ddg d.Dep.src || Ddg.is_pseudo ddg d.Dep.dst))
            l
        in
        List.length (real ddg.Ddg.preds.(op))
        < List.length (real ddg.Ddg.succs.(op)))
  in
  let st =
    {
      ddg;
      ii;
      md;
      slack_priority;
      sink_late;
      mrt = Mrt.create machine ~ii;
      time = Array.make n (-1);
      prev_time = Array.make n 0;
      never_scheduled = Array.make n true;
      alt = Array.make n 0;
      alternatives =
        Array.init n (fun i ->
            let opcode = Machine.opcode machine (Ddg.op ddg i).Op.opcode in
            Array.of_list opcode.Opcode.alternatives);
      unscheduled = List.init (n - 1) (fun i -> i + 1);
      scheduled = [ Ddg.start ];
      counters;
    }
  in
  st.time.(Ddg.start) <- 0;
  st.never_scheduled.(Ddg.start) <- false;
  let budget = ref (budget - 1) in
  let step () =
    match counters with
    | Some c -> c.Counters.sched_steps <- c.Counters.sched_steps + 1
    | None -> ()
  in
  step ();
  let pick () =
    match st.unscheduled with
    | [] -> None
    | first :: rest ->
        Some
          (List.fold_left
             (fun best v ->
               if
                 st.slack_priority.(v) < st.slack_priority.(best)
                 || (st.slack_priority.(v) = st.slack_priority.(best) && v < best)
               then v
               else best)
             first rest)
  in
  let continue = ref true in
  while !continue do
    match pick () with
    | None -> continue := false
    | Some _ when !budget <= 0 -> continue := false
    | Some op ->
        let e = early_bound st op in
        let hi_window = e + ii - 1 in
        let l = late_bound st op ~default:hi_window in
        let hi = min hi_window (max e l) in
        (* Direction is decided against what is already placed: with
           consumers fixed and producers not, sliding late shortens the
           op's output lifetimes; with producers fixed, sliding early
           closes its input lifetimes.  Otherwise fall back to the
           static producer/consumer bias. *)
        let has_scheduled edges pick =
          List.exists
            (fun (d : Dep.t) ->
              let v = pick d in
              (not (Ddg.is_pseudo ddg v)) && st.time.(v) >= 0)
            edges
        in
        let scheduled_preds = has_scheduled ddg.Ddg.preds.(op) (fun d -> d.Dep.src) in
        let scheduled_succs = has_scheduled ddg.Ddg.succs.(op) (fun d -> d.Dep.dst) in
        let late =
          match (scheduled_preds, scheduled_succs) with
          | false, true -> true
          | true, false -> false
          | _ -> st.sink_late.(op)
        in
        (match find_slot st op ~lo:e ~hi ~late with
        | Some (t, k) -> commit st op ~t ~k
        | None -> (
            (* Nothing free inside [E, min(L, E+II-1)]: widen to the full
               modulo window, then force as IMS does. *)
            match find_slot st op ~lo:e ~hi:hi_window ~late:false with
            | Some (t, k) -> commit st op ~t ~k
            | None ->
                let t =
                  if st.never_scheduled.(op) || e > st.prev_time.(op) then e
                  else st.prev_time.(op) + 1
                in
                force_commit st op ~t));
        decr budget;
        step ()
  done;
  if st.unscheduled = [] then
    Some
      (Schedule.make ddg ~ii
         ~entries:
           (Array.init n (fun i -> { Schedule.time = st.time.(i); alt = st.alt.(i) })))
  else None

let modulo_schedule ?(budget_ratio = Ims.default_budget_ratio)
    ?(max_delta_ii = 1000) ?counters ddg =
  let counters = match counters with Some c -> c | None -> Counters.create () in
  let mii = Mii.compute ~counters ddg in
  let n = Ddg.n_total ddg in
  let budget = max 1 (int_of_float (budget_ratio *. float_of_int n)) in
  let rec attempt ii tried =
    if ii > mii.Mii.mii + max_delta_ii then
      {
        Ims.schedule = None;
        ii;
        mii;
        attempts = tried;
        steps_total = counters.Counters.sched_steps;
        steps_final = 0;
        counters;
      }
    else begin
      let before = counters.Counters.sched_steps in
      match iterative_schedule ~counters ddg ~ii ~budget with
      | Some schedule ->
          let steps_final = counters.Counters.sched_steps - before in
          counters.Counters.sched_steps_final <-
            counters.Counters.sched_steps_final + steps_final;
          {
            Ims.schedule = Some schedule;
            ii;
            mii;
            attempts = tried + 1;
            steps_total = counters.Counters.sched_steps;
            steps_final;
            counters;
          }
      | None -> attempt (ii + 1) (tried + 1)
    end
  in
  attempt mii.Mii.mii 0
