(** Distribution summaries in the format of the paper's table 3.

    Each measurement row reports: the minimum possible value, the
    frequency with which that minimum was encountered, the median, the
    mean, and the maximum encountered. *)

type summary = {
  n : int;
  min_possible : float;
  freq_of_min : float;  (** Fraction of samples equal to [min_possible]. *)
  median : float;
  mean : float;
  max_seen : float;
  min_seen : float;
}

val summarize : min_possible:float -> float list -> summary
(** @raise Invalid_argument on an empty sample list. *)

val of_ints : min_possible:float -> int list -> summary

val quantile : float list -> float -> float
(** [quantile xs q] for [0 <= q <= 1], by linear interpolation on the
    sorted samples. *)

val mean : float list -> float
val pp : Format.formatter -> summary -> unit
