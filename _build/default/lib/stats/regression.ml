type fit = { coeffs : float array; residual_stddev : float; r_squared : float }

(* Gaussian elimination with partial pivoting; [a] is square, modified in
   place.  Small systems only (<= 3 unknowns here). *)
let solve a b =
  let n = Array.length b in
  for col = 0 to n - 1 do
    let pivot = ref col in
    for row = col + 1 to n - 1 do
      if abs_float a.(row).(col) > abs_float a.(!pivot).(col) then pivot := row
    done;
    if abs_float a.(!pivot).(col) < 1e-12 then
      invalid_arg "Regression.solve: singular system";
    if !pivot <> col then begin
      let tmp = a.(col) in
      a.(col) <- a.(!pivot);
      a.(!pivot) <- tmp;
      let tb = b.(col) in
      b.(col) <- b.(!pivot);
      b.(!pivot) <- tb
    end;
    for row = col + 1 to n - 1 do
      let f = a.(row).(col) /. a.(col).(col) in
      for k = col to n - 1 do
        a.(row).(k) <- a.(row).(k) -. (f *. a.(col).(k))
      done;
      b.(row) <- b.(row) -. (f *. b.(col))
    done
  done;
  let x = Array.make n 0.0 in
  for row = n - 1 downto 0 do
    let s = ref b.(row) in
    for k = row + 1 to n - 1 do
      s := !s -. (a.(row).(k) *. x.(k))
    done;
    x.(row) <- !s /. a.(row).(row)
  done;
  x

(* Least squares over the given monomial degrees. *)
let fit_degrees degrees points =
  if points = [] then invalid_arg "Regression: no data points";
  let k = Array.length degrees in
  let xtx = Array.make_matrix k k 0.0 in
  let xty = Array.make k 0.0 in
  List.iter
    (fun (x, y) ->
      let basis = Array.map (fun d -> x ** float_of_int d) degrees in
      for i = 0 to k - 1 do
        xty.(i) <- xty.(i) +. (basis.(i) *. y);
        for j = 0 to k - 1 do
          xtx.(i).(j) <- xtx.(i).(j) +. (basis.(i) *. basis.(j))
        done
      done)
    points;
  let beta = solve xtx xty in
  let max_degree = Array.fold_left max 0 degrees in
  let coeffs = Array.make (max_degree + 1) 0.0 in
  Array.iteri (fun i d -> coeffs.(d) <- beta.(i)) degrees;
  let predict x =
    Array.to_list coeffs
    |> List.mapi (fun d c -> c *. (x ** float_of_int d))
    |> List.fold_left ( +. ) 0.0
  in
  let n = float_of_int (List.length points) in
  let mean_y =
    List.fold_left (fun acc (_, y) -> acc +. y) 0.0 points /. n
  in
  let ss_res =
    List.fold_left
      (fun acc (x, y) ->
        let e = y -. predict x in
        acc +. (e *. e))
      0.0 points
  in
  let ss_tot =
    List.fold_left
      (fun acc (_, y) ->
        let e = y -. mean_y in
        acc +. (e *. e))
      0.0 points
  in
  {
    coeffs;
    residual_stddev = sqrt (ss_res /. n);
    r_squared = (if ss_tot = 0.0 then 1.0 else 1.0 -. (ss_res /. ss_tot));
  }

let fit_through_origin points = fit_degrees [| 1 |] points
let fit_affine points = fit_degrees [| 0; 1 |] points
let fit_quadratic points = fit_degrees [| 0; 1; 2 |] points

let predict fit x =
  Array.to_list fit.coeffs
  |> List.mapi (fun d c -> c *. (x ** float_of_int d))
  |> List.fold_left ( +. ) 0.0

let describe fit =
  let terms =
    Array.to_list fit.coeffs
    |> List.mapi (fun d c -> (d, c))
    |> List.filter (fun (_, c) -> abs_float c > 1e-12)
    |> List.rev
    |> List.map (fun (d, c) ->
           match d with
           | 0 -> Printf.sprintf "%.4f" c
           | 1 -> Printf.sprintf "%.4fN" c
           | d -> Printf.sprintf "%.4fN^%d" c d)
  in
  let poly = if terms = [] then "0" else String.concat " + " terms in
  Printf.sprintf "%s (sd %.1f, R^2 %.3f)" poly fit.residual_stddev
    fit.r_squared
