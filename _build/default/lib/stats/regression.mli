(** Least-mean-square polynomial fits, as used for the empirical
    complexity characterisation of the paper's table 4 (e.g. the fit
    E = 3.0036 N, or FindTimeSlot's 0.0587 N^2 + 0.2001 N + 0.5). *)

type fit = {
  coeffs : float array;  (** Lowest degree first. *)
  residual_stddev : float;
  r_squared : float;
}

val fit_through_origin : (float * float) list -> fit
(** [y ~ a*x]; [coeffs = [|0; a|]]. *)

val fit_affine : (float * float) list -> fit
(** [y ~ a + b*x]. *)

val fit_quadratic : (float * float) list -> fit
(** [y ~ a + b*x + c*x^2]. *)

val predict : fit -> float -> float

val describe : fit -> string
(** E.g. ["0.0587N^2 + 0.2001N + 0.5000 (sd 12.3, R^2 0.91)"]. *)
