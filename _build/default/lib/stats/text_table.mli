(** Fixed-width text tables for the benchmark reports. *)

val render : headers:string list -> string list list -> string
(** Columns are sized to their widest cell; the first column is left
    aligned, the rest right aligned.  A separator row follows the
    headers. *)

val render_kv : (string * string) list -> string
(** Two-column key/value block without headers. *)
