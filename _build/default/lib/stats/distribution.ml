type summary = {
  n : int;
  min_possible : float;
  freq_of_min : float;
  median : float;
  mean : float;
  max_seen : float;
  min_seen : float;
}

let mean = function
  | [] -> invalid_arg "Distribution.mean: empty"
  | xs -> List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

let quantile xs q =
  match List.sort compare xs with
  | [] -> invalid_arg "Distribution.quantile: empty"
  | sorted ->
      let arr = Array.of_list sorted in
      let n = Array.length arr in
      if n = 1 then arr.(0)
      else begin
        let pos = q *. float_of_int (n - 1) in
        let lo = int_of_float (floor pos) in
        let hi = min (n - 1) (lo + 1) in
        let frac = pos -. float_of_int lo in
        (arr.(lo) *. (1.0 -. frac)) +. (arr.(hi) *. frac)
      end

let summarize ~min_possible xs =
  if xs = [] then invalid_arg "Distribution.summarize: empty";
  let n = List.length xs in
  let eq_min =
    List.length (List.filter (fun x -> abs_float (x -. min_possible) < 1e-9) xs)
  in
  {
    n;
    min_possible;
    freq_of_min = float_of_int eq_min /. float_of_int n;
    median = quantile xs 0.5;
    mean = mean xs;
    max_seen = List.fold_left max neg_infinity xs;
    min_seen = List.fold_left min infinity xs;
  }

let of_ints ~min_possible xs = summarize ~min_possible (List.map float_of_int xs)

let pp ppf s =
  Format.fprintf ppf
    "n=%d min-possible=%g freq-of-min=%.3f median=%.2f mean=%.2f max=%g" s.n
    s.min_possible s.freq_of_min s.median s.mean s.max_seen
