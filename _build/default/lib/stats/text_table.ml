let render ~headers rows =
  let all = headers :: rows in
  let ncols = List.fold_left (fun acc r -> max acc (List.length r)) 0 all in
  let widths = Array.make ncols 0 in
  List.iter
    (List.iteri (fun i cell -> widths.(i) <- max widths.(i) (String.length cell)))
    all;
  let buf = Buffer.create 256 in
  let emit_row cells =
    List.iteri
      (fun i cell ->
        let pad = widths.(i) - String.length cell in
        if i > 0 then Buffer.add_string buf "  ";
        if i = 0 then begin
          Buffer.add_string buf cell;
          Buffer.add_string buf (String.make pad ' ')
        end
        else begin
          Buffer.add_string buf (String.make pad ' ');
          Buffer.add_string buf cell
        end)
      cells;
    Buffer.add_char buf '\n'
  in
  emit_row headers;
  Buffer.add_string buf
    (String.concat "  "
       (Array.to_list (Array.map (fun w -> String.make w '-') widths)));
  Buffer.add_char buf '\n';
  List.iter emit_row rows;
  Buffer.contents buf

let render_kv pairs =
  let width =
    List.fold_left (fun acc (k, _) -> max acc (String.length k)) 0 pairs
  in
  let buf = Buffer.create 128 in
  List.iter
    (fun (k, v) ->
      Buffer.add_string buf
        (Printf.sprintf "%-*s  %s\n" width k v))
    pairs;
  Buffer.contents buf
