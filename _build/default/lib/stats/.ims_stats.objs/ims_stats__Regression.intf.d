lib/stats/regression.mli:
