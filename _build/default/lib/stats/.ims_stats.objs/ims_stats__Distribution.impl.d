lib/stats/distribution.ml: Array Format List
