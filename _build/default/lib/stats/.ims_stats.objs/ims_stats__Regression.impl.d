lib/stats/regression.ml: Array List Printf String
