lib/stats/distribution.mli: Format
