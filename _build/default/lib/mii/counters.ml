type t = {
  mutable scc_steps : int;
  mutable resmii_steps : int;
  mutable mindist_inner : int;
  mutable mindist_calls : int;
  mutable heightr_inner : int;
  mutable estart_inner : int;
  mutable findslot_inner : int;
  mutable sched_steps : int;
  mutable sched_steps_final : int;
}

let create () =
  {
    scc_steps = 0;
    resmii_steps = 0;
    mindist_inner = 0;
    mindist_calls = 0;
    heightr_inner = 0;
    estart_inner = 0;
    findslot_inner = 0;
    sched_steps = 0;
    sched_steps_final = 0;
  }

let add acc c =
  acc.scc_steps <- acc.scc_steps + c.scc_steps;
  acc.resmii_steps <- acc.resmii_steps + c.resmii_steps;
  acc.mindist_inner <- acc.mindist_inner + c.mindist_inner;
  acc.mindist_calls <- acc.mindist_calls + c.mindist_calls;
  acc.heightr_inner <- acc.heightr_inner + c.heightr_inner;
  acc.estart_inner <- acc.estart_inner + c.estart_inner;
  acc.findslot_inner <- acc.findslot_inner + c.findslot_inner;
  acc.sched_steps <- acc.sched_steps + c.sched_steps;
  acc.sched_steps_final <- acc.sched_steps_final + c.sched_steps_final

let pp ppf t =
  Format.fprintf ppf
    "scc=%d resmii=%d mindist=%d(x%d) heightr=%d estart=%d findslot=%d \
     sched=%d(final %d)"
    t.scc_steps t.resmii_steps t.mindist_inner t.mindist_calls t.heightr_inner
    t.estart_inner t.findslot_inner t.sched_steps t.sched_steps_final
