open Ims_ir

let neg_inf = min_int / 4

type t = {
  ii : int;
  nodes : int array;
  index : int array;
  dist : int array array;
}

let compute ?counters ddg ~nodes ~ii =
  let m = Array.length nodes in
  let index = Array.make (Ddg.n_total ddg) (-1) in
  Array.iteri (fun row id -> index.(id) <- row) nodes;
  let dist = Array.make_matrix m m neg_inf in
  Array.iteri
    (fun row id ->
      List.iter
        (fun (d : Dep.t) ->
          let col = index.(d.dst) in
          if col >= 0 then begin
            let w = d.delay - (ii * d.distance) in
            if w > dist.(row).(col) then dist.(row).(col) <- w
          end)
        ddg.Ddg.succs.(id))
    nodes;
  let inner = ref 0 in
  for k = 0 to m - 1 do
    for i = 0 to m - 1 do
      let dik = dist.(i).(k) in
      if dik > neg_inf then
        for j = 0 to m - 1 do
          incr inner;
          let dkj = dist.(k).(j) in
          if dkj > neg_inf && dik + dkj > dist.(i).(j) then
            dist.(i).(j) <- dik + dkj
        done
    done
  done;
  (match counters with
  | Some c ->
      c.Counters.mindist_inner <- c.Counters.mindist_inner + !inner;
      c.Counters.mindist_calls <- c.Counters.mindist_calls + 1
  | None -> ());
  { ii; nodes; index; dist }

let full ?counters ddg ~ii =
  compute ?counters ddg ~nodes:(Array.init (Ddg.n_total ddg) Fun.id) ~ii

let get t i j =
  let ri = t.index.(i) and rj = t.index.(j) in
  if ri < 0 || rj < 0 then invalid_arg "Mindist.get: id not covered";
  t.dist.(ri).(rj)

let max_diagonal t =
  let best = ref neg_inf in
  Array.iteri (fun i _ -> if t.dist.(i).(i) > !best then best := t.dist.(i).(i)) t.nodes;
  !best

let feasible t = max_diagonal t <= 0

let pp ppf t =
  Format.fprintf ppf "MinDist(ii=%d) over %d nodes@." t.ii
    (Array.length t.nodes);
  Array.iteri
    (fun i id ->
      Format.fprintf ppf "  %3d |" id;
      Array.iteri
        (fun j _ ->
          if t.dist.(i).(j) = neg_inf then Format.fprintf ppf "    ."
          else Format.fprintf ppf " %4d" t.dist.(i).(j))
        t.nodes;
      Format.fprintf ppf "@.")
    t.nodes
