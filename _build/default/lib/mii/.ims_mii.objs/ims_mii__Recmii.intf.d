lib/mii/recmii.mli: Counters Ddg Ims_ir
