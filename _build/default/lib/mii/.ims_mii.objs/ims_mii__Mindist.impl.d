lib/mii/mindist.ml: Array Counters Ddg Dep Format Fun Ims_ir List
