lib/mii/mii.mli: Counters Ddg Format Ims_ir
