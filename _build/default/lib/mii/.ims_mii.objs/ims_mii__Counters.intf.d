lib/mii/counters.mli: Format
