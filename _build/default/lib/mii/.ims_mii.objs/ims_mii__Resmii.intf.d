lib/mii/resmii.mli: Counters Ddg Ims_ir
