lib/mii/counters.ml: Format
