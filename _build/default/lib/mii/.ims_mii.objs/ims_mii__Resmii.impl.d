lib/mii/resmii.ml: Array Counters Ddg Ims_ir Ims_machine List Machine Op Opcode Reservation Resource
