lib/mii/mindist.mli: Counters Ddg Format Ims_ir
