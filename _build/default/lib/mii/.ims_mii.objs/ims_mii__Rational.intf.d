lib/mii/rational.mli: Ddg Ims_ir
