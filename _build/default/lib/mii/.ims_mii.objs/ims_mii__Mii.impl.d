lib/mii/mii.ml: Ddg Format Ims_ir Mindist Recmii Resmii
