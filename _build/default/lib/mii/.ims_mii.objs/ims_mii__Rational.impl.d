lib/mii/rational.ml: Ddg Float Ims_graph Ims_ir List Recmii Resmii
