lib/mii/recmii.ml: Array Circuits Counters Ddg Dep Ims_graph Ims_ir List Mindist Scc
