(** Rational lower bounds on the II, and the pre-scheduling unroll
    decision they drive (Rau 1994, section 1, step 7).

    The integer MII is [ceil] of an intrinsically rational quantity:
    resource usage divided by resource multiplicity, and circuit delay
    divided by circuit distance.  When the ceiling costs too much — e.g.
    a rational MII of 1.5 rounded up to 2 wastes 33% of the machine —
    the loop body is unrolled so that the integer II of the unrolled
    loop, divided by the unroll factor, approaches the rational bound. *)

open Ims_ir

type t = {
  res : float;  (** max over resources of uses / copies. *)
  rec_ : float;  (** max over elementary circuits of delay / distance. *)
  mii : float;  (** max of the two; at least 1.0. *)
}

val of_ddg : ?circuit_limit:int -> Ddg.t -> t
(** Exact rational bounds; the recurrence part enumerates elementary
    circuits ([circuit_limit] defaults to 100000).
    @raise Ims_graph.Circuits.Limit_exceeded over the limit. *)

val degradation : t -> factor:int -> float
(** [degradation r ~factor] is the fractional loss of scheduling the
    [factor]-times-unrolled loop at its integer MII:
    [ceil(factor * mii) / (factor * mii) - 1].  [factor = 1] gives the
    loss the paper's step 7 weighs. *)

val recommended_unroll : ?max_factor:int -> ?tolerance:float -> Ddg.t -> int
(** The smallest factor (up to [max_factor], default 8) whose
    {!degradation} is within [tolerance] (default 0.05), or the best
    factor found if none reaches the tolerance. *)
