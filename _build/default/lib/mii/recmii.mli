(** The recurrence-constrained lower bound on the II (Rau 1994, §2.2).

    Every elementary circuit [c] of the dependence graph imposes
    [Delay(c) - II * Distance(c) <= 0]; RecMII is the smallest II meeting
    every such constraint.  Two methods are provided:

    - {!by_circuits} enumerates all elementary circuits (the Cydra 5
      compiler's approach) and maximises [ceil(Delay/Distance)];
    - {!by_mindist} works one strongly connected component at a time,
      testing candidate IIs with {!Mindist} and searching by doubling
      followed by binary search (Huff's minimal cost-to-time ratio
      formulation — the method used in the paper's study).

    The two agree; the benchmark harness compares their cost. *)

open Ims_ir

val by_mindist : ?counters:Counters.t -> Ddg.t -> int
(** The exact RecMII (at least 1), independent of ResMII. *)

val mii_from : ?counters:Counters.t -> Ddg.t -> resmii:int -> int
(** The production scheme of section 2.2: start the candidate at
    [resmii]; for each SCC in turn, raise the candidate just enough
    (doubling then binary search) to make that SCC feasible, feeding each
    SCC the previous result.  Returns the MII; cheaper than computing the
    exact RecMII when RecMII <= ResMII (84% of the paper's loops). *)

val by_circuits : ?counters:Counters.t -> ?limit:int -> Ddg.t -> int
(** The exact RecMII via circuit enumeration.
    @raise Ims_graph.Circuits.Limit_exceeded beyond [limit] circuits.
    @raise Invalid_argument on a zero-distance dependence circuit. *)

val feasible : ?counters:Counters.t -> Ddg.t -> ii:int -> bool
(** Whether [ii] satisfies every recurrence (per-SCC MinDist test). *)

val circuit_constraints : Ddg.t -> int list -> (int * int) list
(** [(delay, distance)] combinations of one elementary circuit (given as
    a vertex list); parallel edges between consecutive vertices multiply
    out, dominated combinations pruned.  Shared with {!Rational}. *)
