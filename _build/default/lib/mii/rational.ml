open Ims_ir

type t = { res : float; rec_ : float; mii : float }

(* Rational ResMII: the same greedy alternative selection as the integer
   computation, but the final bound is usage/copies without the ceiling. *)
let rational_res ddg =
  let profile = Resmii.usage_profile ddg in
  List.fold_left
    (fun acc (_, uses, copies, _) ->
      if uses = 0 then acc else max acc (float_of_int uses /. float_of_int copies))
    0.0 profile

(* Rational RecMII: max delay/distance over elementary circuits, using
   the same parallel-edge expansion as the integer circuit method. *)
let rational_rec ~circuit_limit ddg =
  let n = Ddg.n_total ddg in
  let succs v = List.sort_uniq compare (Ddg.real_succ_ids ddg v) in
  let circuits = Ims_graph.Circuits.enumerate ~limit:circuit_limit ~n succs in
  List.fold_left
    (fun acc circuit ->
      List.fold_left
        (fun acc (delay, distance) ->
          if distance = 0 then
            invalid_arg "Rational: zero-distance circuit"
          else max acc (float_of_int delay /. float_of_int distance))
        acc
        (Recmii.circuit_constraints ddg circuit))
    0.0 circuits

let of_ddg ?(circuit_limit = 100_000) ddg =
  let res = rational_res ddg in
  let rec_ = rational_rec ~circuit_limit ddg in
  { res; rec_; mii = max 1.0 (max res rec_) }

let degradation r ~factor =
  let k = float_of_int factor in
  let exact = k *. r.mii in
  (Float.of_int (int_of_float (Float.ceil exact)) /. exact) -. 1.0

let recommended_unroll ?(max_factor = 8) ?(tolerance = 0.05) ddg =
  let r = of_ddg ddg in
  let rec search best best_loss k =
    if k > max_factor then best
    else begin
      let loss = degradation r ~factor:k in
      if loss <= tolerance then k
      else if loss < best_loss then search k loss (k + 1)
      else search best best_loss (k + 1)
    end
  in
  search 1 (degradation r ~factor:1) 1
