open Ims_machine
open Ims_ir

let cdiv a b = (a + b - 1) / b

(* Greedy usage accumulation; returns the final per-resource usage. *)
let accumulate ?counters ddg =
  let machine = ddg.Ddg.machine in
  let nres = Machine.num_resources machine in
  let caps =
    Array.map (fun (r : Resource.t) -> r.count) machine.Machine.resources
  in
  let usage = Array.make nres 0 in
  let ops =
    Ddg.real_ids ddg
    |> List.map (fun id -> Machine.opcode machine (Ddg.op ddg id).Op.opcode)
    |> List.sort (fun a b ->
           compare (Opcode.num_alternatives a) (Opcode.num_alternatives b))
  in
  let partial_with (alt : Opcode.alternative) =
    let extra = Array.make nres 0 in
    Reservation.usage_count alt.table extra;
    let worst = ref 0 in
    for r = 0 to nres - 1 do
      let total = usage.(r) + extra.(r) in
      if total > 0 then worst := max !worst (cdiv total caps.(r))
    done;
    (!worst, extra)
  in
  List.iter
    (fun (op : Opcode.t) ->
      let best = ref None in
      List.iter
        (fun alt ->
          (match counters with
          | Some c -> c.Counters.resmii_steps <- c.Counters.resmii_steps + 1
          | None -> ());
          let score, extra = partial_with alt in
          match !best with
          | Some (s, _) when s <= score -> ()
          | _ -> best := Some (score, extra))
        op.Opcode.alternatives;
      match !best with
      | Some (_, extra) ->
          Array.iteri (fun r e -> usage.(r) <- usage.(r) + e) extra
      | None -> ())
    ops;
  (usage, caps)

let compute ?counters ddg =
  let usage, caps = accumulate ?counters ddg in
  let res = ref 1 in
  Array.iteri
    (fun r u -> if u > 0 then res := max !res (cdiv u caps.(r)))
    usage;
  !res

let usage_profile ddg =
  let usage, caps = accumulate ddg in
  let machine = ddg.Ddg.machine in
  Array.to_list machine.Machine.resources
  |> List.map (fun (r : Resource.t) ->
         (r.name, usage.(r.id), caps.(r.id),
          if usage.(r.id) = 0 then 0 else cdiv usage.(r.id) caps.(r.id)))
