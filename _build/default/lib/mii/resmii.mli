(** The resource-constrained lower bound on the II (Rau 1994, section 2.1).

    Exact computation is a bin-packing problem, so the paper's
    approximation is used: operations are taken in increasing order of
    their number of alternatives (degrees of freedom); for each, the
    alternative yielding the lowest partial ResMII is selected and its
    resource usage added to the running totals.  The ResMII is the final
    usage of the most heavily used resource, normalised by the resource's
    multiplicity. *)

open Ims_ir

val compute : ?counters:Counters.t -> Ddg.t -> int
(** At least 1, even for an empty loop. *)

val usage_profile : Ddg.t -> (string * int * int * int) list
(** Per-resource [(name, uses, copies, ceil(uses/copies))] under the same
    greedy alternative selection — the per-resource breakdown behind
    {!compute}, used by reports. *)
