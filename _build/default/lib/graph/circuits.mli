(** Enumeration of elementary circuits (Johnson 1975; cf. Tiernan 1970).

    An elementary circuit is a path that starts and ends at the same
    vertex and visits no vertex twice.  The Cydra 5 compiler computed
    RecMII by enumerating all elementary circuits of the dependence graph
    (Rau 1994, section 2.2); we implement that method as a baseline and as
    a cross-check of the MinDist-based RecMII.

    The number of circuits can be exponential in the graph size, so
    enumeration takes an optional [limit]. *)

exception Limit_exceeded

val enumerate : ?limit:int -> n:int -> (int -> int list) -> int list list
(** [enumerate ~n succs] returns every elementary circuit as a vertex
    list [v0; v1; ...; vk] denoting edges [v0->v1 -> ... -> vk -> v0].
    Self-loops yield singleton lists.  Circuits are confined to SCCs, so
    the search is run per strongly connected component.
    @raise Limit_exceeded if more than [limit] circuits exist. *)

val count : ?limit:int -> n:int -> (int -> int list) -> int
(** Number of elementary circuits, subject to the same [limit]. *)
