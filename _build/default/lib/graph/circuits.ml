exception Limit_exceeded

(* Johnson's algorithm.  For each start vertex [s] in increasing order we
   search the subgraph induced by the vertices >= s, restricted to the SCC
   of that subgraph containing [s]; blocked sets with the B-list unblocking
   give the usual output-polynomial bound.  Self-loops are reported
   directly and excluded from the search. *)
let enumerate ?(limit = max_int) ~n succs =
  let out = ref [] in
  let found = ref 0 in
  let emit c =
    incr found;
    if !found > limit then raise Limit_exceeded;
    out := c :: !out
  in
  (* Self-loops first. *)
  for v = 0 to n - 1 do
    if List.mem v (succs v) then emit [ v ]
  done;
  for s = 0 to n - 1 do
    (* SCC of the subgraph on vertices >= s. *)
    let sub v = List.filter (fun w -> w >= s && w <> v) (succs v) in
    let scc =
      Scc.compute ~n ~succs:(fun v -> if v >= s then sub v else [])
    in
    let cs = scc.Scc.component.(s) in
    let in_scc v = v >= s && scc.Scc.component.(v) = cs in
    let adj v = List.filter in_scc (sub v) in
    if List.exists (fun w -> w <> s) (adj s) || adj s <> [] then begin
      let blocked = Array.make n false in
      let blist = Array.make n [] in
      let path = ref [] in
      let rec unblock v =
        blocked.(v) <- false;
        let bs = blist.(v) in
        blist.(v) <- [];
        List.iter (fun w -> if blocked.(w) then unblock w) bs
      in
      let rec circuit v =
        path := v :: !path;
        blocked.(v) <- true;
        let f = ref false in
        List.iter
          (fun w ->
            if w = s then begin
              emit (List.rev !path);
              f := true
            end
            else if not blocked.(w) then if circuit w then f := true)
          (adj v);
        if !f then unblock v
        else
          List.iter
            (fun w ->
              if not (List.mem v blist.(w)) then blist.(w) <- v :: blist.(w))
            (adj v);
        path := List.tl !path;
        !f
      in
      ignore (circuit s)
    end
  done;
  List.rev !out

let count ?limit ~n succs = List.length (enumerate ?limit ~n succs)
