(** Strongly connected components by Tarjan's algorithm.

    Used to decompose the dependence graph so that RecMII can be computed
    one SCC at a time (Rau 1994, section 2.2), and to identify which
    operations lie on recurrence circuits. *)

type result = {
  component : int array;
      (** [component.(v)] is the SCC index of vertex [v].  Components are
          numbered in reverse topological order of the condensation: if
          there is an edge from [u] to [v] in different components then
          [component.(u) > component.(v)]. *)
  count : int;  (** Number of components. *)
  steps : int;  (** Vertices + edges touched, for complexity accounting. *)
}

val compute : n:int -> succs:(int -> int list) -> result
(** [compute ~n ~succs] runs Tarjan on the graph with vertices
    [0 .. n-1]. *)

val members : result -> int list array
(** [members r] lists the vertices of each component, ascending. *)

val non_trivial : succs:(int -> int list) -> result -> int list array
(** Components that are genuine recurrences: more than one vertex, or a
    single vertex with a self-edge. *)
