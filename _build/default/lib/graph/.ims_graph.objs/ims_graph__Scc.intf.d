lib/graph/scc.mli:
