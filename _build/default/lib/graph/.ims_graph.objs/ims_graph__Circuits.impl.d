lib/graph/circuits.ml: Array List Scc
