lib/graph/circuits.mli:
