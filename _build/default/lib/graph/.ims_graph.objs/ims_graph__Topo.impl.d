lib/graph/topo.ml: Array Int List Set
