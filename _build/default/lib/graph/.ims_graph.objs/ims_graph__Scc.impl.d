lib/graph/scc.ml: Array List Seq
