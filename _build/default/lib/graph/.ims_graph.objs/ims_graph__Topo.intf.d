lib/graph/topo.mli:
