type result = { component : int array; count : int; steps : int }

(* Iterative Tarjan: an explicit work stack keeps deep dependence chains
   (long straight-line loop bodies) from overflowing the OCaml stack. *)
let compute ~n ~succs =
  let index = Array.make n (-1) in
  let lowlink = Array.make n 0 in
  let on_stack = Array.make n false in
  let component = Array.make n (-1) in
  let stack = ref [] in
  let next_index = ref 0 in
  let count = ref 0 in
  let steps = ref 0 in
  (* Work items: (vertex, remaining successors). *)
  let visit v =
    index.(v) <- !next_index;
    lowlink.(v) <- !next_index;
    incr next_index;
    stack := v :: !stack;
    on_stack.(v) <- true;
    let work = ref [ (v, succs v) ] in
    while !work <> [] do
      incr steps;
      match !work with
      | [] -> ()
      | (u, []) :: rest ->
          work := rest;
          (match rest with
          | (parent, _) :: _ ->
              if lowlink.(u) < lowlink.(parent) then
                lowlink.(parent) <- lowlink.(u)
          | [] -> ());
          if lowlink.(u) = index.(u) then begin
            let rec pop () =
              match !stack with
              | [] -> assert false
              | w :: rest ->
                  stack := rest;
                  on_stack.(w) <- false;
                  component.(w) <- !count;
                  if w <> u then pop ()
            in
            pop ();
            incr count
          end
      | (u, w :: ws) :: rest ->
          work := (u, ws) :: rest;
          if index.(w) = -1 then begin
            index.(w) <- !next_index;
            lowlink.(w) <- !next_index;
            incr next_index;
            stack := w :: !stack;
            on_stack.(w) <- true;
            work := (w, succs w) :: !work
          end
          else if on_stack.(w) && index.(w) < lowlink.(u) then
            lowlink.(u) <- index.(w)
    done
  in
  for v = 0 to n - 1 do
    if index.(v) = -1 then visit v
  done;
  { component; count = !count; steps = !steps }

let members r =
  let out = Array.make r.count [] in
  let n = Array.length r.component in
  for v = n - 1 downto 0 do
    let c = r.component.(v) in
    out.(c) <- v :: out.(c)
  done;
  out

let non_trivial ~succs r =
  let all = members r in
  Array.map
    (fun vs ->
      match vs with
      | [ v ] -> if List.mem v (succs v) then vs else []
      | _ -> vs)
    all
  |> Array.to_seq
  |> Seq.filter (fun vs -> vs <> [])
  |> Array.of_seq
