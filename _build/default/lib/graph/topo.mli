(** Topological ordering and DAG utilities.

    Modulo scheduling works on cyclic graphs, but several sub-passes run
    on acyclic restrictions: acyclic list scheduling drops inter-iteration
    edges, and HeightR's relaxation converges fastest when vertices are
    seeded in reverse topological order of the intra-iteration subgraph. *)

val sort : n:int -> succs:(int -> int list) -> int list option
(** [sort ~n ~succs] is a topological order (sources first), or [None] if
    the graph has a cycle. *)

val sort_ignoring_cycles : n:int -> succs:(int -> int list) -> int list
(** Kahn's algorithm, breaking ties by smallest vertex and breaking cycles
    by releasing the smallest still-blocked vertex; always returns a
    permutation of [0 .. n-1].  On a DAG it equals {!sort}. *)

val longest_path :
  n:int -> succs:(int -> (int * int) list) -> source:int -> int array
(** [longest_path ~n ~succs ~source] is the longest weighted path from
    [source] to every vertex of a DAG ([min_int] if unreachable); [succs]
    yields [(target, weight)] pairs.
    @raise Invalid_argument if the graph is cyclic. *)
