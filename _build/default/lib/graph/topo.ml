let in_degrees ~n ~succs =
  let deg = Array.make n 0 in
  for v = 0 to n - 1 do
    List.iter (fun w -> deg.(w) <- deg.(w) + 1) (succs v)
  done;
  deg

(* Kahn with a sorted ready set; [force] releases the smallest blocked
   vertex when the ready set empties with vertices remaining. *)
let kahn ~n ~succs ~force =
  let deg = in_degrees ~n ~succs in
  let emitted = Array.make n false in
  let module S = Set.Make (Int) in
  let ready = ref S.empty in
  for v = 0 to n - 1 do
    if deg.(v) = 0 then ready := S.add v !ready
  done;
  let order = ref [] in
  let remaining = ref n in
  let emit v =
    emitted.(v) <- true;
    order := v :: !order;
    decr remaining;
    List.iter
      (fun w ->
        deg.(w) <- deg.(w) - 1;
        if deg.(w) = 0 && not emitted.(w) then ready := S.add w !ready)
      (succs v)
  in
  let exception Cyclic in
  try
    while !remaining > 0 do
      match S.min_elt_opt !ready with
      | Some v ->
          ready := S.remove v !ready;
          if not emitted.(v) then emit v
      | None ->
          if not force then raise Cyclic;
          (* Break the cycle at the smallest blocked vertex. *)
          let v = ref (-1) in
          for u = n - 1 downto 0 do
            if (not emitted.(u)) && deg.(u) > 0 then v := u
          done;
          emit !v
    done;
    Some (List.rev !order)
  with Cyclic -> None

let sort ~n ~succs = kahn ~n ~succs ~force:false

let sort_ignoring_cycles ~n ~succs =
  match kahn ~n ~succs ~force:true with
  | Some order -> order
  | None -> assert false

let longest_path ~n ~succs ~source =
  let order =
    match sort ~n ~succs:(fun v -> List.map fst (succs v)) with
    | Some o -> o
    | None -> invalid_arg "Topo.longest_path: graph is cyclic"
  in
  let dist = Array.make n min_int in
  dist.(source) <- 0;
  List.iter
    (fun v ->
      if dist.(v) > min_int then
        List.iter
          (fun (w, weight) ->
            if dist.(v) + weight > dist.(w) then dist.(w) <- dist.(v) + weight)
          (succs v))
    order;
  dist
