(** A second family of named loops: classic numerical micro-kernels in
    the SPEC/linear-algebra flavour, complementing the Livermore set.

    Where {!Lfk} reproduces the paper's exact third suite, these kernels
    cover idioms the Perfect Club / SPEC portion of its input set was
    full of: BLAS level-1 (daxpy/dot/scale), stencils of several radii,
    filters (FIR and the serial IIR), a complex-arithmetic butterfly,
    Horner evaluation, table-driven gathers, and integer reduce/hash
    loops.  All are built through the same {!Kernel_dsl} and carry the
    standard loop control. *)

open Ims_machine
open Ims_ir

val names : string list

val build : ?model:Dep.latency_model -> Machine.t -> string -> Ddg.t
(** @raise Not_found for an unknown name. *)

val all : ?model:Dep.latency_model -> Machine.t -> (string * Ddg.t) list
