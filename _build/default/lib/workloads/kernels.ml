module K = Kernel_dsl

let cur v = (v, 0)
let prev v = (v, 1)

(* daxpy: y[i] = y[i] + a*x[i] *)
let daxpy k =
  let a = K.reg k "a" in
  let ax = K.addr k "ax" and ay = K.addr k "ay" in
  let x, _ = K.load k ax "x[i]" in
  let y, _ = K.load k ay "y[i]" in
  let p = K.binop k "fmul" (cur a) (cur x) "a*x" in
  let s = K.binop k "fadd" (cur y) (cur p) "y + a*x" in
  ignore (K.store k ay (cur s) "y[i] =");
  K.loop_control k

(* sdot: the BLAS-1 reduction. *)
let sdot k =
  let acc = K.reg k "acc" in
  let ax = K.addr k "ax" and ay = K.addr k "ay" in
  let x, _ = K.load k ax "x[i]" in
  let y, _ = K.load k ay "y[i]" in
  let p = K.binop k "fmul" (cur x) (cur y) "x*y" in
  ignore (K.into k "fadd" ~dst:acc [ prev acc; cur p ] "acc +=");
  K.loop_control k

(* sscal: x[i] = a*x[i] *)
let sscal k =
  let a = K.reg k "a" in
  let ax = K.addr k "ax" in
  let x, _ = K.load k ax "x[i]" in
  let p = K.binop k "fmul" (cur a) (cur x) "a*x" in
  ignore (K.store k ax (cur p) "x[i] =");
  K.loop_control k

(* snrm2-style sum of squares. *)
let sum_squares k =
  let acc = K.reg k "ss" in
  let ax = K.addr k "ax" in
  let x, _ = K.load k ax "x[i]" in
  let sq = K.binop k "fmul" (cur x) (cur x) "x*x" in
  ignore (K.into k "fadd" ~dst:acc [ prev acc; cur sq ] "ss +=");
  K.loop_control k

(* A radius-r 1-D stencil: out[i] = sum of c_j * in[i+j]. *)
let stencil radius k =
  let taps = (2 * radius) + 1 in
  let coeffs = List.init taps (fun j -> K.reg k (Printf.sprintf "c%d" j)) in
  let inputs =
    List.init taps (fun j ->
        let a = K.addr k (Printf.sprintf "ain%d" j) in
        fst (K.load k a (Printf.sprintf "in[i%+d]" (j - radius))))
  in
  let terms =
    List.map2 (fun c x -> K.binop k "fmul" (cur c) (cur x) "c*in") coeffs inputs
  in
  let sum =
    match terms with
    | first :: rest ->
        List.fold_left (fun acc p -> K.binop k "fadd" (cur acc) (cur p) "+") first rest
    | [] -> assert false
  in
  let aout = K.addr k "aout" in
  ignore (K.store k aout (cur sum) "out[i] =");
  K.loop_control k

(* FIR filter over a register delay line: taps shifted through EVRs. *)
let fir taps k =
  let ax = K.addr k "ax" and aout = K.addr k "aout" in
  let x, _ = K.load k ax "x[i]" in
  let coeffs = List.init taps (fun j -> K.reg k (Printf.sprintf "h%d" j)) in
  let terms =
    List.mapi
      (fun j c -> K.binop k "fmul" (cur c) (x, j) (Printf.sprintf "h%d*x[i-%d]" j j))
      coeffs
  in
  let sum =
    match terms with
    | first :: rest ->
        List.fold_left (fun acc p -> K.binop k "fadd" (cur acc) (cur p) "+") first rest
    | [] -> assert false
  in
  ignore (K.store k aout (cur sum) "y[i] =");
  K.loop_control k

(* IIR biquad: the serial recurrence y[i] = b*x[i] + a1*y[i-1] + a2*y[i-2]. *)
let iir k =
  let b0 = K.reg k "b0" and a1 = K.reg k "a1" and a2 = K.reg k "a2" in
  let ax = K.addr k "ax" and aout = K.addr k "aout" in
  let x, _ = K.load k ax "x[i]" in
  let y = K.reg k "y" in
  let t0 = K.binop k "fmul" (cur b0) (cur x) "b0*x" in
  let t1 = K.binop k "fmul" (cur a1) (prev y) "a1*y'" in
  let t2 = K.binop k "fmul" (cur a2) (y, 2) "a2*y''" in
  let s1 = K.binop k "fadd" (cur t0) (cur t1) "" in
  ignore (K.into k "fadd" ~dst:y [ cur s1; cur t2 ] "y =");
  ignore (K.store k aout (cur y) "y[i] =");
  K.loop_control k

(* Complex multiply-accumulate (an FFT butterfly's workhorse). *)
let cmac k =
  let ar = K.addr k "ar" and ai = K.addr k "ai" in
  let br = K.addr k "br" and bi = K.addr k "bi" in
  let xr, _ = K.load k ar "a.re" in
  let xi, _ = K.load k ai "a.im" in
  let yr, _ = K.load k br "b.re" in
  let yi, _ = K.load k bi "b.im" in
  let rr = K.binop k "fmul" (cur xr) (cur yr) "re*re" in
  let ii = K.binop k "fmul" (cur xi) (cur yi) "im*im" in
  let ri = K.binop k "fmul" (cur xr) (cur yi) "re*im" in
  let ir = K.binop k "fmul" (cur xi) (cur yr) "im*re" in
  let re = K.binop k "fsub" (cur rr) (cur ii) "re" in
  let im = K.binop k "fadd" (cur ri) (cur ir) "im" in
  let sr = K.reg k "sum_re" and si = K.reg k "sum_im" in
  ignore (K.into k "fadd" ~dst:sr [ prev sr; cur re ] "sum.re +=");
  ignore (K.into k "fadd" ~dst:si [ prev si; cur im ] "sum.im +=");
  K.loop_control k

(* Horner polynomial evaluation: p = p*x + c[i] (serial fmul+fadd). *)
let horner k =
  let x = K.reg k "x" and p = K.reg k "p" in
  let ac = K.addr k "ac" in
  let c, _ = K.load k ac "c[i]" in
  let t = K.binop k "fmul" (prev p) (cur x) "p*x" in
  ignore (K.into k "fadd" ~dst:p [ cur t; cur c ] "p = p*x + c");
  K.loop_control k

(* Gather: out[i] = table[idx[i]] (indexed load, two memory levels). *)
let gather k =
  let aidx = K.addr k "aidx" and aout = K.addr k "aout" in
  let idx, _ = K.load k aidx "idx[i]" in
  let taddr = K.binop k "aadd" (cur idx) (K.reg k "table", 0) "table+idx" in
  let v, _ = K.load k taddr "table[idx]" in
  ignore (K.store k aout (cur v) "out[i] =");
  K.loop_control k

(* Integer checksum with rotate-ish mixing. *)
let checksum k =
  let ax = K.addr k "ax" in
  let x, _ = K.load k ax "x[i]" in
  let h = K.reg k "h" in
  let m = K.binop k "mul" (prev h) (K.reg k "prime", 0) "h*p" in
  ignore (K.into k "add" ~dst:h [ cur m; cur x ] "h = h*p + x");
  K.loop_control k

(* Saturating difference with predication: out = max(a-b, 0). *)
let saturate k =
  let aa = K.addr k "aa" and ab = K.addr k "ab" and aout = K.addr k "aout" in
  let a, _ = K.load k aa "a[i]" in
  let b, _ = K.load k ab "b[i]" in
  let d = K.binop k "fsub" (cur a) (cur b) "a-b" in
  let zero = K.reg k "zero" in
  let c = K.binop k "fcmp" (cur d) (cur zero) "d < 0" in
  let pt = K.unop k "pred_set" (cur c) "p_neg" in
  let pf = K.unop k "pred_reset" (cur c) "p_pos" in
  let out = K.reg k "out" in
  ignore (K.into ~pred:(pt, 0) k "copy" ~dst:out [ cur zero ] "out = 0");
  ignore (K.into ~pred:(pf, 0) k "copy" ~dst:out [ cur d ] "out = d");
  ignore (K.store k aout (cur out) "out[i] =");
  K.loop_control k

(* Strided copy with scale (unit-stride in, stride-3 out). *)
let strided_scale k =
  let a = K.reg k "a" in
  let ain = K.addr k "ain" and aout = K.addr k "aout" in
  let x, _ = K.load k ain "x[i]" in
  let p = K.binop k "fmul" (cur a) (cur x) "a*x" in
  ignore (K.store k aout (cur p) "y[3i] =");
  K.loop_control k

(* Triangular solve inner step: serial through a divide. *)
let trsv_step k =
  let adiag = K.addr k "adiag" and ab = K.addr k "ab" in
  let d, _ = K.load k adiag "diag[i]" in
  let bv, _ = K.load k ab "b[i]" in
  let x = K.reg k "x" in
  let t = K.binop k "fmul" (prev x) (cur bv) "x'*b" in
  let num = K.binop k "fsub" (cur bv) (cur t) "b - x'*b" in
  ignore (K.into k "fdiv" ~dst:x [ cur num; cur d ] "x = num/diag");
  K.loop_control k

(* Max-reduction (unpredicated compare-select idiom via predication). *)
let reduce_max k =
  let ax = K.addr k "ax" in
  let x, _ = K.load k ax "x[i]" in
  let m = K.reg k "m" in
  let c = K.binop k "fcmp" (cur x) (prev m) "x > m" in
  let pt = K.unop k "pred_set" (cur c) "p_gt" in
  let pf = K.unop k "pred_reset" (cur c) "p_le" in
  ignore (K.into ~pred:(pt, 0) k "copy" ~dst:m [ cur x ] "m = x");
  ignore (K.into ~pred:(pf, 0) k "copy" ~dst:m [ prev m ] "m = m'");
  K.loop_control k

let table : (string * (K.t -> unit)) list =
  [
    ("daxpy", daxpy);
    ("sdot", sdot);
    ("sscal", sscal);
    ("sum_squares", sum_squares);
    ("stencil3", stencil 1);
    ("stencil5", stencil 2);
    ("stencil9", stencil 4);
    ("fir8", fir 8);
    ("iir", iir);
    ("cmac", cmac);
    ("horner", horner);
    ("gather", gather);
    ("checksum", checksum);
    ("saturate", saturate);
    ("strided_scale", strided_scale);
    ("trsv_step", trsv_step);
    ("reduce_max", reduce_max);
  ]

let names = List.map fst table

let build ?model machine name =
  match List.assoc_opt name table with
  | None -> raise Not_found
  | Some f ->
      let k = K.create ?model machine in
      f k;
      K.finish k

let all ?model machine =
  List.map (fun (name, _) -> (name, build ?model machine name)) table
