(** The Livermore Fortran Kernels as modulo-scheduling candidates.

    27 innermost loops hand-translated to the post-front-end IR the
    paper's research scheduler consumed: strength-reduced address
    streams, IF-converted conditionals (kernels 13-15, 17, 24), explicit
    memory dependences where the Fortran carries recurrences through
    arrays (kernels 6, 23), and the loop-control operations.  Loops with
    early exits (kernel 16's Monte Carlo search) are excluded, exactly as
    the Cydra 5 compiler rejected them (section 4.1).

    The mix spans the paper's structural space: vectorizable streams
    (1, 7, 8, 9, 12, 18), reductions (3, 4, 21), first-order register
    recurrences (5, 11, 19), long-latency recurrences through divides
    (20, 22) and through memory (6, 23), and predicated minimum /
    particle-in-cell code (13, 14, 24). *)

open Ims_machine
open Ims_ir

val names : string list
(** The 27 loop names, e.g. ["lfk01"; ...; "lfk24"]. *)

val build :
  ?model:Dep.latency_model -> ?keep_false_deps:bool -> Machine.t -> string -> Ddg.t
(** @raise Not_found for an unknown name.  [model] selects the table 1
    delay column (default VLIW); [keep_false_deps] disables the EVR /
    dynamic-single-assignment assumption for the ablation study. *)

val all :
  ?model:Dep.latency_model -> ?keep_false_deps:bool -> Machine.t ->
  (string * Ddg.t) list
