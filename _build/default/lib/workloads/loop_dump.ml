open Ims_ir

let operand_str (s : Op.operand) =
  if s.distance = 0 then Printf.sprintf "v%d" s.reg
  else Printf.sprintf "v%d[%d]" s.reg s.distance

(* The builder re-derives two families of edges from the operations
   alone: register dataflow through operands, and the must-alias
   ordering between memory operations sharing an identical address
   operand. *)
let must_alias_pair ddg (d : Dep.t) =
  d.distance = 0
  &&
  let src = Ddg.op ddg d.src and dst = Ddg.op ddg d.dst in
  let is_mem (o : Op.t) = o.opcode = "load" || o.opcode = "store" in
  is_mem src && is_mem dst
  &&
  match (src.Op.srcs, dst.Op.srcs) with
  | (a : Op.operand) :: _, (b : Op.operand) :: _ ->
      a.reg = b.reg && a.distance = b.distance
  | _ -> false

let derivable ddg (d : Dep.t) =
  match d.kind with
  | Dep.Anti | Dep.Output -> must_alias_pair ddg d
  | Dep.Flow | Dep.Control ->
      let src = Ddg.op ddg d.src and dst = Ddg.op ddg d.dst in
      let matches (s : Op.operand) =
        s.distance = d.distance && List.mem s.reg src.Op.dsts
      in
      List.exists matches dst.Op.srcs
      || Option.fold ~none:false ~some:matches dst.Op.pred
      || must_alias_pair ddg d

let dump ddg =
  let buf = Buffer.create 512 in
  Buffer.add_string buf "# dumped loop\n";
  List.iter
    (fun i ->
      let o = Ddg.op ddg i in
      let dsts =
        String.concat "," (List.map (Printf.sprintf "v%d") o.Op.dsts)
      in
      let srcs = String.concat " " (List.map operand_str o.Op.srcs) in
      let imm =
        match o.Op.imm with
        | Some v -> Printf.sprintf " $%g" v
        | None -> ""
      in
      let pred =
        match o.Op.pred with
        | Some p -> " when " ^ operand_str p
        | None -> ""
      in
      let lhs = if dsts = "" then "" else dsts ^ " = " in
      let rhs = if srcs = "" then "" else " " ^ srcs in
      Buffer.add_string buf
        (Printf.sprintf "%s%s%s%s%s%s\n" lhs o.Op.opcode rhs imm pred
           (if o.Op.tag = "" then "" else "  # " ^ o.Op.tag)))
    (Ddg.real_ids ddg);
  let stop = Ddg.stop ddg in
  Array.iter
    (fun edges ->
      List.iter
        (fun (d : Dep.t) ->
          if
            (not (d.src = Ddg.start || d.dst = stop || d.src = stop))
            && not (derivable ddg d)
          then
            Buffer.add_string buf
              (Printf.sprintf "memdep %s %d %d %d\n"
                 (Dep.kind_to_string d.kind) d.src d.dst d.distance))
        edges)
    ddg.Ddg.succs;
  Buffer.contents buf
