lib/workloads/lfk.mli: Ddg Dep Ims_ir Ims_machine Machine
