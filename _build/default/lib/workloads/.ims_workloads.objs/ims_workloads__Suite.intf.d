lib/workloads/suite.mli: Ddg Ims_ir Ims_machine Machine
