lib/workloads/kernel_dsl.mli: Builder Ddg Dep Ims_ir Ims_machine Machine
