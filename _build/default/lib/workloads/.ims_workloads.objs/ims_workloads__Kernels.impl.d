lib/workloads/kernels.ml: Kernel_dsl List Printf
