lib/workloads/kernels.mli: Ddg Dep Ims_ir Ims_machine Machine
