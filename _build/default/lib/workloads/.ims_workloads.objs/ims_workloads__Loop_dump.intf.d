lib/workloads/loop_dump.mli: Ddg Dep Ims_ir
