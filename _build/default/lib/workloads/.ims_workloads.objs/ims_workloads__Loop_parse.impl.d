lib/workloads/loop_parse.ml: Array Builder Dep Format Ims_ir List Option Printf String
