lib/workloads/kernel_dsl.ml: Builder Ims_ir Printf
