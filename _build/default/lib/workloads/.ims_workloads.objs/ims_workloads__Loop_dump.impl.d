lib/workloads/loop_dump.ml: Array Buffer Ddg Dep Ims_ir List Op Option Printf String
