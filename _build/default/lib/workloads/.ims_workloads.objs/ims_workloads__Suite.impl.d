lib/workloads/suite.ml: Ddg Ims_ir Ims_machine Lfk List Machine Random Synthetic
