lib/workloads/lfk.ml: Builder Dep If_conversion Ims_ir Kernel_dsl List Printf
