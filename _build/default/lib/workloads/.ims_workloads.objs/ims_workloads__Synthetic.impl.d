lib/workloads/synthetic.ml: Builder Dep Float Ims_ir Kernel_dsl List Printf Random
