lib/workloads/loop_parse.mli: Ddg Ims_ir Ims_machine Machine
