lib/workloads/synthetic.mli: Ddg Ims_ir Ims_machine Machine Random
