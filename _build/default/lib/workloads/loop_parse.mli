(** A small textual loop format for the [imsc] command-line tool.

    One operation per line:

    {v
    # dot product, one line per operation
    a  = aadd a[1]          # address stream, loop-carried
    x  = load a
    y  = fmul x x
    s  = fadd s[1] y        # reduction: reads s from 1 iteration ago
    store out x             # operations without results omit "dsts ="
    q  = fadd s y when p    # predicated, guard after "when"
    memdep flow 5 2 1       # memory dep: kind, src op#, dst op#, distance
    v}

    Registers are named; [name[d]] reads the value from [d] iterations
    ago.  A token [$8] attaches an immediate operand (e.g. the stride of
    an address increment).  Operation numbers in [memdep] lines are
    1-based line positions among operation lines.  [#] or [;] start
    comments. *)

open Ims_machine
open Ims_ir

exception Parse_error of int * string
(** Line number and message. *)

val parse : Machine.t -> string -> Ddg.t
(** @raise Parse_error on malformed input.
    @raise Machine.Unknown_opcode for opcodes the machine lacks. *)

val parse_file : Machine.t -> string -> Ddg.t
(** Reads the file and {!parse}s it. *)
