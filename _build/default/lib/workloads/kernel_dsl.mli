(** Helpers shared by the hand-translated Livermore kernels and the
    synthetic generator: array streams, temporaries and the loop-control
    operations every candidate DO-loop carries.

    Address streams model the code the Cydra 5 compiler emitted after
    strength reduction: one address add per array stream, self-recurrent
    at distance [k].  [k = 3] (the address-ALU latency) reflects
    back-substituted increments, which keep the recurrence off the
    critical ratio (RecMII contribution 1); [k = 1] is the plain
    increment with RecMII contribution equal to the full latency. *)

open Ims_machine
open Ims_ir

type t

val create : ?model:Dep.latency_model -> Machine.t -> t
val builder : t -> Builder.t

val fresh : t -> string -> Builder.vreg
(** A fresh, uniquely named temporary register. *)

val reg : t -> string -> Builder.vreg

val addr : ?backsub:bool -> t -> string -> Builder.vreg
(** An address stream: emits [aadd a <- a[k]] and returns [a].
    [backsub] defaults to true. *)

val load : ?pred:Builder.vreg * int -> t -> Builder.vreg -> string -> Builder.vreg * Builder.opref
(** [load t a tag] emits a load from stream [a]; returns the loaded value
    register and the op (for memory dependences). *)

val store :
  ?pred:Builder.vreg * int ->
  t ->
  Builder.vreg ->
  (Builder.vreg * int) ->
  string ->
  Builder.opref
(** [store t a (v, d) tag] stores [v] (at distance [d]) through stream
    [a]. *)

val unop :
  ?pred:Builder.vreg * int ->
  t -> string -> Builder.vreg * int -> string -> Builder.vreg
(** [unop t opcode x tag]: fresh destination. *)

val binop :
  ?pred:Builder.vreg * int ->
  t -> string -> Builder.vreg * int -> Builder.vreg * int -> string ->
  Builder.vreg
(** [binop t opcode x y tag]: fresh destination. *)

val into :
  ?pred:Builder.vreg * int ->
  t -> string -> dst:Builder.vreg ->
  (Builder.vreg * int) list -> string -> Builder.opref
(** Like {!binop} but writing a named register — used for reductions and
    recurrences. *)

val loop_control : ?backsub:bool -> t -> unit
(** The counter increment, trip-count compare and loop-closing branch
    every candidate loop carries (the paper's minimum loop size of 4
    operations includes them). *)

val finish : ?keep_false_deps:bool -> t -> Ddg.t
