(** Serialization of a dependence graph to the textual loop format of
    {!Loop_parse}.

    [parse (dump ddg)] reconstructs an isomorphic graph: same operations
    in the same order, same register dataflow, and the same
    non-derivable (memory) dependences, re-declared as [memdep] lines.
    Register-derivable edges are not dumped — the parser's builder
    re-derives them — so the round trip also cross-checks the derivation
    logic itself.

    Useful for saving interesting loops ([imsc export]), for diffing
    graphs, and as a property-test oracle. *)

open Ims_ir

val dump : Ddg.t -> string

val derivable : Ddg.t -> Dep.t -> bool
(** Would the builder re-derive this edge from the operand lists alone?
    True for register flow/control via operands; false for declared
    memory dependences. *)
