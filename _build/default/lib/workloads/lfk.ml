open Ims_ir
module K = Kernel_dsl

let cur v = (v, 0)
let prev v = (v, 1)

(* Kernel 1 — hydro fragment:
   x[k] = q + y[k] * (r*z[k+10] + t*z[k+11]) *)
let lfk01 k =
  let q = K.reg k "q" and r = K.reg k "r" and t = K.reg k "t" in
  let ay = K.addr k "ay" and az10 = K.addr k "az10" in
  let az11 = K.addr k "az11" and ax = K.addr k "ax" in
  let y, _ = K.load k ay "y[k]" in
  let z10, _ = K.load k az10 "z[k+10]" in
  let z11, _ = K.load k az11 "z[k+11]" in
  let rz = K.binop k "fmul" (cur r) (cur z10) "r*z[k+10]" in
  let tz = K.binop k "fmul" (cur t) (cur z11) "t*z[k+11]" in
  let sum = K.binop k "fadd" (cur rz) (cur tz) "r*z+t*z" in
  let prod = K.binop k "fmul" (cur y) (cur sum) "y[k]*(...)" in
  let x = K.binop k "fadd" (cur q) (cur prod) "q + ..." in
  ignore (K.store k ax (cur x) "x[k] =");
  K.loop_control k

(* Kernel 2 — ICCG (incomplete Cholesky, vectorized sweep):
   x[ii+k] = x[k] - v[k]*x[k+1] *)
let lfk02 k =
  let av = K.addr k "av" and ax0 = K.addr k "ax0" in
  let ax1 = K.addr k "ax1" and axo = K.addr k "axo" in
  let v, _ = K.load k av "v[k]" in
  let x0, _ = K.load k ax0 "x[k]" in
  let x1, _ = K.load k ax1 "x[k+1]" in
  let p = K.binop k "fmul" (cur v) (cur x1) "v[k]*x[k+1]" in
  let d = K.binop k "fsub" (cur x0) (cur p) "x[k] - ..." in
  ignore (K.store k axo (cur d) "x[ii+k] =");
  K.loop_control k

(* Kernel 3 — inner product: q = q + z[k]*x[k] *)
let lfk03 k =
  let q = K.reg k "q" in
  let az = K.addr k "az" and ax = K.addr k "ax" in
  let z, _ = K.load k az "z[k]" in
  let x, _ = K.load k ax "x[k]" in
  let p = K.binop k "fmul" (cur z) (cur x) "z[k]*x[k]" in
  ignore (K.into k "fadd" ~dst:q [ prev q; cur p ] "q += z*x");
  K.loop_control k

(* Kernel 4 — banded linear equations (reduction sweep):
   xz = xz - y[j]*x[j] *)
let lfk04 k =
  let xz = K.reg k "xz" in
  let ay = K.addr k "ay" and ax = K.addr k "ax" in
  let y, _ = K.load k ay "y[j]" in
  let x, _ = K.load k ax "x[j]" in
  let p = K.binop k "fmul" (cur y) (cur x) "y[j]*x[j]" in
  ignore (K.into k "fsub" ~dst:xz [ prev xz; cur p ] "xz -= y*x");
  K.loop_control k

(* Kernel 5 — tri-diagonal elimination, below diagonal:
   x[i] = z[i] * (y[i] - x[i-1])   (register first-order recurrence) *)
let lfk05 k =
  let x = K.reg k "x" in
  let az = K.addr k "az" and ay = K.addr k "ay" and ax = K.addr k "ax" in
  let z, _ = K.load k az "z[i]" in
  let y, _ = K.load k ay "y[i]" in
  let d = K.binop k "fsub" (cur y) (prev x) "y[i] - x[i-1]" in
  ignore (K.into k "fmul" ~dst:x [ cur z; cur d ] "x[i] = z*(...)");
  ignore (K.store k ax (cur x) "x[i] =");
  K.loop_control k

(* Kernel 6 — general linear recurrence through memory:
   w[i] = w[i] + b[k]*w[i-k-1]; the carried value travels through the
   store/load pair, declared as an explicit memory flow dependence. *)
let lfk06 k =
  let ab = K.addr k "ab" and awr = K.addr k "awr" and aww = K.addr k "aww" in
  let b, _ = K.load k ab "b[k][i]" in
  let wold, load_w = K.load k awr "w[(i-k)-1]" in
  let p = K.binop k "fmul" (cur b) (cur wold) "b*w" in
  let acc = K.reg k "wacc" in
  ignore (K.into k "fadd" ~dst:acc [ prev acc; cur p ] "w += b*w'");
  let st = K.store k aww (cur acc) "w[i] =" in
  Builder.mem_dep (K.builder k) ~distance:1 Dep.Flow ~src:st ~dst:load_w;
  K.loop_control k

(* Kernel 7 — equation of state fragment (large vectorizable body):
   x[k] = u[k] + r*(z[k] + r*y[k])
        + t*(u[k+3] + r*(u[k+2] + r*u[k+1])
             + t*(u[k+6] + q*(u[k+5] + q*u[k+4]))) *)
let lfk07 k =
  let r = K.reg k "r" and t = K.reg k "t" and q = K.reg k "q" in
  let streams = [ "u0"; "u1"; "u2"; "u3"; "u4"; "u5"; "u6"; "y"; "z" ] in
  let load name =
    let a = K.addr k ("a" ^ name) in
    fst (K.load k a (name ^ "[k]"))
  in
  let vals = List.map (fun n -> (n, load n)) streams in
  let v n = cur (List.assoc n vals) in
  let ax = K.addr k "ax" in
  let ry = K.binop k "fmul" (cur r) (v "y") "r*y" in
  let zry = K.binop k "fadd" (v "z") (cur ry) "z + r*y" in
  let rzry = K.binop k "fmul" (cur r) (cur zry) "r*(z+r*y)" in
  let t1 = K.binop k "fadd" (v "u0") (cur rzry) "u + r*(...)" in
  let ru1 = K.binop k "fmul" (cur r) (v "u1") "r*u1" in
  let u2ru1 = K.binop k "fadd" (v "u2") (cur ru1) "u2 + r*u1" in
  let r2 = K.binop k "fmul" (cur r) (cur u2ru1) "r*(u2+r*u1)" in
  let u3r = K.binop k "fadd" (v "u3") (cur r2) "u3 + r*(...)" in
  let qu4 = K.binop k "fmul" (cur q) (v "u4") "q*u4" in
  let u5q = K.binop k "fadd" (v "u5") (cur qu4) "u5 + q*u4" in
  let q2 = K.binop k "fmul" (cur q) (cur u5q) "q*(u5+q*u4)" in
  let u6q = K.binop k "fadd" (v "u6") (cur q2) "u6 + q*(...)" in
  let tu6 = K.binop k "fmul" (cur t) (cur u6q) "t*(u6+...)" in
  let inner = K.binop k "fadd" (cur u3r) (cur tu6) "u3r + t*(...)" in
  let tinner = K.binop k "fmul" (cur t) (cur inner) "t*(...)" in
  let x = K.binop k "fadd" (cur t1) (cur tinner) "x[k]" in
  ignore (K.store k ax (cur x) "x[k] =");
  K.loop_control k

(* Kernel 8 — ADI integration (one sweep): three coupled updates from
   shared difference terms. *)
let lfk08 k =
  let a11 = K.reg k "a11" and a12 = K.reg k "a12" and a13 = K.reg k "a13" in
  let a21 = K.reg k "a21" and a22 = K.reg k "a22" and a23 = K.reg k "a23" in
  let a31 = K.reg k "a31" and a32 = K.reg k "a32" and a33 = K.reg k "a33" in
  let sig_ = K.reg k "sig" in
  let load name =
    let a = K.addr k ("a" ^ name) in
    fst (K.load k a name)
  in
  let u1p = load "u1[kx][ky+1]" and u1m = load "u1[kx][ky-1]" in
  let u2p = load "u2[kx][ky+1]" and u2m = load "u2[kx][ky-1]" in
  let u3p = load "u3[kx][ky+1]" and u3m = load "u3[kx][ky-1]" in
  let u1 = load "u1[kx][ky]" and u2 = load "u2[kx][ky]" and u3 = load "u3[kx][ky]" in
  let du1 = K.binop k "fsub" (cur u1p) (cur u1m) "du1" in
  let du2 = K.binop k "fsub" (cur u2p) (cur u2m) "du2" in
  let du3 = K.binop k "fsub" (cur u3p) (cur u3m) "du3" in
  let update u (c1, c2, c3) out =
    let t1 = K.binop k "fmul" (cur c1) (cur du1) "a*du1" in
    let t2 = K.binop k "fmul" (cur c2) (cur du2) "a*du2" in
    let t3 = K.binop k "fmul" (cur c3) (cur du3) "a*du3" in
    let s1 = K.binop k "fadd" (cur t1) (cur t2) "" in
    let s2 = K.binop k "fadd" (cur s1) (cur t3) "" in
    let s3 = K.binop k "fmul" (cur sig_) (cur s2) "sig*(...)" in
    let nu = K.binop k "fadd" (cur u) (cur s3) "u + sig*(...)" in
    let a = K.addr k out in
    ignore (K.store k a (cur nu) (out ^ " ="))
  in
  update u1 (a11, a12, a13) "u1out";
  update u2 (a21, a22, a23) "u2out";
  update u3 (a31, a32, a33) "u3out";
  K.loop_control k

(* Kernel 9 — integrate predictors: one long dot product of thirteen
   terms against the px row, fully vectorizable. *)
let lfk09 k =
  let coeffs = List.init 10 (fun i -> K.reg k (Printf.sprintf "dm%d" i)) in
  let load i =
    let a = K.addr k (Printf.sprintf "apx%d" i) in
    fst (K.load k a (Printf.sprintf "px[i][%d]" i))
  in
  let terms = List.init 10 (fun i -> load (i + 3)) in
  let products =
    List.map2
      (fun c x -> K.binop k "fmul" (cur c) (cur x) "dm*px")
      coeffs terms
  in
  let sum =
    match products with
    | first :: rest ->
        List.fold_left
          (fun acc p -> K.binop k "fadd" (cur acc) (cur p) "+")
          first rest
    | [] -> assert false
  in
  let aout = K.addr k "apx0" in
  ignore (K.store k aout (cur sum) "px[i][0] =");
  K.loop_control k

(* Kernel 10 — difference predictors: a serial chain of differences with
   a store after every link (long SL, trivial MII). *)
let lfk10 k =
  let acx = K.addr k "acx" in
  let ar, _ = K.load k acx "cx[i][5]" in
  let carry = ref ar in
  for j = 5 to 12 do
    let apx = K.addr k (Printf.sprintf "apx%d" j) in
    let px, _ = K.load k apx (Printf.sprintf "px[i][%d]" j) in
    let br = K.binop k "fsub" (cur !carry) (cur px) "br = ar - px" in
    let aout = K.addr k (Printf.sprintf "aout%d" j) in
    ignore (K.store k aout (cur !carry) (Printf.sprintf "px[i][%d] =" j));
    carry := br
  done;
  let afin = K.addr k "aout13" in
  ignore (K.store k afin (cur !carry) "px[i][13] =");
  K.loop_control k

(* Kernel 11 — first sum (prefix sum): x[k] = x[k-1] + y[k] *)
let lfk11 k =
  let x = K.reg k "x" in
  let ay = K.addr k "ay" and ax = K.addr k "ax" in
  let y, _ = K.load k ay "y[k]" in
  ignore (K.into k "fadd" ~dst:x [ prev x; cur y ] "x = x' + y");
  ignore (K.store k ax (cur x) "x[k] =");
  K.loop_control k

(* Kernel 12 — first difference: x[k] = y[k+1] - y[k] *)
let lfk12 k =
  let ay1 = K.addr k "ay1" and ay0 = K.addr k "ay0" and ax = K.addr k "ax" in
  let y1, _ = K.load k ay1 "y[k+1]" in
  let y0, _ = K.load k ay0 "y[k]" in
  let d = K.binop k "fsub" (cur y1) (cur y0) "y[k+1]-y[k]" in
  ignore (K.store k ax (cur d) "x[k] =");
  K.loop_control k

(* Kernel 13 — 2-D particle in cell (IF-converted gather/scatter). *)
let lfk13 k =
  let ap1 = K.addr k "ap1" and ap2 = K.addr k "ap2" in
  let p1, _ = K.load k ap1 "p[ip][0]" in
  let p2, _ = K.load k ap2 "p[ip][1]" in
  let i1 = K.unop k "copy" (cur p1) "i1 = int(p1)" in
  let j1 = K.unop k "copy" (cur p2) "j1 = int(p2)" in
  let ay = K.addr k "ay" and az = K.addr k "az" in
  let y, _ = K.load k ay "y[i1]" in
  let z, _ = K.load k az "z[j1]" in
  let s1 = K.binop k "fadd" (cur p1) (cur y) "p1 + y" in
  let s2 = K.binop k "fadd" (cur p2) (cur z) "p2 + z" in
  ignore (K.store k ap1 (cur s1) "p[ip][0] =");
  ignore (K.store k ap2 (cur s2) "p[ip][1] =");
  (* if (i2 <= 0) i2 = i2 + 64 — IF-converted bounds wrap. *)
  let i2 = K.binop k "add" (cur i1) (cur j1) "i2" in
  let zero = K.reg k "zero" in
  let c = K.binop k "cmp" (cur i2) (cur zero) "i2 <= 0" in
  let pt = K.unop k "pred_set" (cur c) "p_wrap" in
  let pf = K.unop k "pred_reset" (cur c) "p_nowrap" in
  let n64 = K.reg k "n64" in
  let wrapped = K.binop ~pred:(pt, 0) k "add" (cur i2) (cur n64) "i2 + 64" in
  let kept = K.unop ~pred:(pf, 0) k "copy" (cur i2) "i2" in
  let ah = K.addr k "ah" in
  let h, _ = K.load k ah "h[i2][j2]" in
  let hw = K.binop k "fadd" (cur h) (cur wrapped) "h + w" in
  let hk = K.binop k "fadd" (cur hw) (cur kept) "h + k" in
  ignore (K.store k ah (cur hk) "h[i2][j2] =");
  K.loop_control k

(* Kernel 14, first loop — 1-D particle in cell: position update. *)
let lfk14a k =
  let flx = K.reg k "flx" in
  let avx = K.addr k "avx" and axx = K.addr k "axx" in
  let agrd = K.addr k "agrd" in
  let vx, _ = K.load k avx "vx[k]" in
  let xx, _ = K.load k axx "xx[k]" in
  let grd, _ = K.load k agrd "grd[ix]" in
  let xi = K.unop k "copy" (cur grd) "xi = real(ix)" in
  let ex = K.binop k "fsub" (cur xx) (cur xi) "xx - xi" in
  let fx = K.binop k "fmul" (cur flx) (cur ex) "flx*(...)" in
  let nvx = K.binop k "fadd" (cur vx) (cur fx) "vx + flx*ex" in
  let nxx = K.binop k "fadd" (cur xx) (cur nvx) "xx + vx" in
  ignore (K.store k avx (cur nvx) "vx[k] =");
  ignore (K.store k axx (cur nxx) "xx[k] =");
  let air = K.addr k "air" in
  ignore (K.store k air (cur nxx) "ir[k] =");
  K.loop_control k

(* Kernel 14, second loop — charge deposition with wraparound test
   (IF-converted). *)
let lfk14b k =
  let air = K.addr k "air" and arx = K.addr k "arx" in
  let ir, _ = K.load k air "ir[k]" in
  let rx, _ = K.load k arx "rx[k]" in
  let zero = K.reg k "zero" in
  let c = K.binop k "cmp" (cur ir) (cur zero) "ir < 0" in
  let pt = K.unop k "pred_set" (cur c) "p_neg" in
  let pf = K.unop k "pred_reset" (cur c) "p_pos" in
  let nbins = K.reg k "nbins" in
  let irw = K.binop ~pred:(pt, 0) k "add" (cur ir) (cur nbins) "ir + 2048" in
  let irk = K.unop ~pred:(pf, 0) k "copy" (cur ir) "ir" in
  let adep = K.addr k "adep" in
  let dep0, _ = K.load k adep "dep[ir]" in
  let one = K.reg k "onef" in
  let rxm = K.binop k "fsub" (cur one) (cur rx) "1 - rx" in
  let d1 = K.binop k "fadd" (cur dep0) (cur rxm) "dep + (1-rx)" in
  let d2 = K.binop k "fadd" (cur d1) (cur irw) "dep + w" in
  let d3 = K.binop k "fadd" (cur d2) (cur irk) "dep + k" in
  ignore (K.store k adep (cur d3) "dep[ir] =");
  K.loop_control k

(* Kernel 15 — casual Fortran: nested conditionals via structured
   IF-conversion. *)
let lfk15 k =
  let b = K.builder k in
  let avy = K.addr k "avy" and avs = K.addr k "avs" in
  let vy, _ = K.load k avy "vy[j][k]" in
  let vs, _ = K.load k avs "vs[j][k-1]" in
  let zero = K.reg k "zero" in
  let c1 = K.binop k "cmp" (cur vy) (cur zero) "vy > 0" in
  let region =
    If_conversion.(
      If
        {
          cond = ("lfk15$c1", 0);
          then_ =
            Seq
              [
                Block
                  [
                    stmt "fmul" ~dsts:[ "t" ] ~srcs:[ ("lfk15$vs", 0); ("lfk15$vs", 0) ]
                      ~tag:"t = vs*vs";
                    stmt "fadd" ~dsts:[ "r" ] ~srcs:[ ("t", 0); ("lfk15$vy", 0) ]
                      ~tag:"r = t + vy";
                  ];
                If
                  {
                    cond = ("lfk15$c1", 0);
                    then_ =
                      Block
                        [
                          stmt "fsub" ~dsts:[ "r2" ]
                            ~srcs:[ ("r", 0); ("lfk15$vs", 0) ]
                            ~tag:"r2 = r - vs";
                        ];
                    else_ =
                      Block
                        [
                          stmt "copy" ~dsts:[ "r2" ] ~srcs:[ ("r", 0) ]
                            ~tag:"r2 = r";
                        ];
                  };
              ];
          else_ =
            Block
              [
                stmt "fmul" ~dsts:[ "r2b" ]
                  ~srcs:[ ("lfk15$vy", 0); ("lfk15$vy", 0) ]
                  ~tag:"r2b = vy*vy";
              ];
        })
  in
  (* Alias the condition and inputs into the names used by the region. *)
  ignore (Builder.add b ~opcode:"copy" ~dsts:[ Builder.vreg b "lfk15$c1" ] ~srcs:[ (c1, 0) ] ());
  ignore (Builder.add b ~opcode:"copy" ~dsts:[ Builder.vreg b "lfk15$vs" ] ~srcs:[ (vs, 0) ] ());
  ignore (Builder.add b ~opcode:"copy" ~dsts:[ Builder.vreg b "lfk15$vy" ] ~srcs:[ (vy, 0) ] ());
  If_conversion.convert b region;
  let aout = K.addr k "aout" in
  let r2 = Builder.vreg b "r2" in
  ignore (K.store k aout (r2, 0) "vy[j][k] =");
  K.loop_control k

(* Kernel 17 — implicit conditional computation: predicated recurrence. *)
let lfk17 k =
  let scale = K.reg k "scale" in
  let avxne = K.addr k "avxne" and avxnd = K.addr k "avxnd" in
  let vxne, _ = K.load k avxne "vxne[i]" in
  let vxnd, _ = K.load k avxnd "vxnd[i]" in
  let xnm = K.reg k "xnm" in
  let t = K.binop k "fmul" (cur scale) (prev xnm) "scale*xnm'" in
  let c = K.binop k "fcmp" (cur t) (cur vxne) "t > vxne" in
  let pt = K.unop k "pred_set" (cur c) "p_t" in
  let pf = K.unop k "pred_reset" (cur c) "p_f" in
  ignore
    (K.into ~pred:(pt, 0) k "copy" ~dst:xnm [ cur vxne ] "xnm = vxne");
  ignore
    (K.into ~pred:(pf, 0) k "copy" ~dst:xnm [ cur vxnd ] "xnm = vxnd");
  let aout = K.addr k "aout" in
  ignore (K.store k aout (cur xnm) "xnm out");
  K.loop_control k

(* Kernel 18 — 2-D explicit hydrodynamics, three inner loops. *)
let lfk18_sub part k =
  let t = K.reg k "t18" and s = K.reg k "s18" in
  let load name =
    let a = K.addr k ("a" ^ name) in
    fst (K.load k a name)
  in
  (match part with
  | `A ->
      (* za, zb from zp/zq/zr/zm neighbourhoods. *)
      let zp0 = load "zp[j-1][k]" and zp1 = load "zp[j][k]" in
      let zq0 = load "zq[j-1][k]" and zq1 = load "zq[j][k]" in
      let zr0 = load "zr[j][k]" and zm0 = load "zm[j][k]" in
      let n1 = K.binop k "fadd" (cur zp0) (cur zq0) "zp+zq" in
      let n2 = K.binop k "fadd" (cur zp1) (cur zq1) "zp+zq" in
      let d1 = K.binop k "fsub" (cur n1) (cur n2) "" in
      let m1 = K.binop k "fmul" (cur zr0) (cur d1) "zr*(...)" in
      let m2 = K.binop k "fmul" (cur zm0) (cur m1) "zm*(...)" in
      let za = K.binop k "fmul" (cur t) (cur m2) "za" in
      let zb = K.binop k "fsub" (cur m2) (cur za) "zb" in
      let aza = K.addr k "aza" and azb = K.addr k "azb" in
      ignore (K.store k aza (cur za) "za[j][k] =");
      ignore (K.store k azb (cur zb) "zb[j][k] =")
  | `B ->
      (* zu, zv velocity updates. *)
      let zu = load "zu[j][k]" and zv = load "zv[j][k]" in
      let za0 = load "za[j][k]" and za1 = load "za[j-1][k]" in
      let zb0 = load "zb[j][k]" and zb1 = load "zb[j][k-1]" in
      let zz0 = load "zz[j][k]" and zz1 = load "zz[j+1][k]" in
      let d1 = K.binop k "fsub" (cur zz1) (cur zz0) "dz" in
      let f1 = K.binop k "fmul" (cur za0) (cur d1) "za*dz" in
      let d2 = K.binop k "fsub" (cur za1) (cur zb0) "" in
      let f2 = K.binop k "fmul" (cur zb1) (cur d2) "zb*(...)" in
      let su = K.binop k "fadd" (cur f1) (cur f2) "" in
      let nzu = K.binop k "fadd" (cur zu) (cur su) "zu +" in
      let sv = K.binop k "fsub" (cur f1) (cur f2) "" in
      let nzv = K.binop k "fadd" (cur zv) (cur sv) "zv +" in
      let azu = K.addr k "azuo" and azv = K.addr k "azvo" in
      ignore (K.store k azu (cur nzu) "zu[j][k] =");
      ignore (K.store k azv (cur nzv) "zv[j][k] =")
  | `C ->
      (* zr, zz position updates. *)
      let zr = load "zr[j][k]" and zz = load "zz[j][k]" in
      let zu = load "zu[j][k]" and zv = load "zv[j][k]" in
      let fu = K.binop k "fmul" (cur s) (cur zu) "s*zu" in
      let fv = K.binop k "fmul" (cur s) (cur zv) "s*zv" in
      let nzr = K.binop k "fadd" (cur zr) (cur fu) "zr + s*zu" in
      let nzz = K.binop k "fadd" (cur zz) (cur fv) "zz + s*zv" in
      let azr = K.addr k "azro" and azz = K.addr k "azzo" in
      ignore (K.store k azr (cur nzr) "zr[j][k] =");
      ignore (K.store k azz (cur nzz) "zz[j][k] ="));
  K.loop_control k

(* Kernel 19 — general linear recurrence equations, both sweeps. *)
let lfk19 forward k =
  let stb5 = K.reg k "stb5" in
  let asa = K.addr k "asa" and asb = K.addr k "asb" in
  let ab5 = K.addr k "ab5" in
  let sa, _ = K.load k asa "sa[k]" in
  let sb, _ = K.load k asb "sb[k]" in
  (* stb5 = b5[k] := sa[k] + stb5*sb[k] (forward) or the mirrored
     backward sweep — structurally identical recurrences. *)
  let p = K.binop k "fmul" (prev stb5) (cur sb) "stb5*sb" in
  ignore (K.into k "fadd" ~dst:stb5 [ cur sa; cur p ]
      (if forward then "stb5 fwd" else "stb5 bwd"));
  ignore (K.store k ab5 (cur stb5) "b5[k] =");
  K.loop_control k

(* Kernel 20 — discrete ordinates transport: recurrence through a
   divide (RecMII dominated by the 22-cycle fdiv). *)
let lfk20 k =
  let a = K.reg k "a20" and b = K.reg k "b20" in
  let xx = K.reg k "xx" in
  let avx = K.addr k "avx" and ay = K.addr k "ay" in
  let ag = K.addr k "ag" and axxo = K.addr k "axxo" in
  let vx, _ = K.load k avx "vx[k]" in
  let y, _ = K.load k ay "y[k]" in
  let g, _ = K.load k ag "g[k]" in
  let t1 = K.binop k "fmul" (cur a) (prev xx) "a*xx'" in
  let t2 = K.binop k "fadd" (cur vx) (cur t1) "vx + a*xx'" in
  let t3 = K.binop k "fmul" (cur y) (cur t2) "y*(...)" in
  let t4 = K.binop k "fadd" (cur b) (cur g) "b + g" in
  ignore (K.into k "fdiv" ~dst:xx [ cur t3; cur t4 ] "xx = num/den");
  ignore (K.store k axxo (cur xx) "xx[k] =");
  K.loop_control k

(* Kernel 21 — matrix * matrix product: px[i][j] += vy[k][j]*cx[i][k] *)
let lfk21 k =
  let px = K.reg k "px" in
  let avy = K.addr k "avy" and acx = K.addr k "acx" in
  let apx = K.addr k "apx" in
  let vy, _ = K.load k avy "vy[k][j]" in
  let cx, _ = K.load k acx "cx[i][k]" in
  let p = K.binop k "fmul" (cur vy) (cur cx) "vy*cx" in
  ignore (K.into k "fadd" ~dst:px [ prev px; cur p ] "px += vy*cx");
  ignore (K.store k apx (cur px) "px[i][j] =");
  K.loop_control k

(* Kernel 22 — Planckian distribution: two divides, no recurrence (the
   original exp is a table lookup plus correction — modelled by the
   divide-heavy data flow). *)
let lfk22 k =
  let au = K.addr k "au" and av = K.addr k "av" in
  let ax = K.addr k "ax" and aw = K.addr k "aw" and ayo = K.addr k "ayo" in
  let u, _ = K.load k au "u[k]" in
  let v, _ = K.load k av "v[k]" in
  let x, _ = K.load k ax "x[k]" in
  let y = K.binop k "fdiv" (cur u) (cur v) "y = u/v" in
  let one = K.reg k "onef" in
  let e1 = K.binop k "fmul" (cur y) (cur y) "y*y (exp approx)" in
  let e2 = K.binop k "fadd" (cur e1) (cur y) "" in
  let den = K.binop k "fsub" (cur e2) (cur one) "exp(y)-1" in
  let w = K.binop k "fdiv" (cur x) (cur den) "w = x/(exp(y)-1)" in
  ignore (K.store k aw (cur w) "w[k] =");
  ignore (K.store k ayo (cur y) "y[k] =");
  K.loop_control k

(* Kernel 23 — 2-D implicit hydrodynamics: recurrence through memory on
   the k-1 column. *)
let lfk23 k =
  let load name =
    let a = K.addr k ("a" ^ name) in
    K.load k a name
  in
  let za1, _ = load "za[j+1][k]" in
  let zr0, _ = load "zr[j][k]" in
  let za2, load_prev = load "za[j][k-1]" in
  let zb0, _ = load "zb[j][k]" in
  let zu0, _ = load "zu[j][k]" in
  let zv0, _ = load "zv[j][k]" in
  let zzk, _ = load "zz[j][k]" in
  let qa1 = K.binop k "fmul" (cur za1) (cur zr0) "za*zr" in
  let qa2 = K.binop k "fmul" (cur za2) (cur zb0) "za'*zb" in
  let qa3 = K.binop k "fadd" (cur qa1) (cur qa2) "" in
  let qa4 = K.binop k "fadd" (cur zu0) (cur zv0) "zu+zv" in
  let qa = K.binop k "fadd" (cur qa3) (cur qa4) "qa" in
  let f = K.reg k "f175" in
  let d = K.binop k "fsub" (cur qa) (cur zzk) "qa - zz" in
  let s = K.binop k "fmul" (cur f) (cur d) "0.175*(...)" in
  let nz = K.binop k "fadd" (cur zzk) (cur s) "zz + 0.175*(...)" in
  let azout = K.addr k "azout" in
  let st = K.store k azout (cur nz) "za[j][k] =" in
  Builder.mem_dep (K.builder k) ~distance:1 Dep.Flow ~src:st ~dst:load_prev;
  K.loop_control k

(* Kernel 24 — first minimum: predicated min-reduction (the conditional
   is IF-converted, not an early exit). *)
let lfk24 k =
  let ax = K.addr k "ax" in
  let x, _ = K.load k ax "x[k]" in
  let xm = K.reg k "xm" in
  let c = K.binop k "fcmp" (cur x) (prev xm) "x[k] < xm" in
  let pt = K.unop k "pred_set" (cur c) "p_lt" in
  let pf = K.unop k "pred_reset" (cur c) "p_ge" in
  ignore (K.into ~pred:(pt, 0) k "copy" ~dst:xm [ cur x ] "xm = x[k]");
  ignore (K.into ~pred:(pf, 0) k "copy" ~dst:xm [ prev xm ] "xm = xm'");
  K.loop_control k

let table : (string * (K.t -> unit)) list =
  [
    ("lfk01", lfk01);
    ("lfk02", lfk02);
    ("lfk03", lfk03);
    ("lfk04", lfk04);
    ("lfk05", lfk05);
    ("lfk06", lfk06);
    ("lfk07", lfk07);
    ("lfk08", lfk08);
    ("lfk09", lfk09);
    ("lfk10", lfk10);
    ("lfk11", lfk11);
    ("lfk12", lfk12);
    ("lfk13", lfk13);
    ("lfk14a", lfk14a);
    ("lfk14b", lfk14b);
    ("lfk15", lfk15);
    ("lfk17", lfk17);
    ("lfk18a", lfk18_sub `A);
    ("lfk18b", lfk18_sub `B);
    ("lfk18c", lfk18_sub `C);
    ("lfk19a", lfk19 true);
    ("lfk19b", lfk19 false);
    ("lfk20", lfk20);
    ("lfk21", lfk21);
    ("lfk22", lfk22);
    ("lfk23", lfk23);
    ("lfk24", lfk24);
  ]

let names = List.map fst table

let build ?model ?keep_false_deps machine name =
  match List.assoc_opt name table with
  | None -> raise Not_found
  | Some f ->
      let k = K.create ?model machine in
      f k;
      K.finish ?keep_false_deps k

let all ?model ?keep_false_deps machine =
  List.map
    (fun (name, _) -> (name, build ?model ?keep_false_deps machine name))
    table
