open Ims_ir

type t = { b : Builder.t; mutable tmp : int }

let create ?model machine = { b = Builder.create ?model machine; tmp = 0 }
let builder t = t.b

let fresh t prefix =
  t.tmp <- t.tmp + 1;
  Builder.vreg t.b (Printf.sprintf "%s$%d" prefix t.tmp)

let reg t name = Builder.vreg t.b name

let addr ?(backsub = true) t name =
  let a = Builder.vreg t.b name in
  let distance = if backsub then 3 else 1 in
  ignore
    (Builder.add t.b ~tag:(name ^ " += stride") ~opcode:"aadd" ~dsts:[ a ]
       ~srcs:[ (a, distance) ]
       ~imm:(8.0 *. float_of_int distance)
       ());
  a

let load ?pred t a tag =
  let v = fresh t "ld" in
  let op =
    Builder.add t.b ~tag ?pred ~opcode:"load" ~dsts:[ v ] ~srcs:[ (a, 0) ] ()
  in
  (v, op)

let store ?pred t a (v, d) tag =
  Builder.add t.b ~tag ?pred ~opcode:"store" ~dsts:[]
    ~srcs:[ (a, 0); (v, d) ]
    ()

let unop ?pred t opcode x tag =
  let d = fresh t opcode in
  ignore (Builder.add t.b ~tag ?pred ~opcode ~dsts:[ d ] ~srcs:[ x ] ());
  d

let binop ?pred t opcode x y tag =
  let d = fresh t opcode in
  ignore (Builder.add t.b ~tag ?pred ~opcode ~dsts:[ d ] ~srcs:[ x; y ] ());
  d

let into ?pred t opcode ~dst srcs tag =
  Builder.add t.b ~tag ?pred ~opcode ~dsts:[ dst ] ~srcs ()

let loop_control ?(backsub = true) t =
  let i = Builder.vreg t.b "loop$i" in
  let limit = Builder.vreg t.b "loop$limit" in  (* live-in *)
  let cond = fresh t "loop$cond" in
  let distance = if backsub then 3 else 1 in
  ignore
    (Builder.add t.b ~tag:"i += 1" ~opcode:"aadd" ~dsts:[ i ]
       ~srcs:[ (i, distance) ]
       ~imm:(float_of_int distance)
       ());
  ignore
    (Builder.add t.b ~tag:"i < n" ~opcode:"cmp" ~dsts:[ cond ]
       ~srcs:[ (i, 0); (limit, 0) ] ());
  ignore
    (Builder.add t.b ~tag:"brtop" ~opcode:"branch" ~dsts:[]
       ~srcs:[ (cond, 0) ] ())

let finish ?keep_false_deps t = Builder.finish ?keep_false_deps t.b
