(** Opcode descriptors.

    An opcode has an architectural latency (cycles from issue until its
    result may be read) and one or more {e alternatives}: functional units
    on which it can execute, each with its own reservation table
    (Rau 1994, section 2.1). *)

type alternative = {
  unit_name : string;  (** Name of the functional unit implementing it. *)
  table : Reservation.t;
}

type t = private {
  name : string;
  latency : int;  (** At least 0; 0 only for pseudo-operations. *)
  alternatives : alternative list;  (** Non-empty. *)
  is_pseudo : bool;  (** START/STOP and friends: no resources, latency 0. *)
}

val make :
  name:string -> latency:int -> alternatives:alternative list -> t
(** @raise Invalid_argument on empty alternatives or negative latency. *)

val pseudo : string -> t
(** A pseudo-operation: latency 0, a single empty reservation table. *)

val num_alternatives : t -> int

val pp : Format.formatter -> t -> unit
