(** Machine models.

    A machine is a set of {!Resource.t}s plus an opcode repertoire whose
    resource usage is described by reservation tables.  Three concrete
    models are provided:

    - {!cydra5}: the model of the paper's table 2 — the machine the
      evaluation (tables 3, 4, figure 6) runs on;
    - {!figure1}: the small shared-bus machine of the paper's figure 1,
      used in the worked examples and tests of complex-table collisions;
    - {!simple_vliw}: a small machine with only simple reservation tables,
      convenient for hand-checkable tests. *)

exception Unknown_opcode of string

type t = private {
  name : string;
  resources : Resource.t array;  (** Indexed by resource id. *)
  opcodes : (string, Opcode.t) Hashtbl.t;
}

(** {1 Declarative construction} *)

type builder

val builder : string -> builder

val add_resource : builder -> string -> count:int -> int
(** [add_resource b name ~count] declares a resource and returns its id. *)

val add_opcode :
  builder ->
  name:string ->
  latency:int ->
  alternatives:(string * (int * int) list) list ->
  unit
(** [add_opcode b ~name ~latency ~alternatives] declares an opcode.  Each
    alternative is [(unit_name, usages)] where usages are [(resource, at)]
    pairs for {!Reservation.make}. *)

val finish : builder -> t

(** {1 Queries} *)

val opcode : t -> string -> Opcode.t
(** @raise Unknown_opcode if the opcode is not declared.  The pseudo
    opcodes ["START"] and ["STOP"] are implicitly available on every
    machine. *)

val latency : t -> string -> int
val resource_by_name : t -> string -> Resource.t
val num_resources : t -> int

val opcode_names : t -> string list
(** All declared (non-pseudo) opcode names, sorted. *)

(** {1 Concrete machines} *)

val cydra5 : unit -> t
(** The Cydra 5 model of the paper's table 2: two memory ports (load
    latency 20 as in the experiments, not the 26 of the product compiler),
    two address ALUs (latency 3), one adder (latency 4), one multiplier
    (multiply 5, divide 22, square root 26 — the divide and square root
    occupy the multiplier for a block of cycles), one instruction unit
    (branch latency 13).  Result buses give the adder, multiplier and
    memory ports complex reservation tables; integer add and copy have two
    alternatives (adder or address ALU).  Entries that are garbled in the
    surviving text of table 2 (store and predicate latencies) are given
    plausible values and noted in EXPERIMENTS.md. *)

val figure1 : unit -> t
(** The machine of the paper's figure 1: two shared source buses, a shared
    result bus, a 2-stage ALU (latency 4) and a 4-stage multiplier
    (latency 6).  Reproduces the collisions discussed in section 2.1: an
    add and a multiply cannot issue in the same cycle (source buses), and
    an add cannot issue two cycles after a multiply (result bus). *)

val simple_vliw : unit -> t
(** A 2-ALU / 1-memory / 1-multiplier / 1-branch machine in which every
    reservation table is simple.  Latencies: alu 1, mem 2 (load) / 1
    (store), mul 3, branch 1. *)

val superscalar4 : unit -> t
(** A generic 4-issue superscalar with the conservative-latency flavour:
    2 integer ALUs (1 cycle), 2 memory ports (load 3), 2 FP units
    (add 3, multiply 4, iterative divide 12 / sqrt 20 blocking one
    unit), 1 branch unit.  The opcode names match {!cydra5}, so any loop
    retargets via [Ddg.map_machine]; intended for the cross-machine
    study and the conservative delay model of table 1. *)

val pp : Format.formatter -> t -> unit
(** Renders the machine as a table 2 style listing. *)
