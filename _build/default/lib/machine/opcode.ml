type alternative = { unit_name : string; table : Reservation.t }

type t = {
  name : string;
  latency : int;
  alternatives : alternative list;
  is_pseudo : bool;
}

let make ~name ~latency ~alternatives =
  if alternatives = [] then invalid_arg "Opcode.make: no alternatives";
  if latency < 0 then invalid_arg "Opcode.make: negative latency";
  { name; latency; alternatives; is_pseudo = false }

let pseudo name =
  {
    name;
    latency = 0;
    alternatives = [ { unit_name = "none"; table = Reservation.empty } ];
    is_pseudo = true;
  }

let num_alternatives t = List.length t.alternatives

let pp ppf t =
  Format.fprintf ppf "%s(lat=%d, alts=%d)" t.name t.latency
    (List.length t.alternatives)
