(** Machine resources.

    A resource is anything that an operation can hold exclusively for one
    cycle: a pipeline stage of a functional unit, a bus, or a field in the
    instruction format (Rau 1994, section 2.1).  A resource may exist in
    several identical copies (e.g. the two memory ports of the Cydra 5);
    [count] is that multiplicity. *)

type t = {
  id : int;  (** Dense index into the machine's resource array. *)
  name : string;  (** Human-readable name, unique within a machine. *)
  count : int;  (** Number of identical copies; at least 1. *)
}

val make : id:int -> name:string -> count:int -> t
(** [make ~id ~name ~count] builds a resource descriptor.
    @raise Invalid_argument if [count < 1] or [id < 0]. *)

val pp : Format.formatter -> t -> unit
(** Prints as [name(xcount)] e.g. [MemPort(x2)]. *)
