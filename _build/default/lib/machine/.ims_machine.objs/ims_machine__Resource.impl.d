lib/machine/resource.ml: Format
