lib/machine/machine.mli: Format Hashtbl Opcode Resource
