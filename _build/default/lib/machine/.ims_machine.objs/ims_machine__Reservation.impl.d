lib/machine/reservation.ml: Array Format List Printf Resource String
