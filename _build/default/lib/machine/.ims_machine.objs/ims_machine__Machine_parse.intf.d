lib/machine/machine_parse.mli: Machine
