lib/machine/mrt.ml: Array Format Fun Hashtbl List Machine Option Printf Reservation Resource String
