lib/machine/machine.ml: Array Format Hashtbl List Opcode Reservation Resource String
