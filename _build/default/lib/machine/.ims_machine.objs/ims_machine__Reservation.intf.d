lib/machine/reservation.mli: Format Resource
