lib/machine/opcode.mli: Format Reservation
