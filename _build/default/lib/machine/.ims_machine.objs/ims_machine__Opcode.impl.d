lib/machine/opcode.ml: Format List Reservation
