lib/machine/mrt.mli: Format Machine Reservation
