lib/machine/machine_parse.ml: Array Buffer Format Hashtbl List Machine Opcode Printf Reservation Resource String
