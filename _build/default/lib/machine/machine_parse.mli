(** A textual machine-description format.

    The evaluation machines are built in code ({!Machine.cydra5} and
    friends); this parser lets a user describe their own without
    recompiling:

    {v
    # a 2-wide DSP
    machine MyDSP
    resource ALU 2
    resource MEM 1
    resource MAC 1

    opcode add   1  ALU = ALU
    opcode load  3  MEM = MEM
    opcode mac   2  MAC = MAC@0 MAC@1
    opcode mul   2  MAC = MAC@0 MAC@1 ; ALU = ALU@0 ALU@1
    v}

    One declaration per line.  [resource NAME COUNT] declares a resource
    with that multiplicity.  [opcode NAME LATENCY alt ; alt ...] gives
    the opcode one reservation-table alternative per [;]-separated
    group; each group is [UNITNAME = usage...] where a usage is
    [RESOURCE@CYCLE] ([@0] may be omitted).  [#] or [;]-free comments
    start with [#]. *)

exception Parse_error of int * string

val parse : string -> Machine.t
(** @raise Parse_error on malformed input (line number, message). *)

val parse_file : string -> Machine.t

val dump : Machine.t -> string
(** Re-emit a machine in the same format; [parse (dump m)] is
    equivalent to [m]. *)
