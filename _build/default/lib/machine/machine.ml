exception Unknown_opcode of string

type t = {
  name : string;
  resources : Resource.t array;
  opcodes : (string, Opcode.t) Hashtbl.t;
}

type builder = {
  b_name : string;
  mutable b_resources : Resource.t list;  (* reversed *)
  b_opcodes : (string, Opcode.t) Hashtbl.t;
}

let builder name = { b_name = name; b_resources = []; b_opcodes = Hashtbl.create 31 }

let add_resource b name ~count =
  let id = List.length b.b_resources in
  b.b_resources <- Resource.make ~id ~name ~count :: b.b_resources;
  id

let add_opcode b ~name ~latency ~alternatives =
  let alt (unit_name, usages) =
    { Opcode.unit_name; table = Reservation.make usages }
  in
  let opcode =
    Opcode.make ~name ~latency ~alternatives:(List.map alt alternatives)
  in
  if Hashtbl.mem b.b_opcodes name then
    invalid_arg ("Machine.add_opcode: duplicate opcode " ^ name);
  Hashtbl.replace b.b_opcodes name opcode

let finish b =
  {
    name = b.b_name;
    resources = Array.of_list (List.rev b.b_resources);
    opcodes = b.b_opcodes;
  }

let opcode t name =
  match name with
  | "START" | "STOP" -> Opcode.pseudo name
  | _ -> (
      match Hashtbl.find_opt t.opcodes name with
      | Some op -> op
      | None -> raise (Unknown_opcode name))

let latency t name = (opcode t name).Opcode.latency

let resource_by_name t name =
  let found = ref None in
  Array.iter
    (fun (r : Resource.t) -> if r.name = name then found := Some r)
    t.resources;
  match !found with
  | Some r -> r
  | None -> invalid_arg ("Machine.resource_by_name: " ^ name)

let num_resources t = Array.length t.resources

let opcode_names t =
  Hashtbl.fold (fun name _ acc -> name :: acc) t.opcodes []
  |> List.sort compare

(* The Cydra 5 of table 2.  Each functional unit owns its issue stage; the
   adder, multiplier and memory ports also own a result bus used near the
   end of execution, which makes their tables complex.  Divide and square
   root occupy the (single) multiplier for a block of cycles, as on the
   real machine where they were computed iteratively. *)
let cydra5 () =
  let b = builder "Cydra 5" in
  let mem_port = add_resource b "MemPort" ~count:2 in
  let mem_return = add_resource b "MemReturn" ~count:2 in
  let addr_alu = add_resource b "AddrALU" ~count:2 in
  let adder = add_resource b "Adder" ~count:1 in
  let adder_result = add_resource b "AdderRes" ~count:1 in
  let multiplier = add_resource b "Mult" ~count:1 in
  let mult_result = add_resource b "MultRes" ~count:1 in
  let instr_unit = add_resource b "Instr" ~count:1 in
  let on_adder = ("Adder", [ (adder, 0); (adder_result, 3) ]) in
  let on_addr_alu = ("AddrALU", [ (addr_alu, 0) ]) in
  let block resource first last extra =
    List.init (last - first + 1) (fun i -> (resource, first + i)) @ extra
  in
  add_opcode b ~name:"load" ~latency:20
    ~alternatives:[ ("MemPort", [ (mem_port, 0); (mem_return, 19) ]) ];
  add_opcode b ~name:"store" ~latency:1
    ~alternatives:[ ("MemPort", [ (mem_port, 0) ]) ];
  add_opcode b ~name:"pred_set" ~latency:4
    ~alternatives:[ ("MemPort", [ (mem_port, 0) ]) ];
  add_opcode b ~name:"pred_reset" ~latency:4
    ~alternatives:[ ("MemPort", [ (mem_port, 0) ]) ];
  add_opcode b ~name:"aadd" ~latency:3 ~alternatives:[ on_addr_alu ];
  add_opcode b ~name:"asub" ~latency:3 ~alternatives:[ on_addr_alu ];
  List.iter
    (fun name ->
      add_opcode b ~name ~latency:4 ~alternatives:[ on_adder ])
    [ "fadd"; "fsub"; "cmp"; "fcmp" ];
  (* Integer add/subtract and copies run on either the adder or an address
     ALU: the multi-alternative opcodes of section 2.1. *)
  List.iter
    (fun name ->
      add_opcode b ~name ~latency:4 ~alternatives:[ on_addr_alu; on_adder ])
    [ "add"; "sub"; "copy" ];
  List.iter
    (fun name ->
      add_opcode b ~name ~latency:5
        ~alternatives:[ ("Mult", [ (multiplier, 0); (mult_result, 4) ]) ])
    [ "mul"; "fmul" ];
  List.iter
    (fun name ->
      add_opcode b ~name ~latency:22
        ~alternatives:[ ("Mult", block multiplier 0 7 [ (mult_result, 21) ]) ])
    [ "div"; "fdiv" ];
  add_opcode b ~name:"sqrt" ~latency:26
    ~alternatives:[ ("Mult", block multiplier 0 9 [ (mult_result, 25) ]) ];
  add_opcode b ~name:"branch" ~latency:13
    ~alternatives:[ ("Instr", [ (instr_unit, 0) ]) ];
  finish b

(* The machine of figure 1: both operations grab the two shared source
   buses at issue and the shared result bus on their last execution cycle,
   so an add issued two cycles after a multiply collides on the result
   bus. *)
let figure1 () =
  let b = builder "Figure 1" in
  let src_bus = add_resource b "SrcBus" ~count:2 in
  let alu1 = add_resource b "ALU1" ~count:1 in
  let alu2 = add_resource b "ALU2" ~count:1 in
  let m1 = add_resource b "Mult1" ~count:1 in
  let m2 = add_resource b "Mult2" ~count:1 in
  let m3 = add_resource b "Mult3" ~count:1 in
  let m4 = add_resource b "Mult4" ~count:1 in
  let result_bus = add_resource b "ResBus" ~count:1 in
  add_opcode b ~name:"add" ~latency:4
    ~alternatives:
      [ ("ALU", [ (src_bus, 0); (src_bus, 0); (alu1, 1); (alu2, 2); (result_bus, 3) ]) ];
  add_opcode b ~name:"mul" ~latency:6
    ~alternatives:
      [
        ( "Mult",
          [
            (src_bus, 0); (src_bus, 0); (m1, 1); (m2, 2); (m3, 3); (m4, 4);
            (result_bus, 5);
          ] );
      ];
  finish b

let simple_vliw () =
  let b = builder "Simple VLIW" in
  let alu = add_resource b "ALU" ~count:2 in
  let mem = add_resource b "MEM" ~count:1 in
  let mul = add_resource b "MUL" ~count:1 in
  let br = add_resource b "BR" ~count:1 in
  List.iter
    (fun name ->
      add_opcode b ~name ~latency:1 ~alternatives:[ ("ALU", [ (alu, 0) ]) ])
    [ "add"; "sub"; "cmp"; "copy"; "aadd" ];
  add_opcode b ~name:"load" ~latency:2
    ~alternatives:[ ("MEM", [ (mem, 0) ]) ];
  add_opcode b ~name:"store" ~latency:1
    ~alternatives:[ ("MEM", [ (mem, 0) ]) ];
  add_opcode b ~name:"mul" ~latency:3
    ~alternatives:[ ("MUL", [ (mul, 0) ]) ];
  add_opcode b ~name:"branch" ~latency:1
    ~alternatives:[ ("BR", [ (br, 0) ]) ];
  finish b

(* A generic modern 4-issue superscalar: short latencies, every
   reservation table simple, plentiful integer units.  Opcode names match
   the Cydra 5 repertoire so any loop retargets via [Ddg.map_machine]. *)
let superscalar4 () =
  let b = builder "Superscalar-4" in
  let alu = add_resource b "ALU" ~count:2 in
  let mem = add_resource b "MEM" ~count:2 in
  let fp = add_resource b "FP" ~count:2 in
  let br = add_resource b "BR" ~count:1 in
  let on_alu = ("ALU", [ (alu, 0) ]) in
  List.iter
    (fun name -> add_opcode b ~name ~latency:1 ~alternatives:[ on_alu ])
    [ "aadd"; "asub"; "add"; "sub"; "copy"; "cmp"; "pred_set"; "pred_reset" ];
  add_opcode b ~name:"load" ~latency:3 ~alternatives:[ ("MEM", [ (mem, 0) ]) ];
  add_opcode b ~name:"store" ~latency:1 ~alternatives:[ ("MEM", [ (mem, 0) ]) ];
  List.iter
    (fun (name, latency) ->
      add_opcode b ~name ~latency ~alternatives:[ ("FP", [ (fp, 0) ]) ])
    [ ("fadd", 3); ("fsub", 3); ("fcmp", 3); ("fmul", 4); ("mul", 3) ];
  (* Divide and square root iterate in one FP unit. *)
  List.iter
    (fun (name, latency, busy) ->
      add_opcode b ~name ~latency
        ~alternatives:
          [ ("FP", List.init busy (fun i -> (fp, i))) ])
    [ ("fdiv", 12, 10); ("div", 12, 10); ("sqrt", 20, 18) ];
  add_opcode b ~name:"branch" ~latency:1 ~alternatives:[ ("BR", [ (br, 0) ]) ];
  finish b

let pp ppf t =
  Format.fprintf ppf "Machine: %s@." t.name;
  Format.fprintf ppf "Resources:@.";
  Array.iter (fun r -> Format.fprintf ppf "  %a@." Resource.pp r) t.resources;
  Format.fprintf ppf "Opcodes:@.";
  List.iter
    (fun name ->
      let op = Hashtbl.find t.opcodes name in
      let shapes =
        List.map
          (fun (a : Opcode.alternative) ->
            match Reservation.shape a.table with
            | Reservation.Simple -> a.unit_name ^ ":simple"
            | Reservation.Block -> a.unit_name ^ ":block"
            | Reservation.Complex -> a.unit_name ^ ":complex")
          op.Opcode.alternatives
      in
      Format.fprintf ppf "  %-10s latency %2d  %s@." name op.Opcode.latency
        (String.concat ", " shapes))
    (opcode_names t)
