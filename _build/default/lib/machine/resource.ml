type t = { id : int; name : string; count : int }

let make ~id ~name ~count =
  if count < 1 then invalid_arg "Resource.make: count must be >= 1";
  if id < 0 then invalid_arg "Resource.make: id must be >= 0";
  { id; name; count }

let pp ppf r = Format.fprintf ppf "%s(x%d)" r.name r.count
