(** Operations of the loop body.

    The loop body has already been IF-converted: control flow is gone and
    each operation may carry a predicate operand instead (Rau 1994,
    section 1).  Registers are {e expanded virtual registers} (EVRs): an
    operand names a register together with a {e distance} — how many
    iterations ago the value was written.  [{reg = v; distance = 0}] is
    the value written this iteration, [distance = 1] the previous
    iteration's, and so on (Rau 1992). *)

type operand = {
  reg : int;  (** Virtual register number. *)
  distance : int;  (** Iterations ago; at least 0. *)
}

type t = {
  id : int;
      (** Dense index within the dependence graph.  0 is reserved for the
          START pseudo-op; the largest id is STOP. *)
  opcode : string;  (** Key into the machine's opcode repertoire. *)
  dsts : int list;  (** Virtual registers written. *)
  srcs : operand list;  (** Virtual registers read. *)
  pred : operand option;  (** Predicate guarding execution, if any. *)
  imm : float option;
      (** Immediate operand folded into the operation (e.g. the stride
          of an address increment, [a = a[3] + 24.]).  Transformation
          passes copy it verbatim: unlike an operand distance it does
          not change shape under unrolling. *)
  tag : string;  (** Label for listings, e.g. ["x[i] = load a"]. *)
}

val cur : int -> operand
(** [cur v] is [v] at distance 0. *)

val prev : ?distance:int -> int -> operand
(** [prev v] is [v] at distance 1 (or [~distance]). *)

val is_pseudo : t -> bool
(** True for START and STOP. *)

val pp : Format.formatter -> t -> unit
