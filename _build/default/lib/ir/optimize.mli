(** Recurrence back-substitution (Rau 1994, section 1, step 6;
    Schlansker & Kathail 1993).

    A first-order reduction such as [s = s + z*x] carries a flow
    dependence of distance 1 through the add, pinning RecMII at the
    add's latency.  Because the operation is associative, the compiler
    may interleave [factor] partial accumulators — in EVR form, simply
    widen the self-reference distance from 1 to [factor] — dividing the
    recurrence constraint by [factor] at the cost of a [factor - 1]-step
    reduction after the loop.

    Only genuinely associative self-recurrences are rewritten: an
    operation whose destination it also reads at distance [d >= 1],
    whose opcode is in the associative set (integer/FP add, subtract in
    accumulator position, multiply), and which is unpredicated (a
    guarded accumulation is not re-associable). *)

val interleavable : Ddg.t -> int list
(** Real operation ids that {!interleave} would rewrite. *)

val interleave : Ddg.t -> factor:int -> Ddg.t
(** Multiply the self-recurrence distance of every interleavable
    operation by [factor].  The caller owes the post-loop reduction of
    the [factor] partial results (outside the scheduled region, as in
    the paper's pre-pass).
    @raise Invalid_argument if [factor < 1]. *)

(** {1 Speculative code motion (Rau 1994, section 1, step 5)}

    "If control dependences are the limiting factor in schedule
    performance, they may be selectively ignored thereby enabling
    speculative code motion."  An IF-converted operation whose opcode is
    side-effect free (loads and arithmetic, not stores or predicate
    definitions) can execute unconditionally — speculatively — and have
    its result ignored when the predicate turns out false.  Dropping the
    predicate operand removes the control dependence from the guard
    computation, often shortening the critical recurrence through
    compare/pred_set chains. *)

val speculable : Ddg.t -> int list
(** Predicated real operations that may be executed speculatively. *)

val speculate : Ddg.t -> Ddg.t
(** Strip the predicate operand (and with it the control dependence)
    from every speculable operation.  Stores, predicate definitions and
    predicated operations writing a multiply-defined register (the
    select idiom, where the guard chooses the surviving value) are left
    guarded. *)
