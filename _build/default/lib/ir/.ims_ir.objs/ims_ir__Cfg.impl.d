lib/ir/cfg.ml: Hashtbl If_conversion List Option Printf Set String
