lib/ir/ddg.ml: Array Dep Format Ims_machine List Machine Op Printf String
