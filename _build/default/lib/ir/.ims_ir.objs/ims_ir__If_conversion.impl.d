lib/ir/if_conversion.ml: Builder List Printf
