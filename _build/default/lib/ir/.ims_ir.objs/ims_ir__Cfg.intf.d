lib/ir/cfg.mli: Builder If_conversion
