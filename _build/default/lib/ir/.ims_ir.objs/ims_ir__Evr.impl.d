lib/ir/evr.ml: Array Ddg Dep List
