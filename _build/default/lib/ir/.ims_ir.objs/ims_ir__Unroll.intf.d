lib/ir/unroll.mli: Ddg
