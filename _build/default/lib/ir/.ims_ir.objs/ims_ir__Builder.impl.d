lib/ir/builder.ml: Array Ddg Dep Hashtbl Ims_machine List Machine Op Option Printf
