lib/ir/unroll.ml: Array Ddg Dep Fun Hashtbl List Op Option Printf
