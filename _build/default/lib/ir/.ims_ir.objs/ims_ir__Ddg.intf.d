lib/ir/ddg.mli: Dep Format Ims_machine Machine Op
