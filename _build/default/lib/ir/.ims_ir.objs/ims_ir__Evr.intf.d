lib/ir/evr.mli: Ddg
