lib/ir/optimize.ml: Array Ddg Dep Hashtbl List Op Option
