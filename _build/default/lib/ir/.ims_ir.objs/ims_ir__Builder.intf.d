lib/ir/builder.mli: Ddg Dep Ims_machine Machine
