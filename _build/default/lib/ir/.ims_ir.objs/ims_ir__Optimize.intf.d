lib/ir/optimize.mli: Ddg
