lib/ir/if_conversion.mli: Builder
