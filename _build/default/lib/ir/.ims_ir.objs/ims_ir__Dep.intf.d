lib/ir/dep.mli: Format
