lib/ir/dep.ml: Format
