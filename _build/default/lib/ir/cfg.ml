type terminator =
  | Goto of string
  | Branch of {
      cond : string * int;
      taken : string;
      fallthrough : string;
      taken_count : int;
      fallthrough_count : int;
    }
  | Exit

type block = {
  label : string;
  stmts : If_conversion.stmt list;
  terminator : terminator;
}

type t = { entry : string; blocks : block list }

let find t label = List.find_opt (fun b -> b.label = label) t.blocks

let successors b =
  match b.terminator with
  | Goto l -> [ l ]
  | Branch { taken; fallthrough; _ } -> [ taken; fallthrough ]
  | Exit -> []

let validate t =
  let labels = List.map (fun b -> b.label) t.blocks in
  let dup =
    List.exists
      (fun l -> List.length (List.filter (( = ) l) labels) > 1)
      labels
  in
  if dup then Error "duplicate block label"
  else if find t t.entry = None then Error "missing entry block"
  else begin
    let missing =
      List.concat_map successors t.blocks
      |> List.find_opt (fun l -> find t l = None)
    in
    match missing with
    | Some l -> Error (Printf.sprintf "branch to missing block %S" l)
    | None ->
        let exits =
          List.length
            (List.filter (fun b -> b.terminator = Exit) t.blocks)
        in
        if exits <> 1 then
          Error (Printf.sprintf "%d exit blocks (need exactly 1)" exits)
        else begin
          (* Acyclicity by depth-first search. *)
          let visiting = Hashtbl.create 16 and done_ = Hashtbl.create 16 in
          let rec dfs label =
            if Hashtbl.mem done_ label then Ok ()
            else if Hashtbl.mem visiting label then
              Error (Printf.sprintf "cycle through %S" label)
            else begin
              Hashtbl.replace visiting label ();
              let result =
                List.fold_left
                  (fun acc l -> match acc with Error _ -> acc | Ok () -> dfs l)
                  (Ok ())
                  (successors (Option.get (find t label)))
              in
              Hashtbl.remove visiting label;
              Hashtbl.replace done_ label ();
              result
            end
          in
          dfs t.entry
        end
  end

let reject_reason ?(max_blocks = 30) t =
  match validate t with
  | Error e -> Some e
  | Ok () ->
      if List.length t.blocks > max_blocks then
        Some
          (Printf.sprintf "more than %d basic blocks before IF-conversion"
             max_blocks)
      else None

let cold_fraction t =
  let fractions =
    List.filter_map
      (fun b ->
        match b.terminator with
        | Branch { taken_count; fallthrough_count; _ } ->
            let total = taken_count + fallthrough_count in
            if total = 0 then None
            else
              Some
                (float_of_int (min taken_count fallthrough_count)
                /. float_of_int total)
        | Goto _ | Exit -> None)
      t.blocks
  in
  if fractions = [] then 0.0
  else List.fold_left ( +. ) 0.0 fractions /. float_of_int (List.length fractions)

(* Post-dominator sets over the (small, acyclic, single-exit) graph:
   pdom(b) = {b} U intersection of pdom over successors, computed to a
   fixed point. *)
let post_dominators t =
  let module S = Set.Make (String) in
  let all = List.fold_left (fun s b -> S.add b.label s) S.empty t.blocks in
  let pdom = Hashtbl.create 16 in
  List.iter
    (fun b ->
      Hashtbl.replace pdom b.label
        (if b.terminator = Exit then S.singleton b.label else all))
    t.blocks;
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun b ->
        match successors b with
        | [] -> ()
        | succs ->
            let inter =
              List.fold_left
                (fun acc l -> S.inter acc (Hashtbl.find pdom l))
                all succs
            in
            let updated = S.add b.label inter in
            if not (S.equal updated (Hashtbl.find pdom b.label)) then begin
              Hashtbl.replace pdom b.label updated;
              changed := true
            end)
      t.blocks
  done;
  fun label -> Hashtbl.find pdom label

let to_region t =
  (match validate t with
  | Error e -> invalid_arg ("Cfg.to_region: " ^ e)
  | Ok () -> ());
  let pdom = post_dominators t in
  let module S = Set.Make (String) in
  (* The common post-dominators of two arms are totally ordered (nested
     pdom sets); the nearest one — the join — has the largest set. *)
  let nearest_common_pdom a b =
    let common = S.inter (pdom a) (pdom b) in
    match
      S.elements common
      |> List.map (fun l -> (S.cardinal (pdom l), l))
      |> List.sort compare |> List.rev
    with
    | (_, l) :: _ -> l
    | [] -> invalid_arg "Cfg.to_region: branch arms never join"
  in
  (* Region from [label] up to but excluding [stop]. *)
  let rec walk label ~stop =
    if Some label = stop then []
    else begin
      let b = Option.get (find t label) in
      let head = If_conversion.Block b.stmts in
      match b.terminator with
      | Exit -> [ head ]
      | Goto next -> head :: walk next ~stop
      | Branch { cond; taken; fallthrough; _ } ->
          let join = nearest_common_pdom taken fallthrough in
          let branch =
            If_conversion.If
              {
                cond;
                then_ = If_conversion.Seq (walk taken ~stop:(Some join));
                else_ = If_conversion.Seq (walk fallthrough ~stop:(Some join));
              }
          in
          head :: branch :: walk join ~stop
    end
  in
  If_conversion.Seq (walk t.entry ~stop:None)

let convert t builder = If_conversion.convert builder (to_region t)
