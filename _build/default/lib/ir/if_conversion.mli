(** IF-conversion of structured control flow into predicated code
    (Allen et al. 1983; Park & Schlansker 1991).

    The paper's pipeline selects the frequent paths of the loop body as a
    hyperblock and IF-converts it, so that the region reaching the modulo
    scheduler "looks like a single basic block" with predicate operands.
    This module performs that conversion for structured regions
    (sequences and if-then-else diamonds), which is what hyperblock
    formation produces for the loops in the benchmark suites.

    Each branch condition [c] spawns two predicate-defining operations,
    [pred_set pt <- c] and [pred_reset pf <- c] (Cydra 5 style, executed
    on a memory port per table 2); the operations of the taken and fallen
    arms are guarded by [pt] and [pf] respectively.  Nested conditionals
    nest predicates: the predicate definitions of an inner branch are
    themselves guarded by the outer predicate. *)

type stmt = {
  s_opcode : string;
  s_dsts : string list;
  s_srcs : (string * int) list;  (** (register name, distance) *)
  s_tag : string;
}

val stmt :
  ?tag:string -> string -> dsts:string list -> srcs:(string * int) list -> stmt

type region =
  | Block of stmt list
  | Seq of region list
  | If of { cond : string * int; then_ : region; else_ : region }
      (** [cond] names the (already computed) condition register. *)

val convert : Builder.t -> region -> unit
(** Emits the IF-converted region into the builder: every statement of a
    conditional arm is predicated, and predicate definitions carry the
    enclosing predicate.  Statements see registers by name via
    {!Builder.vreg}. *)
