open Ims_machine

type t = {
  machine : Machine.t;
  ops : Op.t array;
  succs : Dep.t list array;
  preds : Dep.t list array;
  model : Dep.latency_model;
}

let start = 0
let stop t = Array.length t.ops - 1
let n_total t = Array.length t.ops
let n_real t = Array.length t.ops - 2
let real_ids t = List.init (n_real t) (fun i -> i + 1)
let op t i = t.ops.(i)
let latency t i = Machine.latency t.machine t.ops.(i).Op.opcode
let is_pseudo t i = i = start || i = stop t

let pseudo_op id opcode =
  { Op.id; opcode; dsts = []; srcs = []; pred = None; imm = None; tag = "" }

let make machine ?(model = Dep.Vliw) ops deps =
  let ops = List.sort (fun (a : Op.t) b -> compare a.id b.id) ops in
  List.iteri
    (fun i (o : Op.t) ->
      if o.id <> i + 1 then
        invalid_arg "Ddg.make: operation ids must be dense, starting at 1")
    ops;
  let n_real = List.length ops in
  let n = n_real + 2 in
  let stop_id = n - 1 in
  let all =
    Array.of_list ((pseudo_op 0 "START" :: ops) @ [ pseudo_op stop_id "STOP" ])
  in
  let succs = Array.make n [] in
  let preds = Array.make n [] in
  let add (d : Dep.t) =
    if d.src < 0 || d.src >= n || d.dst < 0 || d.dst >= n then
      invalid_arg "Ddg.make: edge endpoint out of range";
    succs.(d.src) <- d :: succs.(d.src);
    preds.(d.dst) <- d :: preds.(d.dst)
  in
  List.iter add deps;
  (* Pseudo edges: START precedes everything at delay 0; everything
     precedes STOP with its own latency as delay so that STOP's schedule
     time is the length of one iteration's schedule. *)
  for i = 1 to n_real do
    let lat = Machine.latency machine all.(i).Op.opcode in
    add
      (Dep.make model Control ~src:0 ~dst:i ~distance:0 ~pred_latency:0
         ~succ_latency:lat);
    add
      (Dep.make model Flow ~src:i ~dst:stop_id ~distance:0 ~pred_latency:lat
         ~succ_latency:0)
  done;
  let rev a = Array.map List.rev a in
  { machine; ops = all; succs = rev succs; preds = rev preds; model }

let succ_ids t i = List.map (fun (d : Dep.t) -> d.dst) t.succs.(i)

let real_succ_ids t i =
  if is_pseudo t i then []
  else
    List.filter_map
      (fun (d : Dep.t) -> if is_pseudo t d.dst then None else Some d.dst)
      t.succs.(i)

let real_edges t =
  Array.to_list t.succs |> List.concat
  |> List.filter (fun (d : Dep.t) ->
         not (is_pseudo t d.src || is_pseudo t d.dst))

let edge_count t = List.length (real_edges t)

let real_ops t = Array.to_list t.ops |> List.filter (fun o -> not (Op.is_pseudo o))

let filter_edges t keep =
  make t.machine ~model:t.model (real_ops t) (List.filter keep (real_edges t))

let map_machine t machine =
  let redo (d : Dep.t) =
    let pred_latency = Machine.latency machine t.ops.(d.src).Op.opcode in
    let succ_latency = Machine.latency machine t.ops.(d.dst).Op.opcode in
    Dep.make t.model d.kind ~src:d.src ~dst:d.dst ~distance:d.distance
      ~pred_latency ~succ_latency
  in
  make machine ~model:t.model (real_ops t) (List.map redo (real_edges t))

let pp ppf t =
  Format.fprintf ppf "Loop with %d operations on %s@." (n_real t)
    t.machine.Machine.name;
  Array.iter
    (fun o ->
      if not (Op.is_pseudo o) then Format.fprintf ppf "  %a@." Op.pp o)
    t.ops;
  Format.fprintf ppf "Dependences:@.";
  List.iter (fun d -> Format.fprintf ppf "  %a@." Dep.pp d) (real_edges t)

let pp_dot ppf t =
  Format.fprintf ppf "digraph ddg {@.  rankdir=TB;@.  node [shape=box, fontname=\"monospace\"];@.";
  Array.iter
    (fun (o : Op.t) ->
      if not (Op.is_pseudo o) then
        Format.fprintf ppf "  n%d [label=\"%d: %s%s\"];@." o.Op.id o.Op.id
          o.Op.opcode
          (if o.Op.tag = "" then "" else "\\n" ^ String.map (fun c -> if c = '"' then '\'' else c) o.Op.tag))
    t.ops;
  List.iter
    (fun (d : Dep.t) ->
      let style =
        match d.kind with
        | Dep.Flow | Dep.Control -> "solid"
        | Dep.Anti | Dep.Output -> "dashed"
      in
      let label =
        if d.distance = 0 then Printf.sprintf "%d" d.delay
        else Printf.sprintf "%d/%d" d.delay d.distance
      in
      Format.fprintf ppf "  n%d -> n%d [style=%s, label=\"%s\"%s];@." d.src
        d.dst style label
        (if d.distance > 0 then ", constraint=false, color=gray40" else ""))
    (real_edges t);
  Format.fprintf ppf "}@."
