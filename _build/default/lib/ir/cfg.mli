(** The acyclic control-flow graph of a loop body, and hyperblock
    formation (Rau 1994, section 1, step 1; Mahlke et al. 1992).

    The paper's pipeline starts from "an acyclic control flow graph" per
    loop body, selects the frequently executed paths as a hyperblock and
    IF-converts it.  A modulo-scheduling candidate may not exit early,
    so for these loops the hyperblock must cover {e every} path of the
    body: selection degenerates into the decision to accept the loop and
    predicate all of it, or to reject it (as the Cydra 5 compiler
    rejected early-exit and oversized loops, section 4.1).

    This module models exactly that: profile-annotated basic blocks with
    conditional branches, structural validation, the accept/reject
    decision, and lowering to predicated operations through the
    structured {!If_conversion} regions recovered via post-dominators. *)

type terminator =
  | Goto of string
  | Branch of {
      cond : string * int;  (** Condition register (name, distance). *)
      taken : string;
      fallthrough : string;
      taken_count : int;  (** Profile: times the branch was taken. *)
      fallthrough_count : int;
    }
  | Exit  (** End of the loop body (the back edge is implicit). *)

type block = {
  label : string;
  stmts : If_conversion.stmt list;
  terminator : terminator;
}

type t = { entry : string; blocks : block list }

val validate : t -> (unit, string) result
(** Entry and every branch target exist and are unique; the graph is
    acyclic; exactly one block exits. *)

val reject_reason : ?max_blocks:int -> t -> string option
(** The Cydra 5 style candidate filter: [Some reason] if the body is
    invalid or has more than [max_blocks] (default 30) basic blocks. *)

val cold_fraction : t -> float
(** Fraction of the profile weight on the colder arm of each branch,
    averaged — how much predicated work the hyperblock drags along.
    0 for branch-free bodies. *)

val to_region : t -> If_conversion.region
(** Structurize via post-dominators: each branch's arms run to the
    nearest common post-dominator (the join), recursively.
    @raise Invalid_argument if {!validate} fails or the graph is not
    structured (arms that cross without joining). *)

val convert : t -> Builder.t -> unit
(** [to_region] followed by {!If_conversion.convert}. *)
