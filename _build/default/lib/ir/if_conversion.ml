type stmt = {
  s_opcode : string;
  s_dsts : string list;
  s_srcs : (string * int) list;
  s_tag : string;
}

let stmt ?(tag = "") s_opcode ~dsts ~srcs =
  { s_opcode; s_dsts = dsts; s_srcs = srcs; s_tag = tag }

type region =
  | Block of stmt list
  | Seq of region list
  | If of { cond : string * int; then_ : region; else_ : region }

let convert b region =
  let fresh =
    let n = ref 0 in
    fun prefix ->
      incr n;
      Printf.sprintf "%s%d" prefix !n
  in
  let emit_stmt pred s =
    let dsts = List.map (Builder.vreg b) s.s_dsts in
    let srcs = List.map (fun (name, d) -> (Builder.vreg b name, d)) s.s_srcs in
    ignore
      (Builder.add b ~tag:s.s_tag ?pred ~opcode:s.s_opcode ~dsts ~srcs ())
  in
  let rec go pred = function
    | Block stmts -> List.iter (emit_stmt pred) stmts
    | Seq regions -> List.iter (go pred) regions
    | If { cond = cond_name, cond_dist; then_; else_ } ->
        let cond = Builder.vreg b cond_name in
        let pt = Builder.vreg b (fresh "p_then") in
        let pf = Builder.vreg b (fresh "p_else") in
        ignore
          (Builder.add b ~tag:"if-convert: true arm predicate" ?pred
             ~opcode:"pred_set" ~dsts:[ pt ] ~srcs:[ (cond, cond_dist) ] ());
        ignore
          (Builder.add b ~tag:"if-convert: false arm predicate" ?pred
             ~opcode:"pred_reset" ~dsts:[ pf ] ~srcs:[ (cond, cond_dist) ] ());
        go (Some (pt, 0)) then_;
        go (Some (pf, 0)) else_
  in
  go None region
