type operand = { reg : int; distance : int }

type t = {
  id : int;
  opcode : string;
  dsts : int list;
  srcs : operand list;
  pred : operand option;
  imm : float option;
  tag : string;
}

let cur reg = { reg; distance = 0 }

let prev ?(distance = 1) reg =
  if distance < 0 then invalid_arg "Op.prev: negative distance";
  { reg; distance }

let is_pseudo t = t.opcode = "START" || t.opcode = "STOP"

let pp_operand ppf o =
  if o.distance = 0 then Format.fprintf ppf "v%d" o.reg
  else Format.fprintf ppf "v%d[%d]" o.reg o.distance

let pp ppf t =
  let pp_list pp_elt ppf = function
    | [] -> Format.pp_print_string ppf "-"
    | xs ->
        Format.pp_print_list
          ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ",")
          pp_elt ppf xs
  in
  Format.fprintf ppf "%3d: %-9s %a <- %a" t.id t.opcode
    (pp_list (fun ppf v -> Format.fprintf ppf "v%d" v))
    t.dsts (pp_list pp_operand) t.srcs;
  (match t.imm with
  | Some v -> Format.fprintf ppf " $%g" v
  | None -> ());
  (match t.pred with
  | Some p -> Format.fprintf ppf " when %a" pp_operand p
  | None -> ());
  if t.tag <> "" then Format.fprintf ppf "  ; %s" t.tag
