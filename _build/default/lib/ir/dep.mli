(** Dependence edges and the delay formulae of the paper's table 1.

    An edge from operation [src] to operation [dst] with distance [d]
    constrains any legal schedule by

    {v SchedTime(dst) - SchedTime(src) >= delay - II * d v}

    where [delay] depends on the dependence kind and the architectural
    latencies of the two operations. *)

type kind =
  | Flow  (** True data dependence: [dst] reads what [src] wrote. *)
  | Anti  (** [dst] overwrites what [src] read. *)
  | Output  (** [dst] overwrites what [src] wrote. *)
  | Control
      (** Predicate availability or other control ordering; also used for
          the START/STOP pseudo edges. *)

(** How delays are derived from latencies (table 1).  [Vliw] exploits
    non-unit architectural latencies: an anti-dependence delay can be
    negative because the successor only needs to {e finish} no earlier
    than the predecessor starts.  [Conservative] assumes only that the
    successor's latency is at least 1, which is what a superscalar
    processor with interlocks guarantees. *)
type latency_model = Vliw | Conservative

val delay :
  latency_model -> kind -> pred_latency:int -> succ_latency:int -> int
(** The table 1 entry:
    - [Flow]: [pred_latency] under both models;
    - [Anti]: [1 - succ_latency], conservatively [0];
    - [Output]: [1 + pred_latency - succ_latency], conservatively
      [pred_latency];
    - [Control]: treated like [Flow] (the predicate value must be
      available), i.e. [pred_latency] under both models. *)

type t = {
  src : int;
  dst : int;
  kind : kind;
  distance : int;  (** Iteration distance; 0 for intra-iteration. *)
  delay : int;
}

val make :
  latency_model ->
  kind ->
  src:int ->
  dst:int ->
  distance:int ->
  pred_latency:int ->
  succ_latency:int ->
  t
(** @raise Invalid_argument if [distance < 0]. *)

val kind_to_string : kind -> string
val pp : Format.formatter -> t -> unit
