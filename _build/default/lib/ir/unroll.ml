(* Index arithmetic: original iteration t = I*k + c (copy c of new
   iteration I).  A reference at original distance d from copy c reaches
   original iteration I*k + c - d; writing c - d = q*k + c' with
   0 <= c' < k (floored division), that is copy c' of new iteration
   I + q, i.e. new distance -q. *)
let split ~k delta =
  let q = if delta >= 0 then delta / k else -((-delta + k - 1) / k) in
  let c' = delta - (q * k) in
  assert (0 <= c' && c' < k);
  (-q, c')

let by ddg k =
  if k < 1 then invalid_arg "Unroll.by: factor must be >= 1";
  let n = Ddg.n_real ddg in
  let machine = ddg.Ddg.machine in
  (* Registers defined inside the loop get per-copy instances; live-ins
     stay shared.  Instance numbering: reg r, copy c -> r*k + c, and
     live-in r -> r*k (stable and collision-free). *)
  let defined = Hashtbl.create 32 in
  List.iter
    (fun i ->
      List.iter (fun r -> Hashtbl.replace defined r ()) (Ddg.op ddg i).Op.dsts)
    (Ddg.real_ids ddg);
  let rename_def r ~copy = (r * k) + copy in
  let rename_use (operand : Op.operand) ~copy =
    if not (Hashtbl.mem defined operand.reg) then
      { Op.reg = operand.reg * k; distance = 0 }
    else begin
      let new_distance, source_copy = split ~k (copy - operand.distance) in
      { Op.reg = rename_def operand.reg ~copy:source_copy; distance = new_distance }
    end
  in
  let new_id ~copy o = (copy * n) + o in
  let ops =
    List.concat_map
      (fun copy ->
        List.map
          (fun i ->
            let o = Ddg.op ddg i in
            {
              Op.id = new_id ~copy i;
              opcode = o.Op.opcode;
              dsts = List.map (fun r -> rename_def r ~copy) o.Op.dsts;
              srcs = List.map (fun s -> rename_use s ~copy) o.Op.srcs;
              pred = Option.map (fun p -> rename_use p ~copy) o.Op.pred;
              imm = o.Op.imm;
              tag =
                (if k = 1 || o.Op.tag = "" then o.Op.tag
                 else Printf.sprintf "%s (copy %d)" o.Op.tag copy);
            })
          (Ddg.real_ids ddg))
      (List.init k Fun.id)
  in
  let stop = Ddg.stop ddg in
  let deps =
    List.concat_map
      (fun copy ->
        Array.to_list ddg.Ddg.succs
        |> List.concat
        |> List.filter_map (fun (d : Dep.t) ->
               if d.src = Ddg.start || d.dst = stop || d.src = stop then None
               else begin
                 let new_distance, source_copy = split ~k (copy - d.distance) in
                 Some
                   {
                     d with
                     Dep.src = new_id ~copy:source_copy d.src;
                     dst = new_id ~copy d.dst;
                     distance = new_distance;
                   }
               end))
      (List.init k Fun.id)
  in
  Ddg.make machine ~model:ddg.Ddg.model ops deps
