(** A small DSL for constructing loop bodies and deriving their
    dependence graphs.

    Register dependences (flow, and optionally anti/output) are derived
    automatically from def-use information with loop-carried distances;
    memory dependences cannot be derived from the IR (the paper's compiler
    obtained them from Fortran dataflow analysis upstream of the
    scheduler) and are declared explicitly with {!mem_dep}.

    By default the loop is taken to be in dynamic single assignment form
    with expanded virtual registers, so no anti- or output dependences are
    generated ("All undesirable anti- and output dependences are assumed
    to have been eliminated ... by the use of expanded virtual registers
    and dynamic single assignment", Rau 1994 section 2.2).  Pass
    [~keep_false_deps:true] to {!finish} to generate them anyway — used by
    the EVR ablation. *)

open Ims_machine

type t
type vreg

type opref = int
(** The operation's 1-based id in the resulting {!Ddg.t}. *)

val create : ?model:Dep.latency_model -> Machine.t -> t
(** A fresh builder; [model] (default [Vliw]) selects the table 1
    column used for every derived delay. *)

val vreg : t -> string -> vreg
(** [vreg b name] returns the virtual register called [name], creating it
    on first use. *)

val add :
  t ->
  ?tag:string ->
  ?pred:vreg * int ->
  ?imm:float ->
  opcode:string ->
  dsts:vreg list ->
  srcs:(vreg * int) list ->
  unit ->
  opref
(** Appends an operation.  Each source is [(register, distance)]:
    distance 0 reads the value produced this iteration, distance [d > 0]
    the value produced [d] iterations ago.  [pred] likewise names the
    guarding predicate register and its distance.
    @raise Machine.Unknown_opcode if [opcode] is not in the machine. *)

val mem_dep : t -> ?distance:int -> Dep.kind -> src:opref -> dst:opref -> unit
(** Declares a memory (or other extra-register) dependence; [distance]
    defaults to 0. *)

val reg_id : t -> vreg -> int
val op_id : t -> opref -> int
val num_ops : t -> int

val finish : ?keep_false_deps:bool -> t -> Ddg.t
(** Derives the dependence graph.  Flow dependences run from each
    reaching definition to the use: for an unpredicated definition only
    the nearest one reaches; predicated definitions accumulate back to the
    nearest unpredicated one.  Memory operations sharing the identical
    address operand (same register at the same distance) are must-alias
    and get the corresponding flow/anti/output ordering automatically;
    any subtler aliasing must be declared with {!mem_dep}.  With
    [~keep_false_deps:true], output dependences chain successive
    definitions of a register (with a distance-1 back edge), and anti
    dependences order each use before the next redefinition of the
    register it reads.
    @raise Invalid_argument if an operand at distance 0 has no preceding
    definition although the register is defined later in the body (write
    the reference with distance 1 instead). *)
