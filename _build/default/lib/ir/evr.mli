(** Expanded virtual registers / dynamic single assignment (Rau 1992).

    An EVR retains the whole sequence of values ever written to it, so
    nothing is overwritten and anti- and output dependences vanish.  At
    the dependence-graph level the transformation is exactly the removal
    of every [Anti] and [Output] edge; register allocation (rotating
    registers or modulo variable expansion, see [Ims_pipeline]) later
    reconciles EVRs with finite hardware registers. *)

val eliminate_false_deps : Ddg.t -> Ddg.t
(** Drop all anti- and output dependences. *)

val false_dep_count : Ddg.t -> int
(** Number of anti- plus output edges between real operations. *)
