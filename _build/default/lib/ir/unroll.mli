(** Pre-scheduling loop unrolling (Rau 1994, section 1, step 7).

    The MII is intrinsically rational — e.g. three loads on two memory
    ports need only 1.5 cycles per iteration — but a modulo schedule's II
    is an integer, so the candidate II starts at the ceiling.  When the
    percentage degradation of rounding up is unacceptable, the loop body
    is unrolled [k] times before scheduling: the unrolled loop's integer
    II then corresponds to [II/k] cycles per original iteration.
    ([Ims_mii.Rational] computes the rational bounds and recommends the
    factor.)

    Unrolling by [k] maps original iteration [t] to copy [t mod k] of new
    iteration [t / k].  A dependence of distance [d] seen from copy [c]
    lands on copy [(c - d) mod k] at new distance [-floor((c - d) / k)];
    registers defined in the loop get one instance per copy, and
    loop-carried operand references are renamed accordingly.  Live-in
    registers stay shared. *)

val by : Ddg.t -> int -> Ddg.t
(** [by ddg k] unrolls [k] times ([by ddg 1] rebuilds an equivalent
    graph).  Real operation [o] of copy [c] has id [c * n + o] where [n]
    is the original real-operation count.
    @raise Invalid_argument if [k < 1]. *)
