open Ims_machine

type vreg = int
type opref = int

type t = {
  machine : Machine.t;
  model : Dep.latency_model;
  reg_names : (string, int) Hashtbl.t;
  mutable next_reg : int;
  mutable ops : Op.t list;  (* reversed *)
  mutable n : int;
  mutable raw_deps : (Dep.kind * int * int * int) list;  (* kind, dist, src, dst *)
}

let create ?(model = Dep.Vliw) machine =
  {
    machine;
    model;
    reg_names = Hashtbl.create 31;
    next_reg = 0;
    ops = [];
    n = 0;
    raw_deps = [];
  }

let vreg b name =
  match Hashtbl.find_opt b.reg_names name with
  | Some v -> v
  | None ->
      let v = b.next_reg in
      b.next_reg <- v + 1;
      Hashtbl.replace b.reg_names name v;
      v

let operand (reg, distance) =
  if distance < 0 then invalid_arg "Builder: negative operand distance";
  { Op.reg; distance }

let add b ?(tag = "") ?pred ?imm ~opcode ~dsts ~srcs () =
  ignore (Machine.opcode b.machine opcode);
  b.n <- b.n + 1;
  let op =
    {
      Op.id = b.n;
      opcode;
      dsts;
      srcs = List.map operand srcs;
      pred = Option.map operand pred;
      imm;
      tag;
    }
  in
  b.ops <- op :: b.ops;
  b.n

let mem_dep b ?(distance = 0) kind ~src ~dst =
  b.raw_deps <- (kind, distance, src, dst) :: b.raw_deps

let reg_id _ v = v
let op_id _ r = r
let num_ops b = b.n

(* Reaching definitions of register [v] for a reference at distance [d]
   made by operation [u] (or at end of body if [u_id] is the body length +
   1).  An unpredicated definition kills all earlier ones; predicated
   definitions accumulate until one.  Definitions are scanned backwards
   from just before [u] (d = 0) or from the end of the body (d > 0). *)
let reaching_defs ~defs ~preds_of ~u_id ~d =
  let before = if d = 0 then List.filter (fun id -> id < u_id) defs else defs in
  let rec collect acc = function
    | [] -> acc
    | id :: rest ->
        if preds_of id = None then id :: acc else collect (id :: acc) rest
  in
  collect [] (List.rev before)

let finish ?(keep_false_deps = false) b =
  let ops = List.rev b.ops in
  let op_arr = Array.make (b.n + 1) None in
  List.iter (fun (o : Op.t) -> op_arr.(o.id) <- Some o) ops;
  let opcode_of id =
    match op_arr.(id) with Some o -> o.Op.opcode | None -> assert false
  in
  let pred_of id =
    match op_arr.(id) with Some o -> o.Op.pred | None -> assert false
  in
  let latency id = Machine.latency b.machine (opcode_of id) in
  let deps = ref [] in
  let emit kind ~src ~dst ~distance =
    deps :=
      Dep.make b.model kind ~src ~dst ~distance ~pred_latency:(latency src)
        ~succ_latency:(latency dst)
      :: !deps
  in
  (* Definitions of each register, in program order. *)
  let defs = Hashtbl.create 31 in
  List.iter
    (fun (o : Op.t) ->
      List.iter
        (fun v ->
          let old = Option.value ~default:[] (Hashtbl.find_opt defs v) in
          Hashtbl.replace defs v (old @ [ o.id ]))
        o.dsts)
    ops;
  let defs_of v = Option.value ~default:[] (Hashtbl.find_opt defs v) in
  (* Flow (and control, for predicates) dependences. *)
  let flow_for kind (u : Op.t) (operand : Op.operand) =
    let v = operand.reg and d = operand.distance in
    match defs_of v with
    | [] -> ()  (* live-in: defined outside the loop *)
    | defs ->
        let reaching =
          reaching_defs ~defs ~preds_of:pred_of ~u_id:u.id ~d
        in
        if reaching = [] && d = 0 then
          invalid_arg
            (Printf.sprintf
               "Builder.finish: operation %d reads register %d at distance 0 \
                before any definition; use distance 1 for a loop-carried \
                reference"
               u.id v)
        else
          List.iter (fun def -> emit kind ~src:def ~dst:u.id ~distance:d)
            reaching
  in
  List.iter
    (fun (u : Op.t) ->
      List.iter (flow_for Dep.Flow u) u.srcs;
      Option.iter (flow_for Dep.Control u) u.pred)
    ops;
  if keep_false_deps then begin
    (* Output dependences: successive definitions in order, plus the
       distance-1 back edge from the last to the first. *)
    Hashtbl.iter
      (fun _ ds ->
        let rec chain = function
          | a :: (b :: _ as rest) ->
              emit Dep.Output ~src:a ~dst:b ~distance:0;
              chain rest
          | _ -> ()
        in
        chain ds;
        match ds with
        | first :: _ ->
            let last = List.nth ds (List.length ds - 1) in
            emit Dep.Output ~src:last ~dst:first ~distance:1
        | [] -> ())
      defs;
    (* Anti dependences: each read must precede the next write of the
       register it reads.  A distance-0 read is destroyed by the next
       definition later in the body (same iteration) or, failing that, by
       the first definition of the next iteration; a distance-1 read is
       destroyed by this iteration's first definition.  Reads at distance
       >= 2 need EVRs and generate nothing here. *)
    let anti_for (u : Op.t) (operand : Op.operand) =
      let v = operand.reg and d = operand.distance in
      match defs_of v with
      | [] -> ()
      | first :: _ as ds -> (
          match d with
          | 0 -> (
              match List.find_opt (fun id -> id > u.id) ds with
              | Some next -> emit Dep.Anti ~src:u.id ~dst:next ~distance:0
              | None -> emit Dep.Anti ~src:u.id ~dst:first ~distance:1)
          | 1 -> emit Dep.Anti ~src:u.id ~dst:first ~distance:0
          | _ -> ())
    in
    List.iter
      (fun (u : Op.t) ->
        List.iter (anti_for u) u.srcs;
        Option.iter (anti_for u) u.pred)
      ops
  end;
  (* Trivial must-alias memory dependences: two memory operations whose
     address operand is the identical (register, distance) pair touch
     the same location in the same iteration.  Within each such group,
     in program order: a load depends on the last preceding store
     (flow), a store on the loads since the previous store (anti) and on
     that store (output).  Anything subtler (distinct registers, offset
     streams) is the front end's memory analysis and must be declared
     through [mem_dep], as the paper's compiler received it. *)
  let mem_groups = Hashtbl.create 16 in
  List.iter
    (fun (o : Op.t) ->
      match (o.opcode, o.srcs) with
      | ("load" | "store"), (addr : Op.operand) :: _ ->
          let key = (addr.reg, addr.distance) in
          let old = Option.value ~default:[] (Hashtbl.find_opt mem_groups key) in
          Hashtbl.replace mem_groups key (o :: old)
      | _ -> ())
    ops;
  Hashtbl.iter
    (fun _ group ->
      let group = List.rev group in  (* program order *)
      let last_store = ref None in
      let loads_since = ref [] in
      List.iter
        (fun (o : Op.t) ->
          if o.opcode = "store" then begin
            Option.iter
              (fun prev -> emit Dep.Output ~src:prev ~dst:o.id ~distance:0)
              !last_store;
            List.iter
              (fun ld -> emit Dep.Anti ~src:ld ~dst:o.id ~distance:0)
              !loads_since;
            last_store := Some o.id;
            loads_since := []
          end
          else begin
            Option.iter
              (fun st -> emit Dep.Flow ~src:st ~dst:o.id ~distance:0)
              !last_store;
            loads_since := o.id :: !loads_since
          end)
        group)
    mem_groups;
  (* Explicitly declared (memory) dependences. *)
  List.iter
    (fun (kind, distance, src, dst) -> emit kind ~src ~dst ~distance)
    (List.rev b.raw_deps);
  Ddg.make b.machine ~model:b.model ops !deps
