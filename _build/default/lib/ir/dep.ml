type kind = Flow | Anti | Output | Control
type latency_model = Vliw | Conservative

let delay model kind ~pred_latency ~succ_latency =
  match (model, kind) with
  | _, (Flow | Control) -> pred_latency
  | Vliw, Anti -> 1 - succ_latency
  | Conservative, Anti -> 0
  | Vliw, Output -> 1 + pred_latency - succ_latency
  | Conservative, Output -> pred_latency

type t = { src : int; dst : int; kind : kind; distance : int; delay : int }

let make model kind ~src ~dst ~distance ~pred_latency ~succ_latency =
  if distance < 0 then invalid_arg "Dep.make: negative distance";
  { src; dst; kind; distance; delay = delay model kind ~pred_latency ~succ_latency }

let kind_to_string = function
  | Flow -> "flow"
  | Anti -> "anti"
  | Output -> "output"
  | Control -> "control"

let pp ppf t =
  Format.fprintf ppf "%d -%s(d=%d,w=%d)-> %d" t.src (kind_to_string t.kind)
    t.distance t.delay t.dst
