let associative = [ "fadd"; "fsub"; "add"; "sub"; "fmul"; "mul"; "aadd"; "asub" ]

let self_reference (o : Op.t) =
  o.Op.pred = None
  && List.exists
       (fun (s : Op.operand) ->
         s.distance >= 1 && List.mem s.reg o.Op.dsts)
       o.Op.srcs

(* Re-association changes which partial result each accumulator instance
   holds, so it is only sound when nothing but the recurrence itself
   reads the accumulator: a prefix sum that stores every partial (LFK 11)
   must not be interleaved, a plain reduction (LFK 3) may. *)
let only_self_reader ddg i =
  let dsts = (Ddg.op ddg i).Op.dsts in
  List.for_all
    (fun j ->
      j = i
      ||
      let o = Ddg.op ddg j in
      let reads (s : Op.operand) = List.mem s.reg dsts in
      (not (List.exists reads o.Op.srcs))
      && not (Option.fold ~none:false ~some:reads o.Op.pred))
    (Ddg.real_ids ddg)

let interleavable ddg =
  List.filter
    (fun i ->
      let o = Ddg.op ddg i in
      List.mem o.Op.opcode associative && self_reference o
      && only_self_reader ddg i)
    (Ddg.real_ids ddg)

let interleave ddg ~factor =
  if factor < 1 then invalid_arg "Optimize.interleave: factor must be >= 1";
  let targets = interleavable ddg in
  let rewrite_op (o : Op.t) =
    if not (List.mem o.Op.id targets) then o
    else
      let srcs =
        List.map
          (fun (s : Op.operand) ->
            if s.distance >= 1 && List.mem s.reg o.Op.dsts then
              { s with Op.distance = s.distance * factor }
            else s)
          o.Op.srcs
      in
      { o with Op.srcs }
  in
  let stop = Ddg.stop ddg in
  let rewrite_dep (d : Dep.t) =
    if d.src = d.dst && List.mem d.src targets && d.distance >= 1 then
      { d with Dep.distance = d.distance * factor }
    else d
  in
  let ops =
    List.map (fun i -> rewrite_op (Ddg.op ddg i)) (Ddg.real_ids ddg)
  in
  let deps =
    Array.to_list ddg.Ddg.succs
    |> List.concat
    |> List.filter_map (fun (d : Dep.t) ->
           if d.src = Ddg.start || d.dst = stop || d.src = stop then None
           else Some (rewrite_dep d))
  in
  Ddg.make ddg.Ddg.machine ~model:ddg.Ddg.model ops deps

let side_effect_free opcode =
  match opcode with
  | "store" | "pred_set" | "pred_reset" | "branch" -> false
  | _ -> true

(* A predicated write to a register with several definitions implements a
   select: removing its guard would clobber the other arm's value. *)
let multiply_defined ddg =
  let counts = Hashtbl.create 32 in
  List.iter
    (fun i ->
      List.iter
        (fun r ->
          Hashtbl.replace counts r
            (1 + Option.value ~default:0 (Hashtbl.find_opt counts r)))
        (Ddg.op ddg i).Op.dsts)
    (Ddg.real_ids ddg);
  fun r -> Option.value ~default:0 (Hashtbl.find_opt counts r) > 1

let speculable ddg =
  let multi = multiply_defined ddg in
  List.filter
    (fun i ->
      let o = Ddg.op ddg i in
      o.Op.pred <> None
      && side_effect_free o.Op.opcode
      && not (List.exists multi o.Op.dsts))
    (Ddg.real_ids ddg)

let speculate ddg =
  let targets = speculable ddg in
  let ops =
    List.map
      (fun i ->
        let o = Ddg.op ddg i in
        if List.mem i targets then
          { o with Op.pred = None; tag = (if o.Op.tag = "" then "speculative" else o.Op.tag ^ " (speculative)") }
        else o)
      (Ddg.real_ids ddg)
  in
  let stop = Ddg.stop ddg in
  let deps =
    Array.to_list ddg.Ddg.succs
    |> List.concat
    |> List.filter (fun (d : Dep.t) ->
           not
             (d.src = Ddg.start || d.dst = stop || d.src = stop
             || (d.kind = Dep.Control && List.mem d.dst targets)))
  in
  Ddg.make ddg.Ddg.machine ~model:ddg.Ddg.model ops deps
