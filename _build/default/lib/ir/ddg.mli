(** The dependence graph of a loop body.

    Vertices are operations; edges are {!Dep.t}.  Two pseudo-operations
    are always present (Rau 1994, section 3.1): START (id 0), a
    predecessor of every operation, and STOP (the largest id), a successor
    of every operation.  The edge from an operation to STOP carries the
    operation's latency, so STOP's schedule time is the schedule length of
    one iteration. *)

open Ims_machine

type t = private {
  machine : Machine.t;
  ops : Op.t array;  (** [ops.(0)] is START, [ops.(n-1)] is STOP. *)
  succs : Dep.t list array;  (** Outgoing edges per vertex. *)
  preds : Dep.t list array;  (** Incoming edges per vertex. *)
  model : Dep.latency_model;
}

val start : int
(** The id of the START pseudo-operation: 0. *)

val stop : t -> int
(** The id of the STOP pseudo-operation. *)

val make : Machine.t -> ?model:Dep.latency_model -> Op.t list -> Dep.t list -> t
(** [make machine ops deps] wraps real operations (which must carry dense
    ids [1 .. n]) and their dependences with START/STOP and the pseudo
    edges.  [model] (default [Vliw]) is recorded and used for the pseudo
    edges; [deps] should have been built with the same model.
    @raise Invalid_argument on non-dense ids or out-of-range edge
    endpoints. *)

val n_total : t -> int
(** Number of vertices including START and STOP. *)

val n_real : t -> int
(** Number of real operations. *)

val real_ids : t -> int list
(** Ids [1 .. n_real]. *)

val op : t -> int -> Op.t
val latency : t -> int -> int

val is_pseudo : t -> int -> bool

val succ_ids : t -> int -> int list
(** Successor vertex ids (with duplicates if parallel edges exist). *)

val real_succ_ids : t -> int -> int list
(** Successors restricted to real operations and real sources — the graph
    the SCC/circuit statistics are computed on. *)

val edge_count : t -> int
(** Number of edges between real operations (pseudo edges excluded) —
    the paper's E with its empirical fit of about 3 edges per
    operation. *)

val filter_edges : t -> (Dep.t -> bool) -> t
(** A copy of the graph keeping only the real edges satisfying the
    predicate; pseudo edges are rebuilt. *)

val map_machine : t -> Machine.t -> t
(** The same loop retargeted to another machine (opcodes must exist there
    with the same names); delays are recomputed per the recorded model. *)

val pp : Format.formatter -> t -> unit
(** Lists the operations followed by the real dependence edges. *)

val pp_dot : Format.formatter -> t -> unit
(** Graphviz rendering: one node per real operation (labelled with its
    opcode and tag), solid edges for flow/control dependences, dashed
    for anti/output; inter-iteration edges are annotated with their
    distance.  Pipe through [dot -Tsvg] to visualise a loop. *)
