let is_false (d : Dep.t) =
  match d.kind with Dep.Anti | Dep.Output -> true | Dep.Flow | Dep.Control -> false

let eliminate_false_deps ddg = Ddg.filter_edges ddg (fun d -> not (is_false d))

let false_dep_count ddg =
  let count = ref 0 in
  Array.iter
    (fun edges ->
      List.iter
        (fun (d : Dep.t) ->
          if
            is_false d
            && (not (Ddg.is_pseudo ddg d.src))
            && not (Ddg.is_pseudo ddg d.dst)
          then incr count)
        edges)
    ddg.Ddg.succs;
  !count
