(* Cross-cutting integration properties: pass composition (speculate,
   interleave, unroll, compaction, slack), cross-machine retargeting,
   parser fuzzing, and whole-pipeline agreement between the three
   independent checkers. *)

open Ims_machine
open Ims_ir
open Ims_core
open Ims_mii
open Ims_workloads

let machine = Machine.cydra5 ()
let ss4 = Machine.superscalar4 ()

let random_loop seed =
  Synthetic.generate machine (Random.State.make [| seed; 41 |])

let schedule_opt ddg = (Ims.modulo_schedule ddg).Ims.schedule

(* --- Pass composition ---------------------------------------------------------- *)

let prop_passes_compose =
  QCheck.Test.make ~count:50
    ~name:"integration: speculate |> interleave |> unroll still schedules"
    QCheck.(pair (int_bound 1_000_000) (int_range 2 3))
    (fun (seed, k) ->
      let ddg = random_loop seed in
      if Ddg.n_real ddg > 40 then true
      else begin
        let transformed =
          Unroll.by (Optimize.interleave (Optimize.speculate ddg) ~factor:2) k
        in
        match schedule_opt transformed with
        | Some s -> Schedule.verify s = Ok ()
        | None -> false
      end)

let prop_compact_after_slack =
  QCheck.Test.make ~count:40
    ~name:"integration: compaction on slack schedules is monotone and legal"
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let ddg = random_loop seed in
      if Ddg.n_real ddg > 40 then true
      else
        match (Slack.modulo_schedule ddg).Ims.schedule with
        | None -> false
        | Some s ->
            let r = Ims_pipeline.Compact.improve s in
            Schedule.verify r.Ims_pipeline.Compact.schedule = Ok ()
            && r.Ims_pipeline.Compact.lifetime_after
               <= r.Ims_pipeline.Compact.lifetime_before)

let prop_retarget_schedules =
  QCheck.Test.make ~count:50
    ~name:"integration: retargeted loops schedule validly on the superscalar"
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let ddg = Ddg.map_machine (random_loop seed) ss4 in
      match schedule_opt ddg with
      | Some s -> Schedule.verify s = Ok ()
      | None -> false)

let prop_unroll_preserves_store_volume =
  (* Unrolling renames registers, and the interpreter derives array
     bases from register ids, so absolute addresses legitimately move;
     what must be preserved is the shape of the memory traffic: trip t
     of the 2x-unrolled loop performs the work of 2t original
     iterations, writing the same number of distinct cells. *)
  QCheck.Test.make ~count:25
    ~name:"integration: unrolling preserves the store footprint"
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let ddg = random_loop seed in
      if Ddg.n_real ddg > 25 || not (Ims_pipeline.Interp.supported ddg) then
        true
      else begin
        let u = Unroll.by ddg 2 in
        if not (Ims_pipeline.Interp.supported u) then true
        else begin
          let a = Ims_pipeline.Interp.run_sequential ddg ~trip:8 in
          let b = Ims_pipeline.Interp.run_sequential u ~trip:4 in
          List.length a.Ims_pipeline.Interp.memory
          = List.length b.Ims_pipeline.Interp.memory
        end
      end)

(* --- The three checkers agree ---------------------------------------------------- *)

let prop_checkers_agree_on_corruption =
  QCheck.Test.make ~count:60
    ~name:"integration: verify and simulator agree on corrupted schedules"
    QCheck.(pair (int_bound 1_000_000) (pair (int_range 1 30) (int_range 0 9)))
    (fun (seed, (victim, delta)) ->
      let ddg = random_loop seed in
      match schedule_opt ddg with
      | None -> false
      | Some s ->
          let n = Ddg.n_total ddg in
          let victim = 1 + (victim mod Ddg.n_real ddg) in
          let entries =
            Array.init n (fun i ->
                {
                  Schedule.time =
                    (if i = victim then max 0 (Schedule.time s i + delta - 4)
                     else Schedule.time s i);
                  alt = Schedule.alt s i;
                })
          in
          let mutated = Schedule.make ddg ~ii:s.Schedule.ii ~entries in
          let ok_verify = Schedule.verify mutated = Ok () in
          let ok_sim =
            match Ims_pipeline.Simulator.run mutated with
            | Ok _ -> true
            | Error _ -> false
          in
          (* verify checks every edge and resource; the simulator
             re-derives values and occupancy independently.  A mutation
             the verifier blesses must therefore simulate cleanly (the
             converse need not hold: an edge with no value consumer can
             fail verify yet leave the simulation sound). *)
          (not ok_verify) || ok_sim)

let prop_verify_legal_implies_sim_legal =
  QCheck.Test.make ~count:60
    ~name:"integration: verify-legal schedules always simulate cleanly"
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let ddg = random_loop seed in
      match schedule_opt ddg with
      | None -> false
      | Some s -> (
          Schedule.verify s = Ok ()
          && match Ims_pipeline.Simulator.run s with Ok _ -> true | Error _ -> false))

(* --- Parser fuzzing --------------------------------------------------------------- *)

let fuzz_tokens =
  [| "x"; "y"; "="; "load"; "fadd"; "when"; "memdep"; "flow"; "1"; "2";
     "a[1]"; "a[-1]"; "a["; "]"; ","; "#"; "store"; "zzz"; "v0"; "0" |]

let prop_parser_total =
  QCheck.Test.make ~count:300
    ~name:"parser: fuzzed input raises only Parse_error / Unknown_opcode"
    QCheck.(pair (int_bound 1_000_000) (int_range 0 30))
    (fun (seed, len) ->
      let rng = Random.State.make [| seed; 43 |] in
      let text =
        String.concat ""
          (List.init len (fun _ ->
               let t = fuzz_tokens.(Random.State.int rng (Array.length fuzz_tokens)) in
               let sep = if Random.State.int rng 4 = 0 then "\n" else " " in
               t ^ sep))
      in
      match Loop_parse.parse machine text with
      | _ -> true
      | exception Loop_parse.Parse_error _ -> true
      | exception Machine.Unknown_opcode _ -> true
      | exception Invalid_argument _ -> true (* builder-level misuse *)
      | exception _ -> false)

(* --- Whole-pipeline spot checks ----------------------------------------------------- *)

let test_full_pipeline_lfk07 () =
  (* One loop, every stage: schedule, verify, simulate, interpret,
     compact, allocate (both schemas), emit (both schemas), tradeoff. *)
  let ddg = Lfk.build machine "lfk07" in
  let s =
    match schedule_opt ddg with Some s -> s | None -> Alcotest.fail "sched"
  in
  Alcotest.(check bool) "verify" true (Schedule.verify s = Ok ());
  (match Ims_pipeline.Simulator.run s with
  | Ok _ -> ()
  | Error es -> Alcotest.failf "sim: %s" (List.hd es));
  (match Ims_pipeline.Interp.check s with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  let c = Ims_pipeline.Compact.improve s in
  Alcotest.(check bool) "compacted legal" true
    (Schedule.verify c.Ims_pipeline.Compact.schedule = Ok ());
  let alloc = Ims_pipeline.Rotreg.allocate c.Ims_pipeline.Compact.schedule in
  Alcotest.(check bool) "rotreg legal" true (Ims_pipeline.Rotreg.verify alloc = Ok ());
  let ra = Ims_pipeline.Regalloc.allocate c.Ims_pipeline.Compact.schedule in
  Alcotest.(check bool) "regalloc legal" true (Ims_pipeline.Regalloc.verify ra = Ok ());
  Alcotest.(check bool) "rotating emission" true
    (String.length (Ims_pipeline.Codegen.emit Ims_pipeline.Codegen.Rotating s) > 0);
  Alcotest.(check bool) "mve emission" true
    (String.length (Ims_pipeline.Codegen.emit Ims_pipeline.Codegen.Mve s) > 0);
  let t = Ims_pipeline.Tradeoff.analyze s in
  Alcotest.(check bool) "pipelining wins eventually" true
    (Ims_pipeline.Tradeoff.speedup t ~trip:10_000 > 1.0)

let test_full_pipeline_on_superscalar () =
  let ddg = Ddg.map_machine (Lfk.build machine "lfk05") ss4 in
  let s =
    match schedule_opt ddg with Some s -> s | None -> Alcotest.fail "sched"
  in
  Alcotest.(check bool) "verify" true (Schedule.verify s = Ok ());
  match Ims_pipeline.Interp.check s with
  | Ok () -> ()
  | Error e -> Alcotest.fail e

let test_determinism_across_runs () =
  (* Exactly identical outcome objects on repeated runs. *)
  let d1 = Lfk.build machine "lfk08" and d2 = Lfk.build machine "lfk08" in
  let s1 = Option.get (schedule_opt d1) and s2 = Option.get (schedule_opt d2) in
  Alcotest.(check int) "same ii" s1.Schedule.ii s2.Schedule.ii;
  List.iter
    (fun i ->
      Alcotest.(check int)
        (Printf.sprintf "op %d same slot" i)
        (Schedule.time s1 i) (Schedule.time s2 i))
    (Ddg.real_ids d1)

let test_mii_consistency_families () =
  (* Over every named loop: resmii, recmii sane, both recmii methods
     agree, rational below integer. *)
  List.iter
    (fun (name, ddg) ->
      let m = Mii.compute ddg in
      Alcotest.(check bool) (name ^ " mii is the max") true
        (m.Mii.mii = max m.Mii.resmii m.Mii.recmii);
      Alcotest.(check int) (name ^ " circuit recmii agrees") m.Mii.recmii
        (Recmii.by_circuits ~limit:200_000 ddg);
      let r = Rational.of_ddg ddg in
      Alcotest.(check bool) (name ^ " rational below integer") true
        (r.Rational.mii <= float_of_int m.Mii.mii +. 1e-9))
    (Lfk.all machine @ Kernels.all machine)


let prop_sms_semantics =
  QCheck.Test.make ~count:30
    ~name:"integration: sms schedules compute sequential values too"
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let ddg = random_loop seed in
      if Ddg.n_real ddg > 40 then true
      else
        match (Sms.modulo_schedule ~max_delta_ii:64 ddg).Ims.schedule with
        | None -> true
        | Some s ->
            Schedule.verify s = Ok () && Ims_pipeline.Interp.check s = Ok ())

let tests =
  ( "integration",
    [
      QCheck_alcotest.to_alcotest prop_passes_compose;
      QCheck_alcotest.to_alcotest prop_compact_after_slack;
      QCheck_alcotest.to_alcotest prop_retarget_schedules;
      QCheck_alcotest.to_alcotest prop_unroll_preserves_store_volume;
      QCheck_alcotest.to_alcotest prop_checkers_agree_on_corruption;
      QCheck_alcotest.to_alcotest prop_verify_legal_implies_sim_legal;
      QCheck_alcotest.to_alcotest prop_parser_total;
      QCheck_alcotest.to_alcotest prop_sms_semantics;
      Alcotest.test_case "full pipeline on lfk07" `Quick test_full_pipeline_lfk07;
      Alcotest.test_case "full pipeline on the superscalar" `Quick
        test_full_pipeline_on_superscalar;
      Alcotest.test_case "determinism" `Quick test_determinism_across_runs;
      Alcotest.test_case "mii consistency, all named loops" `Slow
        test_mii_consistency_families;
    ] )
