(* Unit and property tests for the machine-model substrate: reservation
   tables, opcode repertoires, and the modulo reservation table. *)

open Ims_machine

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* --- Reservation tables ------------------------------------------------ *)

let test_shape_simple () =
  Alcotest.(check bool)
    "single use at issue is simple" true
    (Reservation.shape (Reservation.make [ (0, 0) ]) = Reservation.Simple)

let test_shape_block () =
  check "three consecutive cycles is a block" true
    (Reservation.shape (Reservation.make [ (0, 0); (0, 1); (0, 2) ])
    = Reservation.Block)

let test_shape_complex_gap () =
  check "a gap makes it complex" true
    (Reservation.shape (Reservation.make [ (0, 0); (0, 2) ])
    = Reservation.Complex)

let test_shape_complex_two_resources () =
  check "two resources make it complex" true
    (Reservation.shape (Reservation.make [ (0, 0); (1, 1) ])
    = Reservation.Complex)

let test_shape_complex_late_start () =
  check "not starting at issue is complex" true
    (Reservation.shape (Reservation.make [ (0, 1) ]) = Reservation.Complex)

let test_shape_empty () =
  check "empty (pseudo) table is simple" true
    (Reservation.shape Reservation.empty = Reservation.Simple)

let test_length () =
  check_int "length is 1 + max cycle" 5
    (Reservation.make [ (0, 0); (1, 4) ]).Reservation.length

let test_negative_cycle_rejected () =
  Alcotest.check_raises "negative cycle"
    (Invalid_argument "Reservation.make: negative cycle") (fun () ->
      ignore (Reservation.make [ (0, -1) ]))

let test_usage_count () =
  let acc = Array.make 3 0 in
  Reservation.usage_count (Reservation.make [ (0, 0); (0, 0); (2, 1) ]) acc;
  Alcotest.(check (list int)) "counts" [ 2; 0; 1 ] (Array.to_list acc)

(* --- Figure 1 collisions ------------------------------------------------ *)

let fig1 = Machine.figure1 ()

let table name =
  (List.hd (Machine.opcode fig1 name).Opcode.alternatives).Opcode.table

let test_fig1_shapes () =
  check "figure 1 add is complex" true
    (Reservation.shape (table "add") = Reservation.Complex);
  check "figure 1 mul is complex" true
    (Reservation.shape (table "mul") = Reservation.Complex)

(* "an ALU operation and a multiply cannot be scheduled for issue at the
   same time since they will collide in their usage of the source buses" *)
let test_fig1_same_cycle_collision () =
  let mrt = Mrt.linear fig1 ~horizon:64 in
  Mrt.reserve mrt ~op:1 (table "mul") ~time:10;
  check "add cannot issue with mul" false (Mrt.fits mrt (table "add") ~time:10)

(* "although a multiply may be issued any number of cycles after an add, an
   add may not be issued two cycles after a multiply" *)
let test_fig1_result_bus_collision () =
  let mrt = Mrt.linear fig1 ~horizon:64 in
  Mrt.reserve mrt ~op:1 (table "mul") ~time:10;
  check "add at +1 is fine" true (Mrt.fits mrt (table "add") ~time:11);
  check "add at +2 collides on the result bus" false
    (Mrt.fits mrt (table "add") ~time:12);
  check "add at +3 is fine" true (Mrt.fits mrt (table "add") ~time:13)

let test_fig1_mul_after_add_ok () =
  let mrt = Mrt.linear fig1 ~horizon:64 in
  Mrt.reserve mrt ~op:1 (table "add") ~time:10;
  List.iter
    (fun k ->
      check
        (Printf.sprintf "mul at +%d fits" k)
        true
        (Mrt.fits mrt (table "mul") ~time:(10 + k)))
    [ 1; 2; 3; 4; 5 ]

(* --- Machine models ----------------------------------------------------- *)

let cydra = Machine.cydra5 ()

let test_cydra_table2 () =
  (* The latencies of table 2 (load is the experiment's 20, not 26). *)
  List.iter
    (fun (op, lat) ->
      check_int (op ^ " latency") lat (Machine.latency cydra op))
    [
      ("load", 20); ("aadd", 3); ("asub", 3); ("fadd", 4); ("fsub", 4);
      ("fmul", 5); ("mul", 5); ("fdiv", 22); ("sqrt", 26); ("branch", 13);
    ]

let test_cydra_unit_counts () =
  check_int "two memory ports" 2 (Machine.resource_by_name cydra "MemPort").Resource.count;
  check_int "two address ALUs" 2 (Machine.resource_by_name cydra "AddrALU").Resource.count;
  check_int "one adder" 1 (Machine.resource_by_name cydra "Adder").Resource.count;
  check_int "one multiplier" 1 (Machine.resource_by_name cydra "Mult").Resource.count

let test_cydra_alternatives () =
  check_int "integer add has two alternatives" 2
    (Opcode.num_alternatives (Machine.opcode cydra "add"));
  check_int "fadd has one alternative" 1
    (Opcode.num_alternatives (Machine.opcode cydra "fadd"))

let test_unknown_opcode () =
  check "unknown opcode raises" true
    (try
       ignore (Machine.opcode cydra "frobnicate");
       false
     with Machine.Unknown_opcode "frobnicate" -> true)

let test_pseudo_opcodes () =
  check "START is pseudo" true (Machine.opcode cydra "START").Opcode.is_pseudo;
  check_int "START latency 0" 0 (Machine.latency cydra "STOP")

let test_divide_blocks_multiplier () =
  let t = (List.hd (Machine.opcode cydra "fdiv").Opcode.alternatives).Opcode.table in
  check "divide table is complex" true (Reservation.shape t = Reservation.Complex);
  let mult = (Machine.resource_by_name cydra "Mult").Resource.id in
  let acc = Array.make (Machine.num_resources cydra) 0 in
  Reservation.usage_count t acc;
  check "divide holds the multiplier for 8 cycles" true (acc.(mult) = 8)

(* --- MRT ---------------------------------------------------------------- *)

let test_mrt_wraparound () =
  let mrt = Mrt.create cydra ~ii:4 in
  let load = (List.hd (Machine.opcode cydra "load").Opcode.alternatives).Opcode.table in
  Mrt.reserve mrt ~op:1 load ~time:0;
  Mrt.reserve mrt ~op:2 load ~time:0;
  (* Both ports busy in slot 0: a third load 2*ii later still conflicts. *)
  check "conflict repeats mod ii" false (Mrt.fits mrt load ~time:8);
  check "other slots free" true (Mrt.fits mrt load ~time:9)

let test_mrt_release_restores () =
  let mrt = Mrt.create cydra ~ii:3 in
  let fadd = (List.hd (Machine.opcode cydra "fadd").Opcode.alternatives).Opcode.table in
  Mrt.reserve mrt ~op:7 fadd ~time:5;
  check "adder busy" false (Mrt.fits mrt fadd ~time:8);
  Mrt.release mrt ~op:7 fadd ~time:5;
  check "released" true (Mrt.fits mrt fadd ~time:8)

let test_mrt_conflicting_ops () =
  let mrt = Mrt.create cydra ~ii:2 in
  let fadd = (List.hd (Machine.opcode cydra "fadd").Opcode.alternatives).Opcode.table in
  Mrt.reserve mrt ~op:3 fadd ~time:0;
  Alcotest.(check (list int))
    "the occupant is reported" [ 3 ]
    (Mrt.conflicting_ops mrt [ fadd ] ~time:2);
  Alcotest.(check (list int))
    "no conflict, no occupants" []
    (Mrt.conflicting_ops mrt [ fadd ] ~time:1)

let test_mrt_reserve_overflow_rejected () =
  let mrt = Mrt.create cydra ~ii:1 in
  let st = (List.hd (Machine.opcode cydra "store").Opcode.alternatives).Opcode.table in
  Mrt.reserve mrt ~op:1 st ~time:0;
  Mrt.reserve mrt ~op:2 st ~time:0;
  check "third reserve rejected" true
    (try
       Mrt.reserve mrt ~op:3 st ~time:0;
       false
     with Invalid_argument _ -> true)

let test_mrt_release_wrong_op_rejected () =
  let mrt = Mrt.create cydra ~ii:2 in
  let st = (List.hd (Machine.opcode cydra "store").Opcode.alternatives).Opcode.table in
  Mrt.reserve mrt ~op:1 st ~time:0;
  check "release of a non-holder rejected" true
    (try
       Mrt.release mrt ~op:9 st ~time:0;
       false
     with Invalid_argument _ -> true)

(* Property: any sequence of fitting reserves followed by releases in any
   order restores an empty table (every cell reusable). *)
let prop_mrt_reserve_release_inverse =
  QCheck.Test.make ~count:200
    ~name:"mrt: reserve/release sequences restore capacity"
    QCheck.(
      pair (int_range 1 12)
        (small_list (pair (int_range 0 3) (int_range 0 40))))
    (fun (ii, moves) ->
      let machine = Machine.cydra5 () in
      let mrt = Mrt.create machine ~ii in
      let ops = [| "load"; "fadd"; "fmul"; "store" |] in
      let placed = ref [] in
      List.iteri
        (fun i (which, time) ->
          let table =
            (List.hd (Machine.opcode machine ops.(which)).Opcode.alternatives)
              .Opcode.table
          in
          if Mrt.fits mrt table ~time then begin
            Mrt.reserve mrt ~op:i table ~time;
            placed := (i, table, time) :: !placed
          end)
        moves;
      List.iter (fun (op, table, time) -> Mrt.release mrt ~op table ~time) !placed;
      (* After releasing everything, every original placement fits again. *)
      List.for_all
        (fun (_, table, time) -> Mrt.fits mrt table ~time)
        !placed)



(* --- The superscalar model ------------------------------------------------------ *)

let test_superscalar_latencies () =
  let ss = Machine.superscalar4 () in
  List.iter
    (fun (op, lat) -> check_int (op ^ " latency") lat (Machine.latency ss op))
    [ ("load", 3); ("fadd", 3); ("fmul", 4); ("add", 1); ("fdiv", 12) ];
  check_int "two FP units" 2 (Machine.resource_by_name ss "FP").Resource.count

let test_superscalar_covers_cydra_repertoire () =
  let ss = Machine.superscalar4 () in
  List.iter
    (fun name ->
      check (name ^ " exists") true
        (match Machine.opcode ss name with _ -> true | exception _ -> false))
    (Machine.opcode_names cydra)

let machine_extension_tests =
  [
    Alcotest.test_case "superscalar4: latencies" `Quick test_superscalar_latencies;
    Alcotest.test_case "superscalar4: full repertoire" `Quick
      test_superscalar_covers_cydra_repertoire;
  ]


(* --- Machine description files ---------------------------------------------------- *)

let dsp_text =
  "machine DSP\nresource ALU 2\nresource MEM 1\n"
  ^ "opcode add 1 ALU = ALU\nopcode load 3 MEM = MEM@0\n"
  ^ "opcode mac 2 ALU = ALU@0 ALU@1 ; MEM = MEM@0\n"

let test_machine_parse_basic () =
  let m = Machine_parse.parse dsp_text in
  check_int "two ALUs" 2 (Machine.resource_by_name m "ALU").Resource.count;
  check_int "load latency" 3 (Machine.latency m "load");
  check_int "mac has two alternatives" 2
    (Opcode.num_alternatives (Machine.opcode m "mac"))

let test_machine_parse_default_cycle () =
  let m = Machine_parse.parse dsp_text in
  let t = (List.hd (Machine.opcode m "add").Opcode.alternatives).Opcode.table in
  check "RES without @ is cycle 0" true (Reservation.shape t = Reservation.Simple)

let test_machine_parse_roundtrip () =
  List.iter
    (fun build ->
      let m = build () in
      let back = Machine_parse.parse (Machine_parse.dump m) in
      Alcotest.(check (list string))
        (m.Machine.name ^ " opcodes survive")
        (Machine.opcode_names m) (Machine.opcode_names back);
      check_int "resource count" (Machine.num_resources m)
        (Machine.num_resources back);
      List.iter
        (fun name ->
          check_int (name ^ " latency") (Machine.latency m name)
            (Machine.latency back name);
          check_int
            (name ^ " alternatives")
            (Opcode.num_alternatives (Machine.opcode m name))
            (Opcode.num_alternatives (Machine.opcode back name)))
        (Machine.opcode_names m))
    [ Machine.cydra5; Machine.figure1; Machine.simple_vliw; Machine.superscalar4 ]

let test_machine_parse_errors () =
  let bad text =
    match Machine_parse.parse text with
    | exception Machine_parse.Parse_error _ -> ()
    | _ -> Alcotest.failf "accepted %S" text
  in
  bad "resource ALU zero";
  bad "resource ALU 0";
  bad "opcode add one ALU = ALU";
  bad "opcode add 1";
  bad "opcode add 1 ALU = NOPE";
  bad "opcode add 1 ALU = ALU@-1";
  bad "frobnicate";
  bad "resource ALU 1\nresource ALU 1"

let test_machine_parse_schedules () =
  (* A parsed machine drives the whole pipeline. *)
  let m = Machine_parse.parse dsp_text in
  let b = Ims_ir.Builder.create m in
  let x = Ims_ir.Builder.vreg b "x" and y = Ims_ir.Builder.vreg b "y" in
  ignore (Ims_ir.Builder.add b ~opcode:"load" ~dsts:[ x ] ~srcs:[] ());
  ignore (Ims_ir.Builder.add b ~opcode:"mac" ~dsts:[ y ] ~srcs:[ (x, 0); (y, 1) ] ());
  let ddg = Ims_ir.Builder.finish b in
  match (Ims_core.Ims.modulo_schedule ddg).Ims_core.Ims.schedule with
  | Some s ->
      Alcotest.(check bool) "valid" true (Ims_core.Schedule.verify s = Ok ())
  | None -> Alcotest.fail "no schedule"

let machine_parse_tests =
  [
    Alcotest.test_case "machine file: basic" `Quick test_machine_parse_basic;
    Alcotest.test_case "machine file: default cycle" `Quick
      test_machine_parse_default_cycle;
    Alcotest.test_case "machine file: round trip" `Quick
      test_machine_parse_roundtrip;
    Alcotest.test_case "machine file: errors" `Quick test_machine_parse_errors;
    Alcotest.test_case "machine file: schedules" `Quick
      test_machine_parse_schedules;
  ]

let tests =
  ( "machine",
    [
      Alcotest.test_case "shape: simple" `Quick test_shape_simple;
      Alcotest.test_case "shape: block" `Quick test_shape_block;
      Alcotest.test_case "shape: complex (gap)" `Quick test_shape_complex_gap;
      Alcotest.test_case "shape: complex (two resources)" `Quick
        test_shape_complex_two_resources;
      Alcotest.test_case "shape: complex (late start)" `Quick
        test_shape_complex_late_start;
      Alcotest.test_case "shape: empty" `Quick test_shape_empty;
      Alcotest.test_case "table length" `Quick test_length;
      Alcotest.test_case "negative cycle rejected" `Quick
        test_negative_cycle_rejected;
      Alcotest.test_case "usage counting" `Quick test_usage_count;
      Alcotest.test_case "figure 1 shapes" `Quick test_fig1_shapes;
      Alcotest.test_case "figure 1: source-bus collision" `Quick
        test_fig1_same_cycle_collision;
      Alcotest.test_case "figure 1: result-bus collision at +2" `Quick
        test_fig1_result_bus_collision;
      Alcotest.test_case "figure 1: mul after add always fits" `Quick
        test_fig1_mul_after_add_ok;
      Alcotest.test_case "cydra5: table 2 latencies" `Quick test_cydra_table2;
      Alcotest.test_case "cydra5: unit counts" `Quick test_cydra_unit_counts;
      Alcotest.test_case "cydra5: alternatives" `Quick test_cydra_alternatives;
      Alcotest.test_case "unknown opcode" `Quick test_unknown_opcode;
      Alcotest.test_case "pseudo opcodes" `Quick test_pseudo_opcodes;
      Alcotest.test_case "divide blocks the multiplier" `Quick
        test_divide_blocks_multiplier;
      Alcotest.test_case "mrt: modulo wraparound" `Quick test_mrt_wraparound;
      Alcotest.test_case "mrt: release restores" `Quick test_mrt_release_restores;
      Alcotest.test_case "mrt: conflicting ops" `Quick test_mrt_conflicting_ops;
      Alcotest.test_case "mrt: overfull reserve rejected" `Quick
        test_mrt_reserve_overflow_rejected;
      Alcotest.test_case "mrt: wrong-op release rejected" `Quick
        test_mrt_release_wrong_op_rejected;
      QCheck_alcotest.to_alcotest prop_mrt_reserve_release_inverse;
    ]
    @ machine_extension_tests @ machine_parse_tests )
