(* Tests for the IR: table 1 delay formulae, dependence derivation in the
   builder (flow / anti / output, loop-carried distances, predication),
   DDG construction and the IF-conversion substrate. *)

open Ims_machine
open Ims_ir

let machine = Machine.cydra5 ()

(* --- Table 1 delays ------------------------------------------------------ *)

let test_delay_flow () =
  Alcotest.(check int) "flow = pred latency" 20
    (Dep.delay Dep.Vliw Dep.Flow ~pred_latency:20 ~succ_latency:4);
  Alcotest.(check int) "conservative flow identical" 20
    (Dep.delay Dep.Conservative Dep.Flow ~pred_latency:20 ~succ_latency:4)

let test_delay_anti () =
  Alcotest.(check int) "vliw anti can be negative" (-3)
    (Dep.delay Dep.Vliw Dep.Anti ~pred_latency:7 ~succ_latency:4);
  Alcotest.(check int) "conservative anti is 0" 0
    (Dep.delay Dep.Conservative Dep.Anti ~pred_latency:7 ~succ_latency:4)

let test_delay_output () =
  Alcotest.(check int) "vliw output" 2
    (Dep.delay Dep.Vliw Dep.Output ~pred_latency:5 ~succ_latency:4);
  Alcotest.(check int) "conservative output = pred latency" 5
    (Dep.delay Dep.Conservative Dep.Output ~pred_latency:5 ~succ_latency:4)

let test_delay_control () =
  Alcotest.(check int) "control = pred latency" 4
    (Dep.delay Dep.Vliw Dep.Control ~pred_latency:4 ~succ_latency:1)

let test_negative_distance_rejected () =
  Alcotest.(check bool) "negative distance rejected" true
    (try
       ignore
         (Dep.make Dep.Vliw Dep.Flow ~src:1 ~dst:2 ~distance:(-1)
            ~pred_latency:1 ~succ_latency:1);
       false
     with Invalid_argument _ -> true)

(* --- Builder: flow dependences ------------------------------------------- *)

let edges_between ddg a b =
  List.filter (fun (d : Dep.t) -> d.dst = b) ddg.Ddg.succs.(a)

let test_builder_simple_flow () =
  let b = Builder.create machine in
  let x = Builder.vreg b "x" and y = Builder.vreg b "y" in
  let o1 = Builder.add b ~opcode:"fadd" ~dsts:[ x ] ~srcs:[] () in
  let o2 = Builder.add b ~opcode:"fmul" ~dsts:[ y ] ~srcs:[ (x, 0) ] () in
  let ddg = Builder.finish b in
  match edges_between ddg o1 o2 with
  | [ d ] ->
      Alcotest.(check bool) "flow kind" true (d.Dep.kind = Dep.Flow);
      Alcotest.(check int) "distance 0" 0 d.Dep.distance;
      Alcotest.(check int) "delay = fadd latency" 4 d.Dep.delay
  | l -> Alcotest.failf "expected one edge, got %d" (List.length l)

let test_builder_loop_carried () =
  let b = Builder.create machine in
  let s = Builder.vreg b "s" and v = Builder.vreg b "v" in
  let o =
    Builder.add b ~opcode:"fadd" ~dsts:[ s ] ~srcs:[ (s, 1); (v, 0) ] ()
  in
  let ddg = Builder.finish b in
  match edges_between ddg o o with
  | [ d ] ->
      Alcotest.(check int) "self distance 1" 1 d.Dep.distance;
      Alcotest.(check int) "delay 4" 4 d.Dep.delay
  | l -> Alcotest.failf "expected one self edge, got %d" (List.length l)

let test_builder_live_in_no_edge () =
  let b = Builder.create machine in
  let c = Builder.vreg b "c" and y = Builder.vreg b "y" in
  let o = Builder.add b ~opcode:"fadd" ~dsts:[ y ] ~srcs:[ (c, 0) ] () in
  let ddg = Builder.finish b in
  Alcotest.(check int) "only the pseudo edges" 0
    (List.length
       (List.filter (fun (d : Dep.t) -> not (Ddg.is_pseudo ddg d.src))
          ddg.Ddg.preds.(o)))

let test_builder_use_before_def_rejected () =
  let b = Builder.create machine in
  let x = Builder.vreg b "x" and y = Builder.vreg b "y" in
  ignore (Builder.add b ~opcode:"fadd" ~dsts:[ y ] ~srcs:[ (x, 0) ] ());
  ignore (Builder.add b ~opcode:"fmul" ~dsts:[ x ] ~srcs:[] ());
  Alcotest.(check bool) "distance-0 use before def rejected" true
    (try
       ignore (Builder.finish b);
       false
     with Invalid_argument _ -> true)

let test_builder_predicated_defs_both_reach () =
  (* Two predicated definitions of xm: a later read depends on both. *)
  let b = Builder.create machine in
  let p = Builder.vreg b "p" and q = Builder.vreg b "q" in
  let xm = Builder.vreg b "xm" and out = Builder.vreg b "out" in
  let d1 = Builder.add b ~pred:(p, 0) ~opcode:"copy" ~dsts:[ xm ] ~srcs:[] () in
  let d2 = Builder.add b ~pred:(q, 0) ~opcode:"copy" ~dsts:[ xm ] ~srcs:[] () in
  let u = Builder.add b ~opcode:"fadd" ~dsts:[ out ] ~srcs:[ (xm, 0) ] () in
  let ddg = Builder.finish b in
  Alcotest.(check int) "edge from first def" 1 (List.length (edges_between ddg d1 u));
  Alcotest.(check int) "edge from second def" 1 (List.length (edges_between ddg d2 u))

let test_builder_unpredicated_def_kills () =
  let b = Builder.create machine in
  let x = Builder.vreg b "x" and out = Builder.vreg b "out" in
  let d1 = Builder.add b ~opcode:"copy" ~dsts:[ x ] ~srcs:[] () in
  let d2 = Builder.add b ~opcode:"copy" ~dsts:[ x ] ~srcs:[] () in
  let u = Builder.add b ~opcode:"fadd" ~dsts:[ out ] ~srcs:[ (x, 0) ] () in
  let ddg = Builder.finish b in
  Alcotest.(check int) "no edge from the killed def" 0
    (List.length (edges_between ddg d1 u));
  Alcotest.(check int) "edge from the killing def" 1
    (List.length (edges_between ddg d2 u))

let test_builder_pred_operand_control_edge () =
  let b = Builder.create machine in
  let c = Builder.vreg b "c" and p = Builder.vreg b "p" in
  let x = Builder.vreg b "x" in
  let s = Builder.add b ~opcode:"pred_set" ~dsts:[ p ] ~srcs:[ (c, 0) ] () in
  let g = Builder.add b ~pred:(p, 0) ~opcode:"copy" ~dsts:[ x ] ~srcs:[] () in
  let ddg = Builder.finish b in
  match edges_between ddg s g with
  | [ d ] ->
      Alcotest.(check bool) "control kind" true (d.Dep.kind = Dep.Control);
      Alcotest.(check int) "delay = pred_set latency" 4 d.Dep.delay
  | l -> Alcotest.failf "expected one control edge, got %d" (List.length l)

(* --- Builder: false dependences ------------------------------------------ *)

let false_dep_loop () =
  (* x := x + v, written without EVR distances: x read at distance 1 and
     rewritten each iteration. *)
  let b = Builder.create machine in
  let x = Builder.vreg b "x" and v = Builder.vreg b "v" in
  let u = Builder.add b ~opcode:"fadd" ~dsts:[ x ] ~srcs:[ (x, 1); (v, 0) ] () in
  (b, u)

let test_false_deps_generated () =
  let b, u = false_dep_loop () in
  let ddg = Builder.finish ~keep_false_deps:true b in
  let kinds =
    List.map (fun (d : Dep.t) -> d.Dep.kind) (edges_between ddg u u)
    |> List.sort compare
  in
  Alcotest.(check int) "flow + anti + output on the self node" 3
    (List.length kinds);
  Alcotest.(check bool) "has anti" true (List.mem Dep.Anti kinds);
  Alcotest.(check bool) "has output" true (List.mem Dep.Output kinds)

let test_evr_removes_false_deps () =
  let b, _ = false_dep_loop () in
  let ddg = Builder.finish ~keep_false_deps:true b in
  Alcotest.(check bool) "false deps present" true (Evr.false_dep_count ddg > 0);
  let clean = Evr.eliminate_false_deps ddg in
  Alcotest.(check int) "false deps gone" 0 (Evr.false_dep_count clean);
  Alcotest.(check int) "ops unchanged" (Ddg.n_real ddg) (Ddg.n_real clean)

let test_output_deps_chain () =
  let b = Builder.create machine in
  let x = Builder.vreg b "x" in
  let d1 = Builder.add b ~opcode:"copy" ~dsts:[ x ] ~srcs:[] () in
  let d2 = Builder.add b ~opcode:"copy" ~dsts:[ x ] ~srcs:[] () in
  let ddg = Builder.finish ~keep_false_deps:true b in
  Alcotest.(check bool) "output d1->d2 at distance 0" true
    (List.exists
       (fun (d : Dep.t) -> d.kind = Dep.Output && d.distance = 0)
       (edges_between ddg d1 d2));
  Alcotest.(check bool) "output back edge d2->d1 at distance 1" true
    (List.exists
       (fun (d : Dep.t) -> d.kind = Dep.Output && d.distance = 1)
       (edges_between ddg d2 d1))

(* --- DDG structure -------------------------------------------------------- *)

let small_ddg () =
  let b = Builder.create machine in
  let x = Builder.vreg b "x" and y = Builder.vreg b "y" in
  ignore (Builder.add b ~opcode:"load" ~dsts:[ x ] ~srcs:[] ());
  ignore (Builder.add b ~opcode:"mul" ~dsts:[ y ] ~srcs:[ (x, 0) ] ());
  Builder.finish b

let test_ddg_pseudo_ops () =
  let ddg = small_ddg () in
  Alcotest.(check int) "start id" 0 Ddg.start;
  Alcotest.(check int) "stop id" 3 (Ddg.stop ddg);
  Alcotest.(check int) "two real ops" 2 (Ddg.n_real ddg);
  Alcotest.(check bool) "start is pseudo" true (Ddg.is_pseudo ddg 0);
  Alcotest.(check bool) "real op is not" false (Ddg.is_pseudo ddg 1)

let test_ddg_stop_edge_carries_latency () =
  let ddg = small_ddg () in
  let stop = Ddg.stop ddg in
  match List.filter (fun (d : Dep.t) -> d.dst = stop) ddg.Ddg.succs.(1) with
  | [ d ] -> Alcotest.(check int) "load -> STOP delay 20" 20 d.Dep.delay
  | _ -> Alcotest.fail "expected exactly one STOP edge"

let test_ddg_edge_count_excludes_pseudo () =
  let ddg = small_ddg () in
  Alcotest.(check int) "one real edge" 1 (Ddg.edge_count ddg)

let test_ddg_map_machine () =
  let ddg = small_ddg () in
  let vliw = Machine.simple_vliw () in
  let moved = Ddg.map_machine ddg vliw in
  Alcotest.(check int) "same ops" (Ddg.n_real ddg) (Ddg.n_real moved);
  match
    List.filter (fun (d : Dep.t) -> d.dst = 2) moved.Ddg.succs.(1)
  with
  | [ d ] -> Alcotest.(check int) "delay recomputed to vliw load" 2 d.Dep.delay
  | _ -> Alcotest.fail "edge lost in retarget"

let test_ddg_dense_ids_required () =
  Alcotest.(check bool) "non-dense ids rejected" true
    (try
       ignore
         (Ddg.make machine
            [ { Op.id = 2; opcode = "fadd"; dsts = []; srcs = []; pred = None; imm = None; tag = "" } ]
            []);
       false
     with Invalid_argument _ -> true)

(* --- IF-conversion -------------------------------------------------------- *)

let test_if_conversion_diamond () =
  let b = Builder.create machine in
  let c = Builder.vreg b "c" in
  ignore (Builder.add b ~opcode:"fcmp" ~dsts:[ c ] ~srcs:[] ());
  If_conversion.(
    convert b
      (If
         {
           cond = ("c", 0);
           then_ = Block [ stmt "copy" ~dsts:[ "t" ] ~srcs:[ ("c", 0) ] ];
           else_ = Block [ stmt "copy" ~dsts:[ "e" ] ~srcs:[ ("c", 0) ] ];
         }));
  let ddg = Builder.finish b in
  (* fcmp, pred_set, pred_reset, two predicated copies. *)
  Alcotest.(check int) "five ops" 5 (Ddg.n_real ddg);
  let predicated =
    List.filter
      (fun i -> (Ddg.op ddg i).Op.pred <> None)
      (Ddg.real_ids ddg)
  in
  Alcotest.(check int) "two predicated ops" 2 (List.length predicated)

let test_if_conversion_nested_predicates_guarded () =
  let b = Builder.create machine in
  let c = Builder.vreg b "c" in
  ignore (Builder.add b ~opcode:"fcmp" ~dsts:[ c ] ~srcs:[] ());
  If_conversion.(
    convert b
      (If
         {
           cond = ("c", 0);
           then_ =
             If
               {
                 cond = ("c", 0);
                 then_ = Block [ stmt "copy" ~dsts:[ "t" ] ~srcs:[ ("c", 0) ] ];
                 else_ = Block [];
               };
           else_ = Block [];
         }));
  let ddg = Builder.finish b in
  (* The inner pred_set/pred_reset must themselves be predicated. *)
  let inner_preds =
    List.filter
      (fun i ->
        let o = Ddg.op ddg i in
        (o.Op.opcode = "pred_set" || o.Op.opcode = "pred_reset")
        && o.Op.pred <> None)
      (Ddg.real_ids ddg)
  in
  Alcotest.(check int) "inner predicate defs are guarded" 2
    (List.length inner_preds)

(* Property: on random straight-line bodies, every distance-0 flow edge
   goes forward in program order, and finish never raises. *)
let prop_builder_flow_edges_forward =
  QCheck.Test.make ~count:200 ~name:"builder: distance-0 edges run forward"
    QCheck.(small_list (pair (int_range 0 4) (int_range 0 4)))
    (fun picks ->
      let b = Builder.create machine in
      let regs = Array.init 5 (fun i -> Builder.vreg b (Printf.sprintf "r%d" i)) in
      List.iteri
        (fun i (dst, src) ->
          ignore
            (Builder.add b ~opcode:"fadd"
               ~dsts:[ regs.(dst) ]
               ~srcs:[ (regs.(src), if i mod 3 = 0 then 1 else if dst = src then 1 else 0) ]
               ()))
        picks;
      try
        let ddg = Builder.finish b in
        Array.to_list ddg.Ddg.succs
        |> List.concat
        |> List.for_all (fun (d : Dep.t) ->
               d.distance > 0 || Ddg.is_pseudo ddg d.src || Ddg.is_pseudo ddg d.dst
               || d.src < d.dst
               || d.src = d.dst)
      with Invalid_argument _ -> true)



(* --- Unrolling -------------------------------------------------------------- *)

let reduction_for_unroll () =
  (* Three loads on two ports (rational ResMII 1.5) plus a reduction. *)
  let b = Builder.create machine in
  let s = Builder.vreg b "s" in
  let loads =
    List.init 3 (fun i ->
        let v = Builder.vreg b (Printf.sprintf "x%d" i) in
        ignore (Builder.add b ~opcode:"load" ~dsts:[ v ] ~srcs:[] ());
        v)
  in
  ignore
    (Builder.add b ~opcode:"fadd" ~dsts:[ s ]
       ~srcs:((s, 2) :: List.map (fun v -> (v, 0)) loads)
       ());
  Builder.finish b

let test_unroll_identity () =
  let ddg = reduction_for_unroll () in
  let u = Unroll.by ddg 1 in
  Alcotest.(check int) "same ops" (Ddg.n_real ddg) (Ddg.n_real u);
  Alcotest.(check int) "same edges" (Ddg.edge_count ddg) (Ddg.edge_count u)

let test_unroll_scales_ops_and_edges () =
  let ddg = reduction_for_unroll () in
  let u = Unroll.by ddg 3 in
  Alcotest.(check int) "3x ops" (3 * Ddg.n_real ddg) (Ddg.n_real u);
  Alcotest.(check int) "3x edges" (3 * Ddg.edge_count ddg) (Ddg.edge_count u)

let test_unroll_rejects_zero () =
  Alcotest.(check bool) "k=0 rejected" true
    (try
       ignore (Unroll.by (reduction_for_unroll ()) 0);
       false
     with Invalid_argument _ -> true)

let test_unroll_distance_arithmetic () =
  (* s reads itself at distance 2; unrolled by 2 each copy reads the
     same copy at distance 1. *)
  let b = Builder.create machine in
  let s = Builder.vreg b "s" in
  ignore (Builder.add b ~opcode:"fadd" ~dsts:[ s ] ~srcs:[ (s, 2) ] ());
  let u = Unroll.by (Builder.finish b) 2 in
  List.iter
    (fun i ->
      let self =
        List.filter (fun (d : Dep.t) -> d.dst = i) u.Ddg.succs.(i)
      in
      match self with
      | [ d ] -> Alcotest.(check int) "distance halves" 1 d.Dep.distance
      | _ -> Alcotest.fail "expected one self edge per copy")
    [ 1; 2 ]

let test_unroll_cross_copy_edges () =
  (* distance 1 from copy 1 lands in copy 0 of the same new iteration
     (distance 0); from copy 0 it lands in copy 1 of the previous one. *)
  let b = Builder.create machine in
  let s = Builder.vreg b "s" in
  ignore (Builder.add b ~opcode:"fadd" ~dsts:[ s ] ~srcs:[ (s, 1) ] ());
  let u = Unroll.by (Builder.finish b) 2 in
  let edge src dst =
    List.find_opt (fun (d : Dep.t) -> d.dst = dst) u.Ddg.succs.(src)
  in
  (match edge 1 2 with
  | Some d -> Alcotest.(check int) "copy0 -> copy1 intra" 0 d.Dep.distance
  | None -> Alcotest.fail "missing 1->2 edge");
  match edge 2 1 with
  | Some d -> Alcotest.(check int) "copy1 -> copy0 carried" 1 d.Dep.distance
  | None -> Alcotest.fail "missing 2->1 edge"

(* Property: an unrolled schedule is still schedulable and valid, and
   its per-original-iteration II never exceeds the unrolled-by-1 II. *)
let prop_unroll_schedules_validly =
  QCheck.Test.make ~count:40 ~name:"unroll: schedules remain valid"
    QCheck.(pair (int_bound 100000) (int_range 2 3))
    (fun (seed, k) ->
      let rng = Random.State.make [| seed; 21 |] in
      let ddg = Ims_workloads.Synthetic.generate machine rng in
      if Ddg.n_real ddg > 60 then true
      else begin
        let u = Unroll.by ddg k in
        match (Ims_core.Ims.modulo_schedule u).Ims_core.Ims.schedule with
        | Some s -> Ims_core.Schedule.verify s = Ok ()
        | None -> false
      end)

(* --- Reduction interleaving -------------------------------------------------- *)

let test_interleave_finds_reduction () =
  let b = Builder.create machine in
  let s = Builder.vreg b "s" and v = Builder.vreg b "v" in
  ignore (Builder.add b ~opcode:"load" ~dsts:[ v ] ~srcs:[] ());
  let acc = Builder.add b ~opcode:"fadd" ~dsts:[ s ] ~srcs:[ (s, 1); (v, 0) ] () in
  let ddg = Builder.finish b in
  Alcotest.(check (list int)) "the accumulator" [ acc ] (Optimize.interleavable ddg)

let test_interleave_skips_read_accumulators () =
  (* Prefix sum: the accumulator is stored every iteration. *)
  let b = Builder.create machine in
  let s = Builder.vreg b "s" and a = Builder.vreg b "a" in
  ignore (Builder.add b ~opcode:"fadd" ~dsts:[ s ] ~srcs:[ (s, 1) ] ());
  ignore (Builder.add b ~opcode:"store" ~dsts:[] ~srcs:[ (a, 0); (s, 0) ] ());
  Alcotest.(check (list int)) "not re-associable" []
    (Optimize.interleavable (Builder.finish b))

let test_interleave_skips_predicated () =
  let b = Builder.create machine in
  let s = Builder.vreg b "s" and p = Builder.vreg b "p" in
  ignore (Builder.add b ~pred:(p, 0) ~opcode:"fadd" ~dsts:[ s ] ~srcs:[ (s, 1) ] ());
  Alcotest.(check (list int)) "guarded accumulation excluded" []
    (Optimize.interleavable (Builder.finish b))

let test_interleave_widens_distance () =
  let b = Builder.create machine in
  let s = Builder.vreg b "s" in
  let acc = Builder.add b ~opcode:"fadd" ~dsts:[ s ] ~srcs:[ (s, 1) ] () in
  let ddg = Optimize.interleave (Builder.finish b) ~factor:4 in
  (match List.filter (fun (d : Dep.t) -> d.dst = acc) ddg.Ddg.succs.(acc) with
  | [ d ] -> Alcotest.(check int) "distance widened" 4 d.Dep.distance
  | _ -> Alcotest.fail "self edge lost");
  let o = Ddg.op ddg acc in
  match o.Op.srcs with
  | [ s ] -> Alcotest.(check int) "operand distance widened" 4 s.Op.distance
  | _ -> Alcotest.fail "operand shape changed"

let test_interleave_divides_recmii () =
  let b = Builder.create machine in
  let s = Builder.vreg b "s" in
  ignore (Builder.add b ~opcode:"fadd" ~dsts:[ s ] ~srcs:[ (s, 1) ] ());
  let ddg = Builder.finish b in
  Alcotest.(check int) "before" 4 (Ims_mii.Recmii.by_mindist ddg);
  Alcotest.(check int) "after x4" 1
    (Ims_mii.Recmii.by_mindist (Optimize.interleave ddg ~factor:4))

let ir_extension_tests =
  [
    Alcotest.test_case "unroll: identity" `Quick test_unroll_identity;
    Alcotest.test_case "unroll: scales" `Quick test_unroll_scales_ops_and_edges;
    Alcotest.test_case "unroll: rejects 0" `Quick test_unroll_rejects_zero;
    Alcotest.test_case "unroll: distance arithmetic" `Quick
      test_unroll_distance_arithmetic;
    Alcotest.test_case "unroll: cross-copy edges" `Quick
      test_unroll_cross_copy_edges;
    QCheck_alcotest.to_alcotest prop_unroll_schedules_validly;
    Alcotest.test_case "interleave: finds reduction" `Quick
      test_interleave_finds_reduction;
    Alcotest.test_case "interleave: skips read accumulators" `Quick
      test_interleave_skips_read_accumulators;
    Alcotest.test_case "interleave: skips predicated" `Quick
      test_interleave_skips_predicated;
    Alcotest.test_case "interleave: widens distance" `Quick
      test_interleave_widens_distance;
    Alcotest.test_case "interleave: divides recmii" `Quick
      test_interleave_divides_recmii;
  ]


(* --- Speculative code motion ------------------------------------------------- *)

let predicated_load_loop () =
  (* guard -> pred_set -> predicated load -> fadd: the load sits behind
     the control dependence. *)
  let b = Builder.create machine in
  let c = Builder.vreg b "c" and p = Builder.vreg b "p" in
  let a = Builder.vreg b "a" and x = Builder.vreg b "x" in
  let y = Builder.vreg b "y" in
  ignore (Builder.add b ~opcode:"fcmp" ~dsts:[ c ] ~srcs:[ (y, 1) ] ());
  ignore (Builder.add b ~opcode:"pred_set" ~dsts:[ p ] ~srcs:[ (c, 0) ] ());
  ignore (Builder.add b ~pred:(p, 0) ~opcode:"load" ~dsts:[ x ] ~srcs:[ (a, 0) ] ());
  ignore (Builder.add b ~opcode:"fadd" ~dsts:[ y ] ~srcs:[ (x, 0) ] ());
  Builder.finish b

let test_speculate_targets_loads_not_stores () =
  let b = Builder.create machine in
  let p = Builder.vreg b "p" and a = Builder.vreg b "a" in
  let x = Builder.vreg b "x" in
  let ld = Builder.add b ~pred:(p, 0) ~opcode:"load" ~dsts:[ x ] ~srcs:[ (a, 0) ] () in
  ignore (Builder.add b ~pred:(p, 0) ~opcode:"store" ~dsts:[] ~srcs:[ (a, 0); (x, 0) ] ());
  let ddg = Builder.finish b in
  Alcotest.(check (list int)) "only the load" [ ld ] (Optimize.speculable ddg)

let test_speculate_keeps_selects_guarded () =
  (* Two predicated writes of the same register: the select idiom. *)
  let b = Builder.create machine in
  let p = Builder.vreg b "p" and q = Builder.vreg b "q" in
  let m = Builder.vreg b "m" in
  ignore (Builder.add b ~pred:(p, 0) ~opcode:"copy" ~dsts:[ m ] ~srcs:[] ());
  ignore (Builder.add b ~pred:(q, 0) ~opcode:"copy" ~dsts:[ m ] ~srcs:[] ());
  Alcotest.(check (list int)) "selects stay guarded" []
    (Optimize.speculable (Builder.finish b))

let test_speculate_drops_control_edge () =
  let ddg = predicated_load_loop () in
  let spec = Optimize.speculate ddg in
  let control_into_load g =
    List.exists
      (fun (d : Dep.t) ->
        d.kind = Dep.Control && not (Ddg.is_pseudo g d.src) && d.dst = 3)
      (Array.to_list g.Ddg.succs |> List.concat)
  in
  Alcotest.(check bool) "guarded before" true (control_into_load ddg);
  Alcotest.(check bool) "unguarded after" false (control_into_load spec);
  Alcotest.(check bool) "predicate operand gone" true
    ((Ddg.op spec 3).Op.pred = None)

let test_speculate_shortens_recurrence () =
  (* The recurrence runs fcmp -> pred_set -> load -> fadd -> (d1) fcmp.
     Speculation cuts pred_set -> load out of the circuit. *)
  let ddg = predicated_load_loop () in
  let before = (Ims_mii.Mii.compute ddg).Ims_mii.Mii.recmii in
  let after = (Ims_mii.Mii.compute (Optimize.speculate ddg)).Ims_mii.Mii.recmii in
  Alcotest.(check bool)
    (Printf.sprintf "recmii shrinks (%d -> %d)" before after)
    true (after < before);
  match (Ims_core.Ims.modulo_schedule (Optimize.speculate ddg)).Ims_core.Ims.schedule with
  | Some s -> Alcotest.(check bool) "still schedules" true (Ims_core.Schedule.verify s = Ok ())
  | None -> Alcotest.fail "speculated loop failed to schedule"

let speculate_tests =
  [
    Alcotest.test_case "speculate: loads not stores" `Quick
      test_speculate_targets_loads_not_stores;
    Alcotest.test_case "speculate: selects stay guarded" `Quick
      test_speculate_keeps_selects_guarded;
    Alcotest.test_case "speculate: drops control edge" `Quick
      test_speculate_drops_control_edge;
    Alcotest.test_case "speculate: shortens recurrence" `Quick
      test_speculate_shortens_recurrence;
  ]


(* --- Rendering --------------------------------------------------------------------- *)

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let test_dot_output_shape () =
  let b = Builder.create machine in
  let x = Builder.vreg b "x" and y = Builder.vreg b "y" in
  ignore (Builder.add b ~opcode:"load" ~dsts:[ x ] ~srcs:[] ());
  ignore (Builder.add b ~opcode:"fmul" ~dsts:[ y ] ~srcs:[ (x, 0) ] ());
  let text = Format.asprintf "%a" Ddg.pp_dot (Builder.finish b) in
  Alcotest.(check bool) "digraph" true (contains text "digraph ddg");
  Alcotest.(check bool) "both nodes" true
    (contains text "n1 [" && contains text "n2 [");
  Alcotest.(check bool) "the flow edge" true (contains text "n1 -> n2")

let test_op_pp_includes_imm_and_pred () =
  let b = Builder.create machine in
  let a = Builder.vreg b "a" and p = Builder.vreg b "p" in
  ignore
    (Builder.add b ~opcode:"aadd" ~imm:24.0 ~pred:(p, 0) ~dsts:[ a ]
       ~srcs:[ (a, 3) ] ());
  let ddg = Builder.finish b in
  let text = Format.asprintf "%a" Op.pp (Ddg.op ddg 1) in
  Alcotest.(check bool) "imm rendered" true (contains text "$24");
  Alcotest.(check bool) "guard rendered" true (contains text "when")

let rendering_tests =
  [
    Alcotest.test_case "dot export shape" `Quick test_dot_output_shape;
    Alcotest.test_case "op pp: imm and pred" `Quick
      test_op_pp_includes_imm_and_pred;
  ]

let tests =
  ( "ir",
    [
      Alcotest.test_case "table 1: flow" `Quick test_delay_flow;
      Alcotest.test_case "table 1: anti" `Quick test_delay_anti;
      Alcotest.test_case "table 1: output" `Quick test_delay_output;
      Alcotest.test_case "table 1: control" `Quick test_delay_control;
      Alcotest.test_case "negative distance rejected" `Quick
        test_negative_distance_rejected;
      Alcotest.test_case "builder: simple flow" `Quick test_builder_simple_flow;
      Alcotest.test_case "builder: loop carried" `Quick test_builder_loop_carried;
      Alcotest.test_case "builder: live-in" `Quick test_builder_live_in_no_edge;
      Alcotest.test_case "builder: use before def" `Quick
        test_builder_use_before_def_rejected;
      Alcotest.test_case "builder: predicated defs both reach" `Quick
        test_builder_predicated_defs_both_reach;
      Alcotest.test_case "builder: unpredicated def kills" `Quick
        test_builder_unpredicated_def_kills;
      Alcotest.test_case "builder: predicate operand" `Quick
        test_builder_pred_operand_control_edge;
      Alcotest.test_case "false deps generated" `Quick test_false_deps_generated;
      Alcotest.test_case "evr removes false deps" `Quick
        test_evr_removes_false_deps;
      Alcotest.test_case "output dep chain" `Quick test_output_deps_chain;
      Alcotest.test_case "ddg: pseudo ops" `Quick test_ddg_pseudo_ops;
      Alcotest.test_case "ddg: stop edge latency" `Quick
        test_ddg_stop_edge_carries_latency;
      Alcotest.test_case "ddg: edge count" `Quick
        test_ddg_edge_count_excludes_pseudo;
      Alcotest.test_case "ddg: retarget machine" `Quick test_ddg_map_machine;
      Alcotest.test_case "ddg: dense ids" `Quick test_ddg_dense_ids_required;
      Alcotest.test_case "if-conversion: diamond" `Quick
        test_if_conversion_diamond;
      Alcotest.test_case "if-conversion: nested guards" `Quick
        test_if_conversion_nested_predicates_guarded;
      QCheck_alcotest.to_alcotest prop_builder_flow_edges_forward;
    ]
    @ ir_extension_tests @ speculate_tests @ rendering_tests )
