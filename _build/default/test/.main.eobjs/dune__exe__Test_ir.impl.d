test/test_ir.ml: Alcotest Array Builder Ddg Dep Evr Format If_conversion Ims_core Ims_ir Ims_machine Ims_mii Ims_workloads List Machine Op Optimize Printf QCheck QCheck_alcotest Random String Unroll
