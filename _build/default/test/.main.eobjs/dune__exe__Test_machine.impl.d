test/test_machine.ml: Alcotest Array Ims_core Ims_ir Ims_machine List Machine Machine_parse Mrt Opcode Printf QCheck QCheck_alcotest Reservation Resource
