test/test_stats.ml: Alcotest Array Distribution Format Gen Ims_mii Ims_stats List QCheck QCheck_alcotest Random Regression String Text_table
