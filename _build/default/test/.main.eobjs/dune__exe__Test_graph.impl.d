test/test_graph.ml: Alcotest Array Circuits Ims_graph List QCheck QCheck_alcotest Scc Topo
