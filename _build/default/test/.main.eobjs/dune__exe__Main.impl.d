test/main.ml: Alcotest Test_core Test_graph Test_integration Test_ir Test_machine Test_mii Test_pipeline Test_stats Test_workloads
