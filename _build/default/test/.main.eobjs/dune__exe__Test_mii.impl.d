test/test_mii.ml: Alcotest Builder Ddg Ims_graph Ims_ir Ims_machine Ims_mii Ims_workloads List Machine Mii Mindist Printf QCheck QCheck_alcotest Random Rational Recmii Resmii
