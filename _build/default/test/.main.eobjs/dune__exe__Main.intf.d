test/main.mli:
