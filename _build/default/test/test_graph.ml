(* Tests for the graph substrate: Tarjan SCC, Johnson circuit enumeration
   and topological utilities, including brute-force cross-checks on random
   graphs. *)

open Ims_graph

let adj edges n v =
  List.filter_map (fun (a, b) -> if a = v then Some b else None) edges
  |> fun l -> if v < n then l else []

(* --- SCC ----------------------------------------------------------------- *)

let test_scc_dag () =
  let r = Scc.compute ~n:4 ~succs:(adj [ (0, 1); (1, 2); (2, 3) ] 4) in
  Alcotest.(check int) "four singleton components" 4 r.Scc.count

let test_scc_cycle () =
  let r = Scc.compute ~n:3 ~succs:(adj [ (0, 1); (1, 2); (2, 0) ] 3) in
  Alcotest.(check int) "one component" 1 r.Scc.count

let test_scc_two_components () =
  let edges = [ (0, 1); (1, 0); (1, 2); (2, 3); (3, 2) ] in
  let r = Scc.compute ~n:4 ~succs:(adj edges 4) in
  Alcotest.(check int) "two non-trivial components" 2 r.Scc.count;
  Alcotest.(check bool)
    "0 and 1 together" true
    (r.Scc.component.(0) = r.Scc.component.(1));
  Alcotest.(check bool)
    "2 and 3 together" true
    (r.Scc.component.(2) = r.Scc.component.(3));
  (* Reverse topological numbering: 0->...->2's component. *)
  Alcotest.(check bool)
    "edge crosses downward" true
    (r.Scc.component.(1) > r.Scc.component.(2))

let test_scc_self_loop_non_trivial () =
  let succs = adj [ (1, 1) ] 3 in
  let r = Scc.compute ~n:3 ~succs in
  let nt = Scc.non_trivial ~succs r in
  Alcotest.(check int) "only the self-loop is a recurrence" 1 (Array.length nt);
  Alcotest.(check (list int)) "it is vertex 1" [ 1 ] nt.(0)

(* Brute force: u and v are in the same SCC iff reachable both ways. *)
let reachable n succs a b =
  let seen = Array.make n false in
  let rec go v =
    if not seen.(v) then begin
      seen.(v) <- true;
      List.iter go (succs v)
    end
  in
  go a;
  seen.(b)

let prop_scc_matches_reachability =
  QCheck.Test.make ~count:200 ~name:"scc agrees with two-way reachability"
    QCheck.(
      pair (int_range 1 10) (small_list (pair (int_range 0 9) (int_range 0 9))))
    (fun (n, edges) ->
      let edges = List.filter (fun (a, b) -> a < n && b < n) edges in
      let succs = adj edges n in
      let r = Scc.compute ~n ~succs in
      let ok = ref true in
      for u = 0 to n - 1 do
        for v = 0 to n - 1 do
          let same = r.Scc.component.(u) = r.Scc.component.(v) in
          let mutual = reachable n succs u v && reachable n succs v u in
          if same <> mutual then ok := false
        done
      done;
      !ok)

(* --- Circuits ------------------------------------------------------------ *)

let sort_circuits cs =
  (* Normalise rotation so circuits compare canonically. *)
  let canon c =
    let m = List.fold_left min max_int c in
    let rec rot = function
      | x :: _ as l when x = m -> l
      | x :: rest -> rot (rest @ [ x ])
      | [] -> []
    in
    rot c
  in
  List.sort compare (List.map canon cs)

let test_circuits_triangle_plus_self () =
  let succs = adj [ (0, 1); (1, 2); (2, 0); (1, 1) ] 3 in
  let cs = Circuits.enumerate ~n:3 succs in
  Alcotest.(check int) "two circuits" 2 (List.length cs);
  Alcotest.(check bool)
    "contains the triangle" true
    (List.mem [ 0; 1; 2 ] (sort_circuits cs));
  Alcotest.(check bool) "contains the self loop" true (List.mem [ 1 ] cs)

let test_circuits_complete_graph () =
  (* K3 has 2 triangles (two orientations... directed complete graph on 3
     vertices: circuits = 3 two-cycles + 2 triangles = 5). *)
  let edges =
    [ (0, 1); (1, 0); (0, 2); (2, 0); (1, 2); (2, 1) ]
  in
  let cs = Circuits.enumerate ~n:3 (adj edges 3) in
  Alcotest.(check int) "K3 has 5 elementary circuits" 5 (List.length cs)

let test_circuits_limit () =
  let edges = [ (0, 1); (1, 0); (0, 2); (2, 0); (1, 2); (2, 1) ] in
  Alcotest.check_raises "limit enforced" Circuits.Limit_exceeded (fun () ->
      ignore (Circuits.enumerate ~limit:3 ~n:3 (adj edges 3)))

let test_circuits_dag_empty () =
  Alcotest.(check int)
    "DAG has no circuits" 0
    (Circuits.count ~n:4 (adj [ (0, 1); (0, 2); (1, 3); (2, 3) ] 4))

(* Brute force enumeration via DFS with explicit path for small graphs. *)
let brute_circuits n succs =
  let out = ref [] in
  (* [path] is reversed (head = current vertex [v]); only vertices greater
     than [start] are entered, so each circuit is found exactly once, from
     its smallest vertex. *)
  let rec extend start path v =
    List.iter
      (fun w ->
        if w = start then out := List.rev path :: !out
        else if w > start && not (List.mem w path) then
          extend start (w :: path) w)
      (succs v)
  in
  for s = 0 to n - 1 do
    extend s [ s ] s
  done;
  !out

let prop_circuits_match_brute_force =
  QCheck.Test.make ~count:150 ~name:"johnson matches brute-force circuits"
    QCheck.(
      pair (int_range 1 6) (small_list (pair (int_range 0 5) (int_range 0 5))))
    (fun (n, edges) ->
      let edges =
        List.sort_uniq compare
          (List.filter (fun (a, b) -> a < n && b < n) edges)
      in
      let succs = adj edges n in
      let johnson = sort_circuits (Circuits.enumerate ~n succs) in
      let brute = sort_circuits (brute_circuits n succs) in
      johnson = brute)

(* --- Topo ---------------------------------------------------------------- *)

let test_topo_dag () =
  match Topo.sort ~n:4 ~succs:(adj [ (0, 1); (0, 2); (1, 3); (2, 3) ] 4) with
  | None -> Alcotest.fail "expected an order"
  | Some order ->
      let pos = Array.make 4 0 in
      List.iteri (fun i v -> pos.(v) <- i) order;
      Alcotest.(check bool) "respects edges" true
        (pos.(0) < pos.(1) && pos.(0) < pos.(2) && pos.(1) < pos.(3)
        && pos.(2) < pos.(3))

let test_topo_cycle_none () =
  Alcotest.(check bool)
    "cycle detected" true
    (Topo.sort ~n:2 ~succs:(adj [ (0, 1); (1, 0) ] 2) = None)

let test_topo_forced_is_permutation () =
  let order =
    Topo.sort_ignoring_cycles ~n:4 ~succs:(adj [ (0, 1); (1, 0); (2, 3) ] 4)
  in
  Alcotest.(check (list int))
    "permutation" [ 0; 1; 2; 3 ]
    (List.sort compare order)

let test_longest_path () =
  let succs v =
    match v with
    | 0 -> [ (1, 2); (2, 10) ]
    | 1 -> [ (3, 2) ]
    | 2 -> [ (3, 1) ]
    | _ -> []
  in
  let dist = Topo.longest_path ~n:4 ~succs ~source:0 in
  Alcotest.(check int) "longest to 3 via 2" 11 dist.(3)

let test_longest_path_unreachable () =
  let dist = Topo.longest_path ~n:3 ~succs:(fun _ -> []) ~source:0 in
  Alcotest.(check bool) "unreachable is min_int" true (dist.(2) = min_int)

let tests =
  ( "graph",
    [
      Alcotest.test_case "scc: dag" `Quick test_scc_dag;
      Alcotest.test_case "scc: cycle" `Quick test_scc_cycle;
      Alcotest.test_case "scc: two components" `Quick test_scc_two_components;
      Alcotest.test_case "scc: self loop" `Quick test_scc_self_loop_non_trivial;
      QCheck_alcotest.to_alcotest prop_scc_matches_reachability;
      Alcotest.test_case "circuits: triangle + self" `Quick
        test_circuits_triangle_plus_self;
      Alcotest.test_case "circuits: K3" `Quick test_circuits_complete_graph;
      Alcotest.test_case "circuits: limit" `Quick test_circuits_limit;
      Alcotest.test_case "circuits: dag" `Quick test_circuits_dag_empty;
      QCheck_alcotest.to_alcotest prop_circuits_match_brute_force;
      Alcotest.test_case "topo: dag order" `Quick test_topo_dag;
      Alcotest.test_case "topo: cycle gives none" `Quick test_topo_cycle_none;
      Alcotest.test_case "topo: forced is a permutation" `Quick
        test_topo_forced_is_permutation;
      Alcotest.test_case "longest path" `Quick test_longest_path;
      Alcotest.test_case "longest path: unreachable" `Quick
        test_longest_path_unreachable;
    ] )
