(* Tests for the statistics substrate: distribution summaries, regression
   fits and table rendering. *)

open Ims_stats

let feq ?(eps = 1e-6) a b = abs_float (a -. b) < eps

(* --- Distribution ------------------------------------------------------------ *)

let test_summary_basic () =
  let s = Distribution.of_ints ~min_possible:1.0 [ 1; 1; 2; 3; 13 ] in
  Alcotest.(check int) "n" 5 s.Distribution.n;
  Alcotest.(check bool) "freq of min" true (feq s.Distribution.freq_of_min 0.4);
  Alcotest.(check bool) "median" true (feq s.Distribution.median 2.0);
  Alcotest.(check bool) "mean" true (feq s.Distribution.mean 4.0);
  Alcotest.(check bool) "max" true (feq s.Distribution.max_seen 13.0)

let test_summary_empty_rejected () =
  Alcotest.(check bool) "empty rejected" true
    (try
       ignore (Distribution.summarize ~min_possible:0.0 []);
       false
     with Invalid_argument _ -> true)

let test_quantile_interpolation () =
  Alcotest.(check bool) "median of even count interpolates" true
    (feq (Distribution.quantile [ 1.0; 2.0; 3.0; 4.0 ] 0.5) 2.5);
  Alcotest.(check bool) "q0 is min" true
    (feq (Distribution.quantile [ 3.0; 1.0; 2.0 ] 0.0) 1.0);
  Alcotest.(check bool) "q1 is max" true
    (feq (Distribution.quantile [ 3.0; 1.0; 2.0 ] 1.0) 3.0)

let test_quantile_single () =
  Alcotest.(check bool) "single sample" true
    (feq (Distribution.quantile [ 42.0 ] 0.5) 42.0)

let test_freq_of_min_uses_min_possible () =
  (* min_possible is the theoretical minimum, not the observed one. *)
  let s = Distribution.of_ints ~min_possible:0.0 [ 1; 2; 3 ] in
  Alcotest.(check bool) "nothing hits the theoretical minimum" true
    (feq s.Distribution.freq_of_min 0.0);
  Alcotest.(check bool) "observed min tracked separately" true
    (feq s.Distribution.min_seen 1.0)

(* --- Regression ----------------------------------------------------------------- *)

let test_fit_through_origin_exact () =
  let pts = List.init 20 (fun i -> (float_of_int (i + 1), 3.0 *. float_of_int (i + 1))) in
  let fit = Regression.fit_through_origin pts in
  Alcotest.(check bool) "slope 3" true (feq fit.Regression.coeffs.(1) 3.0);
  Alcotest.(check bool) "r^2 = 1" true (feq fit.Regression.r_squared 1.0)

let test_fit_affine_exact () =
  let pts = List.init 20 (fun i -> (float_of_int i, 5.0 +. (2.0 *. float_of_int i))) in
  let fit = Regression.fit_affine pts in
  Alcotest.(check bool) "intercept 5" true (feq fit.Regression.coeffs.(0) 5.0);
  Alcotest.(check bool) "slope 2" true (feq fit.Regression.coeffs.(1) 2.0)

let test_fit_quadratic_exact () =
  let f x = 1.0 +. (0.5 *. x) +. (0.25 *. x *. x) in
  let pts = List.init 20 (fun i -> (float_of_int i, f (float_of_int i))) in
  let fit = Regression.fit_quadratic pts in
  Alcotest.(check bool) "c0" true (feq fit.Regression.coeffs.(0) 1.0);
  Alcotest.(check bool) "c1" true (feq fit.Regression.coeffs.(1) 0.5);
  Alcotest.(check bool) "c2" true (feq fit.Regression.coeffs.(2) 0.25);
  Alcotest.(check bool) "residual ~0" true
    (fit.Regression.residual_stddev < 1e-6)

let test_fit_noisy_recovers_slope () =
  let rng = Random.State.make [| 5 |] in
  let pts =
    List.init 200 (fun i ->
        let x = float_of_int (i + 1) in
        (x, (3.0 *. x) +. Random.State.float rng 2.0 -. 1.0))
  in
  let fit = Regression.fit_through_origin pts in
  Alcotest.(check bool) "slope close to 3" true
    (abs_float (fit.Regression.coeffs.(1) -. 3.0) < 0.05)

let test_predict () =
  let fit = Regression.fit_affine [ (0.0, 1.0); (1.0, 3.0); (2.0, 5.0) ] in
  Alcotest.(check bool) "predict 10 -> 21" true (feq (Regression.predict fit 10.0) 21.0)

let test_describe_format () =
  let fit = Regression.fit_through_origin [ (1.0, 3.0); (2.0, 6.0) ] in
  let s = Regression.describe fit in
  Alcotest.(check bool) "mentions N" true
    (String.length s > 0 && String.contains s 'N')

let test_singular_rejected () =
  Alcotest.(check bool) "all-zero x is singular" true
    (try
       ignore (Regression.fit_through_origin [ (0.0, 1.0); (0.0, 2.0) ]);
       false
     with Invalid_argument _ -> true)

(* --- Text tables ------------------------------------------------------------------ *)

let test_table_alignment () =
  let s =
    Text_table.render ~headers:[ "name"; "value" ]
      [ [ "x"; "1" ]; [ "longer"; "22" ] ]
  in
  let lines = String.split_on_char '\n' s |> List.filter (fun l -> l <> "") in
  Alcotest.(check int) "header + rule + 2 rows" 4 (List.length lines);
  (* All lines equally wide (fixed layout). *)
  let widths = List.map String.length lines in
  Alcotest.(check bool) "consistent width" true
    (List.for_all (fun w -> w = List.hd widths || w <= List.hd widths + 1) widths)

let test_table_kv () =
  let s = Text_table.render_kv [ ("a", "1"); ("long-key", "2") ] in
  Alcotest.(check bool) "two lines" true
    (List.length (String.split_on_char '\n' s |> List.filter (fun l -> l <> "")) = 2)

(* Property: for any non-empty sample, min <= median <= mean is false in
   general but min <= median <= max always holds, and freq_of_min is in
   [0, 1]. *)
let prop_summary_invariants =
  QCheck.Test.make ~count:200 ~name:"distribution: summary invariants"
    QCheck.(list_of_size Gen.(int_range 1 50) (int_range 0 100))
    (fun xs ->
      let s = Distribution.of_ints ~min_possible:0.0 xs in
      s.Distribution.min_seen <= s.Distribution.median
      && s.Distribution.median <= s.Distribution.max_seen
      && s.Distribution.freq_of_min >= 0.0
      && s.Distribution.freq_of_min <= 1.0
      && s.Distribution.mean >= s.Distribution.min_seen
      && s.Distribution.mean <= s.Distribution.max_seen)

(* Property: quadratic fit reproduces any exact quadratic. *)
let prop_quadratic_fit_exact =
  QCheck.Test.make ~count:100 ~name:"regression: exact quadratic recovery"
    QCheck.(triple (float_range (-5.0) 5.0) (float_range (-5.0) 5.0)
              (float_range (-2.0) 2.0))
    (fun (a, b, c) ->
      let f x = a +. (b *. x) +. (c *. x *. x) in
      let pts = List.init 12 (fun i -> (float_of_int i, f (float_of_int i))) in
      match Regression.fit_quadratic pts with
      | fit ->
          abs_float (fit.Regression.coeffs.(0) -. a) < 1e-5
          && abs_float (fit.Regression.coeffs.(1) -. b) < 1e-5
          && abs_float (fit.Regression.coeffs.(2) -. c) < 1e-5
      | exception Invalid_argument _ -> true)


(* --- Counters ---------------------------------------------------------------------- *)

let test_counters_add () =
  let a = Ims_mii.Counters.create () in
  let b = Ims_mii.Counters.create () in
  a.Ims_mii.Counters.sched_steps <- 3;
  b.Ims_mii.Counters.sched_steps <- 4;
  b.Ims_mii.Counters.mindist_inner <- 7;
  Ims_mii.Counters.add a b;
  Alcotest.(check int) "summed" 7 a.Ims_mii.Counters.sched_steps;
  Alcotest.(check int) "other fields too" 7 a.Ims_mii.Counters.mindist_inner;
  Alcotest.(check int) "source untouched" 4 b.Ims_mii.Counters.sched_steps

let test_counters_pp () =
  let c = Ims_mii.Counters.create () in
  let s = Format.asprintf "%a" Ims_mii.Counters.pp c in
  Alcotest.(check bool) "renders" true (String.length s > 10)

let stats_extension_tests =
  [
    Alcotest.test_case "counters: add" `Quick test_counters_add;
    Alcotest.test_case "counters: pp" `Quick test_counters_pp;
  ]

let tests =
  ( "stats",
    [
      Alcotest.test_case "summary: basic" `Quick test_summary_basic;
      Alcotest.test_case "summary: empty" `Quick test_summary_empty_rejected;
      Alcotest.test_case "quantile: interpolation" `Quick
        test_quantile_interpolation;
      Alcotest.test_case "quantile: single" `Quick test_quantile_single;
      Alcotest.test_case "freq of min possible" `Quick
        test_freq_of_min_uses_min_possible;
      Alcotest.test_case "fit: through origin" `Quick test_fit_through_origin_exact;
      Alcotest.test_case "fit: affine" `Quick test_fit_affine_exact;
      Alcotest.test_case "fit: quadratic" `Quick test_fit_quadratic_exact;
      Alcotest.test_case "fit: noisy slope" `Quick test_fit_noisy_recovers_slope;
      Alcotest.test_case "fit: predict" `Quick test_predict;
      Alcotest.test_case "fit: describe" `Quick test_describe_format;
      Alcotest.test_case "fit: singular" `Quick test_singular_rejected;
      Alcotest.test_case "table: alignment" `Quick test_table_alignment;
      Alcotest.test_case "table: kv" `Quick test_table_kv;
      QCheck_alcotest.to_alcotest prop_summary_invariants;
      QCheck_alcotest.to_alcotest prop_quadratic_fit_exact;
    ]
    @ stats_extension_tests )
