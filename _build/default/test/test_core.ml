(* Tests for the scheduler: HeightR, acyclic list scheduling, the schedule
   verifier, FindTimeSlot behaviour, displacement, budget exhaustion, and
   end-to-end properties on random loops. *)

open Ims_machine
open Ims_ir
open Ims_core
open Ims_mii

let machine = Machine.cydra5 ()
let vliw = Machine.simple_vliw ()

let chain_ddg m =
  (* load -> fmul -> fadd chain. *)
  let b = Builder.create m in
  let x = Builder.vreg b "x" and y = Builder.vreg b "y" and z = Builder.vreg b "z" in
  ignore (Builder.add b ~opcode:"load" ~dsts:[ x ] ~srcs:[] ());
  ignore (Builder.add b ~opcode:"fmul" ~dsts:[ y ] ~srcs:[ (x, 0) ] ());
  ignore (Builder.add b ~opcode:"fadd" ~dsts:[ z ] ~srcs:[ (y, 0) ] ());
  Builder.finish b

let reduction_ddg m =
  let b = Builder.create m in
  let s = Builder.vreg b "s" and v = Builder.vreg b "v" in
  let x = Builder.vreg b "x" in
  ignore (Builder.add b ~opcode:"load" ~dsts:[ v ] ~srcs:[] ());
  ignore (Builder.add b ~opcode:"fmul" ~dsts:[ x ] ~srcs:[ (v, 0) ] ());
  ignore (Builder.add b ~opcode:"fadd" ~dsts:[ s ] ~srcs:[ (s, 1); (x, 0) ] ());
  Builder.finish b

(* --- HeightR ---------------------------------------------------------------- *)

let test_heightr_chain () =
  let ddg = chain_ddg machine in
  let h = Priority.heights ddg ~ii:1 in
  (* STOP = 0; fadd = 4; fmul = 4 + 5; load = 9 + 20; START = 29. *)
  Alcotest.(check int) "stop" 0 h.(Ddg.stop ddg);
  Alcotest.(check int) "fadd" 4 h.(3);
  Alcotest.(check int) "fmul" 9 h.(2);
  Alcotest.(check int) "load" 29 h.(1);
  Alcotest.(check int) "start highest" 29 h.(0)

let test_heightr_ii_discounts_recurrence () =
  let ddg = reduction_ddg machine in
  let h4 = Priority.heights ddg ~ii:4 in
  let h8 = Priority.heights ddg ~ii:8 in
  (* The self edge contributes delay - ii; at larger ii heights can only
     shrink or stay. *)
  Alcotest.(check bool) "heights non-increasing in ii" true
    (Array.for_all2 ( >= ) h4 h8)

let test_heightr_diverges_below_recmii () =
  let ddg = reduction_ddg machine in
  (* RecMII is 4; at ii = 3 the self circuit has positive weight. *)
  Alcotest.(check bool) "raises below recmii" true
    (try
       ignore (Priority.heights ddg ~ii:3);
       false
     with Invalid_argument _ -> true)

let test_acyclic_heights_ignore_distance () =
  let ddg = reduction_ddg machine in
  let h = Priority.acyclic_heights ddg in
  (* fadd's self edge is inter-iteration: ignored. fadd height = 4. *)
  Alcotest.(check int) "fadd height" 4 h.(3)

(* --- Acyclic list scheduling ------------------------------------------------- *)

let test_list_sched_chain_length () =
  let ddg = chain_ddg machine in
  (* Critical path 20 + 5 + 4 = 29; list scheduling achieves it. *)
  Alcotest.(check int) "chain schedule length" 29
    (List_sched.schedule_length ddg)

let test_list_sched_valid () =
  let ddg = chain_ddg machine in
  match Schedule.verify (List_sched.schedule ddg) with
  | Ok () -> ()
  | Error es -> Alcotest.failf "invalid: %s" (String.concat "; " es)

let test_list_sched_respects_resources () =
  (* Three stores on one memory-port pair cannot all issue at cycle 0. *)
  let b = Builder.create machine in
  for i = 0 to 2 do
    ignore
      (Builder.add b ~opcode:"store" ~dsts:[]
         ~srcs:[ (Builder.vreg b (Printf.sprintf "v%d" i), 0) ] ())
  done;
  let ddg = Builder.finish b in
  let s = List_sched.schedule ddg in
  let times = List.map (Schedule.time s) (Ddg.real_ids ddg) in
  Alcotest.(check (list int)) "two at 0, one at 1" [ 0; 0; 1 ]
    (List.sort compare times)

(* --- IterativeSchedule / ModuloSchedule -------------------------------------- *)

let test_ims_achieves_mii_on_chain () =
  let ddg = chain_ddg machine in
  let out = Ims.modulo_schedule ddg in
  Alcotest.(check int) "ii = mii" out.Ims.mii.Mii.mii out.Ims.ii;
  match out.Ims.schedule with
  | Some s -> (
      match Schedule.verify s with
      | Ok () -> ()
      | Error es -> Alcotest.failf "invalid: %s" (String.concat "; " es))
  | None -> Alcotest.fail "no schedule"

let test_ims_reduction_ii_four () =
  let out = Ims.modulo_schedule (reduction_ddg machine) in
  Alcotest.(check int) "recurrence-bound ii" 4 out.Ims.ii

let test_ims_budget_one_fails_on_hard_loop () =
  (* With an absurdly small budget the first candidate II must fail and
     the driver must still terminate with a (larger) II. *)
  let ddg = reduction_ddg machine in
  let counters = Counters.create () in
  let sched = Ims.iterative_schedule ~counters ddg ~ii:4 ~budget:2 in
  Alcotest.(check bool) "budget 2 cannot place 5 ops" true (sched = None)

let test_ims_steps_accounting () =
  let ddg = chain_ddg machine in
  let out = Ims.modulo_schedule ddg in
  Alcotest.(check bool) "final steps present" true (out.Ims.steps_final > 0);
  Alcotest.(check bool) "total >= final" true
    (out.Ims.steps_total >= out.Ims.steps_final);
  Alcotest.(check int) "one attempt on an easy loop" 1 out.Ims.attempts

let test_ims_simple_loop_schedules_each_op_once () =
  (* A vectorizable loop in topological priority order: the scheduling
     inefficiency must be exactly 1 (section 3.2's first property of
     HeightR). *)
  let ddg = chain_ddg machine in
  let out = Ims.modulo_schedule ddg in
  Alcotest.(check int) "steps = ops" (Ddg.n_total ddg) out.Ims.steps_final

let test_ims_displacement_recovers () =
  (* Saturate the multiplier: 3 fmuls + a divide; forced displacement must
     still converge to a valid schedule. *)
  let b = Builder.create machine in
  for i = 0 to 2 do
    ignore
      (Builder.add b ~opcode:"fmul"
         ~dsts:[ Builder.vreg b (Printf.sprintf "m%d" i) ] ~srcs:[] ())
  done;
  ignore (Builder.add b ~opcode:"fdiv" ~dsts:[ Builder.vreg b "q" ] ~srcs:[] ());
  let ddg = Builder.finish b in
  let out = Ims.modulo_schedule ~budget_ratio:6.0 ddg in
  match out.Ims.schedule with
  | Some s -> (
      match Schedule.verify s with
      | Ok () -> ()
      | Error es -> Alcotest.failf "invalid: %s" (String.concat "; " es))
  | None -> Alcotest.fail "no schedule found"

let test_schedule_kernel_rows () =
  let ddg = chain_ddg machine in
  let out = Ims.modulo_schedule ddg in
  match out.Ims.schedule with
  | None -> Alcotest.fail "no schedule"
  | Some s ->
      let rows = Schedule.kernel_rows s in
      Alcotest.(check int) "ii rows" s.Schedule.ii (Array.length rows);
      let total = Array.fold_left (fun a r -> a + List.length r) 0 rows in
      Alcotest.(check int) "all real ops in the kernel" (Ddg.n_real ddg) total

let test_schedule_stage_count () =
  let ddg = chain_ddg machine in
  let out = Ims.modulo_schedule ddg in
  match out.Ims.schedule with
  | None -> Alcotest.fail "no schedule"
  | Some s ->
      let stages = Schedule.stage_count s in
      let latest_issue =
        List.fold_left (fun acc i -> max acc (Schedule.time s i)) 0
          (Ddg.real_ids ddg)
      in
      Alcotest.(check int) "stages = floor(latest issue / ii) + 1"
        ((latest_issue / s.Schedule.ii) + 1)
        stages

(* --- The verifier itself ------------------------------------------------------ *)

let test_verify_catches_dependence_violation () =
  let ddg = chain_ddg machine in
  let entries =
    Array.init (Ddg.n_total ddg) (fun i ->
        { Schedule.time = i; alt = 0 })
  in
  (* fmul at cycle 2 reads the load of cycle 1: 19 cycles too early. *)
  let s = Schedule.make ddg ~ii:50 ~entries in
  match Schedule.verify s with
  | Ok () -> Alcotest.fail "verifier accepted a bogus schedule"
  | Error es -> Alcotest.(check bool) "reports violations" true (es <> [])

let test_verify_catches_resource_violation () =
  let b = Builder.create machine in
  ignore (Builder.add b ~opcode:"fadd" ~dsts:[ Builder.vreg b "a" ] ~srcs:[] ());
  ignore (Builder.add b ~opcode:"fadd" ~dsts:[ Builder.vreg b "b" ] ~srcs:[] ());
  let ddg = Builder.finish b in
  let entries =
    [| { Schedule.time = 0; alt = 0 }; { Schedule.time = 0; alt = 0 };
       { Schedule.time = 0; alt = 0 }; { Schedule.time = 10; alt = 0 } |]
  in
  (* Both fadds at cycle 0 on the single adder. *)
  let s = Schedule.make ddg ~ii:20 ~entries in
  match Schedule.verify s with
  | Ok () -> Alcotest.fail "verifier accepted an oversubscription"
  | Error _ -> ()

(* --- Properties over random loops --------------------------------------------- *)

let random_loop machine seed =
  let rng = Random.State.make [| seed; 3 |] in
  Ims_workloads.Synthetic.generate machine rng

let prop_schedule_valid =
  QCheck.Test.make ~count:120 ~name:"ims: schedules verify on random loops"
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let ddg = random_loop machine seed in
      match (Ims.modulo_schedule ddg).Ims.schedule with
      | Some s -> Schedule.verify s = Ok ()
      | None -> false)

let prop_ii_at_least_mii =
  QCheck.Test.make ~count:120 ~name:"ims: achieved ii >= mii"
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let ddg = random_loop machine seed in
      let out = Ims.modulo_schedule ddg in
      out.Ims.ii >= out.Ims.mii.Mii.mii)

let prop_sl_at_least_critical_path =
  QCheck.Test.make ~count:60 ~name:"ims: schedule length >= critical path"
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let ddg = random_loop machine seed in
      let out = Ims.modulo_schedule ddg in
      match out.Ims.schedule with
      | None -> false
      | Some s ->
          let md = Mindist.full ddg ~ii:out.Ims.ii in
          Schedule.length s >= Mindist.get md Ddg.start (Ddg.stop ddg))

let prop_valid_on_simple_vliw =
  QCheck.Test.make ~count:60 ~name:"ims: valid on the simple vliw too"
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      (* Integer-only loops so the simple machine can run them. *)
      let b = Builder.create vliw in
      let rng = Random.State.make [| seed |] in
      let n = 2 + Random.State.int rng 12 in
      let pool = ref [ Builder.vreg b "c" ] in
      for i = 0 to n - 1 do
        let pick () = List.nth !pool (Random.State.int rng (List.length !pool)) in
        let r = Builder.vreg b (Printf.sprintf "r%d" i) in
        let carried = Random.State.int rng 5 = 0 in
        let srcs =
          if carried then [ (r, 1); (pick (), 0) ] else [ (pick (), 0) ]
        in
        let opcode = if Random.State.bool rng then "add" else "mul" in
        ignore (Builder.add b ~opcode ~dsts:[ r ] ~srcs ());
        pool := r :: !pool
      done;
      let ddg = Builder.finish b in
      match (Ims.modulo_schedule ddg).Ims.schedule with
      | Some s -> Schedule.verify s = Ok ()
      | None -> false)



(* --- The lifetime-sensitive (Huff) scheduler ---------------------------------- *)

let test_slack_valid_on_chain () =
  let ddg = chain_ddg machine in
  match (Slack.modulo_schedule ddg).Ims.schedule with
  | Some s -> Alcotest.(check bool) "valid" true (Schedule.verify s = Ok ())
  | None -> Alcotest.fail "no schedule"

let test_slack_achieves_mii_on_chain () =
  let ddg = chain_ddg machine in
  let out = Slack.modulo_schedule ddg in
  Alcotest.(check int) "ii = mii" out.Ims.mii.Mii.mii out.Ims.ii

let test_slack_recurrence () =
  let out = Slack.modulo_schedule (reduction_ddg machine) in
  Alcotest.(check int) "recurrence-bound ii" 4 out.Ims.ii

let test_slack_budget_respected () =
  let ddg = reduction_ddg machine in
  let counters = Counters.create () in
  let out = Slack.modulo_schedule ~budget_ratio:6.0 ~counters ddg in
  Alcotest.(check bool) "steps bounded" true
    (out.Ims.steps_final <= 6 * Ddg.n_total ddg)

let prop_slack_valid_and_parity =
  QCheck.Test.make ~count:60
    ~name:"slack: valid schedules, II within +2 of ims"
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let ddg = random_loop machine seed in
      let a = Ims.modulo_schedule ddg in
      let b = Slack.modulo_schedule ddg in
      match (a.Ims.schedule, b.Ims.schedule) with
      | Some _, Some sb ->
          Schedule.verify sb = Ok () && b.Ims.ii <= a.Ims.ii + 2
      | _ -> false)

let core_extension_tests =
  [
    Alcotest.test_case "slack: valid on chain" `Quick test_slack_valid_on_chain;
    Alcotest.test_case "slack: mii on chain" `Quick
      test_slack_achieves_mii_on_chain;
    Alcotest.test_case "slack: recurrence" `Quick test_slack_recurrence;
    Alcotest.test_case "slack: budget" `Quick test_slack_budget_respected;
    QCheck_alcotest.to_alcotest prop_slack_valid_and_parity;
  ]


(* --- Swing modulo scheduling ---------------------------------------------------- *)

let test_sms_valid_on_chain () =
  let ddg = chain_ddg machine in
  match (Sms.modulo_schedule ddg).Ims.schedule with
  | Some s -> Alcotest.(check bool) "valid" true (Schedule.verify s = Ok ())
  | None -> Alcotest.fail "no schedule"

let test_sms_achieves_mii_on_chain () =
  let out = Sms.modulo_schedule (chain_ddg machine) in
  Alcotest.(check int) "ii = mii" out.Ims.mii.Mii.mii out.Ims.ii

let test_sms_reduction () =
  let out = Sms.modulo_schedule (reduction_ddg machine) in
  Alcotest.(check int) "recurrence-bound ii" 4 out.Ims.ii

let test_sms_ordering_is_permutation () =
  let ddg = reduction_ddg machine in
  let order = Sms.ordering ddg ~ii:4 in
  Alcotest.(check (list int)) "covers every real op once"
    (Ddg.real_ids ddg) (List.sort compare order)

let test_sms_ordering_seeds_critical () =
  (* The recurrence member (the fadd, op 3) has no slack: ordered
     first. *)
  let ddg = reduction_ddg machine in
  match Sms.ordering ddg ~ii:4 with
  | first :: _ -> Alcotest.(check int) "critical seed" 3 first
  | [] -> Alcotest.fail "empty ordering"

let test_sms_schedules_each_op_once () =
  (* No backtracking: steps at the successful II = operations placed
     (START and STOP included). *)
  let ddg = chain_ddg machine in
  let out = Sms.modulo_schedule ddg in
  Alcotest.(check int) "one step per op" (Ddg.n_total ddg) out.Ims.steps_final

let prop_sms_valid =
  QCheck.Test.make ~count:60 ~name:"sms: schedules verify when found"
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let ddg = random_loop machine seed in
      match (Sms.modulo_schedule ~max_delta_ii:64 ddg).Ims.schedule with
      | Some s -> Schedule.verify s = Ok ()
      | None -> true (* no-backtracking SMS may fail; validity is the claim *))

let sms_tests =
  [
    Alcotest.test_case "sms: valid on chain" `Quick test_sms_valid_on_chain;
    Alcotest.test_case "sms: mii on chain" `Quick test_sms_achieves_mii_on_chain;
    Alcotest.test_case "sms: reduction" `Quick test_sms_reduction;
    Alcotest.test_case "sms: ordering permutation" `Quick
      test_sms_ordering_is_permutation;
    Alcotest.test_case "sms: critical seed" `Quick test_sms_ordering_seeds_critical;
    Alcotest.test_case "sms: one step per op" `Quick
      test_sms_schedules_each_op_once;
    QCheck_alcotest.to_alcotest prop_sms_valid;
  ]


(* --- Gantt rendering ---------------------------------------------------------------- *)

let test_gantt_renders_all_resources () =
  let ddg = chain_ddg machine in
  match (Ims.modulo_schedule ddg).Ims.schedule with
  | None -> Alcotest.fail "no schedule"
  | Some s ->
      let text = Format.asprintf "%a" Schedule.pp_gantt s in
      let contains needle =
        let nh = String.length text and nn = String.length needle in
        let rec go i =
          i + nn <= nh && (String.sub text i nn = needle || go (i + 1))
        in
        go 0
      in
      Array.iter
        (fun (r : Ims_machine.Resource.t) ->
          Alcotest.(check bool) (r.name ^ " row present") true (contains r.name))
        ddg.Ddg.machine.Ims_machine.Machine.resources

let gantt_tests =
  [ Alcotest.test_case "gantt: all resources" `Quick test_gantt_renders_all_resources ]

let tests =
  ( "core",
    [
      Alcotest.test_case "heightr: chain" `Quick test_heightr_chain;
      Alcotest.test_case "heightr: ii discount" `Quick
        test_heightr_ii_discounts_recurrence;
      Alcotest.test_case "heightr: diverges below recmii" `Quick
        test_heightr_diverges_below_recmii;
      Alcotest.test_case "heightr: acyclic variant" `Quick
        test_acyclic_heights_ignore_distance;
      Alcotest.test_case "list sched: chain length" `Quick
        test_list_sched_chain_length;
      Alcotest.test_case "list sched: valid" `Quick test_list_sched_valid;
      Alcotest.test_case "list sched: resources" `Quick
        test_list_sched_respects_resources;
      Alcotest.test_case "ims: mii on chain" `Quick test_ims_achieves_mii_on_chain;
      Alcotest.test_case "ims: reduction ii" `Quick test_ims_reduction_ii_four;
      Alcotest.test_case "ims: budget exhaustion" `Quick
        test_ims_budget_one_fails_on_hard_loop;
      Alcotest.test_case "ims: steps accounting" `Quick test_ims_steps_accounting;
      Alcotest.test_case "ims: one pass on simple loops" `Quick
        test_ims_simple_loop_schedules_each_op_once;
      Alcotest.test_case "ims: displacement recovers" `Quick
        test_ims_displacement_recovers;
      Alcotest.test_case "schedule: kernel rows" `Quick test_schedule_kernel_rows;
      Alcotest.test_case "schedule: stage count" `Quick test_schedule_stage_count;
      Alcotest.test_case "verify: dependence violation" `Quick
        test_verify_catches_dependence_violation;
      Alcotest.test_case "verify: resource violation" `Quick
        test_verify_catches_resource_violation;
      QCheck_alcotest.to_alcotest prop_schedule_valid;
      QCheck_alcotest.to_alcotest prop_ii_at_least_mii;
      QCheck_alcotest.to_alcotest prop_sl_at_least_critical_path;
      QCheck_alcotest.to_alcotest prop_valid_on_simple_vliw;
    ]
    @ core_extension_tests @ sms_tests @ gantt_tests )
