(** Streaming synthetic corpus generation in the {!Loop_bin} format.

    Loop [i] is a pure function of [(seed, i)] — its own
    [Random.State.make [| seed; i + 1 |]] feeds {!Synthetic.generate} —
    so any prefix or residue class of a corpus is reproducible
    independently of which other records are generated.  Generation
    materialises one loop at a time. *)

open Ims_machine
open Ims_ir

val loop_name : int -> string
(** ["syn%07d"] of the 1-based index; [loop_name 0 = "syn0000001"]. *)

val build : Machine.t -> seed:int -> int -> string * Ddg.t
(** [build machine ~seed i] is corpus record [i] (0-based). *)

val generate :
  ?shard:int * int ->
  ?progress:(index:int -> written:int -> unit) ->
  Machine.t ->
  seed:int ->
  count:int ->
  path:string ->
  int
(** Writes loops [0 .. count-1] to [path]; with [~shard:(i, n)]
    (1-based [i]) only the residue class [g mod n = i - 1].  [progress]
    fires after each written record with the global index and running
    count.  Returns the number of records written.
    @raise Invalid_argument on an out-of-range shard. *)
