open Ims_machine
open Ims_ir

(* Binary loop wire format.

   A corpus file is a fixed 8-byte header — 4-byte magic "ILBC" plus a
   little-endian u32 format version — followed by length-prefixed
   records.  Each record frame is

     u32 payload_length | u32 crc32(payload) | payload

   so a reader can skip, shard or stream without decoding, and a torn
   or bit-flipped record is rejected with the byte offset of the
   damage, mirroring Append_log's torn-tail discipline on the journal
   side.

   The payload encodes one named loop at the builder-DSL level: the
   operation list (opcode, dsts, srcs with iteration distances,
   predicate, immediate, tag) plus exactly the dependence edges the
   builder cannot re-derive from the operations (Loop_dump.derivable).
   Decoding replays the loop through Builder, so decode . encode is the
   identity at the Loop_dump.dump level and the resulting graph carries
   machine-validated opcodes and delays. *)

exception Corrupt of { offset : int; reason : string }

let corrupt offset fmt =
  Format.kasprintf (fun reason -> raise (Corrupt { offset; reason })) fmt

let () =
  Printexc.register_printer (function
    | Corrupt { offset; reason } ->
        Some
          (Printf.sprintf "corrupt loop record at byte %d: %s" offset
             reason)
    | _ -> None)

let magic = "ILBC"
let format_version = 1
let header_bytes = 8
let frame_bytes = 8

(* Corrupt length words must not trigger giant allocations: no sane
   loop record approaches this. *)
let max_record_bytes = 1 lsl 24

(* CRC-32 (IEEE 802.3, the zlib polynomial), table-driven. *)
let crc_table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref (Int32.of_int n) in
         for _ = 0 to 7 do
           c :=
             if Int32.logand !c 1l <> 0l then
               Int32.logxor 0xedb88320l (Int32.shift_right_logical !c 1)
             else Int32.shift_right_logical !c 1
         done;
         !c))

let crc32 s =
  let t = Lazy.force crc_table in
  let c = ref 0xffffffffl in
  String.iter
    (fun ch ->
      let i =
        Int32.to_int
          (Int32.logand
             (Int32.logxor !c (Int32.of_int (Char.code ch)))
             0xffl)
      in
      c := Int32.logxor t.(i) (Int32.shift_right_logical !c 8))
    s;
  Int32.logxor !c 0xffffffffl

(* -- encoding ------------------------------------------------------- *)

let add_u8 buf v = Buffer.add_uint8 buf v
let add_u16 buf v = Buffer.add_uint16_le buf v
let add_u32 buf v = Buffer.add_int32_le buf (Int32.of_int v)

let add_str8 buf s =
  if String.length s > 255 then
    invalid_arg "Loop_bin.encode: string longer than 255 bytes";
  add_u8 buf (String.length s);
  Buffer.add_string buf s

let add_str16 buf s =
  if String.length s > 0xffff then
    invalid_arg "Loop_bin.encode: string longer than 65535 bytes";
  add_u16 buf (String.length s);
  Buffer.add_string buf s

let add_operand buf (o : Op.operand) =
  add_u32 buf o.reg;
  add_u32 buf o.distance

let kind_code = function
  | Dep.Flow -> 0
  | Dep.Anti -> 1
  | Dep.Output -> 2
  | Dep.Control -> 3

let kind_of_code offset = function
  | 0 -> Dep.Flow
  | 1 -> Dep.Anti
  | 2 -> Dep.Output
  | 3 -> Dep.Control
  | c -> corrupt offset "unknown dependence kind code %d" c

let model_code = function Dep.Vliw -> 0 | Dep.Conservative -> 1

let model_of_code offset = function
  | 0 -> Dep.Vliw
  | 1 -> Dep.Conservative
  | c -> corrupt offset "unknown latency model code %d" c

let encode ~name (ddg : Ddg.t) =
  let buf = Buffer.create 512 in
  add_str16 buf name;
  add_u8 buf (model_code ddg.Ddg.model);
  let real = Ddg.real_ids ddg in
  (* Builder numbers virtual registers densely from 0 in creation
     order; recording the count lets the decoder pre-create them so
     the rebuilt graph carries the original register ids, not a
     use-order renumbering — decode . encode is the identity down to
     Loop_dump.dump bytes. *)
  let nregs =
    List.fold_left
      (fun acc i ->
        let o = Ddg.op ddg i in
        let m1 = List.fold_left (fun a r -> max a (r + 1)) acc o.Op.dsts in
        let m2 =
          List.fold_left
            (fun a (s : Op.operand) -> max a (s.reg + 1))
            m1 o.Op.srcs
        in
        match o.Op.pred with
        | Some p -> max m2 (p.Op.reg + 1)
        | None -> m2)
      0 real
  in
  add_u32 buf nregs;
  let n = List.length real in
  if n > 0xffff then invalid_arg "Loop_bin.encode: too many operations";
  add_u16 buf n;
  List.iter
    (fun i ->
      let o = Ddg.op ddg i in
      add_str8 buf o.Op.opcode;
      if List.length o.Op.dsts > 255 || List.length o.Op.srcs > 255 then
        invalid_arg "Loop_bin.encode: too many operands";
      add_u8 buf (List.length o.Op.dsts);
      List.iter (add_u32 buf) o.Op.dsts;
      add_u8 buf (List.length o.Op.srcs);
      List.iter (add_operand buf) o.Op.srcs;
      (match o.Op.pred with
      | None -> add_u8 buf 0
      | Some p ->
          add_u8 buf 1;
          add_operand buf p);
      (match o.Op.imm with
      | None -> add_u8 buf 0
      | Some v ->
          add_u8 buf 1;
          Buffer.add_int64_le buf (Int64.bits_of_float v));
      add_str16 buf o.Op.tag)
    real;
  (* Only edges the builder cannot re-derive travel on the wire — the
     same selection Loop_dump makes for the textual form. *)
  let stop = Ddg.stop ddg in
  let deps = Buffer.create 64 in
  let ndeps = ref 0 in
  Array.iter
    (fun edges ->
      List.iter
        (fun (d : Dep.t) ->
          if
            (not (d.src = Ddg.start || d.dst = stop || d.src = stop))
            && not (Loop_dump.derivable ddg d)
          then begin
            add_u8 deps (kind_code d.kind);
            add_u32 deps d.src;
            add_u32 deps d.dst;
            add_u32 deps d.distance;
            incr ndeps
          end)
        edges)
    ddg.Ddg.succs;
  add_u32 buf !ndeps;
  Buffer.add_buffer buf deps;
  Buffer.contents buf

(* -- decoding ------------------------------------------------------- *)

type reader = { s : string; base : int; mutable pos : int }

let need r n what =
  if r.pos + n > String.length r.s then
    corrupt (r.base + r.pos) "truncated %s (need %d bytes, have %d)" what
      n
      (String.length r.s - r.pos)

let get_u8 r what =
  need r 1 what;
  let v = String.get_uint8 r.s r.pos in
  r.pos <- r.pos + 1;
  v

let get_u16 r what =
  need r 2 what;
  let v = String.get_uint16_le r.s r.pos in
  r.pos <- r.pos + 2;
  v

let get_u32 r what =
  need r 4 what;
  let v = Int32.to_int (String.get_int32_le r.s r.pos) in
  r.pos <- r.pos + 4;
  if v < 0 then corrupt (r.base + r.pos - 4) "implausible %s %d" what v;
  v

let get_i64 r what =
  need r 8 what;
  let v = String.get_int64_le r.s r.pos in
  r.pos <- r.pos + 8;
  v

let get_str r len what =
  need r len what;
  let s = String.sub r.s r.pos len in
  r.pos <- r.pos + len;
  s

let get_str8 r what = get_str r (get_u8 r what) what
let get_str16 r what = get_str r (get_u16 r what) what

let get_operand r what =
  let reg = get_u32 r what in
  let distance = get_u32 r what in
  { Op.reg; distance }

let decode ?(base = 0) machine payload =
  let r = { s = payload; base; pos = 0 } in
  let name = get_str16 r "loop name" in
  let model = model_of_code (base + r.pos) (get_u8 r "latency model") in
  let b = Builder.create ~model machine in
  let nregs = get_u32 r "register count" in
  if nregs > max_record_bytes then
    corrupt (base + r.pos - 4) "implausible register count %d" nregs;
  let regs =
    Array.init nregs (fun k -> Builder.vreg b (Printf.sprintf "v%d" k))
  in
  let vreg reg =
    if reg >= nregs then
      corrupt (base + r.pos) "register v%d out of range (%d declared)"
        reg nregs
    else regs.(reg)
  in
  let operand what =
    let o = get_operand r what in
    (vreg o.Op.reg, o.Op.distance)
  in
  let nops = get_u16 r "operation count" in
  let refs =
    Array.init nops (fun _ ->
        let at = base + r.pos in
        let opcode = get_str8 r "opcode" in
        let ndsts = get_u8 r "destination count" in
        let dsts = List.init ndsts (fun _ -> vreg (get_u32 r "dst reg")) in
        let nsrcs = get_u8 r "source count" in
        let srcs = List.init nsrcs (fun _ -> operand "src operand") in
        let pred =
          match get_u8 r "predicate flag" with
          | 0 -> None
          | 1 -> Some (operand "predicate")
          | f -> corrupt (base + r.pos - 1) "bad predicate flag %d" f
        in
        let imm =
          match get_u8 r "immediate flag" with
          | 0 -> None
          | 1 -> Some (Int64.float_of_bits (get_i64 r "immediate"))
          | f -> corrupt (base + r.pos - 1) "bad immediate flag %d" f
        in
        let tag = get_str16 r "tag" in
        try Builder.add b ~tag ?pred ?imm ~opcode ~dsts ~srcs ()
        with Machine.Unknown_opcode op ->
          corrupt at "opcode %S not in machine" op)
  in
  let ndeps = get_u32 r "dependence count" in
  for _ = 1 to ndeps do
    let at = base + r.pos in
    let kind = kind_of_code at (get_u8 r "dependence kind") in
    let src = get_u32 r "dependence src" in
    let dst = get_u32 r "dependence dst" in
    let distance = get_u32 r "dependence distance" in
    let get what i =
      if i < 1 || i > nops then
        corrupt at "dependence %s %d out of range 1..%d" what i nops
      else refs.(i - 1)
    in
    Builder.mem_dep b ~distance kind ~src:(get "src" src)
      ~dst:(get "dst" dst)
  done;
  if r.pos <> String.length payload then
    corrupt (base + r.pos) "%d trailing bytes after record body"
      (String.length payload - r.pos);
  (name, Builder.finish b)

(* -- file writer ---------------------------------------------------- *)

type writer = { oc : out_channel; wbuf : Buffer.t }

let create_writer path =
  let oc = open_out_bin path in
  let wbuf = Buffer.create (1 lsl 16) in
  Buffer.add_string wbuf magic;
  Buffer.add_int32_le wbuf (Int32.of_int format_version);
  { oc; wbuf }

let write w ~name ddg =
  let payload = encode ~name ddg in
  add_u32 w.wbuf (String.length payload);
  Buffer.add_int32_le w.wbuf (crc32 payload);
  Buffer.add_string w.wbuf payload;
  (* Flush in coarse chunks: the stream is append-only and readers only
     consume completed files, so buffering is purely a syscall saver. *)
  if Buffer.length w.wbuf >= 1 lsl 16 then begin
    Buffer.output_buffer w.oc w.wbuf;
    Buffer.clear w.wbuf
  end

let close_writer w =
  Buffer.output_buffer w.oc w.wbuf;
  Buffer.clear w.wbuf;
  close_out w.oc

(* -- streaming cursor ----------------------------------------------- *)

type record = {
  index : int;  (** 0-based position of the record in its file. *)
  offset : int;  (** Absolute byte offset of the record's frame. *)
  name : string;
  payload : string;
}

type cursor = {
  ic : in_channel;
  mutable off : int;
  mutable idx : int;
}

let read_exact ic buf n =
  (* [really_input] raises on EOF; we need the partial count. *)
  let got = ref 0 in
  (try
     while !got < n do
       let k = input ic buf !got (n - !got) in
       if k = 0 then raise Exit else got := !got + k
     done
   with Exit | End_of_file -> ());
  !got

let open_corpus path =
  let ic = open_in_bin path in
  let hdr = Bytes.create header_bytes in
  let got = read_exact ic hdr header_bytes in
  if got < header_bytes then begin
    close_in ic;
    corrupt got "truncated header (need %d bytes, have %d)" header_bytes
      got
  end;
  if Bytes.sub_string hdr 0 4 <> magic then begin
    close_in ic;
    corrupt 0 "bad magic %S (want %S)" (Bytes.sub_string hdr 0 4) magic
  end;
  let version = Int32.to_int (Bytes.get_int32_le hdr 4) in
  if version <> format_version then begin
    close_in ic;
    corrupt 4 "unsupported format version %d (this build reads %d)"
      version format_version
  end;
  { ic; off = header_bytes; idx = 0 }

let close_cursor c = close_in c.ic

let next c =
  let frame = Bytes.create frame_bytes in
  match read_exact c.ic frame frame_bytes with
  | 0 -> None
  | got when got < frame_bytes ->
      corrupt c.off "truncated record frame (need %d bytes, have %d)"
        frame_bytes got
  | _ ->
      let len = Int32.to_int (Bytes.get_int32_le frame 0) in
      if len < 0 || len > max_record_bytes then
        corrupt c.off "implausible record length %d" len;
      let stored_crc = Bytes.get_int32_le frame 4 in
      let payload = Bytes.create len in
      let got = read_exact c.ic payload len in
      if got < len then
        corrupt
          (c.off + frame_bytes)
          "truncated record payload (need %d bytes, have %d)" len got;
      let payload = Bytes.unsafe_to_string payload in
      if crc32 payload <> stored_crc then
        corrupt
          (c.off + frame_bytes)
          "CRC mismatch on record %d (stored %08lx, computed %08lx)"
          c.idx stored_crc (crc32 payload);
      (* The name prefixes the payload; records can be routed by name
         and index without paying for a full decode. *)
      let name =
        let r = { s = payload; base = c.off + frame_bytes; pos = 0 } in
        get_str16 r "loop name"
      in
      let rec_ =
        { index = c.idx; offset = c.off; name; payload }
      in
      c.off <- c.off + frame_bytes + len;
      c.idx <- c.idx + 1;
      Some rec_

let decode_record machine (r : record) =
  decode ~base:(r.offset + frame_bytes) machine r.payload

let iter path f =
  let c = open_corpus path in
  Fun.protect
    ~finally:(fun () -> close_cursor c)
    (fun () ->
      let n = ref 0 in
      let rec go () =
        match next c with
        | None -> ()
        | Some r ->
            f r;
            incr n;
            go ()
      in
      go ();
      !n)
