open Ims_ir

exception Parse_error of int * string

let fail line fmt = Format.kasprintf (fun s -> raise (Parse_error (line, s))) fmt

let strip_comment line =
  let cut c s = match String.index_opt s c with
    | Some i -> String.sub s 0 i
    | None -> s
  in
  cut '#' (cut ';' line)

let tokens line =
  String.split_on_char ' ' line
  |> List.concat_map (String.split_on_char '\t')
  |> List.filter (fun t -> t <> "")

(* "name" or "name[d]" *)
let parse_operand lineno token =
  match String.index_opt token '[' with
  | None -> (token, 0)
  | Some i ->
      if String.length token < i + 3 || token.[String.length token - 1] <> ']'
      then fail lineno "malformed operand %S" token
      else begin
        let name = String.sub token 0 i in
        let d = String.sub token (i + 1) (String.length token - i - 2) in
        match int_of_string_opt d with
        | Some d when d >= 0 -> (name, d)
        | _ -> fail lineno "bad distance in %S" token
      end

let parse_dep_kind lineno = function
  | "flow" -> Dep.Flow
  | "anti" -> Dep.Anti
  | "output" -> Dep.Output
  | "control" -> Dep.Control
  | s -> fail lineno "unknown dependence kind %S" s

let parse machine text =
  let b = Builder.create machine in
  let ops = ref [] in  (* opref list, reversed *)
  let memdeps = ref [] in  (* (lineno, kind, src#, dst#, dist) *)
  let handle_op lineno toks =
    let dsts, rest =
      match
        List.find_index (fun t -> t = "=") toks
      with
      | Some i ->
          let before = List.filteri (fun j _ -> j < i) toks in
          let after = List.filteri (fun j _ -> j > i) toks in
          let dsts =
            List.concat_map (String.split_on_char ',') before
            |> List.filter (fun s -> s <> "")
          in
          (dsts, after)
      | None -> ([], toks)
    in
    match rest with
    | [] -> fail lineno "missing opcode"
    | opcode :: operands ->
        let imm, operands =
          let imms, others =
            List.partition
              (fun t -> String.length t > 1 && t.[0] = '$')
              operands
          in
          match imms with
          | [] -> (None, others)
          | [ t ] -> (
              match float_of_string_opt (String.sub t 1 (String.length t - 1)) with
              | Some v -> (Some v, others)
              | None -> fail lineno "bad immediate %S" t)
          | _ -> fail lineno "at most one immediate per operation"
        in
        let srcs, pred =
          match List.find_index (fun t -> t = "when") operands with
          | Some i ->
              let before = List.filteri (fun j _ -> j < i) operands in
              let after = List.filteri (fun j _ -> j > i) operands in
              (match after with
              | [ p ] -> (before, Some (parse_operand lineno p))
              | _ -> fail lineno "expected one predicate after 'when'")
          | None -> (operands, None)
        in
        let srcs = List.map (parse_operand lineno) srcs in
        let to_reg (name, d) = (Builder.vreg b name, d) in
        let op =
          Builder.add b ~tag:(Printf.sprintf "line %d" lineno)
            ?pred:(Option.map to_reg pred) ?imm ~opcode
            ~dsts:(List.map (Builder.vreg b) dsts)
            ~srcs:(List.map to_reg srcs) ()
        in
        ops := op :: !ops
  in
  let handle_memdep lineno = function
    | [ kind; src; dst ] | [ kind; src; dst; _ ] as toks ->
        let dist =
          match toks with
          | [ _; _; _; d ] -> (
              match int_of_string_opt d with
              | Some d when d >= 0 -> d
              | _ -> fail lineno "bad memdep distance %S" d)
          | _ -> 0
        in
        let num s =
          match int_of_string_opt s with
          | Some i when i >= 1 -> i
          | _ -> fail lineno "bad operation number %S" s
        in
        memdeps := (lineno, parse_dep_kind lineno kind, num src, num dst, dist) :: !memdeps
    | _ -> fail lineno "memdep expects: kind src# dst# [distance]"
  in
  String.split_on_char '\n' text
  |> List.iteri (fun i line ->
         let lineno = i + 1 in
         match tokens (strip_comment line) with
         | [] -> ()
         | "memdep" :: rest -> handle_memdep lineno rest
         | toks -> handle_op lineno toks);
  let op_array = Array.of_list (List.rev !ops) in
  List.iter
    (fun (lineno, kind, src, dst, distance) ->
      let get i =
        if i > Array.length op_array then
          fail lineno "memdep references operation %d of %d" i
            (Array.length op_array)
        else op_array.(i - 1)
      in
      Builder.mem_dep b ~distance kind ~src:(get src) ~dst:(get dst))
    (List.rev !memdeps);
  Builder.finish b

let parse_file machine path =
  let ic = open_in path in
  let len = in_channel_length ic in
  let text = really_input_string ic len in
  close_in ic;
  (* Batch reports and top-level handlers need to name the culprit, so
     errors from a file carry its path in the message. *)
  try parse machine text
  with Parse_error (line, msg) ->
    raise (Parse_error (line, Printf.sprintf "%s: %s" path msg))

(* Even an escaping Parse_error (e.g. printed by the batch engine's
   fault containment, or an uncaught exception's last words) renders as
   line + message instead of an opaque constructor. *)
let () =
  Printexc.register_printer (function
    | Parse_error (line, msg) ->
        Some (Printf.sprintf "loop parse error at line %d: %s" line msg)
    | _ -> None)
