open Ims_machine
open Ims_ir

type case = { name : string; ddg : Ddg.t; entry_freq : int; loop_freq : int }

let default_count = 1327

let cases ?machine ?(count = default_count) ?(seed = 1994) ?(jobs = 1)
    ?(trace = Ims_obs.Trace.null) () =
  Ims_obs.Trace.with_span trace "suite.generate" @@ fun () ->
  let machine =
    match machine with Some m -> m | None -> Machine.cydra5 ()
  in
  let rng = Random.State.make [| seed; 27 |] in
  let lfk =
    List.map
      (fun (name, ddg) ->
        let p = Synthetic.generate_profile rng in
        {
          name;
          ddg;
          entry_freq = p.Synthetic.entry_freq;
          loop_freq = p.Synthetic.loop_freq;
        })
      (Lfk.all machine)
  in
  let n_synthetic = max 0 (count - List.length lfk) in
  let synthetic =
    List.map
      (fun (name, ddg, (p : Synthetic.profile)) ->
        { name; ddg; entry_freq = p.entry_freq; loop_freq = p.loop_freq })
      (Synthetic.batch ~jobs machine ~seed ~count:n_synthetic)
  in
  lfk @ synthetic

let execution_time case ~sl ~ii =
  if case.loop_freq = 0 then 0
  else (case.entry_freq * sl) + ((case.loop_freq - case.entry_freq) * ii)

let executed = List.filter (fun c -> c.loop_freq > 0)
