open Ims_ir
module K = Kernel_dsl

type profile = { entry_freq : int; loop_freq : int }

let gaussian rng =
  let u1 = max 1e-12 (Random.State.float rng 1.0) in
  let u2 = Random.State.float rng 1.0 in
  sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2)

let lognormal rng ~mu ~sigma = exp (mu +. (sigma *. gaussian rng))

let pick rng xs = List.nth xs (Random.State.int rng (List.length xs))

(* Weighted opcode mix of the compute operations. *)
let compute_opcode rng =
  let r = Random.State.float rng 1.0 in
  if r < 0.30 then "fadd"
  else if r < 0.45 then "fsub"
  else if r < 0.72 then "fmul"
  else if r < 0.80 then "add"
  else if r < 0.86 then "sub"
  else if r < 0.91 then "copy"
  else if r < 0.95 then "fcmp"
  else if r < 0.988 then "mul"
  else "fdiv"

(* One register-recurrence chain of [size] operations at the given
   iteration distance; its operations form one non-trivial SCC. *)
let emit_recurrence k rng pool ~size ~distance =
  let acc = K.fresh k "acc" in
  let rec chain i carried =
    let other = pick rng !pool in
    let opcode = if Random.State.bool rng then "fadd" else "fmul" in
    if i = size - 1 then
      ignore (K.into k opcode ~dst:acc [ carried; (other, 0) ] "rec tail")
    else begin
      let t = K.binop k opcode carried (other, 0) "rec link" in
      chain (i + 1) (t, 0)
    end
  in
  chain 0 (acc, distance);
  pool := acc :: !pool

(* A memory recurrence: load, combine, store back with a distance-1
   memory flow dependence. *)
let emit_memory_recurrence k rng pool =
  let a = K.addr k (Printf.sprintf "amr%d" (Random.State.int rng 10000)) in
  let v, load_op = K.load k a "carried[i-1]" in
  let other = pick rng !pool in
  let t = K.binop k "fadd" (v, 0) (other, 0) "carried +" in
  let st = K.store k a (t, 0) "carried[i] =" in
  Builder.mem_dep (K.builder k) ~distance:1 Dep.Flow ~src:st ~dst:load_op;
  pool := v :: t :: !pool

(* A small IF-converted diamond guarded by a fresh comparison. *)
let emit_diamond k rng pool =
  let x = pick rng !pool and y = pick rng !pool in
  let c = K.binop k "fcmp" (x, 0) (y, 0) "guard" in
  let pt = K.unop k "pred_set" (c, 0) "p_t" in
  let pf = K.unop k "pred_reset" (c, 0) "p_f" in
  let a = K.binop ~pred:(pt, 0) k "fadd" (x, 0) (y, 0) "then" in
  let b = K.binop ~pred:(pf, 0) k "fsub" (x, 0) (y, 0) "else" in
  pool := a :: b :: !pool

let generate machine rng =
  let k = K.create machine in
  let pool = ref [ K.reg k "c0"; K.reg k "c1"; K.reg k "c2" ] in
  let tiny = Random.State.float rng 1.0 < 0.28 in
  if tiny then begin
    (* Initialisation loop: store a constant or a trivial expression.
       A third of them address through the loop counter itself (strength
       reduction folded the stream away), giving the 4-operation minimum. *)
    let n_stores = if Random.State.float rng 1.0 < 0.8 then 1 else 2 in
    for s = 0 to n_stores - 1 do
      let a =
        if Random.State.float rng 1.0 < 0.35 then (K.reg k "loop$i", 1)
        else (K.addr k (Printf.sprintf "ao%d" s), 0)
      in
      let v =
        if Random.State.float rng 1.0 < 0.8 then pick rng !pool
        else K.unop k "copy" (pick rng !pool, 0) "t"
      in
      ignore
        (Builder.add (K.builder k) ~tag:"init store" ~opcode:"store" ~dsts:[]
           ~srcs:[ a; (v, 0) ] ())
    done
  end
  else begin
    let target =
      int_of_float (lognormal rng ~mu:(log 18.0) ~sigma:0.85)
      |> max 7 |> min 160
    in
    let avail = target - 3 in
    let n_loads = max 1 (avail / 6) in
    let n_stores = max 1 (avail / 12) in
    let backsub = Random.State.float rng 1.0 < 0.75 in
    for l = 0 to n_loads - 1 do
      let a = K.addr ~backsub k (Printf.sprintf "ai%d" l) in
      let v, _ = K.load k a "in" in
      pool := v :: !pool
    done;
    let used = ref (2 * (n_loads + n_stores)) in
    (* Recurrences: 77% of loops have none. *)
    if Random.State.float rng 1.0 < 0.30 then begin
      let n_recs = 1 + (if Random.State.float rng 1.0 < 0.25 then 1 else 0) in
      for _ = 1 to n_recs do
        if Random.State.float rng 1.0 < 0.2 then begin
          emit_memory_recurrence k rng pool;
          used := !used + 4
        end
        else begin
          let size =
            let r = Random.State.float rng 1.0 in
            if r < 0.35 then 1
            else if r < 0.75 then 2
            else if r < 0.93 then 3 + Random.State.int rng 3
            else 6 + Random.State.int rng 24
          in
          let distance = if Random.State.float rng 1.0 < 0.85 then 1 else 2 in
          emit_recurrence k rng pool ~size ~distance;
          used := !used + size
        end
      done
    end;
    (* Occasional IF-converted diamond. *)
    if Random.State.float rng 1.0 < 0.15 then begin
      emit_diamond k rng pool;
      used := !used + 5
    end;
    (* Fill with compute operations. *)
    while !used < avail - n_stores do
      let opcode = compute_opcode rng in
      let x = pick rng !pool and y = pick rng !pool in
      let v =
        if opcode = "copy" then K.unop k opcode (x, 0) "t"
        else K.binop k opcode (x, 0) (y, 0) "t"
      in
      pool := v :: !pool;
      incr used
    done;
    for s = 0 to n_stores - 1 do
      let a = K.addr ~backsub k (Printf.sprintf "ao%d" s) in
      ignore (K.store k a (pick rng !pool, 0) "out")
    done
  end;
  K.loop_control ~backsub:(tiny || Random.State.float rng 1.0 < 0.75) k;
  K.finish k

let generate_profile rng =
  if Random.State.float rng 1.0 > 0.45 then { entry_freq = 0; loop_freq = 0 }
  else begin
    let entry_freq =
      max 1 (int_of_float (lognormal rng ~mu:(log 5.0) ~sigma:1.2))
    in
    let trip =
      max 2 (int_of_float (lognormal rng ~mu:(log 50.0) ~sigma:1.3))
    in
    { entry_freq; loop_freq = entry_freq * trip }
  end

(* Each loop draws from its own RNG keyed by (seed, index), so loop i is
   the same loop no matter how many others are generated, in what order,
   or on which domain — the property that makes the batch safely
   parallel and the suite stable under [count] changes. *)
let one machine ~seed i =
  let rng = Random.State.make [| seed; i + 1 |] in
  let name = Printf.sprintf "syn%04d" (i + 1) in
  let ddg = generate machine rng in
  let profile = generate_profile rng in
  (name, ddg, profile)

let batch ?(jobs = 1) machine ~seed ~count =
  Ims_exec.Exec.map_exn ~jobs (one machine ~seed) (List.init count Fun.id)
