(* Streaming corpus generation.

   Loop [i] of a corpus is a pure function of [(seed, i)]: it is built
   from its own [Random.State] keyed by that pair, exactly like
   Synthetic.batch, so any prefix, suffix or residue class of a corpus
   can be (re)generated independently of every other record.  That
   per-index keying is what makes shard generation reproducible: the
   bytes written for shard [i/N] do not depend on which other shards
   are generated, or whether the full corpus ever was.

   Generation is streaming — one loop is materialised, encoded and
   written at a time — so a million-loop corpus never lives in memory. *)

let loop_name i = Printf.sprintf "syn%07d" (i + 1)

let build machine ~seed i =
  let rng = Random.State.make [| seed; i + 1 |] in
  (loop_name i, Synthetic.generate machine rng)

let in_shard ~shard g =
  match shard with None -> true | Some (i, n) -> g mod n = i - 1

let check_shard = function
  | Some (i, n) when n < 1 || i < 1 || i > n ->
      invalid_arg (Printf.sprintf "Corpus: bad shard %d/%d" i n)
  | _ -> ()

let generate ?shard ?progress machine ~seed ~count ~path =
  check_shard shard;
  let w = Loop_bin.create_writer path in
  Fun.protect
    ~finally:(fun () -> Loop_bin.close_writer w)
    (fun () ->
      let written = ref 0 in
      for g = 0 to count - 1 do
        if in_shard ~shard g then begin
          let name, ddg = build machine ~seed g in
          Loop_bin.write w ~name ddg;
          incr written;
          match progress with
          | Some f -> f ~index:g ~written:!written
          | None -> ()
        end
      done;
      !written)
