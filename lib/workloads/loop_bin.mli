(** Versioned binary loop wire format.

    A corpus file is an 8-byte header (magic ["ILBC"], little-endian
    u32 format version) followed by length-prefixed records, each
    framed as [u32 payload_length | u32 crc32 | payload].  Torn or
    bit-flipped records are rejected with {!Corrupt} carrying the byte
    offset of the damage — the streaming analogue of [Append_log]'s
    torn-tail truncation.

    The payload carries one named loop at the builder-DSL level:
    operations plus exactly the dependence edges {!Loop_dump.derivable}
    cannot re-derive.  Decoding replays the loop through
    {!Ims_ir.Builder} against a machine description, so
    [decode (encode ddg)] reproduces [Loop_dump.dump ddg] exactly and
    the result carries machine-validated opcodes and delays. *)

open Ims_machine
open Ims_ir

exception Corrupt of { offset : int; reason : string }
(** [offset] is an absolute byte offset into the corpus file (or into
    the payload for a bare {!decode}).  Registered with
    [Printexc.register_printer]. *)

val magic : string
val format_version : int

val header_bytes : int
(** Size of the file header (magic + version). *)

val frame_bytes : int
(** Size of a record's frame prefix (length + CRC). *)

val crc32 : string -> int32
(** CRC-32 (IEEE 802.3) of a string; exposed for tests. *)

val encode : name:string -> Ddg.t -> string
(** One record payload (no frame).
    @raise Invalid_argument on loops exceeding the format's field
    widths (65535 ops, 255-byte opcodes, 255 operands). *)

val decode : ?base:int -> Machine.t -> string -> string * Ddg.t
(** [decode machine payload] is [(name, ddg)].  [base] (default 0) is
    added to the offsets reported in {!Corrupt}.
    @raise Corrupt on malformed payloads. *)

(** {1 Writing corpus files} *)

type writer

val create_writer : string -> writer
(** Opens [path] for writing and emits the header. *)

val write : writer -> name:string -> Ddg.t -> unit
val close_writer : writer -> unit

(** {1 Streaming reads} *)

type record = {
  index : int;  (** 0-based position of the record in its file. *)
  offset : int;  (** Absolute byte offset of the record's frame. *)
  name : string;
  payload : string;
}

type cursor

val open_corpus : string -> cursor
(** Validates magic and version.
    @raise Corrupt on a truncated header, bad magic (offset 0) or a
    version this build does not read (offset 4). *)

val next : cursor -> record option
(** The next CRC-checked record, or [None] at a clean end of file.
    @raise Corrupt on a torn frame, truncated payload or CRC mismatch,
    with the offending absolute byte offset. *)

val close_cursor : cursor -> unit

val decode_record : Machine.t -> record -> string * Ddg.t
(** {!decode} with {!Corrupt} offsets rebased to the record's position
    in its file. *)

val iter : string -> (record -> unit) -> int
(** Streams every record through [f]; returns the record count. *)
