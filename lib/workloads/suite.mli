(** The full 1327-loop evaluation suite.

    The paper's input set was 1327 loops: 1002 from the Perfect Club, 298
    from SPEC and 27 from the Livermore Fortran Kernels, all dumped by
    the Cydra 5 compiler.  Here the 27 LFK loops are the hand
    translations of {!Lfk} and the remaining 1300 are drawn from the
    calibrated generator of {!Synthetic}; execution profiles
    (EntryFreq / LoopFreq) are synthesised so that roughly 45% of the
    loops execute, matching the paper's 597 of 1327. *)

open Ims_machine
open Ims_ir

type case = {
  name : string;
  ddg : Ddg.t;
  entry_freq : int;
  loop_freq : int;  (** Total iterations over all entries; 0 = never runs. *)
}

val default_count : int
(** 1327. *)

val cases :
  ?machine:Machine.t ->
  ?count:int ->
  ?seed:int ->
  ?jobs:int ->
  ?trace:Ims_obs.Trace.t ->
  unit ->
  case list
(** Deterministic given [seed] (default 1994) — including under
    [jobs > 1], which fans synthetic generation out per-seed across
    domains ({!Synthetic.batch}).  [machine] defaults to the Cydra 5;
    [count] scales the synthetic part (the LFK loops are always included
    and count towards it).  [trace] brackets generation in a
    ["suite.generate"] span. *)

val execution_time : case -> sl:int -> ii:int -> int
(** The paper's section 4.3 formula:
    [EntryFreq*SL + (LoopFreq - EntryFreq)*II]; 0 for unexecuted loops. *)

val executed : case list -> case list
(** Loops with a non-zero profile. *)
