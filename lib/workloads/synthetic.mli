(** Calibrated synthetic loop generator.

    The paper's input set was 1327 loops emitted by the Cydra 5 Fortran
    compiler from the Perfect Club, SPEC and Livermore suites.  Those
    compiler dumps are not available, so this generator produces loops
    whose {e distributional} properties are fitted to the statistics the
    paper publishes about its inputs (table 3): operation counts with
    median 12 / mean 19.5 / max 163, about a quarter of the loops being
    tiny initialisation loops, 77% of loops free of non-trivial SCCs,
    SCC sizes overwhelmingly 1-2 with a long tail, and an op mix
    dominated by address arithmetic, loads, floating add/multiply with
    occasional divides.

    Generation is deterministic given the seed. *)

open Ims_machine
open Ims_ir

type profile = {
  entry_freq : int;  (** Times the loop is entered; 0 if never executed. *)
  loop_freq : int;  (** Total iterations across all entries. *)
}

val generate : Machine.t -> Random.State.t -> Ddg.t
(** One random loop. *)

val generate_profile : Random.State.t -> profile
(** A synthetic execution profile: roughly 45% of loops execute (597 of
    the paper's 1327 did), with long-tailed trip counts. *)

val batch :
  ?jobs:int -> Machine.t -> seed:int -> count:int ->
  (string * Ddg.t * profile) list
(** [count] named loops, ["syn0001"...].  Loop [i] is generated from its
    own RNG keyed by [(seed, i)], so the result is identical for any
    [jobs] (default 1) and any [count] covering [i]; generation fans out
    over [jobs] domains via {!Ims_exec.Exec}. *)
