open Ims_machine
open Ims_ir
open Ims_core

(* Diagnostics accumulate in reverse; every entry point reverses once at
   the end. *)

let machine (m : Machine.t) =
  let diags = ref [] in
  let bad fmt = Format.kasprintf (fun s -> diags := s :: !diags) fmt in
  Array.iteri
    (fun i (r : Resource.t) ->
      if r.Resource.id <> i then
        bad "resource %S: id %d stored at array index %d" r.Resource.name
          r.Resource.id i;
      if r.Resource.count < 1 then
        bad "resource %S: multiplicity %d is not positive" r.Resource.name
          r.Resource.count)
    m.Machine.resources;
  let n_res = Machine.num_resources m in
  List.iter
    (fun name ->
      let oc = Machine.opcode m name in
      if oc.Opcode.latency < 0 then
        bad "opcode %S: negative latency %d" name oc.Opcode.latency;
      if oc.Opcode.alternatives = [] then
        bad "opcode %S: no alternatives" name;
      List.iteri
        (fun k (a : Opcode.alternative) ->
          (* Demand per (resource, cycle) of this single alternative: if
             it already exceeds the multiplicity, no schedule could ever
             issue the opcode on this unit. *)
          let demand = Hashtbl.create 8 in
          List.iter
            (fun (u : Reservation.usage) ->
              if u.Reservation.resource < 0 || u.Reservation.resource >= n_res
              then
                bad "opcode %S alternative %d: usage of unknown resource %d"
                  name k u.Reservation.resource
              else if u.Reservation.at < 0 then
                bad "opcode %S alternative %d: usage at negative cycle %d"
                  name k u.Reservation.at
              else begin
                let key = (u.Reservation.resource, u.Reservation.at) in
                let n =
                  1 + Option.value ~default:0 (Hashtbl.find_opt demand key)
                in
                Hashtbl.replace demand key n;
                let r = m.Machine.resources.(u.Reservation.resource) in
                if n = r.Resource.count + 1 then
                  bad
                    "opcode %S alternative %d: table demands more than %d \
                     copies of %s at relative cycle %d"
                    name k r.Resource.count r.Resource.name u.Reservation.at
              end)
            a.Opcode.table.Reservation.usages)
        oc.Opcode.alternatives)
    (Machine.opcode_names m);
  List.rev !diags

let ddg (g : Ddg.t) =
  let diags = ref [] in
  let bad fmt = Format.kasprintf (fun s -> diags := s :: !diags) fmt in
  let n = Ddg.n_total g in
  if n < 2 then bad "graph has %d vertices; START and STOP are required" n;
  Array.iteri
    (fun i (o : Op.t) ->
      if o.Op.id <> i then bad "op at index %d carries id %d" i o.Op.id)
    g.Ddg.ops;
  if n >= 1 && not (Op.is_pseudo g.Ddg.ops.(0)) then
    bad "vertex 0 is not the START pseudo-operation";
  if n >= 2 && not (Op.is_pseudo g.Ddg.ops.(n - 1)) then
    bad "vertex %d is not the STOP pseudo-operation" (n - 1);
  List.iter
    (fun i ->
      let o = Ddg.op g i in
      (match Machine.opcode g.Ddg.machine o.Op.opcode with
      | exception Machine.Unknown_opcode _ ->
          bad "op %d: opcode %S is not in machine %S" i o.Op.opcode
            g.Ddg.machine.Machine.name
      | _ -> ());
      List.iter
        (fun (s : Op.operand) ->
          if s.Op.distance < 0 then
            bad "op %d: negative operand distance on v%d" i s.Op.reg)
        o.Op.srcs)
    (Ddg.real_ids g);
  let succ_edges = ref 0 and pred_edges = ref 0 in
  Array.iteri
    (fun v es ->
      List.iter
        (fun (d : Dep.t) ->
          incr succ_edges;
          if d.Dep.src <> v then
            bad "edge %d->%d filed under source vertex %d" d.Dep.src d.Dep.dst
              v;
          if d.Dep.dst < 0 || d.Dep.dst >= n then
            bad "edge %d->%d: destination out of range" d.Dep.src d.Dep.dst;
          if d.Dep.distance < 0 then
            bad "edge %d->%d: negative distance %d" d.Dep.src d.Dep.dst
              d.Dep.distance)
        es)
    g.Ddg.succs;
  Array.iteri
    (fun v es ->
      List.iter
        (fun (d : Dep.t) ->
          incr pred_edges;
          if d.Dep.dst <> v then
            bad "incoming edge %d->%d filed under destination vertex %d"
              d.Dep.src d.Dep.dst v;
          if d.Dep.src < 0 || d.Dep.src >= n then
            bad "edge %d->%d: source out of range" d.Dep.src d.Dep.dst)
        es)
    g.Ddg.preds;
  if !succ_edges <> !pred_edges then
    bad "successor/predecessor mirrors disagree: %d vs %d edges" !succ_edges
      !pred_edges;
  List.rev !diags

let schedule (s : Schedule.t) =
  let g = s.Schedule.ddg in
  let diags = ref [] in
  let bad fmt = Format.kasprintf (fun s -> diags := s :: !diags) fmt in
  if s.Schedule.ii < 1 then bad "II %d is not positive" s.Schedule.ii;
  Array.iteri
    (fun i (e : Schedule.entry) ->
      if e.Schedule.time < 0 then
        bad "op %d scheduled at negative time %d" i e.Schedule.time;
      if i < Array.length g.Ddg.ops then
        match Machine.opcode g.Ddg.machine g.Ddg.ops.(i).Op.opcode with
        | exception Machine.Unknown_opcode _ -> () (* reported by the ddg lint *)
        | oc ->
            let na = Opcode.num_alternatives oc in
            if e.Schedule.alt < 0 || e.Schedule.alt >= na then
              bad "op %d: alternative %d out of range (opcode %S has %d)" i
                e.Schedule.alt g.Ddg.ops.(i).Op.opcode na)
    s.Schedule.entries;
  machine g.Ddg.machine @ ddg g @ List.rev !diags
