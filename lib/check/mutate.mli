(** Deterministic fault injection: corrupt one artifact at one pipeline
    layer and record which checkers notice.

    Mutation testing turned on the validators themselves: a checker that
    has never been seen to fail is trusted, not tested.  Each mutant
    corrupts exactly one thing — a dependence edge, a scheduled time, a
    kernel slot, a resource multiplicity, a reservation table, an MVE
    stage count — and carries the set of checkers that {e ought} to
    object.  A mutant nobody kills is a hole in the verification net.

    Mutation classes, by construction:

    - [Drop_edge] — delete one real dependence edge, reschedule the
      weakened graph, and attach the resulting times to the {e original}
      graph.  Killed only if the scheduler exploited the missing edge
      (an equivalent mutant otherwise), so no kill floor is asserted.
    - [Weaken_edge] — same, but the edge's delay is reduced instead of
      removed.
    - [Shift_op] — move one operation later by [slack + 1 + k] cycles
      across a chosen edge: a dependence violation by construction, so
      {b must-kill} (designated checker: verify).
    - [Swap_slots] — exchange the schedule entries of two operations.
    - [Lower_resource] — rebuild the machine with one multiplicity
      reduced on a resource whose peak modulo-slot occupancy equals its
      count: oversubscribed by construction, {b must-kill} (verify).
    - [Inflate_reservation] — rebuild the machine with extra copies of
      one usage appended to a chosen alternative's table, enough that a
      single instance exceeds the multiplicity: {b must-kill} (lint and
      verify).
    - [Wrong_stage] — replay the loop through an MVE expansion with one
      kernel copy too few, the classic modulo-variable-expansion
      off-by-one: {b must-kill} (interp).  Only generated where the loop
      is {!Ims_pipeline.Interp.supported} and actually needs expansion.

    Everything is seeded: the same [(seed, salt, per_class)] triple over
    the same graph generates byte-identical mutants. *)

open Ims_ir

type cls =
  | Drop_edge
  | Weaken_edge
  | Shift_op
  | Swap_slots
  | Lower_resource
  | Inflate_reservation
  | Wrong_stage

val classes : cls list
val class_name : cls -> string

val must_kill : cls -> bool
(** True for the classes whose construction guarantees illegality:
    [Shift_op], [Lower_resource], [Inflate_reservation], [Wrong_stage]. *)

val expected : cls -> Check.checker list
(** The checkers that ought to catch this class. *)

type result_ = {
  cls : cls;
  description : string;  (** What was corrupted, human readable. *)
  killed_by : Check.checker list;  (** Empty: the mutant survived. *)
  expected_hit : bool;
      (** At least one designated checker is among [killed_by]. *)
}

val sweep :
  ?seed:int ->
  ?salt:int ->
  ?per_class:int ->
  ?budget_ratio:float ->
  Ddg.t ->
  result_ list
(** Schedule the pristine loop, then generate and judge up to
    [per_class] (default 5) mutants of every class.  [salt] (default 0)
    decorrelates sweeps over different loops under one [seed];
    [budget_ratio] drives the pristine schedule and the reschedules of
    the graph-level mutants.  Returns [[]] when the pristine loop cannot
    be scheduled at all.  Classes with no applicable corruption on this
    loop simply contribute fewer (or zero) mutants. *)

type class_stats = {
  cls : cls;
  mutants : int;
  killed : int;
  expected_hits : int;
}

val aggregate : result_ list -> class_stats list
(** Per-class totals, in {!classes} order (classes with zero mutants
    included). *)

val escapees : result_ list -> result_ list
(** Must-kill mutants that their designated checkers missed — the
    red-alarm subset that gates [imsc check mutate] and CI. *)
