open Ims_core
open Ims_obs

type checker = Lint | Verify | Simulator | Interp

let all_checkers = [ Lint; Verify; Simulator; Interp ]

let checker_name = function
  | Lint -> "lint"
  | Verify -> "verify"
  | Simulator -> "simulator"
  | Interp -> "interp"

type failure = { checker : checker; diagnostics : string list }
type verdict = { failures : failure list }

let passed v = v.failures = []
let killed_by v = List.map (fun f -> f.checker) v.failures

let all ?trip ?(seed = 42) ?(trace = Trace.null) ?metrics sched =
  (* A corrupted artifact may crash a deeper checker outright (that is
     what the lint layer exists to prevent) — containment here turns the
     crash into that checker's own diagnostic, so the verdict is total. *)
  let run checker f =
    let name = checker_name checker in
    Trace.with_span trace ("check." ^ name) (fun () ->
        let diagnostics =
          match f () with
          | diags -> diags
          | exception e ->
              [ "checker raised: " ^ Printexc.to_string e ]
        in
        (match metrics with
        | Some m ->
            Metrics.incr (Metrics.counter m ("check." ^ name ^ ".runs"));
            if diagnostics <> [] then
              Metrics.incr
                ~by:(List.length diagnostics)
                (Metrics.counter m ("check." ^ name ^ ".failures"))
        | None -> ());
        if diagnostics <> [] then
          Trace.instant trace ("check." ^ name ^ ".failed");
        if diagnostics = [] then None else Some { checker; diagnostics })
  in
  let failures =
    List.filter_map Fun.id
      [
        run Lint (fun () -> Lint.schedule sched);
        run Verify (fun () ->
            match Schedule.verify sched with Ok () -> [] | Error es -> es);
        run Simulator (fun () ->
            match Ims_pipeline.Simulator.run ?trip sched with
            | Ok _ -> []
            | Error es -> es);
        run Interp (fun () ->
            match Ims_pipeline.Interp.check ~seed ?metrics ?trip sched with
            | Ok () -> []
            | Error e -> [ e ]);
      ]
  in
  { failures }

let summary v =
  if passed v then "all checks passed (lint, verify, simulator, interp)"
  else
    String.concat "; "
      (List.map
         (fun f ->
           let n = List.length f.diagnostics in
           Printf.sprintf "%s: %d diagnostic%s" (checker_name f.checker) n
             (if n = 1 then "" else "s"))
         v.failures)

let pp ppf v =
  if passed v then
    Format.fprintf ppf "all checks passed (lint, verify, simulator, interp)"
  else
    List.iter
      (fun f ->
        List.iter
          (fun d -> Format.fprintf ppf "%s: %s@." (checker_name f.checker) d)
          f.diagnostics)
      v.failures
