open Ims_core
open Ims_obs

type reason =
  | Budget_exhausted of { max_ii : int; attempts : int }
  | Checker_failed of Check.verdict
  | Scheduler_crashed of string
  | Cancelled of { elapsed : float; limit : float }

type t = {
  schedule : Schedule.t;
  verdict : Check.verdict;
  degraded : reason option;
  ims : Ims.outcome option;
}

let reason_kind = function
  | Budget_exhausted _ -> "budget_exhausted"
  | Checker_failed _ -> "checker_failed"
  | Scheduler_crashed _ -> "scheduler_crashed"
  | Cancelled _ -> "cancelled"

let describe = function
  | Budget_exhausted { max_ii; attempts } ->
      Printf.sprintf
        "budget exhausted: no modulo schedule up to II %d in %d attempt(s)"
        max_ii attempts
  | Checker_failed v -> "checker failed: " ^ Check.summary v
  | Scheduler_crashed msg -> "scheduler crashed: " ^ msg
  | Cancelled { elapsed; limit } ->
      if limit = infinity then
        Printf.sprintf "cancelled after %.3fs" elapsed
      else
        Printf.sprintf "cancelled after %.3fs (deadline %.3fs)" elapsed limit

let degrade ?trip ?seed ~trace ?metrics ddg ~reason ~ims =
  Trace.with_span trace "fallback" (fun () ->
      let wide =
        try List_sched.schedule ddg
        with Invalid_argument msg ->
          failwith ("fallback list scheduling failed: " ^ msg)
      in
      (* The list scheduler returns ii = horizon (legal by a mile).
         II = SL is the honest "no pipelining" presentation, but at that
         II a trailing reservation may wrap around the kernel into an
         occupied slot — so tighten only if the whole stack agrees. *)
      let tightened =
        let sl = max 1 (Schedule.length wide) in
        if sl >= wide.Schedule.ii then None
        else
          let tight =
            Schedule.with_entries wide ~ii:sl
              (Array.copy wide.Schedule.entries)
          in
          let v = Check.all ?trip ?seed ~trace ?metrics tight in
          if Check.passed v then Some (tight, v) else None
      in
      let schedule, verdict =
        match tightened with
        | Some sv -> sv
        | None -> (wide, Check.all ?trip ?seed ~trace ?metrics wide)
      in
      Trace.instant trace ("fallback.degraded: " ^ reason_kind reason);
      (match metrics with
      | Some m -> Metrics.incr (Metrics.counter m "fallback.degraded")
      | None -> ());
      { schedule; verdict; degraded = Some reason; ims })

let harden ?trip ?seed ?(trace = Trace.null) ?metrics ddg (out : Ims.outcome) =
  match out.Ims.schedule with
  | None ->
      degrade ?trip ?seed ~trace ?metrics ddg
        ~reason:
          (Budget_exhausted { max_ii = out.Ims.ii; attempts = out.Ims.attempts })
        ~ims:(Some out)
  | Some s ->
      let v = Check.all ?trip ?seed ~trace ?metrics s in
      if Check.passed v then
        { schedule = s; verdict = v; degraded = None; ims = Some out }
      else
        degrade ?trip ?seed ~trace ?metrics ddg ~reason:(Checker_failed v)
          ~ims:(Some out)

let fallback ?trip ?seed ?(trace = Trace.null) ?metrics ddg ~reason =
  degrade ?trip ?seed ~trace ?metrics ddg ~reason ~ims:None

let modulo_schedule_or_fallback ?budget_ratio ?max_delta_ii ?counters
    ?(trace = Trace.null) ?metrics ?priority ?trip ?seed ?cancel ddg =
  match
    Ims.modulo_schedule ?budget_ratio ?max_delta_ii ?counters ~trace ?priority
      ?cancel ddg
  with
  (* Cancellation is the caller's wall-clock verdict, not a scheduler
     crash: re-raise so the batch engine turns it into a structured
     Cancelled outcome instead of silently degrading the loop. *)
  | exception (Cancel.Cancelled _ as e) -> raise e
  | exception e ->
      degrade ?trip ?seed ~trace ?metrics ddg
        ~reason:(Scheduler_crashed (Printexc.to_string e))
        ~ims:None
  | out -> harden ?trip ?seed ~trace ?metrics ddg out
