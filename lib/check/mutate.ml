open Ims_machine
open Ims_ir
open Ims_core
open Ims_pipeline

type cls =
  | Drop_edge
  | Weaken_edge
  | Shift_op
  | Swap_slots
  | Lower_resource
  | Inflate_reservation
  | Wrong_stage

let classes =
  [
    Drop_edge; Weaken_edge; Shift_op; Swap_slots; Lower_resource;
    Inflate_reservation; Wrong_stage;
  ]

let class_name = function
  | Drop_edge -> "drop-edge"
  | Weaken_edge -> "weaken-edge"
  | Shift_op -> "shift-op"
  | Swap_slots -> "swap-slots"
  | Lower_resource -> "lower-resource"
  | Inflate_reservation -> "inflate-reservation"
  | Wrong_stage -> "wrong-stage"

let class_index c =
  let rec go i = function
    | [] -> assert false
    | c' :: rest -> if c' = c then i else go (i + 1) rest
  in
  go 0 classes

let must_kill = function
  | Shift_op | Lower_resource | Inflate_reservation | Wrong_stage -> true
  | Drop_edge | Weaken_edge | Swap_slots -> false

let expected = function
  | Drop_edge | Weaken_edge -> [ Check.Verify; Check.Simulator; Check.Interp ]
  | Shift_op -> [ Check.Verify ]
  | Swap_slots -> [ Check.Verify; Check.Simulator; Check.Interp ]
  | Lower_resource -> [ Check.Verify; Check.Simulator ]
  | Inflate_reservation -> [ Check.Lint; Check.Verify; Check.Simulator ]
  | Wrong_stage -> [ Check.Interp ]

type result_ = {
  cls : cls;
  description : string;
  killed_by : Check.checker list;
  expected_hit : bool;
}

type class_stats = {
  cls : cls;
  mutants : int;
  killed : int;
  expected_hits : int;
}

(* A mutant is either a corrupted schedule judged by the whole stack, or
   a corrupted MVE expansion judged by the interpreter replay (the one
   artifact Check.all cannot reach from a Schedule.t alone). *)
type artifact =
  | Corrupt_schedule of Schedule.t
  | Corrupt_mve of Mve.t * Schedule.t

let pick rng = function
  | [] -> invalid_arg "Mutate.pick: empty"
  | xs -> List.nth xs (Random.State.int rng (List.length xs))

(* Edges with a real source, excluding self-loops (shifting both
   endpoints together leaves a self-edge's slack unchanged). *)
let shiftable_edges (g : Ddg.t) =
  List.concat_map
    (fun v ->
      List.filter (fun (d : Dep.t) -> d.Dep.dst <> d.Dep.src) g.Ddg.succs.(v))
    (Ddg.real_ids g)

let real_real_edges (g : Ddg.t) =
  let stop = Ddg.stop g in
  List.concat_map
    (fun v ->
      List.filter
        (fun (d : Dep.t) -> d.Dep.dst <> stop && d.Dep.dst <> Ddg.start)
        g.Ddg.succs.(v))
    (Ddg.real_ids g)

let same_edge (a : Dep.t) (b : Dep.t) =
  a.Dep.src = b.Dep.src && a.Dep.dst = b.Dep.dst && a.Dep.kind = b.Dep.kind
  && a.Dep.distance = b.Dep.distance && a.Dep.delay = b.Dep.delay

let edge_slack s (d : Dep.t) =
  Schedule.time s d.Dep.dst - Schedule.time s d.Dep.src
  - (d.Dep.delay - (s.Schedule.ii * d.Dep.distance))

(* Clone a machine through the builder, optionally lowering a
   multiplicity and/or patching one reservation table.  Resources are
   re-declared in id order, so ids are stable and the mutated machine
   drops into the original graph via [Ddg.map_machine]. *)
let rebuild_machine (m : Machine.t) ~count_of ~patch =
  let b = Machine.builder m.Machine.name in
  Array.iter
    (fun (r : Resource.t) ->
      ignore (Machine.add_resource b r.Resource.name ~count:(count_of r)))
    m.Machine.resources;
  List.iter
    (fun name ->
      let oc = Machine.opcode m name in
      let alternatives =
        List.mapi
          (fun k (a : Opcode.alternative) ->
            let usages =
              List.map
                (fun (u : Reservation.usage) ->
                  (u.Reservation.resource, u.Reservation.at))
                a.Opcode.table.Reservation.usages
            in
            (a.Opcode.unit_name, patch name k usages))
          oc.Opcode.alternatives
      in
      Machine.add_opcode b ~name ~latency:oc.Opcode.latency ~alternatives)
    (Machine.opcode_names m);
  Machine.finish b

(* --- the seven corruptions ----------------------------------------- *)

let shift_op ~rng ddg s =
  match shiftable_edges ddg with
  | [] -> None
  | edges ->
      let d = pick rng edges in
      let delta = edge_slack s d + 1 + Random.State.int rng s.Schedule.ii in
      let entries = Array.copy s.Schedule.entries in
      entries.(d.Dep.src) <-
        {
          entries.(d.Dep.src) with
          Schedule.time = entries.(d.Dep.src).Schedule.time + delta;
        };
      Some
        ( Printf.sprintf "op %d shifted +%d cycles across edge %d->%d"
            d.Dep.src delta d.Dep.src d.Dep.dst,
          Corrupt_schedule (Schedule.with_entries s entries) )

let swap_slots ~rng ddg s =
  let ids = Array.of_list (Ddg.real_ids ddg) in
  if Array.length ids < 2 then None
  else
    let rec go tries =
      if tries = 0 then None
      else
        let a = ids.(Random.State.int rng (Array.length ids)) in
        let b = ids.(Random.State.int rng (Array.length ids)) in
        if a <> b && s.Schedule.entries.(a) <> s.Schedule.entries.(b) then
          Some (a, b)
        else go (tries - 1)
    in
    Option.map
      (fun (a, b) ->
        let entries = Array.copy s.Schedule.entries in
        let ea = entries.(a) in
        entries.(a) <- entries.(b);
        entries.(b) <- ea;
        ( Printf.sprintf "kernel slots of ops %d and %d swapped" a b,
          Corrupt_schedule (Schedule.with_entries s entries) ))
      (go 20)

let reschedule_onto ~budget_ratio orig mutated =
  match (Ims.modulo_schedule ~budget_ratio mutated).Ims.schedule with
  | None -> None
  | Some s' ->
      (* The mutated graph's times, judged against the original graph's
         constraints. *)
      Some
        (Schedule.with_entries s' ~ddg:orig (Array.copy s'.Schedule.entries))

let drop_edge ~rng ~budget_ratio ddg _s =
  match real_real_edges ddg with
  | [] -> None
  | edges ->
      let d = pick rng edges in
      let mutated = Ddg.filter_edges ddg (fun e -> not (same_edge e d)) in
      Option.map
        (fun sched ->
          ( Printf.sprintf "%s edge %d->%d (distance %d, delay %d) dropped"
              (Dep.kind_to_string d.Dep.kind) d.Dep.src d.Dep.dst
              d.Dep.distance d.Dep.delay,
            Corrupt_schedule sched ))
        (reschedule_onto ~budget_ratio ddg mutated)

let weaken_edge ~rng ~budget_ratio ddg _s =
  match real_real_edges ddg with
  | [] -> None
  | edges ->
      let d = pick rng edges in
      let k = 1 + Random.State.int rng 3 in
      let ops = List.map (Ddg.op ddg) (Ddg.real_ids ddg) in
      let deps =
        List.map
          (fun e ->
            if same_edge e d then { e with Dep.delay = e.Dep.delay - k }
            else e)
          edges
      in
      let mutated = Ddg.make ddg.Ddg.machine ~model:ddg.Ddg.model ops deps in
      Option.map
        (fun sched ->
          ( Printf.sprintf "edge %d->%d delay weakened %d -> %d" d.Dep.src
              d.Dep.dst d.Dep.delay (d.Dep.delay - k),
            Corrupt_schedule sched ))
        (reschedule_onto ~budget_ratio ddg mutated)

(* Modulo-slot demand per resource: which (resource, slot) cells the
   schedule fills to capacity.  Lowering such a resource's multiplicity
   is guaranteed oversubscription. *)
let occupancy ddg s =
  let m = ddg.Ddg.machine in
  let ii = s.Schedule.ii in
  let occ = Array.make_matrix (Machine.num_resources m) ii 0 in
  List.iter
    (fun i ->
      let t = Schedule.time s i in
      List.iter
        (fun (u : Reservation.usage) ->
          let slot = (t + u.Reservation.at) mod ii in
          occ.(u.Reservation.resource).(slot) <-
            occ.(u.Reservation.resource).(slot) + 1)
        (Schedule.reservation s i).Reservation.usages)
    (Ddg.real_ids ddg);
  occ

let lower_resource ~rng ddg s =
  let m = ddg.Ddg.machine in
  let occ = occupancy ddg s in
  let candidates =
    Array.to_list m.Machine.resources
    |> List.filter (fun (r : Resource.t) ->
           r.Resource.count >= 2
           && Array.exists (fun o -> o >= r.Resource.count) occ.(r.Resource.id))
  in
  match candidates with
  | [] -> None
  | _ ->
      let victim = pick rng candidates in
      let machine' =
        rebuild_machine m
          ~count_of:(fun r ->
            if r.Resource.id = victim.Resource.id then r.Resource.count - 1
            else r.Resource.count)
          ~patch:(fun _ _ usages -> usages)
      in
      Some
        ( Printf.sprintf "resource %s multiplicity lowered %d -> %d"
            victim.Resource.name victim.Resource.count
            (victim.Resource.count - 1),
          Corrupt_schedule
            (Schedule.with_entries s
               ~ddg:(Ddg.map_machine ddg machine')
               (Array.copy s.Schedule.entries)) )

let inflate_reservation ~rng ddg s =
  let m = ddg.Ddg.machine in
  let ids =
    List.filter
      (fun i -> not (Reservation.is_empty (Schedule.reservation s i)))
      (Ddg.real_ids ddg)
  in
  match ids with
  | [] -> None
  | _ ->
      let i = pick rng ids in
      let o = Ddg.op ddg i in
      let alt_k = Schedule.alt s i in
      let u = pick rng (Schedule.reservation s i).Reservation.usages in
      let cap = m.Machine.resources.(u.Reservation.resource).Resource.count in
      (* [cap] extra copies of one existing usage: the single instance
         now demands cap + 1 of that resource in that cycle. *)
      let extra =
        List.init cap (fun _ -> (u.Reservation.resource, u.Reservation.at))
      in
      let machine' =
        rebuild_machine m
          ~count_of:(fun r -> r.Resource.count)
          ~patch:(fun name k usages ->
            if name = o.Op.opcode && k = alt_k then usages @ extra else usages)
      in
      Some
        ( Printf.sprintf
            "reservation table of %S (alternative %d) inflated: +%d uses of \
             %s at relative cycle %d"
            o.Op.opcode alt_k cap
            m.Machine.resources.(u.Reservation.resource).Resource.name
            u.Reservation.at,
          Corrupt_schedule
            (Schedule.with_entries s
               ~ddg:(Ddg.map_machine ddg machine')
               (Array.copy s.Schedule.entries)) )

let wrong_stage ddg s =
  if not (Interp.supported ddg) then None
  else
    let mve = Mve.expand s in
    if mve.Mve.unroll < 2 then None
    else
      Some
        ( Printf.sprintf "MVE kernel unroll mis-numbered %d -> %d"
            mve.Mve.unroll (mve.Mve.unroll - 1),
          Corrupt_mve ({ mve with Mve.unroll = mve.Mve.unroll - 1 }, s) )

(* --- judging -------------------------------------------------------- *)

let judge ~seed artifact =
  match artifact with
  | Corrupt_schedule sched -> Check.killed_by (Check.all ~seed sched)
  | Corrupt_mve (mve, sched) ->
      let trip = (3 * Schedule.stage_count sched) + 5 in
      let killed =
        match Interp.run_mve ~seed ~mve sched ~trip with
        | exception _ -> true
        | b ->
            not
              (Interp.equivalent
                 (Interp.run_sequential ~seed sched.Schedule.ddg ~trip)
                 b)
      in
      if killed then [ Check.Interp ] else []

let sweep ?(seed = 42) ?(salt = 0) ?(per_class = 5)
    ?(budget_ratio = Ims.default_budget_ratio) ddg =
  match (Ims.modulo_schedule ~budget_ratio ddg).Ims.schedule with
  | None -> []
  | Some s ->
      List.concat_map
        (fun c ->
          (* Deterministic corruptions are generated once; randomized
             ones get an independent seeded stream per (class, k). *)
          let count = match c with Wrong_stage -> 1 | _ -> per_class in
          List.filter_map
            (fun k ->
              let rng =
                Random.State.make [| seed; salt; class_index c; k |]
              in
              let made =
                match c with
                | Drop_edge -> drop_edge ~rng ~budget_ratio ddg s
                | Weaken_edge -> weaken_edge ~rng ~budget_ratio ddg s
                | Shift_op -> shift_op ~rng ddg s
                | Swap_slots -> swap_slots ~rng ddg s
                | Lower_resource -> lower_resource ~rng ddg s
                | Inflate_reservation -> inflate_reservation ~rng ddg s
                | Wrong_stage -> wrong_stage ddg s
              in
              Option.map
                (fun (description, artifact) ->
                  let killed_by = judge ~seed artifact in
                  let exp_ = expected c in
                  {
                    cls = c;
                    description;
                    killed_by;
                    expected_hit =
                      List.exists (fun ch -> List.mem ch exp_) killed_by;
                  })
                made)
            (List.init count Fun.id))
        classes

let aggregate results =
  List.map
    (fun c ->
      let rs = List.filter (fun (r : result_) -> r.cls = c) results in
      {
        cls = c;
        mutants = List.length rs;
        killed =
          List.length (List.filter (fun (r : result_) -> r.killed_by <> []) rs);
        expected_hits =
          List.length (List.filter (fun (r : result_) -> r.expected_hit) rs);
      })
    classes

let escapees results =
  List.filter
    (fun (r : result_) -> must_kill r.cls && not r.expected_hit)
    results
