(** The unified checker stack: one layered verdict over every validator
    the repository has.

    Four independent checkers, ordered from structural to semantic:

    + {b lint} ({!Lint.schedule}) — the artifact is well formed enough
      for the deeper checkers to run at all;
    + {b verify} ({!Ims_core.Schedule.verify}) — every dependence edge
      satisfied and the modulo reservation table within capacity;
    + {b simulator} ({!Ims_pipeline.Simulator.run}) — cycle-accurate
      replay deriving value timing and resource occupancy from first
      principles, independent of the dependence graph;
    + {b interp} ({!Ims_pipeline.Interp.check}) — semantic execution:
      the pipelined loop computes bit-identical results to the
      sequential one, through the issue order, the finite MVE register
      set and the physical rotating file.

    {!all} always runs all four (a checker that raises is reported as
    its own failure, never propagated), so a verdict states what every
    layer thought — which is exactly what the mutation engine
    ({!Mutate}) needs to attribute kills. *)

open Ims_core
open Ims_obs

type checker = Lint | Verify | Simulator | Interp

val all_checkers : checker list
(** In run order: [[Lint; Verify; Simulator; Interp]]. *)

val checker_name : checker -> string
(** ["lint"], ["verify"], ["simulator"], ["interp"] — the stable tags
    used in traces, metrics and reports. *)

type failure = {
  checker : checker;
  diagnostics : string list;  (** Non-empty. *)
}

type verdict = { failures : failure list (** Empty means fully legal. *) }

val passed : verdict -> bool

val killed_by : verdict -> checker list
(** The checkers that objected, in run order. *)

val all :
  ?trip:int ->
  ?seed:int ->
  ?trace:Trace.t ->
  ?metrics:Metrics.t ->
  Schedule.t ->
  verdict
(** Run the whole stack.  Each checker executes under a
    ["check.NAME"] trace span; [metrics] (when given) counts
    ["check.NAME.runs"] and ["check.NAME.failures"].  [trip] and [seed]
    are forwarded to the simulator and the interpreter. *)

val summary : verdict -> string
(** One line: ["all checks passed (lint, verify, simulator, interp)"] or
    ["verify: 2 diagnostics; interp: 1 diagnostic"]. *)

val pp : Format.formatter -> verdict -> unit
(** Every diagnostic, one per line, prefixed with its checker. *)
