(** Structural well-formedness lint — the first rung of the checker
    ladder.

    {!Ims_core.Schedule.verify}, {!Ims_pipeline.Simulator.run} and
    {!Ims_pipeline.Interp.check} all assume their input artifacts are
    {e structurally} sane: dense ids, resolvable opcodes, in-range
    resource references, non-negative times.  A corrupted artifact that
    violates those assumptions can crash a checker instead of being
    diagnosed by it.  The lint closes that gap: it never raises, only
    reports, and an empty diagnostics list means the deeper checkers may
    safely run.

    Each function returns human-readable diagnostics; [[]] means
    clean. *)

open Ims_machine
open Ims_ir
open Ims_core

val machine : Machine.t -> string list
(** Resource ids dense and multiplicities positive; every opcode with a
    non-negative latency and at least one alternative; every reservation
    table referencing only known resources at non-negative cycles; no
    single alternative demanding more copies of a resource in one cycle
    than the machine has (such a table could never be issued at all). *)

val ddg : Ddg.t -> string list
(** START/STOP pseudo-ops present at ids 0 and n-1; every [ops.(i)]
    carrying id [i]; every real opcode resolvable in the machine; operand
    and edge distances non-negative; every edge filed under its source
    with an in-range destination, and the successor/predecessor mirrors
    agreeing. *)

val schedule : Schedule.t -> string list
(** All of the above for the schedule's machine and graph, plus: II at
    least 1, every operation at a non-negative time, and every chosen
    alternative index in range for its opcode. *)
