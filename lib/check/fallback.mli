(** Graceful degradation: modulo schedule if possible, prove it, and
    otherwise fall back to the acyclic list schedule.

    The degradation ladder (doc/ARCHITECTURE.md):

    + run the iterative modulo scheduler — a crash is contained;
    + run the full checker stack ({!Check.all}) on its schedule;
    + on budget exhaustion at the II cap, a checker objection, or a
      scheduler crash, fall back to {!Ims_core.List_sched}: no
      pipelining, II = schedule length, correctness by construction —
      and run the checker stack on {e that} too.

    The result always carries a schedule and a verdict; [degraded]
    records why pipelining was given up, and callers map it to exit
    code 2 (degraded) as opposed to 1 (failed).  The driver never
    raises on scheduler or checker trouble; only a loop the list
    scheduler itself cannot place (a malformed graph) still escapes, as
    [Failure]. *)

open Ims_ir
open Ims_core
open Ims_mii
open Ims_obs

type reason =
  | Budget_exhausted of { max_ii : int; attempts : int }
      (** Every candidate II up to [max_ii] failed within budget. *)
  | Checker_failed of Check.verdict
      (** The scheduler produced a schedule the stack rejects — a
          scheduler bug surfaced as degradation, not as wrong code. *)
  | Scheduler_crashed of string
      (** The scheduler raised; the printed exception. *)
  | Cancelled of { elapsed : float; limit : float }
      (** A wall-clock deadline preempted the scheduler mid-search; the
          fallback was produced afterwards (without a deadline) so the
          loop still ships a checked acyclic schedule.  Used by the
          batch quarantine path via {!fallback} — the ladder itself
          never swallows a cancellation. *)

type t = {
  schedule : Schedule.t;  (** Modulo schedule, or the fallback. *)
  verdict : Check.verdict;  (** {!Check.all} on [schedule]. *)
  degraded : reason option;  (** [None]: pipelined and fully checked. *)
  ims : Ims.outcome option;
      (** The scheduler outcome, when it returned at all (statistics
          remain reportable even for degraded runs). *)
}

val reason_kind : reason -> string
(** Stable tag for reports: ["budget_exhausted"], ["checker_failed"],
    ["scheduler_crashed"], ["cancelled"]. *)

val describe : reason -> string
(** One human-readable line. *)

val fallback :
  ?trip:int ->
  ?seed:int ->
  ?trace:Trace.t ->
  ?metrics:Metrics.t ->
  Ddg.t ->
  reason:reason ->
  t
(** Produce the degraded result directly: the checked acyclic list
    schedule annotated with [reason], no scheduler outcome.  The batch
    quarantine path uses this to attach a safe schedule to loops whose
    pipelining attempt was cancelled.
    @raise Failure if even the list scheduler cannot place the loop. *)

val harden :
  ?trip:int ->
  ?seed:int ->
  ?trace:Trace.t ->
  ?metrics:Metrics.t ->
  Ddg.t ->
  Ims.outcome ->
  t
(** Judge an already-computed scheduler outcome (any of the three
    schedulers — they share the outcome shape) and degrade if needed. *)

val modulo_schedule_or_fallback :
  ?budget_ratio:float ->
  ?max_delta_ii:int ->
  ?counters:Counters.t ->
  ?trace:Trace.t ->
  ?metrics:Metrics.t ->
  ?priority:Ims.priority ->
  ?trip:int ->
  ?seed:int ->
  ?cancel:Cancel.t ->
  Ddg.t ->
  t
(** {!Ims_core.Ims.modulo_schedule} under the full ladder: crash
    containment, checker stack, fallback.  The scheduler options are
    forwarded verbatim; [trip] and [seed] go to the checkers.

    [cancel] is forwarded to the scheduler, and a fired token
    {e re-raises} {!Ims_obs.Cancel.Cancelled} instead of degrading:
    crash containment must not swallow the caller's own preemption
    (the batch engine converts it to a structured outcome and, for
    quarantined loops, computes {!fallback} separately without a
    deadline). *)
