open Ims_ir
open Ims_mii
open Ims_core

type result = {
  outcome : Ims.outcome;
  schedule : Schedule.t;
  allocation : Rotreg.t;
  ii_paid : int;
  retries : int;
}

(* One scheduling attempt at a fixed II (reusing the iterative engine
   directly so the candidate II is ours to choose), followed by
   compaction and allocation. *)
let attempt ~budget_ratio ddg ~ii =
  let n = Ddg.n_total ddg in
  let budget = max 1 (int_of_float (budget_ratio *. float_of_int n)) in
  match Ims.iterative_schedule ddg ~ii ~budget with
  | None -> None
  | Some s ->
      let compacted = (Compact.improve s).Compact.schedule in
      Some (compacted, Rotreg.allocate compacted)

let schedule ?(budget_ratio = Ims.default_budget_ratio) ?(max_retries = 64)
    ?(trace = Ims_obs.Trace.null) ddg ~max_rotating =
  let unconstrained = Ims.modulo_schedule ~budget_ratio ddg in
  match unconstrained.Ims.schedule with
  | None -> Error "pressure: the loop does not schedule at all"
  | Some _ ->
      let base_ii = unconstrained.Ims.ii in
      let rec search ii retries =
        if retries > max_retries then
          Error
            (Printf.sprintf
               "pressure: %d rotating registers do not suffice within II %d"
               max_rotating ii)
        else begin
          if retries > 0 then
            Ims_obs.Trace.instant trace
              (Printf.sprintf "pressure.retry ii=%d" ii);
          match attempt ~budget_ratio ddg ~ii with
          | None -> search (ii + 1) (retries + 1)
          | Some (sched, alloc) ->
              if alloc.Rotreg.file_size <= max_rotating then
                Ok
                  {
                    outcome = unconstrained;
                    schedule = sched;
                    allocation = alloc;
                    ii_paid = ii - base_ii;
                    retries;
                  }
              else search (ii + 1) (retries + 1)
        end
      in
      search base_ii 0

let demand_profile ddg ~ii_range:(lo, hi) =
  List.filter_map
    (fun ii ->
      if Recmii.feasible ddg ~ii then
        Option.map
          (fun (_, alloc) -> (ii, alloc.Rotreg.file_size))
          (attempt ~budget_ratio:Ims.default_budget_ratio ddg ~ii)
      else None)
    (List.init (max 0 (hi - lo + 1)) (fun i -> lo + i))
