open Ims_ir
open Ims_core

type outcome = { memory : (int * float) list; finals : (int * float) list }

let float_eq a b = (Float.is_nan a && Float.is_nan b) || a = b

(* Live-in values: distinct, non-zero, and — when used as addresses —
   a megabyte apart so address streams never collide within a run.
   Instances before iteration 0 (the EVR preloads that precondition
   back-substituted chains, j = -1, -2, ...) step back by one stride per
   instance, exactly as the compensation code before a back-substituted
   loop would set them up. *)
let live_in ~seed r j =
  assert (j < 0);
  float_of_int (r + 1) *. 1_048_576.0
  +. (float_of_int (((r + seed) * 7919) mod 101) /. 8.0)
  +. 1.0
  +. (8.0 *. float_of_int (j + 1))

(* Uninitialised memory reads a deterministic function of the address. *)
let default_cell addr =
  1.0 +. (float_of_int (addr * 2654435761 land 0xFFFF) /. 65536.0)

let stride = 8.0

exception Unsupported of string

(* Execute one operation instance given [read (reg, distance)] and
   [write reg value] callbacks and the memory table. *)
let exec mem (o : Op.t) ~read ~write =
  let guarded_off =
    match o.Op.pred with
    | Some p -> read (p.Op.reg, p.Op.distance) = 0.0
    | None -> false
  in
  if not guarded_off then begin
    let srcs = List.map (fun (s : Op.operand) -> read (s.Op.reg, s.Op.distance)) o.Op.srcs in
    let out =
      match (o.Op.opcode, srcs) with
      | ("aadd" | "asub"), [ a ] ->
          (* An address stream.  The stride is the explicit immediate
             when present; otherwise one stride per iteration hopped (a
             back-substituted self reference at distance d advances d
             strides, keeping consecutive addresses one stride apart). *)
          let delta =
            match o.Op.imm with
            | Some v -> v
            | None ->
                let d =
                  match o.Op.srcs with
                  | [ s ] -> max 1 s.Op.distance
                  | _ -> 1
                in
                stride *. float_of_int d
          in
          Some (if o.Op.opcode = "aadd" then a +. delta else a -. delta)
      | ("aadd" | "add" | "fadd"), first :: rest ->
          Some (List.fold_left ( +. ) first rest)
      | ("asub" | "sub" | "fsub"), first :: rest ->
          Some (List.fold_left ( -. ) first rest)
      | ("mul" | "fmul"), first :: rest ->
          Some (List.fold_left ( *. ) first rest)
      | ("div" | "fdiv"), first :: rest ->
          Some (first /. List.fold_left ( *. ) 1.0 rest)
      | "sqrt", [ a ] -> Some (Float.sqrt (Float.abs a))
      | "copy", a :: _ -> Some a
      | ("cmp" | "fcmp"), [ a; b ] -> Some (if a < b then 1.0 else 0.0)
      | "pred_set", [ c ] -> Some (if c <> 0.0 then 1.0 else 0.0)
      | "pred_reset", [ c ] -> Some (if c <> 0.0 then 0.0 else 1.0)
      | "store", [ a; v ] ->
          Hashtbl.replace mem (int_of_float a) v;
          None
      | "load", [ a ] ->
          let addr = int_of_float a in
          Some (Option.value ~default:(default_cell addr) (Hashtbl.find_opt mem addr))
      | "branch", _ -> None
      | opcode, srcs ->
          raise
            (Unsupported
               (Printf.sprintf "no semantics for %s/%d" opcode (List.length srcs)))
    in
    match (out, o.Op.dsts) with
    | Some v, dsts -> List.iter (fun r -> write r v) dsts
    | None, _ -> ()
  end

let outcome_of ~seed ~trip ddg instances mem =
  ignore seed;
  let defined = Hashtbl.create 32 in
  List.iter
    (fun i -> List.iter (fun r -> Hashtbl.replace defined r ()) (Ddg.op ddg i).Op.dsts)
    (Ddg.real_ids ddg);
  let finals =
    Hashtbl.fold (fun r () acc -> r :: acc) defined []
    |> List.sort compare
    |> List.filter_map (fun r ->
           let rec youngest j =
             if j < 0 then None
             else
               match Hashtbl.find_opt instances (r, j) with
               | Some v -> Some (r, v)
               | None -> youngest (j - 1)
           in
           youngest (trip - 1))
  in
  let memory =
    Hashtbl.fold (fun addr v acc -> (addr, v) :: acc) mem []
    |> List.sort compare
  in
  { memory; finals }

let sequential_instances ~seed ddg ~trip =
  let instances = Hashtbl.create 256 in
  let mem = Hashtbl.create 256 in
  for i = 0 to trip - 1 do
    List.iter
      (fun id ->
        let o = Ddg.op ddg id in
        let read (r, d) =
          (* Registers keep their value across unwritten iterations; the
             preloaded instances (negative indices) are distinct. *)
          let target = i - d in
          let rec walk j =
            if j < 0 then live_in ~seed r (min target (-1))
            else
              match Hashtbl.find_opt instances (r, j) with
              | Some v -> v
              | None -> walk (j - 1)
          in
          walk target
        in
        let write r v = Hashtbl.replace instances (r, i) v in
        exec mem o ~read ~write)
      (Ddg.real_ids ddg)
  done;
  (instances, mem)

let run_sequential ?(seed = 42) ddg ~trip =
  let instances, mem = sequential_instances ~seed ddg ~trip in
  outcome_of ~seed ~trip ddg instances mem

(* Supported for overlapped replay: every register the loop defines gets
   an instance on every iteration (checked dynamically on a short
   sequential run), so distance-d reads resolve to exactly (r, i-d). *)
let supported ddg =
  let trip = 6 in
  match sequential_instances ~seed:42 ddg ~trip with
  | exception Unsupported _ -> false
  | instances, _ ->
      let defined = Hashtbl.create 32 in
      List.iter
        (fun i ->
          List.iter (fun r -> Hashtbl.replace defined r ()) (Ddg.op ddg i).Op.dsts)
        (Ddg.real_ids ddg);
      Hashtbl.fold
        (fun r () acc ->
          acc
          && List.for_all
               (fun i -> Hashtbl.mem instances (r, i))
               (List.init trip Fun.id))
        defined true

let run_pipelined ?(seed = 42) sched ~trip =
  let ddg = sched.Schedule.ddg in
  if not (supported ddg) then
    invalid_arg "Interp.run_pipelined: loop has partially-defined registers";
  let ii = sched.Schedule.ii in
  let order =
    List.concat_map
      (fun i ->
        List.map (fun id -> (Schedule.time sched id + (i * ii), i, id))
          (Ddg.real_ids ddg))
      (List.init trip Fun.id)
    |> List.sort compare
  in
  let instances = Hashtbl.create 256 in
  let mem = Hashtbl.create 256 in
  List.iter
    (fun (_, i, id) ->
      let o = Ddg.op ddg id in
      let read (r, d) =
        let j = i - d in
        if j < 0 then live_in ~seed r j
        else
          match Hashtbl.find_opt instances (r, j) with
          | Some v -> v
          | None ->
              (* Live-in register (never defined in the loop). *)
              live_in ~seed r (-1)
      in
      let write r v = Hashtbl.replace instances (r, i) v in
      exec mem o ~read ~write)
    order;
  outcome_of ~seed ~trip ddg instances mem

let equivalent a b =
  let eq_list l1 l2 =
    List.length l1 = List.length l2
    && List.for_all2 (fun (k1, v1) (k2, v2) -> k1 = k2 && float_eq v1 v2) l1 l2
  in
  eq_list a.memory b.memory && eq_list a.finals b.finals


let replay_finite ?(seed = 42) sched ~trip ~write ~read ~snapshot =
  let ddg = sched.Schedule.ddg in
  if not (supported ddg) then
    invalid_arg "Interp: loop has partially-defined registers";
  let ii = sched.Schedule.ii in
  let order =
    List.concat_map
      (fun i ->
        List.map (fun id -> (Schedule.time sched id + (i * ii), i, id))
          (Ddg.real_ids ddg))
      (List.init trip Fun.id)
    |> List.sort compare
  in
  let mem = Hashtbl.create 256 in
  List.iter
    (fun (_, i, id) ->
      let o = Ddg.op ddg id in
      let read (r, d) = read ~seed (r, d) ~iter:i in
      let write r v = write r v ~iter:i in
      exec mem o ~read ~write)
    order;
  let defined = Hashtbl.create 32 in
  List.iter
    (fun i ->
      List.iter (fun r -> Hashtbl.replace defined r ()) (Ddg.op ddg i).Op.dsts)
    (Ddg.real_ids ddg);
  let finals =
    Hashtbl.fold (fun r () acc -> r :: acc) defined []
    |> List.sort compare
    |> List.filter_map (fun r -> snapshot r ~last_iter:(trip - 1))
  in
  let memory =
    Hashtbl.fold (fun addr v acc -> (addr, v) :: acc) mem [] |> List.sort compare
  in
  { memory; finals }

let run_mve ?(seed = 42) ?mve sched ~trip =
  let ddg = sched.Schedule.ddg in
  let mve = match mve with Some m -> m | None -> Mve.expand sched in
  let k = mve.Mve.unroll in
  let cells : (string, float) Hashtbl.t = Hashtbl.create 64 in
  let defined = Hashtbl.create 32 in
  List.iter
    (fun i ->
      List.iter (fun r -> Hashtbl.replace defined r ()) (Ddg.op ddg i).Op.dsts)
    (Ddg.real_ids ddg);
  let write r v ~iter =
    Hashtbl.replace cells (Mve.rename mve ~reg:r ~copy:(iter mod k) ~distance:0) v
  in
  let read ~seed (r, d) ~iter =
    if not (Hashtbl.mem defined r) then live_in ~seed r (-1)
    else begin
      let j = iter - d in
      if j < 0 then live_in ~seed r (min (-1) j)
      else
        match
          Hashtbl.find_opt cells (Mve.rename mve ~reg:r ~copy:(iter mod k) ~distance:d)
        with
        | Some v -> v
        | None -> live_in ~seed r (-1)
    end
  in
  let snapshot r ~last_iter =
    if last_iter < 0 then None
    else
      Option.map
        (fun v -> (r, v))
        (Hashtbl.find_opt cells
           (Mve.rename mve ~reg:r ~copy:(last_iter mod k) ~distance:0))
  in
  replay_finite ~seed sched ~trip ~write ~read ~snapshot

let run_rotating ?(seed = 42) sched ~trip =
  let ddg = sched.Schedule.ddg in
  let alloc = Rotreg.allocate sched in
  let size = max 1 alloc.Rotreg.file_size in
  let file = Array.make size None in
  let defined = Hashtbl.create 32 in
  List.iter
    (fun i ->
      List.iter (fun r -> Hashtbl.replace defined r ()) (Ddg.op ddg i).Op.dsts)
    (Ddg.real_ids ddg);
  (* The file rotates down one position per iteration: architectural
     register [x] read in iteration [i] is physical cell [(x - i) mod
     size].  A definition of [v] (architectural [base_v]) in iteration
     [j] and its distance-[d] reader (architectural [base_v + d]) in
     iteration [j + d] thus meet in the same physical cell. *)
  let cell arch ~iter = ((arch - iter) mod size + size) mod size in
  let write r v ~iter =
    match Rotreg.base_of alloc r with
    | Some base -> file.(cell base ~iter) <- Some v
    | None -> ()
  in
  let read ~seed (r, d) ~iter =
    if not (Hashtbl.mem defined r) then live_in ~seed r (-1)
    else begin
      let j = iter - d in
      if j < 0 then live_in ~seed r (min (-1) j)
      else
        match Rotreg.base_of alloc r with
        | Some base -> (
            match file.(cell (base + d) ~iter) with
            | Some v -> v
            | None -> live_in ~seed r (-1))
        | None -> live_in ~seed r (-1)
    end
  in
  let snapshot r ~last_iter =
    if last_iter < 0 then None
    else
      match Rotreg.base_of alloc r with
      | Some base ->
          Option.map (fun v -> (r, v)) file.(cell base ~iter:last_iter)
      | None -> None
  in
  replay_finite ~seed sched ~trip ~write ~read ~snapshot

let run_sequential_with_exit ?(seed = 42) ddg ~exit_op ~max_trip =
  let instances = Hashtbl.create 256 in
  let mem = Hashtbl.create 256 in
  let exit_iter = ref max_trip in
  let i = ref 0 in
  while !i < max_trip && !exit_iter = max_trip do
    let iter = !i in
    let taken = ref false in
    List.iter
      (fun id ->
        if not !taken || id <= exit_op then begin
          let o = Ddg.op ddg id in
          let read (r, d) =
            let target = iter - d in
            let rec walk j =
              if j < 0 then live_in ~seed r (min target (-1))
              else
                match Hashtbl.find_opt instances (r, j) with
                | Some v -> v
                | None -> walk (j - 1)
            in
            walk target
          in
          let write r v = Hashtbl.replace instances (r, iter) v in
          exec mem o ~read ~write;
          if id = exit_op then begin
            let cond =
              match o.Op.srcs with
              | (c : Op.operand) :: _ -> read (c.Op.reg, c.Op.distance)
              | [] -> 0.0
            in
            if cond <> 0.0 then begin
              taken := true;
              exit_iter := iter
            end
          end
        end)
      (Ddg.real_ids ddg);
    incr i
  done;
  let trip = if !exit_iter = max_trip then max_trip else !exit_iter + 1 in
  (outcome_of ~seed ~trip ddg instances mem, !exit_iter)

let run_pipelined_with_exit ?(seed = 42) sched ~exit_op ~max_trip =
  let ddg = sched.Schedule.ddg in
  if not (supported ddg) then
    invalid_arg "Interp: loop has partially-defined registers";
  (* First find the dynamic exit iteration from the sequential
     semantics (the values, hence the exit decision, are the same). *)
  let _, exit_iter = run_sequential_with_exit ~seed ddg ~exit_op ~max_trip in
  let ii = sched.Schedule.ii in
  let resolve_time =
    Schedule.time sched exit_op
    + Ims_machine.Machine.latency ddg.Ddg.machine (Ddg.op ddg exit_op).Op.opcode
    + (exit_iter * ii)
  in
  let executes (i, id) =
    if i < exit_iter then true
    else if i = exit_iter then id <= exit_op
    else begin
      (* Younger iterations: everything issued before the exit resolved
         ran speculatively.  Register writes are harmless (their cells
         are dead once the loop exits) but stores commit — which is why
         hazardous schedules diverge. *)
      Schedule.time sched id + (i * ii) < resolve_time
    end
  in
  let order =
    List.concat_map
      (fun i ->
        List.filter_map
          (fun id ->
            if executes (i, id) then
              Some (Schedule.time sched id + (i * ii), i, id)
            else None)
          (Ddg.real_ids ddg))
      (List.init (min max_trip (exit_iter + Schedule.stage_count sched + 1)) Fun.id)
    |> List.sort compare
  in
  let instances = Hashtbl.create 256 in
  let mem = Hashtbl.create 256 in
  List.iter
    (fun (_, i, id) ->
      let o = Ddg.op ddg id in
      let read (r, d) =
        let j = i - d in
        if j < 0 then live_in ~seed r j
        else
          match Hashtbl.find_opt instances (r, j) with
          | Some v -> v
          | None -> live_in ~seed r (-1)
      in
      let write r v = Hashtbl.replace instances (r, i) v in
      exec mem o ~read ~write)
    order;
  let trip = if exit_iter = max_trip then max_trip else exit_iter + 1 in
  (outcome_of ~seed ~trip ddg instances mem, exit_iter)

let check ?(seed = 42) ?metrics ?trip sched =
  let replays =
    Option.map (fun m -> Ims_obs.Metrics.counter m "interp.replays") metrics
  in
  let ddg = sched.Schedule.ddg in
  if not (supported ddg) then Ok ()
  else begin
    let trip =
      Option.value ~default:((3 * Schedule.stage_count sched) + 5) trip
    in
    match run_sequential ~seed ddg ~trip with
    | exception Unsupported msg -> Error msg
    | reference ->
        let modes =
          [
            ("overlapped issue order", run_pipelined ?seed:(Some seed));
            ("finite MVE registers", fun sched ~trip -> run_mve ~seed sched ~trip);
            ("physical rotating file", run_rotating ?seed:(Some seed));
          ]
        in
        List.fold_left
          (fun acc (label, run) ->
            match acc with
            | Error _ -> acc
            | Ok () ->
                Option.iter Ims_obs.Metrics.incr replays;
                let b = run sched ~trip in
                if equivalent reference b then Ok ()
                else
                  Error
                    (Printf.sprintf
                       "%s diverges from sequential execution (%d memory \
                        cells vs %d, %d finals vs %d)"
                       label (List.length reference.memory)
                       (List.length b.memory)
                       (List.length reference.finals)
                       (List.length b.finals)))
          (Ok ()) modes
  end

(* Shared driver: replay iterations in schedule (issue) order with a
   caller-supplied finite register model, then rebuild the outcome from
   the final sequential re-read of the same model.  [write cell value]
   and [read (reg, distance) ~iter] hide the register structure. *)
