(** Register-pressure-limited modulo scheduling.

    The Cydra 5's rotating file held 64 registers; a schedule whose
    lifetimes demand more cannot be allocated and must be rescheduled.
    The standard recourse (Rau et al. 1992; the motivation behind Huff's
    lifetime sensitivity) is to retry at a larger II: fewer iterations
    overlap, lifetimes span fewer kernel copies, and demand falls.

    This driver wraps a scheduler with that feedback loop: schedule,
    lifetime-compact, allocate rotating registers; if the file is over
    budget, raise the II and repeat. *)

open Ims_ir
open Ims_core

type result = {
  outcome : Ims.outcome;  (** The accepted schedule's outcome. *)
  schedule : Schedule.t;  (** After lifetime compaction. *)
  allocation : Rotreg.t;
  ii_paid : int;
      (** Achieved II minus the unconstrained II — the cycles per
          iteration the register budget cost. *)
  retries : int;
}

val schedule :
  ?budget_ratio:float ->
  ?max_retries:int ->
  ?trace:Ims_obs.Trace.t ->
  Ddg.t ->
  max_rotating:int ->
  (result, string) Result.t
(** [Error] if no II within [max_retries] (default 64) of the
    unconstrained one fits the file.  Each retry at a raised II emits a
    ["pressure.retry ii=K"] instant event on [trace]. *)

val demand_profile : Ddg.t -> ii_range:int * int -> (int * int) list
(** [(ii, rotating registers after compaction)] over an II range — how
    pressure falls as the pipeline relaxes. *)
