(** Semantic execution of loops: does the pipelined loop compute the
    same values as the sequential one?

    {!Schedule.verify} and {!Simulator.run} check timing — dependences
    and resources.  This module checks {e meaning}: it gives every
    opcode an arithmetic semantics, runs the loop body [trip] times
    sequentially, then re-runs the same iterations in the modulo
    schedule's global issue order (operation [o] of iteration [i] at
    cycle [time(o) + i*II]), and compares every memory cell and every
    loop-carried register.  Because both runs perform the identical
    per-iteration data flow, the float results must match bit for bit;
    any divergence means a dependence the scheduler was allowed to
    break — a front-end bug, not merely a scheduling one.

    Opcode semantics (all values are floats): arithmetic as expected;
    single-source [aadd]/[asub] advance an address stream by the
    implicit stride 8; [load]/[store] act on a sparse memory whose
    uninitialised cells read a deterministic function of the address;
    [cmp]/[fcmp] produce 1.0/0.0 for "first < second"; [pred_set] tests
    non-zero, [pred_reset] its complement; a guarded operation whose
    predicate is 0 writes nothing.

    {!supported} restricts the pipelined replay to loops where every
    register written under a predicate is written on {e every} iteration
    (complementary guard arms) — otherwise a reader needs the
    youngest surviving instance, whose producer the overlapped order is
    not obliged to have executed yet. *)

open Ims_ir
open Ims_core

type outcome = {
  memory : (int * float) list;  (** Written cells, ascending address. *)
  finals : (int * float) list;
      (** Last-iteration value of every register the loop writes. *)
}

val supported : Ddg.t -> bool

val run_sequential : ?seed:int -> Ddg.t -> trip:int -> outcome

val run_pipelined : ?seed:int -> Schedule.t -> trip:int -> outcome
(** @raise Invalid_argument if the loop is not {!supported}. *)

val equivalent : outcome -> outcome -> bool
(** Bit-exact agreement (NaN equal to NaN). *)

val check :
  ?seed:int ->
  ?metrics:Ims_obs.Metrics.t ->
  ?trip:int ->
  Schedule.t ->
  (unit, string) result
(** Sequential execution against all three overlapped replays — issue
    order, finite MVE registers, and the physical rotating file — for a
    supported loop ([trip] defaults to 3 * stages + 5); [Ok] for
    unsupported loops (nothing to disprove).  [metrics] counts each
    replay actually performed under ["interp.replays"]. *)

val run_mve : ?seed:int -> ?mve:Mve.t -> Schedule.t -> trip:int -> outcome
(** Replay through the {e finite} register set of the MVE schema: each
    loop variant has exactly [Mve] unroll-factor cells, written and read
    through {!Mve.rename}'s instance arithmetic.  If the kernel-unroll
    factor were too small, a value would be clobbered before its last
    reader and the outcome would diverge from {!run_sequential} — this
    is the semantic check of modulo variable expansion.

    [mve] (default [Mve.expand sched]) substitutes a different
    expansion — the fault-injection hook: replaying through a
    deliberately mis-numbered expansion (e.g. one stage too few) must
    diverge, which is how the mutation engine proves this checker is
    alive.
    @raise Invalid_argument if the loop is not {!supported}. *)

val run_rotating : ?seed:int -> Schedule.t -> trip:int -> outcome
(** Replay through the physical rotating register file of
    {!Rotreg.allocate}: the file rotates by one position per iteration,
    a definition of [v] in iteration [i] lands in physical cell
    [(base_v + i) mod size], and a distance-[d] reader finds it at
    [(base_v + d + j) mod size].  An allocation whose blocks overlap (or
    are too small for a lifetime) clobbers a live value and diverges.
    @raise Invalid_argument if the loop is not {!supported}. *)

val run_sequential_with_exit :
  ?seed:int -> Ddg.t -> exit_op:int -> max_trip:int -> outcome * int
(** Sequential reference for a loop with an early exit: iterations run
    until the exit operation's condition is non-zero (or [max_trip]);
    in the exiting iteration, operations after the exit in program
    order do not execute.  Returns the outcome and the exit iteration
    (or [max_trip] if the exit never fired). *)

val run_pipelined_with_exit :
  ?seed:int -> Schedule.t -> exit_op:int -> max_trip:int -> outcome * int
(** The overlapped execution of the same loop: every operation issued
    before the exit resolves executes — including {e speculative stores
    of younger iterations}, which commit to memory exactly as the
    hardware would.  On a schedule where stores are guarded against
    speculation ({!Exit_schema.guard_stores}), the outcome matches
    {!run_sequential_with_exit}; on a hazardous schedule the extra
    stores diverge — the semantic form of
    {!Exit_schema.speculation_hazards}. *)
