open Ims_obs
open Ims_exec

let format_version = 1
let header_kind = "imsc-schedule-cache"

let header_json =
  Json.Obj
    [
      ("kind", Json.String header_kind);
      ("version", Json.Int format_version);
    ]

type policy = Fifo | Lru

let policy_name = function Fifo -> "fifo" | Lru -> "lru"

let policy_of_string = function
  | "fifo" -> Ok Fifo
  | "lru" -> Ok Lru
  | s -> Error (Printf.sprintf "unknown cache policy %S (fifo|lru)" s)

(* Residency order is an intrusive doubly-linked list: head is the next
   eviction victim, tail the most recently inserted (FIFO) or used
   (LRU).  Both policies share every code path except the [find] bump. *)
type node = {
  key : string;
  record : string;
  line_bytes : int;  (* encoded log-line size, the byte-accounting unit *)
  mutable prev : node option;
  mutable next : node option;
}

type t = {
  capacity : int;
  max_bytes : int option;
  policy : policy;
  table : (string, node) Hashtbl.t;
  mutable head : node option;
  mutable tail : node option;
  mutable live_bytes : int;
  header_bytes : int;
  path : string option;
  mutable log : Append_log.t option;
  mutable log_bytes : int;
  m : Mutex.t;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
  mutable compactions : int;
  mutable loaded : int;
  mutable torn : bool;
}

let field obj k =
  match obj with Json.Obj kvs -> List.assoc_opt k kvs | _ -> None

let str_field obj k =
  match field obj k with Some (Json.String s) -> Some s | _ -> None

let int_field obj k =
  match field obj k with Some (Json.Int i) -> Some i | _ -> None

let parse_header line =
  match Json.of_string line with
  | Error e -> Error ("malformed cache header: " ^ e)
  | Ok obj -> (
      match (str_field obj "kind", int_field obj "version") with
      | Some kind, _ when kind <> header_kind ->
          Error (Printf.sprintf "not a schedule cache (kind %S)" kind)
      | Some _, Some v when v > format_version ->
          Error
            (Printf.sprintf
               "cache format version %d is newer than this build understands \
                (%d)"
               v format_version)
      | Some _, Some _ -> Ok ()
      | _ -> Error "first line is not a schedule-cache header")

let parse_entry line =
  match Json.of_string line with
  | Error _ -> None
  | Ok obj -> (
      match (str_field obj "key", str_field obj "record") with
      | Some key, Some record -> Some (key, record)
      | _ -> None)

let entry_json ~key record =
  Json.Obj [ ("key", Json.String key); ("record", Json.String record) ]

let entry_line_bytes ~key record =
  String.length (Json.to_string (entry_json ~key record)) + 1

(* --- linked-list plumbing (all under the caller's lock) -------------------- *)

let unlink t n =
  (match n.prev with Some p -> p.next <- n.next | None -> t.head <- n.next);
  (match n.next with Some s -> s.prev <- n.prev | None -> t.tail <- n.prev);
  n.prev <- None;
  n.next <- None

let push_tail t n =
  n.prev <- t.tail;
  n.next <- None;
  (match t.tail with Some p -> p.next <- Some n | None -> t.head <- Some n);
  t.tail <- Some n

let evict_head t =
  match t.head with
  | None -> ()
  | Some victim ->
      unlink t victim;
      Hashtbl.remove t.table victim.key;
      t.live_bytes <- t.live_bytes - victim.line_bytes;
      t.evictions <- t.evictions + 1

let over_byte_cap t =
  match t.max_bytes with
  | None -> false
  | Some mb -> t.header_bytes + t.live_bytes > mb

(* Unsynchronized insert used under the caller's lock (and during
   replay, before the cache is shared).  Returns whether the entry is
   resident afterwards (a record alone bigger than the byte cap is
   refused — it could never sit under the disk cap). *)
let insert t ~key record =
  if Hashtbl.mem t.table key then false
  else begin
    let line_bytes = entry_line_bytes ~key record in
    match t.max_bytes with
    | Some mb when t.header_bytes + line_bytes > mb ->
        t.evictions <- t.evictions + 1;
        false
    | _ ->
        let n = { key; record; line_bytes; prev = None; next = None } in
        Hashtbl.replace t.table key n;
        push_tail t n;
        t.live_bytes <- t.live_bytes + line_bytes;
        while Hashtbl.length t.table > t.capacity || over_byte_cap t do
          evict_head t
        done;
        Hashtbl.mem t.table key
  end

(* --- compaction ------------------------------------------------------------- *)

(* Live entries in eviction order (head first): replaying the compacted
   file rebuilds exactly this list, so hit/eviction behaviour after a
   warm restart is identical to the dying daemon's. *)
let live_records t =
  let rec go acc = function
    | None -> List.rev acc
    | Some n -> go (entry_json ~key:n.key n.record :: acc) n.next
  in
  go [] t.head

let compacted_size t = t.header_bytes + t.live_bytes

(* Under the lock.  Rewrites the log to hold exactly the live entries;
   a no-op when there is nothing to reclaim. *)
let compact_locked t =
  match (t.log, t.path) with
  | Some old_log, Some path when t.log_bytes > compacted_size t ->
      let log = Append_log.rewrite ~path ~header:header_json
          ~records:(live_records t)
      in
      Append_log.close old_log;
      t.log <- Some log;
      t.log_bytes <- compacted_size t;
      t.compactions <- t.compactions + 1;
      true
  | _ -> false

(* Compaction pays a full-file rewrite, so the online trigger waits for
   real garbage: the log holding more than twice the live set (plus
   slack so tiny caches don't thrash), or any overrun of the disk
   cap. *)
let needs_compaction t =
  t.log <> None
  && t.log_bytes > compacted_size t
  && ((match t.max_bytes with Some mb -> t.log_bytes > mb | None -> false)
     || t.log_bytes > (2 * compacted_size t) + 65536)

(* --- public API -------------------------------------------------------------- *)

let header_line_bytes = String.length (Json.to_string header_json) + 1

let open_ ?(capacity = 4096) ?max_bytes ?(policy = Fifo) ?path () =
  let capacity = max 1 capacity in
  let fresh () =
    {
      capacity;
      max_bytes;
      policy;
      table = Hashtbl.create (min capacity 1024);
      head = None;
      tail = None;
      live_bytes = 0;
      header_bytes = header_line_bytes;
      path;
      log = None;
      log_bytes = 0;
      m = Mutex.create ();
      hits = 0;
      misses = 0;
      evictions = 0;
      compactions = 0;
      loaded = 0;
      torn = false;
    }
  in
  match path with
  | None -> Ok (fresh ())
  | Some path ->
      let size =
        match (Unix.stat path).Unix.st_size with
        | s -> s
        | exception Unix.Unix_error (Unix.ENOENT, _, _) -> 0
      in
      if size = 0 then
        match Append_log.create ~path ~header:header_json () with
        | log ->
            let t = fresh () in
            t.log <- Some log;
            t.log_bytes <- t.header_bytes;
            Ok t
        | exception Unix.Unix_error (e, _, _) ->
            Error
              (Printf.sprintf "cannot create cache %s: %s" path
                 (Unix.error_message e))
      else (
        match Append_log.load ~path with
        | Error e -> Error (Printf.sprintf "cannot read cache %s: %s" path e)
        | Ok { Append_log.header; records; torn } -> (
            match parse_header header with
            | Error e -> Error (Printf.sprintf "%s: %s" path e)
            | Ok () ->
                (* Replay in file order: duplicates are first-wins like
                   [add], capacity evictions replay identically, so the
                   resident set equals what the dying daemon held (minus
                   any torn tail). *)
                let t = fresh () in
                t.torn <- torn;
                List.iter
                  (fun line ->
                    match parse_entry line with
                    | Some (key, record) ->
                        ignore (insert t ~key record);
                        t.loaded <- t.loaded + 1
                    | None -> ())
                  records;
                t.evictions <- 0 (* replay evictions don't count *);
                (match Append_log.reopen ~path () with
                | log ->
                    t.log <- Some log;
                    t.log_bytes <-
                      (match (Unix.stat path).Unix.st_size with
                      | s -> s
                      | exception Unix.Unix_error _ -> compacted_size t);
                    (* A reopened log may carry a dead daemon's garbage
                       (evicted entries, duplicates) or already overrun
                       the disk cap — reclaim before serving. *)
                    if needs_compaction t then ignore (compact_locked t);
                    Ok t
                | exception Unix.Unix_error (e, _, _) ->
                    Error
                      (Printf.sprintf "cannot reopen cache %s: %s" path
                         (Unix.error_message e)))))

let with_lock t f =
  Mutex.lock t.m;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.m) f

let find t ~key =
  with_lock t (fun () ->
      match Hashtbl.find_opt t.table key with
      | Some n ->
          t.hits <- t.hits + 1;
          (* LRU: a hit moves the entry to the fresh end; FIFO ignores
             use and evicts strictly by insertion age. *)
          if t.policy = Lru then begin
            unlink t n;
            push_tail t n
          end;
          Some n.record
      | None ->
          t.misses <- t.misses + 1;
          None)

let add t ~key record =
  with_lock t (fun () ->
      if insert t ~key record then begin
        match t.log with
        | Some log ->
            Append_log.append log (entry_json ~key record);
            t.log_bytes <- t.log_bytes + entry_line_bytes ~key record;
            if needs_compaction t then ignore (compact_locked t)
        | None -> ()
      end)

let compact t = with_lock t (fun () -> compact_locked t)

type stats = {
  hits : int;
  misses : int;
  evictions : int;
  compactions : int;
  entries : int;
  bytes : int;
  log_bytes : int;
  loaded : int;
  torn : bool;
}

let stats t =
  with_lock t (fun () ->
      {
        hits = t.hits;
        misses = t.misses;
        evictions = t.evictions;
        compactions = t.compactions;
        entries = Hashtbl.length t.table;
        bytes = t.live_bytes;
        log_bytes = t.log_bytes;
        loaded = t.loaded;
        torn = t.torn;
      })

let close t =
  with_lock t (fun () ->
      match t.log with Some log -> Append_log.close log | None -> ())
