open Ims_obs
open Ims_exec

let format_version = 1
let header_kind = "imsc-schedule-cache"

let header_json =
  Json.Obj
    [
      ("kind", Json.String header_kind);
      ("version", Json.Int format_version);
    ]

type t = {
  capacity : int;
  table : (string, string) Hashtbl.t;
  order : string Queue.t;  (* insertion order, for FIFO eviction *)
  log : Append_log.t option;
  m : Mutex.t;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
  loaded : int;
  torn : bool;
}

let field obj k =
  match obj with Json.Obj kvs -> List.assoc_opt k kvs | _ -> None

let str_field obj k =
  match field obj k with Some (Json.String s) -> Some s | _ -> None

let int_field obj k =
  match field obj k with Some (Json.Int i) -> Some i | _ -> None

let parse_header line =
  match Json.of_string line with
  | Error e -> Error ("malformed cache header: " ^ e)
  | Ok obj -> (
      match (str_field obj "kind", int_field obj "version") with
      | Some kind, _ when kind <> header_kind ->
          Error (Printf.sprintf "not a schedule cache (kind %S)" kind)
      | Some _, Some v when v > format_version ->
          Error
            (Printf.sprintf
               "cache format version %d is newer than this build understands \
                (%d)"
               v format_version)
      | Some _, Some _ -> Ok ()
      | _ -> Error "first line is not a schedule-cache header")

let parse_entry line =
  match Json.of_string line with
  | Error _ -> None
  | Ok obj -> (
      match (str_field obj "key", str_field obj "record") with
      | Some key, Some record -> Some (key, record)
      | _ -> None)

(* Unsynchronized insert used under the caller's lock (and during
   replay, before the cache is shared). *)
let insert t ~key record =
  if not (Hashtbl.mem t.table key) then begin
    Hashtbl.replace t.table key record;
    Queue.push key t.order;
    if Hashtbl.length t.table > t.capacity then begin
      let victim = Queue.pop t.order in
      Hashtbl.remove t.table victim;
      t.evictions <- t.evictions + 1
    end
  end

let open_ ?(capacity = 4096) ?path () =
  let capacity = max 1 capacity in
  let fresh ?log ?(loaded = 0) ?(torn = false) () =
    {
      capacity;
      table = Hashtbl.create (min capacity 1024);
      order = Queue.create ();
      log;
      m = Mutex.create ();
      hits = 0;
      misses = 0;
      evictions = 0;
      loaded;
      torn;
    }
  in
  match path with
  | None -> Ok (fresh ())
  | Some path ->
      let size =
        match (Unix.stat path).Unix.st_size with
        | s -> s
        | exception Unix.Unix_error (Unix.ENOENT, _, _) -> 0
      in
      if size = 0 then
        match Append_log.create ~path ~header:header_json with
        | log -> Ok (fresh ~log ())
        | exception Unix.Unix_error (e, _, _) ->
            Error
              (Printf.sprintf "cannot create cache %s: %s" path
                 (Unix.error_message e))
      else (
        match Append_log.load ~path with
        | Error e -> Error (Printf.sprintf "cannot read cache %s: %s" path e)
        | Ok { Append_log.header; records; torn } -> (
            match parse_header header with
            | Error e -> Error (Printf.sprintf "%s: %s" path e)
            | Ok () ->
                (* Replay in file order: duplicates are first-wins like
                   [add], evictions replay identically, so the resident
                   set equals what the dying daemon held (minus any torn
                   tail). *)
                let t = fresh ~torn () in
                let loaded = ref 0 in
                List.iter
                  (fun line ->
                    match parse_entry line with
                    | Some (key, record) ->
                        insert t ~key record;
                        incr loaded
                    | None -> ())
                  records;
                let t = { t with loaded = !loaded } in
                let t =
                  { t with evictions = 0 (* replay evictions don't count *) }
                in
                (match Append_log.reopen ~path with
                | log -> Ok { t with log = Some log }
                | exception Unix.Unix_error (e, _, _) ->
                    Error
                      (Printf.sprintf "cannot reopen cache %s: %s" path
                         (Unix.error_message e)))))

let with_lock t f =
  Mutex.lock t.m;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.m) f

let find t ~key =
  with_lock t (fun () ->
      match Hashtbl.find_opt t.table key with
      | Some r ->
          t.hits <- t.hits + 1;
          Some r
      | None ->
          t.misses <- t.misses + 1;
          None)

let add t ~key record =
  with_lock t (fun () ->
      if not (Hashtbl.mem t.table key) then begin
        insert t ~key record;
        match t.log with
        | Some log ->
            Append_log.append log
              (Json.Obj
                 [ ("key", Json.String key); ("record", Json.String record) ])
        | None -> ()
      end)

type stats = {
  hits : int;
  misses : int;
  evictions : int;
  entries : int;
  loaded : int;
  torn : bool;
}

let stats t =
  with_lock t (fun () ->
      {
        hits = t.hits;
        misses = t.misses;
        evictions = t.evictions;
        entries = Hashtbl.length t.table;
        loaded = t.loaded;
        torn = t.torn;
      })

let close t =
  with_lock t (fun () ->
      match t.log with Some log -> Append_log.close log | None -> ())
