type fault =
  | Pass
  | Torn of int
  | Garbage of int
  | Sever

type t = {
  rng : Random.State.t;
  m : Mutex.t;
  torn : float;
  garbage : float;
  sever : float;
  mutable injected : int;
}

let of_spec spec =
  let seed = ref 0 and torn = ref 0. and garbage = ref 0. and sever = ref 0. in
  let parse_field f =
    match String.index_opt f '=' with
    | None -> Error (Printf.sprintf "chaos: field %S is not key=value" f)
    | Some i -> (
        let k = String.sub f 0 i in
        let v = String.sub f (i + 1) (String.length f - i - 1) in
        let prob r =
          match float_of_string_opt v with
          | Some p when p >= 0. && p <= 1. ->
              r := p;
              Ok ()
          | _ -> Error (Printf.sprintf "chaos: %s needs a probability, got %S" k v)
        in
        match k with
        | "seed" -> (
            match int_of_string_opt v with
            | Some s ->
                seed := s;
                Ok ()
            | None -> Error (Printf.sprintf "chaos: bad seed %S" v))
        | "torn" -> prob torn
        | "garbage" -> prob garbage
        | "sever" -> prob sever
        | _ -> Error (Printf.sprintf "chaos: unknown field %S" k))
  in
  let rec go = function
    | [] ->
        if !torn +. !garbage +. !sever > 1. then
          Error "chaos: probabilities sum past 1"
        else
          Ok
            {
              rng = Random.State.make [| !seed |];
              m = Mutex.create ();
              torn = !torn;
              garbage = !garbage;
              sever = !sever;
              injected = 0;
            }
    | f :: rest -> ( match parse_field f with Ok () -> go rest | Error _ as e -> e)
  in
  go (List.filter (fun s -> s <> "") (String.split_on_char ',' spec))

let on_write t ~frame_len =
  Mutex.lock t.m;
  let u = Random.State.float t.rng 1.0 in
  let fault =
    if u < t.torn then
      if frame_len < 2 then Sever
      else Torn (1 + Random.State.int t.rng (frame_len - 1))
    else if u < t.torn +. t.garbage then
      Garbage (Random.State.int t.rng (max 1 frame_len))
    else if u < t.torn +. t.garbage +. t.sever then Sever
    else Pass
  in
  if fault <> Pass then t.injected <- t.injected + 1;
  Mutex.unlock t.m;
  fault

let injected t =
  Mutex.lock t.m;
  let n = t.injected in
  Mutex.unlock t.m;
  n
