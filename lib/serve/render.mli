(** The canonical per-loop report record, shared by [imsc batch] and
    the serve daemon.

    One definition, used by both paths, is what makes "a cache hit is
    byte-identical to a cold schedule" and "a served corpus is
    byte-identical to a batch run" checkable with [cmp] rather than
    arguable: the record's fields, order and rendering exist exactly
    once. *)

open Ims_obs

type scheduled = Ims_check.Fallback.t * int * int
(** (hardened outcome, schedule length, real-operation count) — what
    one loop's scheduling job returns. *)

val cache_key :
  machine_dump:string -> budget_ratio:float -> max_delta_ii:int ->
  dump:string -> string
(** The content-addressed cache key: {!Ims_exec.Content_hash} over the
    machine rendering, the scheduling flags, and the loop dump bytes —
    everything a completed schedule depends on (deadlines bound the
    search; they do not change its answer, and preempted searches are
    never cached). *)

val schedule_dump :
  machine:Ims_machine.Machine.t ->
  budget_ratio:float ->
  max_delta_ii:int ->
  ?counters:Ims_mii.Counters.t ->
  ?trace:Trace.t ->
  ?cancel:Cancel.t ->
  string ->
  scheduled
(** Parse a loop dump and run it through the degradation ladder — the
    serve worker's job body.  Raises like {!Ims_workloads.Loop_parse}
    and re-raises a fired [cancel] (the engine converts both to
    structured outcomes). *)

val done_fields : scheduled -> (string * Json.t) list
(** The successful record's fields: n/ii/sl, the scheduler statistics
    when the scheduler returned, and the degradation marker. *)

val casualty_extra :
  reparse:(unit -> Ims_ir.Ddg.t) ->
  'v Ims_exec.Outcome.t ->
  (string * Json.t) list
(** The quarantine annotations for non-ok outcomes: [quarantined:true],
    plus — for a cancelled loop whose [reparse] succeeds — the checked
    acyclic fallback's II and SL, so the record still carries a correct
    schedule for a loop whose pipelining was preempted. *)

val body_string :
  reparse:(unit -> Ims_ir.Ddg.t) -> scheduled Ims_exec.Outcome.t -> string
(** The rendered record minus its ["name"] member — the cacheable
    form; {!Ims_exec.Report.with_name} completes it per request. *)
