(** The scheduling daemon: an accept loop over a Unix-domain socket,
    feeding the {!Ims_exec.Exec.stream} worker pool through a bounded
    {!Ims_exec.Intake}.

    Division of labour:

    - the {e main domain} owns the listening socket and every
      connection's read side: it accepts, decodes {!Wire} frames,
      probes the {!Cache} (hits are answered inline, in microseconds,
      without touching the queue), and admits misses to the intake —
      or answers [Overloaded] when the queue is at its high-water mark;
    - {e worker domains} pull jobs from the intake, schedule them under
      the per-request deadline (an {!Ims_obs.Cancel} token armed by the
      stream engine), insert [Done] results into the cache and write
      the response frame themselves.

    Response writes are serialized per connection by a mutex; the main
    domain is the only closer of connection file descriptors, and
    closing is ordered after the write-permission flag flips under that
    same mutex, so a worker never writes to a recycled descriptor.

    Shutdown (a [shutdown] request, SIGTERM or SIGINT) stops accepting,
    closes the intake, drains queued jobs through the workers (their
    responses still go out), persists the final metrics snapshot and
    status heartbeat, and removes the socket. *)

type config = {
  socket : string;  (** Unix-domain socket path (mind sun_path limits). *)
  workers : int;  (** Scheduling domains. *)
  queue : int;  (** Admission high-water mark. *)
  cache_entries : int;  (** In-memory cache capacity. *)
  cache_max_bytes : int option;
      (** Byte cap on the resident cache {e and} its compacted log. *)
  cache_policy : Cache.policy;  (** [Fifo] or [Lru] eviction. *)
  cache_file : string option;  (** Persistent cache path. *)
  deadline : float option;
      (** Default per-request deadline (seconds), when the request
          itself carries none. *)
  conn_timeout : float option;
      (** Per-connection I/O deadline: a peer holding a frame
          incomplete (slow-loris read) or refusing to accept a response
          (blocked write) past this many seconds is severed. *)
  max_conns : int;
      (** Admission cap on simultaneous connections; excess accepts are
          answered with a structured [Overloaded] reply and closed.
          0 = unlimited. *)
  restarts : int;
      (** Supervisor generation (0 = first start / unsupervised);
          surfaced as the [serve.restarts] gauge so health probes can
          see crash history. *)
  status_file : string option;  (** Heartbeat snapshot path. *)
  status_interval : float;
  metrics_file : string option;  (** Final metrics snapshot path. *)
  inject_spin : (string * float) option;
      (** Test hook: requests with this name spin for this many seconds
          (cancellably) before scheduling — how the CLI tests hold the
          queue full and exercise backpressure and deadlines. *)
  chaos : Chaos.t option;
      (** Test hook: seeded socket-level fault injection on response
          writes ({!Chaos}); [None] in production. *)
}

val run :
  config ->
  machine_of:(string -> Ims_machine.Machine.t) ->
  log:Ims_obs.Log.t ->
  (unit, string) result
(** Serve until shutdown.  [machine_of] resolves a request's machine
    string (model name or description-file path; exceptions become
    per-request [Error] responses, and resolutions are memoized).
    [Error] for setup failures: unreadable cache, socket already
    served by a live daemon, bind failure. *)
