open Ims_obs
module U = Unix

module Backoff = struct
  type t = {
    base : float;
    cap : float;
    healthy : float;
    max_restarts : int;
    mutable streak : int;
  }

  let create ?(base = 0.25) ?(cap = 8.0) ?(healthy = 30.0) ?(max_restarts = 10)
      () =
    {
      base = Float.max 0.001 base;
      cap = Float.max 0.001 cap;
      healthy = Float.max 0. healthy;
      max_restarts = max 0 max_restarts;
      streak = 0;
    }

  type verdict = Restart of float | Give_up

  let on_crash t ~uptime =
    (* A child that stayed up past the healthy window earned a clean
       slate: only consecutive fast crashes open the breaker. *)
    if uptime >= t.healthy then t.streak <- 0;
    t.streak <- t.streak + 1;
    if t.streak > t.max_restarts then Give_up
    else Restart (Float.min t.cap (t.base *. (2. ** float_of_int (t.streak - 1))))

  let streak t = t.streak
end

let describe_status = function
  | U.WEXITED code -> Printf.sprintf "exited with code %d" code
  | U.WSIGNALED s -> Printf.sprintf "was killed by signal %d" s
  | U.WSTOPPED s -> Printf.sprintf "was stopped by signal %d" s

(* Sleep that a shutdown signal can cut short. *)
let interruptible_sleep ~stopped delay =
  let until = U.gettimeofday () +. delay in
  let rec go () =
    if not (stopped ()) then
      let remaining = until -. U.gettimeofday () in
      if remaining > 0. then begin
        (try U.sleepf (Float.min remaining 0.05)
         with U.Unix_error (U.EINTR, _, _) -> ());
        go ()
      end
  in
  go ()

let run ?(backoff = Backoff.create ()) ?pidfile ~log ~child () =
  let stop = ref false in
  let child_pid = ref None in
  let forward s =
    stop := true;
    match !child_pid with
    | Some pid -> ( try U.kill pid s with U.Unix_error _ -> ())
    | None -> ()
  in
  List.iter
    (fun s ->
      try Sys.set_signal s (Sys.Signal_handle forward)
      with Invalid_argument _ | Sys_error _ -> ())
    [ Sys.sigterm; Sys.sigint ];
  let restarts = ref 0 in
  let rec loop () =
    if !stop then Ok ()
    else
      match U.fork () with
      | 0 -> (
          (* The daemon generation: run it, and never return into the
             supervisor's loop — even on an exception. *)
          try exit (child ~restarts:!restarts)
          with e ->
            Printf.eprintf "imsc serve: daemon died: %s\n%!"
              (Printexc.to_string e);
            exit 125)
      | pid -> (
          child_pid := Some pid;
          (match pidfile with
          | Some path -> Status.write_atomic ~path (string_of_int pid ^ "\n")
          | None -> ());
          let started = U.gettimeofday () in
          let rec wait_child () =
            match U.waitpid [] pid with
            | _, status -> status
            | exception U.Unix_error (U.EINTR, _, _) -> wait_child ()
          in
          let status = wait_child () in
          child_pid := None;
          let uptime = U.gettimeofday () -. started in
          match status with
          | U.WEXITED 0 ->
              Log.info log "daemon exited cleanly after %.1fs; supervisor done"
                uptime;
              Ok ()
          | _ when !stop -> Ok ()
          | status -> (
              match Backoff.on_crash backoff ~uptime with
              | Backoff.Give_up ->
                  Error
                    (Printf.sprintf
                       "circuit breaker open: daemon %s — %d consecutive \
                        crash(es), giving up"
                       (describe_status status) (Backoff.streak backoff))
              | Backoff.Restart delay ->
                  incr restarts;
                  Log.warn log
                    "daemon %s after %.1fs; restart %d in %.2fs (crash streak \
                     %d)"
                    (describe_status status) uptime !restarts delay
                    (Backoff.streak backoff);
                  interruptible_sleep ~stopped:(fun () -> !stop) delay;
                  loop ()))
  in
  let result = loop () in
  (match pidfile with
  | Some path -> ( try Sys.remove path with Sys_error _ -> ())
  | None -> ());
  result
