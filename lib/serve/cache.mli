(** The content-addressed schedule cache.

    Keys are {!Ims_exec.Content_hash} digests of (machine dump,
    scheduling flags, loop dump) — the same definition that pins batch
    journal manifests, so "the same loop under the same configuration"
    means the same thing everywhere.  Values are rendered report-record
    bodies (the record minus its request-specific ["name"] member),
    stored as verbatim bytes: a hit re-emits exactly what a cold
    schedule emitted, which is what makes cached responses
    byte-identical.

    Persistence is an {!Ims_exec.Append_log}: a version header then one
    fsync'd line per insertion, so a SIGKILLed daemon loses at most the
    entry being written; {!open_} truncates a torn tail and replays the
    rest, making a restarted daemon warm.  The file is append-only —
    in-memory eviction (FIFO past [capacity]) does not rewrite it, and
    replay re-evicts the same way, so disk and memory agree after any
    restart.

    All operations are thread-safe (one internal mutex): the accept
    loop probes while worker domains insert. *)

type t

val open_ :
  ?capacity:int -> ?path:string -> unit -> (t, string) result
(** [capacity] defaults to 4096 entries.  Without [path] the cache is
    memory-only.  With [path]: a missing or empty file is created; an
    existing one is validated (header kind and version) and replayed.
    [Error] on a foreign or newer-versioned file — refusing is safer
    than silently serving another configuration's schedules. *)

val find : t -> key:string -> string option
(** The stored record body, counting a hit or a miss. *)

val add : t -> key:string -> string -> unit
(** Insert (first writer wins; re-adding an existing key is a no-op —
    concurrent workers computing the same key produce identical bytes
    anyway), append to disk, evict FIFO past capacity. *)

type stats = {
  hits : int;
  misses : int;
  evictions : int;
  entries : int;  (** Currently resident. *)
  loaded : int;  (** Entries replayed from disk at {!open_}. *)
  torn : bool;  (** A torn tail was truncated at {!open_}. *)
}

val stats : t -> stats
val close : t -> unit

val format_version : int
