(** The content-addressed schedule cache.

    Keys are {!Ims_exec.Content_hash} digests of (machine dump,
    scheduling flags, loop dump) — the same definition that pins batch
    journal manifests, so "the same loop under the same configuration"
    means the same thing everywhere.  Values are rendered report-record
    bodies (the record minus its request-specific ["name"] member),
    stored as verbatim bytes: a hit re-emits exactly what a cold
    schedule emitted, which is what makes cached responses
    byte-identical.

    {2 Bounds}

    Residency is bounded two ways: an entry-count [capacity] and an
    optional byte cap [max_bytes] (measured in encoded log-line bytes,
    header included — i.e. the size the persistent file compacts down
    to).  Either bound evicts from the cold end of the residency order;
    the [policy] chooses what "cold" means — [Fifo] (insertion age) or
    [Lru] (a {!find} hit refreshes the entry).  Eviction never changes
    response bytes, only whether a key recomputes (recomputation is
    deterministic and byte-identical by construction).

    {2 Persistence and compaction}

    Persistence is an {!Ims_exec.Append_log}: a version header then one
    fsync'd line per insertion, so a SIGKILLed daemon loses at most the
    entry being written; {!open_} truncates a torn tail and replays the
    rest, making a restarted daemon warm.  Eviction makes the
    append-only file grow past the live set; when the garbage exceeds
    the live bytes (2× + slack) or the file overruns [max_bytes], the
    log is {e compacted}: live entries are rewritten to a temp file in
    eviction order, fsync'd, and renamed over the log — same atomicity
    discipline as the status file, so a crash leaves either the old or
    the new log complete.  Replaying a compacted log rebuilds the exact
    residency order, so hits and future evictions behave identically
    after the restart.

    All operations are thread-safe (one internal mutex): the accept
    loop probes while worker domains insert. *)

type t

(** Eviction policy: [Fifo] by insertion age, [Lru] by last use. *)
type policy = Fifo | Lru

val policy_name : policy -> string
val policy_of_string : string -> (policy, string) result

val open_ :
  ?capacity:int ->
  ?max_bytes:int ->
  ?policy:policy ->
  ?path:string ->
  unit ->
  (t, string) result
(** [capacity] defaults to 4096 entries; [policy] to [Fifo]; no byte
    cap unless [max_bytes] is given.  Without [path] the cache is
    memory-only.  With [path]: a missing or empty file is created; an
    existing one is validated (header kind and version), replayed, and
    compacted up front if it already exceeds the trigger.  [Error] on a
    foreign or newer-versioned file — refusing is safer than silently
    serving another configuration's schedules. *)

val find : t -> key:string -> string option
(** The stored record body, counting a hit or a miss (and refreshing
    the entry under [Lru]). *)

val add : t -> key:string -> string -> unit
(** Insert (first writer wins; re-adding an existing key is a no-op —
    concurrent workers computing the same key produce identical bytes
    anyway), append to disk, evict past either bound, and compact the
    log when the online trigger fires. *)

val compact : t -> bool
(** Force a compaction now (e.g. offline via [imsc cache compact]).
    True iff the log was rewritten; false when there was nothing to
    reclaim or the cache is memory-only. *)

type stats = {
  hits : int;
  misses : int;
  evictions : int;
  compactions : int;  (** Log rewrites performed by this handle. *)
  entries : int;  (** Currently resident. *)
  bytes : int;  (** Live encoded bytes (what a compaction keeps). *)
  log_bytes : int;  (** Current on-disk log size (0 if memory-only). *)
  loaded : int;  (** Entries replayed from disk at {!open_}. *)
  torn : bool;  (** A torn tail was truncated at {!open_}. *)
}

val stats : t -> stats
val close : t -> unit

val format_version : int
