(** Length-delimited framing for the serve protocol.

    A frame is

    {v <decimal payload length> '\n' <payload bytes> '\n' v}

    — a JSONL line with an explicit byte count in front, so the reader
    never has to scan a payload for newlines (loop dumps embed them)
    and a torn connection is detected as a short read, not a parse
    error.  The trailing ['\n'] is a frame guard: its absence means the
    peer and we disagree about the length, and the connection is
    poisoned. *)

val max_payload : int
(** Frames above this (16 MiB) are rejected — a corrupt length header
    must not make the reader allocate unboundedly. *)

val frame : string -> string
(** The encoded frame bytes for [payload] — for callers that batch
    several frames into one output buffer. *)

val write_frame : Unix.file_descr -> string -> unit
(** Write one complete frame (single [write] loop, no buffering).
    @raise Unix.Unix_error as [Unix.write] does (e.g. [EPIPE]). *)

val write_frame_deadline :
  Unix.file_descr -> deadline:float -> string -> (unit, string) result
(** Like {!write_frame}, but every chunk waits for writability at most
    until [deadline] (absolute, {!Unix.gettimeofday} clock) — the
    defence against a peer that accepts a connection and then never
    reads (slow-loris on the write side).  [Error] on deadline or any
    write failure; the caller should sever the connection, since an
    unknown prefix of the frame may have been delivered. *)

(** Incremental decoder for the reading side: feed raw bytes as they
    arrive, pull complete payloads out.  Internally one growable
    buffer with a consumed offset — [feed]+[next] cost is amortized
    O(bytes received), even for a [max_payload]-sized frame arriving
    byte by byte. *)
type decoder

val decoder : unit -> decoder

val feed : decoder -> string -> unit

val has_partial : decoder -> bool
(** True iff bytes of an incomplete frame are buffered — at EOF this
    distinguishes a clean close from a truncated frame, and on a live
    connection it marks the moment a read deadline should start
    counting (a slow-loris peer drips a frame forever). *)

val buffered : decoder -> int
(** Bytes currently buffered (0 iff [not (has_partial d)]). *)

val next : decoder -> (string option, string) result
(** [Ok None]: no complete frame buffered yet.  [Error _]: the stream
    is corrupt (bad length header or missing frame guard) — close the
    connection; the decoder is not recoverable. *)

val read_frame : Unix.file_descr -> decoder -> (string option, string) result
(** Blocking convenience for clients: feed from [fd] until a frame
    completes.  [Ok None] means EOF {e between} frames; EOF with a
    partial frame buffered is [Error "truncated frame: …"] — a tear is
    never silently dropped. *)
