(** Process supervision for [imsc serve --supervise]: fork the daemon,
    restart it on crash with capped exponential backoff, and open a
    circuit breaker on a crash loop.

    The state machine:

    {v
               fork                    crash (signal / nonzero exit)
      Idle ──────────▶ Running ──────────────────────────────────────┐
        ▲                │ exit 0, or a crash after SIGTERM/SIGINT   │
        │                ▼                                           ▼
        │              Done                                   Backing-off
        │                                  streak ≤ max_restarts │ │ streak > max_restarts
        └────────────────────────────────────────────────────────┘ ▼
                 sleep min(cap, base·2^(streak−1))            Breaker-open
                                                              (exit nonzero)
    v}

    A child that stays up for the healthy window resets the crash
    streak, so a daemon that crashes once a day restarts forever, while
    one that dies at boot is given up on after [max_restarts]
    consecutive failures.  Each generation re-opens the persistent
    cache, so restarts come back warm; in-flight requests are the
    {!Client.exchange} replay contract's problem, not ours. *)

(** The pure restart policy, unit-testable without forking. *)
module Backoff : sig
  type t

  val create :
    ?base:float ->
    ?cap:float ->
    ?healthy:float ->
    ?max_restarts:int ->
    unit ->
    t
  (** [base] (default 0.25 s) is the first restart delay, doubling per
      consecutive crash up to [cap] (default 8 s).  A child that lived
      at least [healthy] seconds (default 30) resets the streak.
      After [max_restarts] (default 10) consecutive crashes the breaker
      opens. *)

  type verdict = Restart of float  (** Delay before the next fork. *) | Give_up

  val on_crash : t -> uptime:float -> verdict
  val streak : t -> int
end

val run :
  ?backoff:Backoff.t ->
  ?pidfile:string ->
  log:Ims_obs.Log.t ->
  child:(restarts:int -> int) ->
  unit ->
  (unit, string) result
(** Supervise [child] (forked; its return value is the generation's
    exit code; [~restarts] tells it how many restarts preceded it, for
    the health gauges).  Returns [Ok ()] when a generation exits 0 (a
    graceful [shutdown] request) or when SIGTERM/SIGINT arrives — the
    signal is forwarded to the child and its death is then not counted
    as a crash.  Returns [Error _] when the circuit breaker opens.
    [pidfile] is atomically rewritten with the {e current child's} pid
    at every fork (and removed on exit), so tests and ops can target
    the daemon generation precisely — e.g. [kill -9 $(cat pidfile)]. *)
