(** Seeded socket-level fault injection — test-only, the wire
    counterpart of [imsc check mutate]'s semantic mutations.

    The daemon consults {!on_write} before every response frame and,
    per the drawn fault, delivers a torn prefix, a corrupted byte, or
    nothing at all, then severs the connection.  Every fault is
    client-visible as a transport error (truncated frame, corrupt
    stream, EOF), which is exactly the surface the retrying client must
    absorb: the chaos CI gate asserts that a supervised daemon plus
    {!Client.exchange} still converges to output byte-identical to a
    cold [imsc batch] run.

    Draws are serialized under an internal mutex (workers write
    concurrently) from a {!Random.State} seeded by the spec, so a
    failing run replays with the same fault sequence. *)

type fault =
  | Pass  (** Deliver the frame intact. *)
  | Torn of int  (** Write only this many bytes, then sever. *)
  | Garbage of int  (** Corrupt the byte at this offset, then sever. *)
  | Sever  (** Write nothing; sever immediately. *)

type t

val of_spec : string -> (t, string) result
(** Parse a spec like ["seed=42,torn=0.15,garbage=0.1,sever=0.05"] —
    comma-separated [key=value] with per-fault probabilities in [0,1]
    (missing fields default to 0; probabilities must sum to at most 1;
    [seed] defaults to 0). *)

val on_write : t -> frame_len:int -> fault
(** Draw the fault for one response frame of [frame_len] bytes. *)

val injected : t -> int
(** Faults injected so far (for shutdown-time logging). *)
