open Ims_obs

type request =
  | Schedule of {
      id : int;
      name : string;
      machine : string;
      budget_ratio : float;
      max_delta_ii : int;
      deadline : float option;
      dump : string;
    }
  | Stats of { id : int }
  | Shutdown of { id : int }

type response =
  | Report of { id : int; cached : bool; record : string }
  | Overloaded of { id : int; depth : int; capacity : int }
  | Error of { id : int; message : string }
  | Stats_reply of { id : int; metrics : Json.t }
  | Bye of { id : int }

let request_to_json = function
  | Schedule r ->
      Json.Obj
        ([
           ("op", Json.String "schedule");
           ("id", Json.Int r.id);
           ("name", Json.String r.name);
           ("machine", Json.String r.machine);
           ("budget_ratio", Json.Float r.budget_ratio);
           ("max_delta_ii", Json.Int r.max_delta_ii);
         ]
        @ (match r.deadline with
          | None -> []
          | Some d -> [ ("deadline_s", Json.Float d) ])
        @ [ ("loop", Json.String r.dump) ])
  | Stats { id } ->
      Json.Obj [ ("op", Json.String "stats"); ("id", Json.Int id) ]
  | Shutdown { id } ->
      Json.Obj [ ("op", Json.String "shutdown"); ("id", Json.Int id) ]

let field obj k =
  match obj with Json.Obj kvs -> List.assoc_opt k kvs | _ -> None

let int_field obj k =
  match field obj k with Some (Json.Int i) -> Some i | _ -> None

let num_field obj k =
  match field obj k with
  | Some (Json.Int i) -> Some (float_of_int i)
  | Some (Json.Float f) -> Some f
  | _ -> None

let str_field obj k =
  match field obj k with Some (Json.String s) -> Some s | _ -> None

let bool_field obj k =
  match field obj k with Some (Json.Bool b) -> Some b | _ -> None

let id_of obj = Option.value ~default:0 (int_field obj "id")

let request_of_json obj =
  match str_field obj "op" with
  | Some "schedule" -> (
      match (str_field obj "name", str_field obj "loop") with
      | Some name, Some dump ->
          Ok
            (Schedule
               {
                 id = id_of obj;
                 name;
                 machine =
                   Option.value ~default:"cydra5" (str_field obj "machine");
                 budget_ratio =
                   Option.value ~default:2.0 (num_field obj "budget_ratio");
                 max_delta_ii =
                   Option.value ~default:1000 (int_field obj "max_delta_ii");
                 deadline = num_field obj "deadline_s";
                 dump;
               })
      | _ -> Error "schedule request needs \"name\" and \"loop\"")
  | Some "stats" -> Ok (Stats { id = id_of obj })
  | Some "shutdown" -> Ok (Shutdown { id = id_of obj })
  | Some op -> Error (Printf.sprintf "unknown op %S" op)
  | None -> Error "request has no \"op\""

let request_id_of_json = id_of

let response_to_json = function
  | Report { id; cached; record } ->
      Json.Obj
        [
          ("kind", Json.String "report");
          ("id", Json.Int id);
          ("cached", Json.Bool cached);
          ("record", Json.String record);
        ]
  | Overloaded { id; depth; capacity } ->
      Json.Obj
        [
          ("kind", Json.String "overloaded");
          ("id", Json.Int id);
          ("depth", Json.Int depth);
          ("capacity", Json.Int capacity);
        ]
  | Error { id; message } ->
      Json.Obj
        [
          ("kind", Json.String "error");
          ("id", Json.Int id);
          ("error", Json.String message);
        ]
  | Stats_reply { id; metrics } ->
      Json.Obj
        [
          ("kind", Json.String "stats");
          ("id", Json.Int id);
          ("metrics", metrics);
        ]
  | Bye { id } -> Json.Obj [ ("kind", Json.String "bye"); ("id", Json.Int id) ]

let response_of_json obj =
  match str_field obj "kind" with
  | Some "report" -> (
      match (str_field obj "record", bool_field obj "cached") with
      | Some record, Some cached -> Ok (Report { id = id_of obj; cached; record })
      | _ -> Error "report response needs \"record\" and \"cached\"")
  | Some "overloaded" ->
      Ok
        (Overloaded
           {
             id = id_of obj;
             depth = Option.value ~default:0 (int_field obj "depth");
             capacity = Option.value ~default:0 (int_field obj "capacity");
           })
  | Some "error" ->
      Ok
        (Error
           {
             id = id_of obj;
             message = Option.value ~default:"?" (str_field obj "error");
           })
  | Some "stats" -> (
      match field obj "metrics" with
      | Some metrics -> Ok (Stats_reply { id = id_of obj; metrics })
      | None -> Error "stats response needs \"metrics\"")
  | Some "bye" -> Ok (Bye { id = id_of obj })
  | Some kind -> Error (Printf.sprintf "unknown response kind %S" kind)
  | None -> Error "response has no \"kind\""

let response_id = function
  | Report { id; _ }
  | Overloaded { id; _ }
  | Error { id; _ }
  | Stats_reply { id; _ }
  | Bye { id } ->
      id
