(** The serve request/response schema: JSON payloads inside {!Wire}
    frames.

    A request names everything the schedule depends on — the loop dump
    bytes, the machine, the scheduling flags — because the daemon's
    cache key is a content hash over exactly those; the optional
    deadline is {e not} part of the key (it bounds the search, it does
    not change a completed search's answer — and preempted results are
    never cached).

    A [Report] response carries the per-loop report record {e as a
    string}, verbatim — the same bytes [imsc batch] would emit for that
    loop, whether the schedule was computed cold or served from cache.

    [id] is a client-chosen correlation token: responses may arrive out
    of request order (cache hits are answered from the accept loop in
    microseconds while misses queue for a worker). *)

open Ims_obs

type request =
  | Schedule of {
      id : int;
      name : string;  (** Echoed into the report record's ["name"]. *)
      machine : string;  (** Model name or description-file path. *)
      budget_ratio : float;
      max_delta_ii : int;
      deadline : float option;  (** Per-request preemptive deadline, s. *)
      dump : string;  (** The loop in the textual dump format. *)
    }
  | Stats of { id : int }  (** Read the daemon's metrics registry. *)
  | Shutdown of { id : int }  (** Graceful stop: drain, persist, exit. *)

type response =
  | Report of { id : int; cached : bool; record : string }
  | Overloaded of { id : int; depth : int; capacity : int }
      (** Admission queue at its high-water mark; retry later. *)
  | Error of { id : int; message : string }
      (** Malformed request or unknown machine; [id] 0 when the request
          was too broken to carry one. *)
  | Stats_reply of { id : int; metrics : Json.t }
  | Bye of { id : int }

val request_to_json : request -> Json.t
val request_of_json : Json.t -> (request, string) result

(** Best-effort ["id"] extraction from a request that failed to decode,
    so the error response can still be correlated; 0 when absent. *)
val request_id_of_json : Json.t -> int
val response_to_json : response -> Json.t
val response_of_json : Json.t -> (response, string) result

val response_id : response -> int
