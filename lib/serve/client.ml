open Ims_obs
module U = Unix

let connect ?(deadline = 0.) ?(delay = 0.1) path =
  let deadline = if deadline > 0. then deadline else U.gettimeofday () +. 5. in
  let rec go () =
    let fd = U.socket ~cloexec:true U.PF_UNIX U.SOCK_STREAM 0 in
    match U.connect fd (U.ADDR_UNIX path) with
    | () -> Ok fd
    | exception U.Unix_error ((U.ENOENT | U.ECONNREFUSED) as e, _, _) ->
        U.close fd;
        if U.gettimeofday () +. delay > deadline then
          Error
            (Printf.sprintf "cannot connect to %s: %s" path (U.error_message e))
        else begin
          U.sleepf delay;
          go ()
        end
    | exception U.Unix_error (e, _, _) ->
        U.close fd;
        Error
          (Printf.sprintf "cannot connect to %s: %s" path (U.error_message e))
  in
  go ()

(* One connection's worth of pipelined exchange: write every request,
   collect responses until each pending id is answered, the [deadline]
   passes, or the transport fails.  Returns the responses that did
   arrive (in arrival order) alongside the error, so a caller can
   settle the answered ids and replay only the remainder. *)
let pump ~deadline fd requests =
  let pending = Hashtbl.create 97 in
  List.iter
    (fun r ->
      match r with
      | Protocol.Schedule { id; _ }
      | Protocol.Stats { id }
      | Protocol.Shutdown { id } ->
          Hashtbl.replace pending id ())
    requests;
  let out =
    String.concat ""
      (List.map
         (fun r -> Wire.frame (Json.to_string (Protocol.request_to_json r)))
         requests)
  in
  let total = String.length out in
  let off = ref 0 in
  let dec = Wire.decoder () in
  let buf = Bytes.create 65536 in
  let resps = ref [] in
  let err = ref None in
  let fail msg = if !err = None then err := Some msg in
  U.set_nonblock fd;
  while !err = None && Hashtbl.length pending > 0 do
    let remaining = deadline -. U.gettimeofday () in
    if remaining <= 0. then
      fail
        (Printf.sprintf "timed out with %d response(s) outstanding"
           (Hashtbl.length pending))
    else
      match
        U.select [ fd ]
          (if !off < total then [ fd ] else [])
          [] (Float.min remaining 1.0)
      with
      | exception U.Unix_error (U.EINTR, _, _) -> ()
      | readable, writable, _ ->
          (if writable <> [] then
             match U.write_substring fd out !off (total - !off) with
             | k -> off := !off + k
             | exception
                 U.Unix_error ((U.EAGAIN | U.EWOULDBLOCK | U.EINTR), _, _) ->
                 ()
             | exception U.Unix_error (e, _, _) ->
                 fail (Printf.sprintf "write: %s" (U.error_message e)));
          if !err = None && readable <> [] then (
            match U.read fd buf 0 (Bytes.length buf) with
            | 0 ->
                if Wire.has_partial dec then
                  fail
                    (Printf.sprintf
                       "truncated frame: the daemon hung up mid-response \
                        (%d byte(s) pending, %d response(s) outstanding)"
                       (Wire.buffered dec) (Hashtbl.length pending))
                else
                  fail
                    (Printf.sprintf
                       "the daemon closed the connection with %d response(s) \
                        outstanding"
                       (Hashtbl.length pending))
            | k ->
                Wire.feed dec (Bytes.sub_string buf 0 k);
                let rec drain () =
                  if !err = None && Hashtbl.length pending > 0 then
                    match Wire.next dec with
                    | Ok None -> ()
                    | Error e -> fail ("corrupt response stream: " ^ e)
                    | Ok (Some payload) -> (
                        match Json.of_string payload with
                        | Error e -> fail ("malformed response: " ^ e)
                        | Ok obj -> (
                            match Protocol.response_of_json obj with
                            | Error e -> fail e
                            | Ok resp ->
                                let id = Protocol.response_id resp in
                                if Hashtbl.mem pending id then begin
                                  Hashtbl.remove pending id;
                                  resps := resp :: !resps;
                                  drain ()
                                end
                                else
                                  (* An unsolicited id — notably the
                                     admission cap's [Overloaded] with
                                     id 0 — is a whole-connection
                                     rejection, not an answer. *)
                                  fail
                                    (match resp with
                                    | Protocol.Overloaded { depth; capacity; _ }
                                      ->
                                        Printf.sprintf
                                          "daemon refused the connection \
                                           (%d/%d connections)"
                                          depth capacity
                                    | _ ->
                                        Printf.sprintf
                                          "unexpected response id %d" id)))
                in
                drain ()
            | exception
                U.Unix_error ((U.EAGAIN | U.EWOULDBLOCK | U.EINTR), _, _) ->
                ())
  done;
  (try U.clear_nonblock fd with U.Unix_error _ -> ());
  (List.rev !resps, !err)

let roundtrip ?(timeout = 600.) fd requests =
  match pump ~deadline:(U.gettimeofday () +. timeout) fd requests with
  | resps, None -> Ok resps
  | _, Some e -> Error e

type retry = {
  attempts : int;
  base_delay : float;
  max_delay : float;
  jitter : Random.State.t;
}

let retry ?(attempts = 8) ?(base_delay = 0.1) ?(max_delay = 2.0) ?(seed = 0) ()
    =
  {
    attempts = max 1 attempts;
    base_delay = Float.max 0.001 base_delay;
    max_delay = Float.max 0.001 max_delay;
    jitter = Random.State.make [| seed |];
  }

let request_id = function
  | Protocol.Schedule { id; _ } | Protocol.Stats { id } | Protocol.Shutdown { id }
    ->
      id

let exchange ?(connect_timeout = 5.) ?(timeout = 600.) ?retry:r ~socket requests
    =
  let r = match r with Some r -> r | None -> retry () in
  let overall = U.gettimeofday () +. timeout in
  (* Outstanding requests, in submission order; transport failures
     replay exactly these.  Safe because requests are idempotent: keys
     are content hashes, only [Done] outcomes are cached, and a
     re-scheduled loop produces byte-identical records. *)
  let outstanding = ref requests in
  let answered = ref [] in
  let rec attempt k last_err =
    if !outstanding = [] then Ok (List.rev !answered)
    else if U.gettimeofday () >= overall then
      Error
        (Printf.sprintf
           "timed out after %.0fs with %d response(s) outstanding (attempt \
            %d%s)"
           timeout
           (List.length !outstanding)
           k
           (match last_err with Some e -> "; last error: " ^ e | None -> ""))
    else if k > r.attempts then
      Error
        (Printf.sprintf "gave up after %d attempt(s)%s" r.attempts
           (match last_err with Some e -> ": " ^ e | None -> ""))
    else begin
      (if k > 1 then
         (* Jittered exponential backoff, clipped to the overall
            deadline: reconnect storms against a restarting daemon help
            nobody. *)
         let backoff =
           Float.min r.max_delay
             (r.base_delay *. (2. ** float_of_int (k - 2)))
           *. (0.5 +. Random.State.float r.jitter 1.0)
         in
         let backoff =
           Float.max 0. (Float.min backoff (overall -. U.gettimeofday ()))
         in
         if backoff > 0. then U.sleepf backoff);
      let connect_deadline =
        Float.min overall (U.gettimeofday () +. connect_timeout)
      in
      match connect ~deadline:connect_deadline socket with
      | Error e -> attempt (k + 1) (Some e)
      | Ok fd ->
          let got, err =
            Fun.protect
              ~finally:(fun () ->
                try U.close fd with U.Unix_error _ -> ())
              (fun () -> pump ~deadline:overall fd !outstanding)
          in
          answered := List.rev_append got !answered;
          let got_ids =
            List.fold_left
              (fun acc resp -> Protocol.response_id resp :: acc)
              [] got
          in
          outstanding :=
            List.filter
              (fun req -> not (List.mem (request_id req) got_ids))
              !outstanding;
          (match err with
          | None -> attempt k None (* terminates: outstanding is empty *)
          | Some e -> attempt (k + 1) (Some e))
    end
  in
  attempt 1 None

let dribble_probe ?(delay = 0.2) ?(deadline = 15.) ~socket () =
  let limit = U.gettimeofday () +. deadline in
  match connect ~deadline:(U.gettimeofday () +. 5.) socket with
  | Error e -> Error e
  | Ok fd ->
      Fun.protect
        ~finally:(fun () -> try U.close fd with U.Unix_error _ -> ())
      @@ fun () ->
      let payload =
        Wire.frame
          (Json.to_string (Protocol.request_to_json (Protocol.Stats { id = 1 })))
      in
      let buf = Bytes.create 256 in
      let rec drip i =
        if U.gettimeofday () >= limit then
          Error "daemon never severed the dribbling connection"
        else begin
          (* Write one byte, then linger — the signature of a
             slow-loris peer.  The frame guard byte is deliberately
             never sent, so the frame can never complete; success is
             the daemon hanging up on us. *)
          let cap = String.length payload - 1 in
          (if i < cap then
             try ignore (U.write_substring fd payload i 1)
             with U.Unix_error _ -> ());
          match U.select [ fd ] [] [] delay with
          | exception U.Unix_error (U.EINTR, _, _) -> drip i
          | [], _, _ -> drip (min (i + 1) cap)
          | _ -> (
              match U.read fd buf 0 (Bytes.length buf) with
              | 0 -> Ok () (* severed: the defence worked *)
              | _ -> drip (min (i + 1) cap)
              | exception U.Unix_error ((U.ECONNRESET | U.EPIPE), _, _) ->
                  Ok ()
              | exception U.Unix_error (U.EINTR, _, _) -> drip i)
        end
      in
      drip 0
