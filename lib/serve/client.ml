open Ims_obs
module U = Unix

let connect ?(attempts = 50) ?(delay = 0.1) path =
  let rec go n =
    let fd = U.socket ~cloexec:true U.PF_UNIX U.SOCK_STREAM 0 in
    match U.connect fd (U.ADDR_UNIX path) with
    | () -> Ok fd
    | exception U.Unix_error ((U.ENOENT | U.ECONNREFUSED), _, _) when n > 1 ->
        U.close fd;
        U.sleepf delay;
        go (n - 1)
    | exception U.Unix_error (e, _, _) ->
        U.close fd;
        Error
          (Printf.sprintf "cannot connect to %s: %s" path (U.error_message e))
  in
  go (max 1 attempts)

let roundtrip ?(timeout = 600.) fd requests =
  let n = List.length requests in
  let out =
    String.concat ""
      (List.map
         (fun r -> Wire.frame (Json.to_string (Protocol.request_to_json r)))
         requests)
  in
  let total = String.length out in
  let off = ref 0 in
  let dec = Wire.decoder () in
  let buf = Bytes.create 65536 in
  let resps = ref [] in
  let got = ref 0 in
  let limit = U.gettimeofday () +. timeout in
  let err = ref None in
  let fail msg = if !err = None then err := Some msg in
  U.set_nonblock fd;
  while !err = None && !got < n do
    let remaining = limit -. U.gettimeofday () in
    if remaining <= 0. then
      fail
        (Printf.sprintf "timed out with %d response(s) outstanding" (n - !got))
    else
      match U.select [ fd ] (if !off < total then [ fd ] else []) []
              (Float.min remaining 1.0)
      with
      | exception U.Unix_error (U.EINTR, _, _) -> ()
      | readable, writable, _ ->
          (if writable <> [] then
             match U.write_substring fd out !off (total - !off) with
             | k -> off := !off + k
             | exception
                 U.Unix_error ((U.EAGAIN | U.EWOULDBLOCK | U.EINTR), _, _) ->
                 ()
             | exception U.Unix_error (e, _, _) ->
                 fail (Printf.sprintf "write: %s" (U.error_message e)));
          if !err = None && readable <> [] then (
            match U.read fd buf 0 (Bytes.length buf) with
            | 0 ->
                fail
                  (Printf.sprintf
                     "the daemon closed the connection with %d response(s) \
                      outstanding"
                     (n - !got))
            | k ->
                Wire.feed dec (Bytes.sub_string buf 0 k);
                let rec drain () =
                  if !err = None && !got < n then
                    match Wire.next dec with
                    | Ok None -> ()
                    | Error e -> fail ("corrupt response stream: " ^ e)
                    | Ok (Some payload) -> (
                        match Json.of_string payload with
                        | Error e -> fail ("malformed response: " ^ e)
                        | Ok obj -> (
                            match Protocol.response_of_json obj with
                            | Error e -> fail e
                            | Ok resp ->
                                resps := resp :: !resps;
                                incr got;
                                drain ()))
                in
                drain ()
            | exception
                U.Unix_error ((U.EAGAIN | U.EWOULDBLOCK | U.EINTR), _, _) ->
                ())
  done;
  (try U.clear_nonblock fd with U.Unix_error _ -> ());
  match !err with Some e -> Error e | None -> Ok (List.rev !resps)
