let max_payload = 16 * 1024 * 1024

(* The length header is tiny; 32 bytes is beyond any valid rendering
   of a length <= max_payload, so a headerless byte stream is detected
   after a bounded prefix. *)
let max_header = 32

let frame payload = string_of_int (String.length payload) ^ "\n" ^ payload ^ "\n"

let write_frame fd payload =
  let frame = Bytes.of_string (frame payload) in
  let len = Bytes.length frame in
  let rec push off =
    if off < len then push (off + Unix.write fd frame off (len - off))
  in
  push 0

type decoder = { mutable pending : string }

let decoder () = { pending = "" }
let feed d s = if s <> "" then d.pending <- d.pending ^ s

let next d =
  match String.index_opt d.pending '\n' with
  | None ->
      if String.length d.pending > max_header then
        Error "frame header is not a length"
      else Ok None
  | Some i -> (
      let header = String.sub d.pending 0 i in
      match int_of_string_opt header with
      | None -> Error (Printf.sprintf "frame header %S is not a length" header)
      | Some len when len < 0 || len > max_payload ->
          Error (Printf.sprintf "frame length %d out of range" len)
      | Some len ->
          let total = i + 1 + len + 1 in
          if String.length d.pending < total then Ok None
          else if d.pending.[total - 1] <> '\n' then
            Error "frame guard byte missing (length disagreement)"
          else begin
            let payload = String.sub d.pending (i + 1) len in
            d.pending <-
              String.sub d.pending total (String.length d.pending - total);
            Ok (Some payload)
          end)

let read_frame fd d =
  let buf = Bytes.create 65536 in
  let rec go () =
    match next d with
    | Error _ as e -> e
    | Ok (Some p) -> Ok (Some p)
    | Ok None -> (
        match Unix.read fd buf 0 (Bytes.length buf) with
        | 0 -> Ok None
        | n ->
            feed d (Bytes.sub_string buf 0 n);
            go ()
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ())
  in
  go ()
