let max_payload = 16 * 1024 * 1024

(* The length header is tiny; 32 bytes is beyond any valid rendering
   of a length <= max_payload, so a headerless byte stream is detected
   after a bounded prefix. *)
let max_header = 32

let frame payload = string_of_int (String.length payload) ^ "\n" ^ payload ^ "\n"

let write_frame fd payload =
  let frame = Bytes.of_string (frame payload) in
  let len = Bytes.length frame in
  let rec push off =
    if off < len then push (off + Unix.write fd frame off (len - off))
  in
  push 0

let write_frame_deadline fd ~deadline payload =
  let frame = Bytes.of_string (frame payload) in
  let len = Bytes.length frame in
  let rec push off =
    if off >= len then Ok ()
    else
      let remaining = deadline -. Unix.gettimeofday () in
      if remaining <= 0. then Error "write deadline exceeded"
      else
        match Unix.select [] [ fd ] [] remaining with
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> push off
        | _, [], _ -> Error "write deadline exceeded"
        | _, _, _ -> (
            match Unix.write fd frame off (len - off) with
            | n -> push (off + n)
            | exception
                Unix.Unix_error
                  ((Unix.EINTR | Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
                push off
            | exception Unix.Unix_error (e, _, _) ->
                Error (Unix.error_message e))
  in
  push 0

(* The decoder holds incoming bytes in one growable buffer with a
   consumed offset: [data.[start .. start+len)] is live.  [feed] appends
   (sliding the live region down, or doubling, when it runs out of
   room), [next] advances [start] — both amortized O(bytes), where the
   old [pending ^ s] concatenation was O(bytes²) for a large frame
   arriving in small reads. *)
type decoder = {
  mutable data : Bytes.t;
  mutable start : int;
  mutable len : int;
}

let decoder () = { data = Bytes.create 4096; start = 0; len = 0 }
let has_partial d = d.len > 0
let buffered d = d.len

let feed d s =
  let n = String.length s in
  if n > 0 then begin
    let cap = Bytes.length d.data in
    if d.start + d.len + n > cap then
      if d.len + n <= cap then begin
        Bytes.blit d.data d.start d.data 0 d.len;
        d.start <- 0
      end
      else begin
        let cap' = max (d.len + n) (2 * cap) in
        let data' = Bytes.create cap' in
        Bytes.blit d.data d.start data' 0 d.len;
        d.data <- data';
        d.start <- 0
      end;
    Bytes.blit_string s 0 d.data (d.start + d.len) n;
    d.len <- d.len + n
  end

(* Position of the first '\n' within the first [limit] live bytes,
   relative to [start] — the scan is bounded by [max_header], never by
   how much payload is buffered. *)
let find_newline d limit =
  let stop = d.start + min d.len limit in
  let rec go i =
    if i >= stop then None
    else if Bytes.get d.data i = '\n' then Some (i - d.start)
    else go (i + 1)
  in
  go d.start

let next d =
  match find_newline d (max_header + 1) with
  | None ->
      if d.len > max_header then Error "frame header is not a length"
      else Ok None
  | Some i -> (
      let header = Bytes.sub_string d.data d.start i in
      match int_of_string_opt header with
      | None -> Error (Printf.sprintf "frame header %S is not a length" header)
      | Some len when len < 0 || len > max_payload ->
          Error (Printf.sprintf "frame length %d out of range" len)
      | Some len ->
          let total = i + 1 + len + 1 in
          if d.len < total then Ok None
          else if Bytes.get d.data (d.start + total - 1) <> '\n' then
            Error "frame guard byte missing (length disagreement)"
          else begin
            let payload = Bytes.sub_string d.data (d.start + i + 1) len in
            d.start <- d.start + total;
            d.len <- d.len - total;
            if d.len = 0 then d.start <- 0;
            Ok (Some payload)
          end)

let read_frame fd d =
  let buf = Bytes.create 65536 in
  let rec go () =
    match next d with
    | Error _ as e -> e
    | Ok (Some p) -> Ok (Some p)
    | Ok None -> (
        match Unix.read fd buf 0 (Bytes.length buf) with
        | 0 ->
            (* EOF inside a frame is a tear, not a clean close: the
               peer died (or injected a fault) mid-write, and silently
               returning [Ok None] would drop the partial frame. *)
            if has_partial d then
              Error
                (Printf.sprintf "truncated frame: EOF with %d byte(s) pending"
                   (buffered d))
            else Ok None
        | n ->
            feed d (Bytes.sub_string buf 0 n);
            go ()
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ())
  in
  go ()
