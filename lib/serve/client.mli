(** The client side of the serve protocol — what [imsc request] runs.

    {!roundtrip} pipelines every request before collecting responses,
    with a duplex select loop (reads interleave with the remaining
    writes), so a corpus larger than the socket buffers cannot deadlock
    against a daemon that is already answering. *)

val connect :
  ?attempts:int -> ?delay:float -> string -> (Unix.file_descr, string) result
(** Connect to the daemon's socket, retrying [attempts] times (default
    50) every [delay] seconds (default 0.1) while the socket is missing
    or refusing — the startup race of "launch daemon, immediately
    request" resolves here rather than in every caller's sleep. *)

val roundtrip :
  ?timeout:float ->
  Unix.file_descr ->
  Protocol.request list ->
  (Protocol.response list, string) result
(** Send every request, read exactly one response per request, and
    return them in {e arrival} order (correlate by id — cache hits
    overtake scheduling work).  [timeout] (default 600s) bounds the
    whole exchange.  [Error] on timeout, EOF with responses
    outstanding, or a corrupt stream. *)
