(** The client side of the serve protocol — what [imsc request] runs.

    {!exchange} is the resilient entry point: it pipelines every
    request, and when the transport fails mid-flight — daemon crash,
    torn frame, corrupt stream, refused connection — it reconnects
    with jittered exponential backoff and {e replays exactly the
    unanswered requests}.  The replay is idempotent by construction:
    requests are content-hash-keyed, only [Done] outcomes are cached,
    and recomputation is deterministic, so a request answered twice
    (reply lost, then replayed) yields byte-identical records and a
    request never answered is simply computed on the new connection.
    A mid-flight daemon restart is therefore invisible to the caller,
    modulo latency.

    {!roundtrip} is the one-shot primitive underneath (single
    connection, no replay), kept for callers that want failures
    surfaced rather than absorbed. *)

val connect :
  ?deadline:float -> ?delay:float -> string -> (Unix.file_descr, string) result
(** Connect to the daemon's socket, retrying every [delay] seconds
    (default 0.1) while the socket is missing or refusing, until
    [deadline] (absolute; defaults to 5 s from now) — the startup race
    of "launch daemon, immediately request" resolves here rather than
    in every caller's sleep.  [Error] with the last failure once the
    deadline passes. *)

val roundtrip :
  ?timeout:float ->
  Unix.file_descr ->
  Protocol.request list ->
  (Protocol.response list, string) result
(** Send every request, read exactly one response per request id, and
    return them in {e arrival} order (correlate by id — cache hits
    overtake scheduling work).  [timeout] (default 600s) bounds the
    whole exchange.  [Error] on timeout, EOF or a truncated frame with
    responses outstanding, a corrupt stream, or an unsolicited
    response id (the admission cap's connection-level [Overloaded]). *)

(** Reconnect policy for {!exchange}. *)
type retry

val retry :
  ?attempts:int ->
  ?base_delay:float ->
  ?max_delay:float ->
  ?seed:int ->
  unit ->
  retry
(** [attempts] (default 8) bounds connection establishments; between
    attempts the delay doubles from [base_delay] (default 0.1 s) up to
    [max_delay] (default 2 s), scaled by a uniform jitter in
    [0.5, 1.5) drawn from a generator seeded by [seed] (default 0 —
    deterministic in tests). *)

val exchange :
  ?connect_timeout:float ->
  ?timeout:float ->
  ?retry:retry ->
  socket:string ->
  Protocol.request list ->
  (Protocol.response list, string) result
(** Run the full resilient exchange: connect (each establishment
    bounded by [connect_timeout], default 5 s), pipeline the
    outstanding requests, settle answered ids, and on transport
    failure back off and replay the rest, until everything is answered
    ([Ok], responses in arrival order across connections), [timeout]
    (default 600 s) expires, or the retry budget is spent ([Error],
    with the last transport error folded into the message — a
    structured failure, never a hang). *)

val dribble_probe :
  ?delay:float ->
  ?deadline:float ->
  socket:string ->
  unit ->
  (unit, string) result
(** Test hook (the chaos gate's slow-loris attacker): connect, then
    drip a request frame one byte per [delay] seconds, withholding the
    final guard byte so the frame can never complete.  [Ok ()] iff the
    daemon severs the connection before [deadline] (default 15 s) —
    i.e. its read deadline actually defends the accept loop. *)
