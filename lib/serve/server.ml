open Ims_obs
module U = Unix

type config = {
  socket : string;
  workers : int;
  queue : int;
  cache_entries : int;
  cache_max_bytes : int option;
  cache_policy : Cache.policy;
  cache_file : string option;
  deadline : float option;
  conn_timeout : float option;
  max_conns : int;
  restarts : int;
  status_file : string option;
  status_interval : float;
  metrics_file : string option;
  inject_spin : (string * float) option;
  chaos : Chaos.t option;
}

(* A connection's write side is shared between the main domain (cache
   hits, errors) and the workers (computed reports); [cm] serializes
   them.  Only the main domain closes [fd], and only after [writable]
   has flipped under [cm] — so a worker that wins the lock either sees
   a live descriptor or declines to write, never a recycled one. *)
type conn = {
  fd : U.file_descr;
  dec : Wire.decoder;
  cm : Mutex.t;
  mutable open_ : bool;  (* fd is open; owned by the main domain *)
  mutable writable : bool;  (* sends permitted *)
  mutable partial_since : float option;
      (* when the decoder first held an incomplete frame — the clock a
         read deadline (slow-loris defence) runs against *)
}

type job = {
  conn : conn;
  req_id : int;
  name : string;
  machine : Ims_machine.Machine.t;
  budget_ratio : float;
  max_delta_ii : int;
  job_deadline : float option;
  dump : string;
  key : string;
}

(* Under [cm].  Force the peer to notice a poisoned connection now: a
   worker may not close the fd (the main domain owns that), but it can
   shut the socket down, which surfaces as EOF in the client's read. *)
let sever conn =
  conn.writable <- false;
  try U.shutdown conn.fd U.SHUTDOWN_ALL with U.Unix_error _ -> ()

let send ?chaos ?timeout conn resp =
  Mutex.lock conn.cm;
  (if conn.open_ && conn.writable then
     let payload = Json.to_string (Protocol.response_to_json resp) in
     let fault =
       match chaos with
       | None -> Chaos.Pass
       | Some c ->
           Chaos.on_write c ~frame_len:(String.length (Wire.frame payload))
     in
     match fault with
     | Chaos.Pass -> (
         match timeout with
         | None -> (
             try Wire.write_frame conn.fd payload
             with U.Unix_error _ -> conn.writable <- false)
         | Some t -> (
             match
               Wire.write_frame_deadline conn.fd
                 ~deadline:(U.gettimeofday () +. t)
                 payload
             with
             | Ok () -> ()
             | Error _ -> sever conn))
     | Chaos.Torn k ->
         let bytes = Wire.frame payload in
         (try ignore (U.write_substring conn.fd bytes 0 k)
          with U.Unix_error _ -> ());
         sever conn
     | Chaos.Garbage _ ->
         (* Corrupt the frame guard: detectably wrong (the decoder
            poisons the stream) without ever delivering a well-formed
            frame holding wrong payload bytes. *)
         let bytes = Bytes.of_string (Wire.frame payload) in
         Bytes.set bytes (Bytes.length bytes - 1) 'X';
         let len = Bytes.length bytes in
         let rec push off =
           if off < len then
             match U.write conn.fd bytes off (len - off) with
             | n -> push (off + n)
             | exception U.Unix_error _ -> ()
         in
         push 0;
         sever conn
     | Chaos.Sever -> sever conn);
  Mutex.unlock conn.cm

(* Main domain only. *)
let close_conn conn =
  Mutex.lock conn.cm;
  if conn.open_ then begin
    conn.open_ <- false;
    conn.writable <- false;
    (try U.close conn.fd with U.Unix_error _ -> ())
  end;
  Mutex.unlock conn.cm

(* A stale socket file (the previous daemon was SIGKILLed) must not
   block a restart, but a live daemon's socket must: probe by
   connecting. *)
let bind_socket path =
  let stale_check =
    if Sys.file_exists path then (
      let probe = U.socket U.PF_UNIX U.SOCK_STREAM 0 in
      match U.connect probe (U.ADDR_UNIX path) with
      | () ->
          U.close probe;
          Error (Printf.sprintf "%s: a daemon is already serving here" path)
      | exception U.Unix_error ((U.ECONNREFUSED | U.ENOENT), _, _) ->
          U.close probe;
          (try U.unlink path with U.Unix_error _ -> ());
          Ok ()
      | exception U.Unix_error (e, _, _) ->
          U.close probe;
          Error (Printf.sprintf "%s: %s" path (U.error_message e)))
    else Ok ()
  in
  Result.bind stale_check (fun () ->
      let fd = U.socket ~cloexec:true U.PF_UNIX U.SOCK_STREAM 0 in
      match
        U.bind fd (U.ADDR_UNIX path);
        U.listen fd 64
      with
      | () -> Ok fd
      | exception U.Unix_error (e, _, _) ->
          (try U.close fd with U.Unix_error _ -> ());
          Error
            (Printf.sprintf "cannot listen on %s: %s" path (U.error_message e)))

let run config ~machine_of ~log =
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let stop = Atomic.make false in
  let on_signal _ = Atomic.set stop true in
  List.iter
    (fun s ->
      try Sys.set_signal s (Sys.Signal_handle on_signal)
      with Invalid_argument _ | Sys_error _ -> ())
    [ Sys.sigterm; Sys.sigint ];
  match
    Cache.open_ ~capacity:config.cache_entries ?max_bytes:config.cache_max_bytes
      ~policy:config.cache_policy ?path:config.cache_file ()
  with
  | Error e -> Error e
  | Ok cache -> (
      match bind_socket config.socket with
      | Error e ->
          Cache.close cache;
          Error e
      | Ok lfd ->
          let loaded = Cache.stats cache in
          if loaded.Cache.loaded > 0 || loaded.Cache.torn then
            Log.info log "cache: %d entries warm from %s%s" loaded.Cache.entries
              (Option.value ~default:"?" config.cache_file)
              (if loaded.Cache.torn then " (torn tail truncated)" else "");
          let t0 = U.gettimeofday () in
          let send conn resp =
            send ?chaos:config.chaos ?timeout:config.conn_timeout conn resp
          in
          let intake = Ims_exec.Intake.create ~capacity:config.queue in

          (* Tally + metrics.  Workers bump under [tally_m]; the main
             domain reads the registry under the same lock when it
             serves a stats request, so cross-domain visibility is by
             mutex, not by luck. *)
          let metrics = Metrics.create () in
          let m_requests = Metrics.counter metrics "serve.requests" in
          let m_hits = Metrics.counter metrics "serve.cache_hits" in
          let m_misses = Metrics.counter metrics "serve.cache_misses" in
          let m_evictions = Metrics.counter metrics "serve.cache_evictions" in
          let m_overloaded = Metrics.counter metrics "serve.overloaded" in
          let m_errors = Metrics.counter metrics "serve.errors" in
          let m_scheduled = Metrics.counter metrics "serve.scheduled" in
          let m_compactions = Metrics.counter metrics "serve.cache_compactions" in
          let g_depth = Metrics.gauge metrics "serve.queue_depth" in
          let g_capacity = Metrics.gauge metrics "serve.queue_capacity" in
          let g_entries = Metrics.gauge metrics "serve.cache_entries" in
          let g_cache_bytes = Metrics.gauge metrics "serve.cache_bytes" in
          let g_log_bytes = Metrics.gauge metrics "serve.cache_log_bytes" in
          let g_conns = Metrics.gauge metrics "serve.connections" in
          let g_restarts = Metrics.gauge metrics "serve.restarts" in
          let g_uptime = Metrics.gauge metrics "serve.uptime_s" in
          Metrics.set_int g_capacity (Ims_exec.Intake.capacity intake);
          Metrics.set_int g_restarts config.restarts;
          let tally_m = Mutex.create () in
          let with_tally f =
            Mutex.lock tally_m;
            let r = f () in
            Mutex.unlock tally_m;
            r
          in
          let t_total = ref 0
          and t_ok = ref 0
          and t_failed = ref 0
          and t_timed_out = ref 0
          and t_cancelled = ref 0
          and t_retried = ref 0 in
          let counts () =
            with_tally (fun () ->
                {
                  Status.total = !t_total;
                  ok = !t_ok;
                  failed = !t_failed;
                  timed_out = !t_timed_out;
                  cancelled = !t_cancelled;
                  retried = !t_retried;
                })
          in
          let snapshot () =
            {
              Status.phase = "serve";
              counts = counts ();
              elapsed = U.gettimeofday () -. t0;
            }
          in
          let synced = ref (0, 0, 0, 0) in
          let sync_cache () =
            let s = Cache.stats cache in
            let h, m, e, c = !synced in
            Metrics.incr ~by:(s.Cache.hits - h) m_hits;
            Metrics.incr ~by:(s.Cache.misses - m) m_misses;
            Metrics.incr ~by:(s.Cache.evictions - e) m_evictions;
            Metrics.incr ~by:(s.Cache.compactions - c) m_compactions;
            synced :=
              (s.Cache.hits, s.Cache.misses, s.Cache.evictions,
               s.Cache.compactions);
            Metrics.set_int g_entries s.Cache.entries;
            Metrics.set_int g_cache_bytes s.Cache.bytes;
            Metrics.set_int g_log_bytes s.Cache.log_bytes
          in

          let machines = Hashtbl.create 8 in
          let machine_for name =
            match Hashtbl.find_opt machines name with
            | Some r -> r
            | None ->
                let r =
                  match machine_of name with
                  | m -> Ok (m, Format.asprintf "%a" Ims_machine.Machine.pp m)
                  | exception Failure msg -> Error msg
                  | exception e -> Error (Printexc.to_string e)
                in
                Hashtbl.add machines name r;
                r
          in

          (* Worker side. *)
          let f (shard : Ims_exec.Shard.t) (j : job) =
            (match config.inject_spin with
            | Some (name, secs) when name = j.name ->
                let until = U.gettimeofday () +. secs in
                while U.gettimeofday () < until do
                  Cancel.poll shard.Ims_exec.Shard.cancel
                done
            | _ -> ());
            Render.schedule_dump ~machine:j.machine
              ~budget_ratio:j.budget_ratio ~max_delta_ii:j.max_delta_ii
              ~counters:shard.Ims_exec.Shard.counters
              ~trace:shard.Ims_exec.Shard.trace
              ~cancel:shard.Ims_exec.Shard.cancel j.dump
          in
          let respond (j : job) outcome _shard attempts =
            let body =
              Render.body_string
                ~reparse:(fun () ->
                  Ims_workloads.Loop_parse.parse j.machine j.dump)
                outcome
            in
            (match outcome with
            | Ims_exec.Outcome.Done _ -> Cache.add cache ~key:j.key body
            | _ -> ());
            with_tally (fun () ->
                (match outcome with
                | Ims_exec.Outcome.Done _ -> incr t_ok
                | Ims_exec.Outcome.Failed _ -> incr t_failed
                | Ims_exec.Outcome.Timed_out _ -> incr t_timed_out
                | Ims_exec.Outcome.Cancelled _ -> incr t_cancelled);
                if attempts > 1 then incr t_retried;
                Metrics.incr m_scheduled);
            send j.conn
              (Protocol.Report
                 {
                   id = j.req_id;
                   cached = false;
                   record = Ims_exec.Report.with_name ~name:j.name body;
                 })
          in
          let workers =
            Ims_exec.Exec.stream ~workers:config.workers
              ~timer:U.gettimeofday
              ~deadline_of:(fun j -> j.job_deadline)
              ~f ~respond intake
          in

          (* Accept-loop side. *)
          let handle_request conn obj =
            match Protocol.request_of_json obj with
            | Error msg ->
                with_tally (fun () -> Metrics.incr m_errors);
                send conn
                  (Protocol.Error
                     { id = Protocol.request_id_of_json obj; message = msg })
            | Ok (Protocol.Stats { id }) ->
                sync_cache ();
                Metrics.set_int g_depth (Ims_exec.Intake.depth intake);
                Metrics.set_int g_uptime
                  (int_of_float (U.gettimeofday () -. t0));
                let json = with_tally (fun () -> Metrics.to_json metrics) in
                send conn (Protocol.Stats_reply { id; metrics = json })
            | Ok (Protocol.Shutdown { id }) ->
                Log.info log "shutdown requested";
                send conn (Protocol.Bye { id });
                Atomic.set stop true
            | Ok (Protocol.Schedule r) -> (
                with_tally (fun () ->
                    Metrics.incr m_requests;
                    incr t_total);
                match machine_for r.machine with
                | Error msg ->
                    with_tally (fun () ->
                        Metrics.incr m_errors;
                        incr t_failed);
                    send conn (Protocol.Error { id = r.id; message = msg })
                | Ok (machine, machine_dump) -> (
                    let key =
                      Render.cache_key ~machine_dump
                        ~budget_ratio:r.budget_ratio
                        ~max_delta_ii:r.max_delta_ii ~dump:r.dump
                    in
                    match Cache.find cache ~key with
                    | Some body ->
                        with_tally (fun () -> incr t_ok);
                        send conn
                          (Protocol.Report
                             {
                               id = r.id;
                               cached = true;
                               record =
                                 Ims_exec.Report.with_name ~name:r.name body;
                             })
                    | None ->
                        let job =
                          {
                            conn;
                            req_id = r.id;
                            name = r.name;
                            machine;
                            budget_ratio = r.budget_ratio;
                            max_delta_ii = r.max_delta_ii;
                            job_deadline =
                              (match r.deadline with
                              | Some _ as d -> d
                              | None -> config.deadline);
                            dump = r.dump;
                            key;
                          }
                        in
                        if not (Ims_exec.Intake.try_add intake job) then begin
                          with_tally (fun () ->
                              Metrics.incr m_overloaded;
                              incr t_failed);
                          send conn
                            (Protocol.Overloaded
                               {
                                 id = r.id;
                                 depth = Ims_exec.Intake.depth intake;
                                 capacity = Ims_exec.Intake.capacity intake;
                               })
                        end))
          in
          let conns = ref [] in
          let accept () =
            match U.accept ~cloexec:true lfd with
            | fd, _ ->
                let live =
                  List.fold_left
                    (fun n c -> if c.open_ then n + 1 else n)
                    0 !conns
                in
                if config.max_conns > 0 && live >= config.max_conns then begin
                  (* Admission cap: answer with a structured overloaded
                     reply (bounded write) and drop the connection —
                     never let accepted-but-unserved sockets pile up. *)
                  with_tally (fun () -> Metrics.incr m_overloaded);
                  (match
                     Wire.write_frame_deadline fd
                       ~deadline:(U.gettimeofday () +. 1.0)
                       (Json.to_string
                          (Protocol.response_to_json
                             (Protocol.Overloaded
                                {
                                  id = 0;
                                  depth = live;
                                  capacity = config.max_conns;
                                })))
                   with
                  | Ok () | Error _ -> ());
                  try U.close fd with U.Unix_error _ -> ()
                end
                else
                  conns :=
                    {
                      fd;
                      dec = Wire.decoder ();
                      cm = Mutex.create ();
                      open_ = true;
                      writable = true;
                      partial_since = None;
                    }
                    :: !conns
            | exception
                U.Unix_error
                  ((U.EAGAIN | U.EWOULDBLOCK | U.EINTR | U.ECONNABORTED), _, _)
              ->
                ()
          in
          let buf = Bytes.create 65536 in
          let pump conn =
            match U.read conn.fd buf 0 (Bytes.length buf) with
            | 0 ->
                if Wire.has_partial conn.dec then
                  Log.warn log
                    "client hung up mid-frame (%d byte(s) of a truncated \
                     request dropped)"
                    (Wire.buffered conn.dec);
                close_conn conn
            | n ->
                Wire.feed conn.dec (Bytes.sub_string buf 0 n);
                let rec drain () =
                  if conn.open_ then
                    match Wire.next conn.dec with
                    | Ok None -> ()
                    | Ok (Some payload) ->
                        (match Json.of_string payload with
                        | Error e ->
                            with_tally (fun () -> Metrics.incr m_errors);
                            send conn
                              (Protocol.Error
                                 { id = 0; message = "malformed request: " ^ e })
                        | Ok obj -> handle_request conn obj);
                        drain ()
                    | Error e ->
                        Log.warn log "closing connection: %s" e;
                        close_conn conn
                in
                drain ();
                (* The read deadline runs only while a frame is
                   incomplete — idle pipelined connections are fine, a
                   peer dripping one frame forever is not. *)
                if conn.open_ then
                  conn.partial_since <-
                    (if Wire.has_partial conn.dec then
                       match conn.partial_since with
                       | Some _ as t -> t
                       | None -> Some (U.gettimeofday ())
                     else None)
            | exception U.Unix_error ((U.ECONNRESET | U.EPIPE), _, _) ->
                close_conn conn
            | exception U.Unix_error (U.EINTR, _, _) -> ()
          in
          let status_writer =
            match config.status_file with
            | None -> None
            | Some file ->
                Some
                  (Status.writer ~interval:config.status_interval ~file
                     ~timer:U.gettimeofday ())
          in
          Log.info log "serving on %s: %d worker(s), queue %d, cache %d %s%s%s%s"
            config.socket
            (Ims_exec.Exec.streaming_jobs workers)
            config.queue config.cache_entries
            (Cache.policy_name config.cache_policy)
            (match config.cache_max_bytes with
            | Some b -> Printf.sprintf " (max %d bytes)" b
            | None -> "")
            (match config.cache_file with
            | Some p -> " at " ^ p
            | None -> " (memory only)")
            (match config.chaos with
            | Some _ -> " [CHAOS INJECTION ON]"
            | None -> "");
          if config.restarts > 0 then
            Log.warn log "generation %d: restarted by the supervisor"
              config.restarts;

          while not (Atomic.get stop) do
            let watch =
              lfd
              :: List.filter_map
                   (fun c -> if c.open_ then Some c.fd else None)
                   !conns
            in
            (match U.select watch [] [] 0.2 with
            | exception U.Unix_error (U.EINTR, _, _) -> ()
            | ready, _, _ ->
                List.iter
                  (fun fd ->
                    if fd == lfd then accept ()
                    else
                      match
                        List.find_opt (fun c -> c.fd == fd && c.open_) !conns
                      with
                      | Some conn -> pump conn
                      | None -> ())
                  ready);
            (match config.conn_timeout with
            | Some limit ->
                let now = U.gettimeofday () in
                List.iter
                  (fun c ->
                    if c.open_ then
                      match c.partial_since with
                      | Some t when now -. t > limit ->
                          Log.warn log
                            "closing slow connection (frame incomplete for \
                             %.1fs)"
                            (now -. t);
                          close_conn c
                      | _ -> ())
                  !conns
            | None -> ());
            conns := List.filter (fun c -> c.open_) !conns;
            sync_cache ();
            Metrics.set_int g_depth (Ims_exec.Intake.depth intake);
            Metrics.set_int g_conns (List.length !conns);
            Metrics.set_int g_uptime (int_of_float (U.gettimeofday () -. t0));
            Option.iter (fun w -> Status.heartbeat w (snapshot ())) status_writer
          done;

          (* Shutdown: stop accepting, drain the queue through the
             workers (responses still go out), then persist and
             settle. *)
          (try U.close lfd with U.Unix_error _ -> ());
          let queued = Ims_exec.Intake.depth intake in
          if queued > 0 then Log.info log "draining %d queued job(s)" queued;
          Ims_exec.Intake.close intake;
          Ims_exec.Exec.await workers;
          sync_cache ();
          Metrics.set_int g_depth (Ims_exec.Intake.depth intake);
          Metrics.set_int g_conns 0;
          (match config.metrics_file with
          | Some path ->
              let json = with_tally (fun () -> Metrics.to_json metrics) in
              Status.write_atomic ~path (Json.to_string json)
          | None -> ());
          Option.iter (fun w -> Status.finish w (snapshot ())) status_writer;
          List.iter close_conn !conns;
          Cache.close cache;
          (try U.unlink config.socket with U.Unix_error _ -> ());
          let s = Cache.stats cache in
          Log.info log "served %d request(s): %d cache hit(s), %d scheduled"
            !t_total s.Cache.hits
            (Metrics.counter_value m_scheduled);
          (match config.chaos with
          | Some c -> Log.info log "chaos: %d fault(s) injected" (Chaos.injected c)
          | None -> ());
          Ok ())
