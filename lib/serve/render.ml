open Ims_obs

type scheduled = Ims_check.Fallback.t * int * int

let cache_key ~machine_dump ~budget_ratio ~max_delta_ii ~dump =
  Ims_exec.Content_hash.of_parts
    [
      machine_dump;
      string_of_float budget_ratio;
      string_of_int max_delta_ii;
      dump;
    ]

let schedule_dump ~machine ~budget_ratio ~max_delta_ii ?counters ?trace
    ?cancel dump =
  let ddg = Ims_workloads.Loop_parse.parse machine dump in
  let h =
    Ims_check.Fallback.modulo_schedule_or_fallback ~budget_ratio ~max_delta_ii
      ?counters ?trace ?cancel ddg
  in
  (h, Ims_core.Schedule.length h.Ims_check.Fallback.schedule,
   Ims_ir.Ddg.n_real ddg)

let done_fields ((h : Ims_check.Fallback.t), sl, n) =
  let ims_fields =
    match h.Ims_check.Fallback.ims with
    | None -> []
    | Some out ->
        let m = out.Ims_core.Ims.mii in
        [
          ("resmii", Json.Int m.Ims_mii.Mii.resmii);
          ("recmii", Json.Int m.Ims_mii.Mii.recmii);
          ("mii", Json.Int m.Ims_mii.Mii.mii);
          ("attempts", Json.Int out.Ims_core.Ims.attempts);
          ("steps_final", Json.Int out.Ims_core.Ims.steps_final);
          ("steps_total", Json.Int out.Ims_core.Ims.steps_total);
        ]
  in
  let degraded_fields =
    match h.Ims_check.Fallback.degraded with
    | None -> [ ("degraded", Json.Bool false) ]
    | Some r ->
        [
          ("degraded", Json.Bool true);
          ("reason", Json.String (Ims_check.Fallback.reason_kind r));
        ]
  in
  (("n", Json.Int n)
   :: ("ii", Json.Int h.Ims_check.Fallback.schedule.Ims_core.Schedule.ii)
   :: ("sl", Json.Int sl) :: ims_fields)
  @ degraded_fields

let casualty_extra ~reparse (outcome : _ Ims_exec.Outcome.t) =
  match outcome with
  | Ims_exec.Outcome.Done _ -> []
  | Ims_exec.Outcome.Cancelled { elapsed; limit } ->
      (* The cancelled loop still ships a checked acyclic fallback
         schedule when it at least parses. *)
      let fb =
        match reparse () with
        | exception _ -> []
        | ddg -> (
            match
              Ims_check.Fallback.fallback ddg
                ~reason:(Ims_check.Fallback.Cancelled { elapsed; limit })
            with
            | exception _ -> []
            | h ->
                [
                  ( "fallback_ii",
                    Json.Int
                      h.Ims_check.Fallback.schedule.Ims_core.Schedule.ii );
                  ( "fallback_sl",
                    Json.Int
                      (Ims_core.Schedule.length h.Ims_check.Fallback.schedule)
                  );
                ])
      in
      ("quarantined", Json.Bool true) :: fb
  | _ -> [ ("quarantined", Json.Bool true) ]

let body_string ~reparse outcome =
  let extra = casualty_extra ~reparse outcome in
  Json.to_string
    (Json.Obj (Ims_exec.Report.body ~extra ~fields:done_fields outcome))
