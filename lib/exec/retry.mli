(** Declarative per-job retry policy for the batch engine.

    A policy classifies a finished attempt's outcome and answers: run
    the job again or give up?  The engine ({!Exec.run}) applies it
    after every attempt, so the policy itself stays a pure decision
    table — easy to test exhaustively and impossible to leak state
    between attempts.

    The ladder distinguishes two casualty families:

    - {e transient} failures (matched by the [transient] predicate on
      the printed exception — e.g. an injected fault, a flaky I/O
      layer): retried with exponential backoff and the {e same}
      deadline, since waiting is what helps;
    - {e resource} casualties ([Timed_out], [Cancelled] — the job
      legitimately needed more than it was given): retried immediately
      but with the deadline {e escalated} by [escalation] per attempt,
      the budget-ladder analogue of the paper's BudgetRatio knob.

    Deterministic failures match neither arm, exhaust [max_attempts]
    (or give up immediately), and land in quarantine at the caller. *)

type decision =
  | Give_up
  | Retry of { backoff : float; deadline_scale : float }
      (** Sleep [backoff] seconds, then re-run with the per-job deadline
          multiplied by [deadline_scale] (cumulative across attempts). *)

type policy = {
  max_attempts : int;  (** Total attempts, >= 1; 1 = never retry. *)
  backoff : float;  (** First transient-retry sleep, seconds. *)
  backoff_factor : float;  (** Multiplier per further transient retry. *)
  escalation : float;  (** Deadline multiplier per timeout/cancel retry. *)
  transient : string -> bool;
      (** Classifies {!Outcome.Failed} by its printed exception. *)
}

val none : policy
(** [max_attempts = 1]: every outcome is final. *)

val create :
  ?max_attempts:int ->
  ?backoff:float ->
  ?backoff_factor:float ->
  ?escalation:float ->
  ?transient:(string -> bool) ->
  unit ->
  policy
(** Defaults: 3 attempts, 0.05s backoff doubling each retry, 2.0x
    deadline escalation, nothing transient. *)

val decide : policy -> attempt:int -> 'a Outcome.t -> decision
(** The decision table.  [attempt] is 1-based; [Done] and attempts at
    the [max_attempts] cap always give up. *)
