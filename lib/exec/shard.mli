(** Per-job observability and control shards.

    The telemetry layer's sinks ({!Ims_obs.Trace.t},
    {!Ims_mii.Counters.t}) are single-writer mutable buffers; sharing
    one across domains would race.  So the engine hands every job its
    own shard — owned exclusively by whichever worker runs that job —
    and, after the barrier, {!merge} folds the shards {e in job order}:
    traces are absorbed with their sequence numbers re-stamped
    ({!Ims_obs.Trace.absorb}) and counters are summed
    ({!Ims_mii.Counters.merge}).

    Because the merge order is the job order, never the (racy)
    completion order, the merged trace and counters are byte-identical
    to what a serial run over the same jobs would have produced — this
    is what keeps [--trace] and [--metrics] exports stable under
    [--jobs N].

    The shard also carries the job's control context: its cancellation
    token (to be threaded into the scheduler, and polled directly by
    long-running job code) and which attempt this is (1-based) when a
    retry policy is active. *)

type t = {
  trace : Ims_obs.Trace.t;  (** [Trace.null] unless observing. *)
  counters : Ims_mii.Counters.t;
  cancel : Ims_obs.Cancel.t;
      (** This attempt's token; [Cancel.null] when no deadline or
          run-level gate is armed. *)
  attempt : int;  (** 1 on the first run of the job. *)
}

val create :
  ?observe:bool ->
  ?time_spans:bool ->
  ?timer:(unit -> float) ->
  ?cancel:Ims_obs.Cancel.t ->
  ?attempt:int ->
  unit ->
  t
(** A fresh shard; [observe] (default false) allocates a real trace
    sink instead of [Trace.null].  [time_spans] (default false, implied
    by [observe]) allocates a {!Ims_obs.Trace.timer_only} sink instead:
    no events, but per-phase wall time still accumulates — the cheap
    mode run-level profiling uses.  [timer] feeds span timing for
    either kind of sink (default [Sys.time]). *)

val merge : t list -> t
(** Fold shards in list order into one shard with a contiguous,
    renumbered event stream and summed counters.  A timing-only shard
    set merges into a timing-only shard (span tables folded, no
    events).  The merged shard's control fields are neutral
    ([Cancel.null], attempt 1). *)
