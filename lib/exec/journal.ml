open Ims_obs

type manifest = {
  version : int;
  tool : string;
  hash : string;
  jobs : int;
  parts : (string * string) list;
}

(* Version 2 added [parts]: the overall hash's named ingredients
   (machine / flags / corpus / shard), recorded so a resume refusal can
   say *which* one diverged instead of printing two opaque digests.
   Version 1 journals (no "parts" field) still parse, with an empty
   list. *)
let format_version = 2
let manifest_hash = Content_hash.of_parts

let hash_of_parts parts =
  manifest_hash (List.concat_map (fun (k, v) -> [ k; v ]) parts)

let manifest_json m =
  Json.Obj
    ([
       ("kind", Json.String "manifest");
       ("version", Json.Int m.version);
       ("tool", Json.String m.tool);
       ("hash", Json.String m.hash);
       ("jobs", Json.Int m.jobs);
     ]
    @
    match m.parts with
    | [] -> []
    | parts ->
        [
          ( "parts",
            Json.Obj (List.map (fun (k, v) -> (k, Json.String v)) parts)
          );
        ])

(* The fsync'd append / torn-tail-truncation machinery is shared with
   the serve daemon's schedule cache (Append_log); the journal adds the
   manifest and the per-job record schema on top. *)
type writer = Append_log.t

let create ?sync_every ~path m =
  Append_log.create ?sync_every ~path
    ~header:(manifest_json { m with version = format_version })
    ()

let reopen ?sync_every ~path () = Append_log.reopen ?sync_every ~path ()

let append w ~index payload =
  Append_log.append w
    (Json.Obj
       [
         ("kind", Json.String "job");
         ("index", Json.Int index);
         ("line", payload);
       ])

let close = Append_log.close

type recovered = {
  manifest : manifest;
  entries : (int * Json.t) list;
  torn : bool;
}

let field obj k =
  match obj with Json.Obj kvs -> List.assoc_opt k kvs | _ -> None

let int_field obj k =
  match field obj k with Some (Json.Int i) -> Some i | _ -> None

let str_field obj k =
  match field obj k with Some (Json.String s) -> Some s | _ -> None

let parts_field obj =
  match field obj "parts" with
  | Some (Json.Obj kvs) ->
      List.filter_map
        (fun (k, v) ->
          match v with Json.String s -> Some (k, s) | _ -> None)
        kvs
  | _ -> []

let parse_manifest line =
  match Json.of_string line with
  | Error e -> Error ("malformed manifest line: " ^ e)
  | Ok obj -> (
      match
        ( str_field obj "kind",
          int_field obj "version",
          str_field obj "tool",
          str_field obj "hash",
          int_field obj "jobs" )
      with
      | Some "manifest", Some version, Some tool, Some hash, Some jobs ->
          if version > format_version then
            Error
              (Printf.sprintf "journal format version %d is newer than this \
                               build understands (%d)"
                 version format_version)
          else Ok { version; tool; hash; jobs; parts = parts_field obj }
      | _ -> Error "first line is not a journal manifest")

let parse_record line =
  match Json.of_string line with
  | Error _ -> None
  | Ok obj -> (
      match (str_field obj "kind", int_field obj "index", field obj "line") with
      | Some "job", Some index, Some payload -> Some (index, payload)
      | _ -> None)

(* Name the diverged ingredients, not just the digests.  Components are
   compared by name across both manifests; one side missing a name
   (e.g. a version-1 journal with no parts at all) still reports it. *)
let explain_mismatch ~journal ~current =
  let names =
    List.map fst journal.parts
    @ List.filter
        (fun k -> not (List.mem_assoc k journal.parts))
        (List.map fst current.parts)
  in
  let diverged =
    List.filter
      (fun k ->
        List.assoc_opt k journal.parts <> List.assoc_opt k current.parts)
      names
  in
  let what =
    match diverged with
    | [] -> "manifest mismatch"
    | ks -> Printf.sprintf "manifest mismatch: %s diverged" (String.concat ", " ks)
  in
  Printf.sprintf "%s (journal hash %s, this run %s)" what journal.hash
    current.hash

let read ~path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | exception Sys_error msg -> Error msg
  | "" -> Error "empty journal"
  | content ->
      (* A file not ending in '\n' ends in an interrupted append; that
         trailing fragment is the only place a malformed line is
         tolerated. *)
      let complete = String.length content > 0 && content.[String.length content - 1] = '\n' in
      let lines =
        String.split_on_char '\n' content
        |> List.filter (fun l -> l <> "")
      in
      (match lines with
      | [] -> Error "empty journal"
      | first :: rest -> (
          match parse_manifest first with
          | Error e -> Error e
          | Ok manifest ->
              let nrec = List.length rest in
              let rec records i acc = function
                | [] -> Ok { manifest; entries = List.rev acc; torn = false }
                | line :: tl -> (
                    match parse_record line with
                    | Some entry -> records (i + 1) (entry :: acc) tl
                    | None ->
                        if i = nrec - 1 && not complete then
                          Ok { manifest; entries = List.rev acc; torn = true }
                        else
                          Error
                            (Printf.sprintf
                               "corrupt journal: malformed record %d of %d" (i + 1)
                               nrec))
              in
              records 0 [] rest))
