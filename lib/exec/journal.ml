open Ims_obs

type manifest = { version : int; tool : string; hash : string; jobs : int }

let format_version = 1

let manifest_hash parts =
  Digest.to_hex (Digest.string (String.concat "\x00" parts))

let manifest_json m =
  Json.Obj
    [
      ("kind", Json.String "manifest");
      ("version", Json.Int m.version);
      ("tool", Json.String m.tool);
      ("hash", Json.String m.hash);
      ("jobs", Json.Int m.jobs);
    ]

type writer = { fd : Unix.file_descr; mutable closed : bool }

(* One full line per write call, then fsync: a crash can tear at most
   the line being written, and only at the end of the file. *)
let write_line fd json =
  let line = Bytes.of_string (Json.to_string json ^ "\n") in
  let len = Bytes.length line in
  let rec push off =
    if off < len then push (off + Unix.write fd line off (len - off))
  in
  push 0;
  Unix.fsync fd

let create ~path m =
  let fd = Unix.openfile path [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644 in
  write_line fd (manifest_json { m with version = format_version });
  { fd; closed = false }

(* A torn trailing fragment (SIGKILL mid-append) must be cut before the
   next append, or the fragment and the new record would fuse into one
   corrupt line — poisoning the journal for any later resume. *)
let reopen ~path =
  let fd = Unix.openfile path [ Unix.O_RDWR ] 0o644 in
  let size = (Unix.fstat fd).Unix.st_size in
  let keep =
    if size = 0 then 0
    else begin
      let ic = open_in_bin path in
      let content =
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      in
      if content.[String.length content - 1] = '\n' then String.length content
      else
        match String.rindex_opt content '\n' with
        | Some i -> i + 1
        | None -> 0
    end
  in
  if keep < size then Unix.ftruncate fd keep;
  ignore (Unix.lseek fd keep Unix.SEEK_SET);
  { fd; closed = false }

let append w ~index payload =
  write_line w.fd
    (Json.Obj
       [
         ("kind", Json.String "job");
         ("index", Json.Int index);
         ("line", payload);
       ])

let close w =
  if not w.closed then begin
    w.closed <- true;
    Unix.close w.fd
  end

type recovered = {
  manifest : manifest;
  entries : (int * Json.t) list;
  torn : bool;
}

let field obj k =
  match obj with Json.Obj kvs -> List.assoc_opt k kvs | _ -> None

let int_field obj k =
  match field obj k with Some (Json.Int i) -> Some i | _ -> None

let str_field obj k =
  match field obj k with Some (Json.String s) -> Some s | _ -> None

let parse_manifest line =
  match Json.of_string line with
  | Error e -> Error ("malformed manifest line: " ^ e)
  | Ok obj -> (
      match
        ( str_field obj "kind",
          int_field obj "version",
          str_field obj "tool",
          str_field obj "hash",
          int_field obj "jobs" )
      with
      | Some "manifest", Some version, Some tool, Some hash, Some jobs ->
          if version > format_version then
            Error
              (Printf.sprintf "journal format version %d is newer than this \
                               build understands (%d)"
                 version format_version)
          else Ok { version; tool; hash; jobs }
      | _ -> Error "first line is not a journal manifest")

let parse_record line =
  match Json.of_string line with
  | Error _ -> None
  | Ok obj -> (
      match (str_field obj "kind", int_field obj "index", field obj "line") with
      | Some "job", Some index, Some payload -> Some (index, payload)
      | _ -> None)

let read ~path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | exception Sys_error msg -> Error msg
  | "" -> Error "empty journal"
  | content ->
      (* A file not ending in '\n' ends in an interrupted append; that
         trailing fragment is the only place a malformed line is
         tolerated. *)
      let complete = String.length content > 0 && content.[String.length content - 1] = '\n' in
      let lines =
        String.split_on_char '\n' content
        |> List.filter (fun l -> l <> "")
      in
      (match lines with
      | [] -> Error "empty journal"
      | first :: rest -> (
          match parse_manifest first with
          | Error e -> Error e
          | Ok manifest ->
              let nrec = List.length rest in
              let rec records i acc = function
                | [] -> Ok { manifest; entries = List.rev acc; torn = false }
                | line :: tl -> (
                    match parse_record line with
                    | Some entry -> records (i + 1) (entry :: acc) tl
                    | None ->
                        if i = nrec - 1 && not complete then
                          Ok { manifest; entries = List.rev acc; torn = true }
                        else
                          Error
                            (Printf.sprintf
                               "corrupt journal: malformed record %d of %d" (i + 1)
                               nrec))
              in
              records 0 [] rest))
