type 'a t = {
  cap : int;
  q : 'a Queue.t;
  m : Mutex.t;
  nonempty : Condition.t;
  mutable closed : bool;
}

let create ~capacity =
  {
    cap = max 1 capacity;
    q = Queue.create ();
    m = Mutex.create ();
    nonempty = Condition.create ();
    closed = false;
  }

let with_lock t f =
  Mutex.lock t.m;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.m) f

let try_add t x =
  with_lock t (fun () ->
      if t.closed || Queue.length t.q >= t.cap then false
      else begin
        Queue.push x t.q;
        Condition.signal t.nonempty;
        true
      end)

let take t =
  with_lock t (fun () ->
      while Queue.is_empty t.q && not t.closed do
        Condition.wait t.nonempty t.m
      done;
      if Queue.is_empty t.q then None else Some (Queue.pop t.q))

let close t =
  with_lock t (fun () ->
      t.closed <- true;
      Condition.broadcast t.nonempty)

let depth t = with_lock t (fun () -> Queue.length t.q)
let capacity t = t.cap
