type error = { exn : string; backtrace : string }

type 'a t =
  | Done of 'a
  | Failed of error
  | Timed_out of { elapsed : float; limit : float }

let done_ = function Done v -> Some v | Failed _ | Timed_out _ -> None
let is_done = function Done _ -> true | Failed _ | Timed_out _ -> false

let map f = function
  | Done v -> Done (f v)
  | Failed e -> Failed e
  | Timed_out t -> Timed_out t

let get_exn = function
  | Done v -> v
  | Failed e -> failwith ("job failed: " ^ e.exn)
  | Timed_out { elapsed; limit } ->
      failwith
        (Printf.sprintf "job timed out: %.3fs over the %.3fs limit" elapsed
           limit)

let status = function
  | Done _ -> "ok"
  | Failed _ -> "failed"
  | Timed_out _ -> "timed_out"

let describe = function
  | Done _ -> "ok"
  | Failed e -> "failed: " ^ e.exn
  | Timed_out { elapsed; limit } ->
      Printf.sprintf "timed out after %.3fs (limit %.3fs)" elapsed limit
