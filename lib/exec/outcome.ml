type error = { exn : string; backtrace : string }

type 'a t =
  | Done of 'a
  | Failed of error
  | Timed_out of { elapsed : float; limit : float }
  | Cancelled of { elapsed : float; limit : float }

let done_ = function
  | Done v -> Some v
  | Failed _ | Timed_out _ | Cancelled _ -> None

let is_done = function
  | Done _ -> true
  | Failed _ | Timed_out _ | Cancelled _ -> false

let map f = function
  | Done v -> Done (f v)
  | Failed e -> Failed e
  | Timed_out t -> Timed_out t
  | Cancelled c -> Cancelled c

let get ?job o =
  let where =
    match job with None -> "job" | Some i -> Printf.sprintf "job %d" i
  in
  match o with
  | Done v -> v
  | Failed e -> failwith (Printf.sprintf "%s failed: %s" where e.exn)
  | Timed_out { elapsed; limit } ->
      failwith
        (Printf.sprintf "%s timed out: %.3fs over the %.3fs limit" where
           elapsed limit)
  | Cancelled { elapsed; limit } ->
      failwith
        (if limit = infinity then
           Printf.sprintf "%s cancelled after %.3fs" where elapsed
         else
           Printf.sprintf "%s cancelled: %.3fs deadline preempted it at %.3fs"
             where limit elapsed)

let get_exn o = get o

let status = function
  | Done _ -> "ok"
  | Failed _ -> "failed"
  | Timed_out _ -> "timed_out"
  | Cancelled _ -> "cancelled"

let describe = function
  | Done _ -> "ok"
  | Failed e -> "failed: " ^ e.exn
  | Timed_out { elapsed; limit } ->
      Printf.sprintf "timed out after %.3fs (limit %.3fs)" elapsed limit
  | Cancelled { elapsed; limit } ->
      if limit = infinity then Printf.sprintf "cancelled after %.3fs" elapsed
      else
        Printf.sprintf "cancelled after %.3fs (deadline %.3fs)" elapsed limit
