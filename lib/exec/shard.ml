open Ims_obs
open Ims_mii

type t = {
  trace : Trace.t;
  counters : Counters.t;
  cancel : Cancel.t;
  attempt : int;
}

let create ?(observe = false) ?(cancel = Cancel.null) ?(attempt = 1) () =
  {
    trace = (if observe then Trace.create () else Trace.null);
    counters = Counters.create ();
    cancel;
    attempt;
  }

let merge shards =
  let observed = List.exists (fun s -> Trace.enabled s.trace) shards in
  let trace = if observed then Trace.create () else Trace.null in
  List.iter (fun s -> Trace.absorb trace s.trace) shards;
  {
    trace;
    counters = Counters.merge (List.map (fun s -> s.counters) shards);
    cancel = Cancel.null;
    attempt = 1;
  }
