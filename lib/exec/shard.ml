open Ims_obs
open Ims_mii

type t = {
  trace : Trace.t;
  counters : Counters.t;
  cancel : Cancel.t;
  attempt : int;
}

let create ?(observe = false) ?(time_spans = false) ?timer ?(cancel = Cancel.null)
    ?(attempt = 1) () =
  {
    trace =
      (if observe then Trace.create ?timer ()
       else if time_spans then Trace.timer_only ?timer ()
       else Trace.null);
    counters = Counters.create ();
    cancel;
    attempt;
  }

let merge shards =
  let observed = List.exists (fun s -> Trace.enabled s.trace) shards in
  let timed = List.exists (fun s -> Trace.times_spans s.trace) shards in
  let trace =
    if observed then Trace.create ()
    else if timed then Trace.timer_only ()
    else Trace.null
  in
  List.iter (fun s -> Trace.absorb trace s.trace) shards;
  {
    trace;
    counters = Counters.merge (List.map (fun s -> s.counters) shards);
    cancel = Cancel.null;
    attempt = 1;
  }
