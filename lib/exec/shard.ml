open Ims_obs
open Ims_mii

type t = { trace : Trace.t; counters : Counters.t }

let create ?(observe = false) () =
  {
    trace = (if observe then Trace.create () else Trace.null);
    counters = Counters.create ();
  }

let merge shards =
  let observed = List.exists (fun s -> Trace.enabled s.trace) shards in
  let trace = if observed then Trace.create () else Trace.null in
  List.iter (fun s -> Trace.absorb trace s.trace) shards;
  { trace; counters = Counters.merge (List.map (fun s -> s.counters) shards) }
