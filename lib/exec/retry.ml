type decision = Give_up | Retry of { backoff : float; deadline_scale : float }

type policy = {
  max_attempts : int;
  backoff : float;
  backoff_factor : float;
  escalation : float;
  transient : string -> bool;
}

let create ?(max_attempts = 3) ?(backoff = 0.05) ?(backoff_factor = 2.0)
    ?(escalation = 2.0) ?(transient = fun _ -> false) () =
  {
    max_attempts = max 1 max_attempts;
    backoff = max 0.0 backoff;
    backoff_factor = max 1.0 backoff_factor;
    escalation = max 1.0 escalation;
    transient;
  }

let none = create ~max_attempts:1 ()

let decide p ~attempt (o : 'a Outcome.t) =
  if attempt >= p.max_attempts then Give_up
  else
    match o with
    | Outcome.Done _ -> Give_up
    | Outcome.Failed e ->
        if p.transient e.Outcome.exn then
          Retry
            {
              backoff =
                p.backoff *. (p.backoff_factor ** float_of_int (attempt - 1));
              deadline_scale = 1.0;
            }
        else Give_up
    | Outcome.Timed_out _ | Outcome.Cancelled _ ->
        Retry { backoff = 0.0; deadline_scale = p.escalation }
