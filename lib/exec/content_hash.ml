let of_parts parts =
  Stdlib.Digest.to_hex (Stdlib.Digest.string (String.concat "\x00" parts))

let of_string s = of_parts [ s ]
