(** Crash-safe append-only JSONL files: the shared substrate of the
    batch {!Journal} and the serve-daemon schedule cache.

    The contract, shared by every user:

    - one complete line per {!append}, fsync'd before returning, so a
      crash (even SIGKILL) can tear at most the line being written, and
      only at the very end of the file;
    - {!reopen} cuts any torn trailing fragment before the next append,
      so the fragment and a new record can never fuse into one corrupt
      line;
    - the first line is a header identifying the format (written by
      {!create}, returned raw by {!load} for the caller to validate). *)

type t

val create : path:string -> header:Ims_obs.Json.t -> t
(** Truncate-create [path] and write the header line. *)

val reopen : path:string -> t
(** Open an existing log for appending, truncating a torn final line
    (one not ending in ['\n']) first.  @raise Unix.Unix_error if the
    file cannot be opened. *)

val append : t -> Ims_obs.Json.t -> unit
(** Append one record as a single fsync'd line. *)

val rewrite :
  path:string -> header:Ims_obs.Json.t -> records:Ims_obs.Json.t list -> t
(** Atomically replace the log at [path] with [header] + [records]:
    stage everything in [path ^ ".rewrite"], fsync, rename over [path],
    and return the staged descriptor (now [path]'s) open for appending.
    A crash at any point leaves either the old or the new log complete —
    this is the compaction substrate for bounded append-only files.
    @raise Unix.Unix_error on I/O failure (the temp file is removed). *)

val close : t -> unit
(** Idempotent. *)

type loaded = {
  header : string;  (** The first line, raw (no trailing newline). *)
  records : string list;  (** Every complete line after the header. *)
  torn : bool;  (** A trailing fragment was present and dropped. *)
}

val load : path:string -> (loaded, string) result
(** Read the whole log.  A final line without ['\n'] is an interrupted
    append: it is dropped and reported as [torn] rather than returned —
    re-deriving the lost record is the caller's business. *)
