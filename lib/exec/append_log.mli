(** Crash-safe append-only JSONL files: the shared substrate of the
    batch {!Journal} and the serve-daemon schedule cache.

    The contract, shared by every user:

    - one complete line per {!append}, fsync'd before returning, so a
      crash (even SIGKILL) can tear at most the line being written, and
      only at the very end of the file;
    - {!reopen} cuts any torn trailing fragment before the next append,
      so the fragment and a new record can never fuse into one corrupt
      line;
    - the first line is a header identifying the format (written by
      {!create}, returned raw by {!load} for the caller to validate).

    [sync_every] (default 1) amortises the fsync over that many
    appends.  Process death (SIGKILL included) loses nothing a
    completed [write] covered — the page cache survives the process —
    so crash-resume semantics are unchanged; only power-loss durability
    is traded, at most [sync_every - 1] records of it.  Shard-scale
    journals use this: at one fsync per million-loop record the disk,
    not the scheduler, would set the pace. *)

type t

val create : ?sync_every:int -> path:string -> header:Ims_obs.Json.t -> unit -> t
(** Truncate-create [path] and write the header line.
    @raise Invalid_argument if [sync_every < 1]. *)

val reopen : ?sync_every:int -> path:string -> unit -> t
(** Open an existing log for appending, truncating a torn final line
    (one not ending in ['\n']) first.  @raise Unix.Unix_error if the
    file cannot be opened. *)

val append : t -> Ims_obs.Json.t -> unit
(** Append one record as a single line, fsync'd per [sync_every]. *)

val flush : t -> unit
(** Force any deferred fsync now. *)

val rewrite :
  path:string -> header:Ims_obs.Json.t -> records:Ims_obs.Json.t list -> t
(** Atomically replace the log at [path] with [header] + [records]:
    stage everything in [path ^ ".rewrite"], fsync, rename over [path],
    and return the staged descriptor (now [path]'s) open for appending.
    A crash at any point leaves either the old or the new log complete —
    this is the compaction substrate for bounded append-only files.
    @raise Unix.Unix_error on I/O failure (the temp file is removed). *)

val close : t -> unit
(** Flushes any deferred fsync; idempotent. *)

type loaded = {
  header : string;  (** The first line, raw (no trailing newline). *)
  records : string list;  (** Every complete line after the header. *)
  torn : bool;  (** A trailing fragment was present and dropped. *)
}

val load : path:string -> (loaded, string) result
(** Read the whole log.  A final line without ['\n'] is an interrupted
    append: it is dropped and reported as [torn] rather than returned —
    re-deriving the lost record is the caller's business. *)
