(* Re-export of [Ims_par.Work_queue]; see chunk.ml. *)
include Ims_par.Work_queue
