(** The result of one job in a batch run.

    Fault containment is by value, not by unwinding: an exception inside
    a job becomes {!Failed} (with the printed exception and its
    backtrace), a job that overran its soft deadline becomes
    {!Timed_out}, and in both cases every other job still runs to
    completion.  The engine never re-raises on its own — callers that
    want fail-fast semantics opt in through {!Exec.map_exn} or
    {!get_exn}. *)

type error = { exn : string; backtrace : string }

type 'a t =
  | Done of 'a
  | Failed of error
  | Timed_out of { elapsed : float; limit : float }
      (** The job {e completed} — OCaml domains cannot be safely
          preempted — but took [elapsed] seconds against a [limit]-second
          budget, so its value is discarded and reported as a casualty. *)

val done_ : 'a t -> 'a option
val is_done : 'a t -> bool
val map : ('a -> 'b) -> 'a t -> 'b t

val get_exn : 'a t -> 'a
(** @raise Failure on [Failed] and [Timed_out]. *)

val status : 'a t -> string
(** ["ok"], ["failed"] or ["timed_out"] — the stable tag exported in
    JSONL reports. *)

val describe : 'a t -> string
(** One human-readable line, e.g. ["failed: Failure(\"no schedule\")"]. *)
