(** The result of one job in a batch run.

    Fault containment is by value, not by unwinding: an exception inside
    a job becomes {!Failed} (with the printed exception and its
    backtrace), a job that overran a limit becomes {!Timed_out} or
    {!Cancelled}, and in every case every other job still runs to
    completion.  The engine never re-raises on its own — callers that
    want fail-fast semantics opt in through {!Exec.map_exn} or
    {!get}.

    The two wall-clock casualties are distinct on purpose:

    - {!Timed_out} is the {e soft} limit ([Exec.run ~timeout]): the job
      ran to completion — OCaml domains cannot be preempted — but took
      longer than allowed, so its computed value is discarded.  The
      limit bounds what a run will {e report}, not what a job can
      consume.
    - {!Cancelled} is the {e preemptive} limit ([Exec.run ~deadline], or
      a tripped run-level token): the job was stopped {e mid-search} by
      a {!Ims_obs.Cancel.poll} raising inside it, so no value was ever
      computed.  This is what bounds wall clock. *)

type error = { exn : string; backtrace : string }

type 'a t =
  | Done of 'a
  | Failed of error
  | Timed_out of { elapsed : float; limit : float }
      (** The job {e completed} but took [elapsed] seconds against a
          soft [limit]-second budget; its value is discarded and
          reported as a casualty. *)
  | Cancelled of { elapsed : float; limit : float }
      (** The job was preempted after [elapsed] seconds by cooperative
          cancellation; [limit] is the deadline that fired, or
          [infinity] when it was cancelled for another reason (run-level
          fail-fast, explicit token). *)

val done_ : 'a t -> 'a option
val is_done : 'a t -> bool
val map : ('a -> 'b) -> 'a t -> 'b t

val get : ?job:int -> 'a t -> 'a
(** @raise Failure on any non-[Done] outcome, naming the job index when
    given (["job 7 failed: ..."]) so a casualty in a big batch is
    locatable from the message alone. *)

val get_exn : 'a t -> 'a
(** [get ?job:None]. *)

val status : 'a t -> string
(** ["ok"], ["failed"], ["timed_out"] or ["cancelled"] — the stable tag
    exported in JSONL reports. *)

val describe : 'a t -> string
(** One human-readable line, e.g. ["failed: Failure(\"no schedule\")"]. *)
