open Ims_obs

type t = {
  fd : Unix.file_descr;
  mutable closed : bool;
  sync_every : int;
  mutable unsynced : int;
}

(* One full line per write call, then fsync: a crash can tear at most
   the line being written, and only at the end of the file.

   With [sync_every > 1] the fsync is amortised over that many appends.
   A SIGKILL still loses nothing that [write] returned for — completed
   writes survive process death in the page cache — so crash-resume
   semantics are unchanged; only power-loss durability is traded, and
   at most [sync_every - 1] records of it. *)
let write_line t json =
  let line = Bytes.of_string (Json.to_string json ^ "\n") in
  let len = Bytes.length line in
  let rec push off =
    if off < len then push (off + Unix.write t.fd line off (len - off))
  in
  push 0;
  t.unsynced <- t.unsynced + 1;
  if t.unsynced >= t.sync_every then begin
    Unix.fsync t.fd;
    t.unsynced <- 0
  end

let mk ?(sync_every = 1) fd =
  if sync_every < 1 then invalid_arg "Append_log: sync_every < 1";
  { fd; closed = false; sync_every; unsynced = 0 }

let create ?sync_every ~path ~header () =
  let fd =
    Unix.openfile path [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644
  in
  let t = mk ?sync_every fd in
  write_line t header;
  t

let read_all path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* A torn trailing fragment (SIGKILL mid-append) must be cut before the
   next append, or the fragment and the new record would fuse into one
   corrupt line — poisoning the log for any later reader. *)
let reopen ?sync_every ~path () =
  let fd = Unix.openfile path [ Unix.O_RDWR ] 0o644 in
  let size = (Unix.fstat fd).Unix.st_size in
  let keep =
    if size = 0 then 0
    else begin
      let content = read_all path in
      if content.[String.length content - 1] = '\n' then String.length content
      else
        match String.rindex_opt content '\n' with
        | Some i -> i + 1
        | None -> 0
    end
  in
  if keep < size then Unix.ftruncate fd keep;
  ignore (Unix.lseek fd keep Unix.SEEK_SET);
  mk ?sync_every fd

let append t json = write_line t json

let flush t =
  if t.unsynced > 0 then begin
    Unix.fsync t.fd;
    t.unsynced <- 0
  end

(* Compaction: the whole replacement is staged in [path ^ ".rewrite"],
   fsync'd, then renamed over [path] — the same atomicity discipline as
   Status.write_atomic, so a crash at any point leaves either the old
   complete log or the new complete log, never a hybrid.  The staged fd
   survives the rename (same inode) and becomes the append fd. *)
let rewrite ~path ~header ~records =
  let tmp = path ^ ".rewrite" in
  let fd = Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644 in
  match
    let buf = Buffer.create 65536 in
    Buffer.add_string buf (Ims_obs.Json.to_string header);
    Buffer.add_char buf '\n';
    List.iter
      (fun r ->
        Buffer.add_string buf (Ims_obs.Json.to_string r);
        Buffer.add_char buf '\n')
      records;
    let line = Buffer.to_bytes buf in
    let len = Bytes.length line in
    let rec push off =
      if off < len then push (off + Unix.write fd line off (len - off))
    in
    push 0;
    Unix.fsync fd;
    Unix.rename tmp path
  with
  | () -> mk fd
  | exception e ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      (try Unix.unlink tmp with Unix.Unix_error _ -> ());
      raise e

let close t =
  if not t.closed then begin
    t.closed <- true;
    (try flush t with Unix.Unix_error _ -> ());
    Unix.close t.fd
  end

type loaded = { header : string; records : string list; torn : bool }

let load ~path =
  match read_all path with
  | exception Sys_error msg -> Error msg
  | "" -> Error "empty log"
  | content ->
      let complete = content.[String.length content - 1] = '\n' in
      let lines =
        String.split_on_char '\n' content |> List.filter (fun l -> l <> "")
      in
      let lines, torn =
        if complete then (lines, false)
        else
          (* The fragment is whatever follows the last newline; drop it. *)
          match List.rev lines with
          | _fragment :: kept -> (List.rev kept, true)
          | [] -> ([], true)
      in
      (match lines with
      | [] -> Error "log holds no complete line"
      | header :: records -> Ok { header; records; torn })
