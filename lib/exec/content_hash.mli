(** The one definition of "the content hash" used across the execution
    layer: the journal manifest ({!Journal}) and the schedule cache
    ({!Ims_serve.Cache}) both key results by it, so a schedule computed
    under one subsystem is recognisable by the other.

    The hash is the hex MD5 of the parts joined with a NUL separator —
    NUL cannot appear in any of the textual parts (machine dumps, flag
    renderings, loop dumps), so distinct part lists cannot collide by
    concatenation.  The definition is pinned by unit tests against a
    fixed corpus: changing it invalidates every journal and every
    on-disk schedule cache in the wild, so treat it as a wire format. *)

val of_parts : string list -> string
(** [of_parts parts] is the 32-character lowercase hex digest. *)

val of_string : string -> string
(** [of_string s] = [of_parts [s]]. *)
