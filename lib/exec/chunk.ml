(* Re-export: the chunk-size policies live in [Ims_par] so that
   libraries below the batch engine (the MinDist blocked closure) can
   share the pool substrate.  [include] preserves the constructors. *)
include Ims_par.Chunk
