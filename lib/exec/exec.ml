open Ims_obs

type stats = {
  jobs : int;
  ok : int;
  failed : int;
  timed_out : int;
  cancelled : int;
  retried : int;
  attempts : int;
  workers : int;
  chunks : int;
  elapsed : float;
}

let default_jobs () = Domain.recommended_domain_count ()

let run ?jobs ?timeout ?deadline ?(retry = Retry.none) ?cancel ?on_result
    ?(sleep = fun (_ : float) -> ()) ?(policy = Chunk.default)
    ?(observe = false) ?(timer = Sys.time) ~f inputs =
  let inputs = Array.of_list inputs in
  let n = Array.length inputs in
  let jobs = match jobs with Some j -> max 1 j | None -> default_jobs () in
  let workers = max 1 (min jobs n) in
  let shards = Array.init n (fun _ -> Shard.create ()) in
  let results = Array.make n None in
  let attempts_of = Array.make n 1 in
  (* [on_result] fires in completion order (it exists to journal and to
     gate), so it is the one place worker domains touch shared state;
     a mutex serializes it. *)
  let result_mutex = Mutex.create () in
  let token scale =
    match (deadline, cancel) with
    | None, None -> Cancel.null
    | None, Some run_tok -> Cancel.create ~timer ~parent:run_tok ()
    | Some d, _ -> Cancel.create ~timer ?parent:cancel ~deadline:(d *. scale) ()
  in
  let body i =
    let rec attempt_loop attempt scale prev =
      let tok = token scale in
      let shard = Shard.create ~observe ~cancel:tok ~attempt () in
      (match prev with
      | Some o ->
          Trace.emit shard.Shard.trace
            (Event.Job_retry { job = i; attempt; after = Outcome.status o })
      | None -> ());
      let t0 = timer () in
      let outcome =
        (* A tripped run-level gate cancels jobs not yet started without
           ever calling [f]. *)
        if Cancel.cancelled tok then
          Outcome.Cancelled
            {
              elapsed = 0.0;
              limit =
                (match deadline with Some d -> d *. scale | None -> infinity);
            }
        else
          match f shard inputs.(i) with
          | v -> (
              match timeout with
              | Some limit ->
                  let elapsed = timer () -. t0 in
                  if elapsed > limit then Outcome.Timed_out { elapsed; limit }
                  else Outcome.Done v
              | None -> Outcome.Done v)
          | exception Cancel.Cancelled { elapsed; limit } ->
              Outcome.Cancelled { elapsed; limit }
          | exception e ->
              Outcome.Failed
                {
                  Outcome.exn = Printexc.to_string e;
                  backtrace = Printexc.get_backtrace ();
                }
      in
      match Retry.decide retry ~attempt outcome with
      | Retry.Give_up -> (outcome, shard, attempt)
      | Retry.Retry { backoff; deadline_scale } ->
          if backoff > 0.0 then sleep backoff;
          attempt_loop (attempt + 1) (scale *. deadline_scale) (Some outcome)
    in
    let outcome, shard, attempts = attempt_loop 1 1.0 None in
    (* Only the final attempt's shard survives: abandoned attempts must
       not pollute the deterministic merged telemetry. *)
    shards.(i) <- shard;
    attempts_of.(i) <- attempts;
    results.(i) <- Some outcome;
    match on_result with
    | None -> ()
    | Some g ->
        Mutex.lock result_mutex;
        Fun.protect
          ~finally:(fun () -> Mutex.unlock result_mutex)
          (fun () -> g i outcome)
  in
  let t_run = timer () in
  let queue = Work_queue.create ~policy ~workers ~length:n in
  Pool.parallel_for ~workers ~queue body;
  let elapsed = timer () -. t_run in
  let outcomes =
    Array.to_list
      (Array.map
         (function
           | Some o -> o
           | None -> assert false (* the barrier guarantees every slot *))
         results)
  in
  let count p = List.length (List.filter p outcomes) in
  let stats =
    {
      jobs = n;
      ok = count Outcome.is_done;
      failed = count (function Outcome.Failed _ -> true | _ -> false);
      timed_out = count (function Outcome.Timed_out _ -> true | _ -> false);
      cancelled = count (function Outcome.Cancelled _ -> true | _ -> false);
      retried =
        Array.fold_left (fun acc a -> if a > 1 then acc + 1 else acc) 0
          attempts_of;
      attempts = Array.fold_left ( + ) 0 attempts_of;
      workers;
      chunks = Work_queue.chunks_taken queue;
      elapsed;
    }
  in
  (outcomes, Shard.merge (Array.to_list shards), stats)

let map ?jobs ?timeout ?policy f inputs =
  let outcomes, _, _ =
    run ?jobs ?timeout ?policy ~f:(fun _shard x -> f x) inputs
  in
  outcomes

let map_exn ?jobs ?policy f inputs =
  List.mapi (fun i o -> Outcome.get ~job:i o) (map ?jobs ?policy f inputs)

let casualties outcomes =
  List.filter (fun o -> not (Outcome.is_done o)) outcomes

let pp_stats ppf s =
  Format.fprintf ppf "%d job%s: %d ok, %d failed, %d timed out" s.jobs
    (if s.jobs = 1 then "" else "s")
    s.ok s.failed s.timed_out;
  if s.cancelled > 0 then Format.fprintf ppf ", %d cancelled" s.cancelled;
  Format.fprintf ppf "; %d worker%s, %d chunk%s" s.workers
    (if s.workers = 1 then "" else "s")
    s.chunks
    (if s.chunks = 1 then "" else "s");
  if s.retried > 0 then
    Format.fprintf ppf "; %d retried (%d attempts total)" s.retried s.attempts

let summary s = Format.asprintf "%a" pp_stats s
