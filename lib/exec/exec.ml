open Ims_obs

type stats = {
  jobs : int;
  ok : int;
  failed : int;
  timed_out : int;
  cancelled : int;
  retried : int;
  attempts : int;
  workers : int;
  chunks : int;
  elapsed : float;
}

let default_jobs () = Domain.recommended_domain_count ()

(* The per-job engine: one input through the attempt / retry /
   cancellation machinery.  [token scale] mints the attempt's
   cancellation token (the factory owns the deadline and parent-token
   policy, so the array path and the stream path share every other
   line).  Returns the final attempt's outcome, its telemetry shard,
   and the attempt count. *)
let run_job ~timer ~timeout ~retry ~sleep ~observe ~time_spans ~token ~job ~f x
    =
  let rec attempt_loop attempt scale prev =
    let tok = token scale in
    let shard = Shard.create ~observe ~time_spans ~timer ~cancel:tok ~attempt () in
    (match prev with
    | Some o ->
        Trace.emit shard.Shard.trace
          (Event.Job_retry { job; attempt; after = Outcome.status o })
    | None -> ());
    let t0 = timer () in
    let outcome =
      (* A tripped run-level gate cancels jobs not yet started without
         ever calling [f]. *)
      if Cancel.cancelled tok then
        Outcome.Cancelled
          {
            elapsed = 0.0;
            limit =
              (match Cancel.deadline tok with Some d -> d | None -> infinity);
          }
      else
        match f shard x with
        | v -> (
            match timeout with
            | Some limit ->
                let elapsed = timer () -. t0 in
                if elapsed > limit then Outcome.Timed_out { elapsed; limit }
                else Outcome.Done v
            | None -> Outcome.Done v)
        | exception Cancel.Cancelled { elapsed; limit } ->
            Outcome.Cancelled { elapsed; limit }
        | exception e ->
            Outcome.Failed
              {
                Outcome.exn = Printexc.to_string e;
                backtrace = Printexc.get_backtrace ();
              }
    in
    match Retry.decide retry ~attempt outcome with
    | Retry.Give_up -> (outcome, shard, attempt)
    | Retry.Retry { backoff; deadline_scale } ->
        if backoff > 0.0 then sleep backoff;
        attempt_loop (attempt + 1) (scale *. deadline_scale) (Some outcome)
  in
  attempt_loop 1 1.0 None

let run ?jobs ?timeout ?deadline ?(retry = Retry.none) ?cancel ?on_result
    ?(sleep = fun (_ : float) -> ()) ?(policy = Chunk.default)
    ?(observe = false) ?profile ?progress ?(timer = Sys.time) ~f inputs =
  let inputs = Array.of_list inputs in
  let n = Array.length inputs in
  let jobs = match jobs with Some j -> max 1 j | None -> default_jobs () in
  let workers = max 1 (min jobs n) in
  let time_spans = Option.is_some profile in
  let shards = Array.init n (fun _ -> Shard.create ()) in
  let results = Array.make n None in
  let attempts_of = Array.make n 1 in
  let seconds_of = Array.make n 0.0 in
  (* [on_result] fires in completion order (it exists to journal and to
     gate), so it is the one place worker domains touch shared state;
     a mutex serializes it — the live [progress] tally rides under the
     same lock. *)
  let result_mutex = Mutex.create () in
  let live = ref (Status.zero ~total:n) in
  let bump (c : Status.counts) outcome attempts =
    let c = if attempts > 1 then { c with Status.retried = c.retried + 1 } else c in
    match outcome with
    | Outcome.Done _ -> { c with Status.ok = c.ok + 1 }
    | Outcome.Failed _ -> { c with Status.failed = c.failed + 1 }
    | Outcome.Timed_out _ -> { c with Status.timed_out = c.timed_out + 1 }
    | Outcome.Cancelled _ -> { c with Status.cancelled = c.cancelled + 1 }
  in
  let token scale =
    match (deadline, cancel) with
    | None, None -> Cancel.null
    | None, Some run_tok -> Cancel.create ~timer ~parent:run_tok ()
    | Some d, _ -> Cancel.create ~timer ?parent:cancel ~deadline:(d *. scale) ()
  in
  let body i =
    let j0 = timer () in
    let outcome, shard, attempts =
      run_job ~timer ~timeout ~retry ~sleep ~observe ~time_spans ~token ~job:i
        ~f inputs.(i)
    in
    (* Only the final attempt's shard survives: abandoned attempts must
       not pollute the deterministic merged telemetry. *)
    shards.(i) <- shard;
    attempts_of.(i) <- attempts;
    seconds_of.(i) <- timer () -. j0;
    results.(i) <- Some outcome;
    match (on_result, progress) with
    | None, None -> ()
    | _ ->
        Mutex.lock result_mutex;
        Fun.protect
          ~finally:(fun () -> Mutex.unlock result_mutex)
          (fun () ->
            (match on_result with Some g -> g i outcome | None -> ());
            match progress with
            | Some g ->
                live := bump !live outcome attempts;
                g !live
            | None -> ())
  in
  let t_run = timer () in
  let queue = Work_queue.create ~policy ~workers ~length:n in
  Pool.parallel_for ~workers ~queue body;
  let elapsed = timer () -. t_run in
  let outcomes =
    Array.to_list
      (Array.map
         (function
           | Some o -> o
           | None -> assert false (* the barrier guarantees every slot *))
         results)
  in
  let count p = List.length (List.filter p outcomes) in
  let stats =
    {
      jobs = n;
      ok = count Outcome.is_done;
      failed = count (function Outcome.Failed _ -> true | _ -> false);
      timed_out = count (function Outcome.Timed_out _ -> true | _ -> false);
      cancelled = count (function Outcome.Cancelled _ -> true | _ -> false);
      retried =
        Array.fold_left (fun acc a -> if a > 1 then acc + 1 else acc) 0
          attempts_of;
      attempts = Array.fold_left ( + ) 0 attempts_of;
      workers;
      chunks = Work_queue.chunks_taken queue;
      elapsed;
    }
  in
  (* Profile accumulation is single-threaded by design: fold each job's
     shard in input order after the barrier, so counter totals/maxima
     and series are byte-identical at any worker count. *)
  (match profile with
  | None -> ()
  | Some p ->
      Array.iteri
        (fun i (shard : Shard.t) ->
          Profile.add_job p
            ~spans:(Trace.span_times shard.trace)
            ~counters:(Ims_mii.Counters.to_assoc shard.counters)
            ~seconds:seconds_of.(i) ())
        shards);
  (outcomes, Shard.merge (Array.to_list shards), stats)

(* --- stream intake ------------------------------------------------------- *)

type 'a streaming = unit Domain.t array

let stream ?(workers = 1) ?timeout ?(retry = Retry.none) ?cancel
    ?(sleep = fun (_ : float) -> ()) ?(observe = false) ?(timer = Sys.time)
    ?(deadline_of = fun _ -> None) ~f ~respond intake =
  let seq = Atomic.make 0 in
  let worker () =
    let rec loop () =
      match Intake.take intake with
      | None -> ()
      | Some x ->
          let job = Atomic.fetch_and_add seq 1 in
          let token scale =
            match (deadline_of x, cancel) with
            | None, None -> Cancel.null
            | None, Some run_tok -> Cancel.create ~timer ~parent:run_tok ()
            | Some d, _ ->
                Cancel.create ~timer ?parent:cancel ~deadline:(d *. scale) ()
          in
          let outcome, shard, attempts =
            run_job ~timer ~timeout ~retry ~sleep ~observe ~time_spans:false
              ~token ~job ~f x
          in
          (* A worker that dies takes a slice of the pool's capacity
             with it for the rest of the daemon's life, so [respond] is
             contained like [f] is: its exceptions are the callback's
             own business (callers log there), never the loop's. *)
          (try respond x outcome shard attempts with _ -> ());
          loop ()
    in
    loop ()
  in
  Array.init (max 1 workers) (fun _ -> Domain.spawn worker)

let streaming_jobs (s : 'a streaming) = Array.length s
let await (s : 'a streaming) = Array.iter Domain.join s

let map ?jobs ?timeout ?policy f inputs =
  let outcomes, _, _ =
    run ?jobs ?timeout ?policy ~f:(fun _shard x -> f x) inputs
  in
  outcomes

let map_exn ?jobs ?policy f inputs =
  List.mapi (fun i o -> Outcome.get ~job:i o) (map ?jobs ?policy f inputs)

let casualties outcomes =
  List.filter (fun o -> not (Outcome.is_done o)) outcomes

let pp_stats ppf s =
  Format.fprintf ppf "%d job%s: %d ok, %d failed, %d timed out" s.jobs
    (if s.jobs = 1 then "" else "s")
    s.ok s.failed s.timed_out;
  if s.cancelled > 0 then Format.fprintf ppf ", %d cancelled" s.cancelled;
  Format.fprintf ppf "; %d worker%s, %d chunk%s" s.workers
    (if s.workers = 1 then "" else "s")
    s.chunks
    (if s.chunks = 1 then "" else "s");
  if s.retried > 0 then
    Format.fprintf ppf "; %d retried (%d attempts total)" s.retried s.attempts

let summary s = Format.asprintf "%a" pp_stats s
