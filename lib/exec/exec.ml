type stats = {
  jobs : int;
  ok : int;
  failed : int;
  timed_out : int;
  workers : int;
  chunks : int;
  elapsed : float;
}

let default_jobs () = Domain.recommended_domain_count ()

let run ?jobs ?timeout ?(policy = Chunk.default) ?(observe = false)
    ?(timer = Sys.time) ~f inputs =
  let inputs = Array.of_list inputs in
  let n = Array.length inputs in
  let jobs = match jobs with Some j -> max 1 j | None -> default_jobs () in
  let workers = max 1 (min jobs n) in
  let shards = Array.init n (fun _ -> Shard.create ~observe ()) in
  let results = Array.make n None in
  let body i =
    let t0 = timer () in
    let outcome =
      match f shards.(i) inputs.(i) with
      | v -> (
          match timeout with
          | Some limit ->
              let elapsed = timer () -. t0 in
              if elapsed > limit then Outcome.Timed_out { elapsed; limit }
              else Outcome.Done v
          | None -> Outcome.Done v)
      | exception e ->
          Outcome.Failed
            {
              Outcome.exn = Printexc.to_string e;
              backtrace = Printexc.get_backtrace ();
            }
    in
    results.(i) <- Some outcome
  in
  let t_run = timer () in
  let queue = Work_queue.create ~policy ~workers ~length:n in
  Pool.parallel_for ~workers ~queue body;
  let elapsed = timer () -. t_run in
  let outcomes =
    Array.to_list
      (Array.map
         (function
           | Some o -> o
           | None -> assert false (* the barrier guarantees every slot *))
         results)
  in
  let count p = List.length (List.filter p outcomes) in
  let stats =
    {
      jobs = n;
      ok = count Outcome.is_done;
      failed = count (function Outcome.Failed _ -> true | _ -> false);
      timed_out = count (function Outcome.Timed_out _ -> true | _ -> false);
      workers;
      chunks = Work_queue.chunks_taken queue;
      elapsed;
    }
  in
  (outcomes, Shard.merge (Array.to_list shards), stats)

let map ?jobs ?timeout ?policy f inputs =
  let outcomes, _, _ =
    run ?jobs ?timeout ?policy ~f:(fun _shard x -> f x) inputs
  in
  outcomes

let map_exn ?jobs ?policy f inputs =
  List.map Outcome.get_exn (map ?jobs ?policy f inputs)

let casualties outcomes =
  List.filter (fun o -> not (Outcome.is_done o)) outcomes

let pp_stats ppf s =
  Format.fprintf ppf
    "%d job%s: %d ok, %d failed, %d timed out; %d worker%s, %d chunk%s" s.jobs
    (if s.jobs = 1 then "" else "s")
    s.ok s.failed s.timed_out s.workers
    (if s.workers = 1 then "" else "s")
    s.chunks
    (if s.chunks = 1 then "" else "s")

let summary s = Format.asprintf "%a" pp_stats s
