(** A bounded, blocking, multi-producer/multi-consumer job queue: the
    stream form of job intake.

    {!Exec.run} materializes its whole input list up front — right for
    a batch over a file corpus, wrong for a daemon where requests
    arrive over a socket for the lifetime of the process.  An intake is
    the daemon-shaped source: producers {!try_add} jobs as they arrive
    and are told immediately when the queue is at its high-water mark
    (backpressure — the caller turns that into a structured [Overloaded]
    response instead of queueing unboundedly); consumers {!take} jobs,
    blocking while the queue is empty and the intake is still open.

    {!close} is the end-of-stream marker: already-queued jobs are still
    drained, then every blocked or future {!take} returns [None] — the
    worker shutdown protocol. *)

type 'a t

val create : capacity:int -> 'a t
(** [capacity] is the admission high-water mark (at least 1). *)

val try_add : 'a t -> 'a -> bool
(** Enqueue unless the queue is full or the intake is closed; [false]
    means rejected (never blocks). *)

val take : 'a t -> 'a option
(** Dequeue, blocking while empty and open; [None] once the intake is
    closed and drained. *)

val close : 'a t -> unit
(** Stop admitting; wake every blocked {!take}.  Idempotent. *)

val depth : 'a t -> int
(** Jobs currently queued (racy by nature; for metrics). *)

val capacity : 'a t -> int
