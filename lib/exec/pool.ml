(* Re-export of [Ims_par.Pool]; see chunk.ml. *)
include Ims_par.Pool
