(** The batch execution engine: run independent jobs across domains.

    The contract, in order of importance:

    {b Determinism.}  [run ~f inputs] returns outcomes in input order,
    each slot written exactly once by whichever worker drew that index,
    and merges telemetry shards in job order — so output order {e and}
    content are byte-identical to a serial run regardless of worker
    count or interleaving.  ([~timeout] and [~deadline] are the opt-in
    exceptions: whether a borderline job crosses a wall-clock limit is
    inherently racy, and a [Timed_out]/[Cancelled] outcome carries
    measured seconds.)

    {b Fault containment.}  Each job runs under its own handler; an
    exception becomes {!Outcome.Failed} for that job alone and every
    other job still runs.  The {!stats} record carries the run-level
    casualty summary.

    {b Resilience.}  Two wall-clock limits with different teeth:
    [timeout] is {e soft} (the job completes, its value is discarded as
    {!Outcome.Timed_out} — domains cannot be preempted from outside);
    [deadline] is {e preemptive} but cooperative (the job's shard
    carries an armed {!Ims_obs.Cancel} token, and the first poll past
    the deadline raises inside the job, producing
    {!Outcome.Cancelled}).  A [retry] policy re-runs casualties per
    {!Retry.decide}, escalating the deadline for timed-out/cancelled
    attempts; only the final attempt's outcome and telemetry survive.
    A run-level [cancel] token is the fail-fast gate: once cancelled,
    unstarted jobs complete immediately as [Cancelled] and running
    jobs are preempted at their next poll.

    {b Self-scheduling.}  Jobs are drawn from a chunked atomic queue
    ({!Work_queue}) under a guided policy ({!Chunk}), so a long-tail job
    cannot serialize the run behind a static partition.

    The engine is synchronous: [run] is itself the barrier. *)

type stats = {
  jobs : int;
  ok : int;
  failed : int;
  timed_out : int;
  cancelled : int;  (** Preempted by deadline or run-level token. *)
  retried : int;  (** Jobs that needed more than one attempt. *)
  attempts : int;  (** Total attempts across all jobs (>= jobs). *)
  workers : int;  (** Actually used: [min jobs (length inputs)], >= 1. *)
  chunks : int;  (** Queue grabs — an indicator of scheduling granularity. *)
  elapsed : float;  (** Of the whole batch, by the injected timer. *)
}

val default_jobs : unit -> int
(** [Domain.recommended_domain_count ()]. *)

val run :
  ?jobs:int ->
  ?timeout:float ->
  ?deadline:float ->
  ?retry:Retry.policy ->
  ?cancel:Ims_obs.Cancel.t ->
  ?on_result:(int -> 'b Outcome.t -> unit) ->
  ?sleep:(float -> unit) ->
  ?policy:Chunk.policy ->
  ?observe:bool ->
  ?profile:Ims_obs.Profile.t ->
  ?progress:(Ims_obs.Status.counts -> unit) ->
  ?timer:(unit -> float) ->
  f:(Shard.t -> 'a -> 'b) ->
  'a list ->
  'b Outcome.t list * Shard.t * stats
(** [run ~f inputs] applies [f shard input] to every input and returns
    (outcomes in input order, merged telemetry shard, casualty stats).

    [jobs] defaults to {!default_jobs}; [1] runs inline on the calling
    domain (no spawn).

    [timeout] is the {e soft} per-job wall-clock limit in seconds: an
    overrunning job still completes, but its value is discarded as
    {!Outcome.Timed_out} — the limit bounds what a run will {e report},
    not what a hung job can consume.  [deadline] is the {e preemptive}
    per-job limit: the job's shard carries a {!Ims_obs.Cancel} token
    armed with it, and cooperative polling inside the job (the
    schedulers poll at their budget-decrement sites) aborts the attempt
    as {!Outcome.Cancelled} — this one bounds wall clock, to polling
    granularity.  With neither set (and no [cancel]), the shard carries
    [Cancel.null] and the whole machinery costs one branch per poll.

    [retry] (default {!Retry.none}) re-runs casualties; each retried
    attempt gets a fresh shard (stale telemetry from abandoned attempts
    never reaches the merge), a {!Ims_obs.Event.Job_retry} trace event,
    and a deadline scaled per {!Retry.decide}.  [sleep] (default no-op)
    performs backoff waits — pass [Unix.sleepf] from CLIs.

    [cancel] is an optional run-level token: {!Ims_obs.Cancel.cancel}
    it (e.g. from [on_result]) and every job not yet started returns
    [Cancelled] without running, while started jobs are preempted at
    their next poll through the parent link.

    [on_result i outcome] fires once per job as it completes (final
    attempt only), in completion order, serialized under a mutex —
    the hook for journaling and fail-fast gates.  Keep it cheap; it is
    on the critical path of every worker.

    [observe] gives each job's shard a live trace sink (default:
    [Trace.null]).

    [profile] opts into run-level profiling: each job's shard gets a
    timing-only trace ({!Ims_obs.Trace.timer_only}, fed by [timer]),
    and after the barrier every job folds into the profile {e in input
    order} — phase spans, step counters, and the job's total wall-clock
    seconds (including retries) into the latency series.  Counter
    totals/maxima and series contents are therefore byte-identical at
    any [jobs]; only the seconds vary.

    [progress] fires with the live {!Ims_obs.Status.counts} tally after
    each job completes, in completion order under the same mutex as
    [on_result] (after it) — the hook for heartbeat files and TTY
    progress lines.  Keep it cheap.

    [timer] (default [Sys.time]) feeds limits and
    [stats.elapsed]; inject a wall clock (e.g. [Unix.gettimeofday]) for
    meaningful deadlines under parallelism — [Sys.time] is process-CPU
    time summed over domains. *)

(** {2 Stream intake}

    [run] materializes its inputs; a daemon cannot.  The stream form
    consumes an {!Intake} — jobs arrive for the lifetime of the
    process, workers pull as they free up, and results leave through a
    callback instead of a returned list.  Both forms share the same
    per-job engine (attempts, retry policy, soft timeout, cooperative
    cancellation), so a job behaves identically whether it came from a
    file corpus or a socket. *)

type 'a streaming
(** A running pool of stream workers. *)

val stream :
  ?workers:int ->
  ?timeout:float ->
  ?retry:Retry.policy ->
  ?cancel:Ims_obs.Cancel.t ->
  ?sleep:(float -> unit) ->
  ?observe:bool ->
  ?timer:(unit -> float) ->
  ?deadline_of:('a -> float option) ->
  f:(Shard.t -> 'a -> 'b) ->
  respond:('a -> 'b Outcome.t -> Shard.t -> int -> unit) ->
  'a Intake.t ->
  'a streaming
(** [stream ~f ~respond intake] spawns [workers] domains (all spawned —
    the calling domain keeps running, e.g. an accept loop) that pull
    jobs from [intake] until it is closed and drained; {!await} then
    joins them.

    [deadline_of] arms a {e per-job} preemptive deadline (the daemon's
    per-request deadline), where [run]'s [deadline] is one value for the
    whole batch; [cancel] is the pool-level kill switch, parent of every
    job token as in [run].

    [respond x outcome shard attempts] fires on the job's worker as it
    completes — possibly concurrently across workers; serialize inside
    if needed.  Its exceptions are contained (a respond bug must not
    leak a worker out of the pool); handle and log them in the
    callback. *)

val await : 'a streaming -> unit
(** Join the workers: returns once every worker has seen the closed,
    drained intake.  {!Intake.close} first, or this blocks forever. *)

val streaming_jobs : 'a streaming -> int
(** The worker count of the pool. *)

val map :
  ?jobs:int ->
  ?timeout:float ->
  ?policy:Chunk.policy ->
  ('a -> 'b) ->
  'a list ->
  'b Outcome.t list
(** {!run} without telemetry: just the outcomes, in input order. *)

val map_exn :
  ?jobs:int -> ?policy:Chunk.policy -> ('a -> 'b) -> 'a list -> 'b list
(** Parallel [List.map] with fail-fast reporting: every job runs to the
    barrier (containment still holds mid-run), then the first non-[Done]
    outcome raises [Failure] naming the job index.  The drop-in
    replacement for a serial [List.map] whose exceptions were fatal
    anyway. *)

val casualties : 'a Outcome.t list -> 'a Outcome.t list
(** The non-[Done] outcomes, in job order. *)

val pp_stats : Format.formatter -> stats -> unit
(** ["N jobs: N ok, N failed, N timed out; N workers, N chunks"], with
    [", N cancelled"] and ["; N retried (N attempts total)"] appended
    only when nonzero — so runs that use no resilience features print
    exactly the historical line. *)

val summary : stats -> string
