(** The batch execution engine: run independent jobs across domains.

    The contract, in order of importance:

    {b Determinism.}  [run ~f inputs] returns outcomes in input order,
    each slot written exactly once by whichever worker drew that index,
    and merges telemetry shards in job order — so output order {e and}
    content are byte-identical to a serial run regardless of worker
    count or interleaving.  (A [~timeout] is the one opt-in exception:
    whether a borderline job crosses its wall-clock deadline is
    inherently racy.)

    {b Fault containment.}  Each job runs under its own handler; an
    exception becomes {!Outcome.Failed} for that job alone and every
    other job still runs.  The {!stats} record carries the run-level
    casualty summary.

    {b Self-scheduling.}  Jobs are drawn from a chunked atomic queue
    ({!Work_queue}) under a guided policy ({!Chunk}), so a long-tail job
    cannot serialize the run behind a static partition.

    The engine is synchronous: [run] is itself the barrier. *)

type stats = {
  jobs : int;
  ok : int;
  failed : int;
  timed_out : int;
  workers : int;  (** Actually used: [min jobs (length inputs)], >= 1. *)
  chunks : int;  (** Queue grabs — an indicator of scheduling granularity. *)
  elapsed : float;  (** Of the whole batch, by the injected timer. *)
}

val default_jobs : unit -> int
(** [Domain.recommended_domain_count ()]. *)

val run :
  ?jobs:int ->
  ?timeout:float ->
  ?policy:Chunk.policy ->
  ?observe:bool ->
  ?timer:(unit -> float) ->
  f:(Shard.t -> 'a -> 'b) ->
  'a list ->
  'b Outcome.t list * Shard.t * stats
(** [run ~f inputs] applies [f shard input] to every input and returns
    (outcomes in input order, merged telemetry shard, casualty stats).

    [jobs] defaults to {!default_jobs}; [1] runs inline on the calling
    domain (no spawn).  [timeout] is a {e soft} per-job wall-clock limit
    in seconds: domains cannot be preempted, so an overrunning job still
    completes, but its value is discarded as {!Outcome.Timed_out} — the
    limit bounds what a run will {e report}, not what a hung job can
    consume.  [observe] gives each job's shard a live trace sink
    (default: [Trace.null]).  [timer] (default [Sys.time]) feeds both
    the per-job deadline check and [stats.elapsed]; inject a wall clock
    (e.g. [Unix.gettimeofday]) for meaningful timings under
    parallelism — [Sys.time] is process-CPU time summed over domains. *)

val map :
  ?jobs:int ->
  ?timeout:float ->
  ?policy:Chunk.policy ->
  ('a -> 'b) ->
  'a list ->
  'b Outcome.t list
(** {!run} without telemetry: just the outcomes, in input order. *)

val map_exn :
  ?jobs:int -> ?policy:Chunk.policy -> ('a -> 'b) -> 'a list -> 'b list
(** Parallel [List.map] with fail-fast reporting: every job runs to the
    barrier (containment still holds mid-run), then the first non-[Done]
    outcome raises [Failure].  The drop-in replacement for a serial
    [List.map] whose exceptions were fatal anyway. *)

val casualties : 'a Outcome.t list -> 'a Outcome.t list
(** The non-[Done] outcomes, in job order. *)

val pp_stats : Format.formatter -> stats -> unit
(** ["N jobs: N ok, N failed, N timed out; N workers, N chunks"]. *)

val summary : stats -> string
