open Ims_obs

let body ?(extra = []) ~fields outcome =
  let status = ("status", Json.String (Outcome.status outcome)) in
  let rest =
    match outcome with
    | Outcome.Done v -> fields v
    | Outcome.Failed e -> [ ("error", Json.String e.Outcome.exn) ]
    | Outcome.Timed_out { elapsed; limit }
    | Outcome.Cancelled { elapsed; limit } ->
        ("elapsed_s", Json.Float elapsed)
        ::
        (if limit = infinity then []
         else [ ("limit_s", Json.Float limit) ])
  in
  (status :: rest) @ extra

let line ~name ?extra ~fields outcome =
  Json.Obj (("name", Json.String name) :: body ?extra ~fields outcome)

(* Splice a name into an already-rendered body object without
   re-parsing it: the serve cache stores the body bytes verbatim (the
   name is the one request-specific field), and re-serialising through
   the JSON tree would invite a float-formatting drift between a cold
   and a cached response.  [line] and [with_name . to_string . body]
   produce the same bytes by construction: objects render as
   comma-joined members in order. *)
let with_name ~name body_str =
  let name_member = Json.to_string (Json.Obj [ ("name", Json.String name) ]) in
  if body_str = "{}" then name_member
  else
    String.sub name_member 0 (String.length name_member - 1)
    ^ ","
    ^ String.sub body_str 1 (String.length body_str - 1)

let jsonl_string lines =
  String.concat "" (List.map (fun j -> Json.to_string j ^ "\n") lines)

let write_jsonl file lines =
  let oc = open_out file in
  output_string oc (jsonl_string lines);
  close_out oc
