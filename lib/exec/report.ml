open Ims_obs

let line ~name ?(extra = []) ~fields outcome =
  let status = ("status", Json.String (Outcome.status outcome)) in
  let rest =
    match outcome with
    | Outcome.Done v -> fields v
    | Outcome.Failed e -> [ ("error", Json.String e.Outcome.exn) ]
    | Outcome.Timed_out { elapsed; limit }
    | Outcome.Cancelled { elapsed; limit } ->
        ("elapsed_s", Json.Float elapsed)
        ::
        (if limit = infinity then []
         else [ ("limit_s", Json.Float limit) ])
  in
  Json.Obj ((("name", Json.String name) :: status :: rest) @ extra)

let jsonl_string lines =
  String.concat "" (List.map (fun j -> Json.to_string j ^ "\n") lines)

let write_jsonl file lines =
  let oc = open_out file in
  output_string oc (jsonl_string lines);
  close_out oc
