(** Crash-safe JSONL journaling for batch runs.

    A journal is an append-only file: one manifest line, then one
    record per {e completed} job, each line fsync'd before the append
    returns — so after a SIGKILL the file holds every job that finished
    plus at most one torn final line.

    The manifest pins what the run {e was}: a content hash over the
    machine model, the scheduling flags, and the corpus bytes
    ({!manifest_hash}).  Resume refuses a journal whose hash differs —
    journaled records are only byte-reusable against the identical
    inputs and configuration.  Since format version 2 the manifest also
    records the named per-component hashes ([parts]) so the refusal can
    say which ingredient diverged ({!explain_mismatch}).

    Record lines are [{"kind":"job","index":I,"line":J}] where [J] is
    the job's finished report line, stored verbatim; resume replays [J]
    into the final report unchanged, which is what makes a resumed
    report byte-identical to an uninterrupted run's.

    {!read} tolerates exactly one torn record, and only at the end of
    the file (the interrupted append); a malformed line anywhere else
    is corruption and an error.  Duplicate indices keep the last
    record, so a job re-journaled after a resume wins over its earlier
    self. *)

type manifest = {
  version : int;  (** Journal format version; {!format_version}. *)
  tool : string;  (** e.g. ["imsc-batch"] — guards cross-tool reuse. *)
  hash : string;  (** {!manifest_hash} of machine+flags+corpus. *)
  jobs : int;  (** Total jobs in the run (not: completed). *)
  parts : (string * string) list;
      (** Named ingredient digests (e.g. ["machine"], ["flags"],
          ["corpus"], ["shard"]) behind [hash]; empty on version-1
          journals. *)
}

val format_version : int

val manifest_hash : string list -> string
(** Hex digest over the parts (order-sensitive); include everything
    that must match for journaled results to be reusable.  This is
    {!Content_hash.of_parts} — the same definition keys the serve
    daemon's schedule cache. *)

val hash_of_parts : (string * string) list -> string
(** The overall manifest hash derived from named component digests
    (names and values both bound, order-sensitive). *)

val explain_mismatch : journal:manifest -> current:manifest -> string
(** A refusal message naming each component whose digest diverged
    ("manifest mismatch: corpus diverged (…)"); falls back to the bare
    digests when no named component differs (e.g. a version-1
    journal). *)

type writer

val create : ?sync_every:int -> path:string -> manifest -> writer
(** Truncate/create [path] and write the manifest line (fsync'd).
    [sync_every] (default 1) groups fsyncs per {!Append_log}. *)

val reopen : ?sync_every:int -> path:string -> unit -> writer
(** Open an existing journal for appending (resume); the caller has
    already validated it with {!read}.  A torn trailing fragment is
    truncated away first, so the next append starts on its own line
    and a later resume sees a well-formed file. *)

val append : writer -> index:int -> Ims_obs.Json.t -> unit
(** Append one job record (fsync'd per [sync_every]).  Serialize calls
    yourself — the engine's [on_result] hook already runs under a
    mutex. *)

val close : writer -> unit

type recovered = {
  manifest : manifest;
  entries : (int * Ims_obs.Json.t) list;
      (** (index, stored line), in file order, duplicates included —
          fold with last-wins. *)
  torn : bool;  (** A truncated final record was dropped. *)
}

val read : path:string -> (recovered, string) result
(** Parse a journal for resume.  [Error] on unreadable file, missing or
    malformed manifest, unknown version, or a malformed record line
    that is not the final one. *)
