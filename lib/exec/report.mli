(** Per-job JSONL reporting for batch runs.

    One JSON object per job, in job order: [{"name": ..., "status":
    "ok" | "failed" | "timed_out" | "cancelled", ...}].  Successful
    jobs carry the caller's [fields]; failures carry the exception
    text; timeouts and cancellations carry the measured seconds (and
    the limit, when one was set).  Nothing non-deterministic is emitted
    for successful jobs, so two runs at different [--jobs] produce
    byte-identical reports. *)

open Ims_obs

val line :
  name:string ->
  ?extra:(string * Json.t) list ->
  fields:('a -> (string * Json.t) list) ->
  'a Outcome.t ->
  Json.t
(** [extra] fields (e.g. quarantine annotations) are appended to every
    line regardless of status. *)

val body :
  ?extra:(string * Json.t) list ->
  fields:('a -> (string * Json.t) list) ->
  'a Outcome.t ->
  (string * Json.t) list
(** The members of {!line} minus the leading [name] — the
    request-independent part a content-addressed cache may store. *)

val with_name : name:string -> string -> string
(** [with_name ~name body_str] splices ["name"] as the first member
    into a rendered [Json.Obj] body, byte-compatibly with {!line}:
    [to_string (line ~name ~fields o) =
     with_name ~name (to_string (Obj (body ~fields o)))]. *)

val jsonl_string : Json.t list -> string
(** One line per object, each ["\n"]-terminated. *)

val write_jsonl : string -> Json.t list -> unit
