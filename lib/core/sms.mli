(** Swing modulo scheduling (Llosa, Gonzalez, Ayguade & Valero, 1996) —
    the modulo-scheduling variant production compilers (GCC, LLVM)
    later adopted, implemented as a third scheduler for comparison with
    the paper's iterative algorithm and Huff's.

    Where IMS backtracks (displaces placed operations under budget) and
    Huff keeps bidirectional bounds, SMS never unschedules anything.
    Its effort goes into the {e ordering phase}: strongly connected
    components are taken most-critical first, and within the working
    set the order alternates direction — top-down from placed
    predecessors, bottom-up from placed successors — so that when an
    operation is scheduled, its already-placed neighbours usually
    bracket it from both sides.  The {e scheduling phase} then places
    each operation exactly once, scanning from its early bound forward,
    from its late bound backward, or inside the bracket, and simply
    retries the whole loop at II+1 on the first failure.

    The "swing" buys short lifetimes without Huff's machinery; the cost
    is more candidate IIs on tangled loops (no repair, only restart). *)

open Ims_ir
open Ims_mii

val ordering : Ddg.t -> ii:int -> int list
(** The node order the scheduling phase will follow (real operations
    only); exposed for tests and the harness. *)

val modulo_schedule :
  ?budget_ratio:float ->
  ?max_delta_ii:int ->
  ?counters:Counters.t ->
  ?cancel:Ims_obs.Cancel.t ->
  Ddg.t ->
  Ims.outcome
(** Same contract as {!Ims.modulo_schedule}, including the
    cancellation discipline ([cancel] polled once per placement, fires
    as {!Ims_obs.Cancel.Cancelled}).  [budget_ratio] is accepted for
    interface parity but SMS schedules each operation at most once per
    candidate II, so it only caps pathological II searches. *)
