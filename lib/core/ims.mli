(** Iterative modulo scheduling (Rau 1994, section 3, figures 2-4).

    [ModuloSchedule] tries successively larger candidate IIs starting at
    the MII; for each, [IterativeSchedule] performs operation-driven list
    scheduling in which already-scheduled operations may be displaced —
    unscheduled and rescheduled later — either because a higher-priority
    operation claimed their resources or because a predecessor moved
    under them.  A budget of [BudgetRatio * NumberOfOperations]
    scheduling steps bounds the effort per candidate II. *)

open Ims_ir
open Ims_mii

type outcome = {
  schedule : Schedule.t option;
      (** [None] only if every candidate II up to [max_ii] failed. *)
  ii : int;  (** Achieved II ([schedule] present) or last attempted. *)
  mii : Mii.t;
  attempts : int;  (** Candidate IIs tried. *)
  steps_total : int;
      (** Operation scheduling steps over all candidate IIs. *)
  steps_final : int;  (** Steps spent at the successful II. *)
  counters : Counters.t;
}

val default_budget_ratio : float
(** 2.0 — the knee of the paper's figure 6, its recommended setting. *)

(** The scheduling priority (section 3.2).  [Height_r] is the paper's
    choice; the others exist for the ablation study: [Acyclic_height]
    ignores the [II*distance] discount on inter-iteration edges,
    [Source_order] schedules in program order, and [Reverse_order] is the
    pathological anti-priority. *)
type priority = Height_r | Acyclic_height | Source_order | Reverse_order

type prep
(** Graph-dependent, II-independent artifacts of one scheduling problem:
    the per-op alternative arrays (shared per opcode), the skeleton
    relaxation order of {!Priority.plan}, and the height scratch buffer.
    Built once by {!modulo_schedule} and reused across its candidate-II
    attempts; {!iterative_schedule} builds its own when not given one. *)

val prepare : Ddg.t -> prep

val iterative_schedule :
  ?counters:Counters.t ->
  ?trace:Ims_obs.Trace.t ->
  ?priority:priority ->
  ?cancel:Ims_obs.Cancel.t ->
  ?prep:prep ->
  Ddg.t ->
  ii:int ->
  budget:int ->
  Schedule.t option
(** One candidate II (figure 3).  Returns [None] when the budget runs out
    with operations still unscheduled.

    [trace] (default disabled) receives one structured event per
    scheduler decision: [place]/[force] with the Estart, chosen slot and
    alternative; [evict] for every displacement (dependence-violating
    successor or forced-placement victim); [budget_exhausted] on
    failure.  A disabled trace costs one branch per decision.

    [cancel] (default {!Ims_obs.Cancel.null}) is polled once per
    scheduling step — the same site that decrements the budget — and
    an armed token that fires preempts the search mid-II by raising
    {!Ims_obs.Cancel.Cancelled}.  A null token costs one branch per
    step, mirroring the disabled-trace discipline. *)

val modulo_schedule :
  ?budget_ratio:float ->
  ?max_delta_ii:int ->
  ?counters:Counters.t ->
  ?trace:Ims_obs.Trace.t ->
  ?priority:priority ->
  ?cancel:Ims_obs.Cancel.t ->
  Ddg.t ->
  outcome
(** The driver (figure 2).  [max_delta_ii] (default 1000) bounds the
    search above the MII as a safety net; reaching it indicates a machine
    model the loop cannot execute on at all.

    A fired [cancel] token escapes as {!Ims_obs.Cancel.Cancelled} — it
    is {e not} folded into the outcome, because cancellation (the
    caller's wall-clock verdict) must stay distinct from budget
    exhaustion (the algorithm's own verdict, [schedule = None]). *)
