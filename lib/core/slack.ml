open Ims_machine
open Ims_ir
open Ims_mii

(* One candidate II of the lifetime-sensitive scheduler.  The MinDist
   matrix gives transitive bounds: a scheduled operation [i] at time
   [t_i] forces  E(op) >= t_i + MinDist[i][op]  and
   L(op) <= t_i - MinDist[op][i].  With nothing but START placed these
   reduce to Huff's static Estart/Lstart. *)

(* Graph-dependent artifacts reused across the candidate-II attempts:
   the alternatives, the static producer/consumer bias, and the
   incremental MinDist solver (created on the first attempt, with that
   caller's counters; every later candidate II pays only a
   pivot-restricted re-closure). *)
type prep = {
  p_alternatives : Opcode.alternative array array;
  p_sink_late : bool array;
  mutable p_solver : Mindist.solver option;
}

(* Producers sink late (their output lifetime starts later); consumers
   rise early (their input lifetimes close sooner).  An operation with
   more consumers than inputs is a net producer. *)
let sink_late ddg =
  Array.init (Ddg.n_total ddg) (fun op ->
      let real l =
        List.filter
          (fun (d : Dep.t) ->
            not (Ddg.is_pseudo ddg d.Dep.src || Ddg.is_pseudo ddg d.Dep.dst))
          l
      in
      List.length (real ddg.Ddg.preds.(op))
      < List.length (real ddg.Ddg.succs.(op)))

let prepare ddg =
  {
    p_alternatives = Prep.alternatives ddg;
    p_sink_late = sink_late ddg;
    p_solver = None;
  }

let solver_of ?counters prep ddg =
  match prep.p_solver with
  | Some s -> s
  | None ->
      let s = Mindist.solver_full ?counters ddg in
      prep.p_solver <- Some s;
      s

type state = {
  ddg : Ddg.t;
  ii : int;
  md : Mindist.t;
  slack_priority : int array;  (* smaller = more urgent *)
  sink_late : bool array;
  mrt : Mrt.t;
  time : int array;  (* -1 = unscheduled; op is scheduled iff >= 0 *)
  prev_time : int array;
  never_scheduled : bool array;
  alt : int array;
  ctabs : Mrt.ctable array array;
  by_rank : int array;  (* ops sorted by (slack_priority asc, id asc) *)
  rank_of : int array;
  ready : Ready.t;
  counters : Counters.t option;
}

let neg_inf = Mindist.neg_inf

let bump_estart st k =
  match st.counters with
  | Some c -> c.Counters.estart_inner <- c.Counters.estart_inner + k
  | None -> ()

(* The dynamic bounds fold over every scheduled operation; the schedule
   membership test is [time.(i) >= 0], an invariant kept by
   commit/unschedule (the old explicit scheduled-list was equivalent,
   but cost a filter per unschedule). *)
let early_bound st op =
  let n = Array.length st.time in
  let acc = ref 0 in
  for i = 0 to n - 1 do
    if st.time.(i) >= 0 then begin
      bump_estart st 1;
      let d = Mindist.get st.md i op in
      if d <> neg_inf && st.time.(i) + d > !acc then acc := st.time.(i) + d
    end
  done;
  !acc

let late_bound st op ~default =
  let n = Array.length st.time in
  let acc = ref default in
  for i = 0 to n - 1 do
    if st.time.(i) >= 0 then begin
      bump_estart st 1;
      let d = Mindist.get st.md op i in
      if d <> neg_inf && st.time.(i) - d < !acc then acc := st.time.(i) - d
    end
  done;
  !acc

let unschedule st op =
  if st.time.(op) >= 0 then begin
    Mrt.release_c st.mrt ~op st.ctabs.(op).(st.alt.(op)) ~time:st.time.(op);
    st.time.(op) <- -1;
    Ready.add st.ready st.rank_of.(op)
  end

let commit st op ~t ~k =
  Mrt.reserve_c st.mrt ~op st.ctabs.(op).(k) ~time:t;
  st.time.(op) <- t;
  st.prev_time.(op) <- t;
  st.alt.(op) <- k;
  st.never_scheduled.(op) <- false;
  Ready.remove st.ready st.rank_of.(op);
  List.iter
    (fun (d : Dep.t) ->
      if
        d.dst <> op
        && st.time.(d.dst) >= 0
        && st.time.(d.dst) < t + d.delay - (st.ii * d.distance)
      then unschedule st d.dst)
    st.ddg.Ddg.succs.(op)

let force_commit st op ~t =
  List.iter (unschedule st) (Mrt.conflicting_ops_c st.mrt st.ctabs.(op) ~time:t);
  let rec first_fit k =
    if k >= Array.length st.ctabs.(op) then
      invalid_arg "Slack.force_commit: no alternative fits"
    else if Mrt.fits_c st.mrt st.ctabs.(op).(k) ~time:t then k
    else first_fit (k + 1)
  in
  commit st op ~t ~k:(first_fit 0)

(* Conflict-free slot nearest the preferred end of [lo, hi]. *)
let find_slot st op ~lo ~hi ~late =
  let ctabs = st.ctabs.(op) in
  let fits_at t =
    let rec go k =
      if k >= Array.length ctabs then None
      else if Mrt.fits_c st.mrt ctabs.(k) ~time:t then Some k
      else go (k + 1)
    in
    go 0
  in
  let rec probe t step =
    if t < lo || t > hi then None
    else begin
      (match st.counters with
      | Some c -> c.Counters.findslot_inner <- c.Counters.findslot_inner + 1
      | None -> ());
      match fits_at t with
      | Some k -> Some (t, k)
      | None -> probe (t + step) step
    end
  in
  if late then probe hi (-1) else probe lo 1

let iterative_schedule ?counters ?(cancel = Ims_obs.Cancel.null) ?prep ddg ~ii
    ~budget =
  let n = Ddg.n_total ddg in
  let machine = ddg.Ddg.machine in
  let prep = match prep with Some p -> p | None -> prepare ddg in
  let md = Mindist.solve ?counters (solver_of ?counters prep ddg) ~ii in
  let stop = Ddg.stop ddg in
  let critical_path = max 0 (Mindist.get md Ddg.start stop) in
  let slack_priority =
    Array.init n (fun op ->
        let e = Mindist.get md Ddg.start op in
        let l = Mindist.get md op stop in
        if e = neg_inf || l = neg_inf then max_int / 2
        else critical_path - e - l)
  in
  let by_rank = Array.init n Fun.id in
  Array.sort
    (fun a b ->
      if slack_priority.(a) <> slack_priority.(b) then
        compare slack_priority.(a) slack_priority.(b)
      else compare a b)
    by_rank;
  let rank_of = Array.make n 0 in
  Array.iteri (fun r op -> rank_of.(op) <- r) by_rank;
  let ready = Ready.create n in
  for op = 1 to n - 1 do
    Ready.add ready rank_of.(op)
  done;
  let st =
    {
      ddg;
      ii;
      md;
      slack_priority;
      sink_late = prep.p_sink_late;
      mrt = Mrt.create machine ~ii;
      time = Array.make n (-1);
      prev_time = Array.make n 0;
      never_scheduled = Array.make n true;
      alt = Array.make n 0;
      ctabs = Prep.compile ~caps:(Prep.caps machine) prep.p_alternatives ~ii;
      by_rank;
      rank_of;
      ready;
      counters;
    }
  in
  st.time.(Ddg.start) <- 0;
  st.never_scheduled.(Ddg.start) <- false;
  let budget = ref (budget - 1) in
  let step () =
    match counters with
    | Some c -> c.Counters.sched_steps <- c.Counters.sched_steps + 1
    | None -> ()
  in
  step ();
  let pick () =
    let r = Ready.min_rank st.ready in
    if r < 0 then None else Some st.by_rank.(r)
  in
  let continue = ref true in
  while !continue do
    match pick () with
    | None -> continue := false
    | Some _ when !budget <= 0 -> continue := false
    | Some op ->
        let e = early_bound st op in
        let hi_window = e + ii - 1 in
        let l = late_bound st op ~default:hi_window in
        let hi = min hi_window (max e l) in
        (* Direction is decided against what is already placed: with
           consumers fixed and producers not, sliding late shortens the
           op's output lifetimes; with producers fixed, sliding early
           closes its input lifetimes.  Otherwise fall back to the
           static producer/consumer bias. *)
        let has_scheduled edges pick =
          List.exists
            (fun (d : Dep.t) ->
              let v = pick d in
              (not (Ddg.is_pseudo ddg v)) && st.time.(v) >= 0)
            edges
        in
        let scheduled_preds = has_scheduled ddg.Ddg.preds.(op) (fun d -> d.Dep.src) in
        let scheduled_succs = has_scheduled ddg.Ddg.succs.(op) (fun d -> d.Dep.dst) in
        let late =
          match (scheduled_preds, scheduled_succs) with
          | false, true -> true
          | true, false -> false
          | _ -> st.sink_late.(op)
        in
        (match find_slot st op ~lo:e ~hi ~late with
        | Some (t, k) -> commit st op ~t ~k
        | None -> (
            (* Nothing free inside [E, min(L, E+II-1)]: widen to the full
               modulo window, then force as IMS does. *)
            match find_slot st op ~lo:e ~hi:hi_window ~late:false with
            | Some (t, k) -> commit st op ~t ~k
            | None ->
                let t =
                  if st.never_scheduled.(op) || e > st.prev_time.(op) then e
                  else st.prev_time.(op) + 1
                in
                force_commit st op ~t));
        decr budget;
        step ();
        Ims_obs.Cancel.poll cancel
  done;
  (match counters with
  | Some c ->
      c.Counters.mrt_bitprobe <- c.Counters.mrt_bitprobe + Mrt.bitprobes st.mrt
  | None -> ());
  if Ready.is_empty st.ready then
    Some
      (Schedule.make ddg ~ii
         ~entries:
           (Array.init n (fun i -> { Schedule.time = st.time.(i); alt = st.alt.(i) })))
  else None

let modulo_schedule ?(budget_ratio = Ims.default_budget_ratio)
    ?(max_delta_ii = 1000) ?counters ?cancel ddg =
  let counters = match counters with Some c -> c | None -> Counters.create () in
  let mii = Mii.compute ~counters ddg in
  let n = Ddg.n_total ddg in
  let budget = max 1 (int_of_float (budget_ratio *. float_of_int n)) in
  let prep = prepare ddg in
  let rec attempt ii tried =
    if ii > mii.Mii.mii + max_delta_ii then
      {
        Ims.schedule = None;
        ii;
        mii;
        attempts = tried;
        steps_total = counters.Counters.sched_steps;
        steps_final = 0;
        counters;
      }
    else begin
      let before = counters.Counters.sched_steps in
      match iterative_schedule ~counters ?cancel ~prep ddg ~ii ~budget with
      | Some schedule ->
          let steps_final = counters.Counters.sched_steps - before in
          counters.Counters.sched_steps_final <-
            counters.Counters.sched_steps_final + steps_final;
          {
            Ims.schedule = Some schedule;
            ii;
            mii;
            attempts = tried + 1;
            steps_total = counters.Counters.sched_steps;
            steps_final;
            counters;
          }
      | None -> attempt (ii + 1) (tried + 1)
    end
  in
  attempt mii.Mii.mii 0
