(** Lifetime-sensitive modulo scheduling (Huff, PLDI 1993) — the main
    alternative algorithm the paper cites, implemented for comparison.

    Where IMS places each operation at the {e earliest} conflict-free
    slot, Huff's scheduler keeps both an early and a late bound per
    operation, derived from the MinDist matrix over the already-placed
    operations, and chooses the slot — searching up from Estart or down
    from Lstart — that stretches register lifetimes least: operations
    with more consumers than producers sink late, the rest rise early.
    Priority goes to the operation with the least slack
    (Lstart - Estart), so critical recurrences are placed before the
    slack-rich vectorizable bulk.

    Quality target: the same II as IMS (both iterate the candidate II
    from the MII under a budget) with measurably lower register
    pressure; the benchmark harness compares rotating-register file
    sizes. *)

open Ims_ir
open Ims_mii

val modulo_schedule :
  ?budget_ratio:float ->
  ?max_delta_ii:int ->
  ?counters:Counters.t ->
  ?cancel:Ims_obs.Cancel.t ->
  Ddg.t ->
  Ims.outcome
(** Same contract and outcome shape as {!Ims.modulo_schedule},
    including the cancellation discipline: [cancel] is polled once per
    scheduling step and a fired token escapes as
    {!Ims_obs.Cancel.Cancelled}. *)
