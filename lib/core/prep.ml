open Ims_machine
open Ims_ir

(* Ops sharing an opcode share one physical alternatives array, so the
   per-II compilation below can dedupe by physical equality: one
   compiled-table array per distinct opcode, not per operation. *)
let alternatives ddg =
  let machine = ddg.Ddg.machine in
  let cache = Hashtbl.create 16 in
  Array.init (Ddg.n_total ddg) (fun i ->
      let name = (Ddg.op ddg i).Op.opcode in
      match Hashtbl.find_opt cache name with
      | Some arr -> arr
      | None ->
          let arr =
            Array.of_list (Machine.opcode machine name).Opcode.alternatives
          in
          Hashtbl.add cache name arr;
          arr)

let caps machine =
  Array.map (fun (r : Resource.t) -> r.count) machine.Machine.resources

let compile ?caps alternatives ~ii =
  let memo = ref [] in
  Array.map
    (fun alts ->
      match List.assq_opt alts !memo with
      | Some c -> c
      | None ->
          let c =
            Array.map
              (fun (a : Opcode.alternative) ->
                Mrt.compile ~ii ?caps a.Opcode.table)
              alts
          in
          memo := (alts, c) :: !memo;
          c)
    alternatives
