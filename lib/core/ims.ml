open Ims_machine
open Ims_ir
open Ims_mii
open Ims_obs

type outcome = {
  schedule : Schedule.t option;
  ii : int;
  mii : Mii.t;
  attempts : int;
  steps_total : int;
  steps_final : int;
  counters : Counters.t;
}

let default_budget_ratio = 2.0

type priority = Height_r | Acyclic_height | Source_order | Reverse_order

type prep = {
  p_alternatives : Opcode.alternative array array;
  p_order : int list;  (* Priority.plan, for Height_r relaxation *)
  p_height : int array;  (* scratch for Priority.heights *)
}

let prepare ddg =
  {
    p_alternatives = Prep.alternatives ddg;
    p_order = Priority.plan ddg;
    p_height = Array.make (Ddg.n_total ddg) 0;
  }

(* State for one IterativeSchedule invocation. *)
type state = {
  ddg : Ddg.t;
  ii : int;
  height : int array;
  mrt : Mrt.t;
  time : int array;  (* -1 = unscheduled *)
  prev_time : int array;
  never_scheduled : bool array;
  alt : int array;
  ctabs : Mrt.ctable array array;  (* compiled alternatives, per op id *)
  by_rank : int array;  (* ops sorted by (height desc, id asc) *)
  rank_of : int array;  (* inverse of by_rank *)
  ready : Ready.t;  (* pending ranks; min = pick of the old O(n) scan *)
  counters : Counters.t option;
  trace : Trace.t;
}

let bump_estart st k =
  match st.counters with
  | Some c -> c.Counters.estart_inner <- c.Counters.estart_inner + k
  | None -> ()

let bump_findslot st k =
  match st.counters with
  | Some c -> c.Counters.findslot_inner <- c.Counters.findslot_inner + k
  | None -> ()

(* The (height desc, id asc) selection of figure 3, as the minimum
   present rank of the indexed ready-set: [by_rank] is a total order by
   exactly that pair, so the least present rank is the operation the
   former linear scan over the unscheduled list would have picked. *)
let highest_priority_operation st =
  let r = Ready.min_rank st.ready in
  if r < 0 then None else Some st.by_rank.(r)

(* Figure 5b: earliest start as constrained by currently scheduled
   predecessors only. *)
let calculate_early_start st op =
  List.fold_left
    (fun acc (d : Dep.t) ->
      bump_estart st 1;
      if st.time.(d.src) < 0 then acc
      else max acc (st.time.(d.src) + d.delay - (st.ii * d.distance)))
    0 st.ddg.Ddg.preds.(op)

(* Figure 4: the first conflict-free slot in [min_time, max_time], with
   the alternative that fits; dependence conflicts with successors are
   deliberately ignored here. *)
let find_time_slot st op ~min_time ~max_time =
  let ctabs = st.ctabs.(op) in
  let fits_at t =
    let rec go k =
      if k >= Array.length ctabs then None
      else if Mrt.fits_c st.mrt ctabs.(k) ~time:t then Some k
      else go (k + 1)
    in
    go 0
  in
  let rec search t =
    if t > max_time then None
    else begin
      bump_findslot st 1;
      match fits_at t with
      | Some k -> Some (t, k)
      | None -> search (t + 1)
    end
  in
  match search min_time with
  | Some (t, k) -> `Free (t, k)
  | None ->
      let slot =
        if st.never_scheduled.(op) || min_time > st.prev_time.(op) then
          min_time
        else st.prev_time.(op) + 1
      in
      `Forced slot

let unschedule st op =
  if st.time.(op) >= 0 then begin
    Mrt.release_c st.mrt ~op st.ctabs.(op).(st.alt.(op)) ~time:st.time.(op);
    st.time.(op) <- -1;
    Ready.add st.ready st.rank_of.(op)
  end

(* Schedule [op] at [t] with alternative [k] (already known to fit), then
   displace every scheduled successor whose dependence is now violated. *)
let commit st op ~t ~k =
  Mrt.reserve_c st.mrt ~op st.ctabs.(op).(k) ~time:t;
  st.time.(op) <- t;
  st.prev_time.(op) <- t;
  st.alt.(op) <- k;
  st.never_scheduled.(op) <- false;
  Ready.remove st.ready st.rank_of.(op);
  List.iter
    (fun (d : Dep.t) ->
      if
        d.dst <> op
        && st.time.(d.dst) >= 0
        && st.time.(d.dst) < t + d.delay - (st.ii * d.distance)
      then begin
        Trace.evict st.trace ~op:d.dst ~by:op ~time:st.time.(d.dst)
          ~reason:Event.Dependence;
        unschedule st d.dst
      end)
    st.ddg.Ddg.succs.(op)

(* Forced placement (section 3.4): displace every operation that
   conflicts with any alternative at [t], then commit with the first
   alternative that fits. *)
let force_commit st op ~t ~estart =
  List.iter
    (fun victim ->
      Trace.evict st.trace ~op:victim ~by:op ~time:st.time.(victim)
        ~reason:Event.Resource;
      unschedule st victim)
    (Mrt.conflicting_ops_c st.mrt st.ctabs.(op) ~time:t);
  let rec first_fit k =
    if k >= Array.length st.ctabs.(op) then
      invalid_arg "Ims.force_commit: no alternative fits after displacement"
    else if Mrt.fits_c st.mrt st.ctabs.(op).(k) ~time:t then k
    else first_fit (k + 1)
  in
  let k = first_fit 0 in
  Trace.place st.trace ~op ~time:t ~alt:k ~estart ~forced:true;
  commit st op ~t ~k

let iterative_schedule ?counters ?(trace = Trace.null) ?(priority = Height_r)
    ?(cancel = Cancel.null) ?prep ddg ~ii ~budget =
  let n = Ddg.n_total ddg in
  let machine = ddg.Ddg.machine in
  let prep = match prep with Some p -> p | None -> prepare ddg in
  let height =
    match priority with
    | Height_r ->
        Priority.heights ?counters ~order:prep.p_order ~buf:prep.p_height ddg
          ~ii
    | Acyclic_height -> Priority.acyclic_heights ddg
    | Source_order -> Array.init n (fun i -> n - i)
    | Reverse_order -> Array.init n (fun i -> i)
  in
  let by_rank = Array.init n Fun.id in
  Array.sort
    (fun a b ->
      if height.(a) <> height.(b) then compare height.(b) height.(a)
      else compare a b)
    by_rank;
  let rank_of = Array.make n 0 in
  Array.iteri (fun r op -> rank_of.(op) <- r) by_rank;
  let ready = Ready.create n in
  for op = 1 to n - 1 do
    Ready.add ready rank_of.(op)
  done;
  let st =
    {
      ddg;
      ii;
      height;
      mrt = Mrt.create machine ~ii;
      time = Array.make n (-1);
      prev_time = Array.make n 0;
      never_scheduled = Array.make n true;
      alt = Array.make n 0;
      ctabs = Prep.compile ~caps:(Prep.caps machine) prep.p_alternatives ~ii;
      by_rank;
      rank_of;
      ready;
      counters;
      trace;
    }
  in
  let budget = ref budget in
  let step () =
    match counters with
    | Some c -> c.Counters.sched_steps <- c.Counters.sched_steps + 1
    | None -> ()
  in
  (* Schedule START at time 0. *)
  st.time.(Ddg.start) <- 0;
  st.never_scheduled.(Ddg.start) <- false;
  decr budget;
  step ();
  let continue = ref true in
  while !continue do
    match highest_priority_operation st with
    | None -> continue := false
    | Some _ when !budget <= 0 -> continue := false
    | Some op ->
        let estart = calculate_early_start st op in
        let min_time = estart in
        let max_time = min_time + ii - 1 in
        (match find_time_slot st op ~min_time ~max_time with
        | `Free (t, k) ->
            Trace.place trace ~op ~time:t ~alt:k ~estart ~forced:false;
            commit st op ~t ~k
        | `Forced t -> force_commit st op ~t ~estart);
        decr budget;
        step ();
        Cancel.poll cancel
  done;
  (match counters with
  | Some c ->
      c.Counters.mrt_bitprobe <- c.Counters.mrt_bitprobe + Mrt.bitprobes st.mrt
  | None -> ());
  if Ready.is_empty st.ready then begin
    let entries =
      Array.init n (fun i -> { Schedule.time = st.time.(i); alt = st.alt.(i) })
    in
    Some (Schedule.make ddg ~ii ~entries)
  end
  else begin
    Trace.budget_exhausted trace ~ii ~unplaced:(Ready.cardinal st.ready);
    None
  end

let modulo_schedule ?(budget_ratio = default_budget_ratio)
    ?(max_delta_ii = 1000) ?counters ?(trace = Trace.null) ?priority ?cancel
    ddg =
  let counters =
    match counters with Some c -> c | None -> Counters.create ()
  in
  let mii = Trace.with_span trace "mii" (fun () -> Mii.compute ~counters ~trace ddg) in
  let n = Ddg.n_total ddg in
  let budget =
    max 1 (int_of_float (budget_ratio *. float_of_int n))
  in
  let prep = prepare ddg in
  let rec attempt ii tried =
    if ii > mii.Mii.mii + max_delta_ii then
      {
        schedule = None;
        ii;
        mii;
        attempts = tried;
        steps_total = counters.Counters.sched_steps;
        steps_final = 0;
        counters;
      }
    else begin
      let before = counters.Counters.sched_steps in
      Trace.ii_start trace ~ii ~attempt:(tried + 1) ~budget;
      match
        iterative_schedule ~counters ~trace ?priority ?cancel ~prep ddg ~ii
          ~budget
      with
      | Some schedule ->
          let steps_final = counters.Counters.sched_steps - before in
          Trace.ii_end trace ~ii ~scheduled:true ~steps:steps_final;
          counters.Counters.sched_steps_final <-
            counters.Counters.sched_steps_final + steps_final;
          {
            schedule = Some schedule;
            ii;
            mii;
            attempts = tried + 1;
            steps_total = counters.Counters.sched_steps;
            steps_final;
            counters;
          }
      | None ->
          Trace.ii_end trace ~ii ~scheduled:false
            ~steps:(counters.Counters.sched_steps - before);
          attempt (ii + 1) (tried + 1)
    end
  in
  attempt mii.Mii.mii 0
