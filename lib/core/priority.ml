open Ims_ir
open Ims_graph

(* Reverse topological order of the distance-0 skeleton.  The order is a
   property of the graph alone (not of the II), so callers that retry
   many IIs compute it once with {!plan} and pass it back in. *)
let skeleton_order ddg =
  let n = Ddg.n_total ddg in
  let skeleton v =
    List.filter_map
      (fun (d : Dep.t) -> if d.distance = 0 then Some d.dst else None)
      ddg.Ddg.succs.(v)
  in
  List.rev (Topo.sort_ignoring_cycles ~n ~succs:skeleton)

let plan = skeleton_order

let relax ?counters ?order ?buf ddg ~edge_weight =
  let n = Ddg.n_total ddg in
  let height =
    match buf with
    | None -> Array.make n 0
    | Some b ->
        Array.fill b 0 n 0;
        b
  in
  (* Seed in reverse topological order of the distance-0 skeleton so the
     acyclic bulk converges in one sweep; recurrences then iterate. *)
  let order =
    match order with Some o -> o | None -> skeleton_order ddg
  in
  let steps = ref 0 in
  let changed = ref true in
  let rounds = ref 0 in
  while !changed do
    changed := false;
    incr rounds;
    if !rounds > n + 2 then
      invalid_arg "Priority.heights: relaxation diverges (II below RecMII?)";
    List.iter
      (fun p ->
        List.iter
          (fun (d : Dep.t) ->
            incr steps;
            match edge_weight d with
            | None -> ()
            | Some w ->
                let candidate = height.(d.dst) + w in
                if candidate > height.(p) then begin
                  height.(p) <- candidate;
                  changed := true
                end)
          ddg.Ddg.succs.(p))
      order
  done;
  (match counters with
  | Some c -> c.Ims_mii.Counters.heightr_inner <- c.Ims_mii.Counters.heightr_inner + !steps
  | None -> ());
  height

let heights ?counters ?order ?buf ddg ~ii =
  relax ?counters ?order ?buf ddg ~edge_weight:(fun d ->
      Some (d.Dep.delay - (ii * d.Dep.distance)))

let acyclic_heights ddg =
  relax ddg ~edge_weight:(fun d ->
      if d.Dep.distance = 0 then Some d.Dep.delay else None)
