open Ims_machine
open Ims_ir

let horizon ddg =
  let per_op acc i =
    let opcode = Machine.opcode ddg.Ddg.machine (Ddg.op ddg i).Op.opcode in
    let table_len =
      List.fold_left
        (fun m (a : Opcode.alternative) -> max m a.table.Reservation.length)
        1 opcode.Opcode.alternatives
    in
    acc + max opcode.Opcode.latency table_len
  in
  List.fold_left per_op 16 (Ddg.real_ids ddg)

(* Classic operation-driven list scheduling: an operation becomes ready
   once all its intra-iteration predecessors are scheduled; the ready
   operation with the greatest height goes first, at the first
   conflict-free slot at or after its early start time. *)
let schedule ?(cancel = Ims_obs.Cancel.null) ddg =
  let n = Ddg.n_total ddg in
  let height = Priority.acyclic_heights ddg in
  let horizon = horizon ddg in
  let mrt = Mrt.linear ddg.Ddg.machine ~horizon in
  (* Compiled once per (opcode, horizon) — [place] used to rebuild the
     alternatives array from the opcode repertoire on every call.
     Deliberately capless: bitboard compilation is O(horizon) per
     opcode, and the acyclic scheduler probes each operation a handful
     of times — the count walk is cheaper than building the planes. *)
  let ctabs =
    Prep.compile (Prep.alternatives ddg) ~ii:(max 1 horizon)
  in
  let times = Array.make n (-1) in
  let alts = Array.make n 0 in
  let indegree = Array.make n 0 in
  for v = 0 to n - 1 do
    List.iter
      (fun (d : Dep.t) ->
        if d.distance = 0 then indegree.(d.dst) <- indegree.(d.dst) + 1)
      ddg.Ddg.succs.(v)
  done;
  let module S = Set.Make (struct
    type t = int * int  (* (-height, id): min element = best candidate *)

    let compare = compare
  end) in
  let ready = ref S.empty in
  let enqueue v = ready := S.add (-height.(v), v) !ready in
  for v = 0 to n - 1 do
    if indegree.(v) = 0 then enqueue v
  done;
  let estart i =
    List.fold_left
      (fun acc (d : Dep.t) ->
        if d.distance > 0 then acc else max acc (times.(d.src) + d.delay))
      0 ddg.Ddg.preds.(i)
  in
  let place i =
    let rec try_time t =
      if t >= horizon then
        invalid_arg "List_sched: horizon exceeded (machine oversubscribed?)";
      let rec try_alt k =
        if k >= Array.length ctabs.(i) then None
        else if Mrt.fits_c mrt ctabs.(i).(k) ~time:t then Some k
        else try_alt (k + 1)
      in
      match try_alt 0 with
      | Some k ->
          Mrt.reserve_c mrt ~op:i ctabs.(i).(k) ~time:t;
          times.(i) <- t;
          alts.(i) <- k
      | None -> try_time (t + 1)
    in
    try_time (estart i)
  in
  let scheduled = ref 0 in
  while not (S.is_empty !ready) do
    let ((_, v) as elt) = S.min_elt !ready in
    ready := S.remove elt !ready;
    place v;
    incr scheduled;
    Ims_obs.Cancel.poll cancel;
    List.iter
      (fun (d : Dep.t) ->
        if d.distance = 0 then begin
          indegree.(d.dst) <- indegree.(d.dst) - 1;
          if indegree.(d.dst) = 0 then enqueue d.dst
        end)
      ddg.Ddg.succs.(v)
  done;
  if !scheduled <> n then
    invalid_arg "List_sched: intra-iteration dependence cycle";
  let entries =
    Array.init n (fun i -> { Schedule.time = times.(i); alt = alts.(i) })
  in
  Schedule.make ddg ~ii:horizon ~entries

let schedule_length ddg = Schedule.length (schedule ddg)
