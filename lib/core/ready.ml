(* Indexed ready-set: membership over a fixed universe of ranks with an
   O(log n) minimum.

   The scheduler's pick is "the unscheduled operation with the best
   (priority, lowest-id) pair".  Callers sort the operations once into a
   total order by that pair and address the set by *rank* in the order;
   the minimum present rank is then exactly the operation the old O(n)
   scan over an [int list] would have picked.

   The structure is a flat tournament tree over [size] leaves (the next
   power of two >= n): leaf [i] holds [i] when present and [absent]
   when not; each internal node holds the min of its children.  All
   state is one int array — add/remove/min are allocation-free. *)

type t = {
  size : int;  (* leaf count, power of two, >= 1 *)
  tree : int array;  (* 2 * size entries; node 1 is the root *)
  mutable cardinal : int;
}

let absent = max_int

let create n =
  if n < 0 then invalid_arg "Ready.create: negative size";
  let size = ref 1 in
  while !size < n do
    size := !size * 2
  done;
  { size = !size; tree = Array.make (2 * !size) absent; cardinal = 0 }

let mem t rank = t.tree.(t.size + rank) <> absent

let update_path t i =
  let i = ref ((t.size + i) / 2) in
  while !i >= 1 do
    let l = t.tree.(2 * !i) and r = t.tree.((2 * !i) + 1) in
    t.tree.(!i) <- (if l < r then l else r);
    i := !i / 2
  done

let add t rank =
  if rank < 0 || rank >= t.size then invalid_arg "Ready.add: rank out of range";
  if not (mem t rank) then begin
    t.tree.(t.size + rank) <- rank;
    t.cardinal <- t.cardinal + 1;
    update_path t rank
  end

let remove t rank =
  if rank < 0 || rank >= t.size then
    invalid_arg "Ready.remove: rank out of range";
  if mem t rank then begin
    t.tree.(t.size + rank) <- absent;
    t.cardinal <- t.cardinal - 1;
    update_path t rank
  end

let min_rank t = if t.tree.(1) = absent then -1 else t.tree.(1)
let cardinal t = t.cardinal
let is_empty t = t.cardinal = 0
