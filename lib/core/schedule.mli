(** Modulo schedules and their independent verification.

    A schedule assigns every operation (including START and STOP) a time
    and a functional-unit alternative.  The same iteration schedule is
    initiated every II cycles; iteration [i]'s copy of an operation
    scheduled at [t] issues at [t + i*II]. *)

open Ims_ir

type entry = {
  time : int;
  alt : int;  (** Index into the opcode's alternatives. *)
}

type t = private {
  ddg : Ddg.t;
  ii : int;
  entries : entry array;  (** Indexed by operation id. *)
}

val make : Ddg.t -> ii:int -> entries:entry array -> t
(** @raise Invalid_argument if the entry count does not match. *)

val with_entries : t -> ?ddg:Ddg.t -> ?ii:int -> entry array -> t
(** A copy of the schedule with the given entries, optionally rebased
    onto another graph (same operation count) or II.  No legality is
    implied — this is the seam the fault-injection engine uses to
    attach corrupted entries, and the fallback driver uses to re-time a
    list schedule; {!verify} and the rest of the checker stack are the
    judges.
    @raise Invalid_argument if the entry count does not match. *)

val time : t -> int -> int
val alt : t -> int -> int

val length : t -> int
(** Schedule length SL of one iteration: STOP's schedule time. *)

val stage_count : t -> int
(** Number of kernel stages: [floor(max issue time of a real op / II) + 1]
    — how many iterations are simultaneously in flight. *)

val reservation : t -> int -> Ims_machine.Reservation.t
(** The reservation table of the alternative actually chosen for an
    operation. *)

val verify : t -> (unit, string list) result
(** Re-checks, from scratch, that (a) every dependence edge satisfies
    [time(dst) - time(src) >= delay - II * distance] and (b) replaying
    every reservation into a fresh modulo reservation table exceeds no
    resource capacity.  The scheduler never consults this; tests and the
    harness do. *)

val kernel_rows : t -> (int * int) list array
(** [kernel_rows s] maps each kernel slot [0 .. II-1] to the [(op, stage)]
    pairs issuing there. *)

val pp : Format.formatter -> t -> unit
(** Kernel listing: one row per slot with stage-annotated operations. *)

val pp_gantt : Format.formatter -> t -> unit
(** Resource-centric kernel view: one row per resource copy, one column
    per kernel slot, cells marked with the id of the occupying
    operation — the modulo reservation table made visible. *)
