(** Acyclic list scheduling of a single iteration.

    The baseline the paper measures IMS against: inter-iteration edges
    are ignored, each operation is scheduled exactly once, highest
    height first, at the first conflict-free slot at or after its early
    start time.  Its schedule length also feeds the paper's lower bound
    on the modulo schedule length (section 4.2), and its cost — one
    scheduling step per operation — is the yardstick for the scheduling
    inefficiency ratio of table 3. *)

open Ims_ir

val schedule : ?cancel:Ims_obs.Cancel.t -> Ddg.t -> Schedule.t
(** The returned schedule has [ii] equal to the scheduling horizon, so it
    is effectively linear; {!Schedule.verify} holds for it with all
    inter-iteration constraints trivially satisfied at that horizon.
    [cancel] (default null, polled per placement) exists for interface
    parity; fallback paths deliberately omit it so a degraded schedule
    can still be produced after a cancellation. *)

val schedule_length : Ddg.t -> int
(** [Schedule.length (schedule ddg)]. *)
