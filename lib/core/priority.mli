(** The HeightR scheduling priority (Rau 1994, section 3.2, figure 5a).

    HeightR extends the height-based priority of acyclic list scheduling
    across iterations: a successor [Q] at dependence distance [D] is
    effectively [II*D] cycles closer to its STOP, so

    {v HeightR(P) = 0                                    if P = STOP
       HeightR(P) = max over edges (P,Q) of
                    HeightR(Q) + Delay(P,Q) - II*Distance(P,Q)   otherwise v}

    Operations are scheduled highest first, which yields topological
    order on simple loops (scheduling them in one pass) and favours
    slack-poor strongly connected components on tangled ones. *)

open Ims_ir

val plan : Ddg.t -> int list
(** Reverse topological order of the distance-0 skeleton — the seeding
    order of {!heights}.  It depends only on the graph, so callers that
    retry many IIs compute it once and pass it via [?order]. *)

val heights :
  ?counters:Ims_mii.Counters.t -> ?order:int list -> ?buf:int array ->
  Ddg.t -> ii:int -> int array
(** Least solution of the implicit equations by worklist relaxation,
    seeded in reverse topological order of the intra-iteration subgraph.
    Requires [ii >= RecMII] (no positive-weight circuit); guarded by an
    iteration cap.  [?order] supplies a precomputed {!plan}; [?buf]
    (length at least [n_total], zero-filled on entry) is used as the
    result array instead of a fresh allocation.
    @raise Invalid_argument if the relaxation fails to converge. *)

val acyclic_heights : Ddg.t -> int array
(** The classic list-scheduling height, i.e. {!heights} on the graph with
    all inter-iteration edges removed (their weight is irrelevant when
    the loop is not pipelined). *)
