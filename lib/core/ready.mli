(** Indexed ready-set over a fixed universe of ranks.

    The schedulers pick "the best (priority, lowest-id) unscheduled
    operation" on every step.  Instead of scanning an [int list]
    (O(n) per pick, O(n) per removal), the operations are sorted once
    into a total order by that pair and the pending set is addressed by
    {e rank} in that order: the minimum present rank is exactly the
    operation the linear scan would have picked, so the substitution is
    behaviour-preserving by construction.

    Implemented as a flat tournament min-tree in a single int array:
    [add], [remove], and [min_rank] are O(log n) and allocation-free. *)

type t

val create : int -> t
(** [create n] is an empty set over ranks [0 .. n-1]. *)

val add : t -> int -> unit
(** Insert a rank; no-op when already present. *)

val remove : t -> int -> unit
(** Delete a rank; no-op when absent. *)

val mem : t -> int -> bool

val min_rank : t -> int
(** The smallest present rank, or [-1] when the set is empty. *)

val cardinal : t -> int
val is_empty : t -> bool
