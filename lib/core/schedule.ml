open Ims_machine
open Ims_ir

type entry = { time : int; alt : int }
type t = { ddg : Ddg.t; ii : int; entries : entry array }

let make ddg ~ii ~entries =
  if Array.length entries <> Ddg.n_total ddg then
    invalid_arg "Schedule.make: entry count mismatch";
  { ddg; ii; entries }

let with_entries t ?ddg ?ii entries =
  make
    (Option.value ~default:t.ddg ddg)
    ~ii:(Option.value ~default:t.ii ii)
    ~entries

let time t i = t.entries.(i).time
let alt t i = t.entries.(i).alt
let length t = time t (Ddg.stop t.ddg)

let stage_count t =
  let latest =
    List.fold_left (fun acc i -> max acc (time t i)) 0 (Ddg.real_ids t.ddg)
  in
  (latest / t.ii) + 1

let reservation t i =
  let opcode = Machine.opcode t.ddg.Ddg.machine (Ddg.op t.ddg i).Op.opcode in
  (List.nth opcode.Opcode.alternatives (alt t i)).Opcode.table

let verify t =
  let errors = ref [] in
  let report fmt = Format.kasprintf (fun s -> errors := s :: !errors) fmt in
  (* Dependence constraints. *)
  Array.iteri
    (fun src edges ->
      List.iter
        (fun (d : Dep.t) ->
          let slack =
            time t d.dst - time t src - (d.delay - (t.ii * d.distance))
          in
          if slack < 0 then
            report "edge %a violated by %d cycles" Dep.pp d (-slack))
        edges)
    t.ddg.Ddg.succs;
  (* Resource constraints: replay into a fresh MRT. *)
  let mrt = Mrt.create t.ddg.Ddg.machine ~ii:t.ii in
  List.iter
    (fun i ->
      let table = reservation t i in
      if Mrt.fits mrt table ~time:(time t i) then
        Mrt.reserve mrt ~op:i table ~time:(time t i)
      else report "operation %d oversubscribes a resource at time %d" i (time t i))
    (Ddg.real_ids t.ddg);
  match !errors with [] -> Ok () | es -> Error (List.rev es)

let kernel_rows t =
  let rows = Array.make t.ii [] in
  List.iter
    (fun i ->
      let tm = time t i in
      let slot = tm mod t.ii and stage = tm / t.ii in
      rows.(slot) <- (i, stage) :: rows.(slot))
    (Ddg.real_ids t.ddg);
  Array.map List.rev rows

let pp ppf t =
  Format.fprintf ppf "Modulo schedule: II=%d SL=%d stages=%d@." t.ii (length t)
    (stage_count t);
  Array.iteri
    (fun slot ops ->
      Format.fprintf ppf "  slot %2d |" slot;
      List.iter
        (fun (i, stage) ->
          Format.fprintf ppf " %s[s%d,t%d]" (Ddg.op t.ddg i).Op.opcode stage
            (time t i))
        ops;
      Format.fprintf ppf "@.")
    (kernel_rows t)

let pp_gantt ppf t =
  let machine = t.ddg.Ddg.machine in
  let mrt = Mrt.create machine ~ii:t.ii in
  List.iter
    (fun i -> Mrt.reserve mrt ~op:i (reservation t i) ~time:(time t i))
    (Ddg.real_ids t.ddg);
  Format.fprintf ppf "Kernel resource usage (II=%d):@." t.ii;
  let width = 4 in
  Format.fprintf ppf "  %-10s|" "";
  for slot = 0 to t.ii - 1 do
    Format.fprintf ppf "%*d|" width slot
  done;
  Format.fprintf ppf "@.";
  Array.iter
    (fun (r : Ims_machine.Resource.t) ->
      for copy = 0 to r.count - 1 do
        let label = if r.count = 1 then r.name else Printf.sprintf "%s#%d" r.name copy in
        Format.fprintf ppf "  %-10s|" label;
        for slot = 0 to t.ii - 1 do
          let occupants = Mrt.occupants mrt ~slot ~resource:r.id in
          match List.nth_opt (List.sort compare occupants) copy with
          | Some op -> Format.fprintf ppf "%*d|" width op
          | None -> Format.fprintf ppf "%s|" (String.make width ' ')
        done;
        Format.fprintf ppf "@."
      done)
    machine.Machine.resources
