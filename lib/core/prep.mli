(** Per-graph scheduling artifacts hoisted out of the per-II attempt
    loop.

    [ModuloSchedule] retries [IterativeSchedule] at successive candidate
    IIs over the same graph; everything here depends only on the graph
    (or compiles in one pass per II) and was previously rebuilt from
    scratch on every attempt — and, for the alternatives, once per
    operation rather than once per opcode. *)

open Ims_machine
open Ims_ir

val alternatives : Ddg.t -> Opcode.alternative array array
(** Per-operation alternative arrays, one {e shared} physical array per
    distinct opcode name. *)

val caps : Machine.t -> int array
(** The machine's per-resource capacity vector, for {!compile}'s
    [?caps] (which enables the {!Mrt} bitboard probe fast path). *)

val compile :
  ?caps:int array ->
  Opcode.alternative array array ->
  ii:int ->
  Mrt.ctable array array
(** Compiled reservation tables for one candidate II, parallel to the
    input; physically shared alternative arrays compile once.  Pass
    [~caps] (see {!caps}) to compile with the bitboard fast path. *)
