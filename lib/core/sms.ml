open Ims_machine
open Ims_ir
open Ims_mii

(* ---------------------------------------------------------------------- *)
(* Ordering phase                                                          *)
(* ---------------------------------------------------------------------- *)

(* Real-operation adjacency, ignoring the pseudo ops; distances are kept
   (an SCC's back edge connects it) but direction is what matters here. *)
let real_neighbours ddg =
  let succs v =
    List.filter_map
      (fun (d : Dep.t) ->
        if Ddg.is_pseudo ddg d.dst || d.dst = v then None else Some d.dst)
      ddg.Ddg.succs.(v)
    |> List.sort_uniq compare
  in
  let preds v =
    List.filter_map
      (fun (d : Dep.t) ->
        if Ddg.is_pseudo ddg d.src || d.src = v then None else Some d.src)
      ddg.Ddg.preds.(v)
    |> List.sort_uniq compare
  in
  (preds, succs)

(* Depth (longest delay path from START) and height (to STOP) — SMS's
   priority metrics, read off the attempt's shared MinDist matrix. *)
let depths_heights ddg ~md =
  let stop = Ddg.stop ddg in
  let depth v = max 0 (Mindist.get md Ddg.start v) in
  let height v =
    let h = Mindist.get md v stop in
    if h = Mindist.neg_inf then 0 else h
  in
  (depth, height)

(* Per-node slack at this II (Lstart - Estart over the whole graph):
   recurrence-critical nodes have none; the swing seeds there. *)
let slacks ddg ~md =
  let stop = Ddg.stop ddg in
  let critical_path = max 0 (Mindist.get md Ddg.start stop) in
  fun v ->
    let e = max 0 (Mindist.get md Ddg.start v) in
    let l =
      let h = Mindist.get md v stop in
      if h = Mindist.neg_inf then critical_path else critical_path - h
    in
    l - e

(* Groups: weakly connected components of the real-operation graph, most
   slack-constrained first.  One swing traversal covers each connected
   region, so an operation is never ordered after both sides of its own
   bracket have been pinned by unrelated regions. *)
let groups ddg ~md =
  let n = Ddg.n_total ddg in
  let preds, succs = real_neighbours ddg in
  let undirected v = if Ddg.is_pseudo ddg v then [] else preds v @ succs v in
  let comp = Ims_graph.Scc.compute ~n ~succs:undirected in
  let members = Ims_graph.Scc.members comp in
  let slack = slacks ddg ~md in
  let group_slack vs = List.fold_left (fun acc v -> min acc (slack v)) max_int vs in
  Array.to_list members
  |> List.filter_map (fun vs ->
         match List.filter (fun v -> not (Ddg.is_pseudo ddg v)) vs with
         | [] -> None
         | real -> Some real)
  |> List.sort (fun a b -> compare (group_slack a, a) (group_slack b, b))

let ordering_md ddg ~md =
  let preds, succs = real_neighbours ddg in
  let depth, height = depths_heights ddg ~md in
  let slack = slacks ddg ~md in
  (* Recurrence members seed before everything else: the most
     constrained subgraph claims its slots first (SMS's first rule). *)
  let on_recurrence =
    let n = Ddg.n_total ddg in
    let scc = Ims_graph.Scc.compute ~n ~succs:(Ddg.real_succ_ids ddg) in
    let members =
      Ims_graph.Scc.non_trivial ~succs:(Ddg.real_succ_ids ddg) scc
    in
    let tbl = Hashtbl.create 16 in
    Array.iter (List.iter (fun v -> Hashtbl.replace tbl v ())) members;
    fun v -> Hashtbl.mem tbl v
  in
  let order = ref [] in  (* reversed *)
  let in_order = Hashtbl.create 64 in
  let append v =
    if not (Hashtbl.mem in_order v) then begin
      Hashtbl.replace in_order v ();
      order := v :: !order
    end
  in
  List.iter
    (fun group ->
      let remaining = Hashtbl.create 16 in
      List.iter (fun v -> Hashtbl.replace remaining v ()) group;
      let pick_from candidates ~key =
        List.fold_left
          (fun best v ->
            match best with
            | None -> Some v
            | Some b -> if key v > key b || (key v = key b && v < b) then Some v else best)
          None candidates
      in
      (* Ready top-down when every real predecessor is already ordered
         (sources trivially are), and dually bottom-up: an operation is
         never ordered after both sides of its bracket. *)
      let ready ~dir =
        Hashtbl.fold
          (fun v () acc ->
            let neighbours = if dir = `Down then preds v else succs v in
            let gated = List.filter (fun u -> u <> v) neighbours in
            if
              gated <> []
              && List.for_all (fun u -> Hashtbl.mem in_order u) gated
            then v :: acc
            else acc)
          remaining []
      in
      let start_direction = if ready ~dir:`Down <> [] then `Down else `Up in
      let dir = ref start_direction in
      while Hashtbl.length remaining > 0 do
        let seeding = ready ~dir:!dir = [] in
        let candidates =
          if seeding then
            (* Nothing connected in this direction: seed at the least
               slack (the critical recurrence / critical path). *)
            Hashtbl.fold (fun v () acc -> v :: acc) remaining []
          else ready ~dir:!dir
        in
        (* Top-down favours deep successors of the placed region (max
           height = most critical); bottom-up the mirror image; seeds go
           to the most slack-starved node. *)
        let key =
          if seeding then fun v ->
            (if on_recurrence v then 1_000_000 else 0) - slack v
          else if !dir = `Down then height
          else depth
        in
        (match pick_from candidates ~key with
        | Some v ->
            append v;
            Hashtbl.remove remaining v
        | None -> ());
        (* Swing: if the current direction has no more ready nodes but
           the other does, reverse. *)
        if ready ~dir:!dir = [] && Hashtbl.length remaining > 0 then
          dir := (match !dir with `Down -> `Up | `Up -> `Down)
      done)
    (groups ddg ~md);
  List.rev !order

let ordering ddg ~ii = ordering_md ddg ~md:(Mindist.full ddg ~ii)

(* ---------------------------------------------------------------------- *)
(* Scheduling phase                                                        *)
(* ---------------------------------------------------------------------- *)

let try_schedule ?counters ?(cancel = Ims_obs.Cancel.null) ddg ~ii ~order ~md
    ~ctabs =
  let n = Ddg.n_total ddg in
  let machine = ddg.Ddg.machine in
  let mrt = Mrt.create machine ~ii in
  let time = Array.make n (-1) in
  let alt = Array.make n 0 in
  let scheduled = ref [ Ddg.start ] in
  let step () =
    match counters with
    | Some c -> c.Counters.sched_steps <- c.Counters.sched_steps + 1
    | None -> ()
  in
  time.(Ddg.start) <- 0;
  step ();
  (* Transitive bounds over everything already placed: the MinDist
     matrix guarantees that when a node lands between two fixed
     neighbours, its window is dependence-feasible (the endpoints were
     themselves separated by at least the through-path). *)
  let early v =
    List.fold_left
      (fun acc u ->
        let d = Mindist.get md u v in
        if d = Mindist.neg_inf then acc else max acc (time.(u) + d))
      0 !scheduled
  in
  let late v =
    List.fold_left
      (fun acc u ->
        if u = v then acc
        else begin
          let d = Mindist.get md v u in
          if d = Mindist.neg_inf then acc else min acc (time.(u) - d)
        end)
      max_int !scheduled
  in
  let fits_at v t =
    if t < 0 then None
    else begin
      (match counters with
      | Some c -> c.Counters.findslot_inner <- c.Counters.findslot_inner + 1
      | None -> ());
      let rec go k =
        if k >= Array.length ctabs.(v) then None
        else if Mrt.fits_c mrt ctabs.(v).(k) ~time:t then Some (t, k)
        else go (k + 1)
      in
      go 0
    end
  in
  let place v =
    let e = early v and l = late v in
    (* Direction is decided by the real (value-producing) neighbours
       only; START would otherwise make everything look pred-anchored
       and drag it to its early bound, squeezing producers placed
       later. *)
    let real u = u <> v && not (Ddg.is_pseudo ddg u) in
    let has_preds =
      List.exists
        (fun u -> real u && Mindist.get md u v > Mindist.neg_inf)
        !scheduled
    in
    let has_succs =
      List.exists
        (fun u -> real u && Mindist.get md v u > Mindist.neg_inf)
        !scheduled
    in
    let forward_from lo hi =
      if hi < lo then [] else List.init (min ii (hi - lo + 1)) (fun i -> lo + i)
    in
    let backward_from hi lo =
      if hi < lo then [] else List.init (min ii (hi - lo + 1)) (fun i -> hi - i)
    in
    let candidates =
      match (has_preds, has_succs) with
      | _, false -> forward_from e (e + ii - 1)
      | false, true -> backward_from l e
      | true, true -> forward_from e (min l (e + ii - 1))
    in
    let found =
      List.fold_left
        (fun acc t -> match acc with Some _ -> acc | None -> fits_at v t)
        None candidates
    in
    match found with
    | Some (t, k) ->
        Mrt.reserve_c mrt ~op:v ctabs.(v).(k) ~time:t;
        time.(v) <- t;
        alt.(v) <- k;
        scheduled := v :: !scheduled;
        step ();
        Ims_obs.Cancel.poll cancel;
        true
    | None ->
        if Sys.getenv_opt "IMS_SMS_DEBUG" <> None then
          Printf.eprintf "SMS ii=%d: op %d stuck (e=%d l=%d preds=%b succs=%b)\n"
            ii v e l has_preds has_succs;
        false
  in
  let ok = List.for_all place order in
  (match counters with
  | Some c ->
      c.Counters.mrt_bitprobe <- c.Counters.mrt_bitprobe + Mrt.bitprobes mrt
  | None -> ());
  if not ok then None
  else begin
    (* STOP last: its time is the schedule length. *)
    let stop = Ddg.stop ddg in
    time.(stop) <- early stop;
    step ();
    Some
      (Schedule.make ddg ~ii
         ~entries:(Array.init n (fun i -> { Schedule.time = time.(i); alt = alt.(i) })))
  end

let modulo_schedule ?(budget_ratio = Ims.default_budget_ratio)
    ?(max_delta_ii = 1000) ?counters ?cancel ddg =
  ignore budget_ratio;
  let counters = match counters with Some c -> c | None -> Counters.create () in
  let mii = Mii.compute ~counters ddg in
  let alternatives = Prep.alternatives ddg in
  let caps = Prep.caps ddg.Ddg.machine in
  let solver = Mindist.solver_full ~counters ddg in
  let rec attempt ii tried =
    if ii > mii.Mii.mii + max_delta_ii then
      {
        Ims.schedule = None;
        ii;
        mii;
        attempts = tried;
        steps_total = counters.Counters.sched_steps;
        steps_final = 0;
        counters;
      }
    else begin
      let before = counters.Counters.sched_steps in
      (* One MinDist per attempt, shared between the ordering phase and
         the placement bounds (the ordering's three derived metrics used
         to recompute it, uncounted, on every candidate II); the solver
         makes each attempt a pivot-restricted re-closure. *)
      let md = Mindist.solve ~counters solver ~ii in
      let order = ordering_md ddg ~md in
      let ctabs = Prep.compile ~caps alternatives ~ii in
      match try_schedule ~counters ?cancel ddg ~ii ~order ~md ~ctabs with
      | Some schedule ->
          let steps_final = counters.Counters.sched_steps - before in
          counters.Counters.sched_steps_final <-
            counters.Counters.sched_steps_final + steps_final;
          {
            Ims.schedule = Some schedule;
            ii;
            mii;
            attempts = tried + 1;
            steps_total = counters.Counters.sched_steps;
            steps_final;
            counters;
          }
      | None -> attempt (ii + 1) (tried + 1)
    end
  in
  attempt mii.Mii.mii 0
