(** Fleet supervision for [imsc fleet]: run a sharded batch as N worker
    processes, restart crashed workers with [--resume], aggregate their
    status heartbeats, and deterministically merge their reports.

    Each worker is an [imsc batch --corpus … --shard i/N] child with
    its own fsync'd journal, report file, status file, and stderr log.
    Crash recovery reuses the serve supervisor's pure backoff /
    circuit-breaker policy ({!Ims_serve.Supervisor.Backoff}) per shard:
    a worker that dies is relaunched (resuming from its journal when
    the journal is usable) after capped exponential backoff, and a
    worker that crash-loops opens its breaker and fails the fleet.

    The output contract is byte-determinism: because shard [i] of [N]
    owns exactly the corpus indices [g] with [g mod N = i - 1] in
    ascending order, {!merge_reports}' round-robin interleave
    reconstructs the single-process report {e byte-identically},
    regardless of shard count, crash history, or completion order. *)

type spec = {
  shard : int;  (** 1-based shard index. *)
  fresh_argv : string array;  (** argv for a first (non-resume) launch. *)
  resume_argv : string array;  (** argv for a relaunch with [--resume]. *)
  journal : string;  (** The shard's journal path (resume predicate). *)
  report : string;
      (** The shard's report path; its existence after a 0/1/2 exit is
          what distinguishes "completed with casualties" from "crashed
          with a config error". *)
  status_file : string;  (** The shard's heartbeat file (aggregated). *)
  log_file : string;  (** Receives the child's stdout+stderr. *)
}

type stop_reason =
  | Completed  (** Every shard ran to completion. *)
  | Breaker of int  (** This shard's circuit breaker opened. *)
  | Fail_fast of int
      (** Fleet-wide casualty count exceeded [max_failures]. *)
  | Interrupted  (** SIGTERM/SIGINT; workers were terminated. *)

type outcome = {
  reason : stop_reason;
  exit_codes : (int * int) list;
      (** (shard, exit code) of shards that completed. *)
  restarts : int;  (** Total worker restarts across the fleet. *)
}

val run :
  ?poll:float ->
  ?max_failures:int ->
  ?backoff:(unit -> Ims_serve.Supervisor.Backoff.t) ->
  ?resume:bool ->
  log:Ims_obs.Log.t ->
  status_file:string option ->
  status_interval:float ->
  tty:out_channel option ->
  prog:string ->
  specs:spec list ->
  unit ->
  outcome
(** Launch one worker per spec and supervise until every shard
    completes or the fleet stops.  [poll] (default 0.05 s) is the
    reap/heartbeat loop period; [backoff] builds each shard's restart
    policy (default {!Ims_serve.Supervisor.Backoff.create}[ ()]).
    With [resume] (default false), the {e initial} launch also resumes
    shards whose journal survived a previous fleet run; restarts after
    a crash always resume when possible.  The merged status snapshot
    (aggregated counts plus per-shard pid/state/restarts) is published
    atomically to [status_file] and as a TTY line to [tty] at most once
    per [status_interval]; the final snapshot carries
    ["running":false] on {e every} exit path, including exceptions. *)

type merge_stats = {
  lines : int;  (** Total report lines merged. *)
  merge_casualties : int;  (** Lines whose ["status"] is not ["ok"]. *)
  merge_degraded : int;  (** Lines with ["degraded":true]. *)
}

val merge_reports :
  reports:string list -> emit:(string -> unit) -> (merge_stats, string) result
(** Round-robin interleave the shard reports (listed in shard order
    1..N) into global-index order, calling [emit] per line.  [Error] if
    any line is unparseable or the shards' line counts are inconsistent
    with a single corpus split N ways. *)
