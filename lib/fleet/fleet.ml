open Ims_obs

(* Fleet supervision: N shard processes over one corpus, each running
   `imsc batch --corpus C --shard i/N` with its own journal, report,
   status file and stderr log.  The fleet restarts crashed shards with
   --resume under the serve supervisor's backoff/circuit-breaker
   policy (Ims_serve.Supervisor.Backoff — the pure state machine is
   reused verbatim; the multi-child spawn loop here replaces its
   single-child fork loop), aggregates the shards' status heartbeats
   into one snapshot, applies a run-level --max-failures across all
   shards, and finally merges the shard reports into one stream that is
   byte-identical to a single-process batch over the same corpus.

   Determinism contract: shard i holds exactly the global indices
   g = i - 1 (mod N) of the corpus, in ascending order, and a batch
   report is one line per input in global-index order.  So the merged
   report is the round-robin interleave of the shard reports — a pure
   function of the corpus and flags, independent of shard count, crash
   history, and completion order (journaled resume makes each shard's
   report independent of *its* crash history; the interleave makes the
   whole independent of everything else). *)

module Backoff = Ims_serve.Supervisor.Backoff

type spec = {
  shard : int;  (** 1-based shard index. *)
  fresh_argv : string array;
  resume_argv : string array;
  journal : string;
  report : string;
  status_file : string;
  log_file : string;
}

type state =
  | Launching
  | Running of int  (** pid *)
  | Backing_off of float  (** restart time *)
  | Done of int  (** exit code: 0 ok / 1 casualties / 2 degraded *)

type worker = {
  spec : spec;
  backoff : Backoff.t;
  mutable state : state;
  mutable started_at : float;
  mutable restarts : int;
}

type stop_reason =
  | Completed
  | Breaker of int  (** shard whose circuit breaker opened *)
  | Fail_fast of int  (** fleet-wide casualty count that tripped *)
  | Interrupted

type outcome = {
  reason : stop_reason;
  exit_codes : (int * int) list;  (** (shard, exit code) of completed shards *)
  restarts : int;  (** total restarts across the fleet *)
}

(* -- shard status files --------------------------------------------- *)

let json_int obj k =
  match obj with
  | Json.Obj kvs -> (
      match List.assoc_opt k kvs with Some (Json.Int i) -> Some i | _ -> None)
  | _ -> None

(* One shard's latest heartbeat, as written by batch --status-file.
   [None] on a missing or unreadable file (the shard just started, or
   died before its first heartbeat) — aggregation treats that as
   all-zero.  Atomic rename on the writer side means a parseable file
   is always a complete snapshot. *)
let read_counts path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | exception Sys_error _ -> None
  | content -> (
      match Json.of_string (String.trim content) with
      | Error _ -> None
      | Ok obj ->
          let get k = Option.value ~default:0 (json_int obj k) in
          Some
            {
              Status.total = get "total";
              ok = get "ok";
              failed = get "failed";
              timed_out = get "timed_out";
              cancelled = get "cancelled";
              retried = get "retried";
            })

let add_counts (a : Status.counts) (b : Status.counts) =
  {
    Status.total = a.Status.total + b.Status.total;
    ok = a.Status.ok + b.Status.ok;
    failed = a.Status.failed + b.Status.failed;
    timed_out = a.Status.timed_out + b.Status.timed_out;
    cancelled = a.Status.cancelled + b.Status.cancelled;
    retried = a.Status.retried + b.Status.retried;
  }

let casualties (c : Status.counts) =
  c.Status.failed + c.Status.timed_out + c.Status.cancelled

(* The merged snapshot carries per-shard detail (pid, state, restarts)
   on top of the aggregated Status fields: monitors get one file, and
   the chaos harness gets a pid to kill. *)
let fleet_status_json ~running ~elapsed ~restarts workers counts =
  let shard_json w =
    Json.Obj
      [
        ("shard", Json.Int w.spec.shard);
        ( "pid",
          Json.Int (match w.state with Running pid -> pid | _ -> 0) );
        ( "state",
          Json.String
            (match w.state with
            | Launching -> "launching"
            | Running _ -> "running"
            | Backing_off _ -> "backing_off"
            | Done c -> Printf.sprintf "done(%d)" c) );
        ("restarts", Json.Int w.restarts);
      ]
  in
  let snap = { Status.phase = "fleet"; counts; elapsed } in
  let base =
    match Status.to_json ~running snap with Json.Obj kvs -> kvs | _ -> []
  in
  Json.Obj
    (base
    @ [
        ("workers", Json.Int (List.length workers));
        ("fleet_restarts", Json.Int restarts);
        ("shards", Json.List (List.map shard_json workers));
      ])

(* -- supervision ---------------------------------------------------- *)

let spawn ~log ~prog w ~resume =
  (match Sys.file_exists w.spec.report with
  | true -> Sys.remove w.spec.report
  | false -> ());
  let argv = if resume then w.spec.resume_argv else w.spec.fresh_argv in
  let devnull = Unix.openfile "/dev/null" [ Unix.O_RDONLY ] 0 in
  let out =
    Unix.openfile w.spec.log_file
      [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_APPEND ]
      0o644
  in
  Fun.protect
    ~finally:(fun () ->
      Unix.close devnull;
      Unix.close out)
    (fun () ->
      let pid = Unix.create_process prog argv devnull out out in
      w.state <- Running pid;
      w.started_at <- Unix.gettimeofday ();
      Log.info log "shard %d: %s as pid %d" w.spec.shard
        (if resume then "resumed" else "started")
        pid)

(* A journal is resumable when it exists, is non-empty, and its
   manifest parses.  A journal torn inside its manifest line (killed
   during the very first write) is removed so the shard restarts
   fresh instead of crash-looping on "cannot resume". *)
let resumable ~log w =
  let path = w.spec.journal in
  Sys.file_exists path
  && (Unix.stat path).Unix.st_size > 0
  &&
  match Ims_exec.Journal.read ~path with
  | Ok _ -> true
  | Error msg ->
      Log.warn log "shard %d: discarding unusable journal %s (%s)"
        w.spec.shard path msg;
      Sys.remove path;
      false

let term_all ~log workers =
  List.iter
    (fun w ->
      match w.state with
      | Running pid -> (
          try Unix.kill pid Sys.sigterm
          with Unix.Unix_error _ ->
            Log.warn log "shard %d: pid %d already gone" w.spec.shard pid)
      | _ -> ())
    workers;
  List.iter
    (fun w ->
      match w.state with
      | Running pid ->
          (try ignore (Unix.waitpid [] pid) with Unix.Unix_error _ -> ());
          w.state <- Done 1
      | _ -> ())
    workers

let interrupted = ref false

let run ?(poll = 0.05) ?max_failures ?(backoff = fun () -> Backoff.create ())
    ?(resume = false) ~log ~status_file ~status_interval ~tty ~prog ~specs
    () =
  let workers =
    List.map
      (fun spec ->
        {
          spec;
          backoff = backoff ();
          state = Launching;
          started_at = 0.0;
          restarts = 0;
        })
      specs
  in
  let t0 = Unix.gettimeofday () in
  let total_restarts = ref 0 in
  let last_beat = ref neg_infinity in
  let finished = ref false in
  let tty_dirty = ref false in
  let publish ~running ~force () =
    let now = Unix.gettimeofday () in
    if force || now -. !last_beat >= status_interval then begin
      last_beat := now;
      let counts =
        List.fold_left
          (fun acc w ->
            match read_counts w.spec.status_file with
            | Some c -> add_counts acc c
            | None -> acc)
          (Status.zero ~total:0) workers
      in
      let elapsed = now -. t0 in
      (match status_file with
      | Some path ->
          Status.write_atomic ~path
            (Json.to_string
               (fleet_status_json ~running ~elapsed
                  ~restarts:!total_restarts workers counts)
            ^ "\n")
      | None -> ());
      (match tty with
      | Some oc ->
          let snap = { Status.phase = "fleet"; counts; elapsed } in
          if running then begin
            output_string oc ("\r\027[K" ^ Status.progress_line snap);
            flush oc;
            tty_dirty := true
          end
          else if !tty_dirty then begin
            output_string oc ("\r\027[K" ^ Status.progress_line snap ^ "\n");
            flush oc;
            tty_dirty := false
          end
      | None -> ());
      counts
    end
    else Status.zero ~total:0
  in
  (* The final snapshot must carry "running":false on every exit path —
     completion, fail-fast, breaker trip, interrupt, or an escaping
     exception — so a monitor can always tell "fleet finished" from
     "fleet died between heartbeats". *)
  let finish () =
    if not !finished then begin
      finished := true;
      ignore (publish ~running:false ~force:true ())
    end
  in
  Fun.protect ~finally:finish @@ fun () ->
  interrupted := false;
  let old_term =
    try
      Sys.signal Sys.sigterm
        (Sys.Signal_handle (fun _ -> interrupted := true))
    with Invalid_argument _ -> Sys.Signal_default
  in
  let old_int =
    try
      Sys.signal Sys.sigint
        (Sys.Signal_handle (fun _ -> interrupted := true))
    with Invalid_argument _ -> Sys.Signal_default
  in
  Fun.protect
    ~finally:(fun () ->
      (try Sys.set_signal Sys.sigterm old_term with Invalid_argument _ -> ());
      try Sys.set_signal Sys.sigint old_int with Invalid_argument _ -> ())
  @@ fun () ->
  (* Initial launch: fresh by default; with [resume], shards whose
     journal survived a previous fleet run pick up where it died. *)
  List.iter
    (fun w -> spawn ~log ~prog w ~resume:(resume && resumable ~log w))
    workers;
  let result = ref None in
  while !result = None do
    if !interrupted then begin
      Log.warn log "interrupted — terminating %d shard(s)"
        (List.length
           (List.filter
              (fun w ->
                match w.state with Running _ -> true | _ -> false)
              workers));
      term_all ~log workers;
      result := Some Interrupted
    end
    else begin
      (* Reap exited shards. *)
      List.iter
        (fun w ->
          match w.state with
          | Running pid -> (
              match Unix.waitpid [ Unix.WNOHANG ] pid with
              | 0, _ -> ()
              | _, status -> (
                  let uptime = Unix.gettimeofday () -. w.started_at in
                  let completed_code =
                    match status with
                    | Unix.WEXITED c
                      when (c = 0 || c = 1 || c = 2)
                           && Sys.file_exists w.spec.report ->
                        (* The batch exit protocol: 0/1/2 all mean "ran
                           to completion and wrote the report";
                           casualties are data, not crashes.  A 0/1/2
                           exit *without* a report is a config error
                           (e.g. a refused resume) and is treated as a
                           crash so the breaker can open on it. *)
                        Some c
                    | _ -> None
                  in
                  match completed_code with
                  | Some c ->
                      w.state <- Done c;
                      Log.info log "shard %d: completed (exit %d)"
                        w.spec.shard c
                  | None -> (
                      let describe =
                        match status with
                        | Unix.WEXITED c -> Printf.sprintf "exit %d" c
                        | Unix.WSIGNALED s -> Printf.sprintf "signal %d" s
                        | Unix.WSTOPPED s -> Printf.sprintf "stopped %d" s
                      in
                      match Backoff.on_crash w.backoff ~uptime with
                      | Backoff.Restart delay ->
                          w.restarts <- w.restarts + 1;
                          incr total_restarts;
                          w.state <-
                            Backing_off (Unix.gettimeofday () +. delay);
                          Log.warn log
                            "shard %d: crashed (%s) after %.1fs — \
                             restart %d in %.2fs"
                            w.spec.shard describe uptime w.restarts delay
                      | Backoff.Give_up ->
                          Log.error log
                            "shard %d: crash loop (%s) — circuit \
                             breaker open"
                            w.spec.shard describe;
                          term_all ~log workers;
                          result := Some (Breaker w.spec.shard))))
          | _ -> ())
        workers;
      (* Respawn shards whose backoff elapsed; resume if their journal
         is usable. *)
      (match !result with
      | None ->
          let now = Unix.gettimeofday () in
          List.iter
            (fun w ->
              match w.state with
              | Backing_off at when now >= at ->
                  spawn ~log ~prog w ~resume:(resumable ~log w)
              | _ -> ())
            workers
      | Some _ -> ());
      (* Heartbeat + fleet-level fail-fast. *)
      (match !result with
      | None -> (
          let counts = publish ~running:true ~force:false () in
          match max_failures with
          | Some limit when casualties counts > limit ->
              Log.warn log
                "%d casualties across the fleet (max %d) — terminating \
                 all shards"
                (casualties counts) limit;
              term_all ~log workers;
              result := Some (Fail_fast (casualties counts))
          | _ -> ())
      | Some _ -> ());
      (match !result with
      | None
        when List.for_all
               (fun w ->
                 match w.state with Done _ -> true | _ -> false)
               workers ->
          result := Some Completed
      | _ -> ());
      if !result = None then Unix.sleepf poll
    end
  done;
  finish ();
  {
    reason = Option.get !result;
    exit_codes =
      List.filter_map
        (fun w ->
          match w.state with
          | Done c -> Some (w.spec.shard, c)
          | _ -> None)
        workers;
    restarts = !total_restarts;
  }

(* -- deterministic merge -------------------------------------------- *)

type merge_stats = { lines : int; merge_casualties : int; merge_degraded : int }

(* Shard i's report lists its residue class in ascending global order,
   so the single-process report is exactly the round-robin interleave
   starting at shard 1.  The first exhausted channel fixes the total;
   every other channel must be exhausted too, or a shard ran over a
   different corpus and the merge refuses. *)
let merge_reports ~reports ~emit =
  let n = List.length reports in
  if n = 0 then invalid_arg "Fleet.merge_reports: no reports";
  let ics = Array.of_list (List.map open_in_bin reports) in
  Fun.protect
    ~finally:(fun () -> Array.iter close_in_noerr ics)
    (fun () ->
      let casualties = ref 0 and degraded = ref 0 in
      let classify line =
        match Json.of_string line with
        | Error e ->
            Error (Printf.sprintf "unparseable report line: %s" e)
        | Ok (Json.Obj kvs) ->
            (match List.assoc_opt "status" kvs with
            | Some (Json.String "ok") | None -> ()
            | Some _ -> incr casualties);
            (match List.assoc_opt "degraded" kvs with
            | Some (Json.Bool true) -> incr degraded
            | _ -> ());
            Ok ()
        | Ok _ -> Error "report line is not a JSON object"
      in
      let rec go g =
        let k = g mod n in
        match input_line ics.(k) with
        | exception End_of_file ->
            let over = ref None in
            Array.iteri
              (fun j ic ->
                if j <> k then
                  match input_line ic with
                  | _ -> if !over = None then over := Some (j + 1)
                  | exception End_of_file -> ())
              ics;
            (match !over with
            | Some shard ->
                Error
                  (Printf.sprintf
                     "shard %d report holds extra lines — shards did \
                      not split one corpus"
                     shard)
            | None -> Ok g)
        | line -> (
            match classify line with
            | Error e -> Error (Printf.sprintf "global index %d: %s" g e)
            | Ok () ->
                emit line;
                go (g + 1))
      in
      match go 0 with
      | Error e -> Error e
      | Ok total ->
          Ok
            {
              lines = total;
              merge_casualties = !casualties;
              merge_degraded = !degraded;
            })
