type counter = { mutable c : int }
type gauge = { mutable g : float }

type histogram = {
  mutable count : int;
  mutable sum : float;
  mutable lo : float;
  mutable hi : float;
}

type value =
  | Counter of int
  | Gauge of float
  | Histogram of { count : int; sum : float; min : float; max : float }

type instrument = C of counter | G of gauge | H of histogram

type t = { tbl : (string, instrument) Hashtbl.t }

let create () = { tbl = Hashtbl.create 32 }

let kind_name = function C _ -> "counter" | G _ -> "gauge" | H _ -> "histogram"

let register t name make match_kind wanted =
  match Hashtbl.find_opt t.tbl name with
  | Some i -> (
      match match_kind i with
      | Some x -> x
      | None ->
          invalid_arg
            (Printf.sprintf "Metrics: %S is a %s, not a %s" name (kind_name i)
               wanted))
  | None ->
      let x = make () in
      x

let counter t name =
  register t name
    (fun () ->
      let c = { c = 0 } in
      Hashtbl.add t.tbl name (C c);
      c)
    (function C c -> Some c | _ -> None)
    "counter"

let incr ?(by = 1) c = c.c <- c.c + by
let counter_value c = c.c

let gauge t name =
  register t name
    (fun () ->
      let g = { g = 0.0 } in
      Hashtbl.add t.tbl name (G g);
      g)
    (function G g -> Some g | _ -> None)
    "gauge"

let set g v = g.g <- v
let set_int g v = g.g <- float_of_int v

let histogram t name =
  register t name
    (fun () ->
      let h = { count = 0; sum = 0.0; lo = infinity; hi = neg_infinity } in
      Hashtbl.add t.tbl name (H h);
      h)
    (function H h -> Some h | _ -> None)
    "histogram"

let observe h v =
  h.count <- h.count + 1;
  h.sum <- h.sum +. v;
  if v < h.lo then h.lo <- v;
  if v > h.hi then h.hi <- v

let to_assoc t =
  Hashtbl.fold
    (fun name i acc ->
      let v =
        match i with
        | C c -> Counter c.c
        | G g -> Gauge g.g
        | H h -> Histogram { count = h.count; sum = h.sum; min = h.lo; max = h.hi }
      in
      (name, v) :: acc)
    t.tbl []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let value_to_json = function
  | Counter n -> Json.Int n
  | Gauge g -> if Float.is_integer g && Float.abs g < 1e15 then Json.Int (int_of_float g) else Json.Float g
  | Histogram { count; sum; min; max } ->
      Json.Obj
        [
          ("count", Json.Int count);
          ("sum", Json.Float sum);
          ("min", Json.Float min);
          ("max", Json.Float max);
        ]

let to_json t = Json.Obj (List.map (fun (k, v) -> (k, value_to_json v)) (to_assoc t))

let pp ppf t =
  List.iter
    (fun (name, v) ->
      match v with
      | Counter n -> Format.fprintf ppf "%s = %d@." name n
      | Gauge g -> Format.fprintf ppf "%s = %g@." name g
      | Histogram { count; sum; min; max } ->
          Format.fprintf ppf "%s = {count %d; sum %g; min %g; max %g}@." name
            count sum min max)
    (to_assoc t)
