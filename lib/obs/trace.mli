(** The event sink threaded through the pipeline.

    A trace is either {!null} — permanently disabled, every emission a
    single branch with no allocation — or an in-memory buffer created by
    {!create}.  Library code takes a [Trace.t] (defaulting to [null])
    and calls the typed emitters; the allocation of the event payload
    happens {e after} the enabled check, so a disabled trace costs one
    load and one conditional per call site and nothing else.

    {!with_span} additionally accumulates wall-clock time per phase name
    into a side table ({!span_times}); those timings never enter the
    event stream, which is what keeps exported traces byte-identical
    across runs (events carry logical sequence numbers only). *)

type t

val null : t
(** The no-op sink: [enabled null = false]; emissions do nothing,
    [events null = []]. *)

val create : ?timer:(unit -> float) -> unit -> t
(** An enabled trace buffering events in memory.  [timer] (seconds,
    monotone non-decreasing) feeds span timing; it defaults to
    [Sys.time] — the stdlib's process-CPU clock, which keeps this
    library dependency-free.  Inject a wall clock here if preferred. *)

val timer_only : ?timer:(unit -> float) -> unit -> t
(** A trace that records {e only} the span table: [enabled] is false,
    every typed emission is the usual single branch and {!events}
    stays empty, but {!with_span} still accumulates per-phase wall
    time.  This is what run-level profiling threads through each job
    when full event tracing would be too heavy. *)

val enabled : t -> bool

val times_spans : t -> bool
(** True for {!create}d and {!timer_only} traces: {!with_span} is
    accumulating the phase table. *)

val emit : t -> Event.payload -> unit
(** Appends (when enabled).  Prefer the typed emitters below on hot
    paths: they perform the enabled check {e before} allocating the
    payload. *)

(** {2 Typed emitters} *)

val place :
  t -> op:int -> time:int -> alt:int -> estart:int -> forced:bool -> unit

val evict : t -> op:int -> by:int -> time:int -> reason:Event.evict_reason -> unit
val ii_start : t -> ii:int -> attempt:int -> budget:int -> unit
val ii_end : t -> ii:int -> scheduled:bool -> steps:int -> unit
val budget_exhausted : t -> ii:int -> unplaced:int -> unit
val instant : t -> string -> unit

(** {2 Spans} *)

val with_span : t -> string -> (unit -> 'a) -> 'a
(** [with_span t name f] brackets [f] with [Span_begin]/[Span_end]
    events (the end event is emitted even if [f] raises) and adds the
    elapsed timer reading to the phase table.  On a disabled trace it is
    exactly [f ()]. *)

(** {2 Readout} *)

val events : t -> Event.t list
(** In emission order. *)

val absorb : t -> t -> unit
(** [absorb dst src] appends [src]'s events to [dst], re-stamping each
    with [dst]'s next sequence numbers, and folds [src]'s span table
    (counts and wall time) into [dst]'s.  Events are dropped when [dst]
    is disabled, and the span fold also happens into a {!timer_only}
    [dst]; a fully-null [dst] makes this a no-op.  [src] is left
    untouched.

    This is the merge step of sharded tracing: give each worker (or
    job) its own sink, then absorb the shards into one trace {e in a
    deterministic order} — the renumbering makes the merged stream
    byte-identical to the one a serial run would have produced, no
    matter how the shards' emissions interleaved in real time. *)

val span_times : t -> (string * (int * float)) list
(** Per phase name: (number of completed spans, total seconds), sorted
    by name. *)

val record_span_times : t -> Metrics.t -> unit
(** Adds each phase's wall time as gauge ["span.NAME.seconds"] and its
    count as counter ["span.NAME.count"]. *)
