(** A human-readable narrative of one scheduling run, rendered from the
    event trace — each line is one figure-3 decision: which operation
    was picked, where its Estart window opened, whether it took a free
    slot or forced its way in, and whom it displaced.

    [op_name] maps operation ids to display names (typically the opcode
    and tag from the {!Ims_ir.Ddg.t}); it defaults to ["op N"]. *)

val pp : ?op_name:(int -> string) -> Format.formatter -> Event.t list -> unit
