type tok = {
  flag : bool Atomic.t;
  parent : bool Atomic.t option;
  timer : unit -> float;
  start : float;
  limit : float;  (* seconds; infinity = no deadline *)
  max_polls : int;  (* max_int = no poll cap *)
  stride : int;
  mutable polls : int;
  mutable countdown : int;  (* polls until the next clock read *)
}

type t = Null | Tok of tok

exception Cancelled of { elapsed : float; limit : float }

let () =
  Printexc.register_printer (function
    | Cancelled { elapsed; limit } ->
        Some
          (if limit = infinity then
             Printf.sprintf "Cancelled(after %.3fs)" elapsed
           else
             Printf.sprintf "Cancelled(%.3fs elapsed, %.3fs deadline)" elapsed
               limit)
    | _ -> None)

let null = Null
let default_stride = 64

let create ?(timer = Sys.time) ?parent ?(stride = default_stride) ?deadline
    ?max_polls () =
  let parent =
    match parent with Some (Tok p) -> Some p.flag | Some Null | None -> None
  in
  Tok
    {
      flag = Atomic.make false;
      parent;
      timer;
      start = timer ();
      limit = (match deadline with Some s -> s | None -> infinity);
      max_polls = (match max_polls with Some n -> n | None -> max_int);
      stride = max 1 stride;
      polls = 0;
      (* Read the clock on the very first poll so a deadline shorter
         than one stride's worth of work still preempts promptly. *)
      countdown = 1;
    }

let cancel = function Null -> () | Tok k -> Atomic.set k.flag true

let cancelled = function
  | Null -> false
  | Tok k -> (
      Atomic.get k.flag
      || match k.parent with Some f -> Atomic.get f | None -> false)

let fire k ~limit =
  Atomic.set k.flag true;
  raise (Cancelled { elapsed = k.timer () -. k.start; limit })

let poll = function
  | Null -> ()
  | Tok k ->
      k.polls <- k.polls + 1;
      if Atomic.get k.flag then fire k ~limit:infinity;
      (match k.parent with
      | Some f when Atomic.get f -> fire k ~limit:infinity
      | _ -> ());
      if k.polls > k.max_polls then fire k ~limit:infinity;
      k.countdown <- k.countdown - 1;
      if k.countdown <= 0 then begin
        k.countdown <- k.stride;
        if k.limit < infinity && k.timer () -. k.start > k.limit then
          fire k ~limit:k.limit
      end

let polls = function Null -> 0 | Tok k -> k.polls

let deadline = function
  | Null -> None
  | Tok k -> if k.limit = infinity then None else Some k.limit
