type regression = {
  metric : string;
  baseline : float;
  current : float;
  limit : float;
}

let describe r =
  if r.baseline > 0.0 then
    Printf.sprintf "%s: %g vs baseline %g (limit %g, %+.1f%%)" r.metric
      r.current r.baseline r.limit
      (100.0 *. ((r.current /. r.baseline) -. 1.0))
  else Printf.sprintf "%s: %g vs baseline %g (limit %g)" r.metric r.current r.baseline r.limit

let field key = function Json.Obj kvs -> List.assoc_opt key kvs | _ -> None

let number = function
  | Some (Json.Int i) -> Some (float_of_int i)
  | Some (Json.Float f) -> Some f
  | _ -> None

(* The achieved-II histogram collapsed to (loops, frequency-weighted
   mean II): total loops must match exactly (same suite), and the mean
   II is the schedule-quality metric the tolerance gates. *)
let ii_stats j =
  match field "ii_histogram" j with
  | Some (Json.List rows) ->
      let loops, weighted =
        List.fold_left
          (fun (loops, weighted) row ->
            match (number (field "ii" row), number (field "loops" row)) with
            | Some ii, Some n -> (loops +. n, weighted +. (ii *. n))
            | _ -> (loops, weighted))
          (0.0, 0.0) rows
      in
      if loops > 0.0 then Some (loops, weighted /. loops) else None
  | _ -> None

let compare_snapshots ?(tolerance = 0.10) ?(time_tolerance = 3.0) ~baseline
    ~current () =
  let regressions = ref [] in
  let flag metric ~base ~cur ~limit =
    if cur > limit then
      regressions := { metric; baseline = base; current = cur; limit } :: !regressions
  in
  (* The run shape must match before any number is comparable. *)
  let exact metric =
    match (number (field metric baseline), number (field metric current)) with
    | Some base, Some cur when base <> cur ->
        regressions :=
          { metric; baseline = base; current = cur; limit = base } :: !regressions
    | _ -> ()
  in
  exact "suite_count";
  if !regressions = [] then begin
    (* Step counters are deterministic per suite: a tight tolerance. *)
    (match field "counters" baseline with
    | Some (Json.Obj kvs) ->
        List.iter
          (fun (name, v) ->
            match number (Some v) with
            | None -> ()
            | Some base ->
                let cur =
                  Option.value ~default:0.0
                    (number
                       (Option.bind (field "counters" current) (fun c ->
                            field name c)))
                in
                flag ("counters." ^ name) ~base ~cur
                  ~limit:(base *. (1.0 +. tolerance)))
          kvs
    | _ -> ());
    (* Schedule quality: the frequency-weighted mean achieved II. *)
    (match (ii_stats baseline, ii_stats current) with
    | Some (bl, bmean), Some (cl, cmean) ->
        if bl <> cl then
          regressions :=
            {
              metric = "ii_histogram.loops";
              baseline = bl;
              current = cl;
              limit = bl;
            }
            :: !regressions
        else
          flag "ii_histogram.mean_ii" ~base:bmean ~cur:cmean
            ~limit:(bmean *. (1.0 +. tolerance))
    | _ -> ());
    (* Phase wall clock is machine- and load-dependent: a loose,
       separately-set tolerance. *)
    let phase_seconds j =
      match field "phases" j with
      | Some (Json.List rows) ->
          List.filter_map
            (fun row ->
              match (field "name" row, number (field "seconds" row)) with
              | Some (Json.String name), Some s -> Some (name, s)
              | _ -> None)
            rows
      | _ -> []
    in
    let current_phases = phase_seconds current in
    List.iter
      (fun (name, base) ->
        match List.assoc_opt name current_phases with
        | None -> ()
        | Some cur ->
            flag ("phase." ^ name ^ ".seconds") ~base ~cur
              ~limit:(base *. (1.0 +. time_tolerance)))
      (phase_seconds baseline);
    (* Fleet throughput (loops scheduled per second) is wall clock, so
       it takes the loose tolerance — and inverted: lower is worse.  It
       is only comparable when the run shape matches (same corpus size
       and worker count); a --quick smoke snapshot must not gate a
       million-loop run, or vice versa. *)
    (match (field "fleet" baseline, field "fleet" current) with
    | Some bf, Some cf
      when number (field "loops" bf) = number (field "loops" cf)
           && number (field "workers" bf) = number (field "workers" cf) -> (
        match
          (number (field "loops_per_s" bf), number (field "loops_per_s" cf))
        with
        | Some base, Some cur ->
            let limit = base /. (1.0 +. time_tolerance) in
            if cur < limit then
              regressions :=
                { metric = "fleet.loops_per_s"; baseline = base; current = cur; limit }
                :: !regressions
        | _ -> ())
    | _ -> ())
  end;
  List.rev !regressions
