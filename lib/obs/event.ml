type evict_reason = Dependence | Resource

type payload =
  | Span_begin of { name : string }
  | Span_end of { name : string }
  | Instant of { name : string }
  | Place of { op : int; time : int; alt : int; estart : int; forced : bool }
  | Evict of { op : int; by : int; time : int; reason : evict_reason }
  | Ii_start of { ii : int; attempt : int; budget : int }
  | Ii_end of { ii : int; scheduled : bool; steps : int }
  | Budget_exhausted of { ii : int; unplaced : int }
  | Job_retry of { job : int; attempt : int; after : string }

type t = { seq : int; payload : payload }

let name = function
  | Span_begin _ -> "span_begin"
  | Span_end _ -> "span_end"
  | Instant _ -> "instant"
  | Place { forced = false; _ } -> "place"
  | Place { forced = true; _ } -> "force"
  | Evict _ -> "evict"
  | Ii_start _ -> "ii_start"
  | Ii_end _ -> "ii_end"
  | Budget_exhausted _ -> "budget_exhausted"
  | Job_retry _ -> "job_retry"

let args = function
  | Span_begin { name } | Span_end { name } | Instant { name } ->
      [ ("name", Json.String name) ]
  | Place { op; time; alt; estart; forced = _ } ->
      [
        ("op", Json.Int op);
        ("time", Json.Int time);
        ("alt", Json.Int alt);
        ("estart", Json.Int estart);
      ]
  | Evict { op; by; time; reason } ->
      [
        ("op", Json.Int op);
        ("by", Json.Int by);
        ("time", Json.Int time);
        ( "reason",
          Json.String
            (match reason with
            | Dependence -> "dependence"
            | Resource -> "resource") );
      ]
  | Ii_start { ii; attempt; budget } ->
      [
        ("ii", Json.Int ii);
        ("attempt", Json.Int attempt);
        ("budget", Json.Int budget);
      ]
  | Ii_end { ii; scheduled; steps } ->
      [
        ("ii", Json.Int ii);
        ("scheduled", Json.Bool scheduled);
        ("steps", Json.Int steps);
      ]
  | Budget_exhausted { ii; unplaced } ->
      [ ("ii", Json.Int ii); ("unplaced", Json.Int unplaced) ]
  | Job_retry { job; attempt; after } ->
      [
        ("job", Json.Int job);
        ("attempt", Json.Int attempt);
        ("after", Json.String after);
      ]
