type counts = {
  total : int;
  ok : int;
  failed : int;
  timed_out : int;
  cancelled : int;
  retried : int;
}

let zero ~total =
  { total; ok = 0; failed = 0; timed_out = 0; cancelled = 0; retried = 0 }

let completed c = c.ok + c.failed + c.timed_out + c.cancelled

type snapshot = { phase : string; counts : counts; elapsed : float }

let throughput s =
  if s.elapsed <= 0.0 then 0.0
  else float_of_int (completed s.counts) /. s.elapsed

let eta s =
  let done_ = completed s.counts in
  let left = s.counts.total - done_ in
  if done_ = 0 || left <= 0 || s.elapsed <= 0.0 then None
  else Some (float_of_int left *. s.elapsed /. float_of_int done_)

let to_json ?(running = true) s =
  Json.Obj
    ([
       ("phase", Json.String s.phase);
       ("running", Json.Bool running);
       ("total", Json.Int s.counts.total);
       ("done", Json.Int (completed s.counts));
       ("ok", Json.Int s.counts.ok);
       ("failed", Json.Int s.counts.failed);
       ("timed_out", Json.Int s.counts.timed_out);
       ("cancelled", Json.Int s.counts.cancelled);
       ("retried", Json.Int s.counts.retried);
       ("elapsed_s", Json.Float s.elapsed);
       ("throughput", Json.Float (throughput s));
     ]
    @ match eta s with None -> [] | Some e -> [ ("eta_s", Json.Float e) ])

(* Atomic publication: write a sibling temp file, then rename over the
   target.  POSIX rename replaces the destination atomically, so a
   reader opening the path sees either the previous complete snapshot
   or this one — never a torn prefix, even if this process is
   SIGKILLed mid-write (the half-written temp file is simply left
   behind and overwritten by the next heartbeat). *)
let write_atomic ~path contents =
  let tmp = path ^ ".tmp" in
  let oc = open_out tmp in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_string oc contents;
      flush oc);
  Sys.rename tmp path

let progress_line s =
  let c = s.counts in
  let buf = Buffer.create 80 in
  Buffer.add_string buf
    (Printf.sprintf "[%s] %d/%d done" s.phase (completed c) c.total);
  let casualties = c.failed + c.timed_out + c.cancelled in
  if casualties > 0 then
    Buffer.add_string buf (Printf.sprintf " (%d casualties)" casualties);
  if c.retried > 0 then
    Buffer.add_string buf (Printf.sprintf " (%d retried)" c.retried);
  Buffer.add_string buf (Printf.sprintf ", %.1f/s" (throughput s));
  (match eta s with
  | Some e when completed c < c.total ->
      Buffer.add_string buf (Printf.sprintf ", ETA %.0fs" e)
  | _ -> ());
  Buffer.contents buf

type writer = {
  file : string option;
  tty : out_channel option;
  interval : float;
  timer : unit -> float;
  mutable last : float;
  mutable tty_dirty : bool;
}

let writer ?(interval = 1.0) ?file ?tty ~timer () =
  { file; tty; interval; timer; last = neg_infinity; tty_dirty = false }

let publish w ~running s =
  (match w.file with
  | Some path ->
      write_atomic ~path (Json.to_string (to_json ~running s) ^ "\n")
  | None -> ());
  match w.tty with
  | Some oc ->
      (* One carriage-returned line, redrawn in place; [finish] settles
         it with a newline. *)
      output_string oc ("\r\027[K" ^ progress_line s);
      flush oc;
      w.tty_dirty <- true
  | None -> ()

let heartbeat w s =
  let now = w.timer () in
  if now -. w.last >= w.interval then begin
    w.last <- now;
    publish w ~running:true s
  end

let finish w s =
  publish w ~running:false s;
  match w.tty with
  | Some oc when w.tty_dirty ->
      output_char oc '\n';
      flush oc;
      w.tty_dirty <- false
  | _ -> ()
