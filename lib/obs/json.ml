type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

let escape buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let rec to_buffer buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f ->
      if Float.is_finite f then
        (* %.12g is stable, compact, and ample for metric values. *)
        Buffer.add_string buf (Printf.sprintf "%.12g" f)
      else Buffer.add_string buf "null"
  | String s -> escape buf s
  | List xs ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char buf ',';
          to_buffer buf x)
        xs;
      Buffer.add_char buf ']'
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          escape buf k;
          Buffer.add_char buf ':';
          to_buffer buf v)
        fields;
      Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  to_buffer buf v;
  Buffer.contents buf

(* --- parsing ------------------------------------------------------------- *)

exception Bad of string

let of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let fail msg = raise (Bad (Printf.sprintf "%s at offset %d" msg !pos)) in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %c" c)
  in
  let literal word value =
    if !pos + String.length word <= n && String.sub s !pos (String.length word) = word
    then begin
      pos := !pos + String.length word;
      value
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' -> (
          advance ();
          match peek () with
          | Some '"' -> Buffer.add_char buf '"'; advance (); go ()
          | Some '\\' -> Buffer.add_char buf '\\'; advance (); go ()
          | Some '/' -> Buffer.add_char buf '/'; advance (); go ()
          | Some 'n' -> Buffer.add_char buf '\n'; advance (); go ()
          | Some 'r' -> Buffer.add_char buf '\r'; advance (); go ()
          | Some 't' -> Buffer.add_char buf '\t'; advance (); go ()
          | Some 'b' -> Buffer.add_char buf '\b'; advance (); go ()
          | Some 'f' -> Buffer.add_char buf '\012'; advance (); go ()
          | Some 'u' ->
              advance ();
              if !pos + 4 > n then fail "truncated \\u escape";
              let code = int_of_string ("0x" ^ String.sub s !pos 4) in
              pos := !pos + 4;
              (* Escapes this module emits are all < 0x80; decode the
                 rest as best-effort UTF-8. *)
              if code < 0x80 then Buffer.add_char buf (Char.chr code)
              else if code < 0x800 then begin
                Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
                Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
              end
              else begin
                Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
                Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
                Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
              end;
              go ()
          | _ -> fail "bad escape")
      | Some c ->
          Buffer.add_char buf c;
          advance ();
          go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let is_float = ref false in
    let rec go () =
      match peek () with
      | Some ('0' .. '9' | '-' | '+') ->
          advance ();
          go ()
      | Some ('.' | 'e' | 'E') ->
          is_float := true;
          advance ();
          go ()
      | _ -> ()
    in
    go ();
    let text = String.sub s start (!pos - start) in
    if !is_float then
      match float_of_string_opt text with
      | Some f -> Float f
      | None -> fail "bad number"
    else
      match int_of_string_opt text with
      | Some i -> Int i
      | None -> fail "bad number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some 'n' -> literal "null" Null
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some '"' -> String (parse_string ())
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          List []
        end
        else begin
          let rec elems acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                elems (v :: acc)
            | Some ']' ->
                advance ();
                List.rev (v :: acc)
            | _ -> fail "expected , or ]"
          in
          List (elems [])
        end
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let field () =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            (k, v)
          in
          let rec fields acc =
            let f = field () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                fields (f :: acc)
            | Some '}' ->
                advance ();
                List.rev (f :: acc)
            | _ -> fail "expected , or }"
          in
          Obj (fields [])
        end
    | Some c -> fail (Printf.sprintf "unexpected character %c" c)
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Bad msg -> Error msg
