(** A small leveled logger for the CLIs and the execution engine —
    replaces ad-hoc [Printf.eprintf] so diagnostics share one threshold,
    one prefix discipline, and an optional machine-readable JSONL sink.

    A logger owns a fixed [tag] (the component name) and renders to up
    to two sinks: a {e human} channel (one prefixed line per message,
    flushed) and a {e JSONL} channel
    ([{"ts":…,"level":…,"tag":…,"msg":…}] per line, flushed — the same
    {!Json} serialisation the traces use).  With no sink attached every
    call is a cheap no-op, like {!Trace.null}.

    This module stays dependency-free: timestamps come from an injected
    [timer] (pass [Unix.gettimeofday] from CLIs; the default clock is
    the constant 0, keeping accidental nondeterminism out of tests). *)

type level = Debug | Info | Warn | Error

val severity : level -> int
(** [Debug 0 … Error 3]; messages below the threshold are dropped. *)

val level_name : level -> string
val level_of_string : string -> level option

(** Human-line prefix style: [Bracket] renders ["[tag] msg"] (the bench
    harness's historical form), [Colon] renders ["tag: msg"] (the imsc
    CLI's).  Warn/error additionally carry a ["warning: "]/["error: "]
    mark after the prefix. *)
type style = Bracket | Colon

type t

val null : t
(** No sinks: every emission is a branch and nothing else. *)

val create :
  ?threshold:level ->
  ?style:style ->
  ?human:out_channel ->
  ?timer:(unit -> float) ->
  tag:string ->
  unit ->
  t
(** [threshold] defaults to [Info]; [style] to [Colon]; no sinks unless
    [human] is given or {!attach_jsonl} is called. *)

val set_threshold : t -> level -> unit

val attach_jsonl : t -> out_channel -> unit
(** Adds a JSONL sink; the caller owns (and closes) the channel. *)

val would_log : t -> level -> bool
(** True iff a message at [level] would reach at least one sink — guard
    expensive message construction with this. *)

val logf : t -> level -> ('a, unit, string, unit) format4 -> 'a
val debug : t -> ('a, unit, string, unit) format4 -> 'a
val info : t -> ('a, unit, string, unit) format4 -> 'a
val warn : t -> ('a, unit, string, unit) format4 -> 'a
val error : t -> ('a, unit, string, unit) format4 -> 'a
