(** Trace serialisation.

    Two formats over the same event list:

    - {!jsonl}: one JSON object per line —
      [{"seq":12,"event":"place","op":5,"time":4,...}] — greppable and
      diffable, the format of choice for suite-wide regression
      artifacts.
    - {!chrome}: the Chrome [trace_event] format
      ([{"traceEvents":[...]}]), loadable directly into
      [chrome://tracing] or {{:https://ui.perfetto.dev}Perfetto}.  Spans
      become ["B"]/["E"] duration events, everything else instant
      events with the payload under ["args"].

    Timestamps are the logical sequence numbers (as microseconds in the
    Chrome form), so serialising the same schedule twice yields the same
    bytes. *)

val jsonl : Buffer.t -> Event.t list -> unit
val jsonl_string : Event.t list -> string

val chrome :
  ?process_name:string -> ?thread_name:string -> Buffer.t -> Event.t list -> unit
(** The trace is prefixed with [process_name]/[thread_name] metadata
    events (defaults ["imsc"]/["scheduler"]) so Perfetto labels the
    track instead of showing bare pid 1 / tid 1. *)

val chrome_string :
  ?process_name:string -> ?thread_name:string -> Event.t list -> string
