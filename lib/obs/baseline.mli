(** The perf-regression gate: diff a bench run summary (the
    [--bench-json] snapshot, e.g. [BENCH_4.json]) against a baseline
    snapshot from an earlier PR, and name every metric that regressed
    past its tolerance.

    Three metric families, two tolerances:

    - {e counters} (total table 4 step counts) and the
      {e II histogram}'s frequency-weighted mean are deterministic for
      a given suite, so they are gated by the tight [tolerance]
      (default 10%);
    - {e phase seconds} are wall clock on whatever machine ran the
      bench, so they are gated by the loose [time_tolerance] (default
      300%) — set it from CI to whatever the runner noise demands;
    - the {e fleet throughput} ([fleet.loops_per_s], loops scheduled
      per second by the multi-process fleet phase) is also wall clock
      and takes [time_tolerance], inverted (lower is worse) — and only
      when the fleet run shape (corpus size, worker count) matches the
      baseline's.

    A [suite_count] mismatch (or a different total loop count in the
    histogram) makes the numbers incomparable and is itself reported as
    the sole regression.  Metrics present only in the current snapshot
    are ignored — a baseline can only constrain what it measured. *)

type regression = {
  metric : string;  (** e.g. ["counters.mindist"], ["phase.measure (table 3).seconds"]. *)
  baseline : float;
  current : float;
  limit : float;  (** The value [current] was allowed to reach. *)
}

val describe : regression -> string
(** One line: ["counters.mindist: 123456 vs baseline 98651 (limit 108516, +25.1%)"]. *)

val compare_snapshots :
  ?tolerance:float ->
  ?time_tolerance:float ->
  baseline:Json.t ->
  current:Json.t ->
  unit ->
  regression list
(** Empty means the gate passes.  Tolerances are fractions (0.10 =
    10%). *)
