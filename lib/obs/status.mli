(** Live run status: a heartbeat file a monitor can poll while a long
    batch runs, and a TTY progress line for humans — the seed of a
    future daemon's health endpoint.

    The contract that matters is {e torn-freedom}: {!write_atomic}
    publishes by writing a sibling temp file and renaming it over the
    target, so a reader always parses a complete JSON snapshot — even
    if the writing process is SIGKILLed mid-heartbeat, the path holds
    the previous complete snapshot.  (The final snapshot additionally
    carries ["running":false], so a monitor can distinguish "finished"
    from "died between heartbeats" by staleness.)

    A {!writer} rate-limits publication to one heartbeat per [interval]
    (by the injected timer — this module stays dependency-free; pass
    [Unix.gettimeofday]); {!finish} always publishes. *)

type counts = {
  total : int;
  ok : int;
  failed : int;
  timed_out : int;
  cancelled : int;
  retried : int;
}

val zero : total:int -> counts
val completed : counts -> int
(** [ok + failed + timed_out + cancelled] — jobs off the queue. *)

type snapshot = { phase : string; counts : counts; elapsed : float }

val throughput : snapshot -> float
(** Completed jobs per second ([0.] before the clock moves). *)

val eta : snapshot -> float option
(** Remaining seconds, linearly extrapolated; [None] until at least one
    job completes (or when nothing remains). *)

val to_json : ?running:bool -> snapshot -> Json.t

val write_atomic : path:string -> string -> unit
(** Write [contents] to [path] via temp-file-plus-rename. *)

val progress_line : snapshot -> string
(** One human line: ["[phase] 42/300 done, 12.3/s, ETA 21s"], with
    casualty/retry counts when nonzero. *)

type writer

val writer :
  ?interval:float ->
  ?file:string ->
  ?tty:out_channel ->
  timer:(unit -> float) ->
  unit ->
  writer
(** [interval] defaults to 1s.  [file] receives atomic JSON snapshots;
    [tty] receives a carriage-returned progress line (pass stderr only
    when it is a terminal). *)

val heartbeat : writer -> snapshot -> unit
(** Publish, rate-limited to one per interval. *)

val finish : writer -> snapshot -> unit
(** Publish unconditionally with ["running":false]; settles the TTY
    line with a newline. *)
