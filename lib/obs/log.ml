type level = Debug | Info | Warn | Error

let severity = function Debug -> 0 | Info -> 1 | Warn -> 2 | Error -> 3
let level_name = function
  | Debug -> "debug"
  | Info -> "info"
  | Warn -> "warn"
  | Error -> "error"

let level_of_string = function
  | "debug" -> Some Debug
  | "info" -> Some Info
  | "warn" | "warning" -> Some Warn
  | "error" -> Some Error
  | _ -> None

type style = Bracket | Colon

type t = {
  tag : string;
  style : style;
  mutable threshold : level;
  mutable human : out_channel option;
  mutable jsonl : out_channel option;
  timer : unit -> float;
}

let null =
  { tag = ""; style = Colon; threshold = Error; human = None; jsonl = None;
    timer = (fun () -> 0.0) }

let create ?(threshold = Info) ?(style = Colon) ?human
    ?(timer = fun () -> 0.0) ~tag () =
  { tag; style; threshold; human; jsonl = None; timer }

let set_threshold t level = t.threshold <- level
let attach_jsonl t oc = t.jsonl <- Some oc

let would_log t level =
  (t.human <> None || t.jsonl <> None) && severity level >= severity t.threshold

let render_human t level msg =
  let prefix =
    match t.style with
    | Bracket -> Printf.sprintf "[%s] " t.tag
    | Colon -> Printf.sprintf "%s: " t.tag
  in
  let severity_mark =
    match level with Warn -> "warning: " | Error -> "error: " | _ -> ""
  in
  prefix ^ severity_mark ^ msg

let emit t level msg =
  if would_log t level then begin
    (match t.human with
    | Some oc ->
        output_string oc (render_human t level msg);
        output_char oc '\n';
        flush oc
    | None -> ());
    match t.jsonl with
    | Some oc ->
        output_string oc
          (Json.to_string
             (Json.Obj
                [
                  ("ts", Json.Float (t.timer ()));
                  ("level", Json.String (level_name level));
                  ("tag", Json.String t.tag);
                  ("msg", Json.String msg);
                ]));
        output_char oc '\n';
        flush oc
    | None -> ()
  end

let logf t level fmt = Printf.ksprintf (fun msg -> emit t level msg) fmt
let debug t fmt = logf t Debug fmt
let info t fmt = logf t Info fmt
let warn t fmt = logf t Warn fmt
let error t fmt = logf t Error fmt
