(** A minimal JSON tree: enough to serialise traces and metrics and to
    parse them back in tests — deliberately tiny so that [ims_obs] stays
    dependency-free.

    Serialisation is deterministic: object fields are emitted in the
    order given, numbers through fixed format strings, and no
    whitespace — two structurally equal values always render to the same
    bytes. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float  (** Non-finite floats serialise as [null]. *)
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_buffer : Buffer.t -> t -> unit
val to_string : t -> string

val of_string : string -> (t, string) result
(** A strict parser for the subset this module emits (standard JSON
    minus exponent-heavy corner cases it never produces — though
    [1e9]-style literals do parse).  Numbers without [.], [e] or [E]
    become [Int], everything else [Float]. *)
