type t = {
  enabled : bool;
  time_spans : bool;  (** record span wall time even with events off *)
  mutable rev_events : Event.t list;
  mutable next_seq : int;
  timer : unit -> float;
  spans : (string, int * float) Hashtbl.t;  (** completed count, total s *)
}

let null =
  {
    enabled = false;
    time_spans = false;
    rev_events = [];
    next_seq = 0;
    timer = (fun () -> 0.0);
    spans = Hashtbl.create 1;
  }

let create ?(timer = Sys.time) () =
  {
    enabled = true;
    time_spans = true;
    rev_events = [];
    next_seq = 0;
    timer;
    spans = Hashtbl.create 16;
  }

let timer_only ?(timer = Sys.time) () =
  {
    enabled = false;
    time_spans = true;
    rev_events = [];
    next_seq = 0;
    timer;
    spans = Hashtbl.create 16;
  }

let enabled t = t.enabled
let times_spans t = t.time_spans

let emit t payload =
  if t.enabled then begin
    t.rev_events <- { Event.seq = t.next_seq; payload } :: t.rev_events;
    t.next_seq <- t.next_seq + 1
  end

let place t ~op ~time ~alt ~estart ~forced =
  if t.enabled then emit t (Event.Place { op; time; alt; estart; forced })

let evict t ~op ~by ~time ~reason =
  if t.enabled then emit t (Event.Evict { op; by; time; reason })

let ii_start t ~ii ~attempt ~budget =
  if t.enabled then emit t (Event.Ii_start { ii; attempt; budget })

let ii_end t ~ii ~scheduled ~steps =
  if t.enabled then emit t (Event.Ii_end { ii; scheduled; steps })

let budget_exhausted t ~ii ~unplaced =
  if t.enabled then emit t (Event.Budget_exhausted { ii; unplaced })

let instant t name = if t.enabled then emit t (Event.Instant { name })

let with_span t name f =
  if not (t.enabled || t.time_spans) then f ()
  else begin
    if t.enabled then emit t (Event.Span_begin { name });
    let t0 = t.timer () in
    Fun.protect
      ~finally:(fun () ->
        let dt = t.timer () -. t0 in
        let count, total =
          Option.value ~default:(0, 0.0) (Hashtbl.find_opt t.spans name)
        in
        Hashtbl.replace t.spans name (count + 1, total +. dt);
        if t.enabled then emit t (Event.Span_end { name }))
      f
  end

let events t = List.rev t.rev_events

let absorb dst src =
  if dst.enabled then
    List.iter (fun (e : Event.t) -> emit dst e.Event.payload) (List.rev src.rev_events);
  if dst.enabled || dst.time_spans then
    Hashtbl.iter
      (fun name (count, total) ->
        let count0, total0 =
          Option.value ~default:(0, 0.0) (Hashtbl.find_opt dst.spans name)
        in
        Hashtbl.replace dst.spans name (count0 + count, total0 +. total))
      src.spans

let span_times t =
  Hashtbl.fold (fun name v acc -> (name, v) :: acc) t.spans []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let record_span_times t m =
  List.iter
    (fun (name, (count, total)) ->
      Metrics.incr ~by:count (Metrics.counter m ("span." ^ name ^ ".count"));
      Metrics.set (Metrics.gauge m ("span." ^ name ^ ".seconds")) total)
    (span_times t)
