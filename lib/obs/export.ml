let jsonl buf events =
  List.iter
    (fun (e : Event.t) ->
      Json.to_buffer buf
        (Json.Obj
           (("seq", Json.Int e.seq)
           :: ("event", Json.String (Event.name e.payload))
           :: Event.args e.payload));
      Buffer.add_char buf '\n')
    events

let chrome_event (e : Event.t) =
  let common name ph =
    [
      ("name", Json.String name);
      ("ph", Json.String ph);
      ("ts", Json.Int e.seq);
      ("pid", Json.Int 1);
      ("tid", Json.Int 1);
    ]
  in
  match e.payload with
  | Event.Span_begin { name } -> Json.Obj (common name "B" @ [ ("cat", Json.String "phase") ])
  | Event.Span_end { name } -> Json.Obj (common name "E" @ [ ("cat", Json.String "phase") ])
  | payload ->
      Json.Obj
        (common (Event.name payload) "i"
        @ [
            ("cat", Json.String "sched");
            ("s", Json.String "t");
            ("args", Json.Obj (Event.args payload));
          ])

(* The trace_event "M" (metadata) records that make Perfetto label the
   track with real names instead of bare pid/tid numbers. *)
let chrome_metadata ~process_name ~thread_name =
  let meta name ~tid value =
    Json.Obj
      ([ ("name", Json.String name); ("ph", Json.String "M");
         ("pid", Json.Int 1) ]
      @ (if tid then [ ("tid", Json.Int 1) ] else [])
      @ [ ("args", Json.Obj [ ("name", Json.String value) ]) ])
  in
  [
    meta "process_name" ~tid:false process_name;
    meta "thread_name" ~tid:true thread_name;
  ]

let chrome ?(process_name = "imsc") ?(thread_name = "scheduler") buf events =
  Buffer.add_string buf "{\"traceEvents\":[";
  List.iteri
    (fun i e ->
      Buffer.add_string buf (if i = 0 then "\n" else ",\n");
      Json.to_buffer buf e)
    (chrome_metadata ~process_name ~thread_name
    @ List.map chrome_event events);
  Buffer.add_string buf "\n],\"displayTimeUnit\":\"ms\"}\n"

let with_buffer f events =
  let buf = Buffer.create 4096 in
  f buf events;
  Buffer.contents buf

let jsonl_string = with_buffer jsonl

let chrome_string ?process_name ?thread_name events =
  with_buffer (chrome ?process_name ?thread_name) events
