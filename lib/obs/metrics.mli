(** A unified metrics registry: named counters, gauges and histograms.

    One registry per measurement scope (a loop, a suite run, a whole
    process); instruments are registered on first use and are cheap to
    hold — bumping a counter is one mutable-field update, so a hot loop
    can register once outside and increment inside.

    Readout ({!to_assoc}, {!to_json}, {!pp}) is sorted by name, so the
    output order is independent of registration order — deterministic
    like everything else in this repository. *)

type t

type counter
type gauge
type histogram

type value =
  | Counter of int
  | Gauge of float
  | Histogram of { count : int; sum : float; min : float; max : float }

val create : unit -> t

val counter : t -> string -> counter
(** Registers (or retrieves) the counter [name].
    @raise Invalid_argument if [name] is registered as another kind. *)

val incr : ?by:int -> counter -> unit
val counter_value : counter -> int

val gauge : t -> string -> gauge
val set : gauge -> float -> unit
val set_int : gauge -> int -> unit

val histogram : t -> string -> histogram
val observe : histogram -> float -> unit

val to_assoc : t -> (string * value) list
(** All instruments, sorted by name. *)

val to_json : t -> Json.t
(** Counters as integers, gauges as numbers, histograms as
    [{"count":..,"sum":..,"min":..,"max":..}] objects; fields sorted. *)

val pp : Format.formatter -> t -> unit
(** One [name = value] line per instrument, sorted. *)
