(** The structured-event vocabulary of the scheduler trace.

    Every observable decision of the compilation pipeline is one of
    these payloads, stamped with a monotonically increasing sequence
    number by the {!Trace} that buffers it.  Timestamps in exported
    traces are {e logical} (the sequence number), which is what makes
    two runs on the same input byte-identical; wall-clock phase timings
    live in {!Trace.span_times}, outside the event stream. *)

type evict_reason =
  | Dependence  (** A predecessor moved under the operation (figure 3). *)
  | Resource  (** Displaced by a forced placement (section 3.4). *)

type payload =
  | Span_begin of { name : string }  (** A pipeline phase opens. *)
  | Span_end of { name : string }
  | Instant of { name : string }  (** A point annotation. *)
  | Place of { op : int; time : int; alt : int; estart : int; forced : bool }
      (** Operation [op] committed to slot [time] on alternative [alt];
          [estart] is the Estart that opened its search window.  With
          [forced] the slot was taken by displacement (the event is
          exported as ["force"], otherwise ["place"]). *)
  | Evict of { op : int; by : int; time : int; reason : evict_reason }
      (** [op] was unscheduled from slot [time] on behalf of [by]. *)
  | Ii_start of { ii : int; attempt : int; budget : int }
      (** IterativeSchedule begins at candidate [ii]. *)
  | Ii_end of { ii : int; scheduled : bool; steps : int }
  | Budget_exhausted of { ii : int; unplaced : int }
      (** The budget ran out with [unplaced] operations unscheduled —
          always followed by [Ii_end { scheduled = false; _ }]. *)
  | Job_retry of { job : int; attempt : int; after : string }
      (** The batch engine re-runs job [job] (this is attempt [attempt],
          1-based) after a previous attempt ended in state [after]
          ({!Outcome.status}: ["failed"], ["timed_out"], ["cancelled"]).
          Emitted into the retrying attempt's own shard. *)

type t = { seq : int; payload : payload }

val name : payload -> string
(** The export name: ["span_begin"], ["place"], ["force"], ["evict"],
    ["ii_start"], ... *)

val args : payload -> (string * Json.t) list
(** The payload's fields, in a fixed order, for exporters. *)
