let pp ?(op_name = fun i -> Printf.sprintf "op %d" i) ppf events =
  let depth = ref 0 in
  let indent () = String.make (2 * !depth) ' ' in
  let line fmt = Format.fprintf ppf ("%s" ^^ fmt ^^ "@.") (indent ()) in
  List.iter
    (fun (e : Event.t) ->
      match e.payload with
      | Event.Span_begin { name } ->
          line "[%s]" name;
          incr depth
      | Event.Span_end _ -> if !depth > 0 then decr depth
      | Event.Instant { name } -> line "note: %s" name
      | Event.Ii_start { ii; attempt; budget } ->
          line "trying II=%d (attempt %d, budget %d steps)" ii attempt budget
      | Event.Ii_end { ii; scheduled; steps } ->
          if scheduled then line "II=%d scheduled in %d steps" ii steps
          else line "II=%d failed after %d steps" ii steps
      | Event.Budget_exhausted { ii; unplaced } ->
          line "budget exhausted at II=%d with %d operations unplaced" ii
            unplaced
      | Event.Job_retry { job; attempt; after } ->
          line "retry job %d (attempt %d, previous attempt %s)" job attempt
            after
      | Event.Place { op; time; alt; estart; forced } ->
          if forced then
            line "force %s into t=%d (alt %d, Estart %d)" (op_name op) time alt
              estart
          else
            line "place %s at t=%d (alt %d, Estart %d)" (op_name op) time alt
              estart
      | Event.Evict { op; by; time; reason } ->
          line "  evict %s from t=%d (%s conflict with %s)" (op_name op) time
            (match reason with
            | Event.Dependence -> "dependence"
            | Event.Resource -> "resource")
            (op_name by))
    events
