(** The run-level profile: aggregated telemetry across the jobs of one
    batch (or one loop's run, degenerately).

    Per-job inputs — phase spans from {!Trace.span_times}, step counters
    as an assoc list, and the job's wall-clock seconds — fold into:

    - {e phases}: completed-span count and total seconds per phase name,
      the run's wall-time attribution;
    - {e counters}: the field-wise total plus the per-job maximum (the
      "no loop regressed past this ceiling" number);
    - {e series}: named sample sets summarized with nearest-rank
      percentiles (the per-job latency lands in {!latency_series};
      callers may add more, e.g. the achieved II per loop).

    Counter totals/maxima and sample series depend only on the job set,
    so they are byte-identical at any worker count; phase and latency
    seconds are wall clock and are not.  All readout is sorted by name.

    Accumulation is single-threaded: the execution engine folds each
    job's shard in after the pool barrier, never from worker domains. *)

type t

val create : unit -> t

val latency_series : string
(** The series name under which {!add_job} records each job's seconds. *)

val add_phase : t -> string -> count:int -> seconds:float -> unit
val add_counters : t -> (string * int) list -> unit
(** Folds each [(name, v)]: total [+= v], per-job maximum [max]'d. *)

val add_sample : t -> string -> float -> unit

val add_job :
  t ->
  ?spans:(string * (int * float)) list ->
  ?counters:(string * int) list ->
  seconds:float ->
  unit ->
  unit
(** One job's telemetry: spans fold into phases, counters into
    totals/maxima, [seconds] into the {!latency_series}. *)

val jobs : t -> int

(** {2 Percentiles} *)

val percentile : float list -> float -> float option
(** Nearest-rank percentile, [q] in [0,1]: [None] on the empty list; a
    single sample answers every [q]; all-equal samples answer that
    value. *)

type summary = {
  count : int;
  sum : float;
  mean : float;
  min : float;
  max : float;
  p50 : float;
  p90 : float;
  p99 : float;
}

val summarize : float list -> summary option
(** [None] iff the list is empty. *)

(** {2 Readout (sorted by name)} *)

val phases : t -> (string * (int * float)) list
val counters : t -> (string * int * int) list
(** [(name, total, per-job max)]. *)

val series : t -> (string * summary) list

val to_json : t -> Json.t
(** [{"jobs":N,"phases":[{"name","count","seconds"}…],
    "counters":[{"name","total","max"}…],
    "series":[{"name","count","sum","mean","min","max","p50","p90","p99"}…]}] *)
