(** Cooperative cancellation tokens.

    A token is either {!null} — permanently disabled, a {!poll} is a
    single pattern-match branch, same discipline as {!Trace.null} — or
    a real token created by {!create} carrying an atomic cancel flag,
    an optional wall-clock deadline, and an optional deterministic poll
    cap.  Library code takes a token (defaulting to [null]) and calls
    {!poll} at its existing budget-decrement sites; when the token has
    fired, [poll] raises {!Cancelled}, preempting the search mid-II.

    Preemption is {e cooperative}: OCaml domains cannot be interrupted,
    so a deadline only takes effect at the next poll site.  The clock
    is read every [stride] polls (default {!default_stride}), not on
    every poll, so the cost of an armed token on the scheduler's inner
    loop stays one or two loads per decision.

    Tokens may be chained: a child created with [~parent] also fires
    when the parent's flag is set — this is how a run-level fail-fast
    gate ([imsc batch --max-failures]) cancels every outstanding job
    through the per-job tokens.

    [max_polls] fires after a fixed number of polls regardless of the
    clock.  That is deterministic — the same input cancels at exactly
    the same search state on every run — which is what the
    no-state-leak tests rely on. *)

type t

exception Cancelled of { elapsed : float; limit : float }
(** Raised by {!poll} once the token has fired.  [elapsed] is seconds
    since token creation by the token's timer; [limit] is the deadline
    ([infinity] when the token fired for another reason: explicit
    {!cancel}, parent, or [max_polls]). *)

val null : t
(** The disabled token: [poll null] is a no-op forever. *)

val default_stride : int
(** 64 — clock reads per poll on armed tokens. *)

val create :
  ?timer:(unit -> float) ->
  ?parent:t ->
  ?stride:int ->
  ?deadline:float ->
  ?max_polls:int ->
  unit ->
  t
(** An armed token.  [timer] (default [Sys.time]) feeds the deadline
    check and the [elapsed] of {!Cancelled}; inject a wall clock
    ([Unix.gettimeofday]) for real deadlines.  [deadline] is seconds
    from creation; absent means no time limit.  [max_polls] fires the
    token deterministically after that many polls; absent means no poll
    cap.  [parent] links this token to another's flag ([null] parents
    are ignored). *)

val cancel : t -> unit
(** Set the flag; every subsequent {!poll} of this token (or of a child
    token) raises.  Safe from any domain.  No-op on [null]. *)

val cancelled : t -> bool
(** The flag (own or parent's) without raising — a pre-start check. *)

val poll : t -> unit
(** One branch on [null].  On an armed token: count the poll, check the
    flags, check [max_polls], and every [stride] polls read the clock
    against the deadline; raise {!Cancelled} if any fired. *)

val polls : t -> int
(** Polls so far (0 for [null]) — for tests and telemetry. *)

val deadline : t -> float option
(** The deadline in seconds, when one was set. *)
