(* The run-level profile: a mutable accumulator that merges per-job
   telemetry (phase spans, step counters, wall-clock latency) into one
   JSON artifact.  Counter totals, maxima and sample series are
   deterministic across worker counts (they depend only on the job set);
   phase and latency seconds are wall clock and are not. *)

type series = { mutable samples : int; mutable rev_values : float list }

type t = {
  mutable jobs : int;
  phases : (string, int * float) Hashtbl.t;
  totals : (string, int) Hashtbl.t;
  maxima : (string, int) Hashtbl.t;
  series : (string, series) Hashtbl.t;
}

let latency_series = "job.seconds"

let create () =
  {
    jobs = 0;
    phases = Hashtbl.create 16;
    totals = Hashtbl.create 16;
    maxima = Hashtbl.create 16;
    series = Hashtbl.create 16;
  }

let add_phase t name ~count ~seconds =
  let count0, seconds0 =
    Option.value ~default:(0, 0.0) (Hashtbl.find_opt t.phases name)
  in
  Hashtbl.replace t.phases name (count0 + count, seconds0 +. seconds)

let add_counters t kvs =
  List.iter
    (fun (name, v) ->
      Hashtbl.replace t.totals name
        (v + Option.value ~default:0 (Hashtbl.find_opt t.totals name));
      Hashtbl.replace t.maxima name
        (max v (Option.value ~default:min_int (Hashtbl.find_opt t.maxima name))))
    kvs

let add_sample t name v =
  let s =
    match Hashtbl.find_opt t.series name with
    | Some s -> s
    | None ->
        let s = { samples = 0; rev_values = [] } in
        Hashtbl.add t.series name s;
        s
  in
  s.samples <- s.samples + 1;
  s.rev_values <- v :: s.rev_values

let add_job t ?(spans = []) ?(counters = []) ~seconds () =
  t.jobs <- t.jobs + 1;
  List.iter (fun (name, (count, total)) -> add_phase t name ~count ~seconds:total) spans;
  add_counters t counters;
  add_sample t latency_series seconds

let jobs t = t.jobs

(* --- percentiles ----------------------------------------------------------- *)

(* Nearest-rank on the sorted samples: the smallest sample such that at
   least q of the distribution is at or below it.  Total by
   construction: one sample answers every q, all-equal samples answer
   that value, and the empty set has no percentiles at all. *)
let percentile_sorted sorted q =
  let n = Array.length sorted in
  if n = 0 then None
  else
    let rank = int_of_float (Float.ceil (q *. float_of_int n)) in
    Some sorted.(min (n - 1) (max 0 (rank - 1)))

let percentile values q =
  let sorted = Array.of_list values in
  Array.sort compare sorted;
  percentile_sorted sorted q

type summary = {
  count : int;
  sum : float;
  mean : float;
  min : float;
  max : float;
  p50 : float;
  p90 : float;
  p99 : float;
}

let summarize values =
  let sorted = Array.of_list values in
  Array.sort compare sorted;
  let n = Array.length sorted in
  if n = 0 then None
  else
    let sum = Array.fold_left ( +. ) 0.0 sorted in
    let pct q =
      match percentile_sorted sorted q with Some v -> v | None -> assert false
    in
    Some
      {
        count = n;
        sum;
        mean = sum /. float_of_int n;
        min = sorted.(0);
        max = sorted.(n - 1);
        p50 = pct 0.5;
        p90 = pct 0.9;
        p99 = pct 0.99;
      }

(* --- readout --------------------------------------------------------------- *)

let sorted_bindings tbl =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let phases t = sorted_bindings t.phases

let counters t =
  List.map
    (fun (name, total) ->
      (name, total, Option.value ~default:total (Hashtbl.find_opt t.maxima name)))
    (sorted_bindings t.totals)

let series t =
  List.filter_map
    (fun (name, (s : series)) ->
      Option.map (fun sum -> (name, sum)) (summarize s.rev_values))
    (sorted_bindings t.series)

let summary_to_json s =
  Json.Obj
    [
      ("count", Json.Int s.count);
      ("sum", Json.Float s.sum);
      ("mean", Json.Float s.mean);
      ("min", Json.Float s.min);
      ("max", Json.Float s.max);
      ("p50", Json.Float s.p50);
      ("p90", Json.Float s.p90);
      ("p99", Json.Float s.p99);
    ]

let to_json t =
  Json.Obj
    [
      ("jobs", Json.Int t.jobs);
      ( "phases",
        Json.List
          (List.map
             (fun (name, (count, seconds)) ->
               Json.Obj
                 [
                   ("name", Json.String name);
                   ("count", Json.Int count);
                   ("seconds", Json.Float seconds);
                 ])
             (phases t)) );
      ( "counters",
        Json.List
          (List.map
             (fun (name, total, max_) ->
               Json.Obj
                 [
                   ("name", Json.String name);
                   ("total", Json.Int total);
                   ("max", Json.Int max_);
                 ])
             (counters t)) );
      ( "series",
        Json.List
          (List.map
             (fun (name, s) ->
               Json.Obj
                 (("name", Json.String name) ::
                  (match summary_to_json s with
                  | Json.Obj kvs -> kvs
                  | _ -> assert false)))
             (series t)) );
    ]
