(** Instrumentation counters for the complexity study (paper table 4).

    Each counter records how many times the innermost loop of one
    sub-activity executed; the benchmark harness regresses them against
    the number of operations N to reproduce the paper's empirical
    complexity fits.

    This record predates the general {!Ims_obs.Metrics} registry and is
    kept as-is so that table 4 reproduction stays untouched; {!record}
    bridges it into a registry under the ["counters."] namespace.  A
    single internal field table is the source of truth for field names
    and order: {!names}, {!to_assoc}, {!of_assoc}, {!merge}, {!pp} and
    {!record} all derive from it, so the canonical key list appears in
    exactly one place. *)

type t = {
  mutable scc_steps : int;  (** SCC identification: vertices+edges touched. *)
  mutable resmii_steps : int;  (** Alternatives inspected by ResMII. *)
  mutable mindist_inner : int;
      (** Innermost (k,i,j) iterations of ComputeMinDist. *)
  mutable mindist_calls : int;
  mutable mindist_inc : int;
      (** Pivot-row relaxations of the incremental cross-II MinDist
          solver ({!Mindist.solve}) — the per-candidate-II work that
          replaces a from-scratch [mindist_inner] recomputation. *)
  mutable heightr_inner : int;  (** Relaxation steps of HeightR. *)
  mutable estart_inner : int;  (** Predecessors examined by Estart. *)
  mutable findslot_inner : int;  (** Time slots examined by FindTimeSlot. *)
  mutable mrt_bitprobe : int;
      (** MRT admission probes answered through the bitboard planes
          rather than the per-cell count walk. *)
  mutable sched_steps : int;
      (** Operation scheduling steps, over all candidate IIs. *)
  mutable sched_steps_final : int;
      (** Operation scheduling steps at the successful II only. *)
}

val create : unit -> t

val reset : t -> unit
(** Zeroes every field, so one record can be reused across loops. *)

val add : t -> t -> unit
(** [add acc c] accumulates [c] into [acc]. *)

val merge : t list -> t
(** A fresh record holding the field-wise sum — the reduction step for
    per-worker counter shards after a parallel run.  Built on the field
    table, so it tracks the field list automatically. *)

val names : string list
(** The canonical field names in declaration order — the keys of
    {!to_assoc} and the order every serialised counter object uses. *)

val to_assoc : t -> (string * int) list
(** [(field name, value)] in declaration order — the names {!pp} prints
    and {!record} registers. *)

val of_assoc : (string * int) list -> t
(** Inverse of {!to_assoc}: missing keys default to 0, unknown keys are
    ignored.  The decode half of snapshot/journal round-trips. *)

val record : Ims_obs.Metrics.t -> t -> unit
(** Adds every field into the registry as counter ["counters.NAME"]. *)

val pp : Format.formatter -> t -> unit
