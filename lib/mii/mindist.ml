open Ims_ir

let neg_inf = min_int / 4

type t = {
  ii : int;
  nodes : int array;
  index : int array;
  m : int;
  dist : int array;  (* m * m, row-major *)
}

(* Reusable buffers for the matrix and the inverse index.  Both
   Recmii's feasibility search and the per-II attempt loops of the
   schedulers re-run ComputeMinDist with different IIs; a scratch lets
   each re-run reuse the previous allocation.  A [t] computed through a
   scratch borrows these buffers — it is invalidated by the next
   [compute] on the same scratch. *)
type scratch = { mutable s_dist : int array; mutable s_index : int array }

let scratch () = { s_dist = [||]; s_index = [||] }

let dist_buffer scratch ~cells =
  match scratch with
  | None -> Array.make cells neg_inf
  | Some s ->
      if Array.length s.s_dist < cells then s.s_dist <- Array.make cells neg_inf
      else Array.fill s.s_dist 0 cells neg_inf;
      s.s_dist

let index_buffer scratch ~n =
  match scratch with
  | None -> Array.make n (-1)
  | Some s ->
      if Array.length s.s_index < n then s.s_index <- Array.make n (-1)
      else Array.fill s.s_index 0 n (-1);
      s.s_index

(* --- the max-plus closure core ------------------------------------------- *)

(* Parallel-closure knobs.  Defaults keep every closure on the serial
   path, so nothing changes — values or counters — unless a driver
   opts in ([bench --closure-jobs], [imsc schedule --closure-jobs]). *)
let par_jobs = ref 1
let par_threshold = ref 64

let set_parallel ~jobs ~threshold =
  par_jobs := max 1 jobs;
  par_threshold := max 1 threshold

let closure_serial dist ~m =
  let inner = ref 0 in
  for k = 0 to m - 1 do
    let kbase = k * m in
    for i = 0 to m - 1 do
      let ibase = i * m in
      let dik = dist.(ibase + k) in
      if dik > neg_inf then begin
        (* One bump per j-iteration, exactly as the nested-loop form. *)
        inner := !inner + m;
        for j = 0 to m - 1 do
          let dkj = dist.(kbase + j) in
          if dkj > neg_inf && dik + dkj > dist.(ibase + j) then
            dist.(ibase + j) <- dik + dkj
        done
      end
    done
  done;
  !inner

(* Blocked (tiled) Floyd-Warshall, parallel across independent tiles.

   For each pivot block K, in order: (1) close the diagonal tile (K,K)
   serially; (2) relax the row panel (K,.) and column panel (.,K) —
   every panel tile depends only on itself and the diagonal tile, so
   they all run in parallel; (3) relax the remainder tiles (I,J),
   I,J <> K, each depending only on itself and the two finished panels
   — all parallel.  Tile work and the phase order are fixed, so both
   the resulting matrix and the per-tile relaxation counts are
   independent of the worker count; per-tile counts land in a slot
   owned by the tile and are summed in index order after the joins.

   Values match the serial closure exactly at any feasible II (the
   closure is the unique max over walks, and every intermediate value
   either algorithm writes is a genuine walk weight bounded by it).
   At an infeasible II the finite values may differ — in-place
   Floyd-Warshall is relaxation-order-dependent once a positive
   circuit exists — but the verdict cannot: every value is a walk
   weight (no false positive diagonal), and both compute at least the
   order-free textbook DP, which puts the circuit's weight on the
   diagonal.  Callers only ever read matrices computed at feasible IIs
   (the schedulers' candidates sit at or above RecMII) and verdicts
   below.  The relaxation *count* does differ from the serial loop's,
   which is why the parallel path is strictly opt-in. *)
let block = 32

let closure_blocked dist ~m ~jobs =
  let nb = (m + block - 1) / block in
  let tile_inner = Array.make (nb * nb) 0 in
  let relax ~tk ~ti ~tj =
    let k0 = tk * block and i0 = ti * block and j0 = tj * block in
    let k1 = min m (k0 + block)
    and i1 = min m (i0 + block)
    and j1 = min m (j0 + block) in
    let cnt = ref 0 in
    for k = k0 to k1 - 1 do
      let kbase = k * m in
      for i = i0 to i1 - 1 do
        let ibase = i * m in
        let dik = dist.(ibase + k) in
        if dik > neg_inf then begin
          cnt := !cnt + (j1 - j0);
          for j = j0 to j1 - 1 do
            let dkj = dist.(kbase + j) in
            if dkj > neg_inf && dik + dkj > dist.(ibase + j) then
              dist.(ibase + j) <- dik + dkj
          done
        end
      done
    done;
    tile_inner.((ti * nb) + tj) <- tile_inner.((ti * nb) + tj) + !cnt
  in
  let run_parallel tasks =
    let tasks = Array.of_list tasks in
    let len = Array.length tasks in
    let workers = min jobs len in
    if workers <= 1 then Array.iter (fun f -> f ()) tasks
    else
      let queue =
        Ims_par.Work_queue.create ~policy:Ims_par.Chunk.default ~workers
          ~length:len
      in
      Ims_par.Pool.parallel_for ~workers ~queue (fun i -> tasks.(i) ())
  in
  for tk = 0 to nb - 1 do
    relax ~tk ~ti:tk ~tj:tk;
    let panels = ref [] in
    for tb = 0 to nb - 1 do
      if tb <> tk then begin
        panels := (fun () -> relax ~tk ~ti:tk ~tj:tb) :: !panels;
        panels := (fun () -> relax ~tk ~ti:tb ~tj:tk) :: !panels
      end
    done;
    run_parallel !panels;
    let rest = ref [] in
    for ti = 0 to nb - 1 do
      for tj = 0 to nb - 1 do
        if ti <> tk && tj <> tk then
          rest := (fun () -> relax ~tk ~ti ~tj) :: !rest
      done
    done;
    run_parallel !rest
  done;
  Array.fold_left ( + ) 0 tile_inner

(* In-place max-plus closure of the [m * m] matrix; returns the number
   of innermost relaxation iterations for the [mindist] counter. *)
let closure dist ~m =
  if m >= !par_threshold && !par_jobs > 1 then
    closure_blocked dist ~m ~jobs:!par_jobs
  else closure_serial dist ~m

let bump_closure_counters counters inner =
  match counters with
  | Some c ->
      c.Counters.mindist_inner <- c.Counters.mindist_inner + inner;
      c.Counters.mindist_calls <- c.Counters.mindist_calls + 1
  | None -> ()

let compute ?counters ?scratch ddg ~nodes ~ii =
  let m = Array.length nodes in
  let n = Ddg.n_total ddg in
  let index = index_buffer scratch ~n in
  Array.iteri (fun row id -> index.(id) <- row) nodes;
  let dist = dist_buffer scratch ~cells:(m * m) in
  Array.iteri
    (fun row id ->
      List.iter
        (fun (d : Dep.t) ->
          let col = index.(d.dst) in
          if col >= 0 then begin
            let w = d.delay - (ii * d.distance) in
            if w > dist.((row * m) + col) then dist.((row * m) + col) <- w
          end)
        ddg.Ddg.succs.(id))
    nodes;
  let inner = closure dist ~m in
  bump_closure_counters counters inner;
  { ii; nodes; index; m; dist }

let full ?counters ?scratch ddg ~ii =
  compute ?counters ?scratch ddg ~nodes:(Array.init (Ddg.n_total ddg) Fun.id) ~ii

(* --- the incremental cross-II solver ------------------------------------- *)

(* MinDist factors across candidate IIs.  Only back edges (distance >
   0) carry an II-dependent weight [delay - ii * distance]; the forward
   sub-graph (distance-0 edges) is II-invariant.  So: close the forward
   matrix F once, and per candidate II overlay the back edges and
   re-close with Floyd-Warshall pivots restricted to S = the endpoints
   of back edges.

   Why that is exact at a feasible II: any walk from i to j decomposes
   into forward segments alternating with back edges, so every interior
   junction is a back-edge endpoint in S; the seeded matrix max(F, B)
   already covers the segments, and FW over pivots S composes them.
   Why the verdict is exact below feasibility: a positive circuit must
   traverse a back edge (the forward sub-graph is acyclic), so its head
   b is in S and dist[b][b] receives the circuit's weight; conversely
   every value produced is a genuine walk weight, so a feasible II can
   never show a positive diagonal.  No monotonicity of the II sequence
   is assumed — RecMII's doubling bracket then binary search down, and
   the schedulers' II+1 escalation, use the same solver.

   The per-solve cost is |S| * m^2 instead of m^3; for loops whose
   recurrences touch a few operations, |S| << m.  Solver construction
   pays one m^3 closure, counted as one [mindist] call like any other;
   each [solve] counts its pivot-row relaxations in [mindist_inc]. *)

type back_edges = int array
(* stride 4: row, col, delay, distance — all (in-subgraph) distance>0
   edges, overlaid per solve at weight delay - ii*distance *)

type solver = {
  sv_nodes : int array;
  sv_index : int array;
  sv_m : int;
  sv_fwd : int array;  (* closed forward matrix, immutable after build *)
  sv_back : back_edges;
  sv_pivots : int array;  (* distinct back-edge endpoint rows, ascending *)
  sv_dist : int array;  (* work buffer; every solve's [t] borrows it *)
}

let solver ?counters ddg ~nodes =
  let m = Array.length nodes in
  let n = Ddg.n_total ddg in
  let index = Array.make n (-1) in
  Array.iteri (fun row id -> index.(id) <- row) nodes;
  let fwd = Array.make (m * m) neg_inf in
  let back = ref [] in
  let nback = ref 0 in
  Array.iteri
    (fun row id ->
      List.iter
        (fun (d : Dep.t) ->
          let col = index.(d.dst) in
          if col >= 0 then
            if d.distance = 0 then begin
              if d.delay > fwd.((row * m) + col) then
                fwd.((row * m) + col) <- d.delay
            end
            else begin
              back := (row, col, d.delay, d.distance) :: !back;
              incr nback
            end)
        ddg.Ddg.succs.(id))
    nodes;
  let inner = closure fwd ~m in
  bump_closure_counters counters inner;
  let sv_back = Array.make (4 * !nback) 0 in
  let is_pivot = Array.make (max 1 m) false in
  List.iteri
    (fun i (row, col, delay, distance) ->
      let base = 4 * (!nback - 1 - i) in
      sv_back.(base) <- row;
      sv_back.(base + 1) <- col;
      sv_back.(base + 2) <- delay;
      sv_back.(base + 3) <- distance;
      is_pivot.(row) <- true;
      is_pivot.(col) <- true)
    !back;
  let pivots = ref [] in
  for r = m - 1 downto 0 do
    if is_pivot.(r) then pivots := r :: !pivots
  done;
  {
    sv_nodes = nodes;
    sv_index = index;
    sv_m = m;
    sv_fwd = fwd;
    sv_back;
    sv_pivots = Array.of_list !pivots;
    sv_dist = Array.make (max 1 (m * m)) neg_inf;
  }

let solve ?counters s ~ii =
  let m = s.sv_m in
  let dist = s.sv_dist in
  Array.blit s.sv_fwd 0 dist 0 (m * m);
  let b = s.sv_back in
  let e = ref 0 in
  while !e < Array.length b do
    let idx = (b.(!e) * m) + b.(!e + 1) in
    let w = b.(!e + 2) - (ii * b.(!e + 3)) in
    if w > dist.(idx) then dist.(idx) <- w;
    e := !e + 4
  done;
  let inc = ref 0 in
  Array.iter
    (fun k ->
      let kbase = k * m in
      for i = 0 to m - 1 do
        let ibase = i * m in
        let dik = dist.(ibase + k) in
        if dik > neg_inf then begin
          incr inc;
          for j = 0 to m - 1 do
            let dkj = dist.(kbase + j) in
            if dkj > neg_inf && dik + dkj > dist.(ibase + j) then
              dist.(ibase + j) <- dik + dkj
          done
        end
      done)
    s.sv_pivots;
  (match counters with
  | Some c -> c.Counters.mindist_inc <- c.Counters.mindist_inc + !inc
  | None -> ());
  { ii; nodes = s.sv_nodes; index = s.sv_index; m; dist }

let solver_full ?counters ddg =
  solver ?counters ddg ~nodes:(Array.init (Ddg.n_total ddg) Fun.id)

(* --- queries -------------------------------------------------------------- *)

let get t i j =
  let ri = t.index.(i) and rj = t.index.(j) in
  if ri < 0 || rj < 0 then invalid_arg "Mindist.get: id not covered";
  t.dist.((ri * t.m) + rj)

let max_diagonal t =
  let best = ref neg_inf in
  for i = 0 to t.m - 1 do
    if t.dist.((i * t.m) + i) > !best then best := t.dist.((i * t.m) + i)
  done;
  !best

let feasible t = max_diagonal t <= 0

let feasible_ii ?counters ?scratch ddg ~nodes ~ii =
  feasible (compute ?counters ?scratch ddg ~nodes ~ii)

let pp ppf t =
  Format.fprintf ppf "MinDist(ii=%d) over %d nodes@." t.ii
    (Array.length t.nodes);
  Array.iteri
    (fun i id ->
      Format.fprintf ppf "  %3d |" id;
      Array.iteri
        (fun j _ ->
          if t.dist.((i * t.m) + j) = neg_inf then Format.fprintf ppf "    ."
          else Format.fprintf ppf " %4d" t.dist.((i * t.m) + j))
        t.nodes;
      Format.fprintf ppf "@.")
    t.nodes
