open Ims_ir

let neg_inf = min_int / 4

type t = {
  ii : int;
  nodes : int array;
  index : int array;
  m : int;
  dist : int array;  (* m * m, row-major *)
}

(* Reusable buffers for the matrix and the inverse index.  Both
   Recmii's feasibility search and the per-II attempt loops of the
   schedulers re-run ComputeMinDist with different IIs; a scratch lets
   each re-run reuse the previous allocation.  A [t] computed through a
   scratch borrows these buffers — it is invalidated by the next
   [compute] on the same scratch. *)
type scratch = { mutable s_dist : int array; mutable s_index : int array }

let scratch () = { s_dist = [||]; s_index = [||] }

let dist_buffer scratch ~cells =
  match scratch with
  | None -> Array.make cells neg_inf
  | Some s ->
      if Array.length s.s_dist < cells then s.s_dist <- Array.make cells neg_inf
      else Array.fill s.s_dist 0 cells neg_inf;
      s.s_dist

let index_buffer scratch ~n =
  match scratch with
  | None -> Array.make n (-1)
  | Some s ->
      if Array.length s.s_index < n then s.s_index <- Array.make n (-1)
      else Array.fill s.s_index 0 n (-1);
      s.s_index

let compute ?counters ?scratch ddg ~nodes ~ii =
  let m = Array.length nodes in
  let n = Ddg.n_total ddg in
  let index = index_buffer scratch ~n in
  Array.iteri (fun row id -> index.(id) <- row) nodes;
  let dist = dist_buffer scratch ~cells:(m * m) in
  Array.iteri
    (fun row id ->
      List.iter
        (fun (d : Dep.t) ->
          let col = index.(d.dst) in
          if col >= 0 then begin
            let w = d.delay - (ii * d.distance) in
            if w > dist.((row * m) + col) then dist.((row * m) + col) <- w
          end)
        ddg.Ddg.succs.(id))
    nodes;
  let inner = ref 0 in
  for k = 0 to m - 1 do
    let kbase = k * m in
    for i = 0 to m - 1 do
      let ibase = i * m in
      let dik = dist.(ibase + k) in
      if dik > neg_inf then begin
        (* One bump per j-iteration, exactly as the nested-loop form. *)
        inner := !inner + m;
        for j = 0 to m - 1 do
          let dkj = dist.(kbase + j) in
          if dkj > neg_inf && dik + dkj > dist.(ibase + j) then
            dist.(ibase + j) <- dik + dkj
        done
      end
    done
  done;
  (match counters with
  | Some c ->
      c.Counters.mindist_inner <- c.Counters.mindist_inner + !inner;
      c.Counters.mindist_calls <- c.Counters.mindist_calls + 1
  | None -> ());
  { ii; nodes; index; m; dist }

let full ?counters ?scratch ddg ~ii =
  compute ?counters ?scratch ddg ~nodes:(Array.init (Ddg.n_total ddg) Fun.id) ~ii

let get t i j =
  let ri = t.index.(i) and rj = t.index.(j) in
  if ri < 0 || rj < 0 then invalid_arg "Mindist.get: id not covered";
  t.dist.((ri * t.m) + rj)

let max_diagonal t =
  let best = ref neg_inf in
  for i = 0 to t.m - 1 do
    if t.dist.((i * t.m) + i) > !best then best := t.dist.((i * t.m) + i)
  done;
  !best

let feasible t = max_diagonal t <= 0

let feasible_ii ?counters ?scratch ddg ~nodes ~ii =
  feasible (compute ?counters ?scratch ddg ~nodes ~ii)

let pp ppf t =
  Format.fprintf ppf "MinDist(ii=%d) over %d nodes@." t.ii
    (Array.length t.nodes);
  Array.iteri
    (fun i id ->
      Format.fprintf ppf "  %3d |" id;
      Array.iteri
        (fun j _ ->
          if t.dist.((i * t.m) + j) = neg_inf then Format.fprintf ppf "    ."
          else Format.fprintf ppf " %4d" t.dist.((i * t.m) + j))
        t.nodes;
      Format.fprintf ppf "@.")
    t.nodes
