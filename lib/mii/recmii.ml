open Ims_ir
open Ims_graph

(* ceil(a / b) for b > 0 and any sign of a. *)
let cdiv a b = if a >= 0 then (a + b - 1) / b else -(-a / b)

let scc_of ?counters ddg =
  let n = Ddg.n_total ddg in
  let r = Scc.compute ~n ~succs:(Ddg.real_succ_ids ddg) in
  (match counters with
  | Some c -> c.Counters.scc_steps <- c.Counters.scc_steps + r.Scc.steps
  | None -> ());
  Scc.non_trivial ~succs:(Ddg.real_succ_ids ddg) r

(* No recurrence can require more than the sum of the positive delays:
   every circuit has distance >= 1, so at that II its slack is already
   non-positive.  Exceeding the cap means a zero-distance circuit. *)
let ii_cap ddg =
  let total = ref 1 in
  Array.iter
    (fun edges ->
      List.iter
        (fun (d : Dep.t) -> if d.delay > 0 then total := !total + d.delay)
        edges)
    ddg.Ddg.succs;
  !total

let scc_feasible ?counters ?scratch ddg nodes ~ii =
  Mindist.feasible_ii ?counters ?scratch ddg ~nodes ~ii

(* Smallest feasible II for one SCC, at least [start]: doubling to bracket,
   then binary search (section 2.2).  One incremental solver serves every
   probe of the search — each candidate II costs one pivot-restricted
   re-closure instead of a from-scratch Floyd-Warshall. *)
let first_feasible ?counters ddg nodes ~start ~cap =
  let solver = Mindist.solver ?counters ddg ~nodes in
  let probe ii = Mindist.feasible (Mindist.solve ?counters solver ~ii) in
  if probe start then start
  else begin
    let bad = ref start and inc = ref 1 in
    while
      let candidate = !bad + !inc in
      if candidate > cap then
        invalid_arg "Recmii: zero-distance dependence circuit";
      if probe candidate then false
      else begin
        bad := candidate;
        inc := !inc * 2;
        true
      end
    do
      ()
    done;
    let good = ref (!bad + !inc) in
    (* Invariant: !bad infeasible, !good feasible. *)
    while !good - !bad > 1 do
      let mid = (!bad + !good) / 2 in
      if probe mid then good := mid else bad := mid
    done;
    !good
  end

let fold_sccs ?counters ddg ~start =
  let sccs = scc_of ?counters ddg in
  let cap = ii_cap ddg in
  Array.fold_left
    (fun acc members ->
      let nodes = Array.of_list members in
      first_feasible ?counters ddg nodes ~start:acc ~cap)
    start sccs

let by_mindist ?counters ddg = fold_sccs ?counters ddg ~start:1
let mii_from ?counters ddg ~resmii = fold_sccs ?counters ddg ~start:resmii

let feasible ?counters ddg ~ii =
  let sccs = scc_of ?counters ddg in
  let scratch = Mindist.scratch () in
  Array.for_all
    (fun members ->
      scc_feasible ?counters ~scratch ddg (Array.of_list members) ~ii)
    sccs

(* Parallel edges between consecutive circuit vertices multiply out into
   (delay, distance) combinations; dominated combinations are pruned. *)
let circuit_constraints ddg circuit =
  let edges_between i j =
    List.filter_map
      (fun (d : Dep.t) ->
        if d.dst = j then Some (d.delay, d.distance) else None)
      ddg.Ddg.succs.(i)
  in
  let pairs =
    match circuit with
    | [] -> []
    | [ v ] -> [ (v, v) ]
    | first :: _ ->
        let rec consecutive = function
          | a :: (b :: _ as rest) -> (a, b) :: consecutive rest
          | [ last ] -> [ (last, first) ]
          | [] -> []
        in
        consecutive circuit
  in
  let prune combos =
    List.filter
      (fun (d, l) ->
        not
          (List.exists
             (fun (d', l') -> (d', l') <> (d, l) && d' >= d && l' <= l)
             combos))
      (List.sort_uniq compare combos)
  in
  List.fold_left
    (fun acc (i, j) ->
      let choices = edges_between i j in
      prune
        (List.concat_map
           (fun (d, l) -> List.map (fun (d', l') -> (d + d', l + l')) choices)
           acc))
    [ (0, 0) ]
    pairs

let by_circuits ?counters ?limit ddg =
  ignore counters;
  let n = Ddg.n_total ddg in
  let succs v = List.sort_uniq compare (Ddg.real_succ_ids ddg v) in
  let circuits = Circuits.enumerate ?limit ~n succs in
  List.fold_left
    (fun acc circuit ->
      List.fold_left
        (fun acc (delay, distance) ->
          if distance = 0 then
            invalid_arg "Recmii.by_circuits: zero-distance circuit"
          else max acc (cdiv delay distance))
        acc
        (circuit_constraints ddg circuit))
    1 circuits
