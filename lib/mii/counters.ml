type t = {
  mutable scc_steps : int;
  mutable resmii_steps : int;
  mutable mindist_inner : int;
  mutable mindist_calls : int;
  mutable heightr_inner : int;
  mutable estart_inner : int;
  mutable findslot_inner : int;
  mutable sched_steps : int;
  mutable sched_steps_final : int;
}

let create () =
  {
    scc_steps = 0;
    resmii_steps = 0;
    mindist_inner = 0;
    mindist_calls = 0;
    heightr_inner = 0;
    estart_inner = 0;
    findslot_inner = 0;
    sched_steps = 0;
    sched_steps_final = 0;
  }

let reset t =
  t.scc_steps <- 0;
  t.resmii_steps <- 0;
  t.mindist_inner <- 0;
  t.mindist_calls <- 0;
  t.heightr_inner <- 0;
  t.estart_inner <- 0;
  t.findslot_inner <- 0;
  t.sched_steps <- 0;
  t.sched_steps_final <- 0

let add acc c =
  acc.scc_steps <- acc.scc_steps + c.scc_steps;
  acc.resmii_steps <- acc.resmii_steps + c.resmii_steps;
  acc.mindist_inner <- acc.mindist_inner + c.mindist_inner;
  acc.mindist_calls <- acc.mindist_calls + c.mindist_calls;
  acc.heightr_inner <- acc.heightr_inner + c.heightr_inner;
  acc.estart_inner <- acc.estart_inner + c.estart_inner;
  acc.findslot_inner <- acc.findslot_inner + c.findslot_inner;
  acc.sched_steps <- acc.sched_steps + c.sched_steps;
  acc.sched_steps_final <- acc.sched_steps_final + c.sched_steps_final

(* The single source of truth for field names and order: [pp] and the
   metrics adapter both read this list, so they can never disagree. *)
let to_assoc t =
  [
    ("scc", t.scc_steps);
    ("resmii", t.resmii_steps);
    ("mindist", t.mindist_inner);
    ("mindist_calls", t.mindist_calls);
    ("heightr", t.heightr_inner);
    ("estart", t.estart_inner);
    ("findslot", t.findslot_inner);
    ("sched", t.sched_steps);
    ("sched_final", t.sched_steps_final);
  ]

(* Merging goes through [to_assoc] rather than the record fields so the
   three readers of the field list (pp, record, merge) can never drift. *)
let merge ts =
  let sums = Hashtbl.create 16 in
  List.iter
    (fun t ->
      List.iter
        (fun (name, v) ->
          Hashtbl.replace sums name
            (v + Option.value ~default:0 (Hashtbl.find_opt sums name)))
        (to_assoc t))
    ts;
  let get name = Option.value ~default:0 (Hashtbl.find_opt sums name) in
  {
    scc_steps = get "scc";
    resmii_steps = get "resmii";
    mindist_inner = get "mindist";
    mindist_calls = get "mindist_calls";
    heightr_inner = get "heightr";
    estart_inner = get "estart";
    findslot_inner = get "findslot";
    sched_steps = get "sched";
    sched_steps_final = get "sched_final";
  }

let pp ppf t =
  match to_assoc t with
  | [
   ("scc", scc);
   ("resmii", resmii);
   ("mindist", mindist);
   ("mindist_calls", mindist_calls);
   ("heightr", heightr);
   ("estart", estart);
   ("findslot", findslot);
   ("sched", sched);
   ("sched_final", sched_final);
  ] ->
      Format.fprintf ppf
        "scc=%d resmii=%d mindist=%d(x%d) heightr=%d estart=%d findslot=%d \
         sched=%d(final %d)"
        scc resmii mindist mindist_calls heightr estart findslot sched
        sched_final
  | _ -> assert false

let record m t =
  List.iter
    (fun (name, v) ->
      Ims_obs.Metrics.incr ~by:v
        (Ims_obs.Metrics.counter m ("counters." ^ name)))
    (to_assoc t)
