type t = {
  mutable scc_steps : int;
  mutable resmii_steps : int;
  mutable mindist_inner : int;
  mutable mindist_calls : int;
  mutable mindist_inc : int;
  mutable heightr_inner : int;
  mutable estart_inner : int;
  mutable findslot_inner : int;
  mutable mrt_bitprobe : int;
  mutable sched_steps : int;
  mutable sched_steps_final : int;
}

let create () =
  {
    scc_steps = 0;
    resmii_steps = 0;
    mindist_inner = 0;
    mindist_calls = 0;
    mindist_inc = 0;
    heightr_inner = 0;
    estart_inner = 0;
    findslot_inner = 0;
    mrt_bitprobe = 0;
    sched_steps = 0;
    sched_steps_final = 0;
  }

let reset t =
  t.scc_steps <- 0;
  t.resmii_steps <- 0;
  t.mindist_inner <- 0;
  t.mindist_calls <- 0;
  t.mindist_inc <- 0;
  t.heightr_inner <- 0;
  t.estart_inner <- 0;
  t.findslot_inner <- 0;
  t.mrt_bitprobe <- 0;
  t.sched_steps <- 0;
  t.sched_steps_final <- 0

let add acc c =
  acc.scc_steps <- acc.scc_steps + c.scc_steps;
  acc.resmii_steps <- acc.resmii_steps + c.resmii_steps;
  acc.mindist_inner <- acc.mindist_inner + c.mindist_inner;
  acc.mindist_calls <- acc.mindist_calls + c.mindist_calls;
  acc.mindist_inc <- acc.mindist_inc + c.mindist_inc;
  acc.heightr_inner <- acc.heightr_inner + c.heightr_inner;
  acc.estart_inner <- acc.estart_inner + c.estart_inner;
  acc.findslot_inner <- acc.findslot_inner + c.findslot_inner;
  acc.mrt_bitprobe <- acc.mrt_bitprobe + c.mrt_bitprobe;
  acc.sched_steps <- acc.sched_steps + c.sched_steps;
  acc.sched_steps_final <- acc.sched_steps_final + c.sched_steps_final

(* The single source of truth for field names, order, and record
   access: every reader and writer of the field list — [pp], [record],
   [merge], [to_assoc], [of_assoc], and the snapshot/journal schemas
   downstream — goes through this table, so none of them can drift. *)
let fields : (string * (t -> int) * (t -> int -> unit)) list =
  [
    ("scc", (fun t -> t.scc_steps), fun t v -> t.scc_steps <- v);
    ("resmii", (fun t -> t.resmii_steps), fun t v -> t.resmii_steps <- v);
    ("mindist", (fun t -> t.mindist_inner), fun t v -> t.mindist_inner <- v);
    ("mindist_calls", (fun t -> t.mindist_calls), fun t v -> t.mindist_calls <- v);
    ("mindist_inc", (fun t -> t.mindist_inc), fun t v -> t.mindist_inc <- v);
    ("heightr", (fun t -> t.heightr_inner), fun t v -> t.heightr_inner <- v);
    ("estart", (fun t -> t.estart_inner), fun t v -> t.estart_inner <- v);
    ("findslot", (fun t -> t.findslot_inner), fun t v -> t.findslot_inner <- v);
    ("mrt_bitprobe", (fun t -> t.mrt_bitprobe), fun t v -> t.mrt_bitprobe <- v);
    ("sched", (fun t -> t.sched_steps), fun t v -> t.sched_steps <- v);
    ("sched_final", (fun t -> t.sched_steps_final), fun t v -> t.sched_steps_final <- v);
  ]

let names = List.map (fun (name, _, _) -> name) fields
let to_assoc t = List.map (fun (name, get, _) -> (name, get t)) fields

let of_assoc kvs =
  let t = create () in
  List.iter
    (fun (name, _, set) ->
      set t (Option.value ~default:0 (List.assoc_opt name kvs)))
    fields;
  t

let merge ts =
  let acc = create () in
  List.iter
    (fun t ->
      List.iter (fun (_name, get, set) -> set acc (get acc + get t)) fields)
    ts;
  acc

let pp ppf t =
  match to_assoc t with
  | [
   ("scc", scc);
   ("resmii", resmii);
   ("mindist", mindist);
   ("mindist_calls", mindist_calls);
   ("mindist_inc", mindist_inc);
   ("heightr", heightr);
   ("estart", estart);
   ("findslot", findslot);
   ("mrt_bitprobe", mrt_bitprobe);
   ("sched", sched);
   ("sched_final", sched_final);
  ] ->
      Format.fprintf ppf
        "scc=%d resmii=%d mindist=%d(x%d,inc %d) heightr=%d estart=%d \
         findslot=%d bitprobe=%d sched=%d(final %d)"
        scc resmii mindist mindist_calls mindist_inc heightr estart findslot
        mrt_bitprobe sched sched_final
  | _ -> assert false

let record m t =
  List.iter
    (fun (name, v) ->
      Ims_obs.Metrics.incr ~by:v
        (Ims_obs.Metrics.counter m ("counters." ^ name)))
    (to_assoc t)
