(** The minimum initiation interval: MII = max(ResMII, RecMII)
    (Rau 1994, section 2).

    The MII is a lower bound on any legal II; it is not necessarily
    achievable in the presence of complex reservation tables or tangled
    recurrences, which is why the scheduler searches upward from it. *)

open Ims_ir

type t = {
  resmii : int;
  recmii : int;  (** Exact, per-SCC MinDist computation. *)
  mii : int;  (** [max resmii recmii]. *)
}

val compute : ?counters:Counters.t -> ?trace:Ims_obs.Trace.t -> Ddg.t -> t
(** [trace] (default disabled) brackets the two bound computations in
    ["mii.resmii"] / ["mii.recmii"] spans. *)

val compute_fast :
  ?counters:Counters.t -> ?trace:Ims_obs.Trace.t -> Ddg.t -> int
(** The production scheme: computes only the MII, seeding the recurrence
    search at ResMII so that vectorizable loops never pay for a second
    MinDist pass.  Equals [(compute ddg).mii]. *)

val schedule_length_lower_bound :
  ?solver:Mindist.solver -> Ddg.t -> ii:int -> acyclic_length:int -> int
(** The paper's lower bound on the schedule length of one iteration for a
    given II: the larger of MinDist[START, STOP] and the schedule length
    achieved by acyclic list scheduling (section 4.2).  Pass a
    whole-graph [solver] ({!Mindist.solver_full}) to answer several IIs
    over the same graph without re-running the full closure. *)

val pp : Format.formatter -> t -> unit
