open Ims_ir
open Ims_obs

type t = { resmii : int; recmii : int; mii : int }

let compute ?counters ?(trace = Trace.null) ddg =
  let resmii =
    Trace.with_span trace "mii.resmii" (fun () -> Resmii.compute ?counters ddg)
  in
  let recmii =
    Trace.with_span trace "mii.recmii" (fun () ->
        Recmii.by_mindist ?counters ddg)
  in
  { resmii; recmii; mii = max resmii recmii }

let compute_fast ?counters ?(trace = Trace.null) ddg =
  let resmii =
    Trace.with_span trace "mii.resmii" (fun () -> Resmii.compute ?counters ddg)
  in
  Trace.with_span trace "mii.recmii" (fun () ->
      Recmii.mii_from ?counters ddg ~resmii)

let schedule_length_lower_bound ?solver ddg ~ii ~acyclic_length =
  let md =
    match solver with
    | Some s -> Mindist.solve s ~ii
    | None -> Mindist.full ddg ~ii
  in
  max (Mindist.get md Ddg.start (Ddg.stop ddg)) acyclic_length

let pp ppf t =
  Format.fprintf ppf "ResMII=%d RecMII=%d MII=%d" t.resmii t.recmii t.mii
