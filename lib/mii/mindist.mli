(** The MinDist matrix (Rau 1994, section 2.2; Huff 1993).

    For a candidate initiation interval II, [MinDist[i, j]] is the minimum
    permissible interval between the schedule time of operation [i] and
    that of operation [j] in the same iteration: the maximum over all
    dependence paths from [i] to [j] of the sum of [delay - II * distance]
    along the path, or {!neg_inf} if no path exists.

    A positive diagonal entry means some operation must be scheduled
    after itself — the II is infeasible.  A zero diagonal entry is a
    critical (slack-free) recurrence circuit. *)

open Ims_ir

val neg_inf : int
(** The "no path" sentinel; safely far from overflow under addition. *)

type t = private {
  ii : int;
  nodes : int array;  (** Vertex ids covered, ascending. *)
  index : int array;  (** Inverse map: op id to row, or -1. *)
  m : int;  (** [Array.length nodes]. *)
  dist : int array;  (** Flat [m * m] matrix, row-major. *)
}

type scratch
(** Reusable matrix/index buffers.  MinDist is recomputed for every
    candidate II by {!Recmii.first_feasible}'s binary search and by the
    schedulers' per-II attempt loops; passing the same scratch to each
    {!compute} reuses one allocation across the whole search.  A [t]
    computed with a scratch borrows its buffers and is invalidated by
    the next [compute] on that scratch. *)

val scratch : unit -> scratch

val compute :
  ?counters:Counters.t -> ?scratch:scratch -> Ddg.t -> nodes:int array ->
  ii:int -> t
(** All-pairs MinDist over the sub-graph induced by [nodes] (edges with
    both endpoints inside), by max-plus Floyd-Warshall: O(|nodes|³). *)

val full : ?counters:Counters.t -> ?scratch:scratch -> Ddg.t -> ii:int -> t
(** MinDist over the whole graph including START and STOP. *)

(** {2 The incremental cross-II solver}

    MinDist factors across candidate IIs: only back edges (distance >
    0) carry an II-dependent weight, so the solver closes the
    distance-0 forward sub-graph once — one O(m³) pass — and each
    {!solve} overlays the back edges at [delay - ii * distance] and
    re-closes with Floyd-Warshall pivots restricted to the back-edge
    endpoints: O(|endpoints| · m²) per candidate II.  Exact at every
    feasible II and verdict-exact ({!feasible}) below, for {e any}
    order of candidate IIs — RecMII's doubling/binary search and the
    schedulers' II+1 escalation both ride on one solver. *)

type solver
(** The II-invariant half of MinDist over a fixed node set: the closed
    forward matrix, the back-edge list, and the pivot set. *)

val solver : ?counters:Counters.t -> Ddg.t -> nodes:int array -> solver
(** Builds the solver; the forward closure is counted like one
    {!compute} call ([mindist] / [mindist_calls]). *)

val solver_full : ?counters:Counters.t -> Ddg.t -> solver
(** {!solver} over the whole graph including START and STOP. *)

val solve : ?counters:Counters.t -> solver -> ii:int -> t
(** The MinDist matrix at one candidate II.  Pivot-row relaxations are
    counted in [mindist_inc].  The result borrows the solver's work
    buffer: it is invalidated by the next [solve] on the same solver. *)

val set_parallel : jobs:int -> threshold:int -> unit
(** Configure the parallel blocked closure: matrices of side >=
    [threshold] are closed by tiled Floyd-Warshall on [jobs] domains
    (diagonal tile, then panels in parallel, then remainder tiles in
    parallel, per pivot block).  Defaults ([jobs = 1]) keep every
    closure serial.  Matrix values are identical to the serial closure
    at feasible IIs and verdict-identical below; the [mindist]
    relaxation count differs from the serial loop's, which is why the
    parallel path is opt-in.  Global, not domain-safe: set it once at
    startup, before scheduling. *)

val get : t -> int -> int -> int
(** [get t i j] by operation ids; {!neg_inf} when unconnected.
    @raise Invalid_argument if an id is not covered. *)

val max_diagonal : t -> int
(** The largest diagonal entry ({!neg_inf} for an acyclic sub-graph). *)

val feasible : t -> bool
(** No positive diagonal entry (section 2.2's legality test). *)

val feasible_ii :
  ?counters:Counters.t -> ?scratch:scratch -> Ddg.t -> nodes:int array ->
  ii:int -> bool
(** [feasible (compute ...)] without retaining the matrix — the shape of
    {!Recmii}'s feasibility queries. *)

val pp : Format.formatter -> t -> unit
