(** Modulo reservation table (Rau 1994, section 3.1; Lam 1988).

    A schedule reservation table of [ii] rows: reserving resource [r] at
    absolute time [t] occupies cell [(t mod ii, r)].  A conflict at time
    [t] therefore implies conflicts at all [t + k*ii].  Cells record the
    ids of the occupying operations so that the scheduler can displace
    them; a cell may hold up to the resource's multiplicity.

    Internally the table is split into an occupancy-{e count} matrix
    (one flat int array), the occupant op-list matrix (consulted only
    for displacement and printing), and two occupancy {e bit planes}:
    plane [p] has the bit of cell [(slot, r)] set iff the cell holds at
    least [p + 1] occupants.  Reservation tables are {e precompiled}
    once per (table, ii) pair into a flat [(slot_offset, resource,
    mult)] form; compiling additionally against the machine's capacity
    vector ([?caps]) lowers every usage with [cap - mult <= 1] to
    per-issue-slot merged (word, mask) pairs over the bit planes, so
    {!fits_c} — the innermost operation of FindTimeSlot — is a handful
    of AND probes, zero heap allocation, falling back to the count walk
    only for usages probing a capacity-3+ resource below its brim.
    The [Reservation.t]-taking functions remain for convenience; they
    memoize a caps-compiled form per table (by physical equality)
    inside the MRT.

    The same structure doubles as the linear schedule reservation table of
    acyclic list scheduling: build it with {!linear} and a horizon larger
    than any schedule time, and the modulo wrap never triggers. *)

type t

val create : Machine.t -> ii:int -> t
(** @raise Invalid_argument if [ii < 1]. *)

val linear : Machine.t -> horizon:int -> t
(** A non-wrapping table for acyclic scheduling of length [horizon]. *)

val ii : t -> int

(** {2 Precompiled reservation tables}

    The hot path of the scheduler: compile each opcode alternative's
    table once per (machine, II), then probe/commit with the compiled
    form.  A [ctable] is only valid on MRTs of the [ii] it was compiled
    for ([Invalid_argument] otherwise). *)

type ctable
(** A reservation table lowered to a flat [(slot_offset, resource,
    multiplicity)] int array, with the modulo collapse of duplicate
    [(at mod ii, resource)] cells already performed — plus, when
    compiled with [~caps], the per-issue-slot bitboard probe plan. *)

val compile : ii:int -> ?caps:int array -> Reservation.t -> ctable
(** [compile ~ii ?caps table].  Without [caps] the compiled form probes
    purely by count walk (byte-identical to the historical behaviour,
    and valid on any MRT of the same [ii]).  With [caps] — the
    machine's per-resource capacity vector, as stored by {!create} —
    the probe additionally gets the bitboard fast path, and the ctable
    is only valid on MRTs with that many resources.
    @raise Invalid_argument if [ii < 1]. *)

val bitprobes : t -> int
(** Number of {!fits_c} probes this MRT answered through the bit
    planes (i.e. with a caps-compiled ctable) since creation.  Feeds
    the [mrt_bitprobe] scheduler counter. *)

val fits_c : t -> ctable -> time:int -> bool
(** Allocation-free admission probe: true iff reserving the compiled
    table translated to [time] exceeds no cell capacity. *)

val reserve_c : t -> op:int -> ctable -> time:int -> unit
(** @raise Invalid_argument if the reservation does not fit. *)

val release_c : t -> op:int -> ctable -> time:int -> unit
(** Undo a {!reserve_c} with identical arguments.
    @raise Invalid_argument if [op] does not hold those cells. *)

val conflicting_ops_c : t -> ctable array -> time:int -> int list
(** As {!conflicting_ops}, over compiled alternatives. *)

(** {2 The [Reservation.t] front}

    Equivalent to compiling on first use (memoized per table inside the
    MRT); fine for cold paths and tests. *)

val fits : t -> Reservation.t -> time:int -> bool
(** [fits t table ~time] is true iff reserving [table] translated to
    [time] exceeds no cell capacity. *)

val conflicting_ops : t -> Reservation.t list -> time:int -> int list
(** [conflicting_ops t tables ~time] is the set (sorted, deduplicated) of
    operation ids that occupy any cell needed by any of [tables] at [time]
    where the cell cannot also accommodate the new demand.  Unscheduling
    exactly these operations makes at least one alternative fit (section
    3.4: "all operations are unscheduled which conflict with the use of
    any of the alternatives"). *)

val reserve : t -> op:int -> Reservation.t -> time:int -> unit
(** @raise Invalid_argument if the reservation does not fit. *)

val release : t -> op:int -> Reservation.t -> time:int -> unit
(** Undo a {!reserve} with identical arguments.
    @raise Invalid_argument if [op] does not hold those cells. *)

val occupants : t -> slot:int -> resource:int -> int list
(** Current occupants of one cell; [slot] is taken modulo [ii]. *)

val pp : Format.formatter -> t -> unit
