exception Parse_error of int * string

let fail line fmt = Format.kasprintf (fun s -> raise (Parse_error (line, s))) fmt

let strip_comment line =
  match String.index_opt line '#' with
  | Some i -> String.sub line 0 i
  | None -> line

let tokens line =
  String.split_on_char ' ' line
  |> List.concat_map (String.split_on_char '\t')
  |> List.filter (fun t -> t <> "")

(* "RES" or "RES@3" *)
let parse_usage lineno resolve token =
  match String.index_opt token '@' with
  | None -> (resolve lineno token, 0)
  | Some i ->
      let name = String.sub token 0 i in
      let at = String.sub token (i + 1) (String.length token - i - 1) in
      (match int_of_string_opt at with
      | Some at when at >= 0 -> (resolve lineno name, at)
      | _ -> fail lineno "bad cycle in %S" token)

let split_on_token sep toks =
  let rec go current acc = function
    | [] -> List.rev (List.rev current :: acc)
    | t :: rest when t = sep -> go [] (List.rev current :: acc) rest
    | t :: rest -> go (t :: current) acc rest
  in
  go [] [] toks

let parse text =
  let name = ref "custom" in
  let resources = ref [] in  (* (name, count), reversed *)
  let opcodes = ref [] in  (* (lineno, name, latency, alt token groups) *)
  String.split_on_char '\n' text
  |> List.iteri (fun i line ->
         let lineno = i + 1 in
         match tokens (strip_comment line) with
         | [] -> ()
         | [ "machine"; n ] -> name := n
         | "machine" :: rest -> name := String.concat " " rest
         | [ "resource"; rname; count ] -> (
             match int_of_string_opt count with
             | Some c when c >= 1 -> resources := (rname, c) :: !resources
             | _ -> fail lineno "bad resource count %S" count)
         | "resource" :: _ -> fail lineno "resource NAME COUNT"
         | "opcode" :: oname :: latency :: rest -> (
             match int_of_string_opt latency with
             | Some l when l >= 0 ->
                 if rest = [] then fail lineno "opcode needs an alternative";
                 opcodes := (lineno, oname, l, split_on_token ";" rest) :: !opcodes
             | _ -> fail lineno "bad latency %S" latency)
         | t :: _ -> fail lineno "unknown declaration %S" t);
  let b = Machine.builder !name in
  let ids = Hashtbl.create 16 in
  List.iter
    (fun (rname, count) ->
      if Hashtbl.mem ids rname then
        raise (Parse_error (0, "duplicate resource " ^ rname));
      Hashtbl.replace ids rname (Machine.add_resource b rname ~count))
    (List.rev !resources);
  let resolve lineno rname =
    match Hashtbl.find_opt ids rname with
    | Some id -> id
    | None -> fail lineno "unknown resource %S" rname
  in
  List.iter
    (fun (lineno, oname, latency, alt_groups) ->
      let alternatives =
        List.map
          (fun group ->
            match group with
            | unit_name :: "=" :: usages when usages <> [] ->
                (unit_name, List.map (parse_usage lineno resolve) usages)
            | _ -> fail lineno "alternative is: UNIT = RES[@T] ...")
          alt_groups
      in
      try Machine.add_opcode b ~name:oname ~latency ~alternatives
      with Invalid_argument msg -> fail lineno "%s" msg)
    (List.rev !opcodes);
  Machine.finish b

let parse_file path =
  let ic = open_in path in
  let len = in_channel_length ic in
  let text = really_input_string ic len in
  close_in ic;
  (* Errors from a description file carry its path, so a bad --machine
     argument dies with one line naming the file, never a backtrace. *)
  try parse text
  with Parse_error (line, msg) ->
    raise (Parse_error (line, Printf.sprintf "%s: %s" path msg))

let () =
  Printexc.register_printer (function
    | Parse_error (line, msg) ->
        Some
          (Printf.sprintf "machine description error at line %d: %s" line msg)
    | _ -> None)

let dump (m : Machine.t) =
  let buf = Buffer.create 512 in
  Buffer.add_string buf (Printf.sprintf "machine %s\n" m.Machine.name);
  Array.iter
    (fun (r : Resource.t) ->
      Buffer.add_string buf (Printf.sprintf "resource %s %d\n" r.name r.count))
    m.Machine.resources;
  List.iter
    (fun name ->
      let op = Machine.opcode m name in
      let alt (a : Opcode.alternative) =
        let usage (u : Reservation.usage) =
          Printf.sprintf "%s@%d" m.Machine.resources.(u.resource).Resource.name u.at
        in
        Printf.sprintf "%s = %s" a.unit_name
          (String.concat " " (List.map usage a.table.Reservation.usages))
      in
      Buffer.add_string buf
        (Printf.sprintf "opcode %s %d %s\n" name op.Opcode.latency
           (String.concat " ; " (List.map alt op.Opcode.alternatives))))
    (Machine.opcode_names m);
  Buffer.contents buf
