(** Reservation tables (Davidson et al.; Rau 1994, section 2.1, figure 1).

    A reservation table records, for one opcode alternative, which resources
    the operation uses and at which cycles relative to its issue cycle.  The
    same resource may be used at several cycles, and several units of a
    multi-copy resource may be used in the same cycle. *)

type usage = {
  resource : int;  (** Resource id, see {!Resource.t.id}. *)
  at : int;  (** Cycle relative to issue; at least 0. *)
}

type t = private {
  usages : usage list;  (** Sorted by [(at, resource)]. *)
  length : int;  (** 1 + the largest [at]; 0 for an empty table. *)
}

val make : (int * int) list -> t
(** [make uses] builds a table from [(resource, at)] pairs.
    @raise Invalid_argument if any [at] is negative. *)

val empty : t
(** The table of a pseudo-operation: uses no resources at all. *)

val is_empty : t -> bool

(** Classification of reservation tables (Rau 1994, section 2.1).  The
    scheduler gets progressively more displacement work as tables move from
    [Simple] to [Complex]. *)
type shape =
  | Simple  (** A single resource for a single cycle, on the issue cycle. *)
  | Block
      (** A single resource for multiple consecutive cycles starting with
          the issue cycle. *)
  | Complex  (** Anything else. *)

val shape : t -> shape
(** [shape t] classifies [t].  The empty table is [Simple]. *)

val usage_count : t -> int array -> unit
(** [usage_count t acc] adds, for each resource [r], the number of uses of
    [r] in [t] to [acc.(r)].  Used by the ResMII bin-packing. *)

val collapse : t -> modulus:int -> (int * int * int) list
(** [collapse t ~modulus] is the table's demand on a wrap-around
    reservation table of [modulus] rows: [(slot, resource, multiplicity)]
    triples, sorted by [(slot, resource)], with usages that land in the
    same modulo cell merged.  The collapse does not depend on the issue
    time, only on [(t, modulus)] — the basis of {!Mrt.compile}.
    @raise Invalid_argument if [modulus < 1]. *)

val pp : Format.formatter -> t -> unit

val pp_grid :
  resources:Resource.t array -> Format.formatter -> (string * t) list -> unit
(** [pp_grid ~resources ppf tables] renders tables side by side as a
    time/resource grid in the pictorial style of the paper's figure 1, with
    an [X] wherever a resource is used. *)
