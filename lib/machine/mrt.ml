(* Two-layer representation, chosen for the admission probe:

   - [counts] is a flat [ii * nres] int matrix of occupancy counts; a
     fits probe reads it directly and performs no allocation.
   - [cells] is the matching matrix of occupant op-id lists, consulted
     only by the displacement machinery ([conflicting_ops], [release])
     and the printers — never by [fits].

   Reservation tables are precompiled ({!compile}) into a flat
   [(slot_offset, resource, mult)] int array (stride 3), with the
   [(at mod ii, resource)] collapse done once instead of per probe:
   two usages land in the same modulo cell iff their [at]s agree mod
   [ii], independently of the issue time, so the collapse is a property
   of the (table, ii) pair alone.

   On top of the count matrix sit two bit planes ([occ]): plane [p] has
   the bit for cell [(slot, r)] set iff the cell's count is at least
   [p + 1].  For a usage of multiplicity [m] on a resource of capacity
   [c], "count + m <= c" is exactly "plane [c - m] bit clear", so when
   [c - m <= 1] — every resource of the machines we model — the probe
   for one usage is a single AND.  Compilation against the machine's
   capacity vector precomputes, for each issue slot [s = time mod ii],
   the merged per-word masks over all of the table's usages, so a whole
   probe is a handful of AND/load pairs.  Usages with [c - m >= 2] (a
   capacity-3+ resource probed below its brim) fall back to the count
   walk, and a usage with [m > c] can never fit at any time.  Compiling
   without capacities yields a ctable that probes purely by count walk,
   byte-identical to the historical behaviour. *)

let bits_per_word = 63
let words_per_row ii = (ii + bits_per_word - 1) / bits_per_word

(* Number of bit planes carried by [occ]: plane p tracks count >= p+1.
   Two planes cover probes on resources of capacity <= 2 at any
   multiplicity, and capacity > 2 at multiplicity >= c - 1. *)
let planes = 2

type ctable = {
  c_ii : int;
  packed : int array;
      (* all (slot_offset, resource, mult) triples, stride 3; the
         reserve/release/conflict walk *)
  c_nres : int;  (* 0 = compiled without capacities: no bitboard data *)
  never_fits : bool;  (* some usage has mult > cap: no time ever fits *)
  bb_off : int array;  (* length ii+1; per-issue-slot extent in bb_* *)
  bb_word : int array;  (* merged word indices into Mrt.occ *)
  bb_mask : int array;  (* masks, one per bb_word entry *)
  slow : int array;  (* triples the bitboard cannot decide, stride 3 *)
}

(* Memo for the uncompiled front: tables are built once per machine and
   shared by physical identity, so hash structurally but compare with
   [==] — a rebuilt-but-equal table just occupies a second bucket slot. *)
module Tbl_memo = Hashtbl.Make (struct
  type t = Reservation.t

  let equal = ( == )
  let hash = Hashtbl.hash
end)

type t = {
  ii : int;
  nres : int;
  wpr : int;  (* words per (plane, resource) row of [occ] *)
  caps : int array;
  counts : int array;  (* counts.(slot * nres + r) = occupancy of the cell *)
  occ : int array;  (* planes * nres * wpr bit words, see header comment *)
  cells : int list array;  (* occupying ops of the cell, for eviction *)
  mutable bitprobes : int;  (* fits_c probes answered via the bit planes *)
  memo : ctable Tbl_memo.t;
      (* physical-equality cache backing the uncompiled API below *)
}

let create machine ~ii =
  if ii < 1 then invalid_arg "Mrt.create: ii must be >= 1";
  let nres = Machine.num_resources machine in
  let wpr = words_per_row ii in
  {
    ii;
    nres;
    wpr;
    caps = Array.map (fun (r : Resource.t) -> r.count) machine.Machine.resources;
    counts = Array.make (ii * nres) 0;
    occ = Array.make (planes * nres * wpr) 0;
    cells = Array.make (ii * nres) [];
    bitprobes = 0;
    memo = Tbl_memo.create 8;
  }

let linear machine ~horizon = create machine ~ii:(max 1 horizon)
let ii t = t.ii
let bitprobes t = t.bitprobes

(* --- compilation --------------------------------------------------------- *)

let pack_triples triples =
  let packed = Array.make (3 * List.length triples) 0 in
  List.iteri
    (fun i (slot, resource, mult) ->
      packed.(3 * i) <- slot;
      packed.((3 * i) + 1) <- resource;
      packed.((3 * i) + 2) <- mult)
    triples;
  packed

let compile ~ii ?caps (table : Reservation.t) =
  if ii < 1 then invalid_arg "Mrt.compile: ii must be >= 1";
  let triples = Reservation.collapse table ~modulus:ii in
  let packed = pack_triples triples in
  match caps with
  | None ->
      {
        c_ii = ii;
        packed;
        c_nres = 0;
        never_fits = false;
        bb_off = [||];
        bb_word = [||];
        bb_mask = [||];
        slow = packed;
      }
  | Some caps ->
      let nres = Array.length caps in
      let wpr = words_per_row ii in
      let never_fits =
        List.exists (fun (_, r, m) -> m > caps.(r)) triples
      in
      let fast, slow =
        List.partition (fun (_, r, m) -> caps.(r) - m < planes) triples
      in
      (* Merge the fast usages into per-word masks for every issue slot:
         at issue time [time], the usage (off, r, m) probes plane
         [caps r - m] of cell ((time + off) mod ii, r), and the slot
         dependence is only through time mod ii.  Flat arrays and a
         linear dedup scan over the (few) entries of the current slot —
         this runs per (opcode, II) in every candidate-II attempt, and
         an assoc-list version of it once turned the whole bench into
         minor-GC rendezvous thrash under multiple domains. *)
      let nfast = List.length fast in
      (* Per-usage precomputation: base word (plane, resource row) and
         the cell offset; [Reservation.collapse] returns offsets already
         reduced mod ii, so the inner loop can subtract instead of mod. *)
      let u_off = Array.make (max 1 nfast) 0 in
      let u_base = Array.make (max 1 nfast) 0 in
      List.iteri
        (fun j (off, r, m) ->
          u_off.(j) <- off;
          u_base.(j) <- (((caps.(r) - m) * nres) + r) * wpr)
        fast;
      let cap_entries = max 1 (ii * nfast) in
      let bb_word = Array.make cap_entries 0 in
      let bb_mask = Array.make cap_entries 0 in
      let bb_off = Array.make (ii + 1) 0 in
      let k = ref 0 in
      for s = 0 to ii - 1 do
        bb_off.(s) <- !k;
        for j = 0 to nfast - 1 do
          let cell =
            let c = s + u_off.(j) in
            if c >= ii then c - ii else c
          in
          let word = u_base.(j) + (cell / bits_per_word) in
          let bit = 1 lsl (cell mod bits_per_word) in
          let rec merge i =
            if i >= !k then begin
              bb_word.(!k) <- word;
              bb_mask.(!k) <- bit;
              incr k
            end
            else if bb_word.(i) = word then bb_mask.(i) <- bb_mask.(i) lor bit
            else merge (i + 1)
          in
          merge bb_off.(s)
        done
      done;
      bb_off.(ii) <- !k;
      {
        c_ii = ii;
        packed;
        c_nres = nres;
        never_fits;
        bb_off;
        bb_word = Array.sub bb_word 0 (max 1 !k);
        bb_mask = Array.sub bb_mask 0 (max 1 !k);
        slow = pack_triples slow;
      }

let compiled t table =
  match Tbl_memo.find_opt t.memo table with
  | Some c -> c
  | None ->
      let c = compile ~ii:t.ii ~caps:t.caps table in
      Tbl_memo.replace t.memo table c;
      c

let check_compiled t c =
  if c.c_ii <> t.ii then
    invalid_arg "Mrt: compiled table belongs to a different ii";
  if c.c_nres <> 0 && c.c_nres <> t.nres then
    invalid_arg "Mrt: compiled table belongs to a different machine"

(* --- the admission probe (allocation-free) ------------------------------- *)

(* Top-level recursion on purpose: a local [let rec] capturing the
   probe state compiles to a heap-allocated closure without flambda,
   and the whole point of the compiled form is a zero-allocation probe
   (asserted with Gc.allocated_bytes in the test suite). *)
let rec fits_from p len counts caps nres ii time i =
  i >= len
  ||
  let r = p.(i + 1) in
  let idx = (((time + p.(i)) mod ii) * nres) + r in
  counts.(idx) + p.(i + 2) <= caps.(r)
  && fits_from p len counts caps nres ii time (i + 3)

let rec bb_clear occ bw bm j j1 =
  j >= j1 || (occ.(bw.(j)) land bm.(j) = 0 && bb_clear occ bw bm (j + 1) j1)

let fits_c t c ~time =
  if time < 0 then invalid_arg "Mrt: negative time";
  check_compiled t c;
  if c.c_nres = 0 then
    let p = c.packed in
    fits_from p (Array.length p) t.counts t.caps t.nres t.ii time 0
  else begin
    t.bitprobes <- t.bitprobes + 1;
    (not c.never_fits)
    && (let s = time mod t.ii in
        bb_clear t.occ c.bb_word c.bb_mask c.bb_off.(s) c.bb_off.(s + 1))
    &&
    let p = c.slow in
    let len = Array.length p in
    len = 0 || fits_from p len t.counts t.caps t.nres t.ii time 0
  end

let conflicting_ops_c t ctabs ~time =
  if time < 0 then invalid_arg "Mrt: negative time";
  let ops = ref [] in
  Array.iter
    (fun c ->
      check_compiled t c;
      let p = c.packed in
      let i = ref 0 in
      while !i < Array.length p do
        let r = p.(!i + 1) in
        let idx = (((time + p.(!i)) mod t.ii) * t.nres) + r in
        if t.counts.(idx) + p.(!i + 2) > t.caps.(r) then
          ops := t.cells.(idx) @ !ops;
        i := !i + 3
      done)
    ctabs;
  List.sort_uniq compare !ops

(* Re-derive the two plane bits of cell (slot, r) from its count.
   Called after every count change; the bit planes are a pure function
   of the count matrix. *)
let sync_bits t ~slot ~r =
  let cnt = t.counts.((slot * t.nres) + r) in
  let w0 = (r * t.wpr) + (slot / bits_per_word) in
  let w1 = (t.nres * t.wpr) + w0 in
  let bit = 1 lsl (slot mod bits_per_word) in
  if cnt >= 1 then t.occ.(w0) <- t.occ.(w0) lor bit
  else t.occ.(w0) <- t.occ.(w0) land lnot bit;
  if cnt >= 2 then t.occ.(w1) <- t.occ.(w1) lor bit
  else t.occ.(w1) <- t.occ.(w1) land lnot bit

let reserve_c t ~op c ~time =
  if not (fits_c t c ~time) then
    invalid_arg "Mrt.reserve: reservation does not fit";
  let p = c.packed in
  let i = ref 0 in
  while !i < Array.length p do
    let slot = (time + p.(!i)) mod t.ii in
    let r = p.(!i + 1) in
    let idx = (slot * t.nres) + r in
    let mult = p.(!i + 2) in
    t.counts.(idx) <- t.counts.(idx) + mult;
    for _ = 1 to mult do
      t.cells.(idx) <- op :: t.cells.(idx)
    done;
    sync_bits t ~slot ~r;
    i := !i + 3
  done

let remove_once op occupants =
  let rec go = function
    | [] -> invalid_arg "Mrt.release: operation does not hold this cell"
    | x :: rest when x = op -> rest
    | x :: rest -> x :: go rest
  in
  go occupants

let release_c t ~op c ~time =
  if time < 0 then invalid_arg "Mrt: negative time";
  check_compiled t c;
  let p = c.packed in
  let i = ref 0 in
  while !i < Array.length p do
    let slot = (time + p.(!i)) mod t.ii in
    let r = p.(!i + 1) in
    let idx = (slot * t.nres) + r in
    let mult = p.(!i + 2) in
    for _ = 1 to mult do
      t.cells.(idx) <- remove_once op t.cells.(idx)
    done;
    t.counts.(idx) <- t.counts.(idx) - mult;
    sync_bits t ~slot ~r;
    i := !i + 3
  done

(* --- the Reservation.t front (memoized compilation) ---------------------- *)

let fits t table ~time = fits_c t (compiled t table) ~time

let conflicting_ops t tables ~time =
  conflicting_ops_c t (Array.of_list (List.map (compiled t) tables)) ~time

let reserve t ~op table ~time = reserve_c t ~op (compiled t table) ~time
let release t ~op table ~time = release_c t ~op (compiled t table) ~time

let occupants t ~slot ~resource = t.cells.(((slot mod t.ii) * t.nres) + resource)

let pp ppf t =
  Format.fprintf ppf "MRT(ii=%d)@." t.ii;
  for slot = 0 to t.ii - 1 do
    let cells = ref [] in
    for r = t.nres - 1 downto 0 do
      let ops = t.cells.((slot * t.nres) + r) in
      if ops <> [] then
        cells :=
          Printf.sprintf "r%d:{%s}" r
            (String.concat "," (List.map string_of_int ops))
          :: !cells
    done;
    if !cells <> [] then
      Format.fprintf ppf "  %3d | %s@." slot (String.concat " " !cells)
  done
