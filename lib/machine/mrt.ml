(* Two-layer representation, chosen for the admission probe:

   - [counts] is a flat [ii * nres] int matrix of occupancy counts; a
     fits probe reads it directly and performs no allocation.
   - [cells] is the matching matrix of occupant op-id lists, consulted
     only by the displacement machinery ([conflicting_ops], [release])
     and the printers — never by [fits].

   Reservation tables are precompiled ({!compile}) into a flat
   [(slot_offset, resource, mult)] int array (stride 3), with the
   [(at mod ii, resource)] collapse done once instead of per probe:
   two usages land in the same modulo cell iff their [at]s agree mod
   [ii], independently of the issue time, so the collapse is a property
   of the (table, ii) pair alone. *)

type ctable = { c_ii : int; packed : int array }

type t = {
  ii : int;
  nres : int;
  caps : int array;
  counts : int array;  (* counts.(slot * nres + r) = occupancy of the cell *)
  cells : int list array;  (* occupying ops of the cell, for eviction *)
  mutable memo : (Reservation.t * ctable) list;
      (* physical-equality cache backing the uncompiled API below; tables
         are built once per machine and shared, so this stays tiny *)
}

let create machine ~ii =
  if ii < 1 then invalid_arg "Mrt.create: ii must be >= 1";
  let nres = Machine.num_resources machine in
  {
    ii;
    nres;
    caps = Array.map (fun (r : Resource.t) -> r.count) machine.Machine.resources;
    counts = Array.make (ii * nres) 0;
    cells = Array.make (ii * nres) [];
    memo = [];
  }

let linear machine ~horizon = create machine ~ii:(max 1 horizon)
let ii t = t.ii

(* --- compilation --------------------------------------------------------- *)

let compile ~ii (table : Reservation.t) =
  if ii < 1 then invalid_arg "Mrt.compile: ii must be >= 1";
  let triples = Reservation.collapse table ~modulus:ii in
  let packed = Array.make (3 * List.length triples) 0 in
  List.iteri
    (fun i (slot, resource, mult) ->
      packed.(3 * i) <- slot;
      packed.((3 * i) + 1) <- resource;
      packed.((3 * i) + 2) <- mult)
    triples;
  { c_ii = ii; packed }

let compiled t table =
  match List.assq_opt table t.memo with
  | Some c -> c
  | None ->
      let c = compile ~ii:t.ii table in
      t.memo <- (table, c) :: t.memo;
      c

let check_compiled t c =
  if c.c_ii <> t.ii then
    invalid_arg "Mrt: compiled table belongs to a different ii"

(* --- the admission probe (allocation-free) ------------------------------- *)

(* Top-level recursion on purpose: a local [let rec] capturing the
   probe state compiles to a heap-allocated closure without flambda,
   and the whole point of the compiled form is a zero-allocation probe
   (asserted with Gc.allocated_bytes in the test suite). *)
let rec fits_from p len counts caps nres ii time i =
  i >= len
  ||
  let r = p.(i + 1) in
  let idx = (((time + p.(i)) mod ii) * nres) + r in
  counts.(idx) + p.(i + 2) <= caps.(r)
  && fits_from p len counts caps nres ii time (i + 3)

let fits_c t c ~time =
  if time < 0 then invalid_arg "Mrt: negative time";
  check_compiled t c;
  let p = c.packed in
  fits_from p (Array.length p) t.counts t.caps t.nres t.ii time 0

let conflicting_ops_c t ctabs ~time =
  if time < 0 then invalid_arg "Mrt: negative time";
  let ops = ref [] in
  Array.iter
    (fun c ->
      check_compiled t c;
      let p = c.packed in
      let i = ref 0 in
      while !i < Array.length p do
        let r = p.(!i + 1) in
        let idx = (((time + p.(!i)) mod t.ii) * t.nres) + r in
        if t.counts.(idx) + p.(!i + 2) > t.caps.(r) then
          ops := t.cells.(idx) @ !ops;
        i := !i + 3
      done)
    ctabs;
  List.sort_uniq compare !ops

let reserve_c t ~op c ~time =
  if not (fits_c t c ~time) then
    invalid_arg "Mrt.reserve: reservation does not fit";
  let p = c.packed in
  let i = ref 0 in
  while !i < Array.length p do
    let idx = (((time + p.(!i)) mod t.ii) * t.nres) + p.(!i + 1) in
    let mult = p.(!i + 2) in
    t.counts.(idx) <- t.counts.(idx) + mult;
    for _ = 1 to mult do
      t.cells.(idx) <- op :: t.cells.(idx)
    done;
    i := !i + 3
  done

let remove_once op occupants =
  let rec go = function
    | [] -> invalid_arg "Mrt.release: operation does not hold this cell"
    | x :: rest when x = op -> rest
    | x :: rest -> x :: go rest
  in
  go occupants

let release_c t ~op c ~time =
  if time < 0 then invalid_arg "Mrt: negative time";
  check_compiled t c;
  let p = c.packed in
  let i = ref 0 in
  while !i < Array.length p do
    let idx = (((time + p.(!i)) mod t.ii) * t.nres) + p.(!i + 1) in
    let mult = p.(!i + 2) in
    for _ = 1 to mult do
      t.cells.(idx) <- remove_once op t.cells.(idx)
    done;
    t.counts.(idx) <- t.counts.(idx) - mult;
    i := !i + 3
  done

(* --- the Reservation.t front (memoized compilation) ---------------------- *)

let fits t table ~time = fits_c t (compiled t table) ~time

let conflicting_ops t tables ~time =
  conflicting_ops_c t (Array.of_list (List.map (compiled t) tables)) ~time

let reserve t ~op table ~time = reserve_c t ~op (compiled t table) ~time
let release t ~op table ~time = release_c t ~op (compiled t table) ~time

let occupants t ~slot ~resource = t.cells.(((slot mod t.ii) * t.nres) + resource)

let pp ppf t =
  Format.fprintf ppf "MRT(ii=%d)@." t.ii;
  for slot = 0 to t.ii - 1 do
    let cells = ref [] in
    for r = t.nres - 1 downto 0 do
      let ops = t.cells.((slot * t.nres) + r) in
      if ops <> [] then
        cells :=
          Printf.sprintf "r%d:{%s}" r
            (String.concat "," (List.map string_of_int ops))
          :: !cells
    done;
    if !cells <> [] then
      Format.fprintf ppf "  %3d | %s@." slot (String.concat " " !cells)
  done
