type usage = { resource : int; at : int }
type t = { usages : usage list; length : int }

let make uses =
  let to_usage (resource, at) =
    if at < 0 then invalid_arg "Reservation.make: negative cycle";
    if resource < 0 then invalid_arg "Reservation.make: negative resource";
    { resource; at }
  in
  let usages =
    List.map to_usage uses
    |> List.sort (fun a b -> compare (a.at, a.resource) (b.at, b.resource))
  in
  let length = List.fold_left (fun acc u -> max acc (u.at + 1)) 0 usages in
  { usages; length }

let empty = { usages = []; length = 0 }
let is_empty t = t.usages = []

type shape = Simple | Block | Complex

let shape t =
  match t.usages with
  | [] -> Simple
  | { resource; at = 0 } :: rest ->
      let same_resource = List.for_all (fun u -> u.resource = resource) rest in
      let consecutive_from i rest =
        List.for_all2
          (fun u at -> u.at = at)
          rest
          (List.mapi (fun k _ -> i + k) rest)
      in
      if not same_resource then Complex
      else if rest = [] then Simple
      else if consecutive_from 1 rest then Block
      else Complex
  | _ -> Complex

let usage_count t acc =
  List.iter (fun u -> acc.(u.resource) <- acc.(u.resource) + 1) t.usages

(* Two usages occupy the same modulo cell iff their cycles agree modulo
   the wrap, independently of the issue time — the collapse is a
   property of the (table, modulus) pair alone, which is what lets the
   MRT precompile it. *)
let collapse t ~modulus =
  if modulus < 1 then invalid_arg "Reservation.collapse: modulus must be >= 1";
  let keys = List.map (fun u -> (u.at mod modulus, u.resource)) t.usages in
  List.map
    (fun ((slot, resource) as key) ->
      (slot, resource, List.length (List.filter (( = ) key) keys)))
    (List.sort_uniq compare keys)

let pp ppf t =
  let pp_usage ppf u = Format.fprintf ppf "r%d@@%d" u.resource u.at in
  Format.fprintf ppf "[%a]" (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.pp_print_string ppf "; ") pp_usage) t.usages

let pp_grid ~resources ppf tables =
  let height = List.fold_left (fun acc (_, t) -> max acc t.length) 0 tables in
  let col_width =
    Array.fold_left (fun acc (r : Resource.t) -> max acc (String.length r.name)) 4 resources
  in
  let uses t r cycle =
    List.exists (fun u -> u.resource = r && u.at = cycle) t.usages
  in
  let pad s = Printf.sprintf "%-*s" col_width s in
  List.iter
    (fun (name, t) ->
      Format.fprintf ppf "%s:@." name;
      Format.fprintf ppf "  Time | %s@."
        (String.concat " | "
           (Array.to_list (Array.map (fun (r : Resource.t) -> pad r.name) resources)));
      for cycle = 0 to height - 1 do
        let cells =
          Array.to_list
            (Array.map
               (fun (r : Resource.t) -> pad (if uses t r.id cycle then "X" else ""))
               resources)
        in
        Format.fprintf ppf "  %4d | %s@." cycle (String.concat " | " cells)
      done;
      Format.fprintf ppf "@.")
    tables
