type policy =
  | Fixed of int
  | Guided of { min_chunk : int; divisor : int }

let default = Guided { min_chunk = 1; divisor = 2 }

let size policy ~workers ~remaining =
  if remaining <= 0 then 0
  else
    match policy with
    | Fixed n -> min remaining (max 1 n)
    | Guided { min_chunk; divisor } ->
        let ideal = remaining / max 1 (divisor * workers) in
        min remaining (max (max 1 min_chunk) ideal)
