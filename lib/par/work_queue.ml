type t = {
  length : int;
  workers : int;
  policy : Chunk.policy;
  next : int Atomic.t;
  chunks : int Atomic.t;
}

let create ~policy ~workers ~length =
  {
    length;
    workers = max 1 workers;
    policy;
    next = Atomic.make 0;
    chunks = Atomic.make 0;
  }

let rec take t =
  let lo = Atomic.get t.next in
  if lo >= t.length then None
  else
    let n = Chunk.size t.policy ~workers:t.workers ~remaining:(t.length - lo) in
    let hi = min t.length (lo + n) in
    if Atomic.compare_and_set t.next lo hi then begin
      Atomic.incr t.chunks;
      Some (lo, hi)
    end
    else take t

let chunks_taken t = Atomic.get t.chunks
let length t = t.length
