(** A lock-free self-scheduling index queue over [0 .. length-1].

    Workers repeatedly {!take} a half-open index range; the head is a
    single [Atomic.t] advanced by compare-and-set, so the only shared
    mutable word is the cursor.  Which worker gets which chunk is
    non-deterministic; the set of indices handed out is always exactly
    [0 .. length-1], each exactly once — determinism of the overall run
    comes from writing results by index, not from the assignment. *)

type t

val create : policy:Chunk.policy -> workers:int -> length:int -> t

val take : t -> (int * int) option
(** The next [(lo, hi)] with [lo < hi], or [None] when the queue is
    drained.  Chunk sizes follow the policy's guided schedule. *)

val chunks_taken : t -> int
val length : t -> int
