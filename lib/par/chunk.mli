(** Chunk sizing for the self-scheduling work queue.

    A fixed chunk is predictable but either too coarse (stragglers: one
    worker stuck with the last big chunk while the rest idle) or too
    fine (contention on the queue head).  The {e guided} policy takes
    [remaining / (divisor * workers)] — big chunks while there is plenty
    of work, shrinking toward [min_chunk] near the tail, so a long-tail
    job (the 160-operation synthetic loops) arriving late cannot
    serialize the run behind it. *)

type policy =
  | Fixed of int  (** Every grab takes (up to) this many jobs. *)
  | Guided of { min_chunk : int; divisor : int }

val default : policy
(** [Guided { min_chunk = 1; divisor = 2 }]. *)

val size : policy -> workers:int -> remaining:int -> int
(** Never exceeds [remaining]; at least 1 when work remains. *)
