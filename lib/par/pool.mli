(** The domain fan-out/join around a work queue.

    [parallel_for ~workers ~queue body] runs [body i] once for every
    index the queue hands out, on [workers] domains ([workers - 1]
    spawned; the calling domain participates as the last worker), and
    returns only after every domain has joined — the barrier after which
    per-job results and telemetry shards are safe to read from the
    caller.

    [body] must confine its writes to slots it owns (its index): the
    engine above stores each job's outcome at [results.(i)], so no two
    domains ever race on a cell.  [body] should not raise — {!Exec}
    wraps every job in its own handler — but if it does, the exception
    propagates after all domains have joined. *)

val parallel_for : workers:int -> queue:Work_queue.t -> (int -> unit) -> unit
