let parallel_for ~workers ~queue body =
  let worker () =
    let rec loop () =
      match Work_queue.take queue with
      | None -> ()
      | Some (lo, hi) ->
          for i = lo to hi - 1 do
            body i
          done;
          loop ()
    in
    loop ()
  in
  if workers <= 1 then worker ()
  else begin
    let spawned = Array.init (workers - 1) (fun _ -> Domain.spawn worker) in
    (* The calling domain is the last worker; join even if it raises so
       no domain outlives the barrier. *)
    Fun.protect ~finally:(fun () -> Array.iter Domain.join spawned) worker
  end
