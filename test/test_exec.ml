(* Tests for the parallel batch-scheduling engine: the determinism
   contract (any --jobs produces the serial bytes), fault containment,
   soft timeouts, the chunked work queue, and telemetry shard merging. *)

open Ims_exec
open Ims_workloads

let machine = Ims_machine.Machine.cydra5 ()

(* --- Work queue ------------------------------------------------------------- *)

let test_queue_covers_all () =
  let q = Work_queue.create ~policy:Chunk.default ~workers:3 ~length:100 in
  let seen = Array.make 100 0 in
  let rec drain () =
    match Work_queue.take q with
    | None -> ()
    | Some (lo, hi) ->
        Alcotest.(check bool) "non-empty chunk" true (lo < hi);
        for i = lo to hi - 1 do
          seen.(i) <- seen.(i) + 1
        done;
        drain ()
  in
  drain ();
  Alcotest.(check bool) "every index exactly once" true
    (Array.for_all (fun c -> c = 1) seen);
  Alcotest.(check bool) "chunked, not one-by-one" true
    (Work_queue.chunks_taken q < 100)

let test_guided_chunks_shrink () =
  let sizes = ref [] in
  let q =
    Work_queue.create
      ~policy:(Chunk.Guided { min_chunk = 1; divisor = 2 })
      ~workers:4 ~length:1000
  in
  let rec drain () =
    match Work_queue.take q with
    | None -> ()
    | Some (lo, hi) ->
        sizes := (hi - lo) :: !sizes;
        drain ()
  in
  drain ();
  let sizes = List.rev !sizes in
  Alcotest.(check int) "first grab is big" 125 (List.hd sizes);
  Alcotest.(check bool) "monotone non-increasing" true
    (fst
       (List.fold_left
          (fun (ok, prev) s -> (ok && s <= prev, s))
          (true, max_int) sizes));
  Alcotest.(check int) "tail grabs are single jobs" 1
    (List.nth sizes (List.length sizes - 1))

let test_fixed_chunks () =
  Alcotest.(check int) "fixed capped by remaining" 3
    (Chunk.size (Chunk.Fixed 10) ~workers:4 ~remaining:3);
  Alcotest.(check int) "fixed" 10
    (Chunk.size (Chunk.Fixed 10) ~workers:4 ~remaining:50)

(* --- map: parallel = serial --------------------------------------------------- *)

let prop_map_equals_serial =
  QCheck.Test.make ~count:60 ~name:"exec: map at any jobs = List.map"
    QCheck.(triple (small_list small_int) (int_range 1 6) (int_range 1 5))
    (fun (xs, jobs, chunk) ->
      let f x = (x * x) + 7 in
      let policies =
        [ Chunk.Fixed chunk; Chunk.Guided { min_chunk = 1; divisor = chunk } ]
      in
      List.for_all
        (fun policy ->
          Exec.map ~jobs ~policy f xs
          = List.map (fun x -> Outcome.Done (f x)) xs)
        policies)

(* --- Fault containment --------------------------------------------------------- *)

let test_failure_contained () =
  let f x = if x = 3 then failwith "boom" else x * 10 in
  let outcomes = Exec.map ~jobs:4 f [ 0; 1; 2; 3; 4; 5 ] in
  List.iteri
    (fun i o ->
      match o with
      | Outcome.Done v ->
          Alcotest.(check bool) "index not 3" true (i <> 3);
          Alcotest.(check int) "value" (i * 10) v
      | Outcome.Failed e ->
          Alcotest.(check int) "only job 3 fails" 3 i;
          Alcotest.(check bool) "message survives" true
            (String.length e.Outcome.exn > 0
            && String.sub e.Outcome.exn 0 7 = "Failure")
      | Outcome.Timed_out _ | Outcome.Cancelled _ ->
          Alcotest.fail "unexpected timeout")
    outcomes;
  let _, _, stats = Exec.run ~jobs:4 ~f:(fun _ x -> f x) [ 0; 1; 2; 3; 4; 5 ] in
  Alcotest.(check int) "stats.ok" 5 stats.Exec.ok;
  Alcotest.(check int) "stats.failed" 1 stats.Exec.failed;
  Alcotest.(check int) "stats.timed_out" 0 stats.Exec.timed_out

let test_map_exn_raises_after_barrier () =
  let ran = Array.make 4 false in
  let f i =
    ran.(i) <- true;
    if i = 1 then failwith "boom" else i
  in
  (match Exec.map_exn ~jobs:2 f [ 0; 1; 2; 3 ] with
  | _ -> Alcotest.fail "expected Failure"
  | exception Failure _ -> ());
  Alcotest.(check bool) "every job still ran" true (Array.for_all Fun.id ran)

let test_soft_timeout () =
  (* Inject a deterministic timer: every reading advances one second, so
     with a 0.5 s limit every job overruns its two readings. *)
  let clock = ref 0.0 in
  let timer () =
    clock := !clock +. 1.0;
    !clock
  in
  let outcomes, _, stats =
    Exec.run ~jobs:1 ~timeout:0.5 ~timer ~f:(fun _ x -> x) [ 1; 2; 3 ]
  in
  Alcotest.(check int) "all timed out" 3 stats.Exec.timed_out;
  List.iter
    (fun o ->
      match o with
      | Outcome.Timed_out { elapsed; limit } ->
          Alcotest.(check (float 1e-9)) "elapsed" 1.0 elapsed;
          Alcotest.(check (float 1e-9)) "limit" 0.5 limit
      | _ -> Alcotest.fail "expected Timed_out")
    outcomes

let test_summary_line () =
  let _, _, stats =
    Exec.run ~jobs:2 ~f:(fun _ x -> if x = 0 then failwith "x" else x) [ 0; 1 ]
  in
  Alcotest.(check string) "summary"
    "2 jobs: 1 ok, 1 failed, 0 timed out; 2 workers, 2 chunks"
    (Exec.summary stats)

(* --- Telemetry merging ---------------------------------------------------------- *)

let test_counters_merge () =
  let a = Ims_mii.Counters.create () and b = Ims_mii.Counters.create () in
  a.Ims_mii.Counters.sched_steps <- 5;
  a.Ims_mii.Counters.mindist_inner <- 2;
  b.Ims_mii.Counters.sched_steps <- 7;
  b.Ims_mii.Counters.estart_inner <- 11;
  let m = Ims_mii.Counters.merge [ a; b ] in
  let manual = Ims_mii.Counters.create () in
  Ims_mii.Counters.add manual a;
  Ims_mii.Counters.add manual b;
  Alcotest.(check (list (pair string int)))
    "merge = fold add"
    (Ims_mii.Counters.to_assoc manual)
    (Ims_mii.Counters.to_assoc m)

let test_trace_absorb_renumbers () =
  let open Ims_obs in
  let shard1 = Trace.create () and shard2 = Trace.create () in
  Trace.instant shard1 "a";
  Trace.instant shard1 "b";
  Trace.instant shard2 "c";
  let merged = Trace.create () in
  Trace.absorb merged shard1;
  Trace.absorb merged shard2;
  (* The reference: one serial trace emitting the same payloads. *)
  let serial = Trace.create () in
  List.iter (Trace.instant serial) [ "a"; "b"; "c" ];
  Alcotest.(check bool) "merged stream = serial stream" true
    (Trace.events merged = Trace.events serial);
  Alcotest.(check (list int)) "seqs contiguous" [ 0; 1; 2 ]
    (List.map (fun (e : Event.t) -> e.Event.seq) (Trace.events merged))

let test_absorb_into_null_is_noop () =
  let open Ims_obs in
  let shard = Trace.create () in
  Trace.instant shard "x";
  Trace.absorb Trace.null shard;
  Alcotest.(check int) "null stays empty" 0
    (List.length (Trace.events Trace.null))

(* --- The 100-loop determinism property ------------------------------------------ *)

type record = {
  r_name : string;
  r_mii : int;
  r_ii : int;
  r_sl : int;
  r_steps : int;
  r_counters : (string * int) list;
}

let measure (shard : Shard.t) (case : Suite.case) =
  let out =
    Ims_core.Ims.modulo_schedule ~budget_ratio:6.0
      ~counters:shard.Shard.counters ~trace:shard.Shard.trace case.Suite.ddg
  in
  let sl =
    match out.Ims_core.Ims.schedule with
    | Some s -> Ims_core.Schedule.length s
    | None -> Alcotest.failf "%s did not schedule" case.Suite.name
  in
  {
    r_name = case.Suite.name;
    r_mii = out.Ims_core.Ims.mii.Ims_mii.Mii.mii;
    r_ii = out.Ims_core.Ims.ii;
    r_sl = sl;
    r_steps = out.Ims_core.Ims.steps_final;
    r_counters = Ims_mii.Counters.to_assoc out.Ims_core.Ims.counters;
  }

let metrics_jsonl records =
  let open Ims_obs in
  String.concat ""
    (List.map
       (fun r ->
         Json.to_string
           (Json.Obj
              ([
                 ("name", Json.String r.r_name);
                 ("mii", Json.Int r.r_mii);
                 ("ii", Json.Int r.r_ii);
                 ("sl", Json.Int r.r_sl);
                 ("steps", Json.Int r.r_steps);
               ]
              @ List.map
                  (fun (k, v) -> ("counters." ^ k, Json.Int v))
                  r.r_counters))
         ^ "\n")
       records)

let test_suite_determinism_across_jobs () =
  let run jobs =
    let cases = Suite.cases ~machine ~count:100 ~jobs () in
    let outcomes, merged, stats = Exec.run ~jobs ~f:measure cases in
    Alcotest.(check int) "no casualties" 100 stats.Exec.ok;
    (List.map Outcome.get_exn outcomes, merged)
  in
  let records1, merged1 = run 1 in
  let records4, merged4 = run 4 in
  Alcotest.(check bool) "identical record lists" true (records1 = records4);
  Alcotest.(check (list (pair string int)))
    "identical merged counters"
    (Ims_mii.Counters.to_assoc merged1.Shard.counters)
    (Ims_mii.Counters.to_assoc merged4.Shard.counters)

let test_suite_metrics_jsonl_identical () =
  let jsonl jobs =
    let cases = Suite.cases ~machine ~count:100 ~jobs () in
    metrics_jsonl
      (Exec.map_exn ~jobs (fun c -> measure (Shard.create ()) c) cases)
  in
  Alcotest.(check string) "metrics JSONL byte-identical" (jsonl 1) (jsonl 4)

let test_suite_generation_parallel_determinism () =
  let names jobs =
    List.map
      (fun c -> (c.Suite.name, Ims_ir.Ddg.n_real c.Suite.ddg))
      (Suite.cases ~machine ~count:80 ~jobs ())
  in
  Alcotest.(check (list (pair string int)))
    "generation identical at jobs 1 / 3" (names 1) (names 3)

let tests =
  ( "exec",
    [
      Alcotest.test_case "queue: full disjoint coverage" `Quick
        test_queue_covers_all;
      Alcotest.test_case "queue: guided sizes shrink" `Quick
        test_guided_chunks_shrink;
      Alcotest.test_case "queue: fixed policy" `Quick test_fixed_chunks;
      QCheck_alcotest.to_alcotest prop_map_equals_serial;
      Alcotest.test_case "containment: Failure isolated" `Quick
        test_failure_contained;
      Alcotest.test_case "containment: map_exn after barrier" `Quick
        test_map_exn_raises_after_barrier;
      Alcotest.test_case "containment: soft timeout" `Quick test_soft_timeout;
      Alcotest.test_case "stats: summary line" `Quick test_summary_line;
      Alcotest.test_case "telemetry: counters merge" `Quick test_counters_merge;
      Alcotest.test_case "telemetry: trace absorb renumbers" `Quick
        test_trace_absorb_renumbers;
      Alcotest.test_case "telemetry: absorb into null" `Quick
        test_absorb_into_null_is_noop;
      Alcotest.test_case "suite: records + counters at jobs 1 = 4" `Slow
        test_suite_determinism_across_jobs;
      Alcotest.test_case "suite: metrics JSONL at jobs 1 = 4" `Slow
        test_suite_metrics_jsonl_identical;
      Alcotest.test_case "suite: parallel generation deterministic" `Quick
        test_suite_generation_parallel_determinism;
    ] )
