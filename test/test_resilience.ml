(* Tests for the resilience layer: cooperative cancellation tokens,
   the retry-with-escalation policy, preemptive deadlines in the batch
   engine, the crash-safe journal, and the no-state-leak property of a
   cancelled-then-retried scheduling attempt. *)

open Ims_obs
open Ims_exec
open Ims_workloads

let machine = Ims_machine.Machine.cydra5 ()

(* --- Cancel tokens ------------------------------------------------------------ *)

let test_null_token_is_inert () =
  Cancel.poll Cancel.null;
  Cancel.cancel Cancel.null;
  Alcotest.(check bool) "null never cancelled" false (Cancel.cancelled Cancel.null);
  Alcotest.(check int) "null counts nothing" 0 (Cancel.polls Cancel.null);
  Alcotest.(check bool) "null has no deadline" true
    (Cancel.deadline Cancel.null = None)

let test_explicit_cancel_fires_on_poll () =
  let tok = Cancel.create () in
  Cancel.poll tok;
  Alcotest.(check bool) "not yet cancelled" false (Cancel.cancelled tok);
  Cancel.cancel tok;
  Alcotest.(check bool) "flag visible" true (Cancel.cancelled tok);
  match Cancel.poll tok with
  | () -> Alcotest.fail "poll after cancel must raise"
  | exception Cancel.Cancelled { limit; _ } ->
      Alcotest.(check bool) "no deadline attached" true (limit = infinity)

let test_max_polls_is_deterministic () =
  let tok = Cancel.create ~max_polls:5 () in
  for _ = 1 to 5 do
    Cancel.poll tok
  done;
  Alcotest.(check int) "five polls absorbed" 5 (Cancel.polls tok);
  match Cancel.poll tok with
  | () -> Alcotest.fail "sixth poll must fire"
  | exception Cancel.Cancelled _ ->
      Alcotest.(check bool) "token is now cancelled" true (Cancel.cancelled tok)

let test_injected_timer_deadline () =
  (* A fake clock that jumps past the deadline on its second reading
     (the first reading is [create]'s start-of-clock). *)
  let clock = ref 0.0 in
  let timer () =
    let t = !clock in
    clock := t +. 10.0;
    t
  in
  let tok = Cancel.create ~timer ~stride:1 ~deadline:5.0 () in
  Alcotest.(check bool) "deadline recorded" true
    (Cancel.deadline tok = Some 5.0);
  match Cancel.poll tok with
  | () -> Alcotest.fail "first poll must see the elapsed deadline"
  | exception Cancel.Cancelled { elapsed; limit } ->
      Alcotest.(check (float 1e-9)) "limit" 5.0 limit;
      Alcotest.(check bool) "elapsed past limit" true (elapsed > 5.0)

let test_parent_chaining () =
  let parent = Cancel.create () in
  let child = Cancel.create ~parent () in
  Cancel.poll child;
  Cancel.cancel parent;
  Alcotest.(check bool) "child sees parent flag" true (Cancel.cancelled child);
  match Cancel.poll child with
  | () -> Alcotest.fail "child poll must fire through the parent"
  | exception Cancel.Cancelled _ -> ()

(* --- Retry policy -------------------------------------------------------------- *)

let failed msg = Outcome.Failed { Outcome.exn = msg; backtrace = "" }

let test_retry_decision_matrix () =
  let p =
    Retry.create ~max_attempts:3 ~backoff:0.1 ~backoff_factor:2.0
      ~escalation:4.0
      ~transient:(fun m -> m = "transient glitch")
      ()
  in
  (* Success never retries. *)
  (match Retry.decide p ~attempt:1 (Outcome.Done ()) with
  | Retry.Give_up -> ()
  | Retry.Retry _ -> Alcotest.fail "Done must not retry");
  (* A transient failure backs off exponentially at fixed deadline. *)
  (match Retry.decide p ~attempt:2 (failed "transient glitch") with
  | Retry.Retry { backoff; deadline_scale } ->
      Alcotest.(check (float 1e-9)) "second backoff doubled" 0.2 backoff;
      Alcotest.(check (float 1e-9)) "no escalation" 1.0 deadline_scale
  | Retry.Give_up -> Alcotest.fail "transient failure must retry");
  (* A deterministic failure gives up immediately. *)
  (match Retry.decide p ~attempt:1 (failed "hard parse error") with
  | Retry.Give_up -> ()
  | Retry.Retry _ -> Alcotest.fail "hard failure must not retry");
  (* Resource casualties retry at once with an escalated deadline. *)
  (match
     Retry.decide p ~attempt:1 (Outcome.Cancelled { elapsed = 1.0; limit = 1.0 })
   with
  | Retry.Retry { backoff; deadline_scale } ->
      Alcotest.(check (float 1e-9)) "no backoff" 0.0 backoff;
      Alcotest.(check (float 1e-9)) "escalated" 4.0 deadline_scale
  | Retry.Give_up -> Alcotest.fail "cancelled must retry");
  (* The attempt cap beats everything. *)
  match Retry.decide p ~attempt:3 (failed "transient glitch") with
  | Retry.Give_up -> ()
  | Retry.Retry _ -> Alcotest.fail "attempt cap must hold"

let test_outcome_get_names_job () =
  (match Outcome.get ~job:7 (failed "boom") with
  | _ -> Alcotest.fail "must raise"
  | exception Failure msg ->
      Alcotest.(check bool) "message names the job" true
        (String.length msg >= 5 && String.sub msg 0 5 = "job 7"));
  match Outcome.get ~job:3 (Outcome.Cancelled { elapsed = 0.5; limit = 0.25 }) with
  | _ -> Alcotest.fail "must raise"
  | exception Failure msg ->
      Alcotest.(check bool) "cancelled message names the job" true
        (String.length msg >= 5 && String.sub msg 0 5 = "job 3")

(* --- Engine: preemptive deadline, retries, fail-fast ---------------------------- *)

let test_deadline_preempts_and_escalates () =
  (* Each attempt spins "forever" but polls its token, so the deadline
     preempts it; two attempts with escalation 2 then give up.  Total
     wall clock stays bounded by deadline * (1 + escalation). *)
  let attempts_seen = ref [] in
  let f (shard : Shard.t) () =
    attempts_seen := shard.Shard.attempt :: !attempts_seen;
    let stop = Unix.gettimeofday () +. 30.0 in
    while Unix.gettimeofday () < stop do
      Cancel.poll shard.Shard.cancel
    done
  in
  let retry = Retry.create ~max_attempts:2 ~escalation:2.0 () in
  let t0 = Unix.gettimeofday () in
  let outcomes, _, stats =
    Exec.run ~jobs:1 ~deadline:0.05 ~retry ~timer:Unix.gettimeofday ~f [ () ]
  in
  let wall = Unix.gettimeofday () -. t0 in
  Alcotest.(check bool) "wall clock bounded by the deadlines" true (wall < 10.0);
  (match outcomes with
  | [ Outcome.Cancelled { limit; _ } ] ->
      Alcotest.(check (float 1e-9)) "second attempt ran escalated" 0.1 limit
  | _ -> Alcotest.fail "expected a single Cancelled outcome");
  Alcotest.(check int) "two attempts" 2 stats.Exec.attempts;
  Alcotest.(check int) "one retried job" 1 stats.Exec.retried;
  Alcotest.(check int) "one cancelled job" 1 stats.Exec.cancelled;
  Alcotest.(check (list int)) "attempt numbers visible to the job" [ 2; 1 ]
    !attempts_seen

let has_substring s sub =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  n = 0 || go 0

let test_transient_failure_retried_to_success () =
  let retry =
    Retry.create ~max_attempts:3 ~backoff:0.0
      ~transient:(fun m -> has_substring m "transient")
      ()
  in
  let f (shard : Shard.t) x =
    if shard.Shard.attempt <= 1 then failwith "transient wobble" else x * 10
  in
  let outcomes, _, stats = Exec.run ~jobs:2 ~retry ~f [ 1; 2; 3 ] in
  Alcotest.(check int) "all ok" 3 stats.Exec.ok;
  Alcotest.(check int) "all retried" 3 stats.Exec.retried;
  Alcotest.(check int) "two attempts each" 6 stats.Exec.attempts;
  Alcotest.(check (list int)) "values from the second attempts" [ 10; 20; 30 ]
    (List.map Outcome.get_exn outcomes)

let test_on_result_fires_once_per_job () =
  let seen = ref [] in
  let outcomes, _, _ =
    Exec.run ~jobs:4
      ~on_result:(fun i o -> seen := (i, Outcome.is_done o) :: !seen)
      ~f:(fun _ x -> x * 2)
      [ 0; 1; 2; 3; 4; 5; 6; 7 ]
  in
  Alcotest.(check int) "eight outcomes" 8 (List.length outcomes);
  Alcotest.(check (list int)) "each index exactly once" [ 0; 1; 2; 3; 4; 5; 6; 7 ]
    (List.sort compare (List.map fst !seen));
  Alcotest.(check bool) "all reported done" true (List.for_all snd !seen)

let test_run_level_cancel_fail_fast () =
  (* jobs:1 runs inline in index order: job 0 fails, on_result trips the
     run token, and every later job is preempted without running. *)
  let tok = Cancel.create ~timer:Unix.gettimeofday () in
  let ran = ref [] in
  let outcomes, _, stats =
    Exec.run ~jobs:1 ~cancel:tok
      ~on_result:(fun _ o -> if not (Outcome.is_done o) then Cancel.cancel tok)
      ~f:(fun (shard : Shard.t) x ->
        Cancel.poll shard.Shard.cancel;
        ran := x :: !ran;
        if x = 0 then failwith "boom" else x)
      [ 0; 1; 2; 3 ]
  in
  Alcotest.(check int) "one hard failure" 1 stats.Exec.failed;
  Alcotest.(check int) "rest cancelled" 3 stats.Exec.cancelled;
  Alcotest.(check int) "no job after the trip ran its body" 1
    (List.length !ran);
  match outcomes with
  | [ Outcome.Failed _; Outcome.Cancelled _; Outcome.Cancelled _;
      Outcome.Cancelled _ ] ->
      ()
  | _ -> Alcotest.fail "expected Failed then Cancelled*3"

(* --- Scheduler integration: no state leaks across cancelled attempts ------------ *)

let snapshot ddg =
  let out = Ims_core.Ims.modulo_schedule ~budget_ratio:2.0 ddg in
  ( out.Ims_core.Ims.ii,
    out.Ims_core.Ims.attempts,
    match out.Ims_core.Ims.schedule with
    | None -> None
    | Some s ->
        Some
          ( s.Ims_core.Schedule.ii,
            Array.to_list
              (Array.map
                 (fun e -> (e.Ims_core.Schedule.time, e.Ims_core.Schedule.alt))
                 s.Ims_core.Schedule.entries) ) )

let prop_cancelled_attempt_leaks_no_state =
  QCheck.Test.make ~count:30
    ~name:"resilience: cancelled-then-retried schedule = fresh schedule"
    QCheck.(int_range 0 9999)
    (fun seed ->
      let ddg = Synthetic.generate machine (Random.State.make [| seed |]) in
      let fresh = snapshot ddg in
      (* Interleave an attempt that is preempted after a handful of
         scheduling steps (the poll cap makes the preemption point
         deterministic), then re-run: the retry must see no residue. *)
      (match
         Ims_core.Ims.modulo_schedule ~budget_ratio:2.0
           ~cancel:(Cancel.create ~max_polls:5 ())
           ddg
       with
      | _ -> ()
      | exception Cancel.Cancelled _ -> ());
      let retried = snapshot ddg in
      (* And an armed-but-unfired token must not perturb the search. *)
      let watched =
        match
          Ims_core.Ims.modulo_schedule ~budget_ratio:2.0
            ~cancel:(Cancel.create ~max_polls:max_int ())
            ddg
        with
        | out ->
            ( out.Ims_core.Ims.ii,
              out.Ims_core.Ims.attempts,
              match out.Ims_core.Ims.schedule with
              | None -> None
              | Some s ->
                  Some
                    ( s.Ims_core.Schedule.ii,
                      Array.to_list
                        (Array.map
                           (fun e ->
                             ( e.Ims_core.Schedule.time,
                               e.Ims_core.Schedule.alt ))
                           s.Ims_core.Schedule.entries) ) )
        | exception Cancel.Cancelled _ ->
            QCheck.Test.fail_report "unfired token must not cancel"
      in
      fresh = retried && fresh = watched)

let test_fallback_ladder_reraises_cancellation () =
  let ddg = Lfk.build machine "lfk07" in
  match
    Ims_check.Fallback.modulo_schedule_or_fallback
      ~cancel:(Cancel.create ~max_polls:3 ())
      ddg
  with
  | _ -> Alcotest.fail "crash containment must not swallow cancellation"
  | exception Cancel.Cancelled _ -> ()

(* --- Journal -------------------------------------------------------------------- *)

let temp_path name =
  Filename.concat (Filename.get_temp_dir_name ())
    (Printf.sprintf "ims_test_%s_%d" name (Unix.getpid ()))

let manifest hash jobs =
  { Journal.version = Journal.format_version; tool = "test"; hash; jobs; parts = [] }

let test_journal_roundtrip () =
  let path = temp_path "journal" in
  let w = Journal.create ~path (manifest "abc" 3) in
  Journal.append w ~index:0 (Json.Obj [ ("ii", Json.Int 4) ]);
  Journal.append w ~index:2 (Json.Obj [ ("ii", Json.Int 7) ]);
  Journal.close w;
  (match Journal.read ~path with
  | Error msg -> Alcotest.failf "read failed: %s" msg
  | Ok r ->
      Alcotest.(check string) "hash" "abc" r.Journal.manifest.Journal.hash;
      Alcotest.(check int) "jobs" 3 r.Journal.manifest.Journal.jobs;
      Alcotest.(check bool) "not torn" false r.Journal.torn;
      Alcotest.(check (list int)) "indices in file order" [ 0; 2 ]
        (List.map fst r.Journal.entries));
  (* Reopen and append: last-wins duplicate for index 0. *)
  let w = Journal.reopen ~path () in
  Journal.append w ~index:0 (Json.Obj [ ("ii", Json.Int 5) ]);
  Journal.close w;
  (match Journal.read ~path with
  | Error msg -> Alcotest.failf "re-read failed: %s" msg
  | Ok r ->
      Alcotest.(check (list int)) "duplicate preserved for last-wins fold"
        [ 0; 2; 0 ]
        (List.map fst r.Journal.entries));
  Sys.remove path

let test_journal_tolerates_torn_tail () =
  let path = temp_path "torn" in
  let w = Journal.create ~path (manifest "h" 2) in
  Journal.append w ~index:0 (Json.Obj [ ("ok", Json.Bool true) ]);
  Journal.close w;
  (* Simulate a SIGKILL mid-append: a record prefix with no newline. *)
  let oc = open_out_gen [ Open_append ] 0o644 path in
  output_string oc "{\"kind\":\"job\",\"index\":1,\"li";
  close_out oc;
  (match Journal.read ~path with
  | Error msg -> Alcotest.failf "torn tail must be tolerated: %s" msg
  | Ok r ->
      Alcotest.(check bool) "torn reported" true r.Journal.torn;
      Alcotest.(check (list int)) "intact records kept" [ 0 ]
        (List.map fst r.Journal.entries));
  (* Reopen must truncate the fragment, or the next append would fuse
     with it into one corrupt line and poison a second resume. *)
  let w = Journal.reopen ~path () in
  Journal.append w ~index:1 (Json.Obj [ ("ok", Json.Bool true) ]);
  Journal.close w;
  (match Journal.read ~path with
  | Error msg -> Alcotest.failf "resumed journal must stay readable: %s" msg
  | Ok r ->
      Alcotest.(check bool) "no longer torn" false r.Journal.torn;
      Alcotest.(check (list int)) "fragment replaced by the real record"
        [ 0; 1 ]
        (List.map fst r.Journal.entries));
  Sys.remove path

let test_journal_rejects_midfile_corruption () =
  let path = temp_path "corrupt" in
  let w = Journal.create ~path (manifest "h" 2) in
  Journal.append w ~index:0 (Json.Obj [ ("ok", Json.Bool true) ]);
  Journal.close w;
  (* A torn line that is NOT final (a complete record follows) is
     corruption, not a crash artifact. *)
  let oc = open_out_gen [ Open_append ] 0o644 path in
  output_string oc "garbage not json\n";
  output_string oc "{\"kind\":\"job\",\"index\":1,\"line\":{}}\n";
  close_out oc;
  (match Journal.read ~path with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "mid-file corruption must be rejected");
  Sys.remove path

let test_journal_rejects_future_version () =
  (* [create] always stamps the current format version, so a future
     journal has to be forged by hand. *)
  let path = temp_path "version" in
  let oc = open_out path in
  Printf.fprintf oc
    "{\"kind\":\"manifest\",\"version\":%d,\"tool\":\"test\",\"hash\":\"h\",\"jobs\":1}\n"
    (Journal.format_version + 1);
  close_out oc;
  (match Journal.read ~path with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "future format version must be rejected");
  Sys.remove path

let test_manifest_hash_sensitivity () =
  let h = Journal.manifest_hash [ "machine"; "flags"; "corpus" ] in
  Alcotest.(check bool) "hash is order-sensitive" true
    (h <> Journal.manifest_hash [ "flags"; "machine"; "corpus" ]);
  Alcotest.(check bool) "hash sees content" true
    (h <> Journal.manifest_hash [ "machine"; "flags"; "corpus2" ]);
  Alcotest.(check string) "hash is stable" h
    (Journal.manifest_hash [ "machine"; "flags"; "corpus" ])

let tests =
  ( "resilience",
    [
      Alcotest.test_case "cancel: null token inert" `Quick test_null_token_is_inert;
      Alcotest.test_case "cancel: explicit cancel fires on poll" `Quick
        test_explicit_cancel_fires_on_poll;
      Alcotest.test_case "cancel: max_polls deterministic" `Quick
        test_max_polls_is_deterministic;
      Alcotest.test_case "cancel: injected-timer deadline" `Quick
        test_injected_timer_deadline;
      Alcotest.test_case "cancel: parent chaining" `Quick test_parent_chaining;
      Alcotest.test_case "retry: decision matrix" `Quick test_retry_decision_matrix;
      Alcotest.test_case "outcome: get names the job" `Quick
        test_outcome_get_names_job;
      Alcotest.test_case "engine: deadline preempts and escalates" `Quick
        test_deadline_preempts_and_escalates;
      Alcotest.test_case "engine: transient failure retried to success" `Quick
        test_transient_failure_retried_to_success;
      Alcotest.test_case "engine: on_result once per job" `Quick
        test_on_result_fires_once_per_job;
      Alcotest.test_case "engine: run-level cancel fail-fast" `Quick
        test_run_level_cancel_fail_fast;
      QCheck_alcotest.to_alcotest prop_cancelled_attempt_leaks_no_state;
      Alcotest.test_case "ladder: re-raises cancellation" `Quick
        test_fallback_ladder_reraises_cancellation;
      Alcotest.test_case "journal: roundtrip + reopen" `Quick
        test_journal_roundtrip;
      Alcotest.test_case "journal: torn tail tolerated" `Quick
        test_journal_tolerates_torn_tail;
      Alcotest.test_case "journal: mid-file corruption rejected" `Quick
        test_journal_rejects_midfile_corruption;
      Alcotest.test_case "journal: future version rejected" `Quick
        test_journal_rejects_future_version;
      Alcotest.test_case "journal: manifest hash sensitivity" `Quick
        test_manifest_hash_sensitivity;
    ] )
