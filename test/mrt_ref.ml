(* Reference modulo reservation table: the original list-and-Hashtbl
   implementation, kept verbatim as an executable oracle for the
   count-matrix rewrite in [Ims_machine.Mrt].  Property tests drive both
   implementations with the same random command sequences and require
   every observable — fits verdicts, conflict sets, occupant lists, the
   printed grid — to agree exactly. *)

open Ims_machine

type t = {
  ii : int;
  caps : int array;
  cells : int list array array;  (* cells.(slot).(resource) = occupying ops *)
}

let create machine ~ii =
  if ii < 1 then invalid_arg "Mrt.create: ii must be >= 1";
  let nres = Machine.num_resources machine in
  {
    ii;
    caps = Array.map (fun (r : Resource.t) -> r.count) machine.Machine.resources;
    cells = Array.init ii (fun _ -> Array.make nres []);
  }

let slot_of t time =
  if time < 0 then invalid_arg "Mrt: negative time";
  time mod t.ii

(* Demand of a reservation table translated to [time], as a list of
   ((slot, resource), multiplicity) with no duplicate keys. *)
let demand t (table : Reservation.t) ~time =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun (u : Reservation.usage) ->
      let key = (slot_of t (time + u.at), u.resource) in
      let prev = Option.value ~default:0 (Hashtbl.find_opt tbl key) in
      Hashtbl.replace tbl key (prev + 1))
    table.usages;
  Hashtbl.fold (fun key count acc -> (key, count) :: acc) tbl []

let fits t table ~time =
  List.for_all
    (fun (((slot, resource), count) : (int * int) * int) ->
      List.length t.cells.(slot).(resource) + count <= t.caps.(resource))
    (demand t table ~time)

let conflicting_ops t tables ~time =
  let ops = ref [] in
  List.iter
    (fun table ->
      List.iter
        (fun (((slot, resource), count) : (int * int) * int) ->
          let occupants = t.cells.(slot).(resource) in
          if List.length occupants + count > t.caps.(resource) then
            ops := occupants @ !ops)
        (demand t table ~time))
    tables;
  List.sort_uniq compare !ops

let reserve t ~op table ~time =
  if not (fits t table ~time) then
    invalid_arg "Mrt.reserve: reservation does not fit";
  List.iter
    (fun (u : Reservation.usage) ->
      let slot = slot_of t (time + u.at) in
      t.cells.(slot).(u.resource) <- op :: t.cells.(slot).(u.resource))
    table.Reservation.usages

let remove_once op occupants =
  let rec go = function
    | [] -> invalid_arg "Mrt.release: operation does not hold this cell"
    | x :: rest when x = op -> rest
    | x :: rest -> x :: go rest
  in
  go occupants

let release t ~op table ~time =
  List.iter
    (fun (u : Reservation.usage) ->
      let slot = slot_of t (time + u.at) in
      t.cells.(slot).(u.resource) <- remove_once op t.cells.(slot).(u.resource))
    table.Reservation.usages

let occupants t ~slot ~resource = t.cells.(slot mod t.ii).(resource)

let pp ppf t =
  Format.fprintf ppf "MRT(ii=%d)@." t.ii;
  Array.iteri
    (fun slot row ->
      let cells =
        Array.to_list row
        |> List.mapi (fun r ops ->
               if ops = [] then None
               else
                 Some
                   (Printf.sprintf "r%d:{%s}" r
                      (String.concat "," (List.map string_of_int ops))))
        |> List.filter_map Fun.id
      in
      if cells <> [] then
        Format.fprintf ppf "  %3d | %s@." slot (String.concat " " cells))
    t.cells
