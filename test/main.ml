let () =
  Alcotest.run "ims"
    [
      Test_machine.tests;
      Test_graph.tests;
      Test_ir.tests;
      Test_mii.tests;
      Test_core.tests;
      Test_hotpath.tests;
      Test_pipeline.tests;
      Test_workloads.tests;
      Test_stats.tests;
      Test_obs.tests;
      Test_runobs.tests;
      Test_check.tests;
      Test_exec.tests;
      Test_resilience.tests;
      Test_fleet.tests;
      Test_serve.tests;
      Test_integration.tests;
    ]
