(* Run-level observability: aggregated profiles, the perf-regression
   gate, live status heartbeats, and the leveled logger.  The unit-level
   counterpart of the CLI smoke tests in test/cli. *)

open Ims_obs

(* --- percentiles ----------------------------------------------------------- *)

let test_percentile_edges () =
  Alcotest.(check (option (float 0.0)))
    "empty list has no percentiles" None
    (Profile.percentile [] 0.5);
  List.iter
    (fun q ->
      Alcotest.(check (option (float 0.0)))
        (Printf.sprintf "single sample answers q=%g" q)
        (Some 7.0)
        (Profile.percentile [ 7.0 ] q))
    [ 0.0; 0.5; 0.9; 0.99; 1.0 ];
  List.iter
    (fun q ->
      Alcotest.(check (option (float 0.0)))
        (Printf.sprintf "all-equal samples answer that value at q=%g" q)
        (Some 3.0)
        (Profile.percentile [ 3.0; 3.0; 3.0; 3.0 ] q))
    [ 0.0; 0.5; 1.0 ];
  (* Nearest rank on 1..10: rank = ceil(q*n), clamped into [1, n]. *)
  let samples = List.init 10 (fun i -> float_of_int (10 - i)) in
  List.iter
    (fun (q, expect) ->
      Alcotest.(check (option (float 0.0)))
        (Printf.sprintf "nearest-rank q=%g on 1..10" q)
        (Some expect)
        (Profile.percentile samples q))
    [ (0.0, 1.0); (0.5, 5.0); (0.9, 9.0); (0.99, 10.0); (1.0, 10.0) ]

let test_summarize () =
  Alcotest.(check bool) "empty summarizes to None" true
    (Profile.summarize [] = None);
  match Profile.summarize (List.init 10 (fun i -> float_of_int (i + 1))) with
  | None -> Alcotest.fail "1..10 must summarize"
  | Some s ->
      Alcotest.(check int) "count" 10 s.Profile.count;
      Alcotest.(check (float 1e-9)) "sum" 55.0 s.Profile.sum;
      Alcotest.(check (float 1e-9)) "mean" 5.5 s.Profile.mean;
      Alcotest.(check (float 0.0)) "min" 1.0 s.Profile.min;
      Alcotest.(check (float 0.0)) "max" 10.0 s.Profile.max;
      Alcotest.(check (float 0.0)) "p50" 5.0 s.Profile.p50;
      Alcotest.(check (float 0.0)) "p90" 9.0 s.Profile.p90;
      Alcotest.(check (float 0.0)) "p99" 10.0 s.Profile.p99

(* --- profile fold determinism ---------------------------------------------- *)

(* Counter totals/maxima and series contents depend only on the job
   set; the engine folds shards in input order after the barrier, so
   the readout must be identical at any worker count. *)
let test_exec_profile_worker_invariant () =
  let job (shard : Ims_exec.Shard.t) i =
    Trace.with_span shard.Ims_exec.Shard.trace "work" (fun () ->
        let c =
          Ims_mii.Counters.of_assoc
            [ ("sched", (i * 7) mod 13); ("mindist", i + 1) ]
        in
        Ims_mii.Counters.add shard.Ims_exec.Shard.counters c;
        i * i)
  in
  let inputs = List.init 24 Fun.id in
  let run jobs =
    let p = Profile.create () in
    let _, _, _ = Ims_exec.Exec.run ~jobs ~profile:p ~f:job inputs in
    p
  in
  let p1 = run 1 and p4 = run 4 in
  Alcotest.(check int) "job count" 24 (Profile.jobs p4);
  Alcotest.(check bool) "counter totals+maxima identical at jobs 1 vs 4" true
    (Profile.counters p1 = Profile.counters p4);
  Alcotest.(check bool) "phase names+counts identical" true
    (List.map (fun (n, (c, _s)) -> (n, c)) (Profile.phases p1)
    = List.map (fun (n, (c, _s)) -> (n, c)) (Profile.phases p4));
  let series_counts p =
    List.map (fun (n, s) -> (n, s.Profile.count)) (Profile.series p)
  in
  Alcotest.(check bool) "series names+counts identical" true
    (series_counts p1 = series_counts p4);
  Alcotest.(check bool) "latency series covers every job" true
    (List.mem_assoc Profile.latency_series (series_counts p4)
    && List.assoc Profile.latency_series (series_counts p4) = 24)

(* --- status heartbeats ------------------------------------------------------ *)

let with_tmp_dir f =
  let dir = Filename.temp_file "ims_runobs" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () ->
      Array.iter (fun e -> Sys.remove (Filename.concat dir e)) (Sys.readdir dir);
      Sys.rmdir dir)
    (fun () -> f dir)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let test_status_atomic_write () =
  with_tmp_dir (fun dir ->
      let path = Filename.concat dir "status.json" in
      let snap done_ =
        {
          Status.phase = "batch";
          counts = { (Status.zero ~total:10) with Status.ok = done_ };
          elapsed = 1.0;
        }
      in
      (* Every publication replaces the file whole: after any number of
         rewrites the path parses as one complete snapshot. *)
      for i = 0 to 9 do
        Status.write_atomic ~path (Json.to_string (Status.to_json (snap i)))
      done;
      (match Json.of_string (read_file path) with
      | Error e -> Alcotest.failf "status must parse after rewrites: %s" e
      | Ok (Json.Obj kvs) ->
          Alcotest.(check bool) "last snapshot wins" true
            (List.assoc_opt "done" kvs = Some (Json.Int 9));
          Alcotest.(check bool) "running defaults true" true
            (List.assoc_opt "running" kvs = Some (Json.Bool true))
      | Ok _ -> Alcotest.fail "status must be a JSON object");
      Alcotest.(check (list string))
        "no temp files survive publication" [ "status.json" ]
        (Array.to_list (Sys.readdir dir)))

let test_status_writer_rate_limit_and_finish () =
  with_tmp_dir (fun dir ->
      let path = Filename.concat dir "status.json" in
      let now = ref 0.0 in
      let w = Status.writer ~interval:1.0 ~file:path ~timer:(fun () -> !now) () in
      let snap ok =
        {
          Status.phase = "batch";
          counts = { (Status.zero ~total:4) with Status.ok = ok };
          elapsed = !now;
        }
      in
      Status.heartbeat w (snap 1);
      let first = read_file path in
      now := 0.4;
      Status.heartbeat w (snap 2);
      Alcotest.(check string)
        "inside the interval the heartbeat is suppressed" first
        (read_file path);
      now := 1.5;
      Status.heartbeat w (snap 3);
      Alcotest.(check bool) "past the interval it publishes" true
        (read_file path <> first);
      now := 1.6;
      Status.finish w (snap 4);
      match Json.of_string (read_file path) with
      | Ok (Json.Obj kvs) ->
          Alcotest.(check bool) "finish publishes unconditionally" true
            (List.assoc_opt "ok" kvs = Some (Json.Int 4));
          Alcotest.(check bool) "finish marks running:false" true
            (List.assoc_opt "running" kvs = Some (Json.Bool false))
      | _ -> Alcotest.fail "final status must parse")

(* --- the perf-regression gate ----------------------------------------------- *)

let snapshot ?(suite = 2) ?(mindist = 100) ?(ii = 5) ?(measure = 1.0) () =
  Json.Obj
    [
      ("suite_count", Json.Int suite);
      ("counters", Json.Obj [ ("mindist", Json.Int mindist) ]);
      ( "ii_histogram",
        Json.List
          [ Json.Obj [ ("ii", Json.Int ii); ("loops", Json.Int suite) ] ] );
      ( "phases",
        Json.List
          [
            Json.Obj
              [
                ("name", Json.String "measure (table 3)");
                ("seconds", Json.Float measure);
              ];
          ] );
    ]

let test_baseline_gate () =
  let baseline = snapshot () in
  Alcotest.(check int) "identical snapshots pass" 0
    (List.length
       (Baseline.compare_snapshots ~baseline ~current:(snapshot ()) ()));
  (* Counters are tight-gated: +10% default tolerance. *)
  let regs =
    Baseline.compare_snapshots ~baseline ~current:(snapshot ~mindist:200 ()) ()
  in
  (match regs with
  | [ r ] ->
      Alcotest.(check string) "the regression names its metric"
        "counters.mindist" r.Baseline.metric;
      Alcotest.(check bool) "describe names metric and magnitude" true
        (let d = Baseline.describe r in
         String.length d > 0
         && String.sub d 0 (String.length "counters.mindist:")
            = "counters.mindist:")
  | _ -> Alcotest.failf "expected exactly one regression, got %d" (List.length regs));
  Alcotest.(check int) "within tolerance passes" 0
    (List.length
       (Baseline.compare_snapshots ~baseline ~current:(snapshot ~mindist:109 ())
          ()));
  (* Wall clock is loose-gated and separately tunable. *)
  Alcotest.(check int) "4x slower phase trips the default 300%" 1
    (List.length
       (Baseline.compare_snapshots ~baseline
          ~current:(snapshot ~measure:4.5 ())
          ()));
  Alcotest.(check int) "a looser time tolerance admits it" 0
    (List.length
       (Baseline.compare_snapshots ~time_tolerance:10.0 ~baseline
          ~current:(snapshot ~measure:4.5 ())
          ()));
  (* A different suite makes every number incomparable. *)
  match
    Baseline.compare_snapshots ~baseline
      ~current:(snapshot ~suite:3 ~mindist:999 ())
      ()
  with
  | [ r ] ->
      Alcotest.(check string) "suite mismatch is the sole regression"
        "suite_count" r.Baseline.metric
  | regs ->
      Alcotest.failf "suite mismatch must be sole, got %d" (List.length regs)

(* --- leveled logging --------------------------------------------------------- *)

let test_log_styles_and_threshold () =
  with_tmp_dir (fun dir ->
      let human_path = Filename.concat dir "human.log" in
      let jsonl_path = Filename.concat dir "log.jsonl" in
      let human = open_out human_path and jsonl = open_out jsonl_path in
      let log = Log.create ~style:Log.Bracket ~human ~tag:"bench" () in
      Log.attach_jsonl log jsonl;
      Log.debug log "dropped below the %s threshold" "Info";
      Log.info log "measured %d loops" 300;
      Log.warn log "torn record";
      Log.error log "regression vs %s" "BENCH_4.json";
      close_out human;
      close_out jsonl;
      Alcotest.(check (list string))
        "human lines carry the prefix discipline"
        [
          "[bench] measured 300 loops";
          "[bench] warning: torn record";
          "[bench] error: regression vs BENCH_4.json";
        ]
        (String.split_on_char '\n' (String.trim (read_file human_path)));
      let lines =
        String.split_on_char '\n' (String.trim (read_file jsonl_path))
      in
      Alcotest.(check int) "jsonl drops sub-threshold lines" 3
        (List.length lines);
      List.iter
        (fun line ->
          match Json.of_string line with
          | Ok (Json.Obj kvs) ->
              Alcotest.(check bool) "jsonl lines carry tag+level+msg" true
                (List.mem_assoc "tag" kvs && List.mem_assoc "level" kvs
               && List.mem_assoc "msg" kvs)
          | _ -> Alcotest.failf "jsonl line must parse: %s" line)
        lines;
      let colon_path = Filename.concat dir "colon.log" in
      let colon = open_out colon_path in
      let cli = Log.create ~human:colon ~tag:"imsc batch" () in
      Log.info cli "resuming";
      Log.warn cli "cancelling outstanding jobs";
      close_out colon;
      Alcotest.(check (list string))
        "colon style matches the CLI's historical prefix"
        [ "imsc batch: resuming"; "imsc batch: warning: cancelling outstanding jobs" ]
        (String.split_on_char '\n' (String.trim (read_file colon_path))))

(* --- counters key dedupe ----------------------------------------------------- *)

let test_counters_field_table () =
  Alcotest.(check (list string))
    "the canonical key list, in declaration order"
    [
      "scc"; "resmii"; "mindist"; "mindist_calls"; "mindist_inc"; "heightr";
      "estart"; "findslot"; "mrt_bitprobe"; "sched"; "sched_final";
    ]
    Ims_mii.Counters.names;
  let c =
    Ims_mii.Counters.of_assoc
      [ ("sched", 41); ("unknown_key", 999); ("mindist", 11) ]
  in
  let kvs = Ims_mii.Counters.to_assoc c in
  Alcotest.(check int) "of_assoc round-trips known keys" 41
    (List.assoc "sched" kvs);
  Alcotest.(check int) "missing keys default to 0" 0 (List.assoc "scc" kvs);
  Alcotest.(check bool) "unknown keys are ignored" true
    (not (List.mem_assoc "unknown_key" kvs));
  Alcotest.(check (list string))
    "to_assoc keys are exactly the canonical list" Ims_mii.Counters.names
    (List.map fst kvs)

let tests =
  ( "runobs",
    [
      Alcotest.test_case "percentile edge cases" `Quick test_percentile_edges;
      Alcotest.test_case "summarize 1..10" `Quick test_summarize;
      Alcotest.test_case "exec profile worker-invariant" `Quick
        test_exec_profile_worker_invariant;
      Alcotest.test_case "status atomic write" `Quick test_status_atomic_write;
      Alcotest.test_case "status writer rate limit + finish" `Quick
        test_status_writer_rate_limit_and_finish;
      Alcotest.test_case "baseline regression gate" `Quick test_baseline_gate;
      Alcotest.test_case "log styles + threshold + jsonl" `Quick
        test_log_styles_and_threshold;
      Alcotest.test_case "counters field table" `Quick
        test_counters_field_table;
    ] )
