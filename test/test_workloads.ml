(* Tests for the workload substrate: the LFK translations, the calibrated
   synthetic generator, the suite assembly and the loop parser. *)

open Ims_machine
open Ims_ir
open Ims_workloads

let machine = Machine.cydra5 ()

(* --- LFK -------------------------------------------------------------------- *)

let test_lfk_count () =
  Alcotest.(check int) "27 loops, as in the paper" 27 (List.length Lfk.names)

let test_lfk_all_build () =
  List.iter
    (fun (name, ddg) ->
      Alcotest.(check bool)
        (name ^ " has the 4-op minimum")
        true
        (Ddg.n_real ddg >= 4))
    (Lfk.all machine)

let test_lfk_unknown_name () =
  Alcotest.check_raises "unknown kernel" Not_found (fun () ->
      ignore (Lfk.build machine "lfk99"))

let test_lfk_inner_product_is_reduction () =
  let ddg = Lfk.build machine "lfk03" in
  let m = Ims_mii.Mii.compute ddg in
  (* q += z*x carries a flow dependence through the fadd. *)
  Alcotest.(check int) "recmii = fadd latency" 4 m.Ims_mii.Mii.recmii

let test_lfk_tridiagonal_recurrence () =
  let ddg = Lfk.build machine "lfk05" in
  let m = Ims_mii.Mii.compute ddg in
  (* fsub + fmul around the loop: 4 + 5. *)
  Alcotest.(check int) "first-order recurrence" 9 m.Ims_mii.Mii.recmii

let test_lfk_hydro_vectorizable () =
  let ddg = Lfk.build machine "lfk01" in
  let m = Ims_mii.Mii.compute ddg in
  Alcotest.(check bool) "resource bound dominates" true
    (m.Ims_mii.Mii.resmii >= m.Ims_mii.Mii.recmii)

let test_lfk_transport_divide_recurrence () =
  let ddg = Lfk.build machine "lfk20" in
  let m = Ims_mii.Mii.compute ddg in
  Alcotest.(check bool) "divide in the recurrence" true
    (m.Ims_mii.Mii.recmii >= 22)

let test_lfk_first_min_predicated () =
  let ddg = Lfk.build machine "lfk24" in
  let predicated =
    List.filter (fun i -> (Ddg.op ddg i).Op.pred <> None) (Ddg.real_ids ddg)
  in
  Alcotest.(check int) "two predicated copies" 2 (List.length predicated)

let test_lfk_all_schedule_and_verify () =
  List.iter
    (fun (name, ddg) ->
      match (Ims_core.Ims.modulo_schedule ddg).Ims_core.Ims.schedule with
      | Some s -> (
          match Ims_core.Schedule.verify s with
          | Ok () -> ()
          | Error es ->
              Alcotest.failf "%s invalid: %s" name (String.concat "; " es))
      | None -> Alcotest.failf "%s failed to schedule" name)
    (Lfk.all machine)

let test_lfk_memory_recurrence_edges () =
  let ddg = Lfk.build machine "lfk06" in
  let has_mem_backedge =
    Array.exists
      (fun edges ->
        List.exists
          (fun (d : Dep.t) ->
            d.distance = 1
            && (Ddg.op ddg d.src).Op.opcode = "store"
            && (Ddg.op ddg d.dst).Op.opcode = "load")
          edges)
      ddg.Ddg.succs
  in
  Alcotest.(check bool) "store -> load back edge" true has_mem_backedge

(* --- Synthetic generator ------------------------------------------------------ *)

let batch = Synthetic.batch machine ~seed:7 ~count:400

let test_synthetic_deterministic () =
  let again = Synthetic.batch machine ~seed:7 ~count:5 in
  let sizes b = List.map (fun (_, d, _) -> Ddg.n_real d) b in
  Alcotest.(check (list int))
    "same seed, same loops"
    (sizes (List.filteri (fun i _ -> i < 5) batch))
    (sizes again)

let test_synthetic_size_distribution () =
  let sizes = List.map (fun (_, d, _) -> float_of_int (Ddg.n_real d)) batch in
  let median = Ims_stats.Distribution.quantile sizes 0.5 in
  let mean = Ims_stats.Distribution.mean sizes in
  Alcotest.(check bool)
    (Printf.sprintf "median near 12 (got %.1f)" median)
    true
    (median >= 8.0 && median <= 17.0);
  Alcotest.(check bool)
    (Printf.sprintf "mean near 19.5 (got %.1f)" mean)
    true
    (mean >= 14.0 && mean <= 26.0);
  Alcotest.(check bool) "long tail" true
    (List.exists (fun s -> s > 60.0) sizes);
  Alcotest.(check bool) "minimum 4" true (List.for_all (fun s -> s >= 4.0) sizes)

let test_synthetic_scc_structure () =
  let no_nontrivial =
    List.length
      (List.filter
         (fun (_, ddg, _) ->
           let n = Ddg.n_total ddg in
           let r = Ims_graph.Scc.compute ~n ~succs:(Ddg.real_succ_ids ddg) in
           let members = Ims_graph.Scc.members r in
           not (Array.exists (fun m -> List.length m > 1) members))
         batch)
  in
  let frac = float_of_int no_nontrivial /. float_of_int (List.length batch) in
  Alcotest.(check bool)
    (Printf.sprintf "about 77%% without non-trivial SCCs (got %.2f)" frac)
    true
    (frac >= 0.65 && frac <= 0.90)

let test_synthetic_profiles () =
  let profiles = List.map (fun (_, _, p) -> p) batch in
  let executed =
    List.length (List.filter (fun p -> p.Synthetic.loop_freq > 0) profiles)
  in
  let frac = float_of_int executed /. float_of_int (List.length profiles) in
  Alcotest.(check bool)
    (Printf.sprintf "about 45%% execute (got %.2f)" frac)
    true
    (frac >= 0.35 && frac <= 0.55);
  List.iter
    (fun p ->
      if p.Synthetic.loop_freq > 0 then
        Alcotest.(check bool) "loop freq >= entry freq" true
          (p.Synthetic.loop_freq >= p.Synthetic.entry_freq))
    profiles

(* --- Suite ---------------------------------------------------------------------- *)

let test_suite_composition () =
  let cases = Suite.cases ~count:60 () in
  Alcotest.(check int) "requested size" 60 (List.length cases);
  let lfk_cases =
    List.filter (fun c -> List.mem c.Suite.name Lfk.names) cases
  in
  Alcotest.(check int) "all 27 lfk loops present" 27 (List.length lfk_cases)

let test_suite_execution_time_formula () =
  let case =
    { Suite.name = "t"; ddg = Lfk.build machine "lfk03";
      entry_freq = 10; loop_freq = 1000 }
  in
  Alcotest.(check int) "formula" ((10 * 33) + (990 * 4))
    (Suite.execution_time case ~sl:33 ~ii:4);
  let dead = { case with Suite.loop_freq = 0 } in
  Alcotest.(check int) "unexecuted loop costs nothing" 0
    (Suite.execution_time dead ~sl:33 ~ii:4)

let test_suite_executed_filter () =
  let cases = Suite.cases ~count:100 () in
  let ex = Suite.executed cases in
  Alcotest.(check bool) "subset" true (List.length ex < List.length cases);
  Alcotest.(check bool) "all executed" true
    (List.for_all (fun c -> c.Suite.loop_freq > 0) ex)

(* --- Loop parser ------------------------------------------------------------------ *)

let dot_text =
  {|
# dot product
a = aadd a[1]
x = load a
y = fmul x x
s = fadd s[1] y
store out y
|}

let test_parse_dot_product () =
  let ddg = Loop_parse.parse machine dot_text in
  Alcotest.(check int) "five ops" 5 (Ddg.n_real ddg);
  let m = Ims_mii.Mii.compute ddg in
  Alcotest.(check int) "reduction recmii" 4 m.Ims_mii.Mii.recmii

let test_parse_predication () =
  let text = "c = fcmp u v\np = pred_set c\nx = copy u when p\n" in
  let ddg = Loop_parse.parse machine text in
  Alcotest.(check bool) "third op predicated" true
    ((Ddg.op ddg 3).Op.pred <> None)

let test_parse_memdep () =
  let text = "x = load a\nstore a x\nmemdep flow 2 1 1\n" in
  let ddg = Loop_parse.parse machine text in
  let back =
    List.exists
      (fun (d : Dep.t) -> d.dst = 1 && d.distance = 1)
      ddg.Ddg.succs.(2)
  in
  Alcotest.(check bool) "store -> load dep" true back

let test_parse_errors () =
  let bad line msg =
    match Loop_parse.parse machine line with
    | exception Loop_parse.Parse_error (_, _) -> ()
    | exception Machine.Unknown_opcode _ -> ()
    | _ -> Alcotest.fail msg
  in
  bad "x = load a[" "malformed operand accepted";
  bad "x = load a[-1]" "negative distance accepted";
  bad "=" "missing opcode accepted";
  bad "x = frobnicate y" "unknown opcode accepted";
  bad "memdep flow 1 99" "dangling memdep accepted";
  bad "x = copy y when p q" "two predicates accepted"

let test_parse_file_error_names_file () =
  (* Errors escaping a file parse carry the path, and the registered
     printer renders the exception as one line instead of an opaque
     constructor — batch reports and top-level handlers rely on both. *)
  let path = Filename.temp_file "ims_bad" ".loop" in
  let oc = open_out path in
  output_string oc "x = load a\ny =\n";
  close_out oc;
  let cleanup () = Sys.remove path in
  Fun.protect ~finally:cleanup (fun () ->
      match Loop_parse.parse_file machine path with
      | _ -> Alcotest.fail "malformed file accepted"
      | exception (Loop_parse.Parse_error (line, msg) as e) ->
          Alcotest.(check int) "line of the bad operation" 2 line;
          let contains hay needle =
            let lh = String.length hay and ln = String.length needle in
            let rec go i =
              i + ln <= lh && (String.sub hay i ln = needle || go (i + 1))
            in
            go 0
          in
          Alcotest.(check bool) "message names the file" true
            (contains msg path);
          Alcotest.(check bool) "printer renders line + message" true
            (contains (Printexc.to_string e) "loop parse error at line 2"))

let test_parse_comments_and_blanks () =
  let text = "\n# comment only\n; another\nx = load a\n\n" in
  Alcotest.(check int) "one op" 1 (Ddg.n_real (Loop_parse.parse machine text))

let test_parse_roundtrip_schedules () =
  let ddg = Loop_parse.parse machine dot_text in
  match (Ims_core.Ims.modulo_schedule ddg).Ims_core.Ims.schedule with
  | Some s -> Alcotest.(check bool) "verifies" true (Ims_core.Schedule.verify s = Ok ())
  | None -> Alcotest.fail "parse result did not schedule"



(* --- The micro-kernel family -------------------------------------------------- *)

let test_kernels_all_schedule () =
  List.iter
    (fun (name, ddg) ->
      match (Ims_core.Ims.modulo_schedule ddg).Ims_core.Ims.schedule with
      | Some s -> (
          match Ims_core.Schedule.verify s with
          | Ok () -> ()
          | Error es ->
              Alcotest.failf "%s invalid: %s" name (String.concat "; " es))
      | None -> Alcotest.failf "%s failed to schedule" name)
    (Kernels.all machine)

let test_kernels_iir_recurrence () =
  let ddg = Kernels.build machine "iir" in
  let m = Ims_mii.Mii.compute ddg in
  (* y depends on y' through fmul(5) + fadd(4) + fadd(4). *)
  Alcotest.(check int) "biquad recurrence" 13 m.Ims_mii.Mii.recmii

let test_kernels_fir_delay_line () =
  (* The FIR reads x at distances 0..7: its x flow edges span those
     distances. *)
  let ddg = Kernels.build machine "fir8" in
  let distances =
    Array.to_list ddg.Ddg.succs
    |> List.concat
    |> List.filter_map (fun (d : Dep.t) ->
           if
             (Ddg.op ddg d.src).Op.opcode = "load"
             && not (Ddg.is_pseudo ddg d.dst)
           then Some d.distance
           else None)
    |> List.sort_uniq compare
  in
  Alcotest.(check (list int)) "delay line distances" [ 0; 1; 2; 3; 4; 5; 6; 7 ]
    distances

let test_kernels_trsv_divide_bound () =
  let ddg = Kernels.build machine "trsv_step" in
  let m = Ims_mii.Mii.compute ddg in
  Alcotest.(check bool) "divide dominates" true (m.Ims_mii.Mii.recmii >= 22)

let test_kernels_names_unique () =
  let sorted = List.sort_uniq compare Kernels.names in
  Alcotest.(check int) "no duplicates" (List.length Kernels.names)
    (List.length sorted);
  Alcotest.(check bool) "disjoint from lfk" true
    (List.for_all (fun n -> not (List.mem n Lfk.names)) Kernels.names)

(* --- CFG / hyperblock substrate ------------------------------------------------ *)

let diamond_cfg ?(taken = 90) ?(fallthrough = 10) () =
  Cfg.
    {
      entry = "head";
      blocks =
        [
          {
            label = "head";
            stmts = [ If_conversion.stmt "copy" ~dsts:[ "t" ] ~srcs:[ ("c", 0) ] ];
            terminator =
              Branch
                {
                  cond = ("c", 0);
                  taken = "then";
                  fallthrough = "else";
                  taken_count = taken;
                  fallthrough_count = fallthrough;
                };
          };
          {
            label = "then";
            stmts =
              [ If_conversion.stmt "fadd" ~dsts:[ "r" ] ~srcs:[ ("t", 0); ("t", 0) ] ];
            terminator = Goto "join";
          };
          {
            label = "else";
            stmts =
              [ If_conversion.stmt "fsub" ~dsts:[ "r" ] ~srcs:[ ("t", 0); ("t", 0) ] ];
            terminator = Goto "join";
          };
          {
            label = "join";
            stmts =
              [ If_conversion.stmt "fmul" ~dsts:[ "o" ] ~srcs:[ ("r", 0); ("r", 0) ] ];
            terminator = Exit;
          };
        ];
    }

let test_cfg_validates () =
  Alcotest.(check bool) "diamond is valid" true
    (Cfg.validate (diamond_cfg ()) = Ok ())

let test_cfg_detects_cycle () =
  let cfg =
    Cfg.
      {
        entry = "a";
        blocks =
          [
            { label = "a"; stmts = []; terminator = Goto "b" };
            { label = "b"; stmts = []; terminator = Goto "a" };
          ];
      }
  in
  Alcotest.(check bool) "cycle rejected" true (Cfg.validate cfg <> Ok ())

let test_cfg_detects_missing_target () =
  let cfg =
    Cfg.{ entry = "a"; blocks = [ { label = "a"; stmts = []; terminator = Goto "zz" } ] }
  in
  Alcotest.(check bool) "dangling target" true (Cfg.validate cfg <> Ok ())

let test_cfg_reject_reason_size () =
  let blocks =
    List.init 40 (fun i ->
        Cfg.
          {
            label = Printf.sprintf "b%d" i;
            stmts = [];
            terminator = (if i = 39 then Exit else Goto (Printf.sprintf "b%d" (i + 1)));
          })
  in
  match Cfg.reject_reason Cfg.{ entry = "b0"; blocks } with
  | Some _ -> ()
  | None -> Alcotest.fail "oversized body accepted"

let test_cfg_cold_fraction () =
  Alcotest.(check (float 1e-9)) "10% cold" 0.1
    (Cfg.cold_fraction (diamond_cfg ()))

let test_cfg_converts_and_schedules () =
  let b = Builder.create machine in
  let c = Builder.vreg b "c" in
  ignore (Builder.add b ~opcode:"fcmp" ~dsts:[ c ] ~srcs:[] ());
  Cfg.convert (diamond_cfg ()) b;
  let ddg = Builder.finish b in
  (* fcmp + copy + pred_set/reset + 2 arms + join = 7 ops. *)
  Alcotest.(check int) "seven ops" 7 (Ddg.n_real ddg);
  match (Ims_core.Ims.modulo_schedule ddg).Ims_core.Ims.schedule with
  | Some s -> Alcotest.(check bool) "valid" true (Ims_core.Schedule.verify s = Ok ())
  | None -> Alcotest.fail "failed to schedule"

let test_cfg_nested_diamonds () =
  let cfg =
    Cfg.
      {
        entry = "head";
        blocks =
          [
            {
              label = "head";
              stmts = [];
              terminator =
                Branch
                  { cond = ("c", 0); taken = "t1"; fallthrough = "join";
                    taken_count = 1; fallthrough_count = 1 };
            };
            {
              label = "t1";
              stmts = [];
              terminator =
                Branch
                  { cond = ("c", 0); taken = "t2"; fallthrough = "t3";
                    taken_count = 1; fallthrough_count = 1 };
            };
            { label = "t2";
              stmts = [ If_conversion.stmt "copy" ~dsts:[ "x" ] ~srcs:[ ("c", 0) ] ];
              terminator = Goto "t4" };
            { label = "t3";
              stmts = [ If_conversion.stmt "copy" ~dsts:[ "x" ] ~srcs:[ ("c", 0) ] ];
              terminator = Goto "t4" };
            { label = "t4"; stmts = []; terminator = Goto "join" };
            { label = "join"; stmts = []; terminator = Exit };
          ];
      }
  in
  let b = Builder.create machine in
  let c = Builder.vreg b "c" in
  ignore (Builder.add b ~opcode:"fcmp" ~dsts:[ c ] ~srcs:[] ());
  Cfg.convert cfg b;
  let ddg = Builder.finish b in
  (* Inner predicate definitions must be guarded by the outer predicate. *)
  let doubly_guarded =
    List.filter
      (fun i ->
        let o = Ddg.op ddg i in
        (o.Op.opcode = "pred_set" || o.Op.opcode = "pred_reset")
        && o.Op.pred <> None)
      (Ddg.real_ids ddg)
  in
  Alcotest.(check int) "inner predicates guarded" 2 (List.length doubly_guarded)

let workloads_extension_tests =
  [
    Alcotest.test_case "kernels: all schedule + verify" `Slow
      test_kernels_all_schedule;
    Alcotest.test_case "kernels: iir recurrence" `Quick
      test_kernels_iir_recurrence;
    Alcotest.test_case "kernels: fir delay line" `Quick
      test_kernels_fir_delay_line;
    Alcotest.test_case "kernels: trsv divide" `Quick
      test_kernels_trsv_divide_bound;
    Alcotest.test_case "kernels: names unique" `Quick test_kernels_names_unique;
    Alcotest.test_case "cfg: validates" `Quick test_cfg_validates;
    Alcotest.test_case "cfg: cycle" `Quick test_cfg_detects_cycle;
    Alcotest.test_case "cfg: missing target" `Quick test_cfg_detects_missing_target;
    Alcotest.test_case "cfg: size rejection" `Quick test_cfg_reject_reason_size;
    Alcotest.test_case "cfg: cold fraction" `Quick test_cfg_cold_fraction;
    Alcotest.test_case "cfg: converts + schedules" `Quick
      test_cfg_converts_and_schedules;
    Alcotest.test_case "cfg: nested diamonds" `Quick test_cfg_nested_diamonds;
  ]


(* --- Dump / parse round trip ---------------------------------------------------- *)

let canonical_edges ddg =
  let stop = Ddg.stop ddg in
  Array.to_list ddg.Ddg.succs |> List.concat
  |> List.filter_map (fun (d : Dep.t) ->
         if d.src = Ddg.start || d.dst = stop || d.src = stop then None
         else Some (d.src, d.dst, d.kind, d.distance, d.delay))
  |> List.sort compare

let test_dump_roundtrip_named () =
  List.iter
    (fun (name, ddg) ->
      let back = Loop_parse.parse machine (Loop_dump.dump ddg) in
      Alcotest.(check int) (name ^ " ops") (Ddg.n_real ddg) (Ddg.n_real back);
      Alcotest.(check bool)
        (name ^ " edges survive the round trip")
        true
        (canonical_edges ddg = canonical_edges back))
    (Lfk.all machine @ Kernels.all machine)

let test_dump_mentions_memdep () =
  let ddg = Lfk.build machine "lfk06" in
  let text = Loop_dump.dump ddg in
  Alcotest.(check bool) "memory recurrence dumped explicitly" true
    (let rec contains i =
       i + 6 <= String.length text
       && (String.sub text i 6 = "memdep" || contains (i + 1))
     in
     contains 0)

let prop_dump_roundtrip_synthetic =
  QCheck.Test.make ~count:80 ~name:"dump/parse: synthetic round trip"
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let rng = Random.State.make [| seed; 37 |] in
      let ddg = Synthetic.generate machine rng in
      let back = Loop_parse.parse machine (Loop_dump.dump ddg) in
      Ddg.n_real ddg = Ddg.n_real back
      && canonical_edges ddg = canonical_edges back)

let dump_tests =
  [
    Alcotest.test_case "dump: named round trip" `Slow test_dump_roundtrip_named;
    Alcotest.test_case "dump: memdep lines" `Quick test_dump_mentions_memdep;
    QCheck_alcotest.to_alcotest prop_dump_roundtrip_synthetic;
  ]

let tests =
  ( "workloads",
    [
      Alcotest.test_case "lfk: 27 loops" `Quick test_lfk_count;
      Alcotest.test_case "lfk: all build" `Quick test_lfk_all_build;
      Alcotest.test_case "lfk: unknown name" `Quick test_lfk_unknown_name;
      Alcotest.test_case "lfk03: reduction" `Quick
        test_lfk_inner_product_is_reduction;
      Alcotest.test_case "lfk05: recurrence" `Quick test_lfk_tridiagonal_recurrence;
      Alcotest.test_case "lfk01: vectorizable" `Quick test_lfk_hydro_vectorizable;
      Alcotest.test_case "lfk20: divide recurrence" `Quick
        test_lfk_transport_divide_recurrence;
      Alcotest.test_case "lfk24: predicated" `Quick test_lfk_first_min_predicated;
      Alcotest.test_case "lfk: all schedule + verify" `Slow
        test_lfk_all_schedule_and_verify;
      Alcotest.test_case "lfk06: memory back edge" `Quick
        test_lfk_memory_recurrence_edges;
      Alcotest.test_case "synthetic: deterministic" `Quick
        test_synthetic_deterministic;
      Alcotest.test_case "synthetic: size distribution" `Quick
        test_synthetic_size_distribution;
      Alcotest.test_case "synthetic: scc structure" `Quick
        test_synthetic_scc_structure;
      Alcotest.test_case "synthetic: profiles" `Quick test_synthetic_profiles;
      Alcotest.test_case "suite: composition" `Quick test_suite_composition;
      Alcotest.test_case "suite: execution time" `Quick
        test_suite_execution_time_formula;
      Alcotest.test_case "suite: executed filter" `Quick test_suite_executed_filter;
      Alcotest.test_case "parse: dot product" `Quick test_parse_dot_product;
      Alcotest.test_case "parse: predication" `Quick test_parse_predication;
      Alcotest.test_case "parse: memdep" `Quick test_parse_memdep;
      Alcotest.test_case "parse: errors" `Quick test_parse_errors;
      Alcotest.test_case "parse: file errors name the file" `Quick
        test_parse_file_error_names_file;
      Alcotest.test_case "parse: comments" `Quick test_parse_comments_and_blanks;
      Alcotest.test_case "parse: roundtrip" `Quick test_parse_roundtrip_schedules;
    ]
    @ workloads_extension_tests @ dump_tests )
